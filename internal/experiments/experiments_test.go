package experiments

import (
	"bytes"
	"strings"
	"testing"

	"spcg/internal/dist"
	"spcg/internal/suite"
)

// testConfig keeps experiment tests fast: tiny scale, small virtual nodes.
func testConfig() Config {
	m := dist.DefaultMachine()
	m.RanksPerNode = 8
	return Config{Scale: 256, S: 10, Tol: 1e-9, MaxIterations: 12000, Machine: m, PrecondDegree: 3}
}

func subset(names ...string) []suite.Problem {
	var out []suite.Problem
	for _, n := range names {
		p, ok := suite.ByName(n)
		if !ok {
			panic("unknown problem " + n)
		}
		out = append(out, p)
	}
	return out
}

func TestTable1RunAndValidate(t *testing.T) {
	cfg := testConfig()
	rows, err := RunTable1(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	if err := ValidateTable1(rows, cfg.S); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows, cfg.S)
	out := buf.String()
	for _, want := range []string{"PCG", "sPCG", "CA-PCG", "CA-PCG3", "#MV+#prec"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable2SubsetShape(t *testing.T) {
	cfg := testConfig()
	rows, err := RunTable2(cfg, subset("thermomech_TC", "Dubcova3", "G2_circuit"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.PCGOk {
			t.Fatalf("%s: PCG did not converge", r.Name)
		}
		// Chebyshev basis must converge on these easy/medium instances.
		if !r.SPCGOk[1] || !r.CAPCGOk[1] {
			t.Fatalf("%s: Chebyshev-basis s-step solvers failed: %+v", r.Name, r)
		}
		// s-step iteration counts are multiples of s.
		if r.SPCG[1]%cfg.S != 0 {
			t.Fatalf("%s: sPCG iterations %d not a multiple of s=%d", r.Name, r.SPCG[1], cfg.S)
		}
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows, cfg.S)
	if !strings.Contains(buf.String(), "thermomech_TC") || !strings.Contains(buf.String(), "Converged (of 3)") {
		t.Fatalf("render output wrong:\n%s", buf.String())
	}
}

func TestTable2MonomialWorseThanChebyshev(t *testing.T) {
	// The paper's central claim: at s=10 the Chebyshev basis converges far
	// more often than the monomial basis.
	cfg := testConfig()
	rows, err := RunTable2(cfg, subset("cfd2", "shipsec1", "G2_circuit", "parabolic_fem"))
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(rows, cfg.S)
	chebTotal := sum.SPCGCheb + sum.CAPCGCheb + sum.CAPCG3Cheb
	monTotal := sum.SPCGMon + sum.CAPCGMon + sum.CAPCG3Mon
	if chebTotal <= monTotal {
		t.Fatalf("Chebyshev basis (%d convergences) not better than monomial (%d)", chebTotal, monTotal)
	}
}

func TestTable3Shape(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 256
	rows, err := RunTable3(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	spcgWins := 0
	for _, r := range rows {
		if r.JacPCGTime <= 0 && r.ChebPCGTime <= 0 {
			t.Fatalf("%s: PCG converged under neither preconditioner", r.Name)
		}
		if r.JacSPCG > 1 || r.ChebSPCG > 1 {
			spcgWins++
		}
	}
	if spcgWins < 4 {
		t.Fatalf("sPCG achieved speedup on only %d/7 matrices", spcgWins)
	}
	var buf bytes.Buffer
	RenderTable3(&buf, rows)
	if !strings.Contains(buf.String(), "G3_circuit") {
		t.Fatalf("render output wrong:\n%s", buf.String())
	}
}

func TestFig1ScalingShape(t *testing.T) {
	cfg := testConfig()
	res, err := RunFig1(cfg, 24, 32, []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.PCG1Node <= 0 {
		t.Fatal("no reference time")
	}
	if len(res.Series) != 1+2*3 {
		t.Fatalf("got %d series", len(res.Series))
	}
	// PCG is the first series; at the largest node count some s-step method
	// must beat PCG (the paper's headline claim).
	last := len(res.NodeCounts) - 1
	pcg := res.Series[0].Speedup[last]
	bestSStep := 0.0
	for _, s := range res.Series[1:] {
		if s.Speedup != nil && s.Speedup[last] > bestSStep {
			bestSStep = s.Speedup[last]
		}
	}
	if bestSStep <= pcg {
		t.Fatalf("no s-step method beats PCG at %d nodes: best %.2f vs PCG %.2f",
			res.NodeCounts[last], bestSStep, pcg)
	}
	var buf bytes.Buffer
	RenderFig1(&buf, res)
	if !strings.Contains(buf.String(), "Strong scaling") {
		t.Fatal("render output wrong")
	}
}

func TestAblationRuns(t *testing.T) {
	cfg := testConfig()
	res, err := RunAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Chebyshev basis must work at every s; monomial must fail (or degrade)
	// at large s.
	cheb := res.BasisSweep["chebyshev"]
	for i, it := range cheb {
		if it == 0 {
			t.Fatalf("Chebyshev basis failed at s=%d", res.SValues[i])
		}
	}
	mon := res.BasisSweep["monomial"]
	lastMon := mon[len(mon)-1]
	lastCheb := cheb[len(cheb)-1]
	if lastMon != 0 && lastMon <= lastCheb {
		t.Fatalf("monomial basis at s=%d (%d iters) unexpectedly as good as Chebyshev (%d)", res.SValues[len(mon)-1], lastMon, lastCheb)
	}
	var buf bytes.Buffer
	RenderAblation(&buf, res)
	if !strings.Contains(buf.String(), "Leja") {
		t.Fatal("render output wrong")
	}
}

func TestPredictAgreement(t *testing.T) {
	cfg := testConfig()
	rows, err := RunPredict(cfg, 20, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Measured == 0 {
			t.Fatalf("%s nodes=%d: no measurement", r.Alg, r.Nodes)
		}
		// The closed forms ignore setup and fuse payload details; agreement
		// within a factor of 3 validates both views share one machine model.
		if r.Ratio < 1.0/3 || r.Ratio > 3 {
			t.Fatalf("%s nodes=%d: simulated/predicted ratio %.2f out of range", r.Alg, r.Nodes, r.Ratio)
		}
	}
	var buf bytes.Buffer
	RenderPredict(&buf, rows, cfg.S)
	if !strings.Contains(buf.String(), "sim/pred") {
		t.Fatal("render output wrong")
	}
}

func TestPipelineComparison(t *testing.T) {
	cfg := testConfig()
	res, err := RunPipeline(cfg, 20, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solvers) != 3 || len(res.Speedup) != 3 {
		t.Fatalf("unexpected shape: %+v", res.Solvers)
	}
	last := len(res.NodeCounts) - 1
	// Both communication-reducing methods must beat plain PCG at scale.
	if res.Speedup[1][last] <= res.Speedup[0][last] {
		t.Fatalf("pipelined PCG (%.2f) not above PCG (%.2f) at %d nodes",
			res.Speedup[1][last], res.Speedup[0][last], res.NodeCounts[last])
	}
	if res.Speedup[2][last] <= res.Speedup[0][last] {
		t.Fatalf("sPCG (%.2f) not above PCG (%.2f) at %d nodes",
			res.Speedup[2][last], res.Speedup[0][last], res.NodeCounts[last])
	}
	var buf bytes.Buffer
	RenderPipeline(&buf, res)
	if !strings.Contains(buf.String(), "Future-work") {
		t.Fatal("render output wrong")
	}
}
