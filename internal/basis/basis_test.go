package basis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTypeStringParse(t *testing.T) {
	for _, tt := range []Type{Monomial, Newton, Chebyshev} {
		got, err := ParseType(tt.String())
		if err != nil || got != tt {
			t.Fatalf("round trip %v: got %v, err %v", tt, got, err)
		}
	}
	if _, err := ParseType("legendre"); err == nil {
		t.Fatal("expected error for unknown type")
	}
	if s := Type(99).String(); s != "basis.Type(99)" {
		t.Fatalf("unknown String = %q", s)
	}
}

func TestMonomialParamsEval(t *testing.T) {
	p := MonomialParams(4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	vals := p.Eval(2, 4)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("P_%d(2) = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestChebyshevParamsEval(t *testing.T) {
	// On [−1, 1] the basis must reproduce the classical Chebyshev
	// polynomials T_l: c = 0, e = 1.
	p := ChebyshevParams(5, -1, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, z := range []float64{-1, -0.5, 0, 0.3, 1} {
		vals := p.Eval(z, 5)
		theta := math.Acos(z)
		for l := 0; l <= 5; l++ {
			want := math.Cos(float64(l) * theta)
			if math.Abs(vals[l]-want) > 1e-12 {
				t.Fatalf("T_%d(%v) = %v, want %v", l, z, vals[l], want)
			}
		}
	}
}

func TestChebyshevBoundedOnInterval(t *testing.T) {
	// Scaled Chebyshev values stay in [−1, 1] on the interval — the property
	// that makes the basis well conditioned. Monomial values explode.
	lo, hi := 0.01, 12.0
	p := ChebyshevParams(10, lo, hi)
	m := MonomialParams(10)
	for z := lo; z <= hi; z += (hi - lo) / 37 {
		for l, v := range p.Eval(z, 10) {
			if math.Abs(v) > 1+1e-9 {
				t.Fatalf("|T_%d(%v)| = %v > 1", l, z, v)
			}
		}
		if vm := m.Eval(hi, 10); math.Abs(vm[10]) < 1e9 {
			t.Fatalf("monomial P_10(%v) = %v unexpectedly small", hi, vm[10])
		}
	}
}

func TestNewtonParamsRoots(t *testing.T) {
	shifts := []float64{1, 2, 3}
	p := NewtonParams(3, shifts, 0, 4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// P_l has roots at the first l (Leja-ordered) shifts.
	for l := 1; l <= 3; l++ {
		for _, root := range p.Theta[:l] {
			vals := p.Eval(root, 3)
			if math.Abs(vals[l]) > 1e-12 {
				t.Fatalf("P_%d(%v) = %v, want 0", l, root, vals[l])
			}
		}
	}
}

func TestNewtonShiftsCycle(t *testing.T) {
	p := NewtonParams(5, []float64{1, 9}, 0, 10)
	// Leja order of {1,9} starts at 9 (max magnitude).
	if p.Theta[0] != 9 || p.Theta[1] != 1 || p.Theta[2] != 9 || p.Theta[3] != 1 || p.Theta[4] != 9 {
		t.Fatalf("cyclic shifts = %v", p.Theta)
	}
}

func TestLejaOrder(t *testing.T) {
	pts := []float64{0, 1, 2, 3, 4}
	out := LejaOrder(pts)
	if out[0] != 4 {
		t.Fatalf("first Leja point = %v, want 4", out[0])
	}
	if out[1] != 0 {
		t.Fatalf("second Leja point = %v, want 0 (farthest from 4)", out[1])
	}
	// Permutation property.
	seen := map[float64]bool{}
	for _, v := range out {
		seen[v] = true
	}
	for _, v := range pts {
		if !seen[v] {
			t.Fatalf("point %v lost", v)
		}
	}
	// Input unmodified.
	if pts[0] != 0 || pts[4] != 4 {
		t.Fatal("LejaOrder modified input")
	}
}

func TestLejaOrderDuplicates(t *testing.T) {
	out := LejaOrder([]float64{2, 2, 2})
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
}

func TestChangeOfBasisConsistentWithEval(t *testing.T) {
	// z·[P₀..P_{s−1}](z) == [P₀..P_s](z)·B_{s+1} for any z: the defining
	// property of the change-of-basis matrix, checked per basis type.
	rng := rand.New(rand.NewSource(5))
	ritz := []float64{0.5, 2.5, 7.0}
	for _, typ := range []Type{Monomial, Newton, Chebyshev} {
		p, err := New(typ, 6, 0.1, 9.5, ritz)
		if err != nil {
			t.Fatal(err)
		}
		b := p.ChangeOfBasis(7) // 7×6
		for trial := 0; trial < 10; trial++ {
			z := rng.Float64()*12 - 1
			vals := p.Eval(z, 6)
			for col := 0; col < 6; col++ {
				var rhs float64
				for row := 0; row < 7; row++ {
					rhs += vals[row] * b.At(row, col)
				}
				lhs := z * vals[col]
				if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
					t.Fatalf("%v: z·P_%d(%v) = %v but V·B gives %v", typ, col, z, lhs, rhs)
				}
			}
		}
	}
}

func TestCAPCGChangeOfBasisStructure(t *testing.T) {
	p := ChebyshevParams(3, 1, 5)
	s := 3
	b := p.CAPCGChangeOfBasis(s)
	n := 2*s + 1
	if b.R != n || b.C != n {
		t.Fatalf("shape %d×%d", b.R, b.C)
	}
	// Column s (last of Q block) and column 2s must be zero.
	for i := 0; i < n; i++ {
		if b.At(i, s) != 0 || b.At(i, 2*s) != 0 {
			t.Fatal("zero columns violated")
		}
	}
	// Top-left block matches B_{s+1}.
	bs1 := p.ChangeOfBasis(s + 1)
	for i := 0; i <= s; i++ {
		for j := 0; j < s; j++ {
			if b.At(i, j) != bs1.At(i, j) {
				t.Fatal("top-left block mismatch")
			}
		}
	}
	// Bottom-right block matches B_s at offset (s+1, s+1).
	bs := p.ChangeOfBasis(s)
	for i := 0; i < s; i++ {
		for j := 0; j < s-1; j++ {
			if b.At(s+1+i, s+1+j) != bs.At(i, j) {
				t.Fatal("bottom-right block mismatch")
			}
		}
	}
	// Q-block rows must not leak into R-block columns and vice versa.
	for i := s + 1; i < n; i++ {
		for j := 0; j < s; j++ {
			if b.At(i, j) != 0 {
				t.Fatal("R rows leak into Q columns")
			}
		}
	}
}

func TestValidateErrors(t *testing.T) {
	p := MonomialParams(3)
	p.Gamma[1] = 0
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for zero gamma")
	}
	p = MonomialParams(3)
	p.Mu = p.Mu[:0]
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for short Mu")
	}
	p = MonomialParams(3)
	p.Gamma = p.Gamma[:1]
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for short Gamma")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Chebyshev, 3, 5, 5, nil); err == nil {
		t.Fatal("expected error for empty Chebyshev interval")
	}
	if _, err := New(Type(42), 3, 0, 1, nil); err == nil {
		t.Fatal("expected error for unknown type")
	}
	// Newton without Ritz values falls back to Chebyshev points.
	p, err := New(Newton, 3, 0, 1, nil)
	if err != nil || p.Type != Newton {
		t.Fatalf("Newton fallback failed: %v", err)
	}
}

func TestChebyshevPoints(t *testing.T) {
	pts := ChebyshevPoints(4, 0, 2)
	if len(pts) != 4 {
		t.Fatal("count")
	}
	for _, v := range pts {
		if v < 0 || v > 2 {
			t.Fatalf("point %v outside interval", v)
		}
	}
}

// Property: three-term recurrence evaluation is exact for random parameter
// sets — Eval and ChangeOfBasis agree for arbitrary valid Params.
func TestRecurrenceIdentityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := 2 + rng.Intn(6)
		p := &Params{
			Type:  Newton,
			Theta: make([]float64, s),
			Gamma: make([]float64, s),
			Mu:    make([]float64, s-1),
		}
		for i := range p.Theta {
			p.Theta[i] = rng.NormFloat64()
			p.Gamma[i] = 0.5 + rng.Float64()
		}
		for i := range p.Mu {
			p.Mu[i] = rng.NormFloat64() * 0.5
		}
		b := p.ChangeOfBasis(s + 1)
		z := rng.NormFloat64() * 2
		vals := p.Eval(z, s)
		for col := 0; col < s; col++ {
			var rhs float64
			for row := 0; row <= s; row++ {
				rhs += vals[row] * b.At(row, col)
			}
			if math.Abs(z*vals[col]-rhs) > 1e-8*(1+math.Abs(z*vals[col])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
