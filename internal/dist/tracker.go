package dist

import (
	"fmt"

	"spcg/internal/obs"
)

// Counts aggregates the structural events of a solver run — the quantities
// the paper's Table 1 reasons about.
type Counts struct {
	SpMVs          int
	PrecApplies    int
	Allreduces     int
	AllreduceVals  int // total float64 values reduced
	HaloExchanges  int
	LocalFlops     float64 // global FLOPs of local vector/matrix work
	LocalReduceOps float64 // global FLOPs spent producing reduction operands
	// OverlappedAllreduces counts the Allreduces charged as non-blocking
	// collectives hidden behind local work (pipelined PCG's pattern).
	OverlappedAllreduces int
	// RetriedMessages counts communication retries charged by the fault
	// model (0 unless Machine.Faults enables communication failures).
	RetriedMessages int
}

// eventKind tags recorded events for replay.
type eventKind uint8

const (
	evSpMV eventKind = iota
	evPrec
	evVector
	evReduceLocal
	evAllreduce
	evHalo
	evAllreduceOverlap
)

// event is one recorded cost-model event.
type event struct {
	kind    eventKind
	flops   float64 // evPrec: global flops; evVector/evReduceLocal: global flops
	bytes   float64 // evVector/evReduceLocal: global bytes
	values  int     // evAllreduce: payload; evPrec: halo count
	retries int     // fault-model retries drawn when the event was charged
}

// Tracker charges solver events against a Cluster's cost model and
// accumulates the simulated wall-clock time. A nil *Tracker is valid and
// charges nothing, so solvers can run untracked at zero cost.
//
// With recording enabled, the tracker also keeps the event stream so the
// same numerical run can be re-costed on clusters of different sizes
// (ReplayOn) — the solver's event sequence does not depend on the cluster,
// only its modeled cost does.
type Tracker struct {
	C      *Cluster
	Time   float64
	Counts Counts

	// Obs, when non-nil, mirrors the tracker's halo-exchange events into a
	// phase trace as counting spans (the solver wires it up from
	// Options.Trace). Halo exchanges exist only in the distributed model —
	// shared-memory runs move no halo bytes — so the tracker is the one
	// component that can attribute them.
	Obs *obs.Tracer

	record bool
	events []event
	// rng drives the fault model's retry draws (nil when disabled). Retry
	// counts are recorded per event, so replay re-prices — not re-draws —
	// them.
	rng *faultRNG
}

// NewTracker returns a Tracker bound to c.
func NewTracker(c *Cluster) *Tracker {
	t := &Tracker{C: c}
	t.initFaults()
	return t
}

// NewRecordingTracker returns a Tracker that additionally records events
// for later ReplayOn.
func NewRecordingTracker(c *Cluster) *Tracker {
	t := &Tracker{C: c, record: true}
	t.initFaults()
	return t
}

// ReplayOn recomputes the total modeled time of the recorded event stream
// on another cluster. Panics if the tracker was not recording.
func (t *Tracker) ReplayOn(c *Cluster) float64 {
	if !t.record {
		panic("dist: ReplayOn requires a recording tracker")
	}
	// Each event contributes exactly one addition built from the same
	// expression shape the charging methods use, so replaying on the same
	// cluster reproduces Time bit-for-bit.
	var total float64
	for _, e := range t.events {
		switch e.kind {
		case evSpMV:
			total += c.Roofline(2*float64(c.MaxNNZ), 12*float64(c.MaxNNZ)+16*float64(c.MaxRows)) + c.HaloTime() + retryCost(c, e.retries)
		case evPrec:
			share := c.MaxNNZShare()
			total += c.Roofline(e.flops*share, 1.5*e.flops*share) + float64(e.values)*c.HaloTime()
		case evVector, evReduceLocal:
			share := c.MaxRowShare()
			total += c.Roofline(e.flops*share, e.bytes*share)
		case evAllreduce:
			total += c.AllreduceTime(e.values) + retryCost(c, e.retries)
		case evAllreduceOverlap:
			total += exposedAllreduce(c, e.values, e.flops) + retryCost(c, e.retries)
		case evHalo:
			total += c.HaloTime() + retryCost(c, e.retries)
		}
	}
	return total
}

// SpMV charges one distributed sparse matrix-vector product: a halo
// exchange followed by the local multiply on the most loaded rank
// (12 bytes per stored entry — value + column index — plus streaming the
// input and output rows).
func (t *Tracker) SpMV() {
	if t == nil {
		return
	}
	t.Counts.SpMVs++
	t.Counts.HaloExchanges++
	t.Obs.Count(obs.PhaseHalo, 1)
	c := t.C
	flops := 2 * float64(c.MaxNNZ)
	bytes := 12*float64(c.MaxNNZ) + 16*float64(c.MaxRows)
	retries := t.drawRetries() // the halo exchange can drop messages
	t.Time += c.Roofline(flops, bytes) + c.HaloTime() + retryCost(c, retries)
	if t.record {
		t.events = append(t.events, event{kind: evSpMV, retries: retries})
	}
}

// PrecApply charges one preconditioner application given its global flop
// count and internal halo exchanges (from precond.Interface). Bytes are
// estimated at 1.5 bytes per flop (streaming kernels).
func (t *Tracker) PrecApply(globalFlops float64, halos int) {
	if t == nil {
		return
	}
	t.Counts.PrecApplies++
	t.Counts.HaloExchanges += halos
	if halos > 0 {
		t.Obs.Count(obs.PhaseHalo, int64(halos))
	}
	share := t.C.MaxNNZShare()
	flops := globalFlops * share
	t.Time += t.C.Roofline(flops, 1.5*flops) + float64(halos)*t.C.HaloTime()
	t.Counts.LocalFlops += globalFlops
	if t.record {
		t.events = append(t.events, event{kind: evPrec, flops: globalFlops, values: halos})
	}
}

// VectorOp charges a local kernel over length-n data given *global* flop and
// byte totals, scaled to the most loaded rank's row share.
func (t *Tracker) VectorOp(globalFlops, globalBytes float64) {
	if t == nil {
		return
	}
	share := t.C.MaxRowShare()
	t.Time += t.C.Roofline(globalFlops*share, globalBytes*share)
	t.Counts.LocalFlops += globalFlops
	if t.record {
		t.events = append(t.events, event{kind: evVector, flops: globalFlops, bytes: globalBytes})
	}
}

// ReduceLocal charges the local computation of reduction operands (the
// "local reductions" column of Table 1): dot-product style kernels of
// globalFlops total flops.
func (t *Tracker) ReduceLocal(globalFlops, globalBytes float64) {
	if t == nil {
		return
	}
	share := t.C.MaxRowShare()
	t.Time += t.C.Roofline(globalFlops*share, globalBytes*share)
	t.Counts.LocalReduceOps += globalFlops
	if t.record {
		t.events = append(t.events, event{kind: evReduceLocal, flops: globalFlops, bytes: globalBytes})
	}
}

// Allreduce charges one global reduction of the given number of float64
// values.
func (t *Tracker) Allreduce(values int) {
	if t == nil {
		return
	}
	t.Counts.Allreduces++
	t.Counts.AllreduceVals += values
	retries := t.drawRetries()
	t.Time += t.C.AllreduceTime(values) + retryCost(t.C, retries)
	if t.record {
		t.events = append(t.events, event{kind: evAllreduce, values: values, retries: retries})
	}
}

// Halo charges one standalone halo exchange (outside SpMV).
func (t *Tracker) Halo() {
	if t == nil {
		return
	}
	t.Counts.HaloExchanges++
	t.Obs.Count(obs.PhaseHalo, 1)
	retries := t.drawRetries()
	t.Time += t.C.HaloTime() + retryCost(t.C, retries)
	if t.record {
		t.events = append(t.events, event{kind: evHalo, retries: retries})
	}
}

// String summarizes the tracked run, reporting every Counts field.
func (t *Tracker) String() string {
	if t == nil {
		return "dist.Tracker(nil)"
	}
	return fmt.Sprintf("time=%.6fs spmv=%d prec=%d allreduce=%d(%d vals, %d overlapped) halo=%d flops=%.3g reduceflops=%.3g retried=%d",
		t.Time, t.Counts.SpMVs, t.Counts.PrecApplies, t.Counts.Allreduces,
		t.Counts.AllreduceVals, t.Counts.OverlappedAllreduces, t.Counts.HaloExchanges,
		t.Counts.LocalFlops, t.Counts.LocalReduceOps, t.Counts.RetriedMessages)
}

// AllreduceOverlappedBySpMVPrec charges a non-blocking allreduce whose
// completion is overlapped with one SpMV plus one preconditioner application
// (precFlops global FLOPs) — the communication-hiding pattern of pipelined
// PCG: only the exposed remainder of the collective costs time. The SpMV and
// preconditioner application themselves must still be charged by their own
// calls; this method prices only the collective. The covered time is
// recomputed from the cluster on replay, so the overlap stays correct across
// node counts.
func (t *Tracker) AllreduceOverlappedBySpMVPrec(values int, precFlops float64) {
	if t == nil {
		return
	}
	t.Counts.Allreduces++
	t.Counts.AllreduceVals += values
	t.Counts.OverlappedAllreduces++
	retries := t.drawRetries() // a failed non-blocking collective is re-posted
	t.Time += exposedAllreduce(t.C, values, precFlops) + retryCost(t.C, retries)
	if t.record {
		t.events = append(t.events, event{kind: evAllreduceOverlap, values: values, flops: precFlops, retries: retries})
	}
}

// exposedAllreduce returns the non-hidden part of an allreduce overlapped
// with one SpMV + one preconditioner application on cluster c.
func exposedAllreduce(c *Cluster, values int, precFlops float64) float64 {
	covered := c.Roofline(2*float64(c.MaxNNZ), 12*float64(c.MaxNNZ)+16*float64(c.MaxRows))
	share := c.MaxNNZShare()
	covered += c.Roofline(precFlops*share, 1.5*precFlops*share)
	exposed := c.AllreduceTime(values) - covered
	if exposed < 0 {
		return 0
	}
	return exposed
}
