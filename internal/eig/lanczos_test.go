package eig

import (
	"math"
	"testing"

	"spcg/internal/sparse"
	"spcg/internal/vec"
)

func TestLanczosExtremePairsPoisson(t *testing.T) {
	n := 120
	a := sparse.Poisson1D(n)
	lam := func(k int) float64 { return 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1)) }

	// The top of the Poisson spectrum is tightly clustered (relative gaps
	// ~(π/n)²), so partial processes converge slowly there; a full-length
	// process with reorthogonalization is exact.
	top, err := Lanczos(a, n, 3, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		want := lam(n - 2 + i)
		if math.Abs(top.Values[i]-want) > 1e-8*want {
			t.Fatalf("top Ritz %d = %v, want %v", i, top.Values[i], want)
		}
	}
	// Residual estimates must bound actual eigen-residuals loosely.
	for i := 0; i < 3; i++ {
		v := top.Vectors.Col(i)
		av := make([]float64, n)
		a.MulVec(av, v)
		vec.Axpy(-top.Values[i], v, av)
		actual := vec.Norm2(av) / vec.Norm2(v)
		if actual > 10*top.Residuals[i]+1e-8 {
			t.Fatalf("pair %d: actual residual %v ≫ estimate %v", i, actual, top.Residuals[i])
		}
	}

	// Lowest pairs with generous steps.
	low, err := Lanczos(a, n, 2, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		want := lam(i + 1)
		if math.Abs(low.Values[i]-want) > 1e-9 {
			t.Fatalf("low Ritz %d = %v, want %v", i, low.Values[i], want)
		}
	}
}

func TestLanczosVectorsOrthonormal(t *testing.T) {
	a := sparse.VarCoeff2D(12, 12, 2, 3)
	rp, err := Lanczos(a, 30, 5, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := vec.Gram(rp.Vectors, rp.Vectors)
	k := rp.Vectors.S()
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g[i*k+j]-want) > 1e-8 {
				t.Fatalf("VᵀV[%d,%d] = %v", i, j, g[i*k+j])
			}
		}
	}
}

func TestLanczosInvariantSubspaceTermination(t *testing.T) {
	// Diagonal matrix with few distinct eigenvalues: Lanczos must terminate
	// early at the invariant subspace without error.
	coo := sparse.NewCOO(50)
	for i := 0; i < 50; i++ {
		coo.Add(i, i, float64(1+i%3)) // 3 distinct eigenvalues
	}
	a := coo.ToCSR()
	rp, err := Lanczos(a, 40, 3, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rp.Values {
		if v < 1-1e-9 || v > 3+1e-9 {
			t.Fatalf("Ritz %d = %v outside spectrum", i, v)
		}
	}
}

func TestLanczosValidation(t *testing.T) {
	a := sparse.Poisson1D(10)
	if _, err := Lanczos(a, 0, 1, true, 1); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := Lanczos(a, 20, 1, true, 1); err == nil {
		t.Fatal("m > n accepted")
	}
	if _, err := Lanczos(a, 5, 9, true, 1); err == nil {
		t.Fatal("k > m accepted")
	}
}

func TestLanczosSeparatedSpectrumExact(t *testing.T) {
	// Diagonal matrix with geometrically separated eigenvalues: all requested
	// pairs converge to machine precision, vectors match unit vectors.
	n := 60
	coo := sparse.NewCOO(n)
	spec := sparse.GeometricSpectrum(n, 1, 1e4)
	for i := 0; i < n; i++ {
		coo.Add(i, i, spec[i])
	}
	a := coo.ToCSR()
	rp, err := Lanczos(a, n, 3, false, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		want := spec[n-3+i]
		if math.Abs(rp.Values[i]-want) > 1e-8*want {
			t.Fatalf("Ritz %d = %v, want %v", i, rp.Values[i], want)
		}
		// Vector concentrates on the matching coordinate (up to sign).
		v := rp.Vectors.Col(i)
		if math.Abs(v[n-3+i]) < 0.999 {
			t.Fatalf("Ritz vector %d not aligned with e_%d: |v| = %v", i, n-3+i, math.Abs(v[n-3+i]))
		}
	}
}

func TestLanczosFeedsDeflation(t *testing.T) {
	// End-to-end: Lanczos low pairs of a stretched spectrum are good enough
	// to deflate (exercised further in solver tests; here we check residual
	// estimates are small for converged pairs).
	a := sparse.Poisson1D(100)
	rp, err := Lanczos(a, 100, 3, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rp.Residuals {
		if r > 1e-6 {
			t.Fatalf("low pair %d residual estimate %v too large for a full process", i, r)
		}
	}
}
