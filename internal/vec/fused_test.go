package vec

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"spcg/internal/pool"
)

// relErrAt returns |a−b| relative to the given problem scale (clamped at 1):
// the 1e-13 property is stated against the backward-error scale Σ|x||y| of
// the summation, since the exact value itself can be heavily cancelled.
func relErrAt(a, b, scale float64) float64 {
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) / scale
}

// relErr returns |a−b| / max(1, |b|).
func relErr(a, b float64) float64 {
	return relErrAt(a, b, math.Abs(b))
}

// absDot returns Σ|a_i||b_i|, the natural scale of a dot product.
func absDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i]) * math.Abs(b[i])
	}
	return s
}

// TestGramFusedMatchesNaive: the fused cache-blocked Gram must agree with the
// s²-Dot formulation within 1e-13 relative error on random tall-skinny
// blocks, across sizes that exercise the sequential, tiled and pooled paths.
func TestGramFusedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, sa, sb int }{
		{17, 3, 4}, {1000, 5, 6}, {1 << 15, 8, 9}, {100_003, 11, 4},
	} {
		x := randBlock(rng, tc.n, tc.sa)
		y := randBlock(rng, tc.n, tc.sb)
		want := Gram(x, y)
		got := GramFused(x, y)
		for i := 0; i < tc.sa; i++ {
			for j := 0; j < tc.sb; j++ {
				scale := absDot(x.Cols[i], y.Cols[j])
				if e := relErrAt(got[i*tc.sb+j], want[i*tc.sb+j], scale); e > 1e-13 {
					t.Fatalf("n=%d sa=%d sb=%d: entry (%d,%d) differs by %.3g (fused %v, naive %v)",
						tc.n, tc.sa, tc.sb, i, j, e, got[i*tc.sb+j], want[i*tc.sb+j])
				}
			}
		}
	}
}

func TestGramVecFusedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{33, 5000, 1 << 16} {
		x := randBlock(rng, n, 7)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		want := GramVec(x, v)
		got := GramVecFused(x, v)
		for i := range want {
			if e := relErrAt(got[i], want[i], absDot(x.Cols[i], v)); e > 1e-13 {
				t.Fatalf("n=%d: entry %d differs by %.3g", n, i, e)
			}
		}
	}
}

// TestCombineFusedMatchesNaive: the single-sweep block combines must match
// the s-Axpy formulations within 1e-13.
func TestCombineFusedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, tc := range []struct{ n, s int }{
		{13, 1}, {13, 2}, {13, 3}, {500, 4}, {500, 5}, {1 << 15, 8}, {70_001, 10},
	} {
		x := randBlock(rng, tc.n, tc.s)
		c := make([]float64, tc.s)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		want := make([]float64, tc.n)
		x.MulVec(want, c)
		got := make([]float64, tc.n)
		x.CombineFused(got, c)
		for i := range want {
			if e := relErr(got[i], want[i]); e > 1e-13 {
				t.Fatalf("CombineFused n=%d s=%d: row %d differs by %.3g", tc.n, tc.s, i, e)
			}
		}

		// dst += X·c and dst −= X·c against MulVecAdd / MulVecSub.
		base := make([]float64, tc.n)
		for i := range base {
			base[i] = rng.NormFloat64()
		}
		wantAdd := append([]float64(nil), base...)
		x.MulVecAdd(wantAdd, c)
		gotAdd := append([]float64(nil), base...)
		x.AddScaledFused(gotAdd, 1, c)
		wantSub := append([]float64(nil), base...)
		x.MulVecSub(wantSub, c)
		gotSub := append([]float64(nil), base...)
		x.AddScaledFused(gotSub, -1, c)
		for i := range base {
			if e := relErr(gotAdd[i], wantAdd[i]); e > 1e-13 {
				t.Fatalf("AddScaledFused(+1) n=%d s=%d: row %d differs by %.3g", tc.n, tc.s, i, e)
			}
			if e := relErr(gotSub[i], wantSub[i]); e > 1e-13 {
				t.Fatalf("AddScaledFused(−1) n=%d s=%d: row %d differs by %.3g", tc.n, tc.s, i, e)
			}
		}
	}
}

func TestAddMulFusedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, tc := range []struct{ n, sx, sd int }{
		{11, 1, 1}, {11, 3, 2}, {977, 5, 5}, {1 << 15, 8, 8}, {40_961, 6, 7},
	} {
		x := randBlock(rng, tc.n, tc.sx)
		y := randBlock(rng, tc.n, tc.sd)
		c := make([]float64, tc.sx*tc.sd)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		want := NewBlock(tc.n, tc.sd)
		AddMul(want, y, x, c)
		got := NewBlock(tc.n, tc.sd)
		AddMulFused(got, y, x, c)
		for j := 0; j < tc.sd; j++ {
			for i := 0; i < tc.n; i++ {
				if e := relErr(got.Cols[j][i], want.Cols[j][i]); e > 1e-13 {
					t.Fatalf("AddMulFused n=%d sx=%d sd=%d: (%d,%d) differs by %.3g",
						tc.n, tc.sx, tc.sd, i, j, e)
				}
			}
		}
		// Aliased form dst == y (the solvers' in-place restart path).
		alias := y.Clone()
		AddMulFused(alias, alias, x, c)
		for j := 0; j < tc.sd; j++ {
			for i := 0; i < tc.n; i++ {
				if e := relErr(alias.Cols[j][i], want.Cols[j][i]); e > 1e-13 {
					t.Fatalf("AddMulFused aliased: (%d,%d) differs by %.3g", i, j, e)
				}
			}
		}

		wantM := NewBlock(tc.n, tc.sd)
		Mul(wantM, x, c)
		gotM := NewBlock(tc.n, tc.sd)
		MulFused(gotM, x, c)
		for j := 0; j < tc.sd; j++ {
			for i := 0; i < tc.n; i++ {
				if e := relErr(gotM.Cols[j][i], wantM.Cols[j][i]); e > 1e-13 {
					t.Fatalf("MulFused: (%d,%d) differs by %.3g", i, j, e)
				}
			}
		}
	}
}

// TestFusedDeterministicForFixedWorkers: with a fixed pool size, repeated
// fused-kernel invocations must be bitwise identical — the pool's fixed
// chunking and part-ordered reduction guarantee it.
func TestFusedDeterministicForFixedWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 1 << 17
	x := randBlock(rng, n, 6)
	y := randBlock(rng, n, 6)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	for _, workers := range []int{1, 2, 5} {
		prev := SetMaxWorkers(workers)
		g1 := GramFused(x, y)
		d1 := ParDot(a, b)
		for rep := 0; rep < 3; rep++ {
			g2 := GramFused(x, y)
			for i := range g1 {
				if g1[i] != g2[i] {
					t.Fatalf("workers=%d: GramFused not bitwise reproducible at entry %d", workers, i)
				}
			}
			if d2 := ParDot(a, b); d1 != d2 {
				t.Fatalf("workers=%d: ParDot not bitwise reproducible (%v vs %v)", workers, d1, d2)
			}
		}
		SetMaxWorkers(prev)
	}
}

func TestParDot2MatchesParDot(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 1 << 16
	a, b, c, d := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	for i := 0; i < n; i++ {
		a[i], b[i], c[i], d[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
	}
	s1, s2 := ParDot2(a, b, c, d)
	if s1 != ParDot(a, b) || s2 != ParDot(c, d) {
		t.Fatal("ParDot2 disagrees with ParDot")
	}
}

// TestSharedPoolConcurrentKernels hammers the shared default pool from many
// goroutines at once (run under -race in CI): the engine's dispatch
// serialization must keep concurrent solves' kernels isolated.
func TestSharedPoolConcurrentKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 1 << 15
	x := randBlock(rng, n, 4)
	y := randBlock(rng, n, 4)
	want := GramFused(x, y)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				got := GramFused(x, y)
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("concurrent GramFused diverged at entry %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if pool.ReadStats().FusedGramCalls == 0 {
		t.Fatal("fused gram counter not advancing")
	}
}
