// Package tune selects the fastest safe (method, s, basis, preconditioner)
// configuration for a matrix, automatically. It reproduces, as a serving-side
// subsystem, the paper's empirical finding that the winning s-step
// configuration is matrix-dependent: monomial bases break down at large s on
// ill-conditioned operators while Chebyshev survives, and the method/s
// trade-off flips with problem structure.
//
// The subsystem has three layers:
//
//   - a static seeder (Seed) that enumerates the candidate space, prunes
//     numerically doomed configurations using a cheap spectral probe (the
//     existing Ritz machinery — monomial at large s is ruled out when the
//     condition estimate is high), and orders the survivors by the Table 1
//     closed-form cost model (perfmodel.Predict);
//   - an online trial runner (Run) that executes short capped-iteration probe
//     solves through a Runner, scoring wall-clock per decade of residual
//     reduction and promoting candidates successive-halving style; a probe
//     that breaks down or makes no progress eliminates its candidate — an
//     eliminated candidate can never be the winner;
//   - a persistent Store (JSON on disk, atomic rename, versioned schema,
//     LRU-bounded) keyed by matrix fingerprint, so tuned decisions survive
//     daemon restarts.
//
// See docs/TUNING.md for the candidate space, scoring and store schema.
package tune

import (
	"fmt"
	"strings"
)

// Candidate is one solver configuration under consideration. The zero values
// of S and Basis mean "not applicable" (plain PCG has no block size or
// polynomial basis).
type Candidate struct {
	Method  string `json:"method"`
	S       int    `json:"s,omitempty"`
	Basis   string `json:"basis,omitempty"`
	Precond string `json:"precond"`
	// Format pins the sparse storage combo ("csr", "sell", "csr+rcm",
	// "sell+rcm"; see sparse.FormatByName). Empty means the serving layer's
	// format selector decides — decisions recorded by the service carry the
	// combo its probes actually ran on, so a stored winner replays on the
	// same storage it was measured with. Stored decisions predating this
	// field deserialize with "" and keep selector behaviour.
	Format string `json:"format,omitempty"`
}

// String renders the candidate compactly: "spcg(s=8,chebyshev)+jacobi@sell+rcm".
func (c Candidate) String() string {
	var b strings.Builder
	b.WriteString(c.Method)
	if c.S > 0 {
		fmt.Fprintf(&b, "(s=%d,%s)", c.S, c.Basis)
	}
	b.WriteString("+")
	b.WriteString(c.Precond)
	if c.Format != "" {
		b.WriteString("@")
		b.WriteString(c.Format)
	}
	return b.String()
}

// Config bounds the candidate space and the trial budget. The zero value
// gets the defaults below.
type Config struct {
	// Methods are the solver names considered (default pcg, spcg, capcg,
	// capcg3 — the Table 1 algorithms the serving daemon exposes; plain PCG
	// is always kept as the safe baseline even when pruning).
	Methods []string
	// SValues are the s-step block sizes tried for s-step methods
	// (default 4, 8, 16).
	SValues []int
	// Bases are the polynomial bases tried (default monomial, chebyshev —
	// the paper's fragile/robust extremes).
	Bases []string
	// Preconds are the preconditioner specs tried (default jacobi, ssor).
	Preconds []string
	// MaxCandidates caps the plan after model-based ranking (default 10).
	// The PCG baseline survives the cap unconditionally.
	MaxCandidates int
	// ProbeIters is the iteration cap of the first trial round (default 40);
	// each successive-halving round multiplies it by 4.
	ProbeIters int
	// Rounds is the number of successive-halving rounds (default 3:
	// 40 → 160 → 640 iterations).
	Rounds int
	// Tol is the relative tolerance probes solve toward; reaching it early
	// ends the probe (default 1e-8).
	Tol float64
	// MonomialCondCutoff is the condition-number estimate above which
	// monomial-basis candidates with S > MonomialMaxS are pruned statically
	// (default 1e6). The Ritz probe's safety factors overestimate κ, so the
	// cutoff is deliberately generous.
	MonomialCondCutoff float64
	// MonomialMaxS is the largest monomial block size allowed on
	// ill-conditioned operators (default 4, the paper's observed stability
	// edge for fragile bases).
	MonomialMaxS int
	// SpectrumIters is the length of the seeding Ritz probe (default 20).
	SpectrumIters int
	// Nodes is the modeled cluster size used for Table 1 ranking
	// (default 1: rank by single-node cost, where serving happens).
	Nodes int
}

func (c Config) withDefaults() Config {
	if len(c.Methods) == 0 {
		c.Methods = []string{"pcg", "spcg", "capcg", "capcg3"}
	}
	if len(c.SValues) == 0 {
		c.SValues = []int{4, 8, 16}
	}
	if len(c.Bases) == 0 {
		c.Bases = []string{"monomial", "chebyshev"}
	}
	if len(c.Preconds) == 0 {
		c.Preconds = []string{"jacobi", "ssor"}
	}
	if c.MaxCandidates < 1 {
		c.MaxCandidates = 10
	}
	if c.ProbeIters < 1 {
		c.ProbeIters = 40
	}
	if c.Rounds < 1 {
		c.Rounds = 3
	}
	if c.Tol <= 0 {
		c.Tol = 1e-8
	}
	if c.MonomialCondCutoff <= 0 {
		c.MonomialCondCutoff = 1e6
	}
	if c.MonomialMaxS < 1 {
		c.MonomialMaxS = 4
	}
	if c.SpectrumIters < 1 {
		c.SpectrumIters = 20
	}
	if c.Nodes < 1 {
		c.Nodes = 1
	}
	return c
}
