package vec

import (
	"spcg/internal/pool"
)

// parallelThreshold is the minimum slice length at which the parallel kernel
// variants fan out to the worker pool; below it the sequential kernels win
// because even a pooled dispatch costs a few channel operations.
const parallelThreshold = 1 << 15

// SetMaxWorkers overrides the worker count used by the Par*/ *Fused kernels
// (0 restores the GOMAXPROCS default). It returns the previous value.
//
// Concurrency contract: the setting lives in the shared pool engine
// (pool.SetDefaultWorkers) and the swap is atomic — concurrent solves observe
// either the old pool or the new one, never a torn size, and dispatches in
// flight on the old pool complete before its workers exit. Kernel results are
// bitwise reproducible for a fixed worker count, so services should size the
// pool once at startup; benchmarks may resize between timed runs.
func SetMaxWorkers(w int) int {
	return pool.SetDefaultWorkers(w)
}

// ParDot is Dot with pool parallelism for large vectors. The partial sums are
// combined in fixed chunk order so the result is deterministic for a fixed
// worker count.
func ParDot(a, b []float64) float64 {
	n := len(a)
	if len(b) != n {
		panic("vec: ParDot length mismatch")
	}
	p := pool.Default()
	if n < parallelThreshold || p.Workers() == 1 {
		return Dot(a, b)
	}
	partials := make([]float64, p.NumParts(n))
	p.Run(n, func(part, lo, hi int) {
		partials[part] = Dot(a[lo:hi], b[lo:hi])
	})
	var s float64
	for _, v := range partials {
		s += v
	}
	return s
}

// ParDot2 computes aᵀb and cᵀd in one pooled dispatch (the fused two-dot
// pattern of PCG's second reduction), deterministic like ParDot.
func ParDot2(a, b, c, d []float64) (float64, float64) {
	n := len(a)
	if len(b) != n || len(c) != n || len(d) != n {
		panic("vec: ParDot2 length mismatch")
	}
	p := pool.Default()
	if n < parallelThreshold || p.Workers() == 1 {
		return Dot(a, b), Dot(c, d)
	}
	parts := p.NumParts(n)
	partials := make([]float64, 2*parts)
	p.Run(n, func(part, lo, hi int) {
		partials[2*part] = Dot(a[lo:hi], b[lo:hi])
		partials[2*part+1] = Dot(c[lo:hi], d[lo:hi])
	})
	var s1, s2 float64
	for t := 0; t < parts; t++ {
		s1 += partials[2*t]
		s2 += partials[2*t+1]
	}
	return s1, s2
}

// ParAxpy is Axpy with pool parallelism for large vectors.
func ParAxpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("vec: ParAxpy length mismatch")
	}
	p := pool.Default()
	if len(x) < parallelThreshold || p.Workers() == 1 {
		Axpy(alpha, x, y)
		return
	}
	p.Run(len(x), func(part, lo, hi int) {
		Axpy(alpha, x[lo:hi], y[lo:hi])
	})
}

// ParAddMul is AddMul with row-range pool parallelism. It now delegates to
// the fused single-sweep kernel; kept for API compatibility.
func ParAddMul(dst, y, x *Block, c []float64) {
	AddMulFused(dst, y, x, c)
}
