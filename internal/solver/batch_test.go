package solver

import (
	"errors"
	"math"
	"testing"

	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// TestBatchPCGMatchesPCG: each column of a batch solve must land on the same
// answer as a standalone PCG run on that right-hand side.
func TestBatchPCGMatchesPCG(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	m, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Dim()
	const k = 4
	bs := vec.NewBlock(n, k)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			bs.Col(j)[i] = math.Sin(float64(i*(j+1))) + 1
		}
	}
	opts := Options{Tol: 1e-9}
	x, stats, err := BatchPCG(a, m, bs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < k; j++ {
		if !stats[j].Converged {
			t.Fatalf("column %d did not converge: %+v", j, stats[j])
		}
		if stats[j].TrueRelResidual > 1e-8 {
			t.Errorf("column %d true residual %v too large", j, stats[j].TrueRelResidual)
		}
		ref, refStats, err := PCG(a, m, bs.Col(j), opts)
		if err != nil || !refStats.Converged {
			t.Fatalf("reference PCG column %d failed: %v", j, err)
		}
		var diff, norm float64
		for i := 0; i < n; i++ {
			d := ref[i] - x.Col(j)[i]
			diff += d * d
			norm += ref[i] * ref[i]
		}
		if math.Sqrt(diff) > 1e-6*math.Sqrt(norm) {
			t.Errorf("column %d deviates from standalone PCG by %v (relative)", j, math.Sqrt(diff/norm))
		}
		if stats[j].Iterations != refStats.Iterations {
			// Lockstep batching must not change per-column iteration counts:
			// the recurrences are independent.
			t.Errorf("column %d: batch %d iterations, standalone %d", j, stats[j].Iterations, refStats.Iterations)
		}
	}
}

// TestBatchPCGMixedDifficulty: columns converging at different speeds freeze
// independently — an easy column must not be dragged to the hard column's
// iteration count.
func TestBatchPCGMixedDifficulty(t *testing.T) {
	a := sparse.Poisson2D(24, 24)
	m, _ := precond.NewJacobi(a)
	n := a.Dim()
	bs := vec.NewBlock(n, 2)
	for i := 0; i < n; i++ {
		bs.Col(0)[i] = 1 // smooth rhs: fast
	}
	for i := 0; i < n; i++ {
		bs.Col(1)[i] = math.Sin(float64(13 * i)) // rough rhs: slower
	}
	_, stats, err := BatchPCG(a, m, bs, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !stats[0].Converged || !stats[1].Converged {
		t.Fatalf("both columns should converge: %+v %+v", stats[0], stats[1])
	}
	if stats[0].Iterations >= stats[1].Iterations {
		t.Logf("note: smooth rhs took %d ≥ rough rhs %d iterations", stats[0].Iterations, stats[1].Iterations)
	}
	// MVProducts must reflect per-column freezing: the fast column stops
	// paying for SpMVs once converged.
	if stats[0].Iterations < stats[1].Iterations && stats[0].MVProducts >= stats[1].MVProducts {
		t.Errorf("frozen column kept charging SpMVs: %d vs %d", stats[0].MVProducts, stats[1].MVProducts)
	}
}

// TestBatchPCGZeroColumn: an all-zero rhs converges immediately with x = 0.
func TestBatchPCGZeroColumn(t *testing.T) {
	a := sparse.Poisson2D(10, 10)
	m, _ := precond.NewJacobi(a)
	n := a.Dim()
	bs := vec.NewBlock(n, 2)
	for i := 0; i < n; i++ {
		bs.Col(1)[i] = 1
	}
	x, stats, err := BatchPCG(a, m, bs, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !stats[0].Converged || stats[0].Iterations != 0 {
		t.Errorf("zero column: %+v", stats[0])
	}
	if vec.Norm2(x.Col(0)) != 0 {
		t.Error("zero rhs produced nonzero solution")
	}
	if !stats[1].Converged {
		t.Errorf("nonzero column failed: %+v", stats[1])
	}
}

// TestBatchPCGCancelled: a closed Cancel channel stops the batch with
// ErrCancelled and partial per-column stats.
func TestBatchPCGCancelled(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	m, _ := precond.NewJacobi(a)
	n := a.Dim()
	bs := vec.NewBlock(n, 3)
	for j := 0; j < 3; j++ {
		for i := 0; i < n; i++ {
			bs.Col(j)[i] = 1
		}
	}
	done := make(chan struct{})
	close(done)
	x, stats, err := BatchPCG(a, m, bs, Options{Tol: 1e-12, Cancel: done})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if x == nil || len(stats) != 3 {
		t.Fatal("cancelled batch must return partial block and stats")
	}
	for j, st := range stats {
		if st.Converged {
			t.Errorf("column %d converged with zero iterations?", j)
		}
	}
}

// TestBatchPCGDimensionErrors rejects malformed inputs up front.
func TestBatchPCGDimensionErrors(t *testing.T) {
	a := sparse.Poisson2D(8, 8)
	m, _ := precond.NewJacobi(a)
	if _, _, err := BatchPCG(a, m, vec.NewBlock(a.Dim()+1, 2), Options{}); !errors.Is(err, ErrDimension) {
		t.Errorf("row mismatch: got %v", err)
	}
	if _, _, err := BatchPCG(a, m, vec.NewBlock(a.Dim(), 0), Options{}); !errors.Is(err, ErrDimension) {
		t.Errorf("empty block: got %v", err)
	}
	if _, _, err := BatchPCG(nil, m, vec.NewBlock(4, 1), Options{}); !errors.Is(err, ErrDimension) {
		t.Errorf("nil matrix: got %v", err)
	}
}
