package dist

import (
	"math"
	"testing"

	"spcg/internal/sparse"
)

// chargeSequence charges a representative event mix.
func chargeSequence(tr *Tracker) {
	for i := 0; i < 40; i++ {
		tr.SpMV()
		tr.PrecApply(1000, 1)
		tr.VectorOp(2000, 24000)
		tr.ReduceLocal(1152, 9216)
		tr.Allreduce(3)
		tr.AllreduceOverlappedBySpMVPrec(2, 500)
		tr.Halo()
	}
}

func TestZeroFaultModelIsNoop(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	m := testMachine()
	clean, err := NewCluster(m, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	mz := m
	mz.Faults = FaultModel{} // explicit zero value
	zero, err := NewCluster(mz, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := NewTracker(clean), NewTracker(zero)
	chargeSequence(t1)
	chargeSequence(t2)
	if t1.Time != t2.Time {
		t.Fatalf("zero fault model changed time: %v vs %v", t1.Time, t2.Time)
	}
	if t1.Counts != t2.Counts {
		t.Fatalf("zero fault model changed counts: %+v vs %+v", t1.Counts, t2.Counts)
	}
	if t2.Counts.RetriedMessages != 0 {
		t.Fatalf("retries charged without faults: %d", t2.Counts.RetriedMessages)
	}
}

func TestCommFaultsChargeRetriesAndBackoff(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	m := testMachine()
	clean, _ := NewCluster(m, 1, a)
	mf := m
	mf.Faults = FaultModel{CommFailProb: 0.3, Seed: 11}
	faulty, err := NewCluster(mf, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	trClean, trFaulty := NewTracker(clean), NewTracker(faulty)
	chargeSequence(trClean)
	chargeSequence(trFaulty)
	if trFaulty.Counts.RetriedMessages == 0 {
		t.Fatal("no retries drawn at 30% failure probability")
	}
	if trFaulty.Time <= trClean.Time {
		t.Fatalf("retry cost not charged: faulty %v <= clean %v", trFaulty.Time, trClean.Time)
	}
	// The extra time must equal the retry pricing: with the per-event retry
	// counts unknown here, check the aggregate lower bound of one timeout per
	// retried message.
	timeout, _ := mf.Faults.timing(mf.NetLatency)
	if extra := trFaulty.Time - trClean.Time; extra < float64(trFaulty.Counts.RetriedMessages)*timeout {
		t.Fatalf("extra time %v below %d retries × timeout %v", extra, trFaulty.Counts.RetriedMessages, timeout)
	}
	// Everything except retries is identical: event counts match.
	if trFaulty.Counts.SpMVs != trClean.Counts.SpMVs || trFaulty.Counts.Allreduces != trClean.Counts.Allreduces {
		t.Fatal("fault model changed event counts")
	}
}

func TestCommFaultStreamIsSeeded(t *testing.T) {
	a := sparse.Poisson1D(64)
	m := testMachine()
	m.Faults = FaultModel{CommFailProb: 0.25, Seed: 3}
	c, _ := NewCluster(m, 1, a)
	run := func() (float64, int) {
		tr := NewTracker(c)
		chargeSequence(tr)
		return tr.Time, tr.Counts.RetriedMessages
	}
	time1, r1 := run()
	time2, r2 := run()
	if time1 != time2 || r1 != r2 {
		t.Fatalf("same seed produced different charges: (%v,%d) vs (%v,%d)", time1, r1, time2, r2)
	}
	m.Faults.Seed = 4
	c2, _ := NewCluster(m, 1, a)
	tr := NewTracker(c2)
	chargeSequence(tr)
	if tr.Counts.RetriedMessages == r1 && tr.Time == time1 {
		t.Fatal("different seeds produced identical retry streams")
	}
}

func TestStragglerStretchesRoofline(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	m := testMachine()
	clean, _ := NewCluster(m, 1, a)
	ms := m
	ms.Faults = FaultModel{StragglerFactor: 2.5}
	slow, err := NewCluster(ms, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	base := clean.Roofline(1e6, 1e6)
	stretched := slow.Roofline(1e6, 1e6)
	if math.Abs(stretched-2.5*base) > 1e-15*stretched {
		t.Fatalf("straggler roofline = %v, want %v", stretched, 2.5*base)
	}
	// Communication costs are unaffected by a straggler.
	if clean.AllreduceTime(4) != slow.AllreduceTime(4) || clean.HaloTime() != slow.HaloTime() {
		t.Fatal("straggler changed communication costs")
	}
}

func TestReplayReproducesFaultChargesExactly(t *testing.T) {
	a := sparse.Poisson2D(24, 24)
	m := testMachine()
	m.Faults = FaultModel{CommFailProb: 0.3, StragglerFactor: 1.5, Seed: 9}
	c1, _ := NewCluster(m, 1, a)
	rec := NewRecordingTracker(c1)
	chargeSequence(rec)
	if rec.Counts.RetriedMessages == 0 {
		t.Fatal("test needs retries to be meaningful")
	}
	// Same cluster: bit-identical.
	if got := rec.ReplayOn(c1); got != rec.Time {
		t.Fatalf("replay on own cluster = %v, direct = %v", got, rec.Time)
	}
	// Different cluster: the same retries are re-priced, matching a direct
	// charge there only up to the retry draws — so compare against replaying
	// the clean part plus the recorded retries by direct construction: a
	// larger cluster with the same fault timing must cost strictly more per
	// collective, hence more in total.
	c8, err := NewCluster(m, 8, a)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.ReplayOn(c8); got <= 0 {
		t.Fatalf("replay on larger cluster = %v", got)
	}
}

func TestRetryCostGrowsExponentially(t *testing.T) {
	a := sparse.Poisson1D(32)
	m := testMachine()
	c, _ := NewCluster(m, 1, a)
	timeout, backoff := m.Faults.timing(m.NetLatency)
	if timeout != 50*m.NetLatency || backoff != 10*m.NetLatency {
		t.Fatalf("default timing = (%v, %v)", timeout, backoff)
	}
	prev := 0.0
	for r := 1; r <= 5; r++ {
		cost := retryCost(c, r)
		want := prev + timeout + backoff*math.Pow(2, float64(r-1))
		if math.Abs(cost-want) > 1e-18 {
			t.Fatalf("retryCost(%d) = %v, want %v", r, cost, want)
		}
		prev = cost
	}
	if retryCost(c, 0) != 0 {
		t.Fatal("zero retries should cost nothing")
	}
}

func TestTrackerStringReportsAllCounts(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	c, _ := NewCluster(testMachine(), 1, a)
	tr := NewTracker(c)
	tr.SpMV()
	tr.ReduceLocal(100, 800)
	tr.Allreduce(1)
	tr.AllreduceOverlappedBySpMVPrec(2, 100)
	s := tr.String()
	for _, want := range []string{"reduceflops=", "overlapped", "retried="} {
		if !contains(s, want) {
			t.Fatalf("String %q missing %q", s, want)
		}
	}
	if tr.Counts.OverlappedAllreduces != 1 {
		t.Fatalf("OverlappedAllreduces = %d", tr.Counts.OverlappedAllreduces)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
