package spcg_test

import (
	"fmt"
	"math"

	"spcg"
)

// ExampleSPCG demonstrates the paper's contribution: s-step PCG with the
// Chebyshev basis, one global reduction per s iterations.
func ExampleSPCG() {
	a := spcg.Poisson2D(32, 32)
	n := a.Dim()
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i)) / math.Sqrt(float64(n))
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)
	m, _ := spcg.NewJacobi(a)

	_, stats, err := spcg.SPCG(a, m, b, spcg.Options{S: 10, Basis: spcg.Chebyshev, Tol: 1e-8})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", stats.Converged)
	fmt.Println("collectives per iteration below one:", float64(stats.Allreduces)/float64(stats.Iterations) < 1)
	// Output:
	// converged: true
	// collectives per iteration below one: true
}

// ExamplePCG solves the same system with standard PCG for comparison: two
// global reductions per iteration.
func ExamplePCG() {
	a := spcg.Poisson1D(100)
	b := make([]float64, 100)
	b[0] = 1
	x, stats, err := spcg.PCG(a, nil, b, spcg.Options{Tol: 1e-10})
	if err != nil {
		panic(err)
	}
	residual := make([]float64, 100)
	a.MulVec(residual, x)
	var maxErr float64
	for i := range residual {
		if d := math.Abs(residual[i] - b[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Println("converged:", stats.Converged)
	fmt.Println("max residual below 1e-9:", maxErr < 1e-9)
	// Output:
	// converged: true
	// max residual below 1e-9: true
}

// ExampleNewCluster shows the virtual-cluster cost model: the same solve
// priced on different node counts.
func ExampleNewCluster() {
	a := spcg.Poisson2D(64, 64)
	b := make([]float64, a.Dim())
	b[0] = 1
	machine := spcg.DefaultMachine()
	machine.RanksPerNode = 16

	times := make([]float64, 0, 2)
	for _, nodes := range []int{1, 8} {
		cl, err := spcg.NewCluster(machine, nodes, a)
		if err != nil {
			panic(err)
		}
		_, stats, err := spcg.PCG(a, nil, b, spcg.Options{Tol: 1e-8, Tracker: spcg.NewTracker(cl)})
		if err != nil {
			panic(err)
		}
		times = append(times, stats.SimTime)
	}
	fmt.Println("both runs priced:", times[0] > 0 && times[1] > 0)
	// Output:
	// both runs priced: true
}
