package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spcg/internal/gateway"
	"spcg/internal/service"
)

// This file benchmarks the horizontal scale-out tier: a spcggw gateway over
// a pool of real in-process spcgd backends, on a mixed repeated-matrix
// workload whose working set exceeds one backend's setup/format caches.
//
// The thesis mirrors the paper's scaling argument at the serving layer: the
// expensive per-matrix work — preconditioner build, Ritz spectral probe,
// storage-format probing and above all the autotuner's trial schedule
// (method:"auto" requests re-run successive-halving probe solves whenever a
// matrix's tuned decision is missing) — is amortizable only if repeat
// requests for a matrix land where that state is warm. A single backend
// whose W-matrix working set exceeds its setup/format/tune capacity C
// thrashes: decisions evict, every repeat re-triggers trial solves worth
// tens of real solves. N backends behind fingerprint-affinity routing
// partition the working set into W/N ≤ C shards, so steady state is
// all-warm. Aggregate throughput then scales even on one machine, because
// the win is avoided recomputation, not added cores.
//
// `spcgbench gateway` exits non-zero (ValidateGateway) unless:
//
//  1. affinity hit-rate on the largest healthy arm ≥ 90%;
//  2. aggregate throughput with 4 backends ≥ 2.5× the 1-backend arm;
//  3. killing one backend mid-run loses zero accepted requests (every
//     logical request still reaches a terminal outcome, through failover
//     and idempotent request_id retries).

// GatewayBenchConfig parameterizes the scale-out benchmark.
type GatewayBenchConfig struct {
	// Arms are the pool sizes compared (default 1, 2, 4).
	Arms []int
	// Requests per arm in the timed phase (default 240).
	Requests int
	// Clients is the concurrent client count (default 8).
	Clients int
	// Matrices is the distinct-matrix working set W (default 24).
	Matrices int
	// CacheSize is each backend's setup/format/tune capacity (default 8 —
	// deliberately < W so a single backend thrashes: evicted tune decisions
	// re-trigger background trial schedules, the dominant amortizable cost).
	CacheSize int
	// Workers is each backend's solver pool size (default 2).
	Workers int
	// Method/S/Tol shape the per-request solve (default auto, s=4, 1e-4;
	// s is sent only for explicit s-step methods).
	Method string
	S      int
	Tol    float64
	// KillAfterFrac is the fraction of failover-phase requests issued before
	// one backend is killed (default 0.25).
	KillAfterFrac float64
}

func (c GatewayBenchConfig) withDefaults() GatewayBenchConfig {
	if len(c.Arms) == 0 {
		c.Arms = []int{1, 2, 4}
	}
	if c.Requests <= 0 {
		c.Requests = 240
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Matrices <= 0 {
		c.Matrices = 24
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 8
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Method == "" {
		c.Method = "auto"
	}
	if c.S <= 0 {
		c.S = 4
	}
	if c.Tol <= 0 {
		c.Tol = 1e-4
	}
	if c.KillAfterFrac <= 0 || c.KillAfterFrac >= 1 {
		c.KillAfterFrac = 0.25
	}
	return c
}

// GatewayArmResult is one pool size's measurements (timed phase only; each
// arm gets one uncounted warmup pass over the working set first).
type GatewayArmResult struct {
	Backends      int     `json:"backends"`
	Requests      int     `json:"requests"`
	Succeeded     int     `json:"succeeded"`
	WallS         float64 `json:"wall_s"`
	ThroughputRPS float64 `json:"throughput_rps"`
	AffinityRate  float64 `json:"affinity_rate"`
	AffinityHits  int64   `json:"affinity_hits"`
	AffinityMiss  int64   `json:"affinity_misses"`
	Spills        int64   `json:"spills"`
	Failovers     int64   `json:"failovers"`
	Shed          int64   `json:"shed"`
	P50MS         float64 `json:"latency_p50_ms"`
	P95MS         float64 `json:"latency_p95_ms"`
}

// GatewayFailoverResult is the mid-run-kill phase.
type GatewayFailoverResult struct {
	Backends  int    `json:"backends"`
	Requests  int    `json:"requests"`
	KillAfter int    `json:"kill_after_requests"`
	Killed    string `json:"killed_backend"`
	// Accepted counts logical requests that got past admission (everything
	// not permanently shed with 429/503); Lost counts accepted requests that
	// never reached a terminal outcome — the acceptance gate demands 0.
	Accepted     int     `json:"accepted"`
	Completed    int     `json:"completed"`
	Lost         int     `json:"lost"`
	Shed         int     `json:"shed"`
	Failovers    int64   `json:"failovers"`
	AffinityRate float64 `json:"affinity_rate"`
	WallS        float64 `json:"wall_s"`
}

// GatewayResult is the full benchmark document (BENCH_gateway.json).
type GatewayResult struct {
	Matrices  int                   `json:"matrices"`
	CacheSize int                   `json:"cache_size"`
	Workers   int                   `json:"workers"`
	Clients   int                   `json:"clients"`
	Method    string                `json:"method"`
	S         int                   `json:"s"`
	Tol       float64               `json:"tol"`
	Arms      []GatewayArmResult    `json:"arms"`
	SpeedupVs1 map[string]float64   `json:"speedup_vs_1_backend"`
	Failover  GatewayFailoverResult `json:"failover"`
}

// benchBackend is one live in-process spcgd: a real service.Server behind a
// real TCP listener, so gateway transport failures are the real thing.
type benchBackend struct {
	svc *service.Server
	srv *http.Server
	url string
}

// kill force-closes the backend's listener and every active connection —
// the closest in-process stand-in for a machine dying mid-solve.
func (b *benchBackend) kill() { _ = b.srv.Close() }

func (b *benchBackend) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	_ = b.svc.Shutdown(ctx)
	_ = b.srv.Close()
}

func startBackendPool(n int, cfg GatewayBenchConfig) ([]*benchBackend, []string, error) {
	var pool []*benchBackend
	var urls []string
	for i := 0; i < n; i++ {
		svc := service.New(service.Config{
			Workers:     cfg.Workers,
			QueueDepth:  64,
			BatchMax:    1, // no coalescing: the benchmark measures routing, not batching
			CacheSize:   cfg.CacheSize,
			TuneEntries: cfg.CacheSize, // tune decisions thrash with the rest of the working set
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, b := range pool {
				b.stop()
			}
			return nil, nil, fmt.Errorf("listen: %v", err)
		}
		srv := &http.Server{Handler: svc.Handler()}
		go func() { _ = srv.Serve(ln) }()
		b := &benchBackend{svc: svc, srv: srv, url: "http://" + ln.Addr().String()}
		pool = append(pool, b)
		urls = append(urls, b.url)
	}
	return pool, urls, nil
}

// benchMatrix names the working set: W distinct mild-contrast
// variable-coefficient operators (distinct seeds ⇒ distinct fingerprints,
// comparable cost, quick convergence — the measured cost contrast is the
// amortizable per-matrix state, not the solve itself).
func benchMatrix(i, w int) string {
	return fmt.Sprintf("varcoeff2d:24:2:%d", 1+i%w)
}

type gwClientResult struct {
	ok       bool // terminal outcome reached
	shed     bool // permanently 429/503 after retries
	latencMS float64
}

// fireOne drives one logical request to a terminal outcome: 429/503 and
// transport blips are retried with backoff (safe — the request_id makes
// resubmission idempotent), anything else is terminal.
func fireOne(client *http.Client, gwURL, matrix, reqID string, cfg GatewayBenchConfig) gwClientResult {
	doc := map[string]any{
		"matrix":     matrix,
		"method":     cfg.Method,
		"tol":        cfg.Tol,
		"request_id": reqID,
	}
	if cfg.Method != "auto" && cfg.Method != "pcg" && cfg.Method != "pcg3" {
		doc["s"] = cfg.S
	}
	body, _ := json.Marshal(doc)
	t0 := time.Now()
	const maxAttempts = 30
	for attempt := 0; attempt < maxAttempts; attempt++ {
		resp, err := client.Post(gwURL+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			time.Sleep(time.Duration(20*(attempt+1)) * time.Millisecond)
			continue
		}
		code := resp.StatusCode
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch code {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			time.Sleep(time.Duration(25*(attempt+1)) * time.Millisecond)
			continue
		default:
			// 200/4xx/5xx-terminal: the job reached a terminal state.
			return gwClientResult{ok: code == http.StatusOK, latencMS: msSince(t0)}
		}
	}
	return gwClientResult{shed: true, latencMS: msSince(t0)}
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Microseconds()) / 1000 }

// runPhase fires total requests over the working set with cfg.Clients
// concurrent clients; onIssue (may be nil) observes each issue index before
// the request fires — the failover phase uses it to trigger the kill.
func runPhase(client *http.Client, gwURL, tag string, total int, cfg GatewayBenchConfig, onIssue func(int)) ([]gwClientResult, time.Duration) {
	results := make([]gwClientResult, total)
	next := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = fireOne(client, gwURL, benchMatrix(i, cfg.Matrices),
					fmt.Sprintf("%s-%d", tag, i), cfg)
			}
		}()
	}
	for i := 0; i < total; i++ {
		if onIssue != nil {
			onIssue(i)
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return results, time.Since(start)
}

func percentile(lat []float64, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	return sorted[int(p*float64(len(sorted)-1))]
}

// RunGateway executes the scale-out arms and the failover phase.
func RunGateway(cfg GatewayBenchConfig, progress io.Writer) (*GatewayResult, error) {
	cfg = cfg.withDefaults()
	if progress == nil {
		progress = io.Discard
	}
	res := &GatewayResult{
		Matrices: cfg.Matrices, CacheSize: cfg.CacheSize, Workers: cfg.Workers,
		Clients: cfg.Clients, Method: cfg.Method, S: cfg.S, Tol: cfg.Tol,
		SpeedupVs1: map[string]float64{},
	}
	client := &http.Client{Timeout: 2 * time.Minute}

	for _, n := range cfg.Arms {
		fmt.Fprintf(progress, "[gateway] arm %d backend(s): warming %d matrices then %d requests × %d clients\n",
			n, cfg.Matrices, cfg.Requests, cfg.Clients)
		arm, err := runArm(client, n, cfg)
		if err != nil {
			return nil, err
		}
		res.Arms = append(res.Arms, *arm)
		fmt.Fprintf(progress, "[gateway]   %.1f req/s, affinity %.1f%%, p95 %.0fms\n",
			arm.ThroughputRPS, 100*arm.AffinityRate, arm.P95MS)
	}
	base := 0.0
	for _, a := range res.Arms {
		if a.Backends == 1 {
			base = a.ThroughputRPS
		}
	}
	if base > 0 {
		for _, a := range res.Arms {
			res.SpeedupVs1[fmt.Sprintf("%d", a.Backends)] = a.ThroughputRPS / base
		}
	}

	// Failover phase on the largest arm.
	maxArm := cfg.Arms[0]
	for _, n := range cfg.Arms {
		if n > maxArm {
			maxArm = n
		}
	}
	fmt.Fprintf(progress, "[gateway] failover: %d backends, killing one after %d%% of %d requests\n",
		maxArm, int(100*cfg.KillAfterFrac), cfg.Requests)
	fo, err := runFailover(client, maxArm, cfg)
	if err != nil {
		return nil, err
	}
	res.Failover = *fo
	fmt.Fprintf(progress, "[gateway]   accepted %d, completed %d, lost %d, failovers %d\n",
		fo.Accepted, fo.Completed, fo.Lost, fo.Failovers)
	return res, nil
}

func newBenchGateway(urls []string) (*gateway.Gateway, *http.Server, string, error) {
	gw, err := gateway.New(gateway.Config{
		Backends:      urls,
		ProbeInterval: 200 * time.Millisecond,
		RetryBackoff:  10 * time.Millisecond,
	})
	if err != nil {
		return nil, nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		gw.Close()
		return nil, nil, "", err
	}
	srv := &http.Server{Handler: gw.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return gw, srv, "http://" + ln.Addr().String(), nil
}

func runArm(client *http.Client, n int, cfg GatewayBenchConfig) (*GatewayArmResult, error) {
	pool, urls, err := startBackendPool(n, cfg)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, b := range pool {
			b.stop()
		}
	}()
	gw, gwSrv, gwURL, err := newBenchGateway(urls)
	if err != nil {
		return nil, err
	}
	defer func() { _ = gwSrv.Close(); gw.Close() }()

	// Warmup: one uncounted pass over the working set, so the arms compare
	// steady state (on the thrashing arm warmup buys nothing — that is the
	// point).
	runPhase(client, gwURL, fmt.Sprintf("warm%d", n), cfg.Matrices, cfg, nil)
	before := gw.Snapshot()

	results, wall := runPhase(client, gwURL, fmt.Sprintf("arm%d", n), cfg.Requests, cfg, nil)
	after := gw.Snapshot()

	arm := &GatewayArmResult{
		Backends:     n,
		Requests:     cfg.Requests,
		WallS:        wall.Seconds(),
		AffinityHits: after.AffinityHits - before.AffinityHits,
		AffinityMiss: after.AffinityMiss - before.AffinityMiss,
		Spills:       after.Spills - before.Spills,
		Failovers:    after.Failovers - before.Failovers,
		Shed:         after.Shed - before.Shed,
	}
	var lats []float64
	for _, r := range results {
		if r.ok {
			arm.Succeeded++
		}
		lats = append(lats, r.latencMS)
	}
	arm.ThroughputRPS = float64(cfg.Requests) / wall.Seconds()
	if tot := arm.AffinityHits + arm.AffinityMiss; tot > 0 {
		arm.AffinityRate = float64(arm.AffinityHits) / float64(tot)
	}
	arm.P50MS = percentile(lats, 0.50)
	arm.P95MS = percentile(lats, 0.95)
	if arm.Succeeded < cfg.Requests {
		return nil, fmt.Errorf("arm %d: only %d/%d requests converged", n, arm.Succeeded, cfg.Requests)
	}
	return arm, nil
}

func runFailover(client *http.Client, n int, cfg GatewayBenchConfig) (*GatewayFailoverResult, error) {
	pool, urls, err := startBackendPool(n, cfg)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, b := range pool {
			b.stop()
		}
	}()
	gw, gwSrv, gwURL, err := newBenchGateway(urls)
	if err != nil {
		return nil, err
	}
	defer func() { _ = gwSrv.Close(); gw.Close() }()

	runPhase(client, gwURL, "fowarm", cfg.Matrices, cfg, nil)

	killAfter := int(cfg.KillAfterFrac * float64(cfg.Requests))
	victim := pool[n-1]
	var killed atomic.Bool
	onIssue := func(i int) {
		if i == killAfter && killed.CompareAndSwap(false, true) {
			victim.kill()
		}
	}
	results, wall := runPhase(client, gwURL, "fo", cfg.Requests, cfg, onIssue)
	snap := gw.Snapshot()

	fo := &GatewayFailoverResult{
		Backends:     n,
		Requests:     cfg.Requests,
		KillAfter:    killAfter,
		Killed:       victim.url,
		Failovers:    snap.Failovers,
		AffinityRate: snap.AffinityRate,
		WallS:        wall.Seconds(),
	}
	for _, r := range results {
		switch {
		case r.shed:
			fo.Shed++
		case r.ok:
			fo.Accepted++
			fo.Completed++
		default:
			// A terminal non-200 outcome (failed/stagnated job): accepted and
			// accounted for — not lost, but not completed-converged either.
			fo.Accepted++
		}
	}
	fo.Lost = fo.Accepted - fo.Completed
	return fo, nil
}

// ValidateGateway is the acceptance gate `spcgbench gateway` exits through.
func ValidateGateway(res *GatewayResult) error {
	var one, max *GatewayArmResult
	for i := range res.Arms {
		a := &res.Arms[i]
		if a.Backends == 1 {
			one = a
		}
		if max == nil || a.Backends > max.Backends {
			max = a
		}
	}
	if one == nil || max == nil || max.Backends < 2 {
		return fmt.Errorf("need a 1-backend arm and a multi-backend arm to validate")
	}
	if max.AffinityRate < 0.90 {
		return fmt.Errorf("affinity hit-rate %.1f%% on the %d-backend arm, want ≥ 90%%",
			100*max.AffinityRate, max.Backends)
	}
	speedup := max.ThroughputRPS / one.ThroughputRPS
	if speedup < 2.5 {
		return fmt.Errorf("aggregate throughput ×%.2f with %d backends vs 1, want ≥ 2.5×",
			speedup, max.Backends)
	}
	if res.Failover.Lost != 0 {
		return fmt.Errorf("%d accepted requests lost across the mid-run backend kill, want 0", res.Failover.Lost)
	}
	if res.Failover.Completed == 0 {
		return fmt.Errorf("failover phase completed no requests")
	}
	return nil
}

// RenderGateway prints the human-readable summary.
func RenderGateway(w io.Writer, res *GatewayResult) {
	fmt.Fprintf(w, "Gateway scale-out: W=%d matrices, cache=%d entries/backend, %s s=%d tol=%.0e, %d clients\n",
		res.Matrices, res.CacheSize, res.Method, res.S, res.Tol, res.Clients)
	fmt.Fprintf(w, "%-9s %10s %10s %10s %9s %9s %9s\n",
		"backends", "req/s", "speedup", "affinity", "p50 ms", "p95 ms", "failovers")
	for _, a := range res.Arms {
		fmt.Fprintf(w, "%-9d %10.1f %9.2fx %9.1f%% %9.1f %9.1f %9d\n",
			a.Backends, a.ThroughputRPS, res.SpeedupVs1[fmt.Sprintf("%d", a.Backends)],
			100*a.AffinityRate, a.P50MS, a.P95MS, a.Failovers)
	}
	fo := res.Failover
	fmt.Fprintf(w, "failover: killed 1 of %d backends after %d requests — accepted %d, completed %d, lost %d (%d failovers, %.1f%% affinity)\n",
		fo.Backends, fo.KillAfter, fo.Accepted, fo.Completed, fo.Lost, fo.Failovers, 100*fo.AffinityRate)
}
