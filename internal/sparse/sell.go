package sparse

import (
	"fmt"
	"sort"

	"spcg/internal/pool"
	"spcg/internal/vec"
)

// SELL is a SELL-C-σ (sliced ELLPACK) matrix: rows are sorted by descending
// length inside windows of σ rows, grouped into slices of C rows, and each
// slice is stored column-major, padded to its widest row. The layout is the
// node-level storage the related s-step work (D'Ambra et al., Bernaschi et
// al.) uses on accelerators; in this scalar Go engine its win is instruction
// level: the slice-column inner loop carries C independent accumulator
// chains where CSR's row loop carries one, and Val/ColIdx are streamed
// strictly sequentially.
//
// A SELL is a drop-in operator equal to the CSR it was converted from: the
// σ-window sorting permutation stays internal (results are gathered/scattered
// through it), so MulVec computes the same A·x — per-row sums accumulate in
// the same ascending-column order as CSR, padding contributes exact zero
// terms. Locality-restoring reordering of the operator itself (RCM) is a
// separate, explicit transformation chosen by the format selector.
//
// Like CSR, a SELL is immutable after construction and safe for concurrent
// kernels.
type SELL struct {
	n     int
	c     int // slice height
	sigma int // sorting-window size (multiple of c)
	nnz   int // stored entries excluding padding

	perm     []int // perm[packed] = original row index
	rowLen   []int // per packed row: stored entries (excludes padding)
	sliceOff []int // len = slices+1; entry offsets into col/val
	width    []int // per slice: widest row
	col      []int
	val      []float64

	// parts caches nnz-balanced slice partitions per worker count, the same
	// copy-on-write scheme CSR uses for row partitions.
	parts partsPointer
}

// DefaultSliceHeight is the default SELL slice height C. Eight rows per
// slice matches the kernel engine's 4-way-unrolled vector kernels' working
// set and keeps the per-slice accumulator block inside registers.
const DefaultSliceHeight = 8

// DefaultSigma is the default sorting-window size σ. Sorting within windows
// of 64 rows flattens row-length variance enough to keep padding small while
// bounding how far the gather/scatter permutation can displace a row from
// its neighbours (x-vector locality).
const DefaultSigma = 64

// SELLFromCSR converts a to SELL-C-σ. c ≤ 0 and sigma ≤ 0 select the
// defaults; sigma is rounded up to a multiple of c so slices never straddle
// a sorting window. The conversion is deterministic: row sorting is stable,
// so equal-length rows keep their relative order.
func SELLFromCSR(a *CSR, c, sigma int) *SELL {
	if c <= 0 {
		c = DefaultSliceHeight
	}
	if sigma <= 0 {
		sigma = DefaultSigma
	}
	if sigma < c {
		sigma = c
	}
	if r := sigma % c; r != 0 {
		sigma += c - r
	}
	n := a.Dim()
	m := &SELL{n: n, c: c, sigma: sigma, nnz: a.NNZ()}

	// σ-window sort: descending row length, stable within each window.
	m.perm = make([]int, n)
	for i := range m.perm {
		m.perm[i] = i
	}
	for w0 := 0; w0 < n; w0 += sigma {
		w1 := w0 + sigma
		if w1 > n {
			w1 = n
		}
		win := m.perm[w0:w1]
		sort.SliceStable(win, func(x, y int) bool {
			return a.RowNNZ(win[x]) > a.RowNNZ(win[y])
		})
	}

	slices := (n + c - 1) / c
	m.width = make([]int, slices)
	m.sliceOff = make([]int, slices+1)
	m.rowLen = make([]int, n)
	for p, old := range m.perm {
		m.rowLen[p] = a.RowNNZ(old)
		if s := p / c; m.rowLen[p] > m.width[s] {
			m.width[s] = m.rowLen[p]
		}
	}
	for s := 0; s < slices; s++ {
		m.sliceOff[s+1] = m.sliceOff[s] + m.width[s]*m.sliceHeight(s)
	}

	total := m.sliceOff[slices]
	m.col = make([]int, total)
	m.val = make([]float64, total)
	for s := 0; s < slices; s++ {
		h := m.sliceHeight(s)
		off := m.sliceOff[s]
		for r := 0; r < h; r++ {
			p := s*c + r
			old := m.perm[p]
			lo := a.RowPtr[old]
			rl := m.rowLen[p]
			// Padding points at the row's last column (its own index for an
			// empty row) with value zero: the padded terms contribute exact
			// zeros while touching an already-hot cache line of x.
			padCol := old
			if rl > 0 {
				padCol = a.ColIdx[lo+rl-1]
			}
			for j := 0; j < m.width[s]; j++ {
				k := off + j*h + r
				if j < rl {
					m.col[k] = a.ColIdx[lo+j]
					m.val[k] = a.Val[lo+j]
				} else {
					m.col[k] = padCol
					// val is already zero.
				}
			}
		}
	}
	return m
}

// ToCSR reconstructs the exact CSR the SELL was converted from: padding is
// dropped via the stored row lengths and rows return to their original
// order, so SELLFromCSR∘ToCSR is the identity on well-formed CSR matrices.
func (m *SELL) ToCSR() *CSR {
	out := &CSR{N: m.n, RowPtr: make([]int, m.n+1)}
	out.ColIdx = make([]int, m.nnz)
	out.Val = make([]float64, m.nnz)
	// First pass: original row lengths.
	for p, old := range m.perm {
		out.RowPtr[old+1] = m.rowLen[p]
	}
	for i := 0; i < m.n; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	for p, old := range m.perm {
		s := p / m.c
		h := m.sliceHeight(s)
		r := p - s*m.c
		off := m.sliceOff[s]
		dst := out.RowPtr[old]
		for j := 0; j < m.rowLen[p]; j++ {
			out.ColIdx[dst+j] = m.col[off+j*h+r]
			out.Val[dst+j] = m.val[off+j*h+r]
		}
	}
	return out
}

// sliceHeight returns the number of real rows in slice s (the last slice of
// a non-multiple-of-C matrix is short; no phantom rows are stored).
func (m *SELL) sliceHeight(s int) int {
	h := m.n - s*m.c
	if h > m.c {
		h = m.c
	}
	return h
}

// Dim returns the matrix dimension n.
func (m *SELL) Dim() int { return m.n }

// NNZ returns the number of stored entries, excluding padding.
func (m *SELL) NNZ() int { return m.nnz }

// C returns the slice height.
func (m *SELL) C() int { return m.c }

// Sigma returns the sorting-window size.
func (m *SELL) Sigma() int { return m.sigma }

// Slices returns the slice count.
func (m *SELL) Slices() int { return len(m.width) }

// PaddingRatio reports padded entries as a fraction of nnz (0 = no padding).
func (m *SELL) PaddingRatio() float64 {
	if m.nnz == 0 {
		return 0
	}
	return float64(len(m.val)-m.nnz) / float64(m.nnz)
}

// mulSlices computes the SpMV rows of slices [lo, hi) into dst. acc must
// have at least c entries and be private to the caller.
func (m *SELL) mulSlices(dst, x, acc []float64, lo, hi int) {
	for s := lo; s < hi; s++ {
		h := m.sliceHeight(s)
		w := m.width[s]
		off := m.sliceOff[s]
		a := acc[:h]
		for r := range a {
			a[r] = 0
		}
		for j := 0; j < w; j++ {
			b := off + j*h
			cols := m.col[b : b+h]
			vals := m.val[b : b+h]
			for r, cidx := range cols {
				a[r] += vals[r] * x[cidx]
			}
		}
		base := s * m.c
		for r := 0; r < h; r++ {
			dst[m.perm[base+r]] = a[r]
		}
	}
}

// MulVec computes dst = A·x sequentially. dst must not alias x.
func (m *SELL) MulVec(dst, x []float64) {
	if len(x) != m.n || len(dst) != m.n {
		panic(fmt.Sprintf("sparse: SELL MulVec dim mismatch n=%d len(x)=%d len(dst)=%d", m.n, len(x), len(dst)))
	}
	acc := make([]float64, m.c)
	m.mulSlices(dst, x, acc, 0, m.Slices())
}

// sliceRanges splits the slices into p contiguous ranges of approximately
// equal stored entries (padding included: it is streamed too), memoized per
// p like CSR.balancedRanges.
func (m *SELL) sliceRanges(p int) []int {
	if c := m.parts.Load(); c != nil {
		for _, e := range c.entries {
			if e.p == p {
				return e.bounds
			}
		}
	}
	slices := m.Slices()
	bounds := make([]int, p+1)
	total := m.sliceOff[slices]
	s := 0
	for w := 1; w < p; w++ {
		target := total * w / p
		for s < slices && m.sliceOff[s] < target {
			s++
		}
		bounds[w] = s
	}
	bounds[p] = slices
	old := m.parts.Load()
	var entries []rowPartition
	if old != nil {
		entries = old.entries
		if len(entries) >= maxCachedPartitions {
			entries = entries[1:]
		}
	}
	nc := &partitionCache{entries: append(append([]rowPartition(nil), entries...), rowPartition{p: p, bounds: bounds})}
	m.parts.CompareAndSwap(old, nc)
	return bounds
}

// MulVecPar computes dst = A·x with nnz-balanced slice ranges dispatched on
// the persistent worker pool. Slices write disjoint row sets, so the output
// is identical to MulVec for any worker count.
func (m *SELL) MulVecPar(dst, x []float64) {
	if len(x) != m.n || len(dst) != m.n {
		panic("sparse: SELL MulVecPar dim mismatch")
	}
	p := pool.Default()
	if m.nnz < parSpMVThreshold || p.Workers() == 1 {
		m.MulVec(dst, x)
		return
	}
	pool.CountSpMV()
	workers := p.Workers()
	if workers > m.Slices() {
		workers = m.Slices()
	}
	bounds := m.sliceRanges(workers)
	p.RunBounds(bounds, func(part, lo, hi int) {
		acc := make([]float64, m.c)
		m.mulSlices(dst, x, acc, lo, hi)
	})
}

// MulBlock computes one SpMV per column: dst_j = A·x_j.
func (m *SELL) MulBlock(dst, x *vec.Block) {
	if dst.S() != x.S() {
		panic("sparse: SELL MulBlock column-count mismatch")
	}
	for j := 0; j < x.S(); j++ {
		m.MulVec(dst.Col(j), x.Col(j))
	}
}

// MulBlockPar computes the batched SpMV dst_j = A·x_j over a 2-D task grid
// (columns × slice ranges), mirroring CSR.MulBlockPar so multi-RHS batch
// solves keep every pool worker busy on the sliced format too.
func (m *SELL) MulBlockPar(dst, x *vec.Block) {
	s := x.S()
	if dst.S() != s {
		panic("sparse: SELL MulBlockPar column-count mismatch")
	}
	if s == 0 {
		return
	}
	if dst.N != m.n || x.N != m.n {
		panic("sparse: SELL MulBlockPar dim mismatch")
	}
	p := pool.Default()
	if m.nnz*s < parSpMVThreshold || p.Workers() == 1 {
		for j := 0; j < s; j++ {
			m.MulVec(dst.Col(j), x.Col(j))
		}
		return
	}
	pool.CountSpMV()
	rb := (p.Workers() + s - 1) / s
	if rb > m.Slices() {
		rb = m.Slices()
	}
	bounds := m.sliceRanges(rb)
	p.Dispatch(s*rb, func(t int) {
		j, blk := t/rb, t%rb
		lo, hi := bounds[blk], bounds[blk+1]
		if lo < hi {
			acc := make([]float64, m.c)
			m.mulSlices(dst.Col(j), x.Col(j), acc, lo, hi)
		}
	})
}

// fusedSlices advances the basis recurrence for slices [lo, hi): the SELL
// analogue of the CSR fused kernel body, with the same per-row arithmetic
// order so results agree with CSR's to the bit when the row sums do.
func (m *SELL) fusedSlices(sNext, u, sCur, sPrev []float64, theta, mu, inv float64, dinv, uNext, acc []float64, lo, hi int) {
	for s := lo; s < hi; s++ {
		h := m.sliceHeight(s)
		w := m.width[s]
		off := m.sliceOff[s]
		a := acc[:h]
		for r := range a {
			a[r] = 0
		}
		for j := 0; j < w; j++ {
			b := off + j*h
			cols := m.col[b : b+h]
			vals := m.val[b : b+h]
			for r, cidx := range cols {
				a[r] += vals[r] * u[cidx]
			}
		}
		base := s * m.c
		for r := 0; r < h; r++ {
			i := m.perm[base+r]
			v := a[r] - theta*sCur[i]
			if sPrev != nil {
				v -= mu * sPrev[i]
			}
			v *= inv
			sNext[i] = v
			if uNext != nil {
				uNext[i] = dinv[i] * v
			}
		}
	}
}

// FusedBasisStepPar advances one matrix-powers-kernel basis column in a
// single pass over the slices — the SELL counterpart of CSR's fused SpMV +
// three-term recurrence + diagonal-preconditioner kernel. See
// CSR.FusedBasisStepPar for the recurrence; semantics and cost accounting
// are identical.
func (m *SELL) FusedBasisStepPar(sNext, u, sCur, sPrev []float64, theta, mu, gamma float64, dinv, uNext []float64) {
	n := m.n
	if len(sNext) != n || len(u) != n || len(sCur) != n || len(dinv) != n {
		panic(fmt.Sprintf("sparse: SELL FusedBasisStepPar dim mismatch n=%d", n))
	}
	if sPrev != nil && len(sPrev) != n {
		panic("sparse: SELL FusedBasisStepPar sPrev length mismatch")
	}
	if uNext != nil && len(uNext) != n {
		panic("sparse: SELL FusedBasisStepPar uNext length mismatch")
	}
	if gamma == 0 {
		panic("sparse: SELL FusedBasisStepPar with zero gamma")
	}
	pool.CountFusedBasisStep()
	inv := 1 / gamma
	p := pool.Default()
	if m.nnz < parSpMVThreshold || p.Workers() == 1 {
		acc := make([]float64, m.c)
		m.fusedSlices(sNext, u, sCur, sPrev, theta, mu, inv, dinv, uNext, acc, 0, m.Slices())
		return
	}
	workers := p.Workers()
	if workers > m.Slices() {
		workers = m.Slices()
	}
	bounds := m.sliceRanges(workers)
	p.RunBounds(bounds, func(part, lo, hi int) {
		acc := make([]float64, m.c)
		m.fusedSlices(sNext, u, sCur, sPrev, theta, mu, inv, dinv, uNext, acc, lo, hi)
	})
}
