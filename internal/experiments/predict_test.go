package experiments

import (
	"testing"

	"spcg/internal/perfmodel"
)

// TestPredictRowShape pins the contract RunPredict's consumers (RenderPredict
// and the autotuner's model ranking) rely on: rows cycle the five Table 1
// algorithms in perfmodel.Algorithms() order, once per node count, each with
// a positive closed-form prediction.
func TestPredictRowShape(t *testing.T) {
	cfg := testConfig()
	nodeCounts := []int{1, 2}
	rows, err := RunPredict(cfg, 16, nodeCounts)
	if err != nil {
		t.Fatal(err)
	}
	algs := perfmodel.Algorithms()
	if want := len(nodeCounts) * len(algs); len(rows) != want {
		t.Fatalf("got %d rows, want %d (algorithms × node counts)", len(rows), want)
	}
	for i, r := range rows {
		wantAlg := algs[i%len(algs)]
		wantNodes := nodeCounts[i/len(algs)]
		if r.Alg != wantAlg || r.Nodes != wantNodes {
			t.Errorf("row %d = (%s, %d nodes), want (%s, %d nodes)", i, r.Alg, r.Nodes, wantAlg, wantNodes)
		}
		if r.Predicted <= 0 {
			t.Errorf("row %d (%s, %d nodes): non-positive prediction %g", i, r.Alg, r.Nodes, r.Predicted)
		}
	}
}

// TestGlobalReductionsGolden pins the paper's headline Table 1 closed forms
// the time model predicts from: standard PCG performs 2s global reductions
// per s steps (two dot products per iteration), every s-step variant exactly
// one. Checked for all five algorithms at s ∈ {2, 4, 8}, alongside the
// consistency conditions the Table 1 rows must satisfy.
func TestGlobalReductionsGolden(t *testing.T) {
	for _, s := range []int{2, 4, 8} {
		for _, alg := range perfmodel.Algorithms() {
			want := 1
			if alg == perfmodel.PCG {
				want = 2 * s
			}
			if got := perfmodel.GlobalReductionsPerSSteps(alg, s); got != want {
				t.Errorf("GlobalReductionsPerSSteps(%s, s=%d) = %d, want %d", alg, s, got, want)
			}
			c, err := perfmodel.Table1(alg, s)
			if err != nil {
				t.Fatalf("Table1(%s, s=%d): %v", alg, s, err)
			}
			// Per s steps every algorithm must touch A at least s times and
			// produce reduction operands for its collectives.
			if c.MVAndPrec < s {
				t.Errorf("Table1(%s, s=%d): MVAndPrec = %d < s", alg, s, c.MVAndPrec)
			}
			if c.LocalReductions <= 0 {
				t.Errorf("Table1(%s, s=%d): no local reduction work", alg, s)
			}
			if perfmodel.ReductionPayload(alg, s) <= 0 {
				t.Errorf("ReductionPayload(%s, s=%d) not positive", alg, s)
			}
		}
	}
}
