package experiments

import (
	"fmt"
	"io"
	"math"

	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/obs"
	"spcg/internal/perfmodel"
	"spcg/internal/pool"
	"spcg/internal/solver"
	"spcg/internal/sparse"
)

// TraceRow is one traced solve: the phase breakdown of a real shared-memory
// run plus the Table 1 collective-count prediction it is checked against.
type TraceRow struct {
	Alg       perfmodel.Algorithm `json:"alg"`
	Iters     int                 `json:"iterations"`
	Converged bool                `json:"converged"`
	// Breakdown is the measured per-phase decomposition (obs.Tracer).
	Breakdown obs.Breakdown `json:"breakdown"`
	// CollectivesPerS is the measured number of global reductions per s
	// steps; ExpectedPerS is the Table 1 closed form for the same quantity.
	CollectivesPerS float64 `json:"collectives_per_s"`
	ExpectedPerS    float64 `json:"expected_per_s"`
}

// RunTrace solves one 3D Poisson problem (Jacobi preconditioner; Chebyshev
// basis for sPCG) with PCG and sPCG under a phase tracer and returns the
// per-phase breakdowns, each annotated with the Table 1 collective-count
// prediction. The runs are real shared-memory solves — phase times are wall
// time on this machine — with a cost-model tracker attached so collectives
// and halo exchanges are counted too.
func RunTrace(cfg Config, dim int) ([]TraceRow, error) {
	cfg = cfg.withDefaults()
	if dim <= 0 {
		dim = 24
	}
	a := sparse.Poisson3D(dim, dim, dim)
	st, err := newSetup(a, "jacobi", cfg.PrecondDegree)
	if err != nil {
		return nil, err
	}
	cl, err := dist.NewCluster(cfg.Machine, 1, a)
	if err != nil {
		m := cfg.Machine
		m.RanksPerNode = 8
		cl, err = dist.NewCluster(m, 1, a)
		if err != nil {
			return nil, err
		}
	}

	runs := []struct {
		alg perfmodel.Algorithm
		run solverFn
		bt  basis.Type
	}{
		{perfmodel.PCG, solver.PCG, basis.Monomial},
		{perfmodel.SPCG, solver.SPCG, basis.Chebyshev},
	}
	var out []TraceRow
	for _, r := range runs {
		opts := basisOpts(cfg, r.bt, solver.RecursiveResidualMNorm)
		opts.Tracker = dist.NewTracker(cl)
		opts.Trace = obs.New(0)
		// Mirror the kernel engine's dispatches into the same trace; the
		// hook is process-global, so scope it to this run.
		pool.SetTracer(opts.Trace)
		iters, converged, stats := runOne(r.run, st, opts)
		pool.SetTracer(nil)
		if stats == nil {
			return nil, fmt.Errorf("experiments: trace: %s returned no stats", r.alg)
		}
		row := TraceRow{
			Alg:          r.alg,
			Iters:        iters,
			Converged:    converged,
			Breakdown:    opts.Trace.Breakdown(),
			ExpectedPerS: float64(perfmodel.GlobalReductionsPerSSteps(r.alg, cfg.S)),
		}
		if stats.Iterations > 0 {
			row.CollectivesPerS = float64(stats.Allreduces) * float64(cfg.S) / float64(stats.Iterations)
		}
		out = append(out, row)
	}
	return out, nil
}

// ValidateTrace checks each traced run's measured collectives per s steps
// against the Table 1 closed form, with the same once-per-solve
// initialization slack ValidateTable1 uses. It also requires that every run
// recorded timed spans — a trace with no phases means the instrumentation
// came unthreaded.
func ValidateTrace(rows []TraceRow, s int) error {
	for _, r := range rows {
		if len(r.Breakdown.Phases) == 0 || r.Breakdown.TotalSeconds <= 0 {
			return fmt.Errorf("experiments: trace: %s recorded no timed phases", r.Alg)
		}
		slack := 2.0*float64(s)/10 + 1
		if math.Abs(r.CollectivesPerS-r.ExpectedPerS) > slack {
			return fmt.Errorf("experiments: trace: %s measured %.2f collectives per %d steps, Table 1 says %g",
				r.Alg, r.CollectivesPerS, s, r.ExpectedPerS)
		}
	}
	return nil
}

// RenderTrace writes each run's phase table with its collective-count check.
func RenderTrace(w io.Writer, rows []TraceRow, s int) {
	for i, r := range rows {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%s: %d iterations (converged=%v), %.2f collectives per s=%d steps (Table 1: %g)\n",
			r.Alg, r.Iters, r.Converged, r.CollectivesPerS, s, r.ExpectedPerS)
		r.Breakdown.Render(w)
	}
}
