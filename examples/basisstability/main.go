// Basis stability: reproduce the paper's central numerical observation
// (§2.3, §5.2) — at s = 10 the monomial basis destroys s-step convergence
// while Newton and Chebyshev bases track standard PCG.
//
//	go run ./examples/basisstability
package main

import (
	"fmt"
	"log"
	"math"

	"spcg"
)

func main() {
	// A variable-coefficient diffusion problem: hard enough that basis
	// conditioning matters, the class the paper's Table 2 draws from.
	a := spcg.VarCoeff2D(64, 64, 3, 42)
	n := a.Dim()
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = 1 / math.Sqrt(float64(n))
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)
	m, err := spcg.NewJacobi(a)
	if err != nil {
		log.Fatal(err)
	}

	_, ref, err := spcg.PCG(a, m, b, spcg.Options{Tol: 1e-8, Criterion: spcg.TrueResidual2Norm})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCG reference: %d iterations\n\n", ref.Iterations)

	fmt.Println("sPCG iterations by basis type and s (- = stagnated/diverged):")
	fmt.Printf("%-10s", "basis")
	sValues := []int{2, 5, 10, 15}
	for _, s := range sValues {
		fmt.Printf("  s=%-5d", s)
	}
	fmt.Println()
	for _, bt := range []spcg.BasisType{spcg.Monomial, spcg.Newton, spcg.Chebyshev} {
		fmt.Printf("%-10s", bt)
		for _, s := range sValues {
			_, stats, err := spcg.SPCG(a, m, b, spcg.Options{
				S: s, Basis: bt, Tol: 1e-8,
				Criterion:     spcg.TrueResidual2Norm,
				MaxIterations: 6000,
			})
			if err != nil {
				log.Fatal(err)
			}
			if stats.Converged {
				fmt.Printf("  %-7d", stats.Iterations)
			} else {
				fmt.Printf("  %-7s", "-")
			}
		}
		fmt.Println()
	}
	fmt.Println("\nThe monomial basis fails for s ≳ 5 because its columns align with the")
	fmt.Println("dominant eigenvector (power iteration); Newton/Chebyshev bases stay")
	fmt.Println("well-conditioned, which is the paper's motivation for generalizing")
	fmt.Println("sPCGmon to arbitrary basis types.")
}
