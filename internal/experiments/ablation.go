package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"spcg/internal/basis"
	"spcg/internal/solver"
	"spcg/internal/sparse"
)

// AblationResult collects the design-choice studies DESIGN.md calls out:
// basis type × s sweep, Leja ordering, moment-Hankel vs direct Gram, and
// residual replacement.
type AblationResult struct {
	// BasisSweep[basis][i] is the iteration count of sPCG at SValues[i]
	// (0 = no convergence).
	SValues    []int
	BasisSweep map[string][]int
	// LejaIters/NaturalIters: sPCG Newton-basis iterations with
	// Leja-ordered vs naturally-ordered shifts at the largest s.
	LejaIters, NaturalIters int
	LejaOk, NaturalOk       bool
	// MomentIters/DirectIters: sPCGmon (moment Hankel) vs sPCG-monomial
	// (direct Gram) at moderate s; MomentResidual/DirectResidual are the
	// final true residuals.
	MomentIters, DirectIters       int
	MomentOk, DirectOk             bool
	MomentResidual, DirectResidual float64
	// RR*: residual replacement off/on at the tightest tolerance.
	RROffResidual, RROnResidual float64
	RRFired                     int
	// Degree sweep: PCG and sPCG iterations by Chebyshev preconditioner
	// degree (the paper pairs the cheap degrees with s-step methods because
	// they add no global synchronization).
	Degrees               []int
	DegreePCG, DegreeSPCG []int
}

// RunAblation performs the ablations on a variable-coefficient 2D problem
// hard enough to separate the variants.
func RunAblation(cfg Config) (*AblationResult, error) {
	cfg = cfg.withDefaults()
	a := sparse.VarCoeff2D(64, 64, 3, 1234)
	st, err := newSetup(a, "jacobi", cfg.PrecondDegree)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{
		SValues:    []int{2, 5, 10, 15, 20},
		BasisSweep: map[string][]int{},
	}

	// Basis × s sweep on sPCG.
	for _, bt := range []basis.Type{basis.Monomial, basis.Newton, basis.Chebyshev} {
		series := make([]int, len(res.SValues))
		for i, s := range res.SValues {
			opts := basisOpts(cfg, bt, solver.TrueResidual2Norm)
			opts.S = s
			iters, ok, _ := runOne(solver.SPCG, st, opts)
			if ok {
				series[i] = iters
			}
		}
		res.BasisSweep[bt.String()] = series
	}

	// Leja vs natural shift ordering at s = 15.
	s := 15
	{
		opts := basisOpts(cfg, basis.Newton, solver.TrueResidual2Norm)
		opts.S = s
		res.LejaIters, res.LejaOk, _ = runOne(solver.SPCG, st, opts)

		// Natural (ascending) shifts: bypass NewtonParams' Leja ordering.
		shifts := append([]float64(nil), st.spectrum.Ritz...)
		sort.Float64s(shifts)
		theta := make([]float64, s)
		for l := range theta {
			theta[l] = shifts[l%len(shifts)]
		}
		scale := (st.spectrum.LambdaMax - st.spectrum.LambdaMin) / 4
		params := &basis.Params{Type: basis.Newton, Theta: theta, Gamma: fill(s, scale), Mu: make([]float64, s-1)}
		opts = basisOpts(cfg, basis.Newton, solver.TrueResidual2Norm)
		opts.S = s
		opts.BasisParams = params
		res.NaturalIters, res.NaturalOk, _ = runOne(solver.SPCG, st, opts)
	}

	// sPCGmon (moments) vs sPCG monomial (direct Gram) at s = 6.
	{
		opts := basisOpts(cfg, basis.Monomial, solver.TrueResidual2Norm)
		opts.S = 6
		var stats *solver.Stats
		res.MomentIters, res.MomentOk, stats = runOne(solver.SPCGMon, st, opts)
		if stats != nil {
			res.MomentResidual = stats.TrueRelResidual
		}
		res.DirectIters, res.DirectOk, stats = runOne(solver.SPCG, st, opts)
		if stats != nil {
			res.DirectResidual = stats.TrueRelResidual
		}
	}

	// Chebyshev preconditioner degree sweep (fresh setups: the
	// preconditioner changes the operator the basis sees).
	res.Degrees = []int{1, 2, 3, 5, 8}
	for _, deg := range res.Degrees {
		stDeg, err := newSetup(a, "chebyshev", deg)
		if err != nil {
			return nil, err
		}
		opts := basisOpts(cfg, basis.Chebyshev, solver.TrueResidual2Norm)
		iters, ok, _ := runOne(solver.PCG, stDeg, opts)
		if !ok {
			iters = 0
		}
		res.DegreePCG = append(res.DegreePCG, iters)
		iters, ok, _ = runOne(solver.SPCG, stDeg, opts)
		if !ok {
			iters = 0
		}
		res.DegreeSPCG = append(res.DegreeSPCG, iters)
	}

	// Residual replacement at a tight tolerance.
	{
		opts := basisOpts(cfg, basis.Chebyshev, solver.RecursiveResidualMNorm)
		opts.S = 10
		opts.Tol = 1e-12
		_, _, stats := runOne(solver.SPCG, st, opts)
		if stats != nil {
			res.RROffResidual = stats.TrueRelResidual
		}
		opts.ResidualReplacement = true
		_, _, stats = runOne(solver.SPCG, st, opts)
		if stats != nil {
			res.RROnResidual = stats.TrueRelResidual
			res.RRFired = stats.ResidualReplacements
		}
	}
	return res, nil
}

// RenderAblation writes the ablation results.
func RenderAblation(w io.Writer, r *AblationResult) {
	fmt.Fprintln(w, "Ablation: sPCG iterations by basis type and s (VarCoeff2D 64×64, Jacobi, true-residual 1e-9)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "basis")
	for _, s := range r.SValues {
		fmt.Fprintf(tw, "\ts=%d", s)
	}
	fmt.Fprintln(tw)
	for _, name := range []string{"monomial", "newton", "chebyshev"} {
		fmt.Fprint(tw, name)
		for _, it := range r.BasisSweep[name] {
			fmt.Fprintf(tw, "\t%s", hyph(it, it > 0))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintf(w, "\nNewton shifts at s=15: Leja %s vs natural %s iterations\n",
		hyph(r.LejaIters, r.LejaOk), hyph(r.NaturalIters, r.NaturalOk))
	fmt.Fprintf(w, "Scalar Work at s=6 (monomial): moment-Hankel %s iters (true rel. res. %.2e) vs direct Gram %s iters (%.2e)\n",
		hyph(r.MomentIters, r.MomentOk), r.MomentResidual, hyph(r.DirectIters, r.DirectOk), r.DirectResidual)
	fmt.Fprintf(w, "Residual replacement at tol 1e-12: off %.2e, on %.2e (fired %d times)\n",
		r.RROffResidual, r.RROnResidual, r.RRFired)
	fmt.Fprint(w, "\nChebyshev preconditioner degree sweep (iterations):\ndegree")
	for _, d := range r.Degrees {
		fmt.Fprintf(w, "\t%d", d)
	}
	fmt.Fprint(w, "\nPCG   ")
	for _, it := range r.DegreePCG {
		fmt.Fprintf(w, "\t%s", hyph(it, it > 0))
	}
	fmt.Fprint(w, "\nsPCG  ")
	for _, it := range r.DegreeSPCG {
		fmt.Fprintf(w, "\t%s", hyph(it, it > 0))
	}
	fmt.Fprintln(w)
}

func fill(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}
