package sparse

import (
	"math"
	"time"
)

// FormatChoice records the storage decision for one matrix: which format the
// hot SpMV path should read, whether the operator is RCM-reordered first,
// and the structure statistics plus probe timings that drove the decision.
type FormatChoice struct {
	Format  string `json:"format"`  // "csr" or "sell"
	Reorder bool   `json:"reorder"` // RCM permutation applied to the operator

	C     int `json:"c,omitempty"`     // SELL slice height (when Format == "sell")
	Sigma int `json:"sigma,omitempty"` // SELL sorting window

	RowCV           float64 `json:"row_cv"`            // row-length coefficient of variation
	PaddingRatio    float64 `json:"padding_ratio"`     // SELL padded entries / nnz (estimate)
	BandwidthBefore int     `json:"bandwidth_before"`  // natural-order bandwidth
	BandwidthAfter  int     `json:"bandwidth_after"`   // RCM bandwidth (== before if RCM rejected)
	ProbeCSRNs      int64   `json:"probe_csr_ns"`      // measured natural-CSR SpMV (0 = probe skipped)
	ProbeChosenNs   int64   `json:"probe_selected_ns"` // measured SpMV of the selected combo
}

// Name renders the combo as one of "csr", "sell", "csr+rcm", "sell+rcm" —
// the identifier used by autotune candidates, metrics, and bench reports.
func (c FormatChoice) Name() string {
	name := c.Format
	if c.Reorder {
		name += "+rcm"
	}
	return name
}

// FormatByName parses a Name() string back into format and reorder parts;
// ok is false for anything else. Empty input means "csr" (the zero choice),
// so stored autotune decisions from before the format dimension still load.
func FormatByName(name string) (format string, reorder, ok bool) {
	switch name {
	case "", "csr":
		return "csr", false, true
	case "sell":
		return "sell", false, true
	case "csr+rcm":
		return "csr", true, true
	case "sell+rcm":
		return "sell", true, true
	}
	return "", false, false
}

// Selection thresholds. The structure heuristics only prune candidates; the
// final call between surviving combos is a measured SpMV probe, so these
// just need to be loose enough to never exclude a winner.
const (
	// formatProbeMinNNZ gates the whole machinery: below it SpMV is
	// cache-resident and format is irrelevant, so CSR is kept without
	// probing (also keeps small-matrix tests deterministic).
	formatProbeMinNNZ = 1 << 15

	// maxPaddingRatio excludes SELL when σ-window sorting still leaves
	// this fraction of padded entries: the padding is streamed on every
	// SpMV, so beyond ~25% extra traffic SELL cannot win on a
	// bandwidth-bound kernel.
	maxPaddingRatio = 0.25

	// rcmBandwidthFloor and rcmReductionFactor gate the RCM candidates:
	// reordering is only probed when the natural bandwidth spills the
	// x-vector working set (bw rows of float64 ≫ L1) and RCM measurably
	// shrinks it. Calibration on the suite shows reductions below ~1.6×
	// never pay for the permute/unpermute traffic.
	rcmBandwidthFloor    = 4096
	rcmReductionFactor   = 0.6
	formatProbeReps      = 3
	formatSwitchHysteres = 0.98 // a combo must beat the simpler one by >2%
)

// RowLengthCV returns the coefficient of variation (stddev/mean) of the row
// lengths — the classic ELL-suitability statistic.
func RowLengthCV(a *CSR) float64 {
	n := a.Dim()
	if n == 0 || a.NNZ() == 0 {
		return 0
	}
	mean := float64(a.NNZ()) / float64(n)
	var ss float64
	for i := 0; i < n; i++ {
		d := float64(a.RowNNZ(i)) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(n)) / mean
}

// EstimatePaddingRatio computes the SELL-C-σ padding ratio from row lengths
// alone, without building the matrix: padded/nnz after σ-window sorting
// into height-c slices.
func EstimatePaddingRatio(a *CSR, c, sigma int) float64 {
	if c <= 0 {
		c = DefaultSliceHeight
	}
	if sigma <= 0 {
		sigma = DefaultSigma
	}
	if sigma < c {
		sigma = c
	}
	if r := sigma % c; r != 0 {
		sigma += c - r
	}
	n := a.Dim()
	if n == 0 || a.NNZ() == 0 {
		return 0
	}
	lens := make([]int, 0, sigma)
	total := 0
	for w0 := 0; w0 < n; w0 += sigma {
		w1 := w0 + sigma
		if w1 > n {
			w1 = n
		}
		lens = lens[:0]
		for i := w0; i < w1; i++ {
			lens = append(lens, a.RowNNZ(i))
		}
		// Descending sort mirrors SELLFromCSR's window ordering.
		for i := 1; i < len(lens); i++ {
			for j := i; j > 0 && lens[j] > lens[j-1]; j-- {
				lens[j], lens[j-1] = lens[j-1], lens[j]
			}
		}
		for s := 0; s < len(lens); s += c {
			h := len(lens) - s
			if h > c {
				h = c
			}
			total += lens[s] * h // lens[s] is the slice max after the sort
		}
	}
	return float64(total-a.NNZ()) / float64(a.NNZ())
}

// formatCandidate is one probed storage combo.
type formatCandidate struct {
	name    string
	op      Matrix
	x       []float64 // probe input in the combo's ordering
	reorder bool
}

// ChooseFormat picks the storage format and ordering for a matrix. The
// structure heuristics (padding ratio, bandwidth reduction) prune the
// candidate set {CSR, SELL} × {natural, RCM}; the survivors are then raced
// with a short measured SpMV probe (min of formatProbeReps, interleaved)
// and the fastest wins, with hysteresis in favour of the simpler combo so
// noise never trades plain CSR away for a sub-2% paper gain. Matrices under
// formatProbeMinNNZ skip everything and keep CSR.
//
// The returned perm is the RCM permutation when Reorder is set (nil
// otherwise); the caller owns applying Permute/PermuteVec/UnpermuteVec.
// ChooseFormat itself never mutates a.
func ChooseFormat(a *CSR) (FormatChoice, []int) {
	choice := FormatChoice{Format: "csr"}
	if a.NNZ() < formatProbeMinNNZ {
		return choice, nil
	}
	choice.RowCV = RowLengthCV(a)
	choice.PaddingRatio = EstimatePaddingRatio(a, 0, 0)
	choice.BandwidthBefore = Bandwidth(a)
	choice.BandwidthAfter = choice.BandwidthBefore

	n := a.Dim()
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 + math.Sin(float64(i)*0.37)
	}

	cands := []formatCandidate{{name: "csr", op: a, x: x}}
	sellOK := choice.PaddingRatio <= maxPaddingRatio
	if sellOK {
		cands = append(cands, formatCandidate{name: "sell", op: SELLFromCSR(a, 0, 0), x: x})
	}
	var perm []int
	if choice.BandwidthBefore > rcmBandwidthFloor {
		perm = RCM(a)
		ar := Permute(a, perm)
		bwAfter := Bandwidth(ar)
		if float64(bwAfter) <= rcmReductionFactor*float64(choice.BandwidthBefore) {
			choice.BandwidthAfter = bwAfter
			xr := PermuteVec(x, perm)
			cands = append(cands, formatCandidate{name: "csr+rcm", op: ar, x: xr, reorder: true})
			if sellOK {
				cands = append(cands, formatCandidate{name: "sell+rcm", op: SELLFromCSR(ar, 0, 0), x: xr, reorder: true})
			}
		} else {
			perm = nil
		}
	}

	times := probeFormats(cands, n)
	choice.ProbeCSRNs = times[0]
	best := 0
	for i := 1; i < len(cands); i++ {
		if float64(times[i]) < formatSwitchHysteres*float64(times[best]) {
			best = i
		}
	}
	win := cands[best]
	choice.ProbeChosenNs = times[best]
	choice.Reorder = win.reorder
	if se, ok := win.op.(*SELL); ok {
		choice.Format = "sell"
		choice.C = se.C()
		choice.Sigma = se.Sigma()
	}
	if !choice.Reorder {
		perm = nil
	}
	return choice, perm
}

// probeFormats times one MulVecPar per candidate per rep, interleaved so
// frequency drift hits every combo equally, and returns each candidate's
// minimum in nanoseconds.
func probeFormats(cands []formatCandidate, n int) []int64 {
	dst := make([]float64, n)
	times := make([]int64, len(cands))
	for i := range times {
		times[i] = math.MaxInt64
	}
	// One warm-up sweep faults in the freshly-built operators.
	for _, c := range cands {
		c.op.MulVecPar(dst, c.x)
	}
	for r := 0; r < formatProbeReps; r++ {
		for i, c := range cands {
			//spcglint:ignore determinism measured format probe: timing feeds format choice, never numeric values
			t0 := time.Now()
			c.op.MulVecPar(dst, c.x)
			//spcglint:ignore determinism measured format probe: timing feeds format choice, never numeric values
			if d := time.Since(t0).Nanoseconds(); d < times[i] {
				times[i] = d
			}
		}
	}
	return times
}
