package suite

import (
	"testing"

	"spcg/internal/dense"
	"spcg/internal/precond"
	"spcg/internal/solver"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

func TestSuiteHas40Problems(t *testing.T) {
	ps := All()
	if len(ps) != 40 {
		t.Fatalf("suite has %d problems, want 40 (paper Table 2)", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Fatalf("duplicate problem %q", p.Name)
		}
		seen[p.Name] = true
		if p.PaperRows < 100000 || p.PaperRows > 2000000 {
			t.Errorf("%s: paper rows %d outside the paper's 100k–2M window", p.Name, p.PaperRows)
		}
		if p.Paper.PCG <= 0 || p.Paper.PCG > 10000 {
			t.Errorf("%s: paper PCG iterations %d outside the convergence window", p.Name, p.Paper.PCG)
		}
	}
}

func TestAllProblemsBuildSPD(t *testing.T) {
	for _, p := range All() {
		a := p.Build(256) // small instances for the structural check
		if a.Dim() < 300 {
			t.Errorf("%s: built only %d rows", p.Name, a.Dim())
		}
		if !a.IsSymmetric(1e-10) {
			t.Errorf("%s: not symmetric", p.Name)
		}
		for i, v := range a.Diag() {
			if v <= 0 {
				t.Errorf("%s: diag[%d] = %v", p.Name, i, v)
				break
			}
		}
	}
}

func TestBuildScalesSize(t *testing.T) {
	p, ok := ByName("audikw_1")
	if !ok {
		t.Fatal("audikw_1 missing")
	}
	small := p.Build(512)
	big := p.Build(64)
	if big.Dim() <= small.Dim() {
		t.Fatalf("scale 64 (%d rows) not larger than scale 512 (%d rows)", big.Dim(), small.Dim())
	}
	// Degenerate scales clamp to scale 1 (full size); check on a small
	// problem to keep the test fast.
	sp, _ := ByName("thermomech_TC")
	tiny := sp.Build(0)
	if tiny.Dim() < sp.PaperRows/2 {
		t.Fatalf("scale 0 should clamp to full size, got %d rows", tiny.Dim())
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("no_such_matrix"); ok {
		t.Fatal("found a matrix that does not exist")
	}
	p, ok := ByName("G3_circuit")
	if !ok || p.Class != "graph" {
		t.Fatalf("G3_circuit lookup: %+v %v", p, ok)
	}
}

func TestTable3List(t *testing.T) {
	ps := Table3()
	if len(ps) != 7 {
		t.Fatalf("Table 3 has %d problems, want 7", len(ps))
	}
	want := []string{"parabolic_fem", "apache2", "audikw_1", "ldoor", "ecology2", "Geo_1438", "G3_circuit"}
	for i, p := range ps {
		if p.Name != want[i] {
			t.Fatalf("Table 3[%d] = %s, want %s", i, p.Name, want[i])
		}
		// Every Table 3 problem must have ≥ 2 converging s-step methods
		// with the Chebyshev basis in the paper's data.
		conv := 0
		for _, it := range []int{p.Paper.SPCGCheb, p.Paper.CAPCGCheb, p.Paper.CAPCG3Cheb} {
			if it > 0 {
				conv++
			}
		}
		if conv < 2 {
			t.Errorf("%s: only %d converging s-step methods in paper data", p.Name, conv)
		}
	}
}

func TestSortedBySize(t *testing.T) {
	ps := SortedBySize()
	for i := 1; i < len(ps); i++ {
		if ps[i].PaperRows < ps[i-1].PaperRows {
			t.Fatal("not sorted")
		}
	}
}

func TestDifficultyOrdering(t *testing.T) {
	// An easy suite member must converge much faster than a hard one at the
	// same scale — the property that makes the difficulty mapping useful.
	easy, _ := ByName("thermomech_TC")
	hard, _ := ByName("cfd2")
	run := func(p Problem) int {
		a := p.Build(256)
		n := a.Dim()
		b := make([]float64, n)
		xs := make([]float64, n)
		vec.Fill(xs, 1)
		a.MulVec(b, xs)
		m, err := precond.NewJacobi(a)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := solver.PCG(a, m, b, solver.Options{Tol: 1e-9, MaxIterations: 12000})
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged {
			t.Fatalf("%s did not converge at test scale", p.Name)
		}
		return st.Iterations
	}
	ei, hi := run(easy), run(hard)
	if ei*3 > hi {
		t.Fatalf("difficulty ordering violated: easy %d iterations vs hard %d", ei, hi)
	}
}

func TestScaleSymPreservesSPD(t *testing.T) {
	a := sparse.Poisson2D(12, 12)
	b := scaleSym(a, 4, 7)
	if !b.IsSymmetric(1e-12) {
		t.Fatal("scaleSym broke symmetry")
	}
	// D^½AD^½ is a congruence transform: SPD is preserved exactly (though
	// diagonal dominance is not). Verify via the spectrum.
	vals, err := dense.SymEigen(dense.FromRowMajor(b.Dim(), b.Dim(), b.Dense()))
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] <= 0 {
		t.Fatalf("scaleSym broke positive definiteness: λmin = %v", vals[0])
	}
	// contrast 0 returns the matrix unchanged.
	if c := scaleSym(a, 0, 7); c != a {
		t.Fatal("contrast 0 should be identity")
	}
}

func TestSuiteSparsityClasses(t *testing.T) {
	// Each generator family should land in its sparsity class: the stand-ins
	// mirror the originals' nnz/row character (5-point ≈ 5, 7-point ≈ 7,
	// 27-point ≈ 20+, graph ≈ 5–10).
	for _, p := range All() {
		a := p.Build(256)
		perRow := float64(a.NNZ()) / float64(a.Dim())
		var lo, hi float64
		switch p.Class {
		case "fem2d":
			lo, hi = 4, 5.2
		case "fem3d", "poisson3d":
			lo, hi = 5.5, 7.2
		case "fem3d27":
			lo, hi = 15, 27.5
		case "graph":
			lo, hi = 4, 10
		case "aniso":
			lo, hi = 4, 5.2
		default:
			t.Fatalf("%s: unknown class %q", p.Name, p.Class)
		}
		if perRow < lo || perRow > hi {
			t.Errorf("%s (%s): %.1f nnz/row outside [%g, %g]", p.Name, p.Class, perRow, lo, hi)
		}
	}
}
