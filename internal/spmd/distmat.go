package spmd

import (
	"fmt"
	"sort"

	"spcg/internal/sparse"
)

// LocalMatrix is one rank's share of a block-row distributed CSR matrix:
// the owned rows with column indices remapped into a compact local+ghost
// index space, plus the send/receive lists of the halo-exchange protocol.
type LocalMatrix struct {
	Rank, P int
	Lo, Hi  int // owned global rows [Lo, Hi)

	rowPtr []int
	colIdx []int // remapped: [0,NLocal) owned, [NLocal, NLocal+NGhost) ghosts
	val    []float64

	ghostGlobal []int // global index of each ghost slot (sorted)

	// neighbors[i] is a peer rank; sendIdx[i] lists the LOCAL indices whose
	// values we pack for that peer; recvSlot[i] lists the ghost slots we
	// scatter its payload into. Packing order is the sorted global index
	// order on both sides, so sender and receiver agree without metadata.
	neighbors []int
	sendIdx   [][]int
	recvSlot  [][]int

	xExt    []float64 // scratch: owned values followed by ghost values
	sendBuf [][]float64
}

// NLocal returns the number of owned rows.
func (lm *LocalMatrix) NLocal() int { return lm.Hi - lm.Lo }

// Distribute splits a into p block-row local matrices (nnz-balanced, the
// same partition dist.NewCluster models) and builds the halo protocol.
func Distribute(a *sparse.CSR, p int) ([]*LocalMatrix, error) {
	if p < 1 || p > a.Dim() {
		return nil, fmt.Errorf("spmd: cannot distribute %d rows over %d ranks", a.Dim(), p)
	}
	bounds := sparse.NNZBalancedRanges(a, p)
	owner := func(row int) int {
		r := sort.Search(len(bounds), func(i int) bool { return bounds[i] > row }) - 1
		if r < 0 {
			r = 0
		}
		if r >= p {
			r = p - 1
		}
		return r
	}

	locals := make([]*LocalMatrix, p)
	// ghostsOf[r] = sorted distinct global ghost indices of rank r.
	ghostsOf := make([][]int, p)
	for r := 0; r < p; r++ {
		lo, hi := bounds[r], bounds[r+1]
		seen := map[int]struct{}{}
		for i := lo; i < hi; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.ColIdx[k]
				if j < lo || j >= hi {
					seen[j] = struct{}{}
				}
			}
		}
		ghosts := make([]int, 0, len(seen))
		for j := range seen {
			ghosts = append(ghosts, j)
		}
		sort.Ints(ghosts)
		ghostsOf[r] = ghosts
	}

	for r := 0; r < p; r++ {
		lo, hi := bounds[r], bounds[r+1]
		lm := &LocalMatrix{Rank: r, P: p, Lo: lo, Hi: hi, ghostGlobal: ghostsOf[r]}
		nLocal := hi - lo
		ghostSlot := make(map[int]int, len(lm.ghostGlobal))
		for slot, g := range lm.ghostGlobal {
			ghostSlot[g] = nLocal + slot
		}
		// Remap the owned rows.
		lm.rowPtr = make([]int, nLocal+1)
		for i := lo; i < hi; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.ColIdx[k]
				var c int
				if j >= lo && j < hi {
					c = j - lo
				} else {
					c = ghostSlot[j]
				}
				lm.colIdx = append(lm.colIdx, c)
				lm.val = append(lm.val, a.Val[k])
			}
			lm.rowPtr[i-lo+1] = len(lm.val)
		}
		// Receive protocol: group ghosts by owner (ghosts are globally
		// sorted, so per-owner order is sorted too).
		recvBy := map[int][]int{}
		for slot, g := range lm.ghostGlobal {
			recvBy[owner(g)] = append(recvBy[owner(g)], nLocal+slot)
		}
		var peers []int
		for peer := range recvBy {
			peers = append(peers, peer)
		}
		sort.Ints(peers)
		for _, peer := range peers {
			lm.neighbors = append(lm.neighbors, peer)
			lm.recvSlot = append(lm.recvSlot, recvBy[peer])
		}
		lm.xExt = make([]float64, nLocal+len(lm.ghostGlobal))
		locals[r] = lm
	}

	// Send protocol: rank q must send to r exactly the values r receives
	// from q, in the same (global-index-sorted) order.
	for r := 0; r < p; r++ {
		lm := locals[r]
		lm.sendIdx = make([][]int, len(lm.neighbors))
		lm.sendBuf = make([][]float64, len(lm.neighbors))
		for i, peer := range lm.neighbors {
			// Globals that `peer` needs from r (sorted subset of peer's ghosts).
			var idx []int
			for _, g := range ghostsOf[peer] {
				if g >= lm.Lo && g < lm.Hi {
					idx = append(idx, g-lm.Lo)
				}
			}
			lm.sendIdx[i] = idx
			lm.sendBuf[i] = make([]float64, len(idx))
		}
	}
	// Validate symmetry of the protocol (structurally symmetric matrices
	// always satisfy it; reject pathological inputs instead of deadlocking).
	for r := 0; r < p; r++ {
		lm := locals[r]
		for i, peer := range lm.neighbors {
			if len(lm.sendIdx[i]) == 0 {
				return nil, fmt.Errorf("spmd: rank %d receives from %d but has nothing to send back; matrix is structurally unsymmetric", r, peer)
			}
		}
	}
	return locals, nil
}

// Exchange performs the halo exchange for the owned vector x (length NLocal)
// and returns the extended vector [x | ghosts] usable by MulVecLocal. The
// returned slice is rank-local scratch, valid until the next Exchange.
func (lm *LocalMatrix) Exchange(rk *Rank, x []float64) []float64 {
	if len(x) != lm.NLocal() {
		panic(fmt.Sprintf("spmd: Exchange expects %d owned values, got %d", lm.NLocal(), len(x)))
	}
	copy(lm.xExt, x)
	for i, peer := range lm.neighbors {
		buf := lm.sendBuf[i]
		for k, idx := range lm.sendIdx[i] {
			buf[k] = x[idx]
		}
		rk.Send(peer, buf)
	}
	for i, peer := range lm.neighbors {
		payload := rk.Recv(peer)
		slots := lm.recvSlot[i]
		if len(payload) != len(slots) {
			panic(fmt.Sprintf("spmd: rank %d got %d values from %d, expected %d", lm.Rank, len(payload), peer, len(slots)))
		}
		for k, slot := range slots {
			lm.xExt[slot] = payload[k]
		}
	}
	// The sense-reversing round structure (each pair exchanges exactly one
	// message, buffered channels of depth 1) needs a barrier so a fast rank
	// cannot start the next round's sends before this round's receives.
	rk.Barrier()
	return lm.xExt
}

// MulVecLocal computes the owned rows of A·x given the extended vector from
// Exchange, writing the NLocal results into dst.
func (lm *LocalMatrix) MulVecLocal(dst, xExt []float64) {
	n := lm.NLocal()
	if len(dst) != n {
		panic("spmd: MulVecLocal dst length mismatch")
	}
	for i := 0; i < n; i++ {
		var s float64
		for k := lm.rowPtr[i]; k < lm.rowPtr[i+1]; k++ {
			s += lm.val[k] * xExt[lm.colIdx[k]]
		}
		dst[i] = s
	}
}

// SpMV is Exchange followed by MulVecLocal.
func (lm *LocalMatrix) SpMV(rk *Rank, dst, x []float64) {
	xExt := lm.Exchange(rk, x)
	lm.MulVecLocal(dst, xExt)
}

// DiagLocal returns the owned diagonal entries.
func (lm *LocalMatrix) DiagLocal() []float64 {
	n := lm.NLocal()
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := lm.rowPtr[i]; k < lm.rowPtr[i+1]; k++ {
			if lm.colIdx[k] == i {
				d[i] = lm.val[k]
				break
			}
		}
	}
	return d
}
