package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"spcg/internal/obs"
	"spcg/internal/resilience"
	"spcg/internal/solver"
	"spcg/internal/tune"
)

// JobState is the lifecycle of one solve request.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
	// JobStagnated is a terminal state distinct from cancellation: the
	// stagnation watchdog killed the solve because its residual stopped
	// improving well before the wall-clock deadline.
	JobStagnated JobState = "stagnated"
)

// terminal reports whether a state ends the job lifecycle.
func (s JobState) terminal() bool {
	switch s {
	case JobDone, JobFailed, JobCancelled, JobStagnated:
		return true
	}
	return false
}

// SolveRequest is the JSON body of POST /solve.
type SolveRequest struct {
	Matrix  string `json:"matrix"`            // registry name or generator spec
	Method  string `json:"method"`            // pcg|pcg3|spcg|spcgmon|capcg|capcg3|adaptive|pipelined
	Precond string `json:"precond,omitempty"` // jacobi (default), identity, ic0, ssor[:w], blockjacobi[:k], chebyshev[:d]
	S       int    `json:"s,omitempty"`       // s-step block size for s-step methods
	Basis   string `json:"basis,omitempty"`   // monomial|newton|chebyshev (s-step methods)

	Tol       float64 `json:"tol,omitempty"`
	MaxIters  int     `json:"max_iters,omitempty"`
	RHS       string  `json:"rhs,omitempty"`        // "ones" (default), "random[:seed]", "sin"
	TimeoutMS int     `json:"timeout_ms,omitempty"` // per-job deadline; 0 = server default
	Async     bool    `json:"async,omitempty"`      // enqueue and return a job id immediately
	NoBatch   bool    `json:"no_batch,omitempty"`   // opt out of same-matrix coalescing
	Trace     bool    `json:"trace,omitempty"`      // return a per-phase breakdown (implies no_batch)

	// RequestID is an optional idempotency key. Submitting the same
	// request_id again returns the existing job instead of running a second
	// solve — this is what makes gateway failover retries safe.
	RequestID string `json:"request_id,omitempty"`
}

// SolveResult is the terminal payload of a job.
type SolveResult struct {
	Converged       bool    `json:"converged"`
	Iterations      int     `json:"iterations"`
	FinalRelative   float64 `json:"final_relative"`
	TrueRelResidual float64 `json:"true_rel_residual"`
	MVProducts      int     `json:"mv_products"`
	PrecApplies     int     `json:"prec_applies"`
	Breakdown       string  `json:"breakdown,omitempty"`
	Error           string  `json:"error,omitempty"`
	Batched         bool    `json:"batched"`    // ran inside a coalesced block solve
	BatchSize       int     `json:"batch_size"` // columns in that block (1 = solo)
	SolveMS         float64 `json:"solve_ms"`
	XNorm           float64 `json:"x_norm"`
	// Method is the solver that actually ran; it differs from the request's
	// method when a circuit breaker degraded the fast path.
	Method string `json:"method,omitempty"`
	// Format is the storage combo the solve ran on ("csr", "sell",
	// "csr+rcm", "sell+rcm") — the format engine's per-matrix decision, or a
	// tuned candidate's pin. Solutions of reordered combos are un-permuted
	// before XNorm is computed, so Format is observability only.
	Format string `json:"format,omitempty"`
	// DegradedFrom records the originally requested method when an open
	// circuit breaker forced a fallback down the degradation ladder.
	DegradedFrom string `json:"degraded_from,omitempty"`
	// Phases is the per-phase time/count breakdown of the solve, present
	// when the request set "trace": true.
	Phases []obs.PhaseStat `json:"phases,omitempty"`
	// TuneSource records how a method:"auto" request was resolved: "store"
	// (persisted tuned winner), "seed" (model-ranked guess served while
	// background trials ran) or "fallback" (seeding failed; safe PCG floor).
	TuneSource string `json:"tune_source,omitempty"`
	// TunedConfig is the configuration the autotuner selected for a
	// method:"auto" request (before any breaker degradation, which Method /
	// DegradedFrom report as usual).
	TunedConfig *tune.Candidate `json:"tuned_config,omitempty"`
}

// JobStatus is the JSON document served for one job.
type JobStatus struct {
	ID        string       `json:"id"`
	State     JobState     `json:"state"`
	Matrix    string       `json:"matrix"`
	Method    string       `json:"method"`
	Precond   string       `json:"precond"`
	Submitted time.Time    `json:"submitted"`
	Started   *time.Time   `json:"started,omitempty"`
	Finished  *time.Time   `json:"finished,omitempty"`
	Result    *SolveResult `json:"result,omitempty"`
}

// job is the internal representation of one admitted request.
type job struct {
	id  string
	req SolveRequest

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed exactly once when the job reaches a terminal state

	mu        sync.Mutex
	state     JobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *SolveResult
	// stagnated is set by the watchdog before it cancels the job's context,
	// so the completion path can tell a watchdog kill from a deadline or a
	// client cancel.
	stagnated      bool
	stagnateReason string
	// breakerKey is the circuit the job's outcome must be recorded against,
	// set before the solve starts so the panic path can count the failure.
	breakerKey    resilience.Key
	hasBreakerKey bool
}

// setBreakerKey binds the job to the circuit its outcome feeds.
func (j *job) setBreakerKey(key resilience.Key) {
	j.mu.Lock()
	j.breakerKey = key
	j.hasBreakerKey = true
	j.mu.Unlock()
}

// breakerKeyIfSet returns the bound circuit key, if any.
func (j *job) breakerKeyIfSet() (resilience.Key, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.breakerKey, j.hasBreakerKey
}

// markStagnated flags the job as killed by the stagnation watchdog. The
// caller cancels the context afterwards; the first terminal state still wins.
func (j *job) markStagnated(reason string) {
	j.mu.Lock()
	if !j.state.terminal() {
		j.stagnated = true
		j.stagnateReason = reason
	}
	j.mu.Unlock()
}

// stagnatedInfo reports whether the watchdog flagged this job, and why.
func (j *job) stagnatedInfo() (bool, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stagnated, j.stagnateReason
}

func (j *job) setRunning(now time.Time) {
	j.mu.Lock()
	if j.state == JobQueued {
		j.state = JobRunning
		j.started = now
	}
	j.mu.Unlock()
}

// finish moves the job to a terminal state. Only the first call wins; the
// done channel is closed exactly once.
func (j *job) finish(state JobState, res *SolveResult, now time.Time) bool {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.result = res
	j.finished = now
	j.mu.Unlock()
	j.cancel() // release the context watcher; harmless if already cancelled
	close(j.done)
	return true
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Matrix:    j.req.Matrix,
		Method:    j.req.Method,
		Precond:   j.req.Precond,
		Submitted: j.submitted,
		Result:    j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// jobStore indexes jobs by id and bounds memory by evicting the oldest
// finished jobs beyond maxDone.
type jobStore struct {
	mu      sync.Mutex
	seq     int64
	jobs    map[string]*job
	byReqID map[string]*job // request_id → job, for idempotent resubmission
	doneIDs []string        // finished jobs in completion order, oldest first
	maxDone int
}

func newJobStore(maxDone int) *jobStore {
	if maxDone < 1 {
		maxDone = 256
	}
	return &jobStore{jobs: map[string]*job{}, byReqID: map[string]*job{}, maxDone: maxDone}
}

func (s *jobStore) newJob(req SolveRequest, parent context.Context, timeout time.Duration) *job {
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(parent, timeout)
	} else {
		ctx, cancel = context.WithCancel(parent)
	}
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("job-%d", s.seq)
	j := &job{
		id:        id,
		req:       req,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     JobQueued,
		submitted: time.Now(),
	}
	s.jobs[id] = j
	if req.RequestID != "" {
		s.byReqID[req.RequestID] = j
	}
	s.mu.Unlock()
	return j
}

func (s *jobStore) get(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// getByRequestID returns the job admitted under an idempotency key, if it is
// still retained.
func (s *jobStore) getByRequestID(reqID string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byReqID[reqID]
}

// markDone records completion for eviction ordering and trims old entries.
func (s *jobStore) markDone(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.doneIDs = append(s.doneIDs, id)
	for len(s.doneIDs) > s.maxDone {
		old := s.doneIDs[0]
		s.doneIDs = s.doneIDs[1:]
		if j := s.jobs[old]; j != nil && j.req.RequestID != "" {
			delete(s.byReqID, j.req.RequestID)
		}
		delete(s.jobs, old)
	}
}

// statsToResult converts solver output into the wire form shared by every
// completion path.
func statsToResult(stats *solver.Stats, err error, batched bool, batchSize int, elapsed time.Duration, xnorm float64) *SolveResult {
	res := &SolveResult{
		Batched:   batched,
		BatchSize: batchSize,
		SolveMS:   float64(elapsed.Microseconds()) / 1000,
		XNorm:     xnorm,
	}
	if stats != nil {
		res.Converged = stats.Converged
		res.Iterations = stats.Iterations
		res.FinalRelative = stats.FinalRelative
		res.TrueRelResidual = stats.TrueRelResidual
		res.MVProducts = stats.MVProducts
		res.PrecApplies = stats.PrecApplies
		res.Phases = stats.Phases
		if stats.Breakdown != nil {
			res.Breakdown = stats.Breakdown.Error()
		}
	}
	if err != nil {
		res.Error = err.Error()
	}
	return res
}
