package lint

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// MetricdocConfig targets the metricdoc analyzer.
type MetricdocConfig struct {
	// ObsPath is the import path of the metrics registry package.
	ObsPath string
	// Constructors are the Registry methods whose first argument is a
	// metric family name.
	Constructors []string
	// MetricsDoc is the metric reference document, relative to the module
	// root (docs/OBSERVABILITY.md). A metric family name must appear there
	// in backticks.
	MetricsDoc string
	// RoutesDoc is the HTTP API document, relative to the module root
	// (docs/API.md). Every route pattern must appear there as a line
	// carrying the method and the backticked path.
	RoutesDoc string
	// RoutesVar names the package-level route tables ("routes").
	RoutesVar string
}

// docFile is one lazily loaded documentation file.
type docFile struct {
	body  string
	lines []string
	err   error
}

// Metricdoc pins the observable surface to its documentation at the source
// level: every metric-family name passed to an obs registry constructor must
// appear (backticked) in the metrics reference, and every pattern in a
// package's route table must appear in the API reference with its method.
// This generalizes — and replaces — the per-package reflection tests that
// walked live registries: the check now covers every constructor call in the
// compile graph, whether or not a test happens to exercise it, and it
// requires names to be string literals so coverage is decidable.
func Metricdoc(cfg MetricdocConfig) *Analyzer {
	ctors := stringSet(cfg.Constructors)
	docs := make(map[string]*docFile)
	load := func(m *Module, rel string) *docFile {
		if d, ok := docs[rel]; ok {
			return d
		}
		path := rel
		if !filepath.IsAbs(path) {
			path = filepath.Join(m.Root, rel)
		}
		raw, err := os.ReadFile(path)
		d := &docFile{err: err}
		if err == nil {
			d.body = string(raw)
			d.lines = strings.Split(d.body, "\n")
		}
		docs[rel] = d
		return d
	}

	a := &Analyzer{
		Name: "metricdoc",
		Doc:  "metric families and routes must be documented string literals",
	}
	a.Run = func(p *Pass) {
		for _, f := range p.Pkg.Files {
			if p.Pkg.IsTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !ctors[sel.Sel.Name] || len(call.Args) == 0 {
					return true
				}
				fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != cfg.ObsPath {
					return true
				}
				name, ok := stringLit(call.Args[0])
				if !ok {
					p.Reportf(call.Args[0].Pos(), "metric family name passed to %s must be a string literal so documentation coverage is checkable", sel.Sel.Name)
					return true
				}
				doc := load(p.Module, cfg.MetricsDoc)
				if doc.err != nil {
					p.Reportf(call.Pos(), "cannot read %s: %v", cfg.MetricsDoc, doc.err)
					return true
				}
				if !strings.Contains(doc.body, "`"+name+"`") {
					p.Reportf(call.Args[0].Pos(), "metric family %q is not documented in %s", name, cfg.MetricsDoc)
				}
				return true
			})
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, nm := range vs.Names {
						if nm.Name != cfg.RoutesVar || i >= len(vs.Values) {
							continue
						}
						if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
							checkRoutes(p, cl, cfg.RoutesDoc, load(p.Module, cfg.RoutesDoc))
						}
					}
				}
			}
		}
	}
	return a
}

// checkRoutes validates each element of a route-table literal: the first
// string literal inside the element is the "METHOD /path" pattern, which
// must appear in the API doc on a line containing both the method and the
// backticked path (the same rule the retired reflection tests applied).
func checkRoutes(p *Pass, table *ast.CompositeLit, docName string, doc *docFile) {
	for _, elt := range table.Elts {
		var pattern string
		var pos = elt.Pos()
		ast.Inspect(elt, func(n ast.Node) bool {
			if pattern != "" {
				return false
			}
			if s, ok := stringLit(asExpr(n)); ok {
				pattern = s
				pos = n.Pos()
				return false
			}
			return true
		})
		if pattern == "" {
			p.Reportf(pos, "route-table entry has no string-literal pattern; spcglint cannot check documentation coverage")
			continue
		}
		method, path, ok := strings.Cut(pattern, " ")
		if !ok {
			p.Reportf(pos, "route pattern %q has no method prefix (want \"METHOD /path\")", pattern)
			continue
		}
		if doc.err != nil {
			p.Reportf(pos, "cannot read %s: %v", docName, doc.err)
			return
		}
		found := false
		want := "`" + path + "`"
		for _, ln := range doc.lines {
			if strings.Contains(ln, want) && strings.Contains(ln, method) {
				found = true
				break
			}
		}
		if !found {
			p.Reportf(pos, "route %q is not documented in %s (want a line with %s and %s)", pattern, docName, method, want)
		}
	}
}

// asExpr narrows an ast.Node to ast.Expr for the literal helpers.
func asExpr(n ast.Node) ast.Expr {
	e, _ := n.(ast.Expr)
	return e
}
