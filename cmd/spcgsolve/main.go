// Command spcgsolve solves a single SPD system with any of the implemented
// solvers and prints iteration/communication statistics:
//
//	spcgsolve -gen poisson3d -n 32 -solver spcg -basis chebyshev -s 10
//	spcgsolve -mm matrix.mtx -solver capcg -prec chebyshev -nodes 4
//
// With -nodes > 0 it also reports the modeled distributed runtime on a
// virtual cluster of that many nodes.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/eig"
	"spcg/internal/precond"
	"spcg/internal/solver"
	"spcg/internal/sparse"
)

func main() {
	gen := flag.String("gen", "poisson3d", "problem generator: poisson1d|poisson2d|poisson3d|varcoeff2d|varcoeff3d|circuit")
	n := flag.Int("n", 32, "grid dimension per axis (generators)")
	contrast := flag.Float64("contrast", 3, "coefficient contrast (varcoeff generators)")
	mmPath := flag.String("mm", "", "MatrixMarket file (overrides -gen)")
	solverName := flag.String("solver", "spcg", "solver: pcg|pcg3|spcgmon|spcg|capcg|capcg3|adaptive")
	basisName := flag.String("basis", "chebyshev", "basis: monomial|newton|chebyshev")
	precName := flag.String("prec", "jacobi", "preconditioner: none|jacobi|chebyshev|blockjacobi|ssor|ic0")
	precDegree := flag.Int("degree", 3, "Chebyshev preconditioner degree")
	s := flag.Int("s", 10, "s-step block size")
	tol := flag.Float64("tol", 1e-9, "relative residual tolerance")
	maxIters := flag.Int("maxiters", 12000, "iteration cap")
	criterion := flag.String("criterion", "mnorm", "convergence criterion: true2|rec2|mnorm")
	nodes := flag.Int("nodes", 0, "virtual cluster node count (0 = no cost model)")
	ranks := flag.Int("ranks", 128, "ranks per virtual node")
	rr := flag.Bool("rr", false, "enable residual replacement (s-step methods)")
	flag.Parse()

	a, err := buildMatrix(*gen, *n, *contrast, *mmPath)
	fatalIf(err)
	fmt.Printf("matrix: n=%d nnz=%d (%.1f nnz/row)\n", a.Dim(), a.NNZ(), float64(a.NNZ())/float64(a.Dim()))

	// Right-hand side with known solution x* = 1/√n (paper §5.1).
	xTrue := make([]float64, a.Dim())
	for i := range xTrue {
		xTrue[i] = 1 / math.Sqrt(float64(a.Dim()))
	}
	b := make([]float64, a.Dim())
	a.MulVecPar(b, xTrue)

	m, err := buildPrec(a, *precName, *precDegree)
	fatalIf(err)

	bt, err := basis.ParseType(*basisName)
	fatalIf(err)

	opts := solver.Options{
		S: *s, Basis: bt, Tol: *tol, MaxIterations: *maxIters,
		ResidualReplacement: *rr,
	}
	switch *criterion {
	case "true2":
		opts.Criterion = solver.TrueResidual2Norm
	case "rec2":
		opts.Criterion = solver.RecursiveResidual2Norm
	case "mnorm":
		opts.Criterion = solver.RecursiveResidualMNorm
	default:
		fatalIf(fmt.Errorf("unknown criterion %q", *criterion))
	}

	if *nodes > 0 {
		machine := dist.DefaultMachine()
		machine.RanksPerNode = *ranks
		cl, err := dist.NewCluster(machine, *nodes, a)
		fatalIf(err)
		opts.Tracker = dist.NewTracker(cl)
	}

	if bt != basis.Monomial {
		est, err := eig.RitzFromPCG(a, m.Apply, eig.Options{Iterations: 2 * *s})
		fatalIf(err)
		opts.Spectrum = est
		fmt.Printf("spectrum estimate of M⁻¹A: [%.4g, %.4g] from %d Ritz values\n",
			est.LambdaMin, est.LambdaMax, len(est.Ritz))
	}

	run := map[string]func(*sparse.CSR, precond.Interface, []float64, solver.Options) ([]float64, *solver.Stats, error){
		"pcg": solver.PCG, "pcg3": solver.PCG3, "spcgmon": solver.SPCGMon,
		"spcg": solver.SPCG, "capcg": solver.CAPCG, "capcg3": solver.CAPCG3,
		"adaptive": solver.SPCGAdaptive,
	}[*solverName]
	if run == nil {
		fatalIf(fmt.Errorf("unknown solver %q", *solverName))
	}

	x, stats, err := run(a, m, b, opts)
	fatalIf(err)

	var errNorm float64
	for i := range x {
		d := x[i] - xTrue[i]
		errNorm += d * d
	}
	fmt.Printf("solver=%s basis=%s prec=%s s=%d\n", *solverName, bt, m.Name(), *s)
	fmt.Printf("converged=%v iterations=%d outer=%d\n", stats.Converged, stats.Iterations, stats.OuterIterations)
	fmt.Printf("true relative residual=%.3e solution error=%.3e\n", stats.TrueRelResidual, math.Sqrt(errNorm))
	fmt.Printf("MV products=%d prec applies=%d collectives=%d (payload %d values)\n",
		stats.MVProducts, stats.PrecApplies, stats.Allreduces, stats.AllreduceValues)
	if stats.Breakdown != nil {
		fmt.Printf("breakdown: %v\n", stats.Breakdown)
	}
	if stats.SimTime > 0 {
		fmt.Printf("modeled runtime on %d node(s) × %d ranks: %.6fs\n", *nodes, *ranks, stats.SimTime)
	}
	if !stats.Converged {
		os.Exit(1)
	}
}

func buildMatrix(gen string, n int, contrast float64, mmPath string) (*sparse.CSR, error) {
	if mmPath != "" {
		f, err := os.Open(mmPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return sparse.ReadMatrixMarket(f)
	}
	switch gen {
	case "poisson1d":
		return sparse.Poisson1D(n * n), nil
	case "poisson2d":
		return sparse.Poisson2D(n, n), nil
	case "poisson3d":
		return sparse.Poisson3D(n, n, n), nil
	case "varcoeff2d":
		return sparse.VarCoeff2D(n, n, contrast, 1), nil
	case "varcoeff3d":
		return sparse.VarCoeff3D(n, n, n, contrast, 1), nil
	case "circuit":
		return sparse.CircuitLaplacian(n, n, n*n/20, 1e-3, 1), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}

func buildPrec(a *sparse.CSR, name string, degree int) (precond.Interface, error) {
	switch name {
	case "none", "":
		return precond.NewIdentity(a.Dim()), nil
	case "jacobi":
		return precond.NewJacobi(a)
	case "chebyshev":
		est, err := eig.RitzFromPCG(a, nil, eig.Options{Iterations: 20})
		if err != nil {
			return nil, err
		}
		return precond.NewChebyshev(a, degree, est.LambdaMin, est.LambdaMax)
	case "blockjacobi":
		blocks := a.Dim()/512 + 1
		return precond.NewBlockJacobi(a, blocks)
	case "ssor":
		return precond.NewSSOR(a, 1.2)
	case "ic0":
		return precond.NewIC0(a)
	default:
		return nil, fmt.Errorf("unknown preconditioner %q", name)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spcgsolve:", err)
		os.Exit(1)
	}
}
