package lint

// Repo-canonical analyzer configuration: the import paths and allowlists
// encoding this repository's invariants. cmd/spcglint and the repo-level
// lint gate test both run exactly this suite; fixture tests construct
// analyzers with their own configs instead.

// hotPathPackages are the numeric kernel packages whose results must be
// bitwise-reproducible run to run (the fused-vs-naive and SELL-vs-CSR parity
// pins depend on it).
var hotPathPackages = []string{
	"spcg/internal/vec",
	"spcg/internal/sparse",
	"spcg/internal/mpk",
	"spcg/internal/basis",
	"spcg/internal/dense",
	"spcg/internal/eig",
}

// exactParityTestFiles are the test files whose purpose is asserting bitwise
// float equality: fused-vs-naive kernel parity, SELL-vs-CSR storage parity,
// fault-replay determinism, and golden-value pins. floatcmp exempts them
// wholesale; everything else needs a tolerance or a per-line directive.
var exactParityTestFiles = []string{
	"internal/basis/basis_test.go",
	"internal/dense/dense_test.go",
	"internal/dist/fault_test.go",
	"internal/fault/fault_test.go",
	"internal/gateway/e2e_test.go",
	"internal/gateway/gateway_test.go",
	"internal/mpk/mpk_test.go",
	"internal/obs/registry_test.go",
	"internal/obs/tracer_test.go",
	"internal/perfmodel/perfmodel_test.go",
	"internal/pool/pool_test.go",
	"internal/precond/precond_test.go",
	"internal/resilience/resilience_test.go",
	"internal/service/chaos_test.go",
	"internal/service/format_test.go",
	"internal/solver/concurrent_test.go",
	"internal/solver/fault_test.go",
	"internal/solver/fusedpath_test.go",
	"internal/solver/progress_test.go",
	"internal/solver/property_test.go",
	"internal/solver/replay_test.go",
	"internal/solver/trace_test.go",
	"internal/sparse/csr_test.go",
	"internal/sparse/format_test.go",
	"internal/sparse/memo_test.go",
	"internal/sparse/mm_test.go",
	"internal/sparse/parallel_test.go",
	"internal/sparse/rcm_test.go",
	"internal/sparse/sell_test.go",
	"internal/spmd/fault_test.go",
	"internal/spmd/spmd_test.go",
	"internal/vec/block_test.go",
	"internal/vec/fused_test.go",
	"internal/vec/vec_test.go",
}

// DefaultAnalyzers returns the full first-party suite with the repository's
// canonical configuration. The suite's order is the display order.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Determinism(DeterminismConfig{
			Packages:     hotPathPackages,
			LoopPackages: []string{"spcg/internal/solver"},
		}),
		Safego(SafegoConfig{
			Packages: []string{
				"spcg/internal/service",
				"spcg/internal/gateway",
				"spcg/internal/spmd",
			},
			SafePath: "spcg/internal/resilience",
			SafeFunc: "Safe",
		}),
		Cancelpoll(CancelpollConfig{
			Package:     "spcg/internal/solver",
			RegistryVar: "methods",
			CheckCall:   "done",
			PollCalls:   []string{"cancelled"},
		}),
		Floatcmp(FloatcmpConfig{
			AllowFiles: exactParityTestFiles,
		}),
		Allocfree(AllocfreeConfig{
			Packages: []string{
				"spcg/internal/vec",
				"spcg/internal/sparse",
				"spcg/internal/mpk",
			},
			FuncPattern: "Fused",
		}),
		Metricdoc(MetricdocConfig{
			ObsPath:      "spcg/internal/obs",
			Constructors: []string{"Counter", "CounterFunc", "Gauge", "GaugeFunc", "Histogram"},
			MetricsDoc:   "docs/OBSERVABILITY.md",
			RoutesDoc:    "docs/API.md",
			RoutesVar:    "routes",
		}),
	}
}
