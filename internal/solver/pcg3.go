package solver

import (
	"fmt"
	"math"

	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// PCG3 solves A·x = b with the Rutishauser three-term-recurrence variant of
// PCG — the mathematical basis of CA-PCG3 (paper §2.4). Instead of search
// directions it updates residuals (and solutions) with
//
//	r⁽ⁱ⁺¹⁾ = ρ⁽ⁱ⁾(r⁽ⁱ⁾ − γ⁽ⁱ⁾·A·u⁽ⁱ⁾) + (1−ρ⁽ⁱ⁾)·r⁽ⁱ⁻¹⁾.
//
// Both inner products of an iteration (μ = rᵀu and ν = uᵀAu) are available
// together, so PCG3 needs only one (two-value) global reduction per
// iteration — but three-term recurrences accumulate rounding error faster
// than PCG's coupled two-term form (Gutknecht & Strakoš), which is the
// numerical weakness CA-PCG3 inherits.
func PCG3(a *sparse.CSR, m precond.Interface, b []float64, opts Options) ([]float64, *Stats, error) {
	opts = opts.withDefaults()
	stats := &Stats{}
	c, err := newCtx(a, m, &opts, stats)
	if err != nil {
		return nil, nil, err
	}
	n := c.n
	if len(b) != n {
		return nil, nil, fmt.Errorf("%w: len(b)=%d, n=%d", ErrDimension, len(b), n)
	}
	x := make([]float64, n)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return nil, nil, fmt.Errorf("%w: len(x0)=%d, n=%d", ErrDimension, len(opts.X0), n)
		}
		copy(x, opts.X0)
	}

	r := make([]float64, n)
	u := make([]float64, n)
	w := make([]float64, n)
	v := make([]float64, n)
	xPrev := make([]float64, n)
	rPrev := make([]float64, n)
	uPrev := make([]float64, n)
	xNext := make([]float64, n)
	rNext := make([]float64, n)
	uNext := make([]float64, n)
	scratch := make([]float64, n)

	c.spmv(r, x)
	vec.Sub(r, b, r)
	c.tr.VectorOp(float64(n), 24*float64(n))
	c.applyM(u, r)

	mu := c.dot(r, u)
	if !finite(mu) || mu < 0 {
		stats.Breakdown = fmt.Errorf("%w: initial rᵀM⁻¹r = %v", ErrBreakdown, mu)
		return finishRun(c, a, b, x, opts, stats), stats, nil
	}
	initial, err := initialCriterionValue(c, opts, b, x, r, mu, scratch)
	if err != nil {
		stats.Breakdown = err
		return finishRun(c, a, b, x, opts, stats), stats, nil
	}
	ck := newChecker(opts, initial, stats)
	if ck.done(initial) {
		stats.Converged = true
		return finishRun(c, a, b, x, opts, stats), stats, nil
	}

	rho := 1.0
	var gammaPrev, muPrev, rhoPrev float64
	for i := 0; i < opts.MaxIterations; i++ {
		if c.cancelled() {
			return finishCancelled(c, a, b, x, opts, stats)
		}
		c.spmv(w, u)   // w = A·u
		c.applyM(v, w) // v = M⁻¹·A·u
		var rr float64
		var dots []float64
		if opts.Criterion == RecursiveResidual2Norm {
			dots = c.fusedDots([2][]float64{r, u}, [2][]float64{u, w}, [2][]float64{r, r})
			rr = dots[2]
		} else {
			dots = c.fusedDots([2][]float64{r, u}, [2][]float64{u, w})
		}
		mu, nu := dots[0], dots[1]
		if !finite(mu, nu) || nu <= 0 || mu < 0 {
			stats.Breakdown = fmt.Errorf("%w: μ=%v ν=%v at iteration %d", ErrBreakdown, mu, nu, i)
			break
		}
		gamma := mu / nu
		if i > 0 {
			den := 1 - (gamma/gammaPrev)*(mu/muPrev)*(1/rhoPrev)
			if den == 0 || !finite(den) {
				stats.Breakdown = fmt.Errorf("%w: ρ recurrence denominator %v at iteration %d", ErrBreakdown, den, i)
				break
			}
			rho = 1 / den
		}

		// Three-term updates (BLAS1).
		c.threeTermUpdate(xNext, rho, x, -gamma, u, xPrev)
		c.threeTermUpdate(rNext, rho, r, gamma, w, rPrev)
		c.threeTermUpdate(uNext, rho, u, gamma, v, uPrev)
		xPrev, x, xNext = x, xNext, xPrev
		rPrev, r, rNext = r, rNext, rPrev
		uPrev, u, uNext = u, uNext, uPrev

		gammaPrev, muPrev, rhoPrev = gamma, mu, rho
		stats.Iterations = i + 1
		stats.OuterIterations = i + 1

		var val float64
		switch opts.Criterion {
		case TrueResidual2Norm:
			val = c.trueResidualNorm(b, x, scratch)
		case RecursiveResidual2Norm:
			// rr is ‖r⁽ⁱ⁾‖² of the pre-update residual; the post-update
			// norm arrives next iteration. Accept the one-step lag (the
			// paper's s-step methods lag by a whole block similarly).
			val = math.Sqrt(rr)
		case RecursiveResidualMNorm:
			val = math.Sqrt(mu)
		}
		if ck.done(val) {
			stats.Converged = true
			break
		}
	}
	return finishRun(c, a, b, x, opts, stats), stats, nil
}
