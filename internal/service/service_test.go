package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spcg/internal/pool"
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

func postSolve(t *testing.T, url string, req SolveRequest) (int, JobStatus) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /solve response (HTTP %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, st
}

func getMetrics(t *testing.T, url string) MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestBurstMixedMethods is the acceptance burst: 100 mixed-method requests
// against a live server complete with zero failures, and the setup cache
// shows a non-zero hit rate afterwards.
func TestBurstMixedMethods(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 128, BatchWindow: time.Millisecond})
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	methods := []string{"pcg", "pcg3", "spcg", "capcg", "capcg3"}
	matrices := []string{"poisson2d:16", "poisson2d:24"}
	const total = 100
	var wg sync.WaitGroup
	errs := make(chan error, total)
	sem := make(chan struct{}, 8)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			req := SolveRequest{
				Matrix:  matrices[i%len(matrices)],
				Method:  methods[i%len(methods)],
				Precond: "jacobi",
				S:       4,
			}
			code, st := postSolve(t, ts.URL, req)
			if code != http.StatusOK {
				errs <- fmt.Errorf("req %d (%s on %s): HTTP %d state=%s", i, req.Method, req.Matrix, code, st.State)
				return
			}
			if st.Result == nil || !st.Result.Converged {
				errs <- fmt.Errorf("req %d (%s on %s): not converged: %+v", i, req.Method, req.Matrix, st.Result)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	failures := 0
	for err := range errs {
		failures++
		t.Error(err)
	}
	if failures > 0 {
		t.Fatalf("%d/%d requests failed", failures, total)
	}

	m := getMetrics(t, ts.URL)
	if m.Completed != total {
		t.Errorf("completed = %d, want %d", m.Completed, total)
	}
	if m.Failed != 0 || m.Cancelled != 0 {
		t.Errorf("failed=%d cancelled=%d, want 0/0", m.Failed, m.Cancelled)
	}
	// 100 requests over 2 matrices × ≤2 precond-relevant specs must reuse setup.
	if m.SetupCache.HitRate <= 0 {
		t.Errorf("setup cache hit rate = %v, want > 0 (hits=%d misses=%d)",
			m.SetupCache.HitRate, m.SetupCache.Hits, m.SetupCache.Misses)
	}
}

// TestBatchingCoalesces asserts the acceptance criterion that concurrent
// same-matrix PCG requests inside the window run as one multi-RHS block
// solve (≥ 2 columns), visible both in per-job results and in /metrics.
func TestBatchingCoalesces(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 32, BatchWindow: 150 * time.Millisecond, BatchMax: 8})
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const k = 4
	var wg sync.WaitGroup
	results := make([]JobStatus, k)
	codes := make([]int, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], results[i] = postSolve(t, ts.URL, SolveRequest{
				Matrix: "poisson2d:20",
				Method: "pcg",
				RHS:    fmt.Sprintf("random:%d", i+1), // distinct RHS per column
			})
		}(i)
	}
	wg.Wait()

	batched := 0
	for i := 0; i < k; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("req %d: HTTP %d (%+v)", i, codes[i], results[i])
		}
		r := results[i].Result
		if r == nil || !r.Converged {
			t.Fatalf("req %d not converged: %+v", i, r)
		}
		if r.Batched && r.BatchSize >= 2 {
			batched++
		}
	}
	if batched < 2 {
		t.Errorf("only %d/%d requests ran batched with ≥2 columns", batched, k)
	}
	m := getMetrics(t, ts.URL)
	if m.Batching.BlockSolves < 1 {
		t.Errorf("block_solves = %d, want ≥ 1", m.Batching.BlockSolves)
	}
	if m.Batching.BatchedRequests < 2 {
		t.Errorf("batched_requests = %d, want ≥ 2", m.Batching.BatchedRequests)
	}
	if m.Batching.MaxBatch < 2 {
		t.Errorf("max_batch = %d, want ≥ 2", m.Batching.MaxBatch)
	}
}

// TestMetricsExposesKernelCounters: /metrics carries the kernel engine's
// process-wide counters. Tiny solves legitimately stay below the parallel
// thresholds, so the test drives one threshold-crossing SpMV directly and
// checks the snapshot reflects it.
func TestMetricsExposesKernelCounters(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4})
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := sparse.Poisson2D(200, 200) // nnz ≈ 2·10⁵, above the SpMV threshold
	x := make([]float64, a.Dim())
	y := make([]float64, a.Dim())
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	a.MulVecPar(y, x)

	m := getMetrics(t, ts.URL)
	if m.Kernels.Workers < 1 {
		t.Errorf("kernels.workers = %d, want ≥ 1", m.Kernels.Workers)
	}
	if pool.DefaultWorkers() > 1 {
		if m.Kernels.SpMVDispatches == 0 {
			t.Error("kernels.spmv_dispatches = 0 after a pool-dispatched SpMV")
		}
		if m.Kernels.Dispatches == 0 {
			t.Error("kernels.dispatches = 0 after a pool-dispatched SpMV")
		}
	}
}

// TestBatchMaxFlushesEarly: hitting BatchMax flushes without waiting for the
// window.
func TestBatchMaxFlushesEarly(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 32, BatchWindow: time.Hour, BatchMax: 2})
	defer shutdownServer(t, s)

	var jobs []*job
	for i := 0; i < 2; i++ {
		j, err := s.Submit(SolveRequest{Matrix: "poisson2d:12", Method: "pcg"})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		select {
		case <-j.done:
		case <-time.After(20 * time.Second):
			t.Fatal("batch did not flush at BatchMax (window is 1h)")
		}
		st := j.status()
		if st.State != JobDone || !st.Result.Batched || st.Result.BatchSize != 2 {
			t.Errorf("job %s: %+v", st.ID, st.Result)
		}
	}
}

// TestCancellation covers both cancellation paths deterministically with a
// single worker: a queued job cancelled before it starts, and a running job
// cancelled mid-solve via its context.
func TestCancellation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8, BatchWindow: time.Millisecond})
	defer shutdownServer(t, s)

	// Blocker: unreachable tolerance keeps the single worker busy.
	blocker, err := s.Submit(SolveRequest{
		Matrix: "poisson2d:96", Method: "pcg", Precond: "identity",
		Tol: 1e-300, MaxIters: 12000, NoBatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Target queues behind the blocker and is cancelled while still queued.
	target, err := s.Submit(SolveRequest{Matrix: "poisson2d:12", Method: "pcg", NoBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	target.cancel()
	time.Sleep(200 * time.Millisecond) // let the blocker iterate before cancelling it
	blocker.cancel()

	for _, j := range []*job{blocker, target} {
		select {
		case <-j.done:
		case <-time.After(30 * time.Second):
			t.Fatalf("job %s did not terminate after cancel", j.id)
		}
	}
	if st := blocker.status(); st.State != JobCancelled {
		t.Errorf("blocker state = %s, want cancelled (result %+v)", st.State, st.Result)
	} else if st.Result == nil || st.Result.Iterations == 0 {
		t.Errorf("mid-solve cancel should report partial iterations: %+v", st.Result)
	}
	if st := target.status(); st.State != JobCancelled {
		t.Errorf("queued-job cancel: state = %s, want cancelled", st.State)
	}
}

// TestDeadline: a request-level timeout cancels the solve and the sync HTTP
// path maps it to 504 with partial stats attached.
func TestDeadline(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, st := postSolve(t, ts.URL, SolveRequest{
		Matrix: "poisson2d:64", Method: "pcg", Precond: "identity",
		Tol: 1e-300, MaxIters: 12000, TimeoutMS: 50, NoBatch: true,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("HTTP %d, want 504 (state=%s result=%+v)", code, st.State, st.Result)
	}
	if st.State != JobCancelled {
		t.Errorf("state = %s, want cancelled", st.State)
	}
}

// TestQueueFullRejects: admission control rejects the (QueueDepth+1)-th
// outstanding job instead of queueing unboundedly.
func TestQueueFullRejects(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer shutdownServer(t, s)

	blocker, err := s.Submit(SolveRequest{
		Matrix: "poisson2d:48", Method: "pcg", Precond: "identity",
		Tol: 1e-300, MaxIters: 12000, NoBatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(SolveRequest{Matrix: "poisson2d:12", Method: "pcg", NoBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(SolveRequest{Matrix: "poisson2d:12", Method: "pcg", NoBatch: true}); err != ErrQueueFull {
		t.Errorf("third submit: err = %v, want ErrQueueFull", err)
	}
	if got := s.Metrics().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	blocker.cancel()
	<-blocker.done
	<-queued.done
	// Slots freed: admission accepts again.
	if _, err := s.Submit(SolveRequest{Matrix: "poisson2d:12", Method: "pcg", NoBatch: true}); err != nil {
		t.Errorf("submit after drain: %v", err)
	}
}

// TestShutdownDrains: Shutdown finishes queued work, then Submit refuses.
func TestShutdownDrains(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 16, BatchWindow: 50 * time.Millisecond})
	var jobs []*job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(SolveRequest{Matrix: "poisson2d:16", Method: "pcg"})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, j := range jobs {
		st := j.status()
		if st.State != JobDone {
			t.Errorf("job %s after drain: state %s (%+v)", st.ID, st.State, st.Result)
		}
	}
	if _, err := s.Submit(SolveRequest{Matrix: "poisson2d:12", Method: "pcg"}); err != ErrShuttingDown {
		t.Errorf("submit after shutdown: err = %v, want ErrShuttingDown", err)
	}
}

// TestValidation: malformed requests are rejected at submission.
func TestValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownServer(t, s)
	bad := []SolveRequest{
		{},                                       // missing matrix
		{Matrix: "poisson2d:8", Method: "gmres"}, // unknown method
		{Matrix: "poisson2d:8", Precond: "ilu"},  // unknown preconditioner
		{Matrix: "poisson2d:8", Basis: "fourier"}, // unknown basis
		{Matrix: "poisson2d:8", RHS: "zeros"},     // unknown rhs
		{Matrix: "poisson2d:8", Tol: -1},          // negative tol
		{Matrix: "nosuchmatrix"},                  // caught at solve time
	}
	for i, req := range bad[:6] {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("bad request %d (%+v) accepted", i, req)
		}
	}
	// Unknown matrix passes validation (resolution is lazy) but fails the job.
	j, err := s.Submit(bad[6])
	if err != nil {
		t.Fatalf("unknown-matrix submit should be admitted: %v", err)
	}
	<-j.done
	if st := j.status(); st.State != JobFailed {
		t.Errorf("unknown matrix: state %s, want failed", st.State)
	}
}

// TestJobEndpoints: async submission, polling and the matrices listing.
func TestJobEndpoints(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, st := postSolve(t, ts.URL, SolveRequest{Matrix: "poisson2d:16", Method: "spcg", S: 4, Async: true})
	if code != http.StatusAccepted || st.ID == "" {
		t.Fatalf("async submit: HTTP %d %+v", code, st)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cur.State == JobDone {
			if cur.Result == nil || !cur.Result.Converged {
				t.Fatalf("async job finished without convergence: %+v", cur.Result)
			}
			break
		}
		if cur.State == JobFailed || cur.State == JobCancelled {
			t.Fatalf("async job reached %s: %+v", cur.State, cur.Result)
		}
		if time.Now().After(deadline) {
			t.Fatalf("async job stuck in %s", cur.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/jobs/job-99999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/matrices")
	if err != nil {
		t.Fatal(err)
	}
	var names struct {
		Matrices []string `json:"matrices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(names.Matrices) == 0 {
		t.Error("GET /matrices returned no names")
	}
}

// TestParsePrecondCanonical: spec aliases share one canonical cache key.
func TestParsePrecondCanonical(t *testing.T) {
	cases := [][2]string{
		{"", "jacobi"},
		{"jacobi", "jacobi"},
		{"none", "identity"},
		{"ssor", "ssor:1"},
		{"ssor:1.0", "ssor:1"},
		{"blockjacobi", "blockjacobi:16"},
		{"chebyshev:3", "chebyshev:3"},
	}
	for _, c := range cases {
		spec, err := precond.Parse(c[0])
		if err != nil {
			t.Errorf("precond.Parse(%q): %v", c[0], err)
			continue
		}
		if spec.Canonical() != c[1] {
			t.Errorf("precond.Parse(%q).Canonical() = %q, want %q", c[0], spec.Canonical(), c[1])
		}
	}
}

// TestRegistryGenerators: parametric specs build, bad specs error, and the
// same name returns the identical matrix instance (the cache contract).
func TestRegistryGenerators(t *testing.T) {
	r := newRegistry(1, 1<<20)
	a1, fp1, err := r.get("poisson2d:8")
	if err != nil {
		t.Fatal(err)
	}
	a2, fp2, err := r.get("poisson2d:8")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || fp1 != fp2 {
		t.Error("same name must return the same built matrix")
	}
	if a1.Dim() != 64 {
		t.Errorf("poisson2d:8 has n=%d, want 64", a1.Dim())
	}
	for _, bad := range []string{"", "poisson2d", "poisson2d:0", "poisson2d:x", "mystery:4", "aniso2d:8"} {
		if _, _, err := r.get(bad); err == nil {
			t.Errorf("registry accepted bad spec %q", bad)
		}
	}
	if len(r.names()) == 0 {
		t.Error("registry has no suite problems")
	}
}
