package pool

import (
	"sync"
	"testing"
)

func TestRunCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		p := New(workers)
		for _, n := range []int{1, 2, 5, 100, 1 << 12} {
			hits := make([]int32, n)
			var mu sync.Mutex
			p.Run(n, func(part, lo, hi int) {
				mu.Lock()
				for i := lo; i < hi; i++ {
					hits[i]++
				}
				mu.Unlock()
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, h)
				}
			}
		}
		p.Close()
	}
}

func TestDispatchStridedParts(t *testing.T) {
	p := New(4)
	defer p.Close()
	const parts = 11
	seen := make([]int32, parts)
	var mu sync.Mutex
	p.Dispatch(parts, func(t int) {
		mu.Lock()
		seen[t]++
		mu.Unlock()
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("part %d ran %d times", i, c)
		}
	}
}

func TestRunBoundsSkipsEmptyRanges(t *testing.T) {
	p := New(3)
	defer p.Close()
	bounds := []int{0, 4, 4, 10}
	var mu sync.Mutex
	var total int
	p.RunBounds(bounds, func(part, lo, hi int) {
		if lo >= hi {
			t.Errorf("empty range dispatched: part %d [%d,%d)", part, lo, hi)
		}
		mu.Lock()
		total += hi - lo
		mu.Unlock()
	})
	if total != 10 {
		t.Fatalf("covered %d of 10 rows", total)
	}
}

// TestClosedPoolRunsInline: dispatching on a closed pool must still produce
// the full (identical) result, just sequentially.
func TestClosedPoolRunsInline(t *testing.T) {
	p := New(4)
	p.Close()
	n := 1000
	sum := 0
	p.Run(n, func(part, lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if want := n * (n - 1) / 2; sum != want {
		t.Fatalf("closed-pool run got %d, want %d", sum, want)
	}
	p.Close() // idempotent
}

// TestConcurrentDispatches: many goroutines sharing one pool must serialize
// cleanly (run with -race in CI).
func TestConcurrentDispatches(t *testing.T) {
	p := New(4)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				n := 256 + g
				out := make([]float64, n)
				p.Run(n, func(part, lo, hi int) {
					for i := lo; i < hi; i++ {
						out[i] = float64(i)
					}
				})
				for i := range out {
					if out[i] != float64(i) {
						t.Errorf("g=%d rep=%d: out[%d]=%v", g, rep, i, out[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSetDefaultWorkers(t *testing.T) {
	prev := SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers = %d after SetDefaultWorkers(3)", got)
	}
	if Default().Workers() != 3 {
		t.Fatalf("Default pool has %d workers", Default().Workers())
	}
	SetDefaultWorkers(prev)
}

func TestStatsCounters(t *testing.T) {
	before := ReadStats()
	p := New(2)
	defer p.Close()
	p.Run(1<<10, func(part, lo, hi int) {})
	CountFusedGram()
	after := ReadStats()
	if after.Dispatches <= before.Dispatches {
		t.Fatal("dispatch counter did not advance")
	}
	if after.FusedGramCalls != before.FusedGramCalls+1 {
		t.Fatal("fused gram counter did not advance")
	}
}
