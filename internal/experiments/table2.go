package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"spcg/internal/basis"
	"spcg/internal/solver"
	"spcg/internal/suite"
)

// Table2Row is one matrix's result in the paper's Table 2 layout: iteration
// counts to reach ‖b−Ax‖₂/‖b−Ax⁰‖₂ < tol per solver, with monomial and
// Chebyshev basis variants ("mon/cheb"). Zero means no convergence.
type Table2Row struct {
	Name      string
	Rows, NNZ int // built (scaled) sizes
	PCG       int
	PCGOk     bool
	// [0] = monomial, [1] = Chebyshev.
	SPCG, CAPCG, CAPCG3       [2]int
	SPCGOk, CAPCGOk, CAPCG3Ok [2]bool
	Paper                     suite.PaperIters
}

// RunTable2 reproduces Table 2 over the given problems (paper: all 40, one
// node, s=10, Chebyshev preconditioner of degree 3, true-residual criterion,
// monomial and Chebyshev bases).
func RunTable2(cfg Config, problems []suite.Problem) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	var out []Table2Row
	for _, p := range problems {
		a := p.Build(cfg.Scale)
		st, err := newSetup(a, "chebyshev", cfg.PrecondDegree)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		row := Table2Row{Name: p.Name, Rows: a.Dim(), NNZ: a.NNZ(), Paper: p.Paper}
		row.PCG, row.PCGOk, _ = runOne(solver.PCG, st, basisOpts(cfg, basis.Monomial, solver.TrueResidual2Norm))
		for bi, bt := range []basis.Type{basis.Monomial, basis.Chebyshev} {
			opts := basisOpts(cfg, bt, solver.TrueResidual2Norm)
			row.SPCG[bi], row.SPCGOk[bi], _ = runOne(solver.SPCG, st, opts)
			row.CAPCG[bi], row.CAPCGOk[bi], _ = runOne(solver.CAPCG, st, opts)
			row.CAPCG3[bi], row.CAPCG3Ok[bi], _ = runOne(solver.CAPCG3, st, opts)
		}
		out = append(out, row)
		cfg.progressf("table2: %s done (rows=%d, PCG=%s)", p.Name, row.Rows, hyph(row.PCG, row.PCGOk))
	}
	return out, nil
}

// Table2Summary aggregates convergence counts like the paper's §5.2 prose
// ("CA-PCG converged for 23 out of 40 matrices with the monomial basis...").
type Table2Summary struct {
	Total                                                int
	SPCGMon, SPCGCheb                                    int
	CAPCGMon, CAPCGCheb                                  int
	CAPCG3Mon, CAPCG3Cheb                                int
	SPCGChebNoDelay, CAPCGChebNoDelay, CAPCG3ChebNoDelay int
}

// Summarize counts convergences and no-significant-delay convergences
// (< 20% iteration overhead or < s extra iterations vs PCG, the paper's
// bold-face rule).
func Summarize(rows []Table2Row, s int) Table2Summary {
	sum := Table2Summary{Total: len(rows)}
	noDelay := func(iters, pcg int) bool {
		return iters <= pcg+pcg/5 || iters <= pcg+s
	}
	for _, r := range rows {
		if r.SPCGOk[0] {
			sum.SPCGMon++
		}
		if r.CAPCGOk[0] {
			sum.CAPCGMon++
		}
		if r.CAPCG3Ok[0] {
			sum.CAPCG3Mon++
		}
		if r.SPCGOk[1] {
			sum.SPCGCheb++
			if noDelay(r.SPCG[1], r.PCG) {
				sum.SPCGChebNoDelay++
			}
		}
		if r.CAPCGOk[1] {
			sum.CAPCGCheb++
			if noDelay(r.CAPCG[1], r.PCG) {
				sum.CAPCGChebNoDelay++
			}
		}
		if r.CAPCG3Ok[1] {
			sum.CAPCG3Cheb++
			if noDelay(r.CAPCG3[1], r.PCG) {
				sum.CAPCG3ChebNoDelay++
			}
		}
	}
	return sum
}

// RenderTable2 writes the rows in the paper's layout ("mon/cheb" per
// s-step solver) with the paper's own numbers alongside.
func RenderTable2(w io.Writer, rows []Table2Row, s int) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Matrix\tRows\tNNZ\tPCG\tsPCG\tCA-PCG\tCA-PCG3\tpaper:PCG\tpaper:sPCG\tpaper:CA-PCG\tpaper:CA-PCG3")
	pair := func(v [2]int, ok [2]bool) string {
		return hyph(v[0], ok[0]) + "/" + hyph(v[1], ok[1])
	}
	paperPair := func(mon, cheb int) string {
		return hyph(mon, mon > 0) + "/" + hyph(cheb, cheb > 0)
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%s\t%s\t%d\t%s\t%s\t%s\n",
			r.Name, r.Rows, r.NNZ,
			hyph(r.PCG, r.PCGOk),
			pair(r.SPCG, r.SPCGOk), pair(r.CAPCG, r.CAPCGOk), pair(r.CAPCG3, r.CAPCG3Ok),
			r.Paper.PCG,
			paperPair(r.Paper.SPCGMon, r.Paper.SPCGCheb),
			paperPair(r.Paper.CAPCGMon, r.Paper.CAPCGCheb),
			paperPair(r.Paper.CAPCG3Mon, r.Paper.CAPCG3Cheb))
	}
	tw.Flush()
	sum := Summarize(rows, s)
	fmt.Fprintf(w, "\nConverged (of %d): monomial sPCG %d, CA-PCG %d, CA-PCG3 %d | Chebyshev sPCG %d, CA-PCG %d, CA-PCG3 %d\n",
		sum.Total, sum.SPCGMon, sum.CAPCGMon, sum.CAPCG3Mon, sum.SPCGCheb, sum.CAPCGCheb, sum.CAPCG3Cheb)
	fmt.Fprintf(w, "Chebyshev without significant delay: sPCG %d, CA-PCG %d, CA-PCG3 %d\n",
		sum.SPCGChebNoDelay, sum.CAPCGChebNoDelay, sum.CAPCG3ChebNoDelay)
}
