package solver

import (
	"math"
	"testing"

	"spcg/internal/basis"
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

func TestAdaptiveMatchesSPCGWhenStable(t *testing.T) {
	// On a problem where sPCG at the requested s is healthy, the adaptive
	// wrapper must behave identically (no s reductions).
	a := sparse.Poisson2D(20, 20)
	b, xTrue := testProblem(a)
	m, _ := precond.NewJacobi(a)
	x, st, err := SPCGAdaptive(a, m, b, Options{S: 5, Basis: basis.Chebyshev, Tol: 1e-8, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("did not converge: %+v", st.Breakdown)
	}
	if st.Restarts != 0 {
		t.Fatalf("unexpected s reductions: %d", st.Restarts)
	}
	if e := solutionError(x, xTrue); e > 1e-6 {
		t.Fatalf("solution error %v", e)
	}
}

func TestAdaptiveRecoversFromMonomialBreakdown(t *testing.T) {
	// The monomial basis at s = 10 collapses; the adaptive cascade must
	// shrink s until it converges (s ≤ 5 is stable for this problem).
	a := sparse.Anisotropic2D(40, 40, 1e-3)
	b, xTrue := testProblem(a)
	m, _ := precond.NewJacobi(a)
	x, st, err := SPCGAdaptive(a, m, b, Options{S: 10, Basis: basis.Monomial, Tol: 1e-8, MaxIterations: 12000, Criterion: TrueResidual2Norm})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("adaptive cascade did not converge: rel %v, restarts %d", st.FinalRelative, st.Restarts)
	}
	if st.Restarts == 0 {
		t.Fatal("expected at least one s reduction for the monomial basis at s=10")
	}
	if e := solutionError(x, xTrue); e > 1e-5 {
		t.Fatalf("solution error %v", e)
	}
}

func TestAdaptiveDegradesToPlainPCG(t *testing.T) {
	// With s = 1 requested directly, the cascade is just PCG.
	a := sparse.Poisson1D(60)
	b, xTrue := testProblem(a)
	x, st, err := SPCGAdaptive(a, nil, b, Options{S: 1, Tol: 1e-10, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("PCG phase did not converge")
	}
	if e := solutionError(x, xTrue); e > 1e-7 {
		t.Fatalf("solution error %v", e)
	}
}

func TestAdaptiveRespectsIterationBudget(t *testing.T) {
	a := sparse.Anisotropic2D(30, 30, 1e-4)
	b, _ := testProblem(a)
	_, st, err := SPCGAdaptive(a, nil, b, Options{S: 8, Basis: basis.Monomial, Tol: 1e-13, MaxIterations: 40, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if st.Converged {
		t.Fatal("should not converge within 40 iterations at 1e-13")
	}
	// The cascade must not run unbounded: total iterations stay within a
	// small multiple of the budget (each phase obeys the remaining cap).
	if st.Iterations > 40+8 {
		t.Fatalf("iterations %d exceed the budget", st.Iterations)
	}
}

func TestAdaptiveErrorPropagation(t *testing.T) {
	a := sparse.Poisson1D(10)
	if _, _, err := SPCGAdaptive(a, nil, make([]float64, 3), Options{S: 2}); err == nil {
		t.Fatal("bad rhs accepted")
	}
}

func TestAdaptiveStatsAggregate(t *testing.T) {
	a := sparse.Poisson2D(15, 15)
	b, _ := testProblem(a)
	_, st, err := SPCGAdaptive(a, nil, b, Options{S: 4, Basis: basis.Chebyshev, Tol: 1e-8, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if st.MVProducts <= 0 || st.Allreduces <= 0 || len(st.History) == 0 {
		t.Fatalf("stats not aggregated: %+v", st)
	}
	if st.TrueRelResidual > 1e-7 {
		t.Fatalf("true residual %v", st.TrueRelResidual)
	}
	if math.IsNaN(st.FinalRelative) {
		t.Fatal("FinalRelative not set")
	}
}
