// Package precond provides the preconditioners used in the paper's
// experiments — Jacobi and the degree-d Chebyshev polynomial preconditioner —
// plus block-Jacobi, SSOR and IC(0) as additional substrates.
//
// Every preconditioner here is a fixed symmetric positive-definite linear
// operator M⁻¹ (a requirement of PCG), and each reports its per-application
// cost in FLOPs and halo exchanges so the virtual cluster can charge it.
//
// All preconditioners in this package are immutable after construction:
// Apply never writes to receiver state (scratch space comes from a
// sync.Pool), so a single instance may serve concurrent Apply calls from
// many solver goroutines — the property the solve service's setup cache
// relies on and TestConcurrentSolvesShareState enforces under -race.
package precond

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// Interface is a fixed SPD preconditioner operator.
type Interface interface {
	// Apply computes dst = M⁻¹·src. dst and src must not alias.
	Apply(dst, src []float64)
	// Dim returns the operand length n.
	Dim() int
	// Name returns a short identifier ("jacobi", "chebyshev(3)", ...).
	Name() string
	// Flops returns the floating-point operations per application,
	// used by the distributed cost model.
	Flops() float64
	// HaloExchanges returns how many neighbour exchanges one application
	// costs in a block-row distribution (0 for pointwise preconditioners,
	// d for a degree-d polynomial preconditioner built on SpMV).
	HaloExchanges() int
}

// ErrZeroDiagonal is returned when a matrix has a non-positive diagonal
// entry, which rules out Jacobi-type preconditioning of an SPD system.
var ErrZeroDiagonal = errors.New("precond: matrix has non-positive diagonal entry")

// Identity is the trivial preconditioner M = I.
type Identity struct{ n int }

// NewIdentity returns the identity preconditioner for vectors of length n.
func NewIdentity(n int) *Identity { return &Identity{n: n} }

// Apply copies src to dst.
func (p *Identity) Apply(dst, src []float64) { vec.Copy(dst, src) }

// Dim returns n.
func (p *Identity) Dim() int { return p.n }

// Name returns "identity".
func (p *Identity) Name() string { return "identity" }

// Flops returns 0.
func (p *Identity) Flops() float64 { return 0 }

// HaloExchanges returns 0.
func (p *Identity) HaloExchanges() int { return 0 }

// Jacobi is the diagonal preconditioner M = diag(A).
type Jacobi struct {
	invDiag []float64
}

// NewJacobi builds the Jacobi preconditioner from the diagonal of a.
func NewJacobi(a *sparse.CSR) (*Jacobi, error) {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v <= 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("%w: row %d has diagonal %v", ErrZeroDiagonal, i, v)
		}
		inv[i] = 1 / v
	}
	return &Jacobi{invDiag: inv}, nil
}

// Apply computes dst = D⁻¹·src.
func (p *Jacobi) Apply(dst, src []float64) { vec.HadamardInto(dst, p.invDiag, src) }

// InvDiag returns the inverse diagonal D⁻¹ (a view, not a copy). It is the
// capability the fused matrix-powers fast path keys on: a preconditioner
// exposing InvDiag can be applied inside the SpMV row loop.
func (p *Jacobi) InvDiag() []float64 { return p.invDiag }

// Dim returns n.
func (p *Jacobi) Dim() int { return len(p.invDiag) }

// Name returns "jacobi".
func (p *Jacobi) Name() string { return "jacobi" }

// Flops returns n (one multiply per entry).
func (p *Jacobi) Flops() float64 { return float64(len(p.invDiag)) }

// HaloExchanges returns 0: Jacobi is pointwise.
func (p *Jacobi) HaloExchanges() int { return 0 }

// Chebyshev is the degree-d Chebyshev polynomial preconditioner: applying it
// runs d steps of Chebyshev iteration for A·z = r from z⁰ = 0 on the
// interval [λmin, λmax], i.e. M⁻¹ = p_d(A) with a fixed polynomial p_d.
// It needs only SpMV (no inner products), which is why the paper pairs it
// with s-step methods: it adds no global synchronization.
type Chebyshev struct {
	a          *sparse.CSR
	degree     int
	theta, del float64
	// scratch pools keep Apply allocation-free in steady state while
	// remaining safe for concurrent callers.
	scratch sync.Pool
}

// chebScratch is one caller's set of Apply work vectors.
type chebScratch struct{ r, d, ad []float64 }

// NewChebyshev builds a degree-d Chebyshev preconditioner for a on the
// spectral interval [lambdaMin, lambdaMax].
func NewChebyshev(a *sparse.CSR, degree int, lambdaMin, lambdaMax float64) (*Chebyshev, error) {
	if degree < 1 {
		return nil, fmt.Errorf("precond: Chebyshev degree %d < 1", degree)
	}
	if !(lambdaMax > lambdaMin) || lambdaMin <= 0 {
		return nil, fmt.Errorf("precond: Chebyshev needs 0 < λmin < λmax, got [%v, %v]", lambdaMin, lambdaMax)
	}
	n := a.Dim()
	p := &Chebyshev{
		a:      a,
		degree: degree,
		theta:  (lambdaMax + lambdaMin) / 2,
		del:    (lambdaMax - lambdaMin) / 2,
	}
	p.scratch.New = func() any {
		return &chebScratch{
			r:  make([]float64, n),
			d:  make([]float64, n),
			ad: make([]float64, n),
		}
	}
	return p, nil
}

// Apply runs the fixed-degree Chebyshev iteration (Saad, Iterative Methods,
// Alg. 12.1 specialized to zero initial guess).
func (p *Chebyshev) Apply(dst, src []float64) {
	n := p.a.Dim()
	if len(dst) != n || len(src) != n {
		panic("precond: Chebyshev Apply dim mismatch")
	}
	ws := p.scratch.Get().(*chebScratch)
	defer p.scratch.Put(ws)
	sigma1 := p.theta / p.del
	rho := 1 / sigma1
	// z⁰ = 0, r⁰ = src, d⁰ = r⁰/θ, z¹ = d⁰.
	vec.Copy(ws.r, src)
	vec.ScaleInto(ws.d, 1/p.theta, ws.r)
	vec.Copy(dst, ws.d)
	for k := 1; k < p.degree; k++ {
		p.a.MulVec(ws.ad, ws.d)
		vec.Axpy(-1, ws.ad, ws.r)
		rhoPrev := rho
		rho = 1 / (2*sigma1 - rhoPrev)
		// d ← ρ·ρprev·d + (2ρ/δ)·r
		vec.Axpby(2*rho/p.del, ws.r, rho*rhoPrev, ws.d)
		vec.Axpy(1, ws.d, dst)
	}
}

// Dim returns n.
func (p *Chebyshev) Dim() int { return p.a.Dim() }

// Name returns "chebyshev(d)".
func (p *Chebyshev) Name() string { return fmt.Sprintf("chebyshev(%d)", p.degree) }

// Degree returns the polynomial degree.
func (p *Chebyshev) Degree() int { return p.degree }

// Flops counts (degree−1) SpMVs plus the vector updates.
func (p *Chebyshev) Flops() float64 {
	n := float64(p.a.Dim())
	spmv := 2 * float64(p.a.NNZ())
	return float64(p.degree-1)*(spmv+6*n) + 2*n
}

// HaloExchanges returns degree−1 (one per internal SpMV).
func (p *Chebyshev) HaloExchanges() int { return p.degree - 1 }
