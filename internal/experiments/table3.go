package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/solver"
	"spcg/internal/suite"
)

// Table3Row holds one matrix's modeled runtimes: PCG's time and each s-step
// method's speedup over it, for both preconditioner columns of the paper's
// Table 3 (Chebyshev-precondition/2-norm and Jacobi/M-norm). Speedup 0 means
// the method did not converge ("−").
type Table3Row struct {
	Name string
	// Cheb* use the Chebyshev(3) preconditioner with the recursive 2-norm
	// criterion; Jac* use Jacobi with the recursive M-norm criterion.
	ChebPCGTime                     float64
	ChebSPCG, ChebCAPCG, ChebCAPCG3 float64
	JacPCGTime                      float64
	JacSPCG, JacCAPCG, JacCAPCG3    float64
}

// RunTable3 reproduces Table 3: the seven largest converging matrices,
// s = 10, Chebyshev basis, four nodes, both preconditioners.
func RunTable3(cfg Config, nodes int) ([]Table3Row, error) {
	cfg = cfg.withDefaults()
	if nodes <= 0 {
		nodes = 4 // the paper's 4 nodes × 128 ranks = 512 processes
	}
	var out []Table3Row
	for _, p := range suite.Table3() {
		a := p.Build(cfg.Scale)
		cl, err := dist.NewCluster(cfg.Machine, nodes, a)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		row := Table3Row{Name: p.Name}

		type variant struct {
			prec    string
			crit    solver.Criterion
			pcgTime *float64
			speeds  []*float64
		}
		variants := []variant{
			{"chebyshev", solver.RecursiveResidual2Norm, &row.ChebPCGTime, []*float64{&row.ChebSPCG, &row.ChebCAPCG, &row.ChebCAPCG3}},
			{"jacobi", solver.RecursiveResidualMNorm, &row.JacPCGTime, []*float64{&row.JacSPCG, &row.JacCAPCG, &row.JacCAPCG3}},
		}
		for _, v := range variants {
			// Random RHS: same substitution as RunFig1 (see DESIGN.md).
			st, err := newSetupRandomRHS(a, uint64(1e9)+uint64(len(out)), v.prec, cfg.PrecondDegree)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p.Name, err)
			}
			opts := basisOpts(cfg, basis.Chebyshev, v.crit)
			opts.Tracker = dist.NewTracker(cl)
			_, ok, stats := runOne(solver.PCG, st, opts)
			_ = ok
			if !stats.Converged {
				// PCG itself failing would make speedups meaningless; mark
				// with zero time and move on.
				continue
			}
			*v.pcgTime = stats.SimTime
			for i, ss := range sStepSolvers() {
				o := basisOpts(cfg, basis.Chebyshev, v.crit)
				o.Tracker = dist.NewTracker(cl)
				_, _, sst := runOne(ss.Run, st, o)
				if sst != nil && sst.Converged && sst.SimTime > 0 {
					*v.speeds[i] = stats.SimTime / sst.SimTime
				}
			}
		}
		out = append(out, row)
		cfg.progressf("table3: %s done", p.Name)
	}
	return out, nil
}

// RenderTable3 writes the rows in the paper's layout.
func RenderTable3(w io.Writer, rows []Table3Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tChebyshev preconditioner (deg 3)\t\t\t\tJacobi preconditioner\t\t\t")
	fmt.Fprintln(tw, "Matrix\tPCG\tsPCG\tCA-PCG\tCA-PCG3\tPCG\tsPCG\tCA-PCG\tCA-PCG3")
	sp := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", v)
	}
	tm := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.3fs", v)
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Name, tm(r.ChebPCGTime), sp(r.ChebSPCG), sp(r.ChebCAPCG), sp(r.ChebCAPCG3),
			tm(r.JacPCGTime), sp(r.JacSPCG), sp(r.JacCAPCG), sp(r.JacCAPCG3))
	}
	tw.Flush()
}
