package experiments

import (
	"fmt"
	"io"

	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/fault"
	"spcg/internal/solver"
	"spcg/internal/sparse"
)

// FaultSoftRow reports one (solver, soft-error rate) cell of the fault sweep:
// the same seeded corruption stream applied to an unprotected and a protected
// run, judged by the *true* relative residual (silent corruption leaves the
// recursive criterion looking healthy — exactly the failure mode detection
// exists for).
type FaultSoftRow struct {
	Solver string
	Rate   float64 // per-SpMV corruption probability
	// Injected counts the corruption events actually drawn.
	Injected int
	// UnprotRel / ProtRel are the final true relative residuals.
	UnprotRel, ProtRel float64
	// UnprotOK / ProtOK report true-residual convergence to cfg.Tol.
	UnprotOK, ProtOK bool
	// Detected/Rollbacks/Iterations describe the protected run.
	Detected, Rollbacks, Iterations int
}

// FaultCommRow reports one communication-failure probability of the sweep:
// identical numerics, increasing modeled time as the fault model charges
// timeout + exponential-backoff retries.
type FaultCommRow struct {
	Prob       float64
	Retried    int     // messages retried over the whole solve
	CleanTime  float64 // modeled time without faults (s)
	FaultyTime float64 // modeled time with faults (s)
}

// FaultsResult aggregates the fault-tolerance experiment.
type FaultsResult struct {
	Dim  int
	S    int
	Soft []FaultSoftRow
	Comm []FaultCommRow
}

// RunFaults sweeps soft-error rates over PCG and sPCG (unprotected vs
// detection+rollback) and communication-failure probabilities over the cost
// model, on a 2D Poisson problem of the given grid dimension. rates and
// probs may be nil for the defaults.
func RunFaults(cfg Config, dim int, rates, probs []float64) (*FaultsResult, error) {
	cfg = cfg.withDefaults()
	if dim <= 0 {
		dim = 20
	}
	if rates == nil {
		rates = []float64{0.05, 0.1, 0.15}
	}
	if probs == nil {
		probs = []float64{0.05, 0.1, 0.2}
	}
	a := sparse.Poisson2D(dim, dim)
	st, err := newSetup(a, "jacobi", cfg.PrecondDegree)
	if err != nil {
		return nil, err
	}
	res := &FaultsResult{Dim: dim, S: cfg.S}

	solvers := []struct {
		name        string
		run         solverFn
		detectEvery int // PCG probes every s steps; s-step probes every outer
	}{
		{"PCG", solver.PCG, cfg.S},
		{"sPCG", solver.SPCG, 1},
	}
	// The seed is fixed so the sweep (and its test) is reproducible; it was
	// chosen so every default rate draws at least one corruption on the
	// default problem.
	const seed = 1
	for _, sv := range solvers {
		for _, rate := range rates {
			base := basisOpts(cfg, basis.Chebyshev, solver.RecursiveResidualMNorm)
			base.Spectrum = st.spectrum

			unprot := base
			unprot.Injector = fault.New(seed, fault.Config{SpMVCorruptProb: rate})
			_, us, err := sv.run(st.a, st.m, st.b, unprot)
			if err != nil {
				return nil, err
			}

			prot := base
			prot.Injector = fault.New(seed, fault.Config{SpMVCorruptProb: rate})
			prot.DetectEvery = sv.detectEvery
			_, ps, err := sv.run(st.a, st.m, st.b, prot)
			if err != nil {
				return nil, err
			}

			row := FaultSoftRow{
				Solver:     sv.name,
				Rate:       rate,
				Injected:   unprot.Injector.Counts().Total(),
				UnprotRel:  us.TrueRelResidual,
				UnprotOK:   us.TrueRelResidual <= cfg.Tol,
				ProtRel:    ps.TrueRelResidual,
				ProtOK:     ps.Converged && ps.TrueRelResidual <= 10*cfg.Tol,
				Detected:   ps.DetectedFaults,
				Rollbacks:  ps.Rollbacks,
				Iterations: ps.Iterations,
			}
			res.Soft = append(res.Soft, row)
			cfg.progressf("faults: %s rate=%g unprot=%.2e prot=%.2e detected=%d",
				sv.name, rate, row.UnprotRel, row.ProtRel, row.Detected)
		}
	}

	// Communication-failure sweep: the numerics are untouched (faults charge
	// time, not values), so the clean run is the shared baseline.
	cleanCl, err := dist.NewCluster(cfg.Machine, 1, a)
	if err != nil {
		return nil, err
	}
	cleanOpts := basisOpts(cfg, basis.Chebyshev, solver.RecursiveResidualMNorm)
	cleanOpts.Spectrum = st.spectrum
	cleanOpts.Tracker = dist.NewTracker(cleanCl)
	_, cs, err := solver.PCG(st.a, st.m, st.b, cleanOpts)
	if err != nil {
		return nil, err
	}
	for _, p := range probs {
		m := cfg.Machine
		m.Faults = dist.FaultModel{CommFailProb: p, Seed: seed}
		cl, err := dist.NewCluster(m, 1, a)
		if err != nil {
			return nil, err
		}
		opts := basisOpts(cfg, basis.Chebyshev, solver.RecursiveResidualMNorm)
		opts.Spectrum = st.spectrum
		opts.Tracker = dist.NewTracker(cl)
		_, fs, err := solver.PCG(st.a, st.m, st.b, opts)
		if err != nil {
			return nil, err
		}
		if fs.Iterations != cs.Iterations {
			return nil, fmt.Errorf("experiments: comm fault model changed iteration count (%d vs %d)", fs.Iterations, cs.Iterations)
		}
		res.Comm = append(res.Comm, FaultCommRow{
			Prob: p, Retried: fs.RetriedMessages,
			CleanTime: cs.SimTime, FaultyTime: fs.SimTime,
		})
		cfg.progressf("faults: comm p=%g retried=%d time %.4fs -> %.4fs", p, fs.RetriedMessages, cs.SimTime, fs.SimTime)
	}
	return res, nil
}

// RenderFaults prints the sweep in the repo's table style.
func RenderFaults(w io.Writer, r *FaultsResult) {
	fmt.Fprintf(w, "Fault tolerance sweep (2D Poisson %dx%d, s=%d)\n\n", r.Dim, r.Dim, r.S)
	fmt.Fprintf(w, "Soft errors (per-SpMV corruption; true relative residual):\n")
	fmt.Fprintf(w, "%-6s %-8s %-9s %-12s %-12s %-9s %-10s %s\n",
		"solver", "rate", "injected", "unprotected", "protected", "detected", "rollbacks", "iters")
	for _, row := range r.Soft {
		fmt.Fprintf(w, "%-6s %-8g %-9d %-12s %-12s %-9d %-10d %d\n",
			row.Solver, row.Rate, row.Injected,
			relMark(row.UnprotRel, row.UnprotOK), relMark(row.ProtRel, row.ProtOK),
			row.Detected, row.Rollbacks, row.Iterations)
	}
	fmt.Fprintf(w, "\nTransient communication failures (modeled time, PCG):\n")
	fmt.Fprintf(w, "%-8s %-9s %-12s %-12s %s\n", "prob", "retried", "clean (s)", "faulty (s)", "overhead")
	for _, row := range r.Comm {
		fmt.Fprintf(w, "%-8g %-9d %-12.4g %-12.4g %.2fx\n",
			row.Prob, row.Retried, row.CleanTime, row.FaultyTime, row.FaultyTime/row.CleanTime)
	}
}

// relMark formats a true relative residual with a pass/fail marker.
func relMark(rel float64, ok bool) string {
	mark := "FAIL"
	if ok {
		mark = "ok"
	}
	return fmt.Sprintf("%.1e %s", rel, mark)
}
