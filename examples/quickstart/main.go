// Quickstart: solve a 3D Poisson system with the paper's sPCG (s-step PCG
// with the Chebyshev basis) and compare against standard PCG.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"spcg"
)

func main() {
	// 7-point Laplacian on a 32³ grid — a small version of the paper's
	// Figure 1 problem.
	a := spcg.Poisson3D(32, 32, 32)
	n := a.Dim()
	fmt.Printf("problem: n=%d, nnz=%d\n", n, a.NNZ())

	// Right-hand side with a known random solution.
	rng := rand.New(rand.NewSource(1))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64() / math.Sqrt(float64(n))
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)

	m, err := spcg.NewJacobi(a)
	if err != nil {
		log.Fatal(err)
	}

	// Standard PCG: two global reductions per iteration.
	_, pcgStats, err := spcg.PCG(a, m, b, spcg.Options{Tol: 1e-8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCG : %4d iterations, %4d global collectives, true rel. residual %.2e\n",
		pcgStats.Iterations, pcgStats.Allreduces, pcgStats.TrueRelResidual)

	// sPCG with s = 10 and the Chebyshev basis: one reduction per 10 steps.
	x, spcgStats, err := spcg.SPCG(a, m, b, spcg.Options{
		S:     10,
		Basis: spcg.Chebyshev,
		Tol:   1e-8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sPCG: %4d iterations, %4d global collectives, true rel. residual %.2e\n",
		spcgStats.Iterations, spcgStats.Allreduces, spcgStats.TrueRelResidual)

	var errNorm, xNorm float64
	for i := range x {
		d := x[i] - xTrue[i]
		errNorm += d * d
		xNorm += xTrue[i] * xTrue[i]
	}
	fmt.Printf("sPCG relative solution error = %.2e\n", math.Sqrt(errNorm/xNorm))
	fmt.Printf("collective reduction factor: %.1f× (theory: 2s = %d×)\n",
		float64(pcgStats.Allreduces)/float64(spcgStats.Allreduces), 2*10)
}
