package experiments

import (
	"strings"
	"testing"
)

func TestRunFaultsSweep(t *testing.T) {
	cfg := Config{Scale: 32, S: 6, Tol: 1e-8}
	res, err := RunFaults(cfg, 20, []float64{0.1}, []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Soft) != 2 || len(res.Comm) != 1 {
		t.Fatalf("unexpected sweep shape: %d soft, %d comm", len(res.Soft), len(res.Comm))
	}
	for _, row := range res.Soft {
		if row.Injected == 0 {
			t.Fatalf("%s: no corruptions injected at rate %g", row.Solver, row.Rate)
		}
		// The headline property: protection converges where the unprotected
		// run silently fails.
		if row.UnprotOK {
			t.Fatalf("%s: unprotected run reached true accuracy %.2e under corruption", row.Solver, row.UnprotRel)
		}
		if !row.ProtOK {
			t.Fatalf("%s: protected run failed (rel %.2e, detected %d, rollbacks %d)",
				row.Solver, row.ProtRel, row.Detected, row.Rollbacks)
		}
		if row.Detected == 0 || row.Rollbacks == 0 {
			t.Fatalf("%s: protection never fired", row.Solver)
		}
	}
	comm := res.Comm[0]
	if comm.Retried == 0 {
		t.Fatal("comm sweep drew no retries")
	}
	if comm.FaultyTime <= comm.CleanTime {
		t.Fatalf("retry cost not visible: %v <= %v", comm.FaultyTime, comm.CleanTime)
	}

	var sb strings.Builder
	RenderFaults(&sb, res)
	out := sb.String()
	for _, want := range []string{"Soft errors", "communication failures", "FAIL", "ok", "overhead"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
