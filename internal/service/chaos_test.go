package service

import (
	"strings"
	"testing"
	"time"

	"spcg/internal/fault"
)

// TestChaosHarness is the in-process chaos acceptance run: 200 requests mix
// healthy solves, guaranteed s=8 monomial breakdowns on an ill-conditioned
// operator, and unreachable-tolerance stagnators, while the chaos layer
// injects panics, SpMV soft errors and modeled comm faults into every solo
// solve. The resilience layer must keep the daemon alive (a leaked panic
// fails the test process), drive every job to a terminal state, open the
// breakdown circuit and serve at least one degraded-but-converged answer,
// and kill stagnators well before half their wall-clock deadline.
func TestChaosHarness(t *testing.T) {
	const (
		total        = 200
		stagDeadline = 8 * time.Second
	)
	s := New(Config{
		Workers: 4, QueueDepth: total + 8, BatchWindow: time.Millisecond,
		WatchdogInterval: 25 * time.Millisecond, StagnationWindow: 400 * time.Millisecond,
		BreakerFailures: 2, BreakerCooldown: 200 * time.Millisecond,
		Chaos: &ChaosConfig{
			Seed:      42,
			PanicProb: 0.05,
			Fault:     fault.Config{SpMVCorruptProb: 5e-4},
			// Modeled comm faults: retries are charged (never fatal), so this
			// exercises the comm-retry accounting path under load.
			CommFaultProb: 0.02,
		},
	})
	defer shutdownServer(t, s)

	healthy := []SolveRequest{
		{Matrix: "poisson2d:16", Method: "pcg"},
		{Matrix: "poisson2d:24", Method: "spcg", S: 4},
		{Matrix: "poisson2d:16", Method: "capcg", S: 4},
		{Matrix: "poisson2d:24", Method: "pcg3"},
	}
	classOf := make([]string, total)
	jobs := make([]*job, 0, total)
	for i := 0; i < total; i++ {
		var req SolveRequest
		switch {
		case i%25 == 7: // stagnator: grinds at the residual floor forever
			classOf[i] = "stagnation"
			req = SolveRequest{
				Matrix: "poisson2d:64", Method: "pcg", Precond: "identity",
				Tol: 1e-300, MaxIters: 500000,
				TimeoutMS: int(stagDeadline / time.Millisecond), NoBatch: true,
			}
		case i%7 == 3: // guaranteed Gram breakdown → breaker fuel
			classOf[i] = "breakdown"
			req = breakdownReq()
		default:
			classOf[i] = "healthy"
			req = healthy[i%len(healthy)]
		}
		j, err := s.Submit(req)
		if err != nil {
			t.Fatalf("chaos submit %d (%s): %v", i, classOf[i], err)
		}
		jobs = append(jobs, j)
	}

	deadline := time.After(120 * time.Second)
	for i, j := range jobs {
		select {
		case <-j.done:
		case <-deadline:
			t.Fatalf("chaos job %d (%s) not terminal in time: state=%s", i, classOf[i], j.status().State)
		}
	}

	var stagnated, degradedConverged, panicked int
	for i, j := range jobs {
		st := j.status()
		if !st.State.terminal() {
			t.Fatalf("job %d (%s): non-terminal state %s after done", i, classOf[i], st.State)
		}
		if st.Result == nil {
			t.Fatalf("job %d (%s): terminal without a result", i, classOf[i])
		}
		switch st.State {
		case JobStagnated:
			stagnated++
			if st.Started == nil || st.Finished == nil {
				t.Fatalf("stagnated job %d missing timestamps", i)
			}
			if ran := st.Finished.Sub(*st.Started); ran >= stagDeadline/2 {
				t.Errorf("stagnated job %d ran %s, want under half the %s deadline", i, ran, stagDeadline)
			}
		case JobFailed:
			if st.Result.Error == "" {
				t.Errorf("failed job %d (%s) has no error", i, classOf[i])
			}
			if strings.Contains(st.Result.Error, "injected panic") {
				panicked++
			}
		}
		if st.Result.DegradedFrom != "" && st.Result.Converged {
			degradedConverged++
		}
	}
	if stagnated < 1 {
		t.Errorf("stagnated jobs = %d, want ≥ 1 (watchdog never fired)", stagnated)
	}
	if degradedConverged < 1 {
		t.Errorf("degraded-and-converged jobs = %d, want ≥ 1 (breaker fallback never served)", degradedConverged)
	}

	m := s.Metrics()
	if m.Resilience.SolverPanics < 1 {
		t.Errorf("solver_panics_total = %d, want ≥ 1 (chaos injects at 5%%)", m.Resilience.SolverPanics)
	}
	if int64(panicked) != m.Resilience.SolverPanics {
		t.Errorf("jobs failed by panic = %d but solver_panics_total = %d", panicked, m.Resilience.SolverPanics)
	}
	if got := s.chaos.injectedPanics(); got != float64(m.Resilience.SolverPanics) {
		t.Errorf("chaos injected %v panics but the guard recovered %d", got, m.Resilience.SolverPanics)
	}
	if m.Resilience.BreakerOpened < 1 {
		t.Errorf("breaker_opened_total = %d, want ≥ 1 (guaranteed breakdowns)", m.Resilience.BreakerOpened)
	}
	if m.Resilience.DegradedSolves < 1 {
		t.Errorf("degraded_solves_total = %d, want ≥ 1", m.Resilience.DegradedSolves)
	}
	if m.Resilience.Stagnated != int64(stagnated) {
		t.Errorf("stagnated_total = %d but %d jobs report stagnated", m.Resilience.Stagnated, stagnated)
	}
	// Accounting closes: every admitted job landed in exactly one terminal bucket.
	if got := m.Completed + m.Failed + m.Cancelled; got != total {
		t.Errorf("terminal accounting = %d (done %d, failed %d, cancelled %d), want %d",
			got, m.Completed, m.Failed, m.Cancelled, total)
	}
	if h := m.Resilience.Health; h != "healthy" && h != "degraded" {
		t.Errorf("post-chaos health = %q, want healthy or degraded (not draining)", h)
	}
	t.Logf("chaos run: %d jobs — %d stagnated, %d panicked, %d degraded+converged, %d comm retries, breakers opened %d / restored %d",
		total, stagnated, panicked, degradedConverged, m.Resilience.CommRetries, m.Resilience.BreakerOpened, m.Resilience.BreakerRestored)
}
