// Command spcgbench regenerates the paper's tables and figures:
//
//	spcgbench table1 [-s 10] [-dim 24]
//	spcgbench table2 [-scale 32] [-s 10] [-only name1,name2]
//	spcgbench table3 [-scale 32] [-nodes 4]
//	spcgbench fig1   [-dim 64] [-maxnodes 128] [-svalues 5,10,15]
//	spcgbench ablation
//	spcgbench faults [-dim 20] [-s 6]
//	spcgbench kernels [-sizes 4096,65536,1048576] [-s 8] [-workersweep 1,2,4] [-reps 7] [-out BENCH_kernels.json]
//	spcgbench formats [-scale 8] [-reps 7] [-only name1,name2] [-out BENCH_formats.json]
//	spcgbench trace  [-dim 24] [-s 10]
//	spcgbench tune   [-matrices thermomech_TC,shipsec8] [-scale 100] [-probeiters 40] [-rounds 3] [-reps 3] [-out BENCH_autotune.json]
//	spcgbench gateway [-arms 1,2,4] [-requests 240] [-clients 8] [-wset 24] [-gwcache 8] [-out BENCH_gateway.json]
//
// Scale divides the paper's matrix sizes (1 = full size); see DESIGN.md for
// the experiment-to-module index.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"spcg/internal/dist"
	"spcg/internal/experiments"
	"spcg/internal/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body: it parses args, dispatches the subcommand and
// returns the process exit code (0 ok, 1 runtime failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmd := args[0]
	if !knownCommand(cmd) {
		fmt.Fprintf(stderr, "spcgbench: unknown subcommand %q\n", cmd)
		usage(stderr)
		return 2
	}
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 32, "divide paper matrix sizes by this factor (1 = full size)")
	s := fs.Int("s", 10, "s-step block size")
	nodes := fs.Int("nodes", 4, "virtual node count (table3)")
	dim := fs.Int("dim", 0, "grid dimension (table1: default 24; fig1: default 64, paper 256)")
	maxNodes := fs.Int("maxnodes", 128, "largest node count (fig1)")
	sValuesFlag := fs.String("svalues", "5,10,15", "comma-separated s values (fig1)")
	only := fs.String("only", "", "comma-separated matrix names (table2; default all 40)")
	ranksPerNode := fs.Int("ranks", 128, "ranks per virtual node")
	maxIters := fs.Int("maxiters", 0, "iteration cap (default 12000, the paper's cutoff; scale it with -scale for faster sweeps)")
	sizesFlag := fs.String("sizes", "", "comma-separated vector lengths (kernels; default 4096,65536,1048576)")
	workerSweep := fs.String("workersweep", "", "comma-separated pool sizes (kernels; default 1,2,GOMAXPROCS)")
	reps := fs.Int("reps", 0, "timing repetitions, min reported (kernels: default 7; tune: default 3)")
	out := fs.String("out", "", "also write the result as JSON to this file (kernels, tune)")
	matrices := fs.String("matrices", "", "comma-separated suite matrix names (tune; default thermomech_TC,shipsec8)")
	probeIters := fs.Int("probeiters", 0, "first-round tuning probe iteration cap (tune; default 40)")
	rounds := fs.Int("rounds", 0, "successive-halving rounds (tune; default 3)")
	arms := fs.String("arms", "", "comma-separated backend pool sizes (gateway; default 1,2,4)")
	requests := fs.Int("requests", 0, "timed requests per arm (gateway; default 240)")
	clients := fs.Int("clients", 0, "concurrent clients (gateway; default 8)")
	wset := fs.Int("wset", 0, "distinct-matrix working set (gateway; default 24)")
	gwCache := fs.Int("gwcache", 0, "per-backend cache entries (gateway; default 8, deliberately < -wset)")
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "spcgbench %s: unexpected arguments: %v\n", cmd, fs.Args())
		return 2
	}

	machine := dist.DefaultMachine()
	machine.RanksPerNode = *ranksPerNode
	cfg := experiments.Config{Scale: *scale, S: *s, Machine: machine, Progress: stderr, MaxIterations: *maxIters}

	start := time.Now()
	var err error
	switch cmd {
	case "table1":
		d := *dim
		if d == 0 {
			d = 24
		}
		var rows []experiments.Table1Row
		rows, err = experiments.RunTable1(cfg, d)
		if err == nil {
			experiments.RenderTable1(stdout, rows, cfg.S)
			if verr := experiments.ValidateTable1(rows, cfg.S); verr != nil {
				fmt.Fprintf(stdout, "validation: %v\n", verr)
			} else {
				fmt.Fprintln(stdout, "validation: measured counts match the closed forms")
			}
		}
	case "table2":
		problems := suite.All()
		if *only != "" {
			problems = problems[:0]
			for _, name := range strings.Split(*only, ",") {
				p, ok := suite.ByName(strings.TrimSpace(name))
				if !ok {
					fmt.Fprintf(stderr, "unknown matrix %q\n", name)
					return 2
				}
				problems = append(problems, p)
			}
		}
		var rows []experiments.Table2Row
		rows, err = experiments.RunTable2(cfg, problems)
		if err == nil {
			experiments.RenderTable2(stdout, rows, cfg.S)
		}
	case "table3":
		var rows []experiments.Table3Row
		rows, err = experiments.RunTable3(cfg, *nodes)
		if err == nil {
			experiments.RenderTable3(stdout, rows)
		}
	case "fig1":
		d := *dim
		if d == 0 {
			d = 64
		}
		var sValues []int
		for _, tok := range strings.Split(*sValuesFlag, ",") {
			v, perr := strconv.Atoi(strings.TrimSpace(tok))
			if perr != nil || v < 1 {
				fmt.Fprintf(stderr, "bad -svalues entry %q\n", tok)
				return 2
			}
			sValues = append(sValues, v)
		}
		var res *experiments.Fig1Result
		res, err = experiments.RunFig1(cfg, d, *maxNodes, sValues)
		if err == nil {
			experiments.RenderFig1(stdout, res)
		}
	case "pipeline":
		d := *dim
		if d == 0 {
			d = 64
		}
		var res *experiments.PipelineResult
		res, err = experiments.RunPipeline(cfg, d, *maxNodes)
		if err == nil {
			experiments.RenderPipeline(stdout, res)
		}
	case "predict":
		var rows []experiments.PredictRow
		rows, err = experiments.RunPredict(cfg, *dim, nil)
		if err == nil {
			experiments.RenderPredict(stdout, rows, cfg.S)
		}
	case "ablation":
		var res *experiments.AblationResult
		res, err = experiments.RunAblation(cfg)
		if err == nil {
			experiments.RenderAblation(stdout, res)
		}
	case "faults":
		var res *experiments.FaultsResult
		res, err = experiments.RunFaults(cfg, *dim, nil, nil)
		if err == nil {
			experiments.RenderFaults(stdout, res)
		}
	case "formats":
		var fcfg experiments.FormatsConfig
		// The global -scale / -s defaults are for the table experiments;
		// formats defaults to scale 8 (SpMV must leave cache) and s = 8.
		if *scale != 32 {
			fcfg.Scale = *scale
		}
		if *s != 10 {
			fcfg.S = *s
		}
		fcfg.Reps = *reps
		fcfg.MaxIterations = *maxIters
		if *only != "" {
			for _, name := range strings.Split(*only, ",") {
				fcfg.Only = append(fcfg.Only, strings.TrimSpace(name))
			}
		}
		var res *experiments.FormatsResult
		res, err = experiments.RunFormats(fcfg, stderr)
		if err == nil {
			experiments.RenderFormats(stdout, res)
			if *out != "" {
				var buf []byte
				buf, err = json.MarshalIndent(res, "", "  ")
				if err == nil {
					err = os.WriteFile(*out, append(buf, '\n'), 0o644)
				}
			}
			// The storage engine's acceptance gate: a selector that serves a
			// regressing combo fails the command, not just the report.
			if err == nil {
				err = experiments.ValidateFormats(res)
			}
		}
	case "trace":
		var rows []experiments.TraceRow
		rows, err = experiments.RunTrace(cfg, *dim)
		if err == nil {
			experiments.RenderTrace(stdout, rows, cfg.S)
			// Unlike table1 (informational), a trace mismatch fails the
			// command: it doubles as the instrumentation regression check.
			if err = experiments.ValidateTrace(rows, cfg.S); err == nil {
				fmt.Fprintln(stdout, "validation: measured collectives match the Table 1 closed forms")
			}
		}
	case "tune":
		var acfg experiments.AutotuneConfig
		// The global -scale default (32) is for the table experiments; tune
		// defaults to 100 (~1000-row stand-ins keep the full static sweep fast).
		if *scale != 32 {
			acfg.Scale = *scale
		}
		acfg.Reps = *reps
		acfg.Tune.ProbeIters = *probeIters
		acfg.Tune.Rounds = *rounds
		if *matrices != "" {
			for _, name := range strings.Split(*matrices, ",") {
				acfg.Matrices = append(acfg.Matrices, strings.TrimSpace(name))
			}
		}
		var res *experiments.AutotuneResult
		res, err = experiments.RunAutotune(acfg, stderr)
		if err == nil {
			experiments.RenderAutotune(stdout, res)
			if *out != "" {
				var buf []byte
				buf, err = json.MarshalIndent(res, "", "  ")
				if err == nil {
					err = os.WriteFile(*out, append(buf, '\n'), 0o644)
				}
			}
			// The smoke invariant: a tuner that serves broken configurations
			// fails the command, not just the report.
			if err == nil {
				err = experiments.ValidateAutotune(res)
			}
		}
	case "gateway":
		var gcfg experiments.GatewayBenchConfig
		if gcfg.Arms, err = parseIntList(*arms); err != nil {
			fmt.Fprintf(stderr, "bad -arms: %v\n", err)
			return 2
		}
		gcfg.Requests = *requests
		gcfg.Clients = *clients
		gcfg.Matrices = *wset
		gcfg.CacheSize = *gwCache
		var res *experiments.GatewayResult
		res, err = experiments.RunGateway(gcfg, stderr)
		if err == nil {
			experiments.RenderGateway(stdout, res)
			if *out != "" {
				var buf []byte
				buf, err = json.MarshalIndent(res, "", "  ")
				if err == nil {
					err = os.WriteFile(*out, append(buf, '\n'), 0o644)
				}
			}
			// The scale-out acceptance gate: affinity < 90%, speedup < 2.5×
			// or any lost request fails the command, not just the report.
			if err == nil {
				err = experiments.ValidateGateway(res)
			}
		}
	case "kernels":
		var kcfg experiments.KernelsConfig
		kcfg.Reps = *reps
		// The global -s default (10) is for the table experiments; kernels
		// defaults to 8, the acceptance criterion's block width.
		if *s != 10 {
			kcfg.S = *s
		}
		if kcfg.Sizes, err = parseIntList(*sizesFlag); err != nil {
			fmt.Fprintf(stderr, "bad -sizes: %v\n", err)
			return 2
		}
		if kcfg.Workers, err = parseIntList(*workerSweep); err != nil {
			fmt.Fprintf(stderr, "bad -workersweep: %v\n", err)
			return 2
		}
		var res *experiments.KernelsResult
		res, err = experiments.RunKernels(kcfg, stderr)
		if err == nil {
			experiments.RenderKernels(stdout, res)
			if *out != "" {
				var buf []byte
				buf, err = json.MarshalIndent(res, "", "  ")
				if err == nil {
					err = os.WriteFile(*out, append(buf, '\n'), 0o644)
				}
			}
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "spcgbench %s: %v\n", cmd, err)
		return 1
	}
	fmt.Fprintf(stderr, "[%s completed in %v]\n", cmd, time.Since(start).Round(time.Millisecond))
	return 0
}

// subcommands is the single registry of dispatchable cases, in the order the
// usage line advertises them. The switch in run and this list must agree —
// TestUsageListsEverySubcommand cross-checks them.
var subcommands = []string{
	"table1", "table2", "table3", "fig1", "pipeline", "predict",
	"ablation", "faults", "kernels", "formats", "trace", "tune",
	"gateway",
}

func knownCommand(cmd string) bool {
	for _, c := range subcommands {
		if c == cmd {
			return true
		}
	}
	return false
}

// parseIntList parses "a,b,c" into positive ints; empty input returns nil
// (the subcommand's defaults apply).
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("entry %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: spcgbench <%s> [flags]\n", strings.Join(subcommands, "|"))
	fmt.Fprintln(w, `Run "spcgbench <cmd> -h" for per-command flags.`)
}
