package service

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"spcg/internal/eig"
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

// precondSpec is a parsed, canonicalized preconditioner request. The
// canonical string doubles as the setup-cache key component, so "ssor" and
// "ssor:1.0" share one cache entry.
type precondSpec struct {
	kind      string  // identity|jacobi|ssor|ic0|blockjacobi|chebyshev
	omega     float64 // ssor
	blocks    int     // blockjacobi
	degree    int     // chebyshev
	canonical string
}

// parsePrecond accepts "jacobi", "ssor:1.2", "blockjacobi:16",
// "chebyshev:3", "ic0", "identity"/"none", and "" (defaults to jacobi).
func parsePrecond(spec string) (precondSpec, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "jacobi":
		return precondSpec{kind: "jacobi", canonical: "jacobi"}, nil
	case "identity", "none":
		return precondSpec{kind: "identity", canonical: "identity"}, nil
	case "ic0":
		return precondSpec{kind: "ic0", canonical: "ic0"}, nil
	case "ssor":
		omega := 1.0
		if arg != "" {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil || !(v > 0 && v < 2) {
				return precondSpec{}, fmt.Errorf("bad ssor omega %q (need 0 < ω < 2)", arg)
			}
			omega = v
		}
		return precondSpec{kind: "ssor", omega: omega, canonical: fmt.Sprintf("ssor:%.4g", omega)}, nil
	case "blockjacobi":
		blocks := 16
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 {
				return precondSpec{}, fmt.Errorf("bad blockjacobi block count %q", arg)
			}
			blocks = v
		}
		return precondSpec{kind: "blockjacobi", blocks: blocks, canonical: fmt.Sprintf("blockjacobi:%d", blocks)}, nil
	case "chebyshev":
		degree := 3
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 {
				return precondSpec{}, fmt.Errorf("bad chebyshev degree %q", arg)
			}
			degree = v
		}
		return precondSpec{kind: "chebyshev", degree: degree, canonical: fmt.Sprintf("chebyshev:%d", degree)}, nil
	default:
		return precondSpec{}, fmt.Errorf("unknown preconditioner %q", spec)
	}
}

// setupKey identifies the expensive per-matrix setup state: the matrix
// content (by fingerprint) and the canonical preconditioner spec. The
// spectral estimate of M⁻¹A is stored on the same entry because it depends
// on exactly these two inputs.
type setupKey struct {
	fp   uint64
	prec string
}

// setupEntry holds (lazily built) reusable solver setup for one key. The
// entry-level mutex serializes construction so that concurrent first
// requests build the preconditioner once; after construction the stored
// values are immutable and shared freely (see the precond package's
// concurrency contract).
type setupEntry struct {
	mu       sync.Mutex
	prec     precond.Interface
	precErr  error
	spectrum *eig.Estimate
	specErr  error
}

// preconditioner returns the entry's preconditioner, building it on first use.
func (e *setupEntry) preconditioner(a *sparse.CSR, spec precondSpec) (precond.Interface, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.prec != nil || e.precErr != nil {
		return e.prec, e.precErr
	}
	e.prec, e.precErr = buildPreconditioner(a, spec)
	return e.prec, e.precErr
}

// spectrumFor returns the Ritz estimate of M⁻¹A for the entry's
// preconditioner, computing it once (the paper's "a few iterations of
// standard PCG" setup step, here amortized across all requests that hit the
// entry).
func (e *setupEntry) spectrumFor(a *sparse.CSR, spec precondSpec, s int) (*eig.Estimate, error) {
	m, err := e.preconditioner(a, spec)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.spectrum != nil || e.specErr != nil {
		return e.spectrum, e.specErr
	}
	iters := 2 * s
	if iters < 20 {
		iters = 20
	}
	var applyM func(dst, src []float64)
	if m != nil {
		applyM = m.Apply
	}
	e.spectrum, e.specErr = eig.RitzFromPCG(a, applyM, eig.Options{Iterations: iters})
	return e.spectrum, e.specErr
}

func buildPreconditioner(a *sparse.CSR, spec precondSpec) (precond.Interface, error) {
	switch spec.kind {
	case "identity":
		return precond.NewIdentity(a.Dim()), nil
	case "jacobi":
		return precond.NewJacobi(a)
	case "ssor":
		return precond.NewSSOR(a, spec.omega)
	case "ic0":
		return precond.NewIC0(a)
	case "blockjacobi":
		return precond.NewBlockJacobi(a, spec.blocks)
	case "chebyshev":
		// The polynomial preconditioner needs bounds on A's own spectrum.
		est, err := eig.RitzFromPCG(a, nil, eig.Options{Iterations: 20})
		if err != nil {
			return nil, fmt.Errorf("chebyshev setup: %w", err)
		}
		return precond.NewChebyshev(a, spec.degree, est.LambdaMin, est.LambdaMax)
	default:
		return nil, fmt.Errorf("unknown preconditioner kind %q", spec.kind)
	}
}

// setupCache is the LRU cache of setupEntries. A get that finds the key
// counts as a hit even if the entry is still being built by another
// goroutine — the expensive work is shared either way.
type setupCache struct {
	mu     sync.Mutex
	max    int
	ll     *list.List // front = most recently used; values are *cacheItem
	items  map[setupKey]*list.Element
	hits   int64
	misses int64
}

type cacheItem struct {
	key   setupKey
	entry *setupEntry
}

func newSetupCache(max int) *setupCache {
	if max < 1 {
		max = 1
	}
	return &setupCache{max: max, ll: list.New(), items: map[setupKey]*list.Element{}}
}

// get returns the entry for key, creating (and possibly evicting) as needed.
// The boolean reports whether this was a cache hit.
func (c *setupCache) get(key setupKey) (*setupEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheItem).entry, true
	}
	c.misses++
	entry := &setupEntry{}
	el := c.ll.PushFront(&cacheItem{key: key, entry: entry})
	c.items[key] = el
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheItem).key)
	}
	return entry, false
}

func (c *setupCache) stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
