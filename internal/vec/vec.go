// Package vec provides the dense vector and tall-skinny block-vector
// (multivector) kernels used by all solvers: the BLAS1 operations of standard
// PCG and the BLAS2/BLAS3-style blocked operations that the s-step methods
// substitute for them.
//
// All kernels operate on []float64 and n×s BlockVectors stored column-major
// (each column is a contiguous []float64 of length n), which matches the
// access pattern of the solvers: columns are grown one at a time by the
// matrix powers kernel and then combined with small s×s coefficient matrices.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product aᵀb. Panics if lengths differ.
//
// The loop is 4-way unrolled with independent accumulators (combined in the
// fixed order (s0+s1)+(s2+s3)), which breaks the FP dependency chain that
// otherwise serializes the adds. The summation order differs from a plain
// sequential loop but is itself fixed, so results stay deterministic.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d != %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm2 returns the Euclidean norm ‖a‖₂ computed with scaling to avoid
// overflow for very large or very small entries.
func Norm2(a []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range a {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute entry of a.
func NormInf(a []float64) float64 {
	var m float64
	for _, v := range a {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// Axpy computes y += alpha*x in place (4-way unrolled).
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	y = y[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Axpby computes y = alpha*x + beta*y in place.
func Axpby(alpha float64, x []float64, beta float64, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Axpby length mismatch %d != %d", len(x), len(y)))
	}
	for i, xi := range x {
		y[i] = alpha*xi + beta*y[i]
	}
}

// XpayInto computes dst = x + alpha*y. dst may alias x or y.
func XpayInto(dst, x []float64, alpha float64, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("vec: XpayInto length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] + alpha*y[i]
	}
}

// Scale computes x *= alpha in place (4-way unrolled).
func Scale(alpha float64, x []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x[i] *= alpha
		x[i+1] *= alpha
		x[i+2] *= alpha
		x[i+3] *= alpha
	}
	for ; i < len(x); i++ {
		x[i] *= alpha
	}
}

// ScaleInto computes dst = alpha*x. dst may alias x.
func ScaleInto(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic("vec: ScaleInto length mismatch")
	}
	for i, xi := range x {
		dst[i] = alpha * xi
	}
}

// Copy copies src into dst. Panics if lengths differ (unlike builtin copy,
// silent truncation here would hide partitioning bugs).
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vec: Copy length mismatch %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Zero sets every entry of x to zero.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets every entry of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Sub computes dst = a - b. dst may alias a or b.
func Sub(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vec: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Add computes dst = a + b. dst may alias a or b.
func Add(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vec: Add length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// HadamardInto computes dst[i] = a[i]*b[i].
func HadamardInto(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vec: HadamardInto length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// DotMany returns the inner products xᵀy_j for each column y_j of ys, fusing
// the traversals of x. It is the local part of a fused multi-reduction: the
// s-step methods batch many inner products into one global collective.
func DotMany(x []float64, ys ...[]float64) []float64 {
	out := make([]float64, len(ys))
	for j, y := range ys {
		out[j] = Dot(x, y)
	}
	return out
}

// Threeterm computes dst = (z - theta*y - mu*w)/gamma where z, y, w are
// vectors, implementing one step of the polynomial basis three-term
// recurrence P_{l+1} = (z·P_l − θ_l P_l − μ_{l−1} P_{l−1})/γ_l.
// w may be nil, in which case the μ term is omitted (first recurrence step).
func Threeterm(dst, z []float64, theta float64, y []float64, mu float64, w []float64, gamma float64) {
	if gamma == 0 {
		panic("vec: Threeterm with zero gamma")
	}
	inv := 1 / gamma
	if w == nil || mu == 0 {
		for i := range dst {
			dst[i] = (z[i] - theta*y[i]) * inv
		}
		return
	}
	for i := range dst {
		dst[i] = (z[i] - theta*y[i] - mu*w[i]) * inv
	}
}
