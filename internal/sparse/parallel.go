package sparse

import (
	"fmt"
	"sync/atomic"

	"spcg/internal/pool"
	"spcg/internal/vec"
)

// parSpMVThreshold is the nnz count below which MulVecPar stays sequential.
const parSpMVThreshold = 1 << 15

// rowPartition is one cached nnz-balanced row split.
type rowPartition struct {
	p      int
	bounds []int
}

// partitionCache holds the matrix's recently used row partitions
// (copy-on-write; a lost concurrent append only costs a recompute).
type partitionCache struct {
	entries []rowPartition
}

// maxCachedPartitions bounds the cache: solves use one or two distinct
// partition widths (SpMV workers, block-SpMV row blocks), so a handful covers
// every caller without growing with traffic.
const maxCachedPartitions = 8

// balancedRanges returns NNZBalancedRanges(a, p), memoized per p: the split
// is O(n) to compute, which is comparable to an SpMV for the low-nnz stencil
// matrices, so the hot path must not pay it per call.
func (a *CSR) balancedRanges(p int) []int {
	if c := a.parts.Load(); c != nil {
		for _, e := range c.entries {
			if e.p == p {
				return e.bounds
			}
		}
	}
	bounds := NNZBalancedRanges(a, p)
	old := a.parts.Load()
	var entries []rowPartition
	if old != nil {
		entries = old.entries
		if len(entries) >= maxCachedPartitions {
			entries = entries[1:]
		}
	}
	nc := &partitionCache{entries: append(append([]rowPartition(nil), entries...), rowPartition{p: p, bounds: bounds})}
	a.parts.CompareAndSwap(old, nc)
	return bounds
}

// MulVecPar computes dst = A·x with nnz-balanced row ranges dispatched on the
// persistent worker pool — no per-call goroutine spawn. Rows are split by
// approximately equal nnz (not equal row counts) so matrices with irregular
// rows stay balanced, mirroring the nnz-balanced block-row distribution the
// paper uses across MPI ranks; the split is cached on the matrix. Row results
// are independent, so the output is bitwise identical to MulVec.
func (a *CSR) MulVecPar(dst, x []float64) {
	if len(x) != a.N || len(dst) != a.N {
		panic("sparse: MulVecPar dim mismatch")
	}
	p := pool.Default()
	if a.NNZ() < parSpMVThreshold || p.Workers() == 1 {
		a.MulVec(dst, x)
		return
	}
	pool.CountSpMV()
	workers := p.Workers()
	if workers > a.N {
		workers = a.N
	}
	bounds := a.balancedRanges(workers)
	p.RunBounds(bounds, func(part, lo, hi int) {
		a.MulVecRows(dst, x, lo, hi)
	})
}

// MulBlockPar computes the batched SpMV dst_j = A·x_j over a genuinely 2-D
// task grid — columns × nnz-balanced row blocks — so the solve service's
// multi-RHS batch solves keep every pool worker busy even when the column
// count is below the worker count (and row-block reuse of A's tiles is
// preserved when it is above). Each (column, row-range) cell is independent,
// so the output is bitwise identical to per-column MulVec.
func (a *CSR) MulBlockPar(dst, x *vec.Block) {
	s := x.S()
	if dst.S() != s {
		panic("sparse: MulBlockPar column-count mismatch")
	}
	if s == 0 {
		return
	}
	if dst.N != a.N || x.N != a.N {
		panic("sparse: MulBlockPar dim mismatch")
	}
	p := pool.Default()
	if a.NNZ()*s < parSpMVThreshold || p.Workers() == 1 {
		for j := 0; j < s; j++ {
			a.MulVec(dst.Col(j), x.Col(j))
		}
		return
	}
	pool.CountSpMV()
	// Row blocks per column: enough that columns × blocks covers the pool.
	rb := (p.Workers() + s - 1) / s
	if rb > a.N {
		rb = a.N
	}
	bounds := a.balancedRanges(rb)
	p.Dispatch(s*rb, func(t int) {
		j, blk := t/rb, t%rb
		lo, hi := bounds[blk], bounds[blk+1]
		if lo < hi {
			a.MulVecRows(dst.Col(j), x.Col(j), lo, hi)
		}
	})
}

// FusedBasisStepPar advances one matrix-powers-kernel basis column in a
// single pass over the matrix rows:
//
//	sNext[i] = (Σ_k a_ik·u[k] − theta·sCur[i] − mu·sPrev[i]) / gamma
//	uNext[i] = dinv[i]·sNext[i]        (when uNext is non-nil)
//
// fusing the SpMV, the three-term basis recurrence and the diagonal
// preconditioner application that the plain MPK performs as three separate
// n-length sweeps — eliminating the intermediate z vector and one full
// vector stream per basis column. sPrev may be nil (first recurrence step,
// mu term omitted). Row results are independent, so the kernel is
// deterministic for any worker count.
func (a *CSR) FusedBasisStepPar(sNext, u, sCur, sPrev []float64, theta, mu, gamma float64, dinv, uNext []float64) {
	n := a.N
	if len(sNext) != n || len(u) != n || len(sCur) != n || len(dinv) != n {
		panic(fmt.Sprintf("sparse: FusedBasisStepPar dim mismatch n=%d", n))
	}
	if sPrev != nil && len(sPrev) != n {
		panic("sparse: FusedBasisStepPar sPrev length mismatch")
	}
	if uNext != nil && len(uNext) != n {
		panic("sparse: FusedBasisStepPar uNext length mismatch")
	}
	if gamma == 0 {
		panic("sparse: FusedBasisStepPar with zero gamma")
	}
	pool.CountFusedBasisStep()
	inv := 1 / gamma
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var z float64
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				z += a.Val[k] * u[a.ColIdx[k]]
			}
			v := z - theta*sCur[i]
			if sPrev != nil {
				v -= mu * sPrev[i]
			}
			v *= inv
			sNext[i] = v
			if uNext != nil {
				uNext[i] = dinv[i] * v
			}
		}
	}
	p := pool.Default()
	if a.NNZ() < parSpMVThreshold || p.Workers() == 1 {
		body(0, n)
		return
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	bounds := a.balancedRanges(workers)
	p.RunBounds(bounds, func(part, lo, hi int) {
		body(lo, hi)
	})
}

// NNZBalancedRanges splits the rows of a into p contiguous ranges with
// approximately equal nnz, returning p+1 row boundaries. This is the same
// partition the virtual cluster uses, so measured shared-memory speedups and
// modeled distributed balance agree.
func NNZBalancedRanges(a *CSR, p int) []int {
	if p < 1 {
		panic("sparse: NNZBalancedRanges needs p ≥ 1")
	}
	bounds := make([]int, p+1)
	total := a.NNZ()
	row := 0
	for w := 1; w < p; w++ {
		target := total * w / p
		for row < a.N && a.RowPtr[row] < target {
			row++
		}
		bounds[w] = row
	}
	bounds[p] = a.N
	return bounds
}

// partsPointer is the cached-partition slot type embedded in CSR (declared
// here to keep the parallel machinery in one file).
type partsPointer = atomic.Pointer[partitionCache]
