// Package lint is the repo's first-party static-analysis framework: a small
// analyzer harness over the standard library's go/parser and go/types, plus
// the domain analyzers that encode this codebase's invariants (determinism of
// the numeric hot path, panic-safety of service goroutines, cancellation
// polling in solver loops, float-comparison hygiene, allocation-free fused
// kernels, and metric/route documentation coverage).
//
// The framework deliberately depends on nothing outside the standard library:
// packages are loaded with go/parser, resolved with go/types against compiler
// export data located via `go list -export`, and analyzers walk plain ASTs
// reporting positioned diagnostics. See docs/LINT.md for the invariant each
// analyzer enforces and cmd/spcglint for the command-line front end.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check. Run is invoked once per analysis
// unit (package, including its test units) and reports findings through the
// pass.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics, enable/disable
	// flags and //spcglint:ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run analyzes one unit.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) invocation.
type Pass struct {
	// Module is the loaded module (docs lookups, module path).
	Module *Module
	// Pkg is the unit under analysis.
	Pkg *Package

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Module.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over every analysis unit of the module, applies
// //spcglint:ignore suppressions, and returns the surviving diagnostics in
// position order. Malformed directives are themselves reported under the
// "spcglint" pseudo-analyzer.
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range m.Packages {
		for _, a := range analyzers {
			pass := &Pass{Module: m, Pkg: pkg, analyzer: a, diags: &diags}
			a.Run(pass)
		}
	}
	diags = applyDirectives(m, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// DirectivePrefix marks a suppression comment. The full form is
//
//	//spcglint:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. The reason is
// mandatory: an unexplained suppression is reported as a violation itself.
const DirectivePrefix = "//spcglint:ignore"

// directive is one parsed suppression.
type directive struct {
	file     string
	line     int
	analyzer string
	reason   string
}

// applyDirectives parses every //spcglint:ignore comment in the module,
// validates it, and drops diagnostics it covers (same file, matching
// analyzer, same line or the line below the directive).
func applyDirectives(m *Module, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	suppress := make(map[key]bool)
	var malformed []Diagnostic
	seenFile := make(map[string]bool)
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			name := pkg.Filename(f.Pos())
			if seenFile[name] {
				continue // pure files appear in both augmented passes only once, but be safe
			}
			seenFile[name] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, DirectivePrefix)
					if !ok {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						malformed = append(malformed, Diagnostic{Pos: pos, Analyzer: "spcglint",
							Message: "ignore directive names no analyzer (want \"//spcglint:ignore <analyzer> <reason>\")"})
						continue
					case !known[fields[0]]:
						malformed = append(malformed, Diagnostic{Pos: pos, Analyzer: "spcglint",
							Message: fmt.Sprintf("ignore directive names unknown analyzer %q", fields[0])})
						continue
					case len(fields) < 2:
						malformed = append(malformed, Diagnostic{Pos: pos, Analyzer: "spcglint",
							Message: fmt.Sprintf("ignore directive for %q gives no reason — say why the invariant does not apply", fields[0])})
						continue
					}
					d := directive{file: pos.Filename, line: pos.Line, analyzer: fields[0]}
					suppress[key{d.file, d.line, d.analyzer}] = true
					suppress[key{d.file, d.line + 1, d.analyzer}] = true
				}
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if suppress[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return append(out, malformed...)
}

// ---- shared AST/type helpers used by the analyzers ----

// pkgFuncOf resolves a call's qualified package function: for f(x) written as
// pkg.Fn(x), it returns the imported package path and function name. It
// returns ok=false for method calls, locals, builtins and unresolved names.
func pkgFuncOf(p *Pass, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// stringLit returns the unquoted value of a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// containsCall reports whether the subtree rooted at n contains a call for
// which match returns true. Function literals nested inside n are included:
// a guard installed inside a closure still runs on the spawned goroutine.
func containsCall(n ast.Node, match func(*ast.CallExpr) bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && match(call) {
			found = true
			return false
		}
		return true
	})
	return found
}
