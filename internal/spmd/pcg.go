package spmd

import (
	"fmt"
	"math"

	"spcg/internal/sparse"
)

// Result reports a distributed solve.
type Result struct {
	X          []float64 // assembled global solution
	Iterations int
	Converged  bool
	// Allreduces counts global reductions (identical on every rank).
	Allreduces int
}

// PCGJacobi solves A·x = b with Jacobi-preconditioned CG executed by p SPMD
// ranks over goroutines with real halo exchanges and allreduces. It is the
// executable counterpart of the modeled distributed PCG: same partition,
// same communication pattern, actual messages.
//
// The M-norm criterion (√(rᵀM⁻¹r) reduced by tol) is used, as in the
// paper's Figure 1.
func PCGJacobi(a *sparse.CSR, b []float64, p int, tol float64, maxIters int) (*Result, error) {
	n := a.Dim()
	if len(b) != n {
		return nil, fmt.Errorf("spmd: rhs length %d != %d", len(b), n)
	}
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIters <= 0 {
		maxIters = 10 * n
	}
	locals, err := Distribute(a, p)
	if err != nil {
		return nil, err
	}
	for _, lm := range locals {
		for i, d := range lm.DiagLocal() {
			if d <= 0 {
				return nil, fmt.Errorf("spmd: non-positive diagonal at row %d", lm.Lo+i)
			}
		}
	}

	res := &Result{X: make([]float64, n)}
	iters := make([]int, p)
	conv := make([]bool, p)
	reduces := make([]int, p)

	w := NewWorld(p)
	runErr := w.RunE(func(rk *Rank) {
		lm := locals[rk.ID]
		nl := lm.NLocal()
		invD := lm.DiagLocal()
		for i := range invD {
			invD[i] = 1 / invD[i]
		}
		x := make([]float64, nl)
		r := append([]float64(nil), b[lm.Lo:lm.Hi]...)
		u := make([]float64, nl)
		pv := make([]float64, nl)
		s := make([]float64, nl)

		dot := func(a, b []float64) float64 {
			var local float64
			for i := range a {
				local += a[i] * b[i]
			}
			reduces[rk.ID]++
			return rk.Allreduce([]float64{local})[0]
		}

		for i := range u {
			u[i] = invD[i] * r[i]
		}
		copy(pv, u)
		rho := dot(r, u)
		rho0 := rho
		for it := 0; it < maxIters; it++ {
			lm.SpMV(rk, s, pv)
			den := dot(pv, s)
			if den <= 0 || math.IsNaN(den) {
				break
			}
			alpha := rho / den
			for i := range x {
				x[i] += alpha * pv[i]
				r[i] -= alpha * s[i]
				u[i] = invD[i] * r[i]
			}
			rhoNew := dot(r, u)
			if rhoNew < 0 || math.IsNaN(rhoNew) {
				break
			}
			beta := rhoNew / rho
			rho = rhoNew
			for i := range pv {
				pv[i] = u[i] + beta*pv[i]
			}
			iters[rk.ID] = it + 1
			if math.Sqrt(rho/rho0) <= tol {
				conv[rk.ID] = true
				break
			}
		}
		copy(res.X[lm.Lo:lm.Hi], x) // disjoint slices: no post-Run race
	})
	if runErr != nil {
		return nil, runErr
	}

	res.Iterations = iters[0]
	res.Converged = conv[0]
	res.Allreduces = reduces[0]
	// SPMD sanity: every rank must have made identical control-flow
	// decisions (they share all reduced scalars).
	for r := 1; r < p; r++ {
		if iters[r] != iters[0] || conv[r] != conv[0] || reduces[r] != reduces[0] {
			return nil, fmt.Errorf("spmd: ranks diverged in control flow (rank %d: %d/%v vs rank 0: %d/%v)",
				r, iters[r], conv[r], iters[0], conv[0])
		}
	}
	return res, nil
}
