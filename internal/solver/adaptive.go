package solver

import (
	"errors"
	"math"

	"spcg/internal/precond"
	"spcg/internal/sparse"
)

// SPCGAdaptive runs SPCG with an adaptive block size in the spirit of
// Carson's adaptive s-step CG [paper ref. 2]: it starts at Options.S and,
// whenever the run breaks down or stagnates (no convergence progress), it
// resumes from the current iterate with s halved. At s = 1 the method is
// numerically plain PCG, so the cascade always terminates with PCG-grade
// robustness while keeping the largest stable block size for the easy part
// of the convergence history.
//
// The returned Stats aggregate all phases; Stats.Iterations counts
// PCG-equivalent steps across the cascade and Stats.Restarts counts the s
// reductions.
func SPCGAdaptive(a *sparse.CSR, m precond.Interface, b []float64, opts Options) ([]float64, *Stats, error) {
	opts = opts.withDefaults()
	total := &Stats{BestRelative: math.Inf(1)}
	s := opts.S
	x := opts.X0
	remaining := opts.MaxIterations
	var lastRel = math.Inf(1)

	for {
		phase := opts
		phase.S = s
		phase.X0 = x
		phase.MaxIterations = remaining
		if opts.OnProgress != nil {
			// Rebase each phase's iteration counter so an external observer
			// (the service's stagnation watchdog) sees one monotone stream of
			// cascade-wide progress instead of per-phase restarts from zero.
			base := total.Iterations
			phase.OnProgress = func(it int, rel float64) { opts.OnProgress(base+it, rel) }
		}
		var (
			stats *Stats
			err   error
		)
		if s <= 1 {
			x, stats, err = PCG(a, m, b, phase)
		} else {
			x, stats, err = SPCG(a, m, b, phase)
		}
		if errors.Is(err, ErrCancelled) {
			// Cancelled mid-phase: surface the cascade's aggregate partial
			// stats alongside the error, like the single-method solvers do.
			accumulate(total, stats)
			total.Converged = stats.Converged
			total.FinalRelative = stats.FinalRelative
			total.TrueRelResidual = stats.TrueRelResidual
			return x, total, err
		}
		if err != nil {
			return nil, nil, err
		}
		accumulate(total, stats)
		if stats.Converged || s <= 1 {
			total.Converged = stats.Converged
			total.FinalRelative = stats.FinalRelative
			total.TrueRelResidual = stats.TrueRelResidual
			return x, total, nil
		}
		remaining -= stats.Iterations
		if remaining <= 0 {
			total.FinalRelative = stats.FinalRelative
			total.TrueRelResidual = stats.TrueRelResidual
			return x, total, nil
		}
		// No convergence at this s: breakdown, stagnation or cap. Only keep
		// shrinking while we are making progress or s is still large.
		if stats.FinalRelative >= lastRel && s == 1 {
			total.FinalRelative = stats.FinalRelative
			total.TrueRelResidual = stats.TrueRelResidual
			return x, total, nil
		}
		lastRel = stats.FinalRelative
		s /= 2
		if s < 1 {
			s = 1
		}
		total.Restarts++
	}
}

// accumulate merges per-phase stats into the aggregate.
func accumulate(total, phase *Stats) {
	total.Iterations += phase.Iterations
	total.OuterIterations += phase.OuterIterations
	total.MVProducts += phase.MVProducts
	total.PrecApplies += phase.PrecApplies
	total.Allreduces += phase.Allreduces
	total.AllreduceValues += phase.AllreduceValues
	// SimTime and RetriedMessages are cumulative snapshots of the single
	// tracker shared by all phases, so the latest phase already contains the
	// whole cascade.
	total.SimTime = phase.SimTime
	total.RetriedMessages = phase.RetriedMessages
	total.ResidualReplacements += phase.ResidualReplacements
	total.Restarts += phase.Restarts
	total.DetectedFaults += phase.DetectedFaults
	total.Rollbacks += phase.Rollbacks
	total.Heartbeats += phase.Heartbeats
	// Guard on Heartbeats: a phase that broke down before its first
	// convergence check reports a zero-valued BestRelative that must not
	// clobber the cascade-wide minimum.
	if phase.Heartbeats > 0 && phase.BestRelative < total.BestRelative {
		total.BestRelative = phase.BestRelative
	}
	total.History = append(total.History, phase.History...)
	if phase.Breakdown != nil {
		total.Breakdown = phase.Breakdown
	}
}
