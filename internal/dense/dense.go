// Package dense implements small dense matrix algebra for the O(s)×O(s)
// "Scalar Work" of the s-step solvers: the Gram matrices, the s×s linear
// solves for a⁽ᵏ⁾ and B⁽ᵏ⁾, and the symmetric tridiagonal eigenproblem used
// to harvest Ritz values for Newton shifts and Chebyshev intervals.
//
// Matrices are row-major. Dimensions are O(s) (a few tens at most), so the
// package optimizes for clarity and robustness (pivoting, SPD verification,
// typed breakdown errors) rather than blocking.
package dense

import (
	"errors"
	"fmt"
	"math"
)

// Mat is a row-major r×c dense matrix.
type Mat struct {
	R, C int
	Data []float64
}

// NewMat returns a zero r×c matrix.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: NewMat invalid shape %d×%d", r, c))
	}
	return &Mat{R: r, C: c, Data: make([]float64, r*c)}
}

// FromRowMajor wraps data (not copied) as an r×c matrix.
func FromRowMajor(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("dense: FromRowMajor %d×%d needs %d entries, got %d", r, c, r*c, len(data)))
	}
	return &Mat{R: r, C: c, Data: data}
}

// At returns element (i,j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i,j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Add adds v to element (i,j).
func (m *Mat) Add(i, j int, v float64) { m.Data[i*m.C+j] += v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	return &Mat{R: m.R, C: m.C, Data: append([]float64(nil), m.Data...)}
}

// T returns the transpose as a new matrix.
func (m *Mat) T() *Mat {
	t := NewMat(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Eye returns the n×n identity.
func Eye(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// MatMul returns a·b.
func MatMul(a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("dense: MatMul shape mismatch %d×%d · %d×%d", a.R, a.C, b.R, b.C))
	}
	out := NewMat(a.R, b.C)
	for i := 0; i < a.R; i++ {
		for k := 0; k < a.C; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < b.C; j++ {
				out.Data[i*out.C+j] += aik * b.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns a·x for a vector x of length a.C.
func (m *Mat) MulVec(x []float64) []float64 {
	if len(x) != m.C {
		panic(fmt.Sprintf("dense: MulVec length %d != %d columns", len(x), m.C))
	}
	out := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		var s float64
		row := m.Data[i*m.C : (i+1)*m.C]
		for j, xj := range x {
			s += row[j] * xj
		}
		out[i] = s
	}
	return out
}

// Scale multiplies every entry by alpha in place.
func (m *Mat) Scale(alpha float64) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// AddMat computes m += alpha·b in place.
func (m *Mat) AddMat(alpha float64, b *Mat) {
	if m.R != b.R || m.C != b.C {
		panic("dense: AddMat shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += alpha * b.Data[i]
	}
}

// MaxAbsDiff returns max |m−b| entrywise.
func MaxAbsDiff(a, b *Mat) float64 {
	if a.R != b.R || a.C != b.C {
		panic("dense: MaxAbsDiff shape mismatch")
	}
	var d float64
	for i := range a.Data {
		if v := math.Abs(a.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d
}

// NormFro returns the Frobenius norm.
func (m *Mat) NormFro() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Symmetrize replaces m by (m+mᵀ)/2 in place. Used on Gram matrices that are
// symmetric in exact arithmetic but not in floating point.
func (m *Mat) Symmetrize() {
	if m.R != m.C {
		panic("dense: Symmetrize on non-square matrix")
	}
	for i := 0; i < m.R; i++ {
		for j := i + 1; j < m.C; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// IsSymmetric reports whether max |m−mᵀ| ≤ tol·‖m‖_F.
func (m *Mat) IsSymmetric(tol float64) bool {
	if m.R != m.C {
		return false
	}
	bound := tol * (1 + m.NormFro())
	for i := 0; i < m.R; i++ {
		for j := i + 1; j < m.C; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > bound {
				return false
			}
		}
	}
	return true
}

// ErrSingular is returned when a factorization meets an (effectively) zero
// pivot. For the s-step solvers this signals numerical breakdown of the
// s-step basis — the condition the paper's Table 2 hyphens correspond to.
var ErrSingular = errors.New("dense: matrix is singular to working precision")

// ErrNotSPD is returned by Cholesky when the matrix is not positive definite.
var ErrNotSPD = errors.New("dense: matrix is not symmetric positive definite")
