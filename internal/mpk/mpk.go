// Package mpk implements the Matrix Powers Kernel (paper §2.3, Eq. 6–7): it
// generates the s-step basis matrices
//
//	V    = [P₀(AM⁻¹)w, P₁(AM⁻¹)w, …, P_s(AM⁻¹)w]
//	M⁻¹V = [P₀(M⁻¹A)v, P₁(M⁻¹A)v, …]  with v = M⁻¹w
//
// column by column from the three-term recurrence of the chosen basis type,
// at the cost of one SpMV and one preconditioner application per new column.
// Identity used throughout: P_l(M⁻¹A)·M⁻¹w = M⁻¹·P_l(AM⁻¹)·w, so the second
// block is exactly M⁻¹ applied to the first.
//
// The kernel is written against small operator interfaces so the solvers can
// pass instrumented wrappers (which charge the distributed cost model) while
// tests pass raw matrices.
package mpk

import (
	"fmt"

	"spcg/internal/basis"
	"spcg/internal/obs"
	"spcg/internal/vec"
)

// Operator applies a square matrix: dst = A·src.
type Operator interface {
	Dim() int
	MulVec(dst, src []float64)
}

// Preconditioner applies M⁻¹: dst = M⁻¹·src.
type Preconditioner interface {
	Apply(dst, src []float64)
}

// BasisStepper is an optional capability of Operator: a fused kernel that
// advances one basis column — SpMV, three-term recurrence and (diagonal)
// preconditioner application — in a single pass over the matrix rows,
// eliminating the intermediate z vector and one full vector stream per
// column. FusedBasisStep computes
//
//	sNext = (A·u − theta·sCur − mu·sPrev)/gamma
//	uNext = M⁻¹·sNext   (when uNext is non-nil)
//
// and returns false when the fusion is unavailable (e.g. a non-diagonal
// preconditioner, or instrumentation that must observe the raw SpMV), in
// which case Compute falls back to the separate kernels. sPrev may be nil.
type BasisStepper interface {
	FusedBasisStep(sNext, u, sCur, sPrev []float64, theta, mu, gamma float64, uNext []float64) bool
}

// obsProvider is an optional capability of Operator: an instrumented wrapper
// can expose its phase tracer so the kernel attributes its recurrence work
// to the basis phase. A nil tracer (or an operator without the capability)
// disables tracing at the cost of one branch per column.
type obsProvider interface {
	ObsTracer() *obs.Tracer
}

// TracerOf returns the operator's phase tracer when it offers one, else nil.
func TracerOf(a Operator) *obs.Tracer {
	if p, ok := a.(obsProvider); ok {
		return p.ObsTracer()
	}
	return nil
}

// Compute fills S (n×(s+1)) with the basis of K_{s+1}(AM⁻¹, w) and U
// (n×sU, sU ∈ {s, s+1}) with M⁻¹ times the first sU columns of S.
//
// w is copied into S column 0. u0, when non-nil, must equal M⁻¹w and is
// copied into U column 0, saving one preconditioner application (the s-step
// solvers always have u⁽ᵏ⁾ = M⁻¹r⁽ᵏ⁾ in hand); when nil it is computed.
//
// Cost: s SpMVs and sU−1 preconditioner applications (plus one if u0 is nil).
func Compute(a Operator, m Preconditioner, params *basis.Params, w, u0 []float64, s *vec.Block, u *vec.Block) error {
	n := a.Dim()
	sCols := s.S()
	deg := sCols - 1
	uCols := u.S()
	if deg < 1 {
		return fmt.Errorf("mpk: S needs at least 2 columns, got %d", sCols)
	}
	if uCols != deg && uCols != sCols {
		return fmt.Errorf("mpk: U must have %d or %d columns, got %d", deg, sCols, uCols)
	}
	if params.Degree() < deg {
		return fmt.Errorf("mpk: basis degree %d < required %d", params.Degree(), deg)
	}
	if err := params.Validate(); err != nil {
		return err
	}
	if s.N != n || u.N != n || len(w) != n {
		return fmt.Errorf("mpk: dimension mismatch (n=%d, S rows %d, U rows %d, len(w)=%d)", n, s.N, u.N, len(w))
	}

	vec.Copy(s.Col(0), w)
	if u0 != nil {
		vec.Copy(u.Col(0), u0)
	} else {
		m.Apply(u.Col(0), w)
	}

	stepper, _ := a.(BasisStepper)
	tracer := TracerOf(a) // nil-safe: basis-phase spans for the recurrence
	z := make([]float64, n)
	for l := 0; l < deg; l++ {
		var prev []float64
		var mu float64
		if l > 0 {
			prev = s.Col(l - 1)
			mu = params.Mu[l-1]
		}
		var uNext []float64
		if l+1 < uCols {
			uNext = u.Col(l + 1)
		}
		// Fast path: one fused pass per new column when the operator offers it
		// (the shared-memory solvers' SpMV + diagonal-preconditioner fusion).
		if stepper != nil && params.Gamma[l] != 0 &&
			stepper.FusedBasisStep(s.Col(l+1), u.Col(l), s.Col(l), prev, params.Theta[l], mu, params.Gamma[l], uNext) {
			continue
		}
		// z = A·M⁻¹·S_l = A·U_l.
		a.MulVec(z, u.Col(l))
		t0 := tracer.Begin()
		vec.Threeterm(s.Col(l+1), z, params.Theta[l], s.Col(l), mu, prev, params.Gamma[l])
		tracer.End(obs.PhaseBasis, t0)
		if uNext != nil {
			m.Apply(uNext, s.Col(l+1))
		}
	}
	return nil
}
