package solver

import (
	"testing"

	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

func TestCAPCGMatchesPCGOnEasyProblem(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	b, xTrue := testProblem(a)
	m, _ := precond.NewJacobi(a)
	_, ps, err := PCG(a, m, b, Options{Tol: 1e-9, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	for _, bt := range []basis.Type{basis.Monomial, basis.Newton, basis.Chebyshev} {
		for _, s := range []int{1, 2, 4} {
			x, ss, err := CAPCG(a, m, b, Options{S: s, Basis: bt, Tol: 1e-9, Criterion: RecursiveResidualMNorm})
			if err != nil {
				t.Fatalf("%v s=%d: %v", bt, s, err)
			}
			if !ss.Converged {
				t.Fatalf("%v s=%d: did not converge (%v)", bt, s, ss.Breakdown)
			}
			if e := solutionError(x, xTrue); e > 1e-6 {
				t.Fatalf("%v s=%d: solution error %v", bt, s, e)
			}
			if ss.Iterations < ps.Iterations-s || ss.Iterations > ps.Iterations+2*s {
				t.Fatalf("%v s=%d: iterations %d vs PCG %d", bt, s, ss.Iterations, ps.Iterations)
			}
		}
	}
}

func TestCAPCGCommunicationAndWorkCounts(t *testing.T) {
	// Table 1's CA-PCG row: 2s−1 MVs and preconditioner applications per
	// outer iteration, one (2s+1)²-value allreduce.
	a := sparse.Poisson2D(20, 20)
	b, _ := testProblem(a)
	m, _ := precond.NewJacobi(a)
	machine := dist.DefaultMachine()
	machine.RanksPerNode = 8
	cl, err := dist.NewCluster(machine, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	tr := dist.NewTracker(cl)
	s := 5
	_, ss, err := CAPCG(a, m, b, Options{S: s, Basis: basis.Chebyshev, Criterion: RecursiveResidualMNorm, Tracker: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Converged {
		t.Fatalf("did not converge: %v", ss.Breakdown)
	}
	k := ss.OuterIterations
	if ss.Allreduces != k {
		t.Fatalf("allreduces = %d, outer = %d", ss.Allreduces, k)
	}
	wantVals := k * (2*s + 1) * (2*s + 1)
	if ss.AllreduceValues != wantVals {
		t.Fatalf("allreduce values = %d, want %d", ss.AllreduceValues, wantVals)
	}
	// 1 initial + (2s−1) per outer iteration.
	if ss.MVProducts != 1+(2*s-1)*k {
		t.Fatalf("MVs = %d, want %d (outer=%d)", ss.MVProducts, 1+(2*s-1)*k, k)
	}
	if ss.PrecApplies != 1+(2*s-1)*k {
		t.Fatalf("prec applies = %d, want %d", ss.PrecApplies, 1+(2*s-1)*k)
	}
}

func TestCAPCGMonomialMoreRobustThanSPCGMonomial(t *testing.T) {
	// Table 2: with the monomial basis, CA-PCG converges for more matrices
	// than sPCG. On a moderately hard problem with s=10, CA-PCG should
	// still converge (possibly delayed) where sPCG fails outright.
	a := sparse.Poisson2D(40, 40)
	b, _ := testProblem(a)
	m, _ := precond.NewJacobi(a)
	opts := Options{S: 8, Basis: basis.Monomial, Tol: 1e-9, MaxIterations: 3000, Criterion: TrueResidual2Norm}
	_, ca, err := CAPCG(a, m, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ca.Converged {
		t.Skipf("CA-PCG monomial did not converge on this instance either (%v)", ca.Breakdown)
	}
	_, sp, err := SPCG(a, m, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Converged && sp.Iterations < ca.Iterations {
		t.Fatalf("sPCG monomial (%d iters) beat CA-PCG monomial (%d): contradicts the paper's robustness ordering",
			sp.Iterations, ca.Iterations)
	}
}

func TestCAPCGChebyshevHardProblem(t *testing.T) {
	a := sparse.VarCoeff2D(30, 30, 3, 7)
	b, xTrue := testProblem(a)
	m, _ := precond.NewJacobi(a)
	x, ss, err := CAPCG(a, m, b, Options{S: 10, Basis: basis.Chebyshev, Tol: 1e-9, MaxIterations: 6000, Criterion: TrueResidual2Norm})
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Converged {
		t.Fatalf("did not converge: %v (rel %v)", ss.Breakdown, ss.FinalRelative)
	}
	if e := solutionError(x, xTrue); e > 1e-5 {
		t.Fatalf("solution error %v", e)
	}
}

func TestCAPCGValidation(t *testing.T) {
	a := sparse.Poisson1D(10)
	if _, _, err := CAPCG(a, nil, make([]float64, 4), Options{S: 2}); err == nil {
		t.Fatal("bad b accepted")
	}
	if _, _, err := CAPCG(a, nil, make([]float64, 10), Options{S: 2, X0: make([]float64, 2)}); err == nil {
		t.Fatal("bad x0 accepted")
	}
}

func TestCAPCGZeroRHS(t *testing.T) {
	a := sparse.Poisson1D(12)
	_, ss, err := CAPCG(a, nil, make([]float64, 12), Options{S: 3, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Converged || ss.Iterations != 0 {
		t.Fatalf("zero rhs: %+v", ss)
	}
}
