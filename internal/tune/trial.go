package tune

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"spcg/internal/basis"
	"spcg/internal/eig"
	"spcg/internal/precond"
	"spcg/internal/solver"
	"spcg/internal/sparse"
)

// Outcome is what one probe solve of one candidate reports.
type Outcome struct {
	Iterations int     `json:"iterations"`
	Relative   float64 `json:"relative"` // final relative criterion value
	ElapsedMS  float64 `json:"elapsed_ms"`
	Converged  bool    `json:"converged"`
	// Breakdown is the numerical-breakdown description when the probe died
	// (rank-deficient Gram system, non-positive curvature, ...). A candidate
	// with any breakdown is eliminated and can never win.
	Breakdown string `json:"breakdown,omitempty"`
	// Err is a non-numerical probe failure (setup error, cancellation).
	Err string `json:"err,omitempty"`
}

// Trial is one scored probe in the successive-halving schedule.
type Trial struct {
	Round     int       `json:"round"`
	IterCap   int       `json:"iter_cap"`
	Candidate Candidate `json:"candidate"`
	Outcome   Outcome   `json:"outcome"`
	// Score is elapsed milliseconds per decade of residual reduction (lower
	// is better); 0 for eliminated trials (see Eliminated).
	Score float64 `json:"score,omitempty"`
	// Eliminated is the reason this trial knocked its candidate out.
	Eliminated string `json:"eliminated,omitempty"`
}

// Runner executes one capped probe solve for a candidate. The service
// implements it over its setup cache; DirectRunner is the standalone
// implementation used by experiments and tests.
type Runner interface {
	Probe(c Candidate, maxIters int, tol float64) Outcome
}

// score converts an outcome into milliseconds per decade of residual
// reduction. Breakdown, error, or no measurable progress eliminates the
// candidate (second return non-empty).
func score(o Outcome) (float64, string) {
	if o.Breakdown != "" {
		return 0, "breakdown: " + o.Breakdown
	}
	if o.Err != "" {
		return 0, "probe error: " + o.Err
	}
	if !(o.Relative > 0) || o.Relative >= 1 {
		return 0, fmt.Sprintf("no residual progress (relative %.3g after %d iterations)", o.Relative, o.Iterations)
	}
	decades := -math.Log10(o.Relative)
	if decades < 0.1 {
		decades = 0.1 // floor so near-stagnant probes score terribly, not infinitely
	}
	elapsed := o.ElapsedMS
	if elapsed <= 0 {
		elapsed = 1e-3 // sub-resolution probe on a tiny matrix; keep ordering by decades
	}
	return elapsed / decades, ""
}

// Run executes the plan's candidates through r with successive halving:
// every survivor is probed at the round's iteration cap, scored, the field
// is halved, and the cap quadruples. Eliminated candidates (breakdown, no
// progress) never advance and never win. The returned Decision is not yet
// persisted — callers Put it into a Store.
func Run(plan *Plan, r Runner, cfg Config) (*Decision, error) {
	cfg = cfg.withDefaults()
	if len(plan.Candidates) == 0 {
		return nil, errors.New("tune: empty plan")
	}
	d := &Decision{
		Fingerprint: FpString(plan.Fingerprint),
		Cond:        plan.Cond,
		Source:      "tuned",
		CreatedUnix: time.Now().Unix(),
	}

	type standing struct {
		c     Candidate
		score float64
	}
	field := make([]standing, 0, len(plan.Candidates))
	for _, c := range plan.Candidates {
		field = append(field, standing{c: c})
	}

	cap_ := cfg.ProbeIters
	for round := 0; round < cfg.Rounds && len(field) > 0; round++ {
		for i := range field {
			o := r.Probe(field[i].c, cap_, cfg.Tol)
			t := Trial{Round: round, IterCap: cap_, Candidate: field[i].c, Outcome: o}
			t.Score, t.Eliminated = score(o)
			d.Trials = append(d.Trials, t)
			field[i].score = t.Score
		}
		// Drop eliminated candidates, then keep the better half (floor 1).
		kept := field[:0]
		for _, st := range field {
			if eliminatedIn(d.Trials, st.c) == "" {
				kept = append(kept, st)
			}
		}
		field = kept
		sort.SliceStable(field, func(i, j int) bool { return field[i].score < field[j].score })
		if round < cfg.Rounds-1 {
			half := (len(field) + 1) / 2
			if half < 1 {
				half = 1
			}
			field = field[:half]
			cap_ *= 4
		}
	}

	if len(field) == 0 {
		return nil, fmt.Errorf("tune: every candidate was eliminated (%d trials)", len(d.Trials))
	}
	for _, st := range field {
		d.Ranked = append(d.Ranked, RankedCandidate{Candidate: st.c, Score: st.score})
	}
	d.Winner = d.Ranked[0].Candidate
	return d, nil
}

// eliminatedIn reports the elimination reason recorded for c, if any.
func eliminatedIn(trials []Trial, c Candidate) string {
	for _, t := range trials {
		if t.Candidate == c && t.Eliminated != "" {
			return t.Eliminated
		}
	}
	return ""
}

// DirectRunner probes candidates against an in-memory matrix, memoizing
// preconditioner construction and spectral estimates per canonical spec —
// the standalone counterpart of the service's setup cache. Safe for
// sequential use; Probe is not called concurrently by Run.
type DirectRunner struct {
	A *sparse.CSR
	// B is the probe right-hand side (default: all ones).
	B []float64
	// Cancel aborts in-flight probes (optional; wired to the daemon's base
	// context when the service tunes in the background).
	Cancel <-chan struct{}

	mu      sync.Mutex
	precs   map[string]precond.Interface
	spectra map[string]*eig.Estimate
}

func (r *DirectRunner) rhs() []float64 {
	if r.B != nil {
		return r.B
	}
	b := make([]float64, r.A.Dim())
	for i := range b {
		b[i] = 1
	}
	r.B = b
	return b
}

// setup returns the (memoized) preconditioner and, when wanted, spectral
// estimate for the candidate's canonical preconditioner spec.
func (r *DirectRunner) setup(c Candidate, wantSpectrum bool) (precond.Interface, *eig.Estimate, error) {
	spec, err := precond.Parse(c.Precond)
	if err != nil {
		return nil, nil, err
	}
	key := spec.Canonical()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.precs == nil {
		r.precs = map[string]precond.Interface{}
		r.spectra = map[string]*eig.Estimate{}
	}
	m, ok := r.precs[key]
	if !ok {
		if m, err = spec.Build(r.A); err != nil {
			return nil, nil, err
		}
		r.precs[key] = m
	}
	if !wantSpectrum {
		return m, nil, nil
	}
	est, ok := r.spectra[key]
	if !ok {
		var applyM func(dst, src []float64)
		if m != nil {
			applyM = m.Apply
		}
		// Estimate failure is non-fatal: the solver computes its own.
		if est, err = eig.RitzFromPCG(r.A, applyM, eig.Options{Iterations: 20}); err == nil {
			r.spectra[key] = est
		}
	}
	return m, est, nil
}

// Probe runs one capped solve of the candidate configuration.
func (r *DirectRunner) Probe(c Candidate, maxIters int, tol float64) Outcome {
	solve, ok := solver.ByName(c.Method)
	if !ok {
		return Outcome{Err: fmt.Sprintf("unknown method %q", c.Method)}
	}
	opts := solver.Options{
		S:             c.S,
		Tol:           tol,
		MaxIterations: maxIters,
		Cancel:        r.Cancel,
	}
	if c.Basis != "" {
		t, err := basis.ParseType(c.Basis)
		if err != nil {
			return Outcome{Err: err.Error()}
		}
		opts.Basis = t
	}
	wantSpectrum := solver.NeedsSpectrum(c.Method) && opts.Basis != basis.Monomial
	m, est, err := r.setup(c, wantSpectrum)
	if err != nil {
		return Outcome{Err: err.Error()}
	}
	opts.Spectrum = est

	t0 := time.Now()
	_, stats, err := solve(r.A, m, r.rhs(), opts)
	return ProbeOutcome(stats, err, time.Since(t0))
}

// ProbeOutcome folds a solver result into an Outcome, classifying numerical
// breakdowns (whether surfaced as Stats.Breakdown with a best-effort iterate
// or as an error wrapping solver.ErrBreakdown) separately from operational
// failures.
func ProbeOutcome(stats *solver.Stats, err error, elapsed time.Duration) Outcome {
	o := Outcome{ElapsedMS: float64(elapsed) / float64(time.Millisecond)}
	if stats != nil {
		o.Iterations = stats.Iterations
		o.Relative = stats.FinalRelative
		o.Converged = stats.Converged
		if stats.Breakdown != nil {
			o.Breakdown = stats.Breakdown.Error()
		}
	}
	if err != nil {
		if errors.Is(err, solver.ErrBreakdown) {
			o.Breakdown = err.Error()
		} else {
			o.Err = err.Error()
		}
	}
	return o
}
