// Package dist models the distributed-memory execution of the solvers on a
// virtual cluster, substituting for the paper's MPI runs on the ASC
// infrastructure (see DESIGN.md, "Substitutions").
//
// The solvers execute their numerics in one address space but route every
// length-n operation through a Tracker, which charges a bulk-synchronous
// cost model:
//
//   - local work uses a roofline: time = max(flops/FlopRate, bytes/rankBW),
//     evaluated on the most loaded rank of the block-row partition (computed
//     from the actual matrix, nnz-balanced exactly like the real runs);
//   - halo exchanges charge latency per neighbour plus ghost volume over the
//     network bandwidth, with ghost counts measured from the actual matrix;
//   - global allreduces charge ceil(log₂P)·(α + bytes·β), the binomial-tree
//     model whose latency term is the scalability bottleneck the paper's
//     s-step methods attack.
//
// Everything the paper varies — node count, ranks per node, s — maps to
// observable model inputs, and everything the paper measures — runtime,
// speedup, scaling knee — comes out of Tracker.Time.
package dist

import (
	"fmt"
	"math"
	"sort"

	"spcg/internal/sparse"
)

// Machine describes the modeled hardware, loosely calibrated to a
// contemporary HPC node (the paper's ASC nodes run 128 ranks each).
type Machine struct {
	// RanksPerNode is the number of MPI ranks per node (paper: 128).
	RanksPerNode int
	// FlopRate is the effective per-rank floating-point rate (FLOP/s) for
	// compute-bound kernels.
	FlopRate float64
	// NodeMemBW is the per-node memory bandwidth in bytes/s, shared by the
	// node's ranks; it bounds BLAS1/SpMV-style streaming kernels.
	NodeMemBW float64
	// NetLatency is the per-message network latency α in seconds.
	NetLatency float64
	// NetBandwidth is the per-rank network bandwidth in bytes/s.
	NetBandwidth float64
	// Faults configures system-level fault charging (transient communication
	// failures with timeout + exponential-backoff retries, straggler ranks).
	// The zero value disables it entirely: every modeled time is then
	// bit-identical to a fault-free machine.
	Faults FaultModel
}

// DefaultMachine returns the calibration used by the experiment drivers:
// 128 ranks/node, 2 GF/s per rank, 200 GB/s node memory bandwidth,
// 2 µs latency, 12.5 GB/s network bandwidth per link.
func DefaultMachine() Machine {
	return Machine{
		RanksPerNode: 128,
		FlopRate:     2e9,
		NodeMemBW:    200e9,
		NetLatency:   2e-6,
		NetBandwidth: 12.5e9,
	}
}

// RankMemBW returns the per-rank share of node memory bandwidth.
func (m Machine) RankMemBW() float64 { return m.NodeMemBW / float64(m.RanksPerNode) }

// Cluster is a virtual cluster bound to a concrete matrix: it holds the
// block-row partition and the halo structure measured from that matrix.
type Cluster struct {
	M     Machine
	Nodes int
	P     int // total ranks
	N     int // matrix dimension
	NNZ   int

	// RowBounds has P+1 entries: rank r owns rows [RowBounds[r], RowBounds[r+1]).
	RowBounds []int
	// MaxRows and MaxNNZ are the most loaded rank's row and nnz counts.
	MaxRows, MaxNNZ int
	// MaxHaloRecv is the largest per-rank count of distinct ghost entries
	// received per halo exchange; MaxNeighbors the largest per-rank
	// neighbour count.
	MaxHaloRecv, MaxNeighbors int
}

// NewCluster partitions a block-row over nodes·RanksPerNode ranks (nnz
// balanced) and measures the halo structure.
func NewCluster(m Machine, nodes int, a *sparse.CSR) (*Cluster, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("dist: need ≥ 1 node, got %d", nodes)
	}
	if m.RanksPerNode < 1 || m.FlopRate <= 0 || m.NodeMemBW <= 0 || m.NetLatency < 0 || m.NetBandwidth <= 0 {
		return nil, fmt.Errorf("dist: invalid machine %+v", m)
	}
	p := nodes * m.RanksPerNode
	if p > a.Dim() {
		return nil, fmt.Errorf("dist: %d ranks exceed %d matrix rows", p, a.Dim())
	}
	c := &Cluster{M: m, Nodes: nodes, P: p, N: a.Dim(), NNZ: a.NNZ()}
	c.RowBounds = sparse.NNZBalancedRanges(a, p)
	for r := 0; r < p; r++ {
		rows := c.RowBounds[r+1] - c.RowBounds[r]
		nnz := a.RowPtr[c.RowBounds[r+1]] - a.RowPtr[c.RowBounds[r]]
		if rows > c.MaxRows {
			c.MaxRows = rows
		}
		if nnz > c.MaxNNZ {
			c.MaxNNZ = nnz
		}
	}
	c.measureHalo(a)
	return c, nil
}

// measureHalo finds, for each rank, the distinct off-partition columns its
// rows reference (ghost entries) and the distinct owner ranks (neighbours),
// recording the maxima.
func (c *Cluster) measureHalo(a *sparse.CSR) {
	stamp := make([]int, a.Dim())
	for i := range stamp {
		stamp[i] = -1
	}
	neighborStamp := make([]int, c.P)
	for i := range neighborStamp {
		neighborStamp[i] = -1
	}
	for r := 0; r < c.P; r++ {
		lo, hi := c.RowBounds[r], c.RowBounds[r+1]
		ghosts, neighbors := 0, 0
		for i := lo; i < hi; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.ColIdx[k]
				if j >= lo && j < hi {
					continue
				}
				if stamp[j] != r {
					stamp[j] = r
					ghosts++
					owner := c.ownerOf(j)
					if neighborStamp[owner] != r {
						neighborStamp[owner] = r
						neighbors++
					}
				}
			}
		}
		if ghosts > c.MaxHaloRecv {
			c.MaxHaloRecv = ghosts
		}
		if neighbors > c.MaxNeighbors {
			c.MaxNeighbors = neighbors
		}
	}
}

// ownerOf returns the rank owning row j.
func (c *Cluster) ownerOf(j int) int {
	// RowBounds is sorted; find the rank with RowBounds[r] ≤ j < RowBounds[r+1].
	r := sort.Search(len(c.RowBounds), func(i int) bool { return c.RowBounds[i] > j }) - 1
	if r < 0 {
		r = 0
	}
	if r >= c.P {
		r = c.P - 1
	}
	return r
}

// MaxRowShare returns MaxRows/N: the load-imbalance factor applied to
// row-proportional local work.
func (c *Cluster) MaxRowShare() float64 { return float64(c.MaxRows) / float64(c.N) }

// MaxNNZShare returns MaxNNZ/NNZ.
func (c *Cluster) MaxNNZShare() float64 { return float64(c.MaxNNZ) / float64(c.NNZ) }

// Roofline returns the local-phase time for the most loaded rank given its
// flop and byte counts. A configured straggler multiplies this time: in a
// bulk-synchronous step every rank waits for the slowest one, so a slow rank
// anywhere stretches exactly the most-loaded-rank critical path modeled here.
func (c *Cluster) Roofline(flops, bytes float64) float64 {
	t := math.Max(flops/c.M.FlopRate, bytes/c.M.RankMemBW())
	if f := c.M.Faults.StragglerFactor; f > 1 {
		t *= f
	}
	return t
}

// AllreduceTime returns the modeled time of one allreduce of `values`
// float64 values over all P ranks: ceil(log₂P)·(α + 8·values·β).
func (c *Cluster) AllreduceTime(values int) float64 {
	steps := math.Ceil(math.Log2(float64(c.P)))
	if steps < 1 {
		steps = 1
	}
	return steps * (c.M.NetLatency + float64(8*values)/c.M.NetBandwidth)
}

// HaloTime returns the modeled time of one halo exchange: latency per
// neighbour plus ghost volume over the wire.
func (c *Cluster) HaloTime() float64 {
	if c.P == 1 {
		return 0
	}
	return float64(c.MaxNeighbors)*c.M.NetLatency + float64(8*c.MaxHaloRecv)/c.M.NetBandwidth
}
