package solver

import (
	"math"
	"testing"

	"spcg/internal/basis"
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

func TestAdaptiveMatchesSPCGWhenStable(t *testing.T) {
	// On a problem where sPCG at the requested s is healthy, the adaptive
	// wrapper must behave identically (no s reductions).
	a := sparse.Poisson2D(20, 20)
	b, xTrue := testProblem(a)
	m, _ := precond.NewJacobi(a)
	x, st, err := SPCGAdaptive(a, m, b, Options{S: 5, Basis: basis.Chebyshev, Tol: 1e-8, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("did not converge: %+v", st.Breakdown)
	}
	if st.Restarts != 0 {
		t.Fatalf("unexpected s reductions: %d", st.Restarts)
	}
	if e := solutionError(x, xTrue); e > 1e-6 {
		t.Fatalf("solution error %v", e)
	}
}

func TestAdaptiveRecoversFromMonomialBreakdown(t *testing.T) {
	// The monomial basis at s = 10 collapses; the adaptive cascade must
	// shrink s until it converges (s ≤ 5 is stable for this problem).
	a := sparse.Anisotropic2D(40, 40, 1e-3)
	b, xTrue := testProblem(a)
	m, _ := precond.NewJacobi(a)
	x, st, err := SPCGAdaptive(a, m, b, Options{S: 10, Basis: basis.Monomial, Tol: 1e-8, MaxIterations: 12000, Criterion: TrueResidual2Norm})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("adaptive cascade did not converge: rel %v, restarts %d", st.FinalRelative, st.Restarts)
	}
	if st.Restarts == 0 {
		t.Fatal("expected at least one s reduction for the monomial basis at s=10")
	}
	if e := solutionError(x, xTrue); e > 1e-5 {
		t.Fatalf("solution error %v", e)
	}
}

func TestAdaptiveDegradesToPlainPCG(t *testing.T) {
	// With s = 1 requested directly, the cascade is just PCG.
	a := sparse.Poisson1D(60)
	b, xTrue := testProblem(a)
	x, st, err := SPCGAdaptive(a, nil, b, Options{S: 1, Tol: 1e-10, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("PCG phase did not converge")
	}
	if e := solutionError(x, xTrue); e > 1e-7 {
		t.Fatalf("solution error %v", e)
	}
}

func TestAdaptiveRespectsIterationBudget(t *testing.T) {
	a := sparse.Anisotropic2D(30, 30, 1e-4)
	b, _ := testProblem(a)
	_, st, err := SPCGAdaptive(a, nil, b, Options{S: 8, Basis: basis.Monomial, Tol: 1e-13, MaxIterations: 40, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if st.Converged {
		t.Fatal("should not converge within 40 iterations at 1e-13")
	}
	// The cascade must not run unbounded: total iterations stay within a
	// small multiple of the budget (each phase obeys the remaining cap).
	if st.Iterations > 40+8 {
		t.Fatalf("iterations %d exceed the budget", st.Iterations)
	}
}

func TestAdaptiveErrorPropagation(t *testing.T) {
	a := sparse.Poisson1D(10)
	if _, _, err := SPCGAdaptive(a, nil, make([]float64, 3), Options{S: 2}); err == nil {
		t.Fatal("bad rhs accepted")
	}
}

func TestAdaptiveStatsAggregate(t *testing.T) {
	a := sparse.Poisson2D(15, 15)
	b, _ := testProblem(a)
	_, st, err := SPCGAdaptive(a, nil, b, Options{S: 4, Basis: basis.Chebyshev, Tol: 1e-8, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if st.MVProducts <= 0 || st.Allreduces <= 0 || len(st.History) == 0 {
		t.Fatalf("stats not aggregated: %+v", st)
	}
	if st.TrueRelResidual > 1e-7 {
		t.Fatalf("true residual %v", st.TrueRelResidual)
	}
	if math.IsNaN(st.FinalRelative) {
		t.Fatal("FinalRelative not set")
	}
}

// degenerateNewtonParams builds a valid-but-hopeless basis: shifts far above
// the spectrum make every new column a near-multiple of the previous one, so
// the s-step Gram system is singular for any s ≥ 2 and the phase breaks down
// immediately. The cascade then has no choice but to halve to s = 1.
func degenerateNewtonParams(s int) *basis.Params {
	theta := make([]float64, s)
	for i := range theta {
		theta[i] = 1e12
	}
	return &basis.Params{
		Type:  basis.Newton,
		Theta: theta,
		Gamma: onesSlice(s),
		Mu:    make([]float64, s-1),
	}
}

func onesSlice(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestAdaptiveHalvesAllTheWayToPCG(t *testing.T) {
	// With a basis that breaks down at every s ≥ 2, the cascade must halve
	// 4 → 2 → 1 and the final plain-PCG phase must deliver the solution.
	a := sparse.Poisson2D(16, 16)
	b, xTrue := testProblem(a)
	m, _ := precond.NewJacobi(a)
	x, st, err := SPCGAdaptive(a, m, b, Options{
		S: 4, BasisParams: degenerateNewtonParams(4), Tol: 1e-9,
		Criterion: RecursiveResidualMNorm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("cascade did not converge: %+v", st.Breakdown)
	}
	if st.Restarts != 2 {
		t.Fatalf("Restarts = %d, want exactly 2 (4→2→1)", st.Restarts)
	}
	if e := solutionError(x, xTrue); e > 1e-6 {
		t.Fatalf("solution error %v", e)
	}
}

func TestAdaptiveBudgetExhaustionMidCascade(t *testing.T) {
	// The budget runs out after the cascade has already restarted: the
	// terminal PCG phase gets exactly the remaining budget, and the aggregate
	// iteration accounting must reflect it precisely.
	a := sparse.Poisson2D(16, 16)
	b, _ := testProblem(a)
	m, _ := precond.NewJacobi(a)
	budget := 25
	_, st, err := SPCGAdaptive(a, m, b, Options{
		S: 4, BasisParams: degenerateNewtonParams(4), Tol: 1e-14,
		MaxIterations: budget, Criterion: RecursiveResidualMNorm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Converged {
		t.Fatal("should not reach 1e-14 in 25 iterations")
	}
	if st.Restarts != 2 {
		t.Fatalf("Restarts = %d, want 2", st.Restarts)
	}
	// Both s ≥ 2 phases break down before completing a block, so the PCG
	// phase receives and consumes the entire budget.
	if st.Iterations != budget {
		t.Fatalf("Iterations = %d, want the exact budget %d", st.Iterations, budget)
	}
}

func TestAdaptiveIterationAccountingAcrossPhases(t *testing.T) {
	// When phases do perform work before the cascade steps down, the
	// aggregate counts must equal the sum over phases and stay within one
	// block of the budget.
	a := sparse.Anisotropic2D(30, 30, 1e-4)
	b, _ := testProblem(a)
	s := 8
	budget := 60
	_, st, err := SPCGAdaptive(a, nil, b, Options{
		S: s, Basis: basis.Monomial, Tol: 1e-13,
		MaxIterations: budget, Criterion: RecursiveResidualMNorm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations > budget+s {
		t.Fatalf("Iterations = %d exceed budget %d by more than one block", st.Iterations, budget)
	}
	if st.OuterIterations > st.Iterations {
		t.Fatalf("OuterIterations %d > Iterations %d", st.OuterIterations, st.Iterations)
	}
	if st.MVProducts < st.Iterations {
		t.Fatalf("MVProducts %d < Iterations %d: phases not aggregated", st.MVProducts, st.Iterations)
	}
}
