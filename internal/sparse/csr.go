// Package sparse provides the sparse-matrix substrate: CSR storage, sparse
// matrix-vector products (sequential and row-partitioned parallel), SPD
// diagnostics, problem generators for every matrix class used in the paper's
// evaluation, and MatrixMarket I/O.
package sparse

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"spcg/internal/vec"
)

// CSR is a compressed-sparse-row matrix. RowPtr has length N+1; ColIdx and
// Val have length NNZ with column indices sorted within each row.
type CSR struct {
	N      int // rows == cols; all solver matrices are square
	RowPtr []int
	ColIdx []int
	Val    []float64

	// parts caches nnz-balanced row partitions for the pool-dispatched
	// kernels (see parallel.go). Lazily filled; never copied by value.
	parts partsPointer

	// diagCache and maxRowCache memoize Diag and MaxRowNNZ: preconditioner
	// setup and format selection call both repeatedly on the same immutable
	// matrix. Zero values mean "not computed" (matrices are built by struct
	// literal throughout this package), so maxRowCache stores max+1.
	// Scale and AddDiag invalidate; both are atomics so concurrent readers
	// of a shared matrix stay race-free.
	diagCache   atomic.Pointer[[]float64]
	maxRowCache atomic.Int64
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Val) }

// Dim returns the matrix dimension n.
func (a *CSR) Dim() int { return a.N }

// MulVec computes dst = A·x sequentially. dst must not alias x.
func (a *CSR) MulVec(dst, x []float64) {
	if len(x) != a.N || len(dst) != a.N {
		panic(fmt.Sprintf("sparse: MulVec dim mismatch n=%d len(x)=%d len(dst)=%d", a.N, len(x), len(dst)))
	}
	for i := 0; i < a.N; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.ColIdx[k]]
		}
		dst[i] = s
	}
}

// MulVecRows computes dst[lo:hi] = (A·x)[lo:hi]: the local part of a
// block-row distributed SpMV (x must already include ghost values, i.e. be
// the full vector).
func (a *CSR) MulVecRows(dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.ColIdx[k]]
		}
		dst[i] = s
	}
}

// Diag returns a copy of the main diagonal (zeros for missing entries).
// The scan is memoized; callers own the returned slice.
func (a *CSR) Diag() []float64 {
	if p := a.diagCache.Load(); p != nil {
		return append([]float64(nil), (*p)...)
	}
	d := make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] == i {
				d[i] = a.Val[k]
				break
			}
		}
	}
	cached := append([]float64(nil), d...)
	a.diagCache.Store(&cached)
	return d
}

// At returns element (i,j) (zero if not stored). O(log nnz(row)).
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	k := lo + sort.SearchInts(a.ColIdx[lo:hi], j)
	if k < hi && a.ColIdx[k] == j {
		return a.Val[k]
	}
	return 0
}

// IsSymmetric reports whether |a_ij − a_ji| ≤ tol·max|a| for all stored
// entries (checking both triangles).
func (a *CSR) IsSymmetric(tol float64) bool {
	var scale float64
	for _, v := range a.Val {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	bound := tol * (1 + scale)
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if math.Abs(a.Val[k]-a.At(j, i)) > bound {
				return false
			}
		}
	}
	return true
}

// Gershgorin returns an interval [lo, hi] containing all eigenvalues by
// Gershgorin's circle theorem. For SPD matrices lo is additionally clamped
// at 0 is NOT done — callers needing positivity should max(lo, tiny).
func (a *CSR) Gershgorin() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < a.N; i++ {
		var d, r float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] == i {
				d = a.Val[k]
			} else {
				r += math.Abs(a.Val[k])
			}
		}
		if d-r < lo {
			lo = d - r
		}
		if d+r > hi {
			hi = d + r
		}
	}
	return lo, hi
}

// RowNNZ returns the number of stored entries in row i.
func (a *CSR) RowNNZ(i int) int { return a.RowPtr[i+1] - a.RowPtr[i] }

// MaxRowNNZ returns the maximum entries in any row (memoized; row lengths
// never change after construction, so nothing invalidates it).
func (a *CSR) MaxRowNNZ() int {
	if v := a.maxRowCache.Load(); v > 0 {
		return int(v - 1)
	}
	m := 0
	for i := 0; i < a.N; i++ {
		if r := a.RowNNZ(i); r > m {
			m = r
		}
	}
	a.maxRowCache.Store(int64(m + 1))
	return m
}

// invalidateValueCaches drops memoized views of Val after a mutation.
func (a *CSR) invalidateValueCaches() {
	a.diagCache.Store(nil)
}

// Scale multiplies all stored values by alpha.
func (a *CSR) Scale(alpha float64) {
	for i := range a.Val {
		a.Val[i] *= alpha
	}
	a.invalidateValueCaches()
}

// AddDiag adds alpha to every diagonal entry (the entry must be stored;
// all generators in this package store full diagonals).
func (a *CSR) AddDiag(alpha float64) {
	for i := 0; i < a.N; i++ {
		found := false
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] == i {
				a.Val[k] += alpha
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("sparse: AddDiag row %d has no stored diagonal", i))
		}
	}
	a.invalidateValueCaches()
}

// MulBlock computes one SpMV per column: dst_j = A·x_j.
func (a *CSR) MulBlock(dst, x *vec.Block) {
	if dst.S() != x.S() {
		panic("sparse: MulBlock column-count mismatch")
	}
	for j := 0; j < x.S(); j++ {
		a.MulVec(dst.Col(j), x.Col(j))
	}
}

// Dense returns the matrix as row-major dense data (test helper; panics for
// n > 4096 to catch accidental use on large problems).
func (a *CSR) Dense() []float64 {
	if a.N > 4096 {
		panic("sparse: Dense called on large matrix")
	}
	d := make([]float64, a.N*a.N)
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d[i*a.N+a.ColIdx[k]] = a.Val[k]
		}
	}
	return d
}
