package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"spcg/internal/basis"
	"spcg/internal/pool"
	"spcg/internal/solver"
	"spcg/internal/sparse"
	"spcg/internal/suite"
)

// This file benchmarks the structure-adaptive storage engine: every suite
// matrix is swept across {CSR, SELL-C-σ} × {natural, RCM}, the hot SpMV
// (MulVecPar) is timed per combo, and the format selector's pick is graded
// against the measured truth. Three acceptance properties ride on the output
// (ValidateFormats enforces them, and `spcgbench formats` exits non-zero when
// they fail):
//
//  1. the selected combo never loses more than 5% to plain natural-order CSR
//     anywhere (the selector probes CSR as a candidate with hysteresis in its
//     favour, so this holds by construction up to measurement noise);
//  2. on the full suite the selector moves off plain CSR and wins on at
//     least a third of the matrices (the irregular / large-bandwidth half of
//     the suite is where SELL's C independent accumulator chains and RCM's
//     working-set compression pay);
//  3. solver numerics are bit-identical between CSR and SELL at the same
//     ordering: SELL stores each row's entries in the same ascending-column
//     order CSR does, so per-row sums accumulate identically and a capped
//     sPCG run must report exactly the same iteration count and residuals.

// FormatsConfig parameterizes the sweep.
type FormatsConfig struct {
	// Scale divides the paper's matrix sizes (default 8 — larger stand-ins
	// than the table sweeps, so SpMV leaves cache and format matters).
	Scale int
	// Reps is the timing repetition count per combo (default 7; min is
	// reported).
	Reps int
	// S is the s-step block size for the numerics-parity solves (default 8).
	S int
	// MaxIterations caps the parity solves (default 40; parity is judged on
	// the capped trajectory, convergence is not required).
	MaxIterations int
	// Only restricts the sweep to these suite matrices (default all 40).
	Only []string
}

func (c FormatsConfig) withDefaults() FormatsConfig {
	if c.Scale <= 0 {
		c.Scale = 8
	}
	if c.Reps <= 0 {
		c.Reps = 7
	}
	if c.S <= 0 {
		c.S = 8
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 40
	}
	return c
}

// FormatRow is one matrix's measurements.
type FormatRow struct {
	Name  string `json:"name"`
	Class string `json:"class"`
	N     int    `json:"n"`
	NNZ   int    `json:"nnz"`

	// Structure statistics that feed the selector's pruning heuristics.
	RowCV        float64 `json:"row_cv"`
	PaddingRatio float64 `json:"padding_ratio"`
	Bandwidth    int     `json:"bandwidth"`
	BandwidthRCM int     `json:"bandwidth_rcm"`

	// Min-of-reps MulVecPar times for the four combos.
	CSRNs     int64 `json:"csr_ns"`
	SellNs    int64 `json:"sell_ns"`
	CSRRCMNs  int64 `json:"csr_rcm_ns"`
	SellRCMNs int64 `json:"sell_rcm_ns"`

	// BestCombo is the fastest of the four by measurement; BestSpeedup is
	// csr_ns / best_ns (≥ 1 by definition).
	BestCombo   string  `json:"best_combo"`
	BestSpeedup float64 `json:"best_speedup"`

	// Selected is the format selector's pick for this matrix;
	// SelectedVsCSR is csr_ns / selected_ns (> 1 = the pick beats CSR),
	// SelectorEff is best_ns / selected_ns (1.0 = the pick was optimal).
	Selected      string  `json:"selected"`
	SelectedNs    int64   `json:"selected_ns"`
	SelectedVsCSR float64 `json:"selected_vs_csr"`
	SelectorEff   float64 `json:"selector_eff"`

	// NumericsMatch reports whether capped sPCG runs on CSR and SELL agreed
	// exactly (iterations and residuals) at both orderings; Iterations is the
	// natural-order count for context.
	Iterations    int  `json:"iterations"`
	NumericsMatch bool `json:"numerics_match"`
}

// FormatsSummary aggregates the acceptance checks.
type FormatsSummary struct {
	Problems int `json:"problems"`
	// SelectedWins counts matrices where the selector moved off plain CSR
	// and the pick measured faster than CSR.
	SelectedWins        int     `json:"selected_wins"`
	SelectedWinFraction float64 `json:"selected_win_fraction"`
	// WorstSelectedVsCSR is the minimum of selected-vs-CSR across the sweep
	// (acceptance: ≥ 0.95, i.e. the engine never costs more than 5%).
	WorstSelectedVsCSR float64 `json:"worst_selected_vs_csr"`
	MeanSelectedVsCSR  float64 `json:"mean_selected_vs_csr"`
	// WorstSelectorEff is the minimum of best-vs-selected across the sweep:
	// how far from the measured optimum the selector's worst pick landed.
	WorstSelectorEff  float64 `json:"worst_selector_eff"`
	NumericsIdentical bool    `json:"numerics_identical"`
}

// FormatsResult is the BENCH_formats.json document.
type FormatsResult struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	Workers    int            `json:"workers"`
	Scale      int            `json:"scale"`
	Reps       int            `json:"reps"`
	S          int            `json:"s"`
	C          int            `json:"c"`
	Sigma      int            `json:"sigma"`
	Rows       []FormatRow    `json:"rows"`
	Summary    FormatsSummary `json:"summary"`
}

// minTimeN times every function interleaved — f0, f1, …, f0, f1, … — so
// frequency or load drift hits all combos equally, and returns each
// function's minimum over reps (after one warm-up call each).
func minTimeN(reps int, fns []func()) []int64 {
	out := make([]int64, len(fns))
	for i, f := range fns {
		f()
		out[i] = math.MaxInt64
	}
	for r := 0; r < reps; r++ {
		for i, f := range fns {
			t0 := time.Now()
			f()
			if d := time.Since(t0).Nanoseconds(); d < out[i] {
				out[i] = d
			}
		}
	}
	for i := range out {
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

// parityStats captures the exactly-comparable subset of a capped solve.
type parityStats struct {
	iters    int
	ok       bool
	finalRel float64
	trueRel  float64
}

// runParity executes one capped sPCG run with the given operator on the hot
// path and returns the comparable stats.
func runParity(st *problemSetup, op sparse.Matrix, s, maxIters int) parityStats {
	opts := solver.Options{
		Operator:      op,
		S:             s,
		Basis:         basis.Chebyshev,
		Tol:           1e-9,
		MaxIterations: maxIters,
		Spectrum:      st.spectrum,
	}
	_, stats, err := solver.SPCG(st.a, st.m, st.b, opts)
	p := parityStats{ok: err == nil}
	if stats != nil {
		p.iters = stats.Iterations
		p.finalRel = stats.FinalRelative
		p.trueRel = stats.TrueRelResidual
	}
	return p
}

// RunFormats executes the storage sweep and returns the BENCH_formats.json
// document.
func RunFormats(cfg FormatsConfig, progress io.Writer) (*FormatsResult, error) {
	cfg = cfg.withDefaults()
	logf := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format+"\n", args...)
		}
	}

	problems := suite.All()
	if len(cfg.Only) > 0 {
		problems = problems[:0]
		for _, name := range cfg.Only {
			p, ok := suite.ByName(name)
			if !ok {
				return nil, fmt.Errorf("formats: unknown matrix %q", name)
			}
			problems = append(problems, p)
		}
	}

	res := &FormatsResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    pool.Default().Workers(),
		Scale:      cfg.Scale,
		Reps:       cfg.Reps,
		S:          cfg.S,
		C:          sparse.DefaultSliceHeight,
		Sigma:      sparse.DefaultSigma,
	}
	sum := FormatsSummary{
		WorstSelectedVsCSR: math.Inf(1),
		WorstSelectorEff:   math.Inf(1),
		NumericsIdentical:  true,
	}

	for _, p := range problems {
		a := p.Build(cfg.Scale)
		n := a.Dim()
		row := FormatRow{
			Name: p.Name, Class: p.Class, N: n, NNZ: a.NNZ(),
			RowCV:        sparse.RowLengthCV(a),
			PaddingRatio: sparse.EstimatePaddingRatio(a, 0, 0),
			Bandwidth:    sparse.Bandwidth(a),
		}

		// Build the four combos up front; the RCM pair shares one permute.
		perm := sparse.RCM(a)
		ar := sparse.Permute(a, perm)
		row.BandwidthRCM = sparse.Bandwidth(ar)
		se := sparse.SELLFromCSR(a, 0, 0)
		ser := sparse.SELLFromCSR(ar, 0, 0)

		x := make([]float64, n)
		fillDet(x, 11)
		xr := sparse.PermuteVec(x, perm)
		dst := make([]float64, n)

		names := []string{"csr", "sell", "csr+rcm", "sell+rcm"}
		times := minTimeN(cfg.Reps, []func(){
			func() { a.MulVecPar(dst, x) },
			func() { se.MulVecPar(dst, x) },
			func() { ar.MulVecPar(dst, xr) },
			func() { ser.MulVecPar(dst, xr) },
		})
		row.CSRNs, row.SellNs, row.CSRRCMNs, row.SellRCMNs = times[0], times[1], times[2], times[3]

		best := 0
		for i := 1; i < len(times); i++ {
			if times[i] < times[best] {
				best = i
			}
		}
		row.BestCombo = names[best]
		row.BestSpeedup = float64(times[0]) / float64(times[best])

		// Grade the selector against the measured truth: its pick is scored
		// with this sweep's timings, not its own internal probe.
		choice, _ := sparse.ChooseFormat(a)
		row.Selected = choice.Name()
		for i, name := range names {
			if name == row.Selected {
				row.SelectedNs = times[i]
			}
		}
		row.SelectedVsCSR = float64(times[0]) / float64(row.SelectedNs)
		row.SelectorEff = float64(times[best]) / float64(row.SelectedNs)

		// Numerics parity: capped sPCG on CSR vs SELL must agree exactly at
		// each ordering (same setup object ⇒ same RHS, preconditioner and
		// spectrum; only the hot-path operator differs).
		st, err := newSetup(a, "jacobi", 0)
		if err != nil {
			return nil, fmt.Errorf("formats: %s: %w", p.Name, err)
		}
		pc := runParity(st, nil, cfg.S, cfg.MaxIterations)
		ps := runParity(st, se, cfg.S, cfg.MaxIterations)
		row.Iterations = pc.iters
		row.NumericsMatch = pc == ps
		str, err := newSetup(ar, "jacobi", 0)
		if err != nil {
			return nil, fmt.Errorf("formats: %s (rcm): %w", p.Name, err)
		}
		prc := runParity(str, nil, cfg.S, cfg.MaxIterations)
		prs := runParity(str, ser, cfg.S, cfg.MaxIterations)
		row.NumericsMatch = row.NumericsMatch && prc == prs

		res.Rows = append(res.Rows, row)
		sum.Problems++
		if row.Selected != "csr" && row.SelectedVsCSR > 1 {
			sum.SelectedWins++
		}
		if row.SelectedVsCSR < sum.WorstSelectedVsCSR {
			sum.WorstSelectedVsCSR = row.SelectedVsCSR
		}
		if row.SelectorEff < sum.WorstSelectorEff {
			sum.WorstSelectorEff = row.SelectorEff
		}
		sum.MeanSelectedVsCSR += row.SelectedVsCSR
		sum.NumericsIdentical = sum.NumericsIdentical && row.NumericsMatch
		logf("formats: %-14s n=%-7d csr=%7.1fµs sell=%7.1fµs csr+rcm=%7.1fµs sell+rcm=%7.1fµs  selected=%-8s (%.2fx vs csr, numerics=%v)",
			p.Name, n, float64(times[0])/1e3, float64(times[1])/1e3,
			float64(times[2])/1e3, float64(times[3])/1e3,
			row.Selected, row.SelectedVsCSR, row.NumericsMatch)
	}

	if sum.Problems > 0 {
		sum.SelectedWinFraction = float64(sum.SelectedWins) / float64(sum.Problems)
		sum.MeanSelectedVsCSR /= float64(sum.Problems)
	} else {
		sum.WorstSelectedVsCSR = 0
		sum.WorstSelectorEff = 0
	}
	res.Summary = sum
	return res, nil
}

// ValidateFormats enforces the acceptance properties. The no-regression
// bound and numerics parity apply to every sweep, including CI's small
// banded-stencil smoke subset; the win-fraction criterion only applies when
// the sweep is big enough to represent the suite's structural mix (a
// hand-picked banded subset is exactly where the selector should keep CSR
// everywhere).
func ValidateFormats(res *FormatsResult) error {
	if !res.Summary.NumericsIdentical {
		for _, r := range res.Rows {
			if !r.NumericsMatch {
				return fmt.Errorf("formats: %s: SELL solve diverged from CSR (numerics must be bit-identical at the same ordering)", r.Name)
			}
		}
	}
	if res.Summary.WorstSelectedVsCSR < 0.95 {
		return fmt.Errorf("formats: selected combo loses %.1f%% to plain CSR somewhere (bound: 5%%)",
			(1-res.Summary.WorstSelectedVsCSR)*100)
	}
	if res.Summary.Problems >= 20 && res.Summary.SelectedWinFraction < 1.0/3.0 {
		return fmt.Errorf("formats: selector wins on %d/%d matrices (acceptance: ≥ 1/3 of the suite)",
			res.Summary.SelectedWins, res.Summary.Problems)
	}
	return nil
}

// RenderFormats prints the sweep as a table plus the acceptance summary.
func RenderFormats(w io.Writer, res *FormatsResult) {
	fmt.Fprintf(w, "Storage format benchmark (scale 1/%d, workers=%d, C=%d, σ=%d, min of %d reps)\n\n",
		res.Scale, res.Workers, res.C, res.Sigma, res.Reps)
	fmt.Fprintf(w, "%-14s %-8s %8s %9s %5s %5s %8s %8s %9s %9s %9s %9s  %-8s %7s %4s\n",
		"matrix", "class", "n", "nnz", "cv", "pad", "bw", "bw_rcm",
		"csr", "sell", "csr+rcm", "sell+rcm", "selected", "vs_csr", "num")
	for _, r := range res.Rows {
		num := "ok"
		if !r.NumericsMatch {
			num = "FAIL"
		}
		fmt.Fprintf(w, "%-14s %-8s %8d %9d %5.2f %4.0f%% %8d %8d %8.1fµ %8.1fµ %8.1fµ %8.1fµ  %-8s %6.2fx %4s\n",
			r.Name, r.Class, r.N, r.NNZ, r.RowCV, r.PaddingRatio*100,
			r.Bandwidth, r.BandwidthRCM,
			float64(r.CSRNs)/1e3, float64(r.SellNs)/1e3,
			float64(r.CSRRCMNs)/1e3, float64(r.SellRCMNs)/1e3,
			r.Selected, r.SelectedVsCSR, num)
	}
	s := res.Summary
	fmt.Fprintf(w, "\nselector wins:        %d/%d matrices (%.0f%%)\n",
		s.SelectedWins, s.Problems, s.SelectedWinFraction*100)
	fmt.Fprintf(w, "selected vs csr:      worst %.2fx, mean %.2fx\n",
		s.WorstSelectedVsCSR, s.MeanSelectedVsCSR)
	fmt.Fprintf(w, "selector efficiency:  worst %.2fx of measured optimum\n", s.WorstSelectorEff)
	fmt.Fprintf(w, "numerics identical:   %v\n", s.NumericsIdentical)
}
