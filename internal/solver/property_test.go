package solver

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"spcg/internal/basis"
	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// TestAllSolversSolveRandomSPDQuick is the cross-solver property test: for
// random SPD systems with prescribed spectra and random right-hand sides,
// every solver must deliver A·x ≈ b.
func TestAllSolversSolveRandomSPDQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + rng.Intn(80)
		cond := 10 + rng.Float64()*1e3
		spec := sparse.GeometricSpectrum(n, 0.5, cond)
		a := sparse.SPDWithSpectrum(spec, 3*n, seed)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		m, err := precond.NewJacobi(a)
		if err != nil {
			// Rotations can push a diagonal entry non-positive only if the
			// matrix were not SPD; treat as generator failure.
			return false
		}
		s := 2 + rng.Intn(4)
		opts := Options{S: s, Basis: basis.Chebyshev, Tol: 1e-8, MaxIterations: 4000, Criterion: TrueResidual2Norm}
		// Per-solver tolerances follow the documented attainable-accuracy
		// ordering (DESIGN.md): the block-Gram (sPCG) and three-term
		// (CA-PCG3) formulations stagnate earlier than the two-term methods.
		runs := []struct {
			run solverFunc
			tol float64
		}{
			{PCG, 1e-8}, {PCG3, 1e-7}, {SPCG, 1e-5},
			{CAPCG, 1e-8}, {CAPCG3, 1e-5}, {SPCGAdaptive, 1e-5},
		}
		for ri, rc := range runs {
			run := rc.run
			opts.Tol = rc.tol
			x, stats, err := run(a, m, b, opts)
			if err != nil {
				t.Logf("seed %d solver %d err: %v", seed, ri, err)
				return false
			}
			if !stats.Converged {
				t.Logf("seed %d solver %d s=%d n=%d cond=%.0f: rel %v breakdown %v", seed, ri, s, n, cond, stats.FinalRelative, stats.Breakdown)
				return false
			}
			ax := make([]float64, n)
			a.MulVec(ax, x)
			diff := make([]float64, n)
			vec.Sub(diff, ax, b)
			if vec.Norm2(diff) > 100*rc.tol*vec.Norm2(b) {
				return false
			}
		}
		// sPCGmon is the numerically weakest variant (monomial only): run it
		// at a small fixed s where Chronopoulos & Gear report stability.
		opts.S = 3
		opts.Tol = 1e-5
		_, stats, err := SPCGMon(a, m, b, opts)
		if err != nil || !stats.Converged {
			t.Logf("seed %d spcgmon: %v / %+v", seed, err, stats)
			return false
		}
		return true
	}
	// Fixed generator: the property must hold on these instances forever;
	// fresh random seeds belong in fuzzing, not CI.
	if err := quick.Check(f, &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

type solverFunc = func(*sparse.CSR, precond.Interface, []float64, Options) ([]float64, *Stats, error)

func TestCriterionStrings(t *testing.T) {
	if TrueResidual2Norm.String() != "true-2norm" ||
		RecursiveResidual2Norm.String() != "recursive-2norm" ||
		RecursiveResidualMNorm.String() != "recursive-mnorm" {
		t.Fatal("criterion names changed")
	}
	if Criterion(42).String() != "solver.Criterion(42)" {
		t.Fatal("unknown criterion formatting")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.S != 10 || o.Tol != 1e-9 || o.MaxIterations != 12000 {
		t.Fatalf("defaults = %+v", o)
	}
	o = Options{S: 3, Tol: 1e-4, MaxIterations: 7}.withDefaults()
	if o.S != 3 || o.Tol != 1e-4 || o.MaxIterations != 7 {
		t.Fatal("explicit values overridden")
	}
}

func TestBreakdownErrorWrapping(t *testing.T) {
	// Indefinite matrix: PCG must report a wrapped ErrBreakdown.
	coo := sparse.NewCOO(4)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, -1)
	coo.Add(2, 2, 1)
	coo.Add(3, 3, 1)
	a := coo.ToCSR()
	b := []float64{1, 1, 1, 1}
	_, stats, err := PCG(a, nil, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Converged {
		t.Fatal("indefinite system reported converged")
	}
	if stats.Breakdown == nil || !errors.Is(stats.Breakdown, ErrBreakdown) {
		t.Fatalf("breakdown = %v, want wrapped ErrBreakdown", stats.Breakdown)
	}
}

func TestSStepX0(t *testing.T) {
	// Nonzero initial guesses must be honored by every s-step solver.
	a := sparse.Poisson2D(12, 12)
	b, xTrue := testProblem(a)
	x0 := make([]float64, a.Dim())
	for i := range x0 {
		x0[i] = xTrue[i] * 0.9 // start close to the solution
	}
	for _, run := range []solverFunc{SPCG, SPCGMon, CAPCG, CAPCG3} {
		x, stats, err := run(a, nil, b, Options{S: 3, Basis: basis.Chebyshev, X0: x0, Tol: 1e-9, Criterion: TrueResidual2Norm})
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Converged {
			t.Fatalf("did not converge from x0: %+v", stats.Breakdown)
		}
		if e := solutionError(x, xTrue); e > 1e-6 {
			t.Fatalf("solution error %v", e)
		}
	}
}
