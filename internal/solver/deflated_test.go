package solver

import (
	"math"
	"testing"

	"spcg/internal/eig"
	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// lowModes returns the k analytically known lowest eigenvectors of the 1D
// Poisson matrix: v_k(i) = sin(kπ(i+1)/(n+1)).
func lowModes(n, k int) *vec.Block {
	w := vec.NewBlock(n, k)
	for j := 1; j <= k; j++ {
		col := w.Col(j - 1)
		for i := 0; i < n; i++ {
			col[i] = math.Sin(float64(j) * math.Pi * float64(i+1) / float64(n+1))
		}
	}
	return w
}

func TestDeflatedPCGRemovesLowModes(t *testing.T) {
	// The canonical deflation scenario: a spectrum with a handful of tiny
	// outlier eigenvalues below a tight cluster. Plain CG must resolve the
	// outliers (κ = 2·10⁴); deflating their (known) eigenvectors leaves
	// κ_eff = 2 and collapses the iteration count.
	n := 400
	coo := sparse.NewCOO(n)
	for i := 0; i < n; i++ {
		switch {
		case i < 4:
			coo.Add(i, i, 1e-4*float64(i+1)) // outliers
		default:
			coo.Add(i, i, 1+float64(i)/float64(n)) // cluster [1, 2)
		}
	}
	a := coo.ToCSR()
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 // content on every eigenvector
	}
	_, plain, err := PCG(a, nil, b, Options{Tol: 1e-9, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	// Deflate the four outlier eigenvectors (unit vectors for a diagonal A).
	w := vec.NewBlock(n, 4)
	for j := 0; j < 4; j++ {
		w.Col(j)[j] = 1
	}
	x, defl, err := DeflatedPCG(a, nil, b, w, Options{Tol: 1e-9, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if !defl.Converged {
		t.Fatalf("did not converge: %v", defl.Breakdown)
	}
	// Verify the full solution including the deflated component.
	for i := 0; i < n; i++ {
		want := b[i] / a.At(i, i)
		if math.Abs(x[i]-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want)
		}
	}
	if defl.TrueRelResidual > 1e-8 {
		t.Fatalf("true residual %v", defl.TrueRelResidual)
	}
	if defl.Iterations*2 > plain.Iterations {
		t.Fatalf("deflation barely helped: %d vs plain %d iterations", defl.Iterations, plain.Iterations)
	}
}

func TestDeflatedPCGWithRitzVectors(t *testing.T) {
	// Practical use: deflate approximate modes. Even imperfect vectors must
	// not break correctness.
	a := sparse.Poisson2D(16, 16)
	b, xTrue := testProblem(a)
	m, _ := precond.NewJacobi(a)
	// Cheap approximations of low modes: a few inverse-power-like smoothing
	// passes on random vectors would be ideal; constant + linear ramps are
	// crude low-frequency stand-ins.
	n := a.Dim()
	w := vec.NewBlock(n, 2)
	for i := 0; i < n; i++ {
		w.Col(0)[i] = 1
		w.Col(1)[i] = float64(i) / float64(n)
	}
	x, st, err := DeflatedPCG(a, m, b, w, Options{Tol: 1e-9, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("did not converge: %v", st.Breakdown)
	}
	if e := solutionError(x, xTrue); e > 1e-6 {
		t.Fatalf("solution error %v", e)
	}
}

func TestDeflatedPCGEmptyBlockFallsBack(t *testing.T) {
	a := sparse.Poisson1D(40)
	b, xTrue := testProblem(a)
	x, st, err := DeflatedPCG(a, nil, b, nil, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("fallback PCG did not converge")
	}
	if e := solutionError(x, xTrue); e > 1e-7 {
		t.Fatalf("solution error %v", e)
	}
}

func TestDeflatedPCGValidation(t *testing.T) {
	a := sparse.Poisson1D(20)
	w := lowModes(20, 2)
	if _, _, err := DeflatedPCG(a, nil, make([]float64, 3), w, Options{}); err == nil {
		t.Fatal("bad rhs accepted")
	}
	if _, _, err := DeflatedPCG(a, nil, make([]float64, 20), lowModes(10, 2), Options{}); err == nil {
		t.Fatal("mismatched deflation block accepted")
	}
	if _, _, err := DeflatedPCG(a, nil, make([]float64, 20), w, Options{X0: make([]float64, 20)}); err == nil {
		t.Fatal("x0 accepted")
	}
	// Dependent deflation vectors → WᵀAW singular → clean error.
	dup := vec.NewBlock(20, 2)
	for i := 0; i < 20; i++ {
		dup.Col(0)[i] = 1
		dup.Col(1)[i] = 1
	}
	if _, _, err := DeflatedPCG(a, nil, make([]float64, 20), dup, Options{}); err == nil {
		t.Fatal("dependent deflation vectors accepted")
	}
}

func TestDeflatedPCGWithLanczosPairs(t *testing.T) {
	// The intended pipeline (paper ref. [4]): harvest low Ritz vectors with
	// Lanczos, deflate them, iterate less. Deflation only pays when the
	// harvested pairs are converged, which needs separated target
	// eigenvalues — the outlier construction of TestDeflatedPCGRemovesLowModes
	// rotated by a random similarity so the eigenvectors are NOT unit
	// vectors and Lanczos must genuinely find them.
	n := 300
	spec := make([]float64, n)
	for i := range spec {
		switch {
		case i < 3:
			spec[i] = 1e-4 * float64(i+1)
		default:
			spec[i] = 1 + float64(i)/float64(n)
		}
	}
	a := sparse.SPDWithSpectrum(spec, 2*n, 77)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	_, plain, err := PCG(a, nil, b, Options{Tol: 1e-9, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := eig.Lanczos(a, 80, 3, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rp.Residuals {
		if r > 1e-8 {
			t.Fatalf("Ritz pair %d not converged (residual %v); test premise broken", i, r)
		}
	}
	x, defl, err := DeflatedPCG(a, nil, b, rp.Vectors, Options{Tol: 1e-9, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if !defl.Converged {
		t.Fatalf("did not converge: %v", defl.Breakdown)
	}
	if defl.TrueRelResidual > 1e-8 {
		t.Fatalf("true residual %v", defl.TrueRelResidual)
	}
	// Verify A·x = b directly.
	ax := make([]float64, n)
	a.MulVec(ax, x)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-6 {
			t.Fatalf("residual entry %d = %v", i, ax[i]-b[i])
		}
	}
	if defl.Iterations*2 > plain.Iterations {
		t.Fatalf("Lanczos deflation did not help enough: %d vs plain %d", defl.Iterations, plain.Iterations)
	}
}
