package sparse

import (
	"sync"
	"testing"
)

// TestDiagMemoizedAndInvalidated: Diag caches its result, hands out private
// copies, and the cache drops on the two value-mutating operations.
func TestDiagMemoizedAndInvalidated(t *testing.T) {
	a := Poisson1D(6)
	d1 := a.Diag()
	d1[0] = 999 // callers own their copy; the cache must not see this
	d2 := a.Diag()
	if d2[0] != 2 {
		t.Fatalf("cached diag corrupted by caller mutation: %v", d2[0])
	}
	a.AddDiag(1)
	if d := a.Diag(); d[0] != 3 {
		t.Fatalf("diag after AddDiag = %v, want 3 (stale cache?)", d[0])
	}
	a.Scale(2)
	if d := a.Diag(); d[0] != 6 {
		t.Fatalf("diag after Scale = %v, want 6 (stale cache?)", d[0])
	}
}

// TestMaxRowNNZMemoized: the memo agrees with a direct scan and row lengths
// are immutable, so Scale/AddDiag need not (and do not) invalidate it.
func TestMaxRowNNZMemoized(t *testing.T) {
	a := Poisson2D(7, 5)
	want := 0
	for i := 0; i < a.Dim(); i++ {
		if l := a.RowNNZ(i); l > want {
			want = l
		}
	}
	if got := a.MaxRowNNZ(); got != want {
		t.Fatalf("MaxRowNNZ = %d, want %d", got, want)
	}
	a.Scale(3)
	a.AddDiag(0.5)
	if got := a.MaxRowNNZ(); got != want {
		t.Fatalf("MaxRowNNZ after mutation = %d, want %d", got, want)
	}
	// Empty matrix edge case: max+1 encoding must not confuse 0 with unknown.
	empty := NewCOO(3).ToCSR()
	if got := empty.MaxRowNNZ(); got != 0 {
		t.Fatalf("empty MaxRowNNZ = %d", got)
	}
	if got := empty.MaxRowNNZ(); got != 0 {
		t.Fatalf("empty MaxRowNNZ (cached) = %d", got)
	}
}

// TestDiagConcurrentReads hammers the memoized getters from many goroutines
// so `go test -race` verifies the atomic caching scheme.
func TestDiagConcurrentReads(t *testing.T) {
	a := Poisson2D(30, 30)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				d := a.Diag()
				if d[0] != 4 {
					t.Errorf("diag[0] = %v", d[0])
					return
				}
				if a.MaxRowNNZ() != 5 {
					t.Errorf("MaxRowNNZ = %d", a.MaxRowNNZ())
					return
				}
			}
		}()
	}
	wg.Wait()
}
