package service

import (
	"container/list"
	"sync"

	"spcg/internal/sparse"
)

// formatPlan is one ready-to-serve storage combo for a matrix: the CSR in
// the solve ordering (RCM-permuted when perm is set), the SELL conversion
// when that format was chosen (nil means the CSR itself is the operator),
// and the selector evidence. Solves permute the right-hand side with perm,
// run on mat/op, and un-permute the solution before anything leaves the
// daemon.
type formatPlan struct {
	name   string // "csr", "sell", "csr+rcm", "sell+rcm"
	choice sparse.FormatChoice
	mat    *sparse.CSR
	op     sparse.Matrix // nil ⇒ mat is the operator
	perm   []int         // nil ⇒ natural ordering
}

// order returns the setup-cache ordering tag: preconditioners and spectral
// estimates built on the permuted matrix must never be served for the
// natural ordering (or vice versa), so the tag joins the cache key.
func (p *formatPlan) order() string {
	if p.perm != nil {
		return "rcm"
	}
	return ""
}

// operator returns the matrix the solver's hot path should read.
func (p *formatPlan) operator() sparse.Matrix {
	if p.op != nil {
		return p.op
	}
	return p.mat
}

// formatEntry caches the per-fingerprint storage state: the selector's
// one-time decision and every combo built so far (an autotuned override can
// demand a different combo than the selector chose; both stay resident so
// the conversion cost is paid once per process lifetime, LRU aside).
type formatEntry struct {
	mu     sync.Mutex
	choice *sparse.FormatChoice
	perm   []int       // RCM permutation from the selector run (may back combos)
	rcmMat *sparse.CSR // P·A·Pᵀ, shared by the csr+rcm and sell+rcm combos
	combos map[string]*formatPlan
}

// formatCache is the LRU of formatEntries, keyed by matrix fingerprint —
// the same bounding pattern as setupCache.
type formatCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[uint64]*list.Element
	met   *metrics
}

type formatItem struct {
	fp    uint64
	entry *formatEntry
}

func newFormatCache(max int, met *metrics) *formatCache {
	if max < 1 {
		max = 1
	}
	return &formatCache{max: max, ll: list.New(), items: map[uint64]*list.Element{}, met: met}
}

func (c *formatCache) entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *formatCache) get(fp uint64) *formatEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[fp]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*formatItem).entry
	}
	entry := &formatEntry{combos: map[string]*formatPlan{}}
	el := c.ll.PushFront(&formatItem{fp: fp, entry: entry})
	c.items[fp] = el
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*formatItem).fp)
	}
	return entry
}

// resolve returns the storage plan for a matrix. want names an explicit
// combo (a tuned candidate's Format pin); empty means the format selector
// decides — its measured-probe decision runs once per fingerprint and is
// cached. Unknown want values fall back to the selector rather than
// failing the request: a stale store entry must not make a matrix
// unservable.
func (c *formatCache) resolve(a *sparse.CSR, fp uint64, want string) *formatPlan {
	entry := c.get(fp)
	entry.mu.Lock()
	defer entry.mu.Unlock()

	name := ""
	if _, _, ok := sparse.FormatByName(want); ok && want != "" {
		name = want
	}
	if name == "" {
		if entry.choice == nil {
			choice, perm := sparse.ChooseFormat(a)
			entry.choice = &choice
			entry.perm = perm
		}
		name = entry.choice.Name()
	}
	if plan, ok := entry.combos[name]; ok {
		return plan
	}

	format, reorder, _ := sparse.FormatByName(name)
	plan := &formatPlan{name: name, mat: a}
	if entry.choice != nil {
		plan.choice = *entry.choice
	}
	if reorder {
		if entry.perm == nil {
			entry.perm = sparse.RCM(a)
		}
		plan.perm = entry.perm
		// The permuted CSR is shared between the csr+rcm and sell+rcm combos,
		// whichever is built first.
		if entry.rcmMat == nil {
			entry.rcmMat = sparse.Permute(a, entry.perm)
		}
		plan.mat = entry.rcmMat
	}
	if format == "sell" {
		plan.op = sparse.SELLFromCSR(plan.mat, 0, 0)
		if c.met != nil {
			c.met.formatConversions.Inc()
		}
	}
	entry.combos[name] = plan
	return plan
}

// countServe bumps the per-format serving counters for one solve running on
// the given plan.
func (m *metrics) countServe(plan *formatPlan) {
	if plan.op != nil {
		m.formatSellSolves.Inc()
	} else {
		m.formatCSRSolves.Inc()
	}
	if plan.perm != nil {
		m.formatRCMSolves.Inc()
	}
}
