package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FloatcmpConfig targets the floatcmp analyzer.
type FloatcmpConfig struct {
	// AllowFiles are path suffixes of files exempted entirely — the
	// exact-parity tests whose whole point is bitwise equality of floats
	// (fused-vs-naive, SELL-vs-CSR, replay determinism).
	AllowFiles []string
}

// Floatcmp flags == and != between floating-point (or complex) operands.
// Exact float equality is almost always a rounding-fragile bug; the two
// legitimate uses in this codebase are carved out explicitly: comparisons
// against an exact zero (breakdown guards like den == 0 test "this value was
// never produced", a bitwise-meaningful condition), and the allowlisted
// exact-parity test files whose purpose is bitwise reproduction.
func Floatcmp(cfg FloatcmpConfig) *Analyzer {
	a := &Analyzer{
		Name: "floatcmp",
		Doc:  "no ==/!= on floats outside zero guards and exact-parity test files",
	}
	a.Run = func(p *Pass) {
		for _, f := range p.Pkg.Files {
			name := p.Pkg.Filename(f.Pos())
			if allowedFile(name, cfg.AllowFiles) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				xt, yt := p.Pkg.Info.Types[be.X], p.Pkg.Info.Types[be.Y]
				if !isFloatish(xt.Type) && !isFloatish(yt.Type) {
					return true
				}
				// Exact-zero guards are idiomatic breakdown/sentinel checks.
				if isZeroConst(xt) || isZeroConst(yt) {
					return true
				}
				// Both sides constant: decided at compile time.
				if xt.Value != nil && yt.Value != nil {
					return true
				}
				p.Reportf(be.OpPos, "floating-point %s comparison; compare with a tolerance, or allowlist the file if it asserts exact parity", be.Op)
				return true
			})
		}
	}
	return a
}

func allowedFile(name string, suffixes []string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

func isFloatish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float, constant.Complex:
		return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
	}
	return false
}
