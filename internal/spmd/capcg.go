package spmd

import (
	"fmt"
	"math"

	"spcg/internal/basis"
	"spcg/internal/dense"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// CAPCGJacobi solves A·x = b with Toledo's CA-PCG executed by p real SPMD
// ranks: two matrix-powers blocks per outer iteration (2s−1 halo exchanges),
// one (2s+1)²-value collective for the Gram matrix, and the s inner
// iterations run redundantly on every rank in the changed basis — the
// communication pattern of paper Algorithm 3, with real messages.
func CAPCGJacobi(a *sparse.CSR, b []float64, p, s int, params *basis.Params, tol float64, maxIters int) (*Result, error) {
	n := a.Dim()
	if len(b) != n {
		return nil, fmt.Errorf("spmd: rhs length %d != %d", len(b), n)
	}
	if s < 1 {
		return nil, fmt.Errorf("spmd: s = %d < 1", s)
	}
	if params == nil || params.Degree() < s {
		return nil, fmt.Errorf("spmd: basis params missing or degree < s")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIters <= 0 {
		maxIters = 10 * n
	}
	locals, err := Distribute(a, p)
	if err != nil {
		return nil, err
	}
	for _, lm := range locals {
		for i, d := range lm.DiagLocal() {
			if d <= 0 {
				return nil, fmt.Errorf("spmd: non-positive diagonal at row %d", lm.Lo+i)
			}
		}
	}
	bMat := params.CAPCGChangeOfBasis(s)
	dim := 2*s + 1

	res := &Result{X: make([]float64, n)}
	iters := make([]int, p)
	conv := make([]bool, p)
	reduces := make([]int, p)
	errs := make([]error, p)

	w := NewWorld(p)
	runErr := w.RunE(func(rk *Rank) {
		lm := locals[rk.ID]
		nl := lm.NLocal()
		invD := lm.DiagLocal()
		for i := range invD {
			invD[i] = 1 / invD[i]
		}
		applyM := func(dst, src []float64) {
			for i := range dst {
				dst[i] = invD[i] * src[i]
			}
		}
		// mpkLocal fills S (and its preconditioned companion U) column by
		// column with one halo exchange per new column.
		z := make([]float64, nl)
		mpkLocal := func(S, U *vec.Block, w0, u0 []float64) {
			vec.Copy(S.Col(0), w0)
			vec.Copy(U.Col(0), u0)
			deg := S.S() - 1
			for l := 0; l < deg; l++ {
				lm.SpMV(rk, z, U.Col(l))
				var prev []float64
				var mu float64
				if l > 0 {
					prev = S.Col(l - 1)
					mu = params.Mu[l-1]
				}
				vec.Threeterm(S.Col(l+1), z, params.Theta[l], S.Col(l), mu, prev, params.Gamma[l])
				if l+1 < U.S() {
					applyM(U.Col(l+1), S.Col(l+1))
				}
			}
			if U.S() == S.S() {
				applyM(U.Col(U.S()-1), S.Col(S.S()-1))
			}
		}

		x := make([]float64, nl)
		r := append([]float64(nil), b[lm.Lo:lm.Hi]...)
		u := make([]float64, nl)
		q := append([]float64(nil), r...)
		pv := make([]float64, nl)
		applyM(u, r)
		copy(pv, u)

		qBlock := vec.NewBlock(nl, s+1)
		pBlock := vec.NewBlock(nl, s+1)
		rBlock := vec.NewBlock(nl, s)
		uBlock := vec.NewBlock(nl, s)
		y := &vec.Block{N: nl, Cols: append(append([][]float64{}, qBlock.Cols...), rBlock.Cols...)}
		zB := &vec.Block{N: nl, Cols: append(append([][]float64{}, pBlock.Cols...), uBlock.Cols...)}

		pc := make([]float64, dim)
		rc := make([]float64, dim)
		xc := make([]float64, dim)
		bp := make([]float64, dim)
		tmp := make([]float64, dim)

		rho0 := -1.0
		maxOuter := (maxIters + s - 1) / s
		for k := 0; k <= maxOuter; k++ {
			var localRho float64
			for i := range r {
				localRho += r[i] * u[i]
			}
			reduces[rk.ID]++
			rho := rk.Allreduce([]float64{localRho})[0]
			if rho < 0 || math.IsNaN(rho) {
				errs[rk.ID] = fmt.Errorf("spmd: rᵀM⁻¹r = %v", rho)
				return
			}
			if rho0 < 0 {
				rho0 = rho
			}
			if math.Sqrt(rho/rho0) <= tol {
				conv[rk.ID] = true
				break
			}
			if k == maxOuter {
				break
			}

			mpkLocal(qBlock, pBlock, q, pv)
			if s >= 2 {
				mpkLocal(rBlock, uBlock, r, u)
			} else {
				vec.Copy(rBlock.Col(0), r)
				vec.Copy(uBlock.Col(0), u)
			}

			// The single big collective: G = ZᵀY.
			reduces[rk.ID]++
			g := dense.FromRowMajor(dim, dim, rk.Allreduce(vec.Gram(zB, y)))

			// Inner iterations in the changed basis (redundant per rank).
			for i := range pc {
				pc[i], rc[i], xc[i] = 0, 0, 0
			}
			pc[0] = 1
			rc[s+1] = 1
			rGr := quadFormLocal(g, rc, tmp)
			for j := 0; j < s; j++ {
				matVecLocal(bMat, pc, bp)
				den := bilinearLocal(g, pc, bp, tmp)
				if den <= 0 || math.IsNaN(den) {
					errs[rk.ID] = fmt.Errorf("spmd: p'ᵀGBp' = %v", den)
					return
				}
				alpha := rGr / den
				for i := range xc {
					xc[i] += alpha * pc[i]
					rc[i] -= alpha * bp[i]
				}
				rGrNew := quadFormLocal(g, rc, tmp)
				if rGrNew < 0 || math.IsNaN(rGrNew) {
					errs[rk.ID] = fmt.Errorf("spmd: r'ᵀGr' = %v", rGrNew)
					return
				}
				beta := rGrNew / rGr
				rGr = rGrNew
				for i := range pc {
					pc[i] = rc[i] + beta*pc[i]
				}
			}

			// Recovery (local, no communication).
			y.MulVec(q, pc)
			y.MulVec(r, rc)
			zB.MulVec(pv, pc)
			zB.MulVec(u, rc)
			zB.MulVecAdd(x, xc)
			iters[rk.ID] = (k + 1) * s
		}
		copy(res.X[lm.Lo:lm.Hi], x)
	})
	if runErr != nil {
		return nil, runErr
	}

	for r := 0; r < p; r++ {
		if errs[r] != nil {
			return nil, fmt.Errorf("spmd: rank %d: %w", r, errs[r])
		}
	}
	res.Iterations = iters[0]
	res.Converged = conv[0]
	res.Allreduces = reduces[0]
	for r := 1; r < p; r++ {
		if iters[r] != iters[0] || conv[r] != conv[0] {
			return nil, fmt.Errorf("spmd: ranks diverged in control flow")
		}
	}
	return res, nil
}

func matVecLocal(m *dense.Mat, v, dst []float64) {
	for i := 0; i < m.R; i++ {
		var sum float64
		row := m.Data[i*m.C : (i+1)*m.C]
		for j, vj := range v {
			sum += row[j] * vj
		}
		dst[i] = sum
	}
}

func quadFormLocal(g *dense.Mat, v, tmp []float64) float64 {
	matVecLocal(g, v, tmp)
	var sum float64
	for i, vi := range v {
		sum += vi * tmp[i]
	}
	return sum
}

func bilinearLocal(g *dense.Mat, a, b, tmp []float64) float64 {
	matVecLocal(g, b, tmp)
	var sum float64
	for i, ai := range a {
		sum += ai * tmp[i]
	}
	return sum
}
