// Package detgood is deterministic: slice iteration only and a seeded local
// generator. The fixture test asserts the analyzer stays silent, in
// particular on the rand.New/rand.NewSource constructors.
package detgood

import "math/rand"

// Sum iterates a slice in index order.
func Sum(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// Draw uses a generator seeded by the caller — reproducible in seed.
func Draw(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
