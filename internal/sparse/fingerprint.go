package sparse

import "math"

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// Fingerprint returns an FNV-1a content hash of the matrix: the dimension,
// the row pointers, the column indices and the bit patterns of the values,
// in storage order. Two CSR matrices have equal fingerprints iff they store
// the same entries in the same layout (up to hash collision), which makes
// the fingerprint a stable cache key for per-matrix setup state
// (preconditioners, spectral estimates) shared across solve requests.
//
// The hash covers no derived or mutable state, so it must be recomputed
// after any in-place mutation (Scale, AddDiag). It depends only on exported
// fields and is safe to call concurrently with other readers.
func (a *CSR) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	h = fnvUint64(h, uint64(a.N))
	for _, p := range a.RowPtr {
		h = fnvUint64(h, uint64(p))
	}
	for _, j := range a.ColIdx {
		h = fnvUint64(h, uint64(j))
	}
	for _, v := range a.Val {
		h = fnvUint64(h, math.Float64bits(v))
	}
	return h
}

// fnvUint64 folds the 8 bytes of v (little-endian) into the FNV-1a state.
func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}
