package service

import (
	"container/list"
	"sync"

	"spcg/internal/eig"
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

// setupKey identifies the expensive per-matrix setup state: the matrix
// content (by fingerprint), the canonical preconditioner spec, and the
// operator ordering ("" natural, "rcm" reordered — a preconditioner built
// on P·A·Pᵀ must never be served for A, even though the fingerprint is the
// same). The spectral estimate of M⁻¹A is stored on the same entry because
// it depends on exactly these inputs.
type setupKey struct {
	fp    uint64
	prec  string
	order string
}

// setupEntry holds (lazily built) reusable solver setup for one key. The
// entry-level mutex serializes construction so that concurrent first
// requests build the preconditioner once; after construction the stored
// values are immutable and shared freely (see the precond package's
// concurrency contract).
type setupEntry struct {
	mu       sync.Mutex
	prec     precond.Interface
	precErr  error
	spectrum *eig.Estimate
	specErr  error
}

// preconditioner returns the entry's preconditioner, building it on first use.
// Spec parsing and construction live in precond.Parse / precond.Spec.Build so
// the autotuner and experiment harness share the exact same semantics.
func (e *setupEntry) preconditioner(a *sparse.CSR, spec precond.Spec) (precond.Interface, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.prec != nil || e.precErr != nil {
		return e.prec, e.precErr
	}
	e.prec, e.precErr = spec.Build(a)
	return e.prec, e.precErr
}

// spectrumFor returns the Ritz estimate of M⁻¹A for the entry's
// preconditioner, computing it once (the paper's "a few iterations of
// standard PCG" setup step, here amortized across all requests that hit the
// entry).
func (e *setupEntry) spectrumFor(a *sparse.CSR, spec precond.Spec, s int) (*eig.Estimate, error) {
	m, err := e.preconditioner(a, spec)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.spectrum != nil || e.specErr != nil {
		return e.spectrum, e.specErr
	}
	iters := 2 * s
	if iters < 20 {
		iters = 20
	}
	var applyM func(dst, src []float64)
	if m != nil {
		applyM = m.Apply
	}
	e.spectrum, e.specErr = eig.RitzFromPCG(a, applyM, eig.Options{Iterations: iters})
	return e.spectrum, e.specErr
}

// setupCache is the LRU cache of setupEntries. A get that finds the key
// counts as a hit even if the entry is still being built by another
// goroutine — the expensive work is shared either way.
type setupCache struct {
	mu     sync.Mutex
	max    int
	ll     *list.List // front = most recently used; values are *cacheItem
	items  map[setupKey]*list.Element
	hits   int64
	misses int64
}

type cacheItem struct {
	key   setupKey
	entry *setupEntry
}

func newSetupCache(max int) *setupCache {
	if max < 1 {
		max = 1
	}
	return &setupCache{max: max, ll: list.New(), items: map[setupKey]*list.Element{}}
}

// get returns the entry for key, creating (and possibly evicting) as needed.
// The boolean reports whether this was a cache hit.
func (c *setupCache) get(key setupKey) (*setupEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheItem).entry, true
	}
	c.misses++
	entry := &setupEntry{}
	el := c.ll.PushFront(&cacheItem{key: key, entry: entry})
	c.items[key] = el
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheItem).key)
	}
	return entry, false
}

func (c *setupCache) stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
