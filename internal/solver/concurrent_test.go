package solver

import (
	"sync"
	"testing"

	"spcg/internal/basis"
	"spcg/internal/eig"
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

// TestConcurrentSolvesShareState enforces the concurrency contract the solve
// service depends on: one *sparse.CSR, one preconditioner instance of every
// type, and one *eig.Estimate may be shared by many simultaneous solver
// goroutines. The test is meaningful under -race (CI runs it there): any
// write to shared state during a solve is a hard failure.
//
// Read-only-safe after construction (verified here): sparse.CSR,
// precond.Identity/Jacobi/Chebyshev/SSOR/IC0/BlockJacobi, eig.Estimate,
// basis.Params. NOT shareable: Options.Tracker and Options.Injector, which
// mutate internal counters — each concurrent run needs its own (the service
// never sets them).
func TestConcurrentSolvesShareState(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	jac, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	est, err := eig.RitzFromPCG(a, jac.Apply, eig.Options{Iterations: 12})
	if err != nil {
		t.Fatal(err)
	}
	cheb, err := precond.NewChebyshev(a, 3, est.LambdaMin, est.LambdaMax)
	if err != nil {
		t.Fatal(err)
	}
	ssor, err := precond.NewSSOR(a, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	ic0, err := precond.NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := precond.NewBlockJacobi(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	precs := []precond.Interface{precond.NewIdentity(a.Dim()), jac, cheb, ssor, ic0, bj}

	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1
	}

	type run struct {
		name  string
		solve solverFunc
	}
	runs := []run{
		{"pcg", PCG},
		{"pcg3", PCG3},
		{"spcg", SPCG},
		{"capcg", CAPCG},
		{"capcg3", CAPCG3},
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(precs)*len(runs)*2)
	for _, m := range precs {
		for _, rn := range runs {
			for rep := 0; rep < 2; rep++ {
				wg.Add(1)
				go func(m precond.Interface, rn run) {
					defer wg.Done()
					// Shared Spectrum: every goroutine reads the same Estimate.
					opts := Options{S: 4, Basis: basis.Chebyshev, Spectrum: est, Tol: 1e-8, MaxIterations: 400}
					_, stats, err := rn.solve(a, m, b, opts)
					if err != nil {
						errs <- err
						return
					}
					if stats.Breakdown != nil && !stats.Converged {
						// Numerical outcome is method/preconditioner dependent;
						// only data races and input errors fail the test.
						t.Logf("%s/%s: breakdown %v (ok)", rn.name, m.Name(), stats.Breakdown)
					}
				}(m, rn)
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent solve error: %v", err)
	}
}
