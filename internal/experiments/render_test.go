package experiments

import (
	"bytes"
	"strings"
	"testing"

	"spcg/internal/perfmodel"
	"spcg/internal/suite"
)

// Render-format pins: cheap synthetic inputs, no solver runs. These keep the
// report layouts stable (EXPERIMENTS.md quotes them verbatim).

func TestRenderTable1Layout(t *testing.T) {
	cost, err := perfmodel.Table1(perfmodel.SPCG, 10)
	if err != nil {
		t.Fatal(err)
	}
	rows := []Table1Row{{Cost: cost, MeasuredMV: 10, MeasuredPrec: 10, MeasuredReductionsPerS: 1}}
	var buf bytes.Buffer
	RenderTable1(&buf, rows, 10)
	out := buf.String()
	for _, want := range []string{"s = 10", "sPCG", "total arb", "756", "1.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderTable2HyphenConvention(t *testing.T) {
	row := Table2Row{
		Name: "demo", Rows: 100, NNZ: 500, PCG: 42, PCGOk: true,
		SPCG:   [2]int{0, 50},
		SPCGOk: [2]bool{false, true},
		Paper:  suite.PaperIters{PCG: 40, SPCGCheb: 50},
	}
	var buf bytes.Buffer
	RenderTable2(&buf, []Table2Row{row}, 10)
	out := buf.String()
	if !strings.Contains(out, "-/50") {
		t.Fatalf("monomial failure not rendered as hyphen:\n%s", out)
	}
	if !strings.Contains(out, "Converged (of 1)") {
		t.Fatalf("summary missing:\n%s", out)
	}
}

func TestRenderTable3Hyphens(t *testing.T) {
	rows := []Table3Row{{Name: "m1", ChebPCGTime: 1.5, ChebSPCG: 1.2}}
	var buf bytes.Buffer
	RenderTable3(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "1.500s") || !strings.Contains(out, "1.20") {
		t.Fatalf("values not rendered:\n%s", out)
	}
	if strings.Count(out, "-") < 5 { // missing entries render as hyphens
		t.Fatalf("hyphens missing:\n%s", out)
	}
}

func TestRenderFig1Knee(t *testing.T) {
	res := &Fig1Result{
		GridDim:     64,
		NodeCounts:  []int{1, 2},
		PCG1Node:    0.5,
		PCGKneeNode: 2,
		Series: []Fig1Series{
			{Solver: "PCG", Speedup: []float64{1, 1.5}},
			{Solver: "sPCG", S: 10, Speedup: []float64{1.1, 2.0}},
		},
	}
	var buf bytes.Buffer
	RenderFig1(&buf, res)
	out := buf.String()
	for _, want := range []string{"64³", "stops scaling at 2 nodes", "sPCG(s=10)", "2.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSummarizeNoDelayRule(t *testing.T) {
	// The paper's bold rule: < 20% overhead OR < s extra iterations.
	rows := []Table2Row{
		{PCG: 100, PCGOk: true, SPCG: [2]int{0, 115}, SPCGOk: [2]bool{false, true}}, // 15% → no delay
		{PCG: 100, PCGOk: true, SPCG: [2]int{0, 130}, SPCGOk: [2]bool{false, true}}, // 30% & +30 → delayed
		{PCG: 4, PCGOk: true, SPCG: [2]int{0, 10}, SPCGOk: [2]bool{false, true}},    // +6 < s → no delay
	}
	sum := Summarize(rows, 10)
	if sum.SPCGCheb != 3 {
		t.Fatalf("SPCGCheb = %d", sum.SPCGCheb)
	}
	if sum.SPCGChebNoDelay != 2 {
		t.Fatalf("SPCGChebNoDelay = %d, want 2", sum.SPCGChebNoDelay)
	}
}
