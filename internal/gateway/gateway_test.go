package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// stub is a scriptable fake spcgd backend. All stubs in a test report the
// same fingerprint per matrix (as real backends would — the fingerprint is
// content-derived), so the test can predict the ring walk.
type stub struct {
	srv *httptest.Server

	mu         sync.Mutex
	healthCode int                                          // 0 = 200
	healthBody string                                       // "" = {"status":"ok"}
	solveFn    func(w http.ResponseWriter, r *http.Request) // nil = default done response
	solveIDs   []string                                     // request_ids seen at /solve
	solves     int
}

func newStub() *stub {
	s := &stub{}
	s.srv = httptest.NewServer(http.HandlerFunc(s.handle))
	return s
}

func (s *stub) handle(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		s.mu.Lock()
		code, body := s.healthCode, s.healthBody
		s.mu.Unlock()
		if code == 0 {
			code = http.StatusOK
		}
		if body == "" {
			body = `{"status":"ok"}`
		}
		w.WriteHeader(code)
		fmt.Fprint(w, body)
	case strings.HasPrefix(r.URL.Path, "/affinity/"):
		name := strings.TrimPrefix(r.URL.Path, "/affinity/")
		// Deterministic content fingerprint shared by every stub.
		fmt.Fprintf(w, `{"matrix":%q,"fingerprint":"%d"}`, name, nameHash(name))
	case r.URL.Path == "/solve":
		var req struct {
			RequestID string `json:"request_id"`
		}
		_ = json.NewDecoder(r.Body).Decode(&req)
		s.mu.Lock()
		s.solves++
		s.solveIDs = append(s.solveIDs, req.RequestID)
		fn := s.solveFn
		s.mu.Unlock()
		if fn != nil {
			fn(w, r)
			return
		}
		fmt.Fprint(w, `{"id":"job-1","state":"done","result":{"converged":true}}`)
	default:
		http.NotFound(w, r)
	}
}

func (s *stub) setSolve(fn func(w http.ResponseWriter, r *http.Request)) {
	s.mu.Lock()
	s.solveFn = fn
	s.mu.Unlock()
}

func (s *stub) setHealth(code int, body string) {
	s.mu.Lock()
	s.healthCode, s.healthBody = code, body
	s.mu.Unlock()
}

func (s *stub) solveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.solves
}

func (s *stub) ids() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.solveIDs...)
}

// newTestGateway builds a gateway over the stubs with a dormant prober
// (tests drive membership via the initial probe and the data path).
func newTestGateway(t *testing.T, stubs ...*stub) *Gateway {
	t.Helper()
	urls := make([]string, len(stubs))
	for i, s := range stubs {
		urls[i] = s.srv.URL
	}
	g, err := New(Config{
		Backends:      urls,
		ProbeInterval: time.Hour,
		RetryBackoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(g.Close)
	return g
}

// orderStubs returns the stubs in the gateway's replica order for a matrix.
func orderStubs(t *testing.T, g *Gateway, matrix string, stubs ...*stub) []*stub {
	t.Helper()
	walk := g.ring.lookup(nameHash(matrix), len(stubs))
	if len(walk) != len(stubs) {
		t.Fatalf("ring walk %v, want %d members", walk, len(stubs))
	}
	byName := map[string]*stub{}
	for _, s := range stubs {
		byName[strings.TrimPrefix(s.srv.URL, "http://")] = s
	}
	out := make([]*stub, len(walk))
	for i, name := range walk {
		out[i] = byName[name]
		if out[i] == nil {
			t.Fatalf("ring member %s is not a stub", name)
		}
	}
	return out
}

func postSolveGW(t *testing.T, g *Gateway, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/solve", strings.NewReader(body))
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	return rec
}

// TestFailoverOnBackendKill kills the primary mid-solve and checks the
// request fails over to the replica, exactly one solve completes, both
// attempts carried the same gateway-stamped request_id (so a backend-side
// dedup would also have collapsed them), and the dead backend leaves the
// ring immediately.
func TestFailoverOnBackendKill(t *testing.T) {
	a, b := newStub(), newStub()
	defer a.srv.Close()
	defer b.srv.Close()
	g := newTestGateway(t, a, b)
	// The stub fingerprint for matrix M is nameHash(M), so the replica walk
	// is predictable before any request is sent.
	order := orderStubs(t, g, "m1", a, b)
	primary, replica := order[0], order[1]

	primary.setSolve(func(w http.ResponseWriter, _ *http.Request) {
		// Simulate a crash mid-solve: kill the TCP connection without a
		// response, which the gateway sees as a transport error (EOF).
		conn, _, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		conn.Close()
	})

	rec := postSolveGW(t, g, `{"matrix":"m1","method":"pcg"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("solve after kill: HTTP %d, body %s", rec.Code, rec.Body.String())
	}
	var st struct {
		State  string `json:"state"`
		Result *struct {
			Converged bool `json:"converged"`
		} `json:"result"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil || st.Result == nil || !st.Result.Converged {
		t.Fatalf("bad failover response: %s", rec.Body.String())
	}
	if got := replica.solveCount(); got != 1 {
		t.Fatalf("replica ran %d solves, want exactly 1 (no duplicate)", got)
	}
	pids, rids := primary.ids(), replica.ids()
	if len(pids) != 1 || len(rids) != 1 || pids[0] == "" || pids[0] != rids[0] {
		t.Fatalf("request_id not preserved across failover: primary %v, replica %v", pids, rids)
	}
	// The dead backend must be off the ring without waiting for the prober.
	var deadStub *backend
	for _, bk := range g.backends {
		if bk.url == primary.srv.URL {
			deadStub = bk
		}
	}
	if deadStub == nil || deadStub.getState() != Dead {
		t.Fatalf("primary not marked dead after transport failure")
	}
	if n := g.ring.members(); n != 1 {
		t.Fatalf("ring has %d members after kill, want 1", n)
	}
	snap := g.snapshot()
	if snap.Failovers != 1 || snap.AffinityMiss != 1 {
		t.Fatalf("failovers=%d misses=%d, want 1/1", snap.Failovers, snap.AffinityMiss)
	}
}

// TestAllBackendsDraining checks that a pool that is entirely draining
// yields 503 + Retry-After on the solve path and on the gateway's own
// /healthz — backpressure, not a hang or a 5xx storm.
func TestAllBackendsDraining(t *testing.T) {
	a, b := newStub(), newStub()
	defer a.srv.Close()
	defer b.srv.Close()
	a.setHealth(http.StatusServiceUnavailable, `{"status":"draining"}`)
	b.setHealth(http.StatusServiceUnavailable, `{"status":"draining"}`)
	g := newTestGateway(t, a, b)

	if n := g.ring.members(); n != 0 {
		t.Fatalf("ring has %d members with all backends draining, want 0", n)
	}
	rec := postSolveGW(t, g, `{"matrix":"m1","method":"pcg"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("solve with drained pool: HTTP %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatalf("503 without Retry-After")
	}
	hreq := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hrec := httptest.NewRecorder()
	g.Handler().ServeHTTP(hrec, hreq)
	if hrec.Code != http.StatusServiceUnavailable || hrec.Header().Get("Retry-After") == "" {
		t.Fatalf("gateway /healthz = HTTP %d (Retry-After %q), want 503 with Retry-After", hrec.Code, hrec.Header().Get("Retry-After"))
	}
	if g.snapshot().Unroutable == 0 {
		t.Fatalf("unroutable counter did not move")
	}
}

// TestSpillOn429 checks saturation handling: one 429 spills to the next
// replica; when the spill budget is exhausted the 429 — including the
// backend's own Retry-After — propagates to the client.
func TestSpillOn429(t *testing.T) {
	a, b := newStub(), newStub()
	defer a.srv.Close()
	defer b.srv.Close()
	g := newTestGateway(t, a, b)
	order := orderStubs(t, g, "m2", a, b)
	primary, replica := order[0], order[1]

	shed := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"queue full"}`)
	}
	primary.setSolve(shed)

	rec := postSolveGW(t, g, `{"matrix":"m2","method":"pcg"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("spilled solve: HTTP %d, body %s", rec.Code, rec.Body.String())
	}
	snap := g.snapshot()
	if snap.Spills != 1 || snap.AffinityMiss != 1 || snap.Shed != 0 {
		t.Fatalf("spills=%d misses=%d shed=%d, want 1/1/0", snap.Spills, snap.AffinityMiss, snap.Shed)
	}
	if replica.solveCount() != 1 {
		t.Fatalf("replica saw %d solves, want 1", replica.solveCount())
	}

	// Saturate the whole walk: the client gets the 429 back, with the
	// backend's Retry-After, and the shed counter moves.
	replica.setSolve(shed)
	rec = postSolveGW(t, g, `{"matrix":"m2","method":"pcg"}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("fully saturated solve: HTTP %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "7" {
		t.Fatalf("propagated Retry-After = %q, want %q", ra, "7")
	}
	if snap = g.snapshot(); snap.Shed != 1 {
		t.Fatalf("shed=%d, want 1", snap.Shed)
	}
}

// TestAffinityConsistency checks repeat requests for the same matrices keep
// landing on the same backend (100% affinity on an unsaturated pool) and
// that different matrices spread across the pool.
func TestAffinityConsistency(t *testing.T) {
	stubs := []*stub{newStub(), newStub(), newStub(), newStub()}
	urls := make([]string, len(stubs))
	for i, s := range stubs {
		defer s.srv.Close()
		urls[i] = s.srv.URL
	}
	g := newTestGateway(t, stubs...)

	matrices := []string{"poisson2d:16", "poisson2d:24", "hubgraph:4096", "aniso2d:30:0.01", "varcoeff2d:40:100"}
	const rounds = 8
	for r := 0; r < rounds; r++ {
		for _, m := range matrices {
			rec := postSolveGW(t, g, fmt.Sprintf(`{"matrix":%q,"method":"pcg"}`, m))
			if rec.Code != http.StatusOK {
				t.Fatalf("solve %s: HTTP %d", m, rec.Code)
			}
		}
	}
	snap := g.snapshot()
	want := int64(rounds * len(matrices))
	if snap.AffinityHits != want || snap.AffinityMiss != 0 {
		t.Fatalf("affinity hits=%d misses=%d, want %d/0", snap.AffinityHits, snap.AffinityMiss, want)
	}
	if snap.AffinityRate != 1.0 {
		t.Fatalf("affinity rate %.3f, want 1.0", snap.AffinityRate)
	}
	// Each stub's solve count must equal rounds × (matrices routed to it):
	// i.e. every matrix is pinned to exactly one backend.
	spread := 0
	for _, s := range stubs {
		n := s.solveCount()
		if n%rounds != 0 {
			t.Fatalf("stub saw %d solves, not a multiple of %d rounds — a matrix moved between backends", n, rounds)
		}
		if n > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("all matrices landed on %d backend(s), want spread across ≥2 of 4", spread)
	}
}

// TestRetryableStatusFailover checks a 503 from a draining primary moves the
// request to the replica, while terminal solver statuses (500) are answers
// and must NOT fail over.
func TestRetryableStatusFailover(t *testing.T) {
	a, b := newStub(), newStub()
	defer a.srv.Close()
	defer b.srv.Close()
	g := newTestGateway(t, a, b)
	order := orderStubs(t, g, "m3", a, b)
	primary, replica := order[0], order[1]

	primary.setSolve(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"shutting down"}`)
	})
	rec := postSolveGW(t, g, `{"matrix":"m3","method":"pcg"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("failover from 503: HTTP %d", rec.Code)
	}
	if replica.solveCount() != 1 {
		t.Fatalf("replica saw %d solves, want 1", replica.solveCount())
	}

	// A 500 is a terminal solver outcome (job failed); re-running it
	// elsewhere would waste a backend on a deterministic failure.
	primary.setSolve(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"id":"job-9","state":"failed","result":{"error":"breakdown"}}`)
	})
	before := replica.solveCount()
	rec = postSolveGW(t, g, `{"matrix":"m3","method":"pcg"}`)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("terminal 500: HTTP %d, want 500 forwarded", rec.Code)
	}
	if replica.solveCount() != before {
		t.Fatalf("500 was retried on the replica — terminal outcomes must not fail over")
	}
}

// TestProbeRecovery checks a dead backend rejoins the ring on the first
// healthy probe and gets exactly its old arc back.
func TestProbeRecovery(t *testing.T) {
	a, b := newStub(), newStub()
	defer a.srv.Close()
	defer b.srv.Close()
	g := newTestGateway(t, a, b)
	sharesBefore := g.ring.shares()

	order := orderStubs(t, g, "m4", a, b)
	primary := order[0]
	primary.setSolve(func(w http.ResponseWriter, _ *http.Request) {
		conn, _, _ := w.(http.Hijacker).Hijack()
		conn.Close()
	})
	if rec := postSolveGW(t, g, `{"matrix":"m4","method":"pcg"}`); rec.Code != http.StatusOK {
		t.Fatalf("failover solve: HTTP %d", rec.Code)
	}
	if g.ring.members() != 1 {
		t.Fatalf("ring members = %d after kill, want 1", g.ring.members())
	}

	// The backend "restarts": probes see it healthy, it rejoins the ring.
	primary.setSolve(nil)
	g.probeOnce()
	if g.ring.members() != 2 {
		t.Fatalf("ring members = %d after recovery probe, want 2", g.ring.members())
	}
	sharesAfter := g.ring.shares()
	for name, s := range sharesBefore {
		if diff := sharesAfter[name] - s; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("share[%s] changed %.6f→%.6f across dead/recover cycle", name, s, sharesAfter[name])
		}
	}
	snap := g.snapshot()
	if snap.BackendsAlive != 2 || snap.BackendsDead != 0 {
		t.Fatalf("alive=%d dead=%d after recovery, want 2/0", snap.BackendsAlive, snap.BackendsDead)
	}
}
