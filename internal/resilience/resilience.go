// Package resilience provides the building blocks the solve service uses to
// survive numerical and operational faults: a progress heartbeat sampled by a
// stagnation watchdog, a per-key circuit breaker with half-open probes, a
// health state machine, a sliding-window rate tracker for load shedding, and
// a panic-capture helper that converts panics into stack-tagged errors.
//
// The package is deliberately free of service types: keys are opaque tuples,
// the watchdog is a plain goroutine over a stop channel, and all types are
// safe for concurrent use. See docs/RESILIENCE.md for how internal/service
// wires these together.
package resilience

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"time"
)

// Heartbeat records solver progress (iteration count + relative criterion
// value) from a solver's Options.OnProgress hook so a watchdog on another
// goroutine can judge whether the solve is still improving. "Improving" means
// the relative value dropped below the best seen so far by at least the
// minImprove fraction; equal-or-slightly-better values bouncing around the
// attainable-accuracy floor do not count, which is exactly the stagnation
// signature the watchdog exists to catch.
type Heartbeat struct {
	mu          sync.Mutex
	lastImprove time.Time
	best        float64
	iterations  int
	relative    float64
	beats       int64
	minImprove  float64
}

// NewHeartbeat creates a heartbeat whose improvement threshold is the given
// fraction (0.01 = a check must beat the best relative value by 1% to count
// as progress; values outside (0,1) fall back to 0.01). The clock starts now:
// a solve that never beats at all stagnates once the window elapses.
func NewHeartbeat(minImprove float64) *Heartbeat {
	if minImprove <= 0 || minImprove >= 1 {
		minImprove = 0.01
	}
	return &Heartbeat{
		lastImprove: time.Now(),
		best:        math.Inf(1),
		minImprove:  minImprove,
	}
}

// Record notes one convergence check. It has the signature of
// solver.Options.OnProgress and is safe to install there directly.
func (h *Heartbeat) Record(iterations int, relative float64) {
	h.mu.Lock()
	h.iterations = iterations
	h.relative = relative
	h.beats++
	if relative < h.best*(1-h.minImprove) {
		h.best = relative
		h.lastImprove = time.Now()
	}
	h.mu.Unlock()
}

// HeartbeatSnapshot is a point-in-time view of a heartbeat.
type HeartbeatSnapshot struct {
	Iterations   int           // last reported iteration count
	Relative     float64       // last reported relative criterion value
	Best         float64       // best (smallest) relative seen; +Inf before the first beat
	Beats        int64         // total checks recorded
	SinceImprove time.Duration // time since the last qualifying improvement
}

// Snapshot returns the current state.
func (h *Heartbeat) Snapshot() HeartbeatSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HeartbeatSnapshot{
		Iterations:   h.iterations,
		Relative:     h.relative,
		Best:         h.best,
		Beats:        h.beats,
		SinceImprove: time.Since(h.lastImprove),
	}
}

// WatchdogConfig tunes a stagnation watch.
type WatchdogConfig struct {
	// Interval is how often the heartbeat is sampled (default 250ms).
	Interval time.Duration
	// Window is how long a solve may go without a qualifying improvement
	// before it is declared stagnated (default 15s).
	Window time.Duration
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 15 * time.Second
	}
	return c
}

// Watch samples hb every cfg.Interval until stop closes. If the time since
// the heartbeat's last improvement reaches cfg.Window, onStagnate is called
// exactly once with the final snapshot and the watch ends. Run it on its own
// goroutine; it never blocks the solver.
func Watch(stop <-chan struct{}, hb *Heartbeat, cfg WatchdogConfig, onStagnate func(HeartbeatSnapshot)) {
	cfg = cfg.withDefaults()
	t := time.NewTicker(cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if snap := hb.Snapshot(); snap.SinceImprove >= cfg.Window {
				onStagnate(snap)
				return
			}
		}
	}
}

// Key identifies one circuit: a (matrix fingerprint, method, s) tuple. Solves
// of the same matrix with a different method or block size fail independently,
// so they trip independently.
type Key struct {
	Fingerprint uint64
	Method      string
	S           int
}

func (k Key) String() string {
	return fmt.Sprintf("%s(s=%d)@%016x", k.Method, k.S, k.Fingerprint)
}

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int

const (
	// BreakerClosed: requests flow normally; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the fast path is disabled until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is in flight; its outcome decides
	// whether the circuit closes again or re-opens for another cooldown.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes the breaker collection.
type BreakerConfig struct {
	// Failures is the number of consecutive failures that opens a circuit
	// (default 3).
	Failures int
	// Cooldown is how long an open circuit waits before admitting a
	// half-open probe (default 30s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures <= 0 {
		c.Failures = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	return c
}

// Transition reports what a Record call did to the circuit.
type Transition int

const (
	// NoTransition: the circuit state did not change category.
	NoTransition Transition = iota
	// Opened: the circuit opened (or a failed probe re-opened it).
	Opened
	// Restored: a success closed a previously open/half-open circuit.
	Restored
)

type breaker struct {
	state    BreakerState
	fails    int
	openedAt time.Time
}

// Breakers is a collection of per-Key circuit breakers. Circuits are created
// lazily on first Record; a Key never recorded is closed by definition.
type Breakers struct {
	mu  sync.Mutex
	cfg BreakerConfig
	m   map[Key]*breaker
}

// NewBreakers creates an empty collection.
func NewBreakers(cfg BreakerConfig) *Breakers {
	return &Breakers{cfg: cfg.withDefaults(), m: make(map[Key]*breaker)}
}

// Allow reports whether a request for key may take its fast path now. When an
// open circuit's cooldown has elapsed, the first Allow admits the caller as
// the half-open probe (probe=true) and subsequent callers are refused until
// the probe's outcome is Recorded.
func (b *Breakers) Allow(key Key, now time.Time) (allowed, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[key]
	if br == nil || br.state == BreakerClosed {
		return true, false
	}
	if br.state == BreakerOpen && now.Sub(br.openedAt) >= b.cfg.Cooldown {
		br.state = BreakerHalfOpen
		return true, true
	}
	return false, false
}

// Peek reports whether a request for key would be allowed now, without
// mutating the circuit: unlike Allow, an open circuit whose cooldown has
// elapsed stays open and its half-open probe slot is not consumed. Advisory
// callers (the autotuner ranking candidate configurations) use Peek so that
// merely *considering* a configuration never spends the probe admission the
// real request path relies on.
func (b *Breakers) Peek(key Key, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[key]
	if br == nil || br.state == BreakerClosed {
		return true
	}
	return br.state == BreakerOpen && now.Sub(br.openedAt) >= b.cfg.Cooldown
}

// Record notes the outcome of a solve that was Allowed for key. A success
// resets the failure count and closes the circuit; a failure increments it,
// opening the circuit after cfg.Failures consecutive failures, and a failed
// half-open probe re-opens immediately for another cooldown.
func (b *Breakers) Record(key Key, success bool, now time.Time) Transition {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[key]
	if br == nil {
		br = &breaker{}
		b.m[key] = br
	}
	if success {
		prev := br.state
		br.state = BreakerClosed
		br.fails = 0
		if prev != BreakerClosed {
			return Restored
		}
		return NoTransition
	}
	switch br.state {
	case BreakerHalfOpen:
		br.state = BreakerOpen
		br.openedAt = now
		return Opened
	case BreakerClosed:
		br.fails++
		if br.fails >= b.cfg.Failures {
			br.state = BreakerOpen
			br.openedAt = now
			return Opened
		}
	case BreakerOpen:
		// A straggler failure from a request admitted before the circuit
		// opened: refresh the cooldown so the probe waits for quiet.
		br.openedAt = now
	}
	return NoTransition
}

// OpenCount reports how many circuits currently deny their fast path
// (open or half-open).
func (b *Breakers) OpenCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, br := range b.m {
		if br.state != BreakerClosed {
			n++
		}
	}
	return n
}

// OpenBreaker describes one non-closed circuit for health reporting.
type OpenBreaker struct {
	Key   Key
	State BreakerState
}

// Open lists the circuits currently denying their fast path.
func (b *Breakers) Open() []OpenBreaker {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []OpenBreaker
	for k, br := range b.m {
		if br.state != BreakerClosed {
			out = append(out, OpenBreaker{Key: k, State: br.state})
		}
	}
	return out
}

// Health is the service-level health state machine.
type Health int

const (
	// Healthy: full service, all circuits closed, no recent shedding.
	Healthy Health = iota
	// Degraded: serving, but some circuits are open or admissions are being
	// shed — clients should expect fallback methods and retry backpressure.
	Degraded
	// Draining: shutting down; no new work is admitted.
	Draining
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Draining:
		return "draining"
	default:
		return "unknown"
	}
}

// RateWindow counts events over a sliding window of one-second buckets, e.g.
// shed admissions for the health state machine. The zero value is unusable;
// use NewRateWindow.
type RateWindow struct {
	mu      sync.Mutex
	buckets []int64
	seconds []int64 // unix second each bucket last counted for
}

// NewRateWindow creates a window spanning the given number of seconds
// (minimum 1).
func NewRateWindow(seconds int) *RateWindow {
	if seconds < 1 {
		seconds = 1
	}
	return &RateWindow{
		buckets: make([]int64, seconds),
		seconds: make([]int64, seconds),
	}
}

// Add counts n events now.
func (w *RateWindow) Add(n int64) {
	now := time.Now().Unix()
	w.mu.Lock()
	i := int(now % int64(len(w.buckets)))
	if w.seconds[i] != now {
		w.seconds[i] = now
		w.buckets[i] = 0
	}
	w.buckets[i] += n
	w.mu.Unlock()
}

// Rate returns the events-per-second average over the window.
func (w *RateWindow) Rate() float64 {
	now := time.Now().Unix()
	horizon := now - int64(len(w.buckets))
	w.mu.Lock()
	var sum int64
	for i := range w.buckets {
		if w.seconds[i] > horizon {
			sum += w.buckets[i]
		}
	}
	w.mu.Unlock()
	return float64(sum) / float64(len(w.buckets))
}

// ErrPanic tags errors produced by Safe from recovered panics.
var ErrPanic = errors.New("resilience: recovered panic")

// maxStackBytes bounds the stack captured into a panic error so a deep panic
// cannot bloat job results or logs.
const maxStackBytes = 4096

// Safe runs fn and converts a panic into an ErrPanic-wrapped error carrying
// the panic value and a truncated stack, so one faulty solve cannot take the
// whole process down.
func Safe(fn func()) (err error) {
	defer func() {
		if p := recover(); p != nil {
			stack := debug.Stack()
			if len(stack) > maxStackBytes {
				stack = stack[:maxStackBytes]
			}
			// When the panic value is an error, wrap it so callers can still
			// match it with errors.Is/As through the ErrPanic envelope (the
			// spmd poison protocol panics with a sentinel error and relies on
			// recovering it by identity).
			if pe, ok := p.(error); ok {
				err = fmt.Errorf("%w: %w\n%s", ErrPanic, pe, stack)
			} else {
				err = fmt.Errorf("%w: %v\n%s", ErrPanic, p, stack)
			}
		}
	}()
	fn()
	return nil
}
