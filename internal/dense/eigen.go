package dense

import (
	"errors"
	"math"
	"sort"
)

// ErrNoConverge is returned when an iterative eigensolver exceeds its
// iteration budget.
var ErrNoConverge = errors.New("dense: eigensolver failed to converge")

// TridiagEigen computes all eigenvalues of the symmetric tridiagonal matrix
// with diagonal d (length n) and off-diagonal e (length n−1) using the
// implicit QL algorithm with Wilkinson shifts. The inputs are not modified;
// eigenvalues are returned in ascending order.
//
// This is the workhorse behind Ritz-value harvesting: the CG/Lanczos process
// yields exactly such a tridiagonal matrix.
func TridiagEigen(d, e []float64) ([]float64, error) {
	n := len(d)
	if len(e) != n-1 && !(n == 0 && len(e) == 0) {
		return nil, errors.New("dense: TridiagEigen needs len(e) == len(d)-1")
	}
	if n == 0 {
		return nil, nil
	}
	dd := append([]float64(nil), d...)
	ee := make([]float64, n)
	copy(ee, e)
	ee[n-1] = 0

	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find small off-diagonal to split.
			m := l
			for ; m < n-1; m++ {
				s := math.Abs(dd[m]) + math.Abs(dd[m+1])
				if math.Abs(ee[m]) <= 1e-16*s {
					break
				}
			}
			if m == l {
				break
			}
			if iter >= 60 {
				return nil, ErrNoConverge
			}
			// Wilkinson shift.
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			g = dd[m] - dd[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					dd[i+1] -= p
					ee[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
			}
			if r == 0 && m-1 >= l {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}
	sort.Float64s(dd)
	return dd, nil
}

// SymEigen computes all eigenvalues of a small symmetric matrix by cyclic
// Jacobi rotations. Used for diagnostics on Gram and basis matrices (their
// conditioning is the paper's explanation for monomial-basis failure).
// Eigenvalues are returned in ascending order.
func SymEigen(a *Mat) ([]float64, error) {
	vals, _, err := symJacobi(a, false)
	return vals, err
}

// SymEigenVec computes eigenvalues (ascending) and the corresponding
// orthonormal eigenvectors (columns of the returned matrix) of a small
// symmetric matrix.
func SymEigenVec(a *Mat) ([]float64, *Mat, error) {
	return symJacobi(a, true)
}

func symJacobi(a *Mat, wantVec bool) ([]float64, *Mat, error) {
	if a.R != a.C {
		return nil, nil, errors.New("dense: SymEigen on non-square matrix")
	}
	n := a.R
	w := a.Clone()
	var v *Mat
	if wantVec {
		v = Eye(n)
	}
	for sweep := 0; sweep < 100; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off <= 1e-30*(1+w.NormFro()*w.NormFro()) {
			vals := make([]float64, n)
			for i := 0; i < n; i++ {
				vals[i] = w.At(i, i)
			}
			if !wantVec {
				sort.Float64s(vals)
				return vals, nil, nil
			}
			// Sort ascending, permuting eigenvector columns alongside.
			order := make([]int, n)
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(x, y int) bool { return vals[order[x]] < vals[order[y]] })
			sv := make([]float64, n)
			pv := NewMat(n, n)
			for col, idx := range order {
				sv[col] = vals[idx]
				for row := 0; row < n; row++ {
					pv.Set(row, col, v.At(row, idx))
				}
			}
			return sv, pv, nil
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Hypot(1, tau))
				} else {
					t = -1 / (-tau + math.Hypot(1, tau))
				}
				c := 1 / math.Hypot(1, t)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				if wantVec {
					for k := 0; k < n; k++ {
						vkp, vkq := v.At(k, p), v.At(k, q)
						v.Set(k, p, c*vkp-s*vkq)
						v.Set(k, q, s*vkp+c*vkq)
					}
				}
			}
		}
	}
	return nil, nil, ErrNoConverge
}

// PseudoSolveSym solves a·x = rhs for a symmetric (possibly numerically
// rank-deficient) matrix via eigendecomposition, zeroing components with
// |λ| ≤ rcond·max|λ|. For the s-step solvers this implements a
// rank-revealing Scalar Work: when the s-step basis degenerates (common
// close to convergence, or with spectrally deficient right-hand sides), the
// block step is taken only in the numerically independent subspace —
// equivalent to locally shrinking s instead of breaking down.
func PseudoSolveSym(a *Mat, rhs []float64, rcond float64) ([]float64, error) {
	if a.R != len(rhs) {
		return nil, errors.New("dense: PseudoSolveSym shape mismatch")
	}
	vals, v, err := SymEigenVec(a)
	if err != nil {
		return nil, err
	}
	if rcond <= 0 {
		rcond = 1e-13
	}
	var amax float64
	for _, l := range vals {
		if al := math.Abs(l); al > amax {
			amax = al
		}
	}
	n := a.R
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		if math.Abs(vals[j]) <= rcond*amax {
			continue // truncated direction
		}
		var proj float64
		for i := 0; i < n; i++ {
			proj += v.At(i, j) * rhs[i]
		}
		proj /= vals[j]
		for i := 0; i < n; i++ {
			x[i] += proj * v.At(i, j)
		}
	}
	return x, nil
}

// PseudoSolveSymMat solves a·X = B column-wise with PseudoSolveSym,
// factoring the eigendecomposition once.
func PseudoSolveSymMat(a, b *Mat, rcond float64) (*Mat, error) {
	if a.R != b.R {
		return nil, errors.New("dense: PseudoSolveSymMat shape mismatch")
	}
	vals, v, err := SymEigenVec(a)
	if err != nil {
		return nil, err
	}
	if rcond <= 0 {
		rcond = 1e-13
	}
	var amax float64
	for _, l := range vals {
		if al := math.Abs(l); al > amax {
			amax = al
		}
	}
	n := a.R
	out := NewMat(n, b.C)
	for c := 0; c < b.C; c++ {
		for j := 0; j < n; j++ {
			if math.Abs(vals[j]) <= rcond*amax {
				continue
			}
			var proj float64
			for i := 0; i < n; i++ {
				proj += v.At(i, j) * b.At(i, c)
			}
			proj /= vals[j]
			for i := 0; i < n; i++ {
				out.Add(i, c, proj*v.At(i, j))
			}
		}
	}
	return out, nil
}

// Cond2SPD returns the spectral condition number λmax/λmin of a small
// symmetric positive-definite matrix, or +Inf if it is numerically
// indefinite.
func Cond2SPD(a *Mat) float64 {
	vals, err := SymEigen(a)
	if err != nil || len(vals) == 0 {
		return math.Inf(1)
	}
	lo, hi := vals[0], vals[len(vals)-1]
	if lo <= 0 {
		return math.Inf(1)
	}
	return hi / lo
}
