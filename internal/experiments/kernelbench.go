package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"spcg/internal/pool"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// This file benchmarks the fused kernel engine against the implementations it
// replaced: the s²-Dot Gram product, per-column Axpy block updates, and
// spawn-per-call goroutine fan-out (the seed's parallelFor/ParDot shape,
// reproduced locally below so the comparison survives the old code's
// deletion). Two acceptance properties ride on the output:
//
//  1. the fused cache-blocked Gram beats the s²-Dot Gram by ≥ 2× at
//     n = 2²⁰, s = 8 (it streams each operand once per tile instead of
//     2·s² full passes), and
//  2. the persistent pool's dispatch beats per-call goroutine spawn at every
//     measured size for every worker count > 1 (the pool wakes parked
//     workers over buffered channels; spawn pays goroutine creation and a
//     WaitGroup barrier on each call).
//
// Timings are min-of-reps: the minimum is the standard estimator for the
// noise-free cost of a deterministic kernel. Property 2 is measured on the
// "dispatch" kernel, which times the fan-out machinery itself (amortized over
// a batch of dispatches with a trivial body): at memory-bound sizes the
// engines differ by ~1µs per call under ~10µs of scheduler noise, so an
// end-to-end comparison cannot resolve the difference — the dot and spmv
// rows are still reported end-to-end for context (they read as parity within
// noise at large n, a win at dispatch-bound small n).

// KernelsConfig parameterizes the sweep.
type KernelsConfig struct {
	// Sizes are the vector lengths n to sweep (default 2¹², 2¹⁶, 2²⁰).
	Sizes []int
	// S is the block width for Gram/combine kernels (default 8, matching the
	// acceptance criterion; the paper's s = 10 sits between the swept tiles).
	S int
	// Workers are the pool sizes to sweep (default {1, 2, GOMAXPROCS},
	// deduplicated). Worker counts above the core count still measure real
	// dispatch overhead — the engine must not degrade when oversubscribed.
	Workers []int
	// Reps is the repetition count per timing (default 7; min is reported).
	Reps int
}

func (c KernelsConfig) withDefaults() KernelsConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{1 << 12, 1 << 16, 1 << 20}
	}
	if c.S <= 0 {
		c.S = 8
	}
	if len(c.Workers) == 0 {
		set := map[int]bool{}
		for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			if !set[w] {
				set[w] = true
				c.Workers = append(c.Workers, w)
			}
		}
	}
	if c.Reps <= 0 {
		c.Reps = 7
	}
	return c
}

// KernelCase is one (kernel, n, s, workers) measurement.
type KernelCase struct {
	Kernel     string  `json:"kernel"`   // gram | combine | dot | spmv | basis_step
	Baseline   string  `json:"baseline"` // what the old implementation was
	N          int     `json:"n"`
	S          int     `json:"s,omitempty"`
	Workers    int     `json:"workers"`
	BaselineNS int64   `json:"baseline_ns"`
	NewNS      int64   `json:"new_ns"`
	Speedup    float64 `json:"speedup"`
}

// KernelsSummary aggregates the acceptance checks.
type KernelsSummary struct {
	// GramSpeedupLargestN is fused-vs-s²Dot at the largest swept n (s = S).
	GramSpeedupLargestN float64 `json:"gram_speedup_largest_n"`
	// MinPoolVsSpawn is the worst pool-vs-spawn speedup across the
	// dispatch-overhead cases (workers > 1, every size).
	MinPoolVsSpawn float64 `json:"min_pool_vs_spawn_speedup"`
	// PoolBeatsSpawnEverywhere is MinPoolVsSpawn ≥ 1.
	PoolBeatsSpawnEverywhere bool `json:"pool_beats_spawn_everywhere"`
}

// KernelsResult is the BENCH_kernels.json document.
type KernelsResult struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	S          int            `json:"s"`
	Reps       int            `json:"reps"`
	Cases      []KernelCase   `json:"cases"`
	Summary    KernelsSummary `json:"summary"`
}

// minTime2 times base and next interleaved — base, next, base, next, … — so
// slow clock-frequency or background-load drift hits both measurements
// equally instead of biasing whichever ran second. Each gets one warmup call;
// the per-function minimum over reps is returned (the standard noise-free
// estimator for a deterministic kernel).
func minTime2(reps int, base, next func()) (baseNS, nextNS int64) {
	base()
	next()
	baseNS, nextNS = math.MaxInt64, math.MaxInt64
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		base()
		if d := time.Since(t0).Nanoseconds(); d < baseNS {
			baseNS = d
		}
		t0 = time.Now()
		next()
		if d := time.Since(t0).Nanoseconds(); d < nextNS {
			nextNS = d
		}
	}
	if baseNS < 1 {
		baseNS = 1
	}
	if nextNS < 1 {
		nextNS = 1
	}
	return baseNS, nextNS
}

// fillDet fills x with a deterministic, mildly irregular pattern.
func fillDet(x []float64, seed int) {
	for i := range x {
		x[i] = float64((i*2654435761+seed)%1024)/512 - 1
	}
}

func detBlock(n, s, seed int) *vec.Block {
	b := vec.NewBlock(n, s)
	for j := 0; j < s; j++ {
		fillDet(b.Col(j), seed+31*j)
	}
	return b
}

// --- spawn-based references (the seed implementations, kept verbatim in
// shape so the benchmark's baseline is the code this PR deleted) ---

// spawnFor fans body out over w goroutines created per call, joined on a
// WaitGroup — the old parallelFor.
func spawnFor(n, w int, body func(lo, hi int)) {
	if w <= 1 {
		body(0, n)
		return
	}
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// spawnDot is the old ParDot: one goroutine per chunk per call.
func spawnDot(a, b []float64, w int) float64 {
	n := len(a)
	if w <= 1 {
		return vec.Dot(a, b)
	}
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	partials := make([]float64, (n+chunk-1)/chunk)
	var wg sync.WaitGroup
	for k, lo := 0, 0; lo < n; k, lo = k+1, lo+chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			partials[k] = vec.Dot(a[lo:hi], b[lo:hi])
		}(k, lo, hi)
	}
	wg.Wait()
	var s float64
	for _, p := range partials {
		s += p
	}
	return s
}

// poolDot is the dot kernel on the persistent pool with the same fixed
// chunking — dispatch overhead is the only difference from spawnDot.
func poolDot(p *pool.Pool, a, b []float64) float64 {
	n := len(a)
	partials := make([]float64, p.NumParts(n))
	p.Run(n, func(part, lo, hi int) {
		partials[part] = vec.Dot(a[lo:hi], b[lo:hi])
	})
	var s float64
	for _, v := range partials {
		s += v
	}
	return s
}

// spawnSpMV is the row-range SpMV on per-call goroutines.
func spawnSpMV(a *sparse.CSR, dst, x []float64, bounds []int) {
	var wg sync.WaitGroup
	for t := 0; t+1 < len(bounds); t++ {
		lo, hi := bounds[t], bounds[t+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			a.MulVecRows(dst, x, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// RunKernels executes the sweep and returns the BENCH_kernels.json document.
func RunKernels(cfg KernelsConfig, progress io.Writer) (*KernelsResult, error) {
	cfg = cfg.withDefaults()
	res := &KernelsResult{GOMAXPROCS: runtime.GOMAXPROCS(0), S: cfg.S, Reps: cfg.Reps}
	logf := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format+"\n", args...)
		}
	}

	prev := pool.SetDefaultWorkers(0) // start from a known state
	defer pool.SetDefaultWorkers(prev)

	largestN := 0
	for _, n := range cfg.Sizes {
		if n > largestN {
			largestN = n
		}
	}
	sum := KernelsSummary{MinPoolVsSpawn: math.Inf(1)}

	for _, n := range cfg.Sizes {
		x := detBlock(n, cfg.S, 1)
		y := detBlock(n, cfg.S, 2)
		u := make([]float64, n)
		v := make([]float64, n)
		fillDet(u, 3)
		fillDet(v, 4)
		coef := make([]float64, cfg.S*cfg.S)
		fillDet(coef, 5)

		d := int(math.Round(math.Sqrt(float64(n))))
		mat := sparse.Poisson2D(d, d)
		sx := make([]float64, mat.Dim())
		sy := make([]float64, mat.Dim())
		fillDet(sx, 6)

		for _, w := range cfg.Workers {
			pool.SetDefaultWorkers(w)
			p := pool.Default()

			// Fused cache-blocked Gram vs the old s²-Dot Gram. The baseline is
			// sequential (as seeded) for every w: its cost is what the solvers
			// actually paid before this engine existed.
			sanity := vec.GramFused(x, y)
			ref := vec.Gram(x, y)
			for i := range ref {
				scale := 1.0
				if s := math.Abs(ref[i]); s > scale {
					scale = s
				}
				if math.Abs(sanity[i]-ref[i]) > 1e-10*scale*float64(n) {
					return nil, fmt.Errorf("kernels: fused Gram mismatch at n=%d entry %d", n, i)
				}
			}
			baseNS, newNS := minTime2(cfg.Reps, func() { vec.Gram(x, y) }, func() { vec.GramFused(x, y) })
			c := KernelCase{Kernel: "gram", Baseline: "s^2 sequential Dot (seed vec.Gram)",
				N: n, S: cfg.S, Workers: w, BaselineNS: baseNS, NewNS: newNS,
				Speedup: float64(baseNS) / float64(newNS)}
			res.Cases = append(res.Cases, c)
			if n == largestN && c.Speedup > sum.GramSpeedupLargestN {
				sum.GramSpeedupLargestN = c.Speedup
			}
			logf("gram      n=%-8d w=%-2d  %8.2fµs -> %8.2fµs  (%.2fx)", n, w,
				float64(baseNS)/1e3, float64(newNS)/1e3, c.Speedup)

			// Fused block update dst = Y + X·C vs s per-column Axpy passes.
			dst := vec.NewBlock(n, cfg.S)
			baseNS, newNS = minTime2(cfg.Reps, func() { vec.AddMul(dst, y, x, coef) }, func() { vec.AddMulFused(dst, y, x, coef) })
			c = KernelCase{Kernel: "combine", Baseline: "per-column Axpy passes (seed vec.AddMul)",
				N: n, S: cfg.S, Workers: w, BaselineNS: baseNS, NewNS: newNS,
				Speedup: float64(baseNS) / float64(newNS)}
			res.Cases = append(res.Cases, c)
			logf("combine   n=%-8d w=%-2d  %8.2fµs -> %8.2fµs  (%.2fx)", n, w,
				float64(baseNS)/1e3, float64(newNS)/1e3, c.Speedup)

			// Pool dispatch vs per-call spawn. Only meaningful for w > 1
			// (at w = 1 both run inline).
			if w > 1 {
				// Fan-out machinery alone, amortized over a batch of
				// dispatches of a trivial body with this size's chunking —
				// the per-call engine cost that property 2 is about.
				const batch = 256
				sink := make([]int64, w)
				baseNS, newNS = minTime2(cfg.Reps,
					func() {
						for k := 0; k < batch; k++ {
							spawnFor(n, w, func(lo, hi int) { sink[lo/((n+w-1)/w)] += int64(hi - lo) })
						}
					},
					func() {
						for k := 0; k < batch; k++ {
							p.Run(n, func(part, lo, hi int) { sink[part%w] += int64(hi - lo) })
						}
					})
				c = KernelCase{Kernel: "dispatch", Baseline: "per-call goroutine spawn + WaitGroup join",
					N: n, Workers: w, BaselineNS: baseNS / batch, NewNS: newNS / batch,
					Speedup: float64(baseNS) / float64(newNS)}
				res.Cases = append(res.Cases, c)
				if c.Speedup < sum.MinPoolVsSpawn {
					sum.MinPoolVsSpawn = c.Speedup
				}
				logf("dispatch  n=%-8d w=%-2d  %8.2fµs -> %8.2fµs  (%.2fx)", n, w,
					float64(c.BaselineNS)/1e3, float64(c.NewNS)/1e3, c.Speedup)

				// End-to-end kernels for context: at memory-bound sizes these
				// read as parity within noise, the win shows at small n.
				if math.Abs(poolDot(p, u, v)-spawnDot(u, v, w)) > 1e-9*float64(n) {
					return nil, fmt.Errorf("kernels: pool dot mismatch at n=%d w=%d", n, w)
				}
				baseNS, newNS = minTime2(cfg.Reps, func() { spawnDot(u, v, w) }, func() { poolDot(p, u, v) })
				c = KernelCase{Kernel: "dot", Baseline: "per-call goroutine spawn (seed ParDot)",
					N: n, Workers: w, BaselineNS: baseNS, NewNS: newNS,
					Speedup: float64(baseNS) / float64(newNS)}
				res.Cases = append(res.Cases, c)
				logf("dot       n=%-8d w=%-2d  %8.2fµs -> %8.2fµs  (%.2fx)", n, w,
					float64(baseNS)/1e3, float64(newNS)/1e3, c.Speedup)

				bounds := sparse.NNZBalancedRanges(mat, w)
				baseNS, newNS = minTime2(cfg.Reps,
					func() { spawnSpMV(mat, sy, sx, bounds) },
					func() {
						p.RunBounds(bounds, func(part, lo, hi int) { mat.MulVecRows(sy, sx, lo, hi) })
					})
				c = KernelCase{Kernel: "spmv", Baseline: "per-call goroutine spawn",
					N: mat.Dim(), Workers: w, BaselineNS: baseNS, NewNS: newNS,
					Speedup: float64(baseNS) / float64(newNS)}
				res.Cases = append(res.Cases, c)
				logf("spmv      n=%-8d w=%-2d  %8.2fµs -> %8.2fµs  (%.2fx)", mat.Dim(), w,
					float64(baseNS)/1e3, float64(newNS)/1e3, c.Speedup)
			}

			// Fused MPK basis step vs SpMV + Threeterm + diagonal apply.
			nn := mat.Dim()
			sCur, sPrev, sNext, uu, un, dinv, z := make([]float64, nn), make([]float64, nn),
				make([]float64, nn), make([]float64, nn), make([]float64, nn), make([]float64, nn), make([]float64, nn)
			fillDet(sCur, 7)
			fillDet(sPrev, 8)
			fillDet(uu, 9)
			for i := range dinv {
				dinv[i] = 0.25
			}
			baseNS, newNS = minTime2(cfg.Reps,
				func() {
					mat.MulVecPar(z, uu)
					vec.Threeterm(sNext, z, 0.5, sCur, 0.25, sPrev, 2)
					vec.HadamardInto(un, dinv, sNext)
				},
				func() {
					mat.FusedBasisStepPar(sNext, uu, sCur, sPrev, 0.5, 0.25, 2, dinv, un)
				})
			c = KernelCase{Kernel: "basis_step", Baseline: "SpMV + Threeterm + diag apply (3 sweeps)",
				N: nn, Workers: w, BaselineNS: baseNS, NewNS: newNS,
				Speedup: float64(baseNS) / float64(newNS)}
			res.Cases = append(res.Cases, c)
			logf("basisstep n=%-8d w=%-2d  %8.2fµs -> %8.2fµs  (%.2fx)", nn, w,
				float64(baseNS)/1e3, float64(newNS)/1e3, c.Speedup)
		}
	}

	if math.IsInf(sum.MinPoolVsSpawn, 1) {
		sum.MinPoolVsSpawn = 0
	}
	sum.PoolBeatsSpawnEverywhere = sum.MinPoolVsSpawn >= 1
	res.Summary = sum
	return res, nil
}

// RenderKernels prints the sweep as a table plus the acceptance summary.
func RenderKernels(w io.Writer, res *KernelsResult) {
	fmt.Fprintf(w, "Kernel engine benchmark (GOMAXPROCS=%d, s=%d, min of %d reps)\n\n",
		res.GOMAXPROCS, res.S, res.Reps)
	fmt.Fprintf(w, "%-10s %9s %3s %3s %12s %12s %8s\n",
		"kernel", "n", "s", "w", "baseline", "fused/pool", "speedup")
	for _, c := range res.Cases {
		s := "-"
		if c.S > 0 {
			s = fmt.Sprintf("%d", c.S)
		}
		fmt.Fprintf(w, "%-10s %9d %3s %3d %10.1fµs %10.1fµs %7.2fx\n",
			c.Kernel, c.N, s, c.Workers,
			float64(c.BaselineNS)/1e3, float64(c.NewNS)/1e3, c.Speedup)
	}
	fmt.Fprintf(w, "\nfused Gram speedup at largest n: %.2fx\n", res.Summary.GramSpeedupLargestN)
	fmt.Fprintf(w, "worst pool-vs-spawn speedup:     %.2fx (pool beats spawn everywhere: %v)\n",
		res.Summary.MinPoolVsSpawn, res.Summary.PoolBeatsSpawnEverywhere)
}
