// Command spcgload drives a running spcgd with a concurrent solve burst and
// reports exact client-side latency percentiles plus the server's /metrics
// snapshot:
//
//	spcgload [-addr http://localhost:8097] [-n 100] [-c 8]
//	         [-methods pcg,pcg3,spcg,capcg,capcg3,auto]
//	         [-matrices poisson2d:16,poisson2d:24,hubgraph:4096] [-precond jacobi]
//	         [-s 4] [-tol 0] [-timeout 60s] [-out BENCH_serve.json]
//
// The process exits non-zero if any request fails, so CI can use it as a
// smoke test.
//
// With -gateway the burst targets a spcggw gateway instead of a single
// daemon: every logical request carries a request_id idempotency key, 429
// backpressure and transport blips are retried (safely, thanks to the key),
// and the report includes the gateway's spcggw_* snapshot — affinity
// hit-rate, failovers, shed count (see docs/SCALING.md for a worked run).
//
// With -chaos the burst becomes a resilience acceptance run: the request mix
// adds guaranteed s-step breakdowns (monomial basis on an ill-conditioned
// anisotropic operator) and unreachable-tolerance stagnators, and the exit
// code asserts the daemon's resilience invariants instead of per-request
// success: every request reaches a terminal state, stagnated solves are
// killed under half their deadline, at least one breaker-degraded solve
// converges, and the daemon still answers /healthz afterwards. Run the
// daemon with its -chaos-* flags (and a short -stagnation-window) to add
// injected panics and soft errors on the server side.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type solveRequest struct {
	Matrix    string  `json:"matrix"`
	Method    string  `json:"method"`
	Precond   string  `json:"precond,omitempty"`
	S         int     `json:"s,omitempty"`
	Basis     string  `json:"basis,omitempty"`
	Tol       float64 `json:"tol,omitempty"`
	MaxIters  int     `json:"max_iters,omitempty"`
	RHS       string  `json:"rhs,omitempty"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
	NoBatch   bool    `json:"no_batch,omitempty"`
	RequestID string  `json:"request_id,omitempty"`
}

type solveResult struct {
	Converged     bool    `json:"converged"`
	Iterations    int     `json:"iterations"`
	FinalRelative float64 `json:"final_relative"`
	Breakdown     string  `json:"breakdown,omitempty"`
	Batched       bool    `json:"batched"`
	BatchSize     int     `json:"batch_size"`
	SolveMS       float64 `json:"solve_ms"`
	Method        string  `json:"method,omitempty"`
	DegradedFrom  string  `json:"degraded_from,omitempty"`
	Error         string  `json:"error,omitempty"`
}

type jobStatus struct {
	ID     string       `json:"id"`
	State  string       `json:"state"`
	Result *solveResult `json:"result"`
}

type sample struct {
	method    string
	latencyMS float64
	ok        bool
	batched   bool
	err       string
}

// report is the BENCH_serve.json document.
type report struct {
	Addr        string             `json:"addr"`
	Requests    int                `json:"requests"`
	Concurrency int                `json:"concurrency"`
	Successes   int                `json:"successes"`
	Failures    int                `json:"failures"`
	Batched     int                `json:"batched"`
	WallS       float64            `json:"wall_s"`
	Throughput  float64            `json:"throughput_rps"`
	LatencyMS   map[string]float64 `json:"latency_ms"` // p50/p90/p95/p99/max/mean
	PerMethod   map[string]int     `json:"per_method"`
	Errors      []string           `json:"errors,omitempty"`
	Server      json.RawMessage    `json:"server_metrics,omitempty"`
	// Gateway holds the spcggw /metrics?format=json snapshot when the burst
	// was driven through a gateway (-gateway); Server then holds the same
	// document, since the gateway is the addressed server.
	Gateway json.RawMessage `json:"gateway_metrics,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8097", "spcgd base URL")
	n := flag.Int("n", 100, "total requests")
	c := flag.Int("c", 8, "concurrent clients")
	methodsFlag := flag.String("methods", "pcg,pcg3,spcg,capcg,capcg3,auto", "comma-separated methods to cycle (auto = tuner-selected)")
	matricesFlag := flag.String("matrices", "poisson2d:16,poisson2d:24,hubgraph:4096", "comma-separated matrices to cycle (hubgraph = high row-length-variance graph exercising the SELL storage path)")
	precond := flag.String("precond", "jacobi", "preconditioner spec")
	sVal := flag.Int("s", 4, "s-step block size")
	tol := flag.Float64("tol", 0, "relative tolerance (0 = server default)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request client timeout")
	out := flag.String("out", "", "write a JSON report to this file")
	chaos := flag.Bool("chaos", false, "chaos acceptance mode: mix in breakdowns and stagnators, assert resilience invariants")
	gateway := flag.Bool("gateway", false, "drive a spcggw gateway: stamp request_id idempotency keys, retry 429s honoring Retry-After, report gateway metrics")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "spcgload: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	methods := splitList(*methodsFlag)
	matrices := splitList(*matricesFlag)
	if len(methods) == 0 || len(matrices) == 0 || *n < 1 || *c < 1 {
		fmt.Fprintln(os.Stderr, "spcgload: need non-empty -methods/-matrices and positive -n/-c")
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	if *chaos {
		os.Exit(runChaos(client, *addr, *n, *c, methods, matrices, *out))
	}
	samples := make([]sample, *n)
	var wg sync.WaitGroup
	next := make(chan int)
	start := time.Now()
	runID := time.Now().UnixNano()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				req := solveRequest{
					Matrix:  matrices[i%len(matrices)],
					Method:  methods[i%len(methods)],
					Precond: *precond,
					S:       *sVal,
					Tol:     *tol,
				}
				if *gateway {
					// An explicit idempotency key per logical request makes
					// gateway failover retries observable end to end.
					req.RequestID = fmt.Sprintf("load-%d-%d", runID, i)
					samples[i] = doSolveRetry(client, *addr, req)
				} else {
					samples[i] = doSolve(client, *addr, req)
				}
			}
		}()
	}
	for i := 0; i < *n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	rep := summarize(samples, *addr, *n, *c, wall)
	if body, err := fetchMetrics(client, *addr); err == nil {
		rep.Server = body
		if *gateway {
			rep.Gateway = body
			var gw struct {
				AffinityRate float64 `json:"affinity_rate"`
				Failovers    int64   `json:"failovers_total"`
				Shed         int64   `json:"shed_total"`
			}
			if json.Unmarshal(body, &gw) == nil {
				fmt.Printf("spcgload: gateway affinity %.1f%%, %d failovers, %d shed\n",
					100*gw.AffinityRate, gw.Failovers, gw.Shed)
			}
		}
	} else {
		fmt.Fprintf(os.Stderr, "spcgload: fetch /metrics: %v\n", err)
	}

	fmt.Printf("spcgload: %d/%d ok (%d batched) in %.2fs — %.1f req/s, p50 %.1fms p95 %.1fms p99 %.1fms\n",
		rep.Successes, rep.Requests, rep.Batched, rep.WallS, rep.Throughput,
		rep.LatencyMS["p50"], rep.LatencyMS["p95"], rep.LatencyMS["p99"])
	for _, e := range rep.Errors {
		fmt.Fprintf(os.Stderr, "spcgload: %s\n", e)
	}
	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "spcgload: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("spcgload: report written to %s\n", *out)
	}
	if rep.Failures > 0 {
		os.Exit(1)
	}
}

// stagDeadlineMS is the per-job deadline given to chaos-mode stagnators; the
// watchdog must kill them in under half of it.
const stagDeadlineMS = 8000

// chaosOutcome is one classified chaos-mode response.
type chaosOutcome struct {
	class             string // healthy | breakdown | stagnation
	state             string
	violation         string // empty = invariants held
	stagnated         bool
	degradedConverged bool
	solveMS           float64
}

// chaosReport is the -out document for a chaos run.
type chaosReport struct {
	Addr              string          `json:"addr"`
	Requests          int             `json:"requests"`
	WallS             float64         `json:"wall_s"`
	Stagnated         int             `json:"stagnated"`
	DegradedConverged int             `json:"degraded_converged"`
	PanicFailures     int             `json:"panic_failures"`
	Violations        []string        `json:"violations,omitempty"`
	PerState          map[string]int  `json:"per_state"`
	Server            json.RawMessage `json:"server_metrics,omitempty"`
}

// runChaos fires the chaos mix and asserts the resilience invariants,
// returning the process exit code.
func runChaos(client *http.Client, addr string, n, c int, methods, matrices []string, out string) int {
	outcomes := make([]chaosOutcome, n)
	var wg sync.WaitGroup
	next := make(chan int)
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				class, req := chaosRequest(i, methods, matrices)
				outcomes[i] = chaosSolve(client, addr, class, req)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	rep := &chaosReport{Addr: addr, Requests: n, WallS: wall.Seconds(), PerState: map[string]int{}}
	panicFailures := 0
	for i, o := range outcomes {
		rep.PerState[o.state]++
		if o.violation != "" && len(rep.Violations) < 20 {
			rep.Violations = append(rep.Violations, fmt.Sprintf("req %d (%s): %s", i, o.class, o.violation))
		}
		if o.violation != "" {
			continue
		}
		if o.stagnated {
			rep.Stagnated++
		}
		if o.degradedConverged {
			rep.DegradedConverged++
		}
		if o.state == "failed" {
			panicFailures++
		}
	}
	rep.PanicFailures = panicFailures

	// The daemon must have survived the whole run.
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("daemon dead after chaos: /healthz: %v", err))
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			rep.Violations = append(rep.Violations, fmt.Sprintf("/healthz after chaos: HTTP %d", resp.StatusCode))
		}
	}
	if body, err := fetchMetrics(client, addr); err == nil {
		rep.Server = body
	}
	if rep.Stagnated < 1 {
		rep.Violations = append(rep.Violations, "no request was killed by the stagnation watchdog (is -stagnation-window short enough on the daemon?)")
	}
	if rep.DegradedConverged < 1 {
		rep.Violations = append(rep.Violations, "no breaker-degraded solve converged (are breakers enabled on the daemon?)")
	}

	fmt.Printf("spcgload -chaos: %d requests in %.2fs — states %v, %d stagnated, %d degraded+converged, %d panic failures, %d violations\n",
		n, rep.WallS, rep.PerState, rep.Stagnated, rep.DegradedConverged, rep.PanicFailures, len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Fprintf(os.Stderr, "spcgload -chaos: VIOLATION: %s\n", v)
	}
	if out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(out, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "spcgload -chaos: write %s: %v\n", out, err)
			return 1
		}
	}
	if len(rep.Violations) > 0 {
		return 1
	}
	return 0
}

// chaosRequest builds request i of the chaos mix: mostly healthy traffic,
// with guaranteed Gram breakdowns every 7th request and stagnators every
// 25th (mirroring internal/service's in-process chaos harness).
func chaosRequest(i int, methods, matrices []string) (string, solveRequest) {
	switch {
	case i%25 == 7:
		return "stagnation", solveRequest{
			Matrix: "poisson2d:64", Method: "pcg", Precond: "identity",
			Tol: 1e-300, MaxIters: 500000, TimeoutMS: stagDeadlineMS, NoBatch: true,
		}
	case i%7 == 3:
		return "breakdown", solveRequest{
			Matrix: "aniso2d:30:0.0001", Method: "spcg", S: 8,
			Basis: "monomial", Precond: "identity", NoBatch: true,
		}
	default:
		return "healthy", solveRequest{
			Matrix:  matrices[i%len(matrices)],
			Method:  methods[i%len(methods)],
			Precond: "jacobi",
			S:       4,
		}
	}
}

// chaosSolve posts one chaos request and classifies the outcome against its
// class's invariants. Shedding (429) is retried — a loaded daemon may shed.
func chaosSolve(client *http.Client, addr string, class string, req solveRequest) chaosOutcome {
	o := chaosOutcome{class: class}
	body, err := json.Marshal(req)
	if err != nil {
		o.violation = err.Error()
		return o
	}
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		resp, err = client.Post(addr+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			o.violation = fmt.Sprintf("transport: %v", err)
			return o
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= 5 {
			break
		}
		resp.Body.Close()
		time.Sleep(200 * time.Millisecond)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		o.violation = fmt.Sprintf("HTTP %d: bad body: %v", resp.StatusCode, err)
		return o
	}
	o.state = st.State
	switch st.State {
	case "done", "failed", "cancelled", "stagnated":
	default:
		o.violation = fmt.Sprintf("non-terminal state %q (HTTP %d)", st.State, resp.StatusCode)
		return o
	}
	if st.Result == nil {
		o.violation = fmt.Sprintf("terminal state %q without a result", st.State)
		return o
	}
	r := st.Result
	o.solveMS = r.SolveMS
	o.stagnated = st.State == "stagnated"
	o.degradedConverged = r.DegradedFrom != "" && r.Converged
	switch class {
	case "stagnation":
		// The watchdog must beat the deadline by at least 2×; a solve that
		// converged at tol 1e-300 would mean the invariant machinery is lying.
		if o.stagnated && r.SolveMS >= stagDeadlineMS/2 {
			o.violation = fmt.Sprintf("stagnated after %.0fms, want < half the %dms deadline", r.SolveMS, stagDeadlineMS)
		}
		if st.State == "done" && r.Converged {
			o.violation = "converged at tol 1e-300"
		}
	case "healthy":
		// Healthy traffic may fail from injected panics or stagnate from soft
		// errors — but a clean completion must be a correct one.
		if st.State == "done" && !r.Converged && r.Breakdown == "" {
			o.violation = fmt.Sprintf("done but not converged (rel %.3g) with no breakdown", r.FinalRelative)
		}
	case "breakdown":
		// Any terminal outcome is legal; degraded completions must converge
		// whenever the fallback ran cleanly, which o.degradedConverged tracks.
	}
	if st.State == "failed" && r.Error == "" {
		o.violation = "failed without an error"
	}
	return o
}

func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if t := strings.TrimSpace(tok); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func doSolve(client *http.Client, addr string, req solveRequest) sample {
	smp := sample{method: req.Method}
	body, err := json.Marshal(req)
	if err != nil {
		smp.err = err.Error()
		return smp
	}
	t0 := time.Now()
	resp, err := client.Post(addr+"/solve", "application/json", bytes.NewReader(body))
	smp.latencyMS = float64(time.Since(t0).Microseconds()) / 1000
	if err != nil {
		smp.err = err.Error()
		return smp
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		smp.err = fmt.Sprintf("HTTP %d: %v", resp.StatusCode, err)
		return smp
	}
	if resp.StatusCode != http.StatusOK || st.Result == nil || !st.Result.Converged {
		msg := st.State
		if st.Result != nil && st.Result.Error != "" {
			msg = st.Result.Error
		}
		smp.err = fmt.Sprintf("%s on %s: HTTP %d, state %s (%s)", req.Method, req.Matrix, resp.StatusCode, st.State, msg)
		return smp
	}
	smp.ok = true
	smp.batched = st.Result.Batched && st.Result.BatchSize >= 2
	return smp
}

// doSolveRetry is the gateway-mode request path: it resubmits on 429 with
// the response's Retry-After (the gateway propagates backend backpressure)
// and on transport errors (a gateway restart mid-burst). The request_id
// makes every resubmission idempotent, so retries can never double-count.
func doSolveRetry(client *http.Client, addr string, req solveRequest) sample {
	const maxAttempts = 8
	var smp sample
	t0 := time.Now()
	for attempt := 0; ; attempt++ {
		smp = doSolve(client, addr, req)
		if smp.ok || attempt >= maxAttempts-1 {
			break
		}
		if strings.Contains(smp.err, "HTTP 429") || strings.Contains(smp.err, "connection") {
			time.Sleep(time.Duration(200*(attempt+1)) * time.Millisecond)
			continue
		}
		break
	}
	smp.latencyMS = float64(time.Since(t0).Microseconds()) / 1000
	return smp
}

func fetchMetrics(client *http.Client, addr string) (json.RawMessage, error) {
	resp, err := client.Get(addr + "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func summarize(samples []sample, addr string, n, c int, wall time.Duration) *report {
	rep := &report{
		Addr:        addr,
		Requests:    n,
		Concurrency: c,
		WallS:       wall.Seconds(),
		LatencyMS:   map[string]float64{},
		PerMethod:   map[string]int{},
	}
	var lats []float64
	var sum float64
	for _, s := range samples {
		rep.PerMethod[s.method]++
		if s.ok {
			rep.Successes++
		} else {
			rep.Failures++
			if len(rep.Errors) < 10 {
				rep.Errors = append(rep.Errors, s.err)
			}
		}
		if s.batched {
			rep.Batched++
		}
		lats = append(lats, s.latencyMS)
		sum += s.latencyMS
	}
	rep.Throughput = float64(n) / wall.Seconds()
	sort.Float64s(lats)
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	rep.LatencyMS["mean"] = sum / float64(len(samples))
	rep.LatencyMS["p50"] = pct(0.50)
	rep.LatencyMS["p90"] = pct(0.90)
	rep.LatencyMS["p95"] = pct(0.95)
	rep.LatencyMS["p99"] = pct(0.99)
	rep.LatencyMS["max"] = pct(1.0)
	return rep
}
