package tune

import (
	"fmt"
	"sort"

	"spcg/internal/dist"
	"spcg/internal/eig"
	"spcg/internal/perfmodel"
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

// Pruned records one candidate the seeder removed statically, with the
// reason (surfaced by /tune and the bench report so pruning is auditable).
type Pruned struct {
	Candidate Candidate `json:"candidate"`
	Reason    string    `json:"reason"`
}

// Plan is the seeder's output: the candidate list ordered best-predicted
// first, plus what was pruned and why.
type Plan struct {
	Fingerprint uint64 `json:"-"`
	// Cond is the κ(A) estimate from the seeding Ritz probe (safety-factor
	// inflated — an ordering signal, not a tight bound).
	Cond float64 `json:"cond"`
	// Candidates is the ranked plan, best predicted configuration first.
	Candidates []Candidate `json:"candidates"`
	// Pruned lists statically rejected configurations.
	Pruned []Pruned `json:"pruned,omitempty"`
}

// Seed enumerates the configured candidate space for matrix a, prunes
// numerically doomed configurations using a cheap spectral probe, ranks the
// survivors by the Table 1 closed-form cost model, and caps the plan at
// MaxCandidates (always retaining a plain-PCG baseline).
func Seed(a *sparse.CSR, cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults()
	plan := &Plan{Fingerprint: a.Fingerprint()}

	// Cheap spectral probe: a short run of (unpreconditioned) PCG-Lanczos
	// gives Ritz bounds on A's spectrum. The resulting κ estimate decides
	// whether fragile monomial bases at large s are admissible at all.
	est, err := eig.RitzFromPCG(a, nil, eig.Options{Iterations: cfg.SpectrumIters})
	if err != nil {
		return nil, fmt.Errorf("tune: spectral probe: %w", err)
	}
	if est.LambdaMin > 0 {
		plan.Cond = est.LambdaMax / est.LambdaMin
	}

	cl, err := dist.NewCluster(dist.DefaultMachine(), cfg.Nodes, a)
	if err != nil {
		return nil, fmt.Errorf("tune: cost model cluster: %w", err)
	}

	type scored struct {
		c     Candidate
		score float64 // modeled seconds per iteration; lower is better
	}
	var ranked []scored
	for _, method := range cfg.Methods {
		for _, prec := range cfg.Preconds {
			spec, err := precond.Parse(prec)
			if err != nil {
				return nil, fmt.Errorf("tune: candidate preconditioner %q: %w", prec, err)
			}
			pf, ph := modelPrecCost(spec, a)
			if method == "pcg" || method == "pcg3" || method == "pipelined" {
				ranked = append(ranked, scored{
					c:     Candidate{Method: method, Precond: spec.Canonical()},
					score: predictPerIter(method, 1, cl, pf, ph, false),
				})
				continue
			}
			for _, s := range cfg.SValues {
				for _, bs := range cfg.Bases {
					c := Candidate{Method: method, S: s, Basis: bs, Precond: spec.Canonical()}
					if bs == "monomial" && s > cfg.MonomialMaxS && plan.Cond > cfg.MonomialCondCutoff {
						plan.Pruned = append(plan.Pruned, Pruned{
							Candidate: c,
							Reason: fmt.Sprintf("monomial basis at s=%d with κ≈%.2g > %.2g: basis vectors align with the dominant eigenvector and the Gram system loses rank (paper §basis conditioning)",
								s, plan.Cond, cfg.MonomialCondCutoff),
						})
						continue
					}
					ranked = append(ranked, scored{
						c:     c,
						score: predictPerIter(method, s, cl, pf, ph, bs != "monomial"),
					})
				}
			}
		}
	}

	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].score < ranked[j].score })

	// Cap the plan, but never drop the last PCG baseline: the trial runner
	// must always have the paper's safe floor available for comparison.
	hasPCG := false
	for i, sc := range ranked {
		if i >= cfg.MaxCandidates && hasPCG {
			break
		}
		if i >= cfg.MaxCandidates && sc.c.Method != "pcg" {
			continue
		}
		if sc.c.Method == "pcg" {
			if hasPCG {
				continue // one baseline is enough; keep plan slots for s-step variants
			}
			hasPCG = true
		}
		plan.Candidates = append(plan.Candidates, sc.c)
	}
	if len(plan.Candidates) == 0 {
		return nil, fmt.Errorf("tune: empty candidate plan (methods=%v)", cfg.Methods)
	}
	return plan, nil
}

// predictPerIter is the ranking signal: Table 1 modeled seconds per
// iteration. Methods without a Table 1 row rank with the plain PCG model.
func predictPerIter(method string, s int, cl *dist.Cluster, precFlops float64, precHalos int, arbitrary bool) float64 {
	alg, ok := perfmodel.ByName(method)
	if !ok {
		alg, s = perfmodel.PCG, 1
	}
	p, err := perfmodel.Predict(alg, s, cl, precFlops, precHalos, arbitrary)
	if err != nil {
		return 0
	}
	return p.Total / float64(s)
}

// modelPrecCost approximates the per-application FLOPs and halo exchanges of
// a preconditioner spec without building it (the seeder must stay cheap).
func modelPrecCost(spec precond.Spec, a *sparse.CSR) (flops float64, halos int) {
	n, nnz := float64(a.Dim()), float64(a.NNZ())
	switch spec.Kind {
	case "identity":
		return 0, 0
	case "jacobi":
		return n, 0
	case "ssor":
		return 2*nnz + 2*n, 2
	case "ic0":
		return 2*nnz + n, 2
	case "blockjacobi":
		bs := n / float64(spec.Blocks)
		return n * bs, 0
	case "chebyshev":
		return float64(spec.Degree) * (2*nnz + 3*n), spec.Degree
	default:
		return n, 0
	}
}
