package fault

import (
	"math"
	"sync"
	"testing"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	v := []float64{1, 2, 3}
	if in.CorruptSpMV(v) || in.CorruptVector(v) || in.DropSend(0, 1, 0) || in.FailAllreduce(0, 0) {
		t.Fatal("nil injector injected a fault")
	}
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatal("nil injector mutated data")
	}
	if c := in.Counts(); c.Total() != 0 {
		t.Fatalf("nil injector counts = %+v", c)
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := New(1, Config{})
	v := []float64{1, 2, 3}
	for i := 0; i < 1000; i++ {
		if in.CorruptSpMV(v) || in.DropSend(0, 1, 0) || in.FailAllreduce(2, 0) {
			t.Fatal("zero config injected a fault")
		}
	}
	if c := in.Counts(); c.Total() != 0 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestSeedDeterminism(t *testing.T) {
	cfg := Config{SpMVCorruptProb: 0.3, DropSendProb: 0.2}
	run := func(seed uint64) ([]float64, Counts) {
		in := New(seed, cfg)
		v := make([]float64, 10)
		for i := range v {
			v[i] = float64(i)
		}
		for i := 0; i < 50; i++ {
			in.CorruptSpMV(v)
			in.DropSend(0, 1, 0)
		}
		return v, in.Counts()
	}
	v1, c1 := run(42)
	v2, c2 := run(42)
	if c1 != c2 {
		t.Fatalf("same seed, different counts: %+v vs %+v", c1, c2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("same seed, different corruption at %d: %v vs %v", i, v1[i], v2[i])
		}
	}
	v3, c3 := run(43)
	if c1 == c3 {
		same := true
		for i := range v1 {
			if v1[i] != v3[i] {
				same = false
			}
		}
		if same {
			t.Fatal("different seeds produced identical fault streams")
		}
	}
}

func TestCorruptionRateAndMagnitude(t *testing.T) {
	in := New(7, Config{SpMVCorruptProb: 0.5, CorruptMagnitude: 100})
	n, trials := 0, 2000
	for i := 0; i < trials; i++ {
		v := []float64{1}
		if in.CorruptSpMV(v) {
			n++
			if d := math.Abs(v[0] - 1); d < 100 {
				t.Fatalf("perturbation %v smaller than magnitude", d)
			}
		} else if v[0] != 1 {
			t.Fatal("value changed without a reported corruption")
		}
	}
	if n < trials/3 || n > 2*trials/3 {
		t.Fatalf("injected %d/%d corruptions at prob 0.5", n, trials)
	}
	if c := in.Counts(); c.SpMVCorruptions != n {
		t.Fatalf("counts %d != observed %d", c.SpMVCorruptions, n)
	}
}

func TestBitFlip(t *testing.T) {
	in := New(3, Config{VectorCorruptProb: 1, BitFlip: true, Bit: 54})
	v := []float64{8}
	if !in.CorruptVector(v) {
		t.Fatal("prob 1 did not corrupt")
	}
	// Flipping exponent bit 2 (value bit 54) multiplies by 2^±4.
	if v[0] != 8*16 && v[0] != 8.0/16 {
		t.Fatalf("bit-54 flip of 8 gave %v", v[0])
	}
}

func TestConcurrentDrawsAreRaceFree(t *testing.T) {
	in := New(9, Config{DropSendProb: 0.5, AllreduceFailProb: 0.5})
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				in.DropSend(r, (r+1)%8, 0)
				in.FailAllreduce(r, 0)
			}
		}(r)
	}
	wg.Wait()
	c := in.Counts()
	if c.DroppedSends == 0 || c.FailedAllreduces == 0 {
		t.Fatalf("no faults under concurrency: %+v", c)
	}
	if in.String() == "" {
		t.Fatal("empty String")
	}
}
