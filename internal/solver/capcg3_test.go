package solver

import (
	"testing"

	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

func TestCAPCG3MatchesPCG3OnEasyProblem(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	b, xTrue := testProblem(a)
	m, _ := precond.NewJacobi(a)
	_, p3, err := PCG3(a, m, b, Options{Tol: 1e-9, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	for _, bt := range []basis.Type{basis.Monomial, basis.Newton, basis.Chebyshev} {
		for _, s := range []int{2, 4} {
			x, ss, err := CAPCG3(a, m, b, Options{S: s, Basis: bt, Tol: 1e-9, Criterion: RecursiveResidualMNorm})
			if err != nil {
				t.Fatalf("%v s=%d: %v", bt, s, err)
			}
			if !ss.Converged {
				t.Fatalf("%v s=%d: did not converge (%v)", bt, s, ss.Breakdown)
			}
			if e := solutionError(x, xTrue); e > 1e-6 {
				t.Fatalf("%v s=%d: solution error %v", bt, s, e)
			}
			if ss.Iterations < p3.Iterations-s || ss.Iterations > p3.Iterations+2*s {
				t.Fatalf("%v s=%d: iterations %d vs PCG3 %d", bt, s, ss.Iterations, p3.Iterations)
			}
		}
	}
}

func TestCAPCG3CommunicationAndWorkCounts(t *testing.T) {
	// Table 1's CA-PCG3 row: s MVs and s preconditioner applications per
	// outer iteration, one (2s+1)²-value allreduce.
	a := sparse.Poisson2D(20, 20)
	b, _ := testProblem(a)
	m, _ := precond.NewJacobi(a)
	machine := dist.DefaultMachine()
	machine.RanksPerNode = 8
	cl, err := dist.NewCluster(machine, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	tr := dist.NewTracker(cl)
	s := 5
	_, ss, err := CAPCG3(a, m, b, Options{S: s, Basis: basis.Chebyshev, Criterion: RecursiveResidualMNorm, Tracker: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Converged {
		t.Fatalf("did not converge: %v", ss.Breakdown)
	}
	k := ss.OuterIterations
	if ss.Allreduces != k {
		t.Fatalf("allreduces = %d, outer = %d", ss.Allreduces, k)
	}
	if ss.AllreduceValues != k*(2*s+1)*(2*s+1) {
		t.Fatalf("allreduce values = %d, want %d", ss.AllreduceValues, k*(2*s+1)*(2*s+1))
	}
	// 1 initial + s per outer iteration.
	if ss.MVProducts != 1+s*k {
		t.Fatalf("MVs = %d, want %d", ss.MVProducts, 1+s*k)
	}
	// s per outer iteration + 1 per boundary check (incl. the converged one).
	if ss.PrecApplies != s*k+k+1 {
		t.Fatalf("prec applies = %d, outer = %d", ss.PrecApplies, k)
	}
}

func TestCAPCG3ChebyshevHardProblem(t *testing.T) {
	a := sparse.VarCoeff2D(30, 30, 3, 7)
	b, xTrue := testProblem(a)
	m, _ := precond.NewJacobi(a)
	x, ss, err := CAPCG3(a, m, b, Options{S: 10, Basis: basis.Chebyshev, Tol: 1e-9, MaxIterations: 8000, Criterion: TrueResidual2Norm})
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Converged {
		t.Fatalf("did not converge: %v (rel %v)", ss.Breakdown, ss.FinalRelative)
	}
	if e := solutionError(x, xTrue); e > 1e-5 {
		t.Fatalf("solution error %v", e)
	}
}

func TestCAPCG3MonomialDegradesAtLargeS(t *testing.T) {
	// The paper's Table 2: CA-PCG3 with the monomial basis converges for
	// only 2/40 matrices at s=10; with Chebyshev it converges for ~half.
	a := sparse.Anisotropic2D(40, 40, 1e-3)
	b, _ := testProblem(a)
	m, _ := precond.NewJacobi(a)
	opts := Options{S: 10, Tol: 1e-9, MaxIterations: 4000, Criterion: TrueResidual2Norm}
	opts.Basis = basis.Monomial
	_, mon, err := CAPCG3(a, m, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Basis = basis.Chebyshev
	opts.Spectrum = nil
	_, cheb, err := CAPCG3(a, m, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cheb.Converged {
		t.Fatalf("Chebyshev basis did not converge: %v (rel %v)", cheb.Breakdown, cheb.FinalRelative)
	}
	if mon.Converged && mon.Iterations <= cheb.Iterations {
		t.Fatalf("monomial (%d) unexpectedly matched Chebyshev (%d)", mon.Iterations, cheb.Iterations)
	}
}

func TestCAPCG3Validation(t *testing.T) {
	a := sparse.Poisson1D(10)
	if _, _, err := CAPCG3(a, nil, make([]float64, 4), Options{S: 2}); err == nil {
		t.Fatal("bad b accepted")
	}
	if _, _, err := CAPCG3(a, nil, make([]float64, 10), Options{S: 2, X0: make([]float64, 2)}); err == nil {
		t.Fatal("bad x0 accepted")
	}
}

func TestCAPCG3ZeroRHS(t *testing.T) {
	a := sparse.Poisson1D(12)
	_, ss, err := CAPCG3(a, nil, make([]float64, 12), Options{S: 3, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Converged || ss.Iterations != 0 {
		t.Fatalf("zero rhs: %+v", ss)
	}
}

func TestAllSStepSolversAgreeOnSolution(t *testing.T) {
	// Cross-solver integration: all methods, all bases, one hard-ish
	// problem; every converging run must deliver the same solution.
	a := sparse.VarCoeff2D(20, 20, 2, 11)
	b, xTrue := testProblem(a)
	m, _ := precond.NewJacobi(a)
	type runFn func() (string, []float64, *Stats, error)
	runs := []runFn{
		func() (string, []float64, *Stats, error) {
			x, s, err := PCG(a, m, b, Options{Tol: 1e-10, Criterion: TrueResidual2Norm})
			return "pcg", x, s, err
		},
		func() (string, []float64, *Stats, error) {
			x, s, err := PCG3(a, m, b, Options{Tol: 1e-10, Criterion: TrueResidual2Norm})
			return "pcg3", x, s, err
		},
		func() (string, []float64, *Stats, error) {
			x, s, err := SPCG(a, m, b, Options{S: 6, Basis: basis.Chebyshev, Tol: 1e-10, Criterion: TrueResidual2Norm})
			return "spcg", x, s, err
		},
		func() (string, []float64, *Stats, error) {
			x, s, err := SPCGMon(a, m, b, Options{S: 3, Tol: 1e-10, Criterion: TrueResidual2Norm})
			return "spcgmon", x, s, err
		},
		func() (string, []float64, *Stats, error) {
			x, s, err := CAPCG(a, m, b, Options{S: 6, Basis: basis.Chebyshev, Tol: 1e-10, Criterion: TrueResidual2Norm})
			return "capcg", x, s, err
		},
		func() (string, []float64, *Stats, error) {
			x, s, err := CAPCG3(a, m, b, Options{S: 6, Basis: basis.Chebyshev, Tol: 1e-10, Criterion: TrueResidual2Norm})
			return "capcg3", x, s, err
		},
	}
	for _, run := range runs {
		name, x, ss, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ss.Converged {
			t.Fatalf("%s: did not converge (%v, rel %v)", name, ss.Breakdown, ss.FinalRelative)
		}
		if e := solutionError(x, xTrue); e > 1e-6 {
			t.Fatalf("%s: solution error %v", name, e)
		}
	}
}
