package solver

import (
	"fmt"
	"math"

	"spcg/internal/dense"
	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// DeflatedPCG solves A·x = b with deflation of a given subspace W (paper
// ref. [4], Carson–Knight–Demmel, here applied to standard PCG): search
// happens A-orthogonally to span(W), which removes the eigenvalues W captures
// from the effective spectrum. With W spanning approximations of the lowest
// eigenvectors — e.g. Ritz vectors from eig.RitzFromPCG — the preconditioned
// condition number drops to λmax/λ_{k+1} and iteration counts fall
// accordingly.
//
// Implementation: the projector Π = I − A·W·(WᵀAW)⁻¹·Wᵀ is applied to every
// residual, and the final solution is corrected by the deflated component
// x += W·(WᵀAW)⁻¹·Wᵀ·b. Each application costs one (small) dense solve and
// 2k axpys; AW is precomputed.
func DeflatedPCG(a *sparse.CSR, m precond.Interface, b []float64, w *vec.Block, opts Options) ([]float64, *Stats, error) {
	opts = opts.withDefaults()
	if w == nil || w.S() == 0 {
		return PCG(a, m, b, opts)
	}
	stats := &Stats{}
	c, err := newCtx(a, m, &opts, stats)
	if err != nil {
		return nil, nil, err
	}
	n := c.n
	if len(b) != n {
		return nil, nil, fmt.Errorf("%w: len(b)=%d, n=%d", ErrDimension, len(b), n)
	}
	if w.N != n {
		return nil, nil, fmt.Errorf("%w: deflation block has %d rows, n=%d", ErrDimension, w.N, n)
	}
	if opts.X0 != nil {
		return nil, nil, fmt.Errorf("solver: DeflatedPCG does not support a nonzero initial guess")
	}
	k := w.S()

	// Precompute AW and factor WᵀAW.
	aw := vec.NewBlock(n, k)
	for j := 0; j < k; j++ {
		c.spmv(aw.Col(j), w.Col(j))
	}
	waw := dense.FromRowMajor(k, k, c.gramLocal(w, aw))
	c.allreduce(k * k)
	waw.Symmetrize()
	if cond := dense.Cond2SPD(waw); cond > 1e12 {
		return nil, nil, fmt.Errorf("solver: WᵀAW has condition %.2g — deflation vectors are numerically dependent", cond)
	}
	chol, err := dense.Cholesky(waw)
	if err != nil {
		return nil, nil, fmt.Errorf("solver: WᵀAW not SPD (deflation vectors dependent?): %w", err)
	}

	// project applies Π: v −= AW·(WᵀAW)⁻¹·Wᵀ·v (one k-value allreduce).
	coef := make([]float64, k)
	project := func(v []float64) error {
		copy(coef, c.gramVecLocal(w, v))
		c.allreduce(k)
		if err := chol.Solve(coef); err != nil {
			return err
		}
		c.blockMulVecSub(v, aw, coef)
		return nil
	}

	x := make([]float64, n)
	r := append([]float64(nil), b...)
	u := make([]float64, n)
	p := make([]float64, n)
	s := make([]float64, n)
	scratch := make([]float64, n)

	if err := project(r); err != nil {
		return nil, nil, err
	}
	c.applyM(u, r)
	rho := c.dot(r, u)
	if !finite(rho) || rho < 0 {
		stats.Breakdown = fmt.Errorf("%w: initial rᵀM⁻¹r = %v", ErrBreakdown, rho)
		return finishDeflated(c, a, b, x, w, chol, opts, stats)
	}
	copy(p, u)

	initial := math.Sqrt(math.Max(rho, 0))
	if opts.Criterion != RecursiveResidualMNorm {
		v := c.localDot(r, r)
		c.allreduce(1)
		initial = math.Sqrt(v)
	}
	ck := newChecker(opts, initial, stats)
	if ck.done(initial) {
		stats.Converged = true
		return finishDeflated(c, a, b, x, w, chol, opts, stats)
	}

	for i := 0; i < opts.MaxIterations; i++ {
		if c.cancelled() {
			// The deflated correction step still runs: the partial iterate is
			// returned with its exactly-solvable component included.
			x, stats, err := finishDeflated(c, a, b, x, w, chol, opts, stats)
			if err == nil && !stats.Converged {
				err = ErrCancelled
			}
			return x, stats, err
		}
		c.spmv(s, p)
		if err := project(s); err != nil {
			stats.Breakdown = fmt.Errorf("%w: %v", ErrBreakdown, err)
			break
		}
		den := c.dot(p, s)
		if !finite(den) || den <= 0 {
			stats.Breakdown = fmt.Errorf("%w: pᵀΠAp = %v at iteration %d", ErrBreakdown, den, i)
			break
		}
		alpha := rho / den
		c.axpy(alpha, p, x)
		c.axpy(-alpha, s, r)
		c.applyM(u, r)
		rhoNew := c.dot(r, u)
		if !finite(rhoNew) || rhoNew < 0 {
			stats.Breakdown = fmt.Errorf("%w: rᵀM⁻¹r = %v at iteration %d", ErrBreakdown, rhoNew, i)
			break
		}
		beta := rhoNew / rho
		rho = rhoNew
		c.xpay(p, u, beta, p)

		stats.Iterations = i + 1
		stats.OuterIterations = i + 1
		// All criteria reduce to the projected M-norm here: the deflated
		// residual lives in the complement of A·span(W), so 2-norm-style
		// criteria would miss the (exactly solvable) deflated component.
		// Stats.TrueRelResidual reports the honest full residual after the
		// correction step.
		val := math.Sqrt(rho)
		_ = scratch
		if ck.done(val) {
			stats.Converged = true
			break
		}
	}
	return finishDeflated(c, a, b, x, w, chol, opts, stats)
}

// finishDeflated adds the deflated component: the CG part leaves a residual
// inside A·span(W), removed by x += W·(WᵀAW)⁻¹·Wᵀ·(b − A·x). Fills the
// shared end-of-run stats.
func finishDeflated(c *ctx, a *sparse.CSR, b, x []float64, w *vec.Block, chol *dense.Chol, opts Options, stats *Stats) ([]float64, *Stats, error) {
	k := w.S()
	res := make([]float64, c.n)
	c.spmv(res, x)
	vec.Sub(res, b, res)
	c.tr.VectorOp(float64(c.n), 24*float64(c.n))
	coef := make([]float64, k)
	copy(coef, c.gramVecLocal(w, res))
	c.allreduce(k)
	if err := chol.Solve(coef); err != nil {
		return nil, nil, err
	}
	c.blockMulVecAdd(x, w, coef)
	return finishRun(c, a, b, x, opts, stats), stats, nil
}
