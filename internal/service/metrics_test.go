package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestMetricsPrometheusText: GET /metrics serves valid-looking Prometheus
// text — correct content type, HELP/TYPE headers, and the acceptance
// criterion's metric groups (queue, cache, coalescing, kernels) — and the
// counters move after a solve.
func TestMetricsPrometheusText(t *testing.T) {
	s := New(Config{Workers: 2, BatchWindow: time.Millisecond})
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, st := postSolve(t, ts.URL, SolveRequest{Matrix: "poisson2d:16", Method: "spcg", S: 4}); code != http.StatusOK || st.State != JobDone {
		t.Fatalf("solve: HTTP %d, state %s", code, st.State)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, want := range []string{
		"# HELP spcgd_requests_total",
		"# TYPE spcgd_requests_total counter",
		"spcgd_requests_total 1",
		"spcgd_completed_total 1",
		"# TYPE spcgd_queue_depth gauge",
		"spcgd_setup_cache_misses_total 1",
		"# TYPE spcgd_request_duration_seconds histogram",
		`spcgd_request_duration_seconds_bucket{method="spcg",le="+Inf"} 1`,
		`spcgd_request_duration_seconds_count{method="spcg"} 1`,
		"spcgd_kernel_workers",
		"spcgd_solver_iterations_total",
		"spcgd_batch_size_max",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	// Every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestMetricsJSONFormat: ?format=json still serves the structured snapshot
// (the spcgload/CI consumer contract).
func TestMetricsJSONFormat(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, st := postSolve(t, ts.URL, SolveRequest{Matrix: "poisson2d:16"}); code != http.StatusOK || st.State != JobDone {
		t.Fatalf("solve: HTTP %d, state %s", code, st.State)
	}
	m := getMetrics(t, ts.URL)
	if m.RequestsTotal != 1 || m.Completed != 1 {
		t.Errorf("snapshot counters: %+v", m)
	}
	if m.SetupCache.Misses != 1 {
		t.Errorf("setup cache: %+v", m.SetupCache)
	}
	if _, ok := m.Latency["pcg"]; !ok {
		t.Errorf("latency map missing pcg: %+v", m.Latency)
	}
}

// TestSolveTraceOption: "trace": true returns a per-phase breakdown in the
// job result and bypasses coalescing.
func TestSolveTraceOption(t *testing.T) {
	s := New(Config{Workers: 2, BatchWindow: 50 * time.Millisecond, BatchMax: 8})
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, st := postSolve(t, ts.URL, SolveRequest{Matrix: "poisson2d:16", Method: "spcg", S: 4, Trace: true})
	if code != http.StatusOK || st.State != JobDone {
		t.Fatalf("solve: HTTP %d, state %s", code, st.State)
	}
	if st.Result == nil || len(st.Result.Phases) == 0 {
		t.Fatalf("traced solve returned no phases: %+v", st.Result)
	}
	var sawTime bool
	for _, p := range st.Result.Phases {
		if p.Count <= 0 {
			t.Errorf("phase %q with non-positive count", p.Phase)
		}
		sawTime = sawTime || p.Seconds > 0
	}
	if !sawTime {
		t.Errorf("no timed phase in %+v", st.Result.Phases)
	}
	if st.Result.Batched {
		t.Errorf("traced request was coalesced: %+v", st.Result)
	}

	// Untraced solves stay lean: no phases on the wire.
	code, st = postSolve(t, ts.URL, SolveRequest{Matrix: "poisson2d:16", NoBatch: true})
	if code != http.StatusOK || st.State != JobDone {
		t.Fatalf("untraced solve: HTTP %d, state %s", code, st.State)
	}
	if len(st.Result.Phases) != 0 {
		t.Errorf("untraced solve leaked phases: %+v", st.Result.Phases)
	}
}
