package solver

import (
	"errors"
	"testing"

	"spcg/internal/basis"
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

// solverFunc is declared in property_test.go.

func namedSolvers() map[string]solverFunc {
	return map[string]solverFunc{
		"pcg":      PCG,
		"pcg3":     PCG3,
		"spcg":     SPCG,
		"spcgmon":  SPCGMon,
		"capcg":    CAPCG,
		"capcg3":   CAPCG3,
		"adaptive": SPCGAdaptive,
		"pipelined": func(a *sparse.CSR, m precond.Interface, b []float64, o Options) ([]float64, *Stats, error) {
			return PipelinedPCG(a, m, b, o)
		},
	}
}

// TestCancelAlreadyClosed: a pre-closed Cancel channel stops every solver on
// its first iteration with ErrCancelled and partial (but well-formed) Stats.
func TestCancelAlreadyClosed(t *testing.T) {
	a := sparse.Poisson2D(24, 24)
	m, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1
	}
	done := make(chan struct{})
	close(done)
	for name, solve := range namedSolvers() {
		x, stats, err := solve(a, m, b, Options{S: 4, Basis: basis.Chebyshev, Cancel: done, Tol: 1e-10})
		if !errors.Is(err, ErrCancelled) {
			t.Errorf("%s: want ErrCancelled, got %v (stats=%+v)", name, err, stats)
			continue
		}
		if x == nil || stats == nil {
			t.Errorf("%s: cancelled run must still return partial x and stats", name)
			continue
		}
		if len(x) != a.Dim() {
			t.Errorf("%s: partial x has length %d, want %d", name, len(x), a.Dim())
		}
		if stats.Converged {
			t.Errorf("%s: zero-iteration run cannot be converged", name)
		}
		if stats.TrueRelResidual <= 0 {
			t.Errorf("%s: partial stats missing TrueRelResidual (%v)", name, stats.TrueRelResidual)
		}
	}
}

// cancelAfterPrec wraps a preconditioner and closes the cancel channel after
// a fixed number of applications: a deterministic way to cancel mid-solve
// without timer races.
type cancelAfterPrec struct {
	precond.Interface
	after int
	count int
	done  chan struct{}
}

func (p *cancelAfterPrec) Apply(dst, src []float64) {
	p.Interface.Apply(dst, src)
	p.count++
	if p.count == p.after {
		close(p.done)
	}
}

// TestCancelMidSolve: cancelling after a few iterations keeps the progress
// made so far — the solver stops early with ErrCancelled, a strictly partial
// iteration count, and a residual that improved on the start.
func TestCancelMidSolve(t *testing.T) {
	a := sparse.Poisson2D(32, 32)
	jac, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1
	}
	_, full, err := PCG(a, jac, b, Options{Tol: 1e-10})
	if err != nil || !full.Converged {
		t.Fatalf("reference run failed: %v %+v", err, full)
	}
	done := make(chan struct{})
	m := &cancelAfterPrec{Interface: jac, after: 8, done: done}
	x, stats, err := PCG(a, m, b, Options{Tol: 1e-10, Cancel: done})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v (iters=%d)", err, stats.Iterations)
	}
	if stats.Iterations == 0 || stats.Iterations >= full.Iterations {
		t.Errorf("cancelled run did %d iterations, want strictly between 0 and %d", stats.Iterations, full.Iterations)
	}
	// The 2-norm residual is not monotone in CG, so only require the partial
	// state to be finite and reported; progress is checked via Iterations.
	if !(stats.TrueRelResidual > 0) {
		t.Errorf("partial stats missing TrueRelResidual: %v", stats.TrueRelResidual)
	}
	if len(x) != a.Dim() {
		t.Error("missing partial solution")
	}
}

// TestCancelNilChannelNoop: a nil Cancel behaves exactly like before the
// feature existed.
func TestCancelNilChannelNoop(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	m, _ := precond.NewJacobi(a)
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1
	}
	_, stats, err := PCG(a, m, b, Options{Tol: 1e-9})
	if err != nil || !stats.Converged {
		t.Fatalf("nil-Cancel solve failed: %v %+v", err, stats)
	}
}
