package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismConfig targets the determinism analyzer.
type DeterminismConfig struct {
	// Packages are import paths checked in full: every statement of every
	// non-test file must be free of nondeterminism sources.
	Packages []string
	// LoopPackages are import paths checked only inside loop bodies — the
	// solver package, where setup code may consult maps and clocks but
	// iteration bodies must not.
	LoopPackages []string
}

// Determinism enforces bitwise reproducibility of the numeric hot path: no
// map-range iteration (order is randomized per run), no wall-clock reads, no
// unseeded global math/rand draws, and no ad-hoc goroutine spawns (scheduling
// order changes floating-point summation order) in the configured packages.
// The fused-vs-naive and SELL-vs-CSR parity guarantees the format engine and
// the replay tests pin only hold if these sources of run-to-run variation
// stay out of the kernels.
func Determinism(cfg DeterminismConfig) *Analyzer {
	full := stringSet(cfg.Packages)
	loops := stringSet(cfg.LoopPackages)
	a := &Analyzer{
		Name: "determinism",
		Doc:  "no map ranges, clock reads, unseeded rand or goroutine spawns in numeric hot paths",
	}
	a.Run = func(p *Pass) {
		var inLoopOnly bool
		switch {
		case full[p.Pkg.Types.Path()]:
			inLoopOnly = false
		case loops[p.Pkg.Types.Path()]:
			inLoopOnly = true
		default:
			return
		}
		for _, f := range p.Pkg.Files {
			if p.Pkg.IsTestFile(f.Pos()) {
				continue
			}
			walkLoopDepth(f, func(n ast.Node, loopDepth int) {
				active := !inLoopOnly || loopDepth > 0
				switch n := n.(type) {
				case *ast.RangeStmt:
					// The map range is itself a loop; in loop-only mode it
					// counts when nested inside another loop (an iteration
					// body), not when it is setup code at function level.
					if !inLoopOnly || loopDepth > 1 {
						if t := p.Pkg.Info.TypeOf(n.X); t != nil {
							if _, isMap := t.Underlying().(*types.Map); isMap {
								p.Reportf(n.Pos(), "range over map %s iterates in nondeterministic order", typeString(t))
							}
						}
					}
				case *ast.GoStmt:
					if active {
						p.Reportf(n.Pos(), "goroutine spawn in a deterministic hot path; use the worker pool's fixed-chunk dispatch instead")
					}
				case *ast.CallExpr:
					if !active {
						return
					}
					pkgPath, name, ok := pkgFuncOf(p, n)
					if !ok {
						return
					}
					switch {
					case pkgPath == "time" && (name == "Now" || name == "Since"):
						p.Reportf(n.Pos(), "wall-clock read time.%s in a deterministic hot path", name)
					case pkgPath == "math/rand" || pkgPath == "math/rand/v2":
						// Constructors (New, NewSource, NewPCG, ...) build the
						// seeded generators the invariant asks for; only draws
						// and state mutation on the package-level source are
						// nondeterministic across runs.
						if !strings.HasPrefix(name, "New") {
							p.Reportf(n.Pos(), "unseeded global rand.%s; draw from a rand.New(rand.NewSource(seed)) generator instead", name)
						}
					}
				}
			})
		}
	}
	return a
}

// walkLoopDepth walks the AST calling fn with the number of enclosing
// for/range statements (the node itself included when it is a loop).
func walkLoopDepth(root ast.Node, fn func(n ast.Node, loopDepth int)) {
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if n == nil {
			return
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
		}
		fn(n, depth)
		d := depth
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return true
			}
			walk(c, d)
			return false
		})
	}
	walk(root, 0)
}

func stringSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

func typeString(t types.Type) string { return t.String() }
