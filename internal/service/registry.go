package service

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"spcg/internal/sparse"
	"spcg/internal/suite"
)

// registry resolves matrix names to built CSR matrices. Two name families
// are served:
//
//   - the 40 suite problems (by SuiteSparse name, e.g. "apache2"), built at
//     1/Scale of the paper size on first request;
//   - parametric generators: "poisson1d:N", "poisson2d:NX[:NY]",
//     "poisson3d:NX[:NY:NZ]", "varcoeff2d:NX:CONTRAST[:SEED]",
//     "varcoeff3d:NX:CONTRAST[:SEED]", "aniso2d:NX:EPS",
//     "hubgraph:N[:SEED]" (random graph Laplacian with high-degree hubs —
//     the high row-length-variance structure the storage engine's SELL
//     format targets).
//
// Matrices are built once (per-entry sync.Once) and are immutable
// afterwards, so every solve and every cache entry shares the same *CSR.
type registry struct {
	scale int
	maxN  int
	mu    sync.Mutex
	byKey map[string]*matrixEntry
}

// matrixEntry is one lazily built matrix.
type matrixEntry struct {
	Name  string
	build func() (*sparse.CSR, error)
	once  sync.Once
	a     *sparse.CSR
	fp    uint64
	err   error
}

func (e *matrixEntry) get() (*sparse.CSR, uint64, error) {
	e.once.Do(func() {
		e.a, e.err = e.build()
		if e.err == nil {
			e.fp = e.a.Fingerprint()
		}
	})
	return e.a, e.fp, e.err
}

func newRegistry(scale, maxN int) *registry {
	if scale < 1 {
		scale = 1
	}
	if maxN <= 0 {
		maxN = 4 << 20
	}
	r := &registry{scale: scale, maxN: maxN, byKey: map[string]*matrixEntry{}}
	for _, p := range suite.All() {
		p := p
		r.byKey[p.Name] = &matrixEntry{
			Name:  p.Name,
			build: func() (*sparse.CSR, error) { return p.Build(scale), nil },
		}
	}
	return r
}

// names lists all registered (built or not) matrix names, sorted.
func (r *registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.byKey))
	for k := range r.byKey {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// get resolves name, registering a parametric generator entry on first use.
func (r *registry) get(name string) (*sparse.CSR, uint64, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return nil, 0, fmt.Errorf("empty matrix name")
	}
	r.mu.Lock()
	e, ok := r.byKey[name]
	if !ok {
		build, dim, err := r.parseGenerator(name)
		if err != nil {
			r.mu.Unlock()
			return nil, 0, err
		}
		// Bound the dimension BEFORE building: a hostile generator spec must
		// not allocate the matrix it is about to be rejected for.
		if dim > r.maxN {
			r.mu.Unlock()
			return nil, 0, fmt.Errorf("%w: matrix %s has n=%d > limit %d", ErrLimitExceeded, name, dim, r.maxN)
		}
		e = &matrixEntry{Name: name, build: build}
		r.byKey[name] = e
	}
	r.mu.Unlock()
	a, fp, err := e.get()
	if err != nil {
		return nil, 0, err
	}
	if a.Dim() > r.maxN {
		return nil, 0, fmt.Errorf("%w: matrix %s has n=%d > limit %d", ErrLimitExceeded, name, a.Dim(), r.maxN)
	}
	return a, fp, nil
}

// sizeCheck rejects a parametric generator spec whose dimension would exceed
// the limit, without building anything. Suite names pass (their scaled sizes
// are bounded by construction) and unknown specs pass too: the lazy
// resolution at solve time keeps its failure semantics for async clients.
func (r *registry) sizeCheck(name string) error {
	name = strings.TrimSpace(name)
	r.mu.Lock()
	_, known := r.byKey[name]
	r.mu.Unlock()
	if known {
		return nil
	}
	_, dim, err := r.parseGenerator(name)
	if err != nil {
		return nil
	}
	if dim > r.maxN {
		return fmt.Errorf("%w: matrix %s has n=%d > limit %d", ErrLimitExceeded, name, dim, r.maxN)
	}
	return nil
}

// parseGenerator turns "family:args" into a build closure plus the dimension
// the build would produce, so callers can enforce size limits before any
// allocation. The returned closure runs outside the registry lock.
func (r *registry) parseGenerator(name string) (func() (*sparse.CSR, error), int, error) {
	parts := strings.Split(name, ":")
	family := strings.ToLower(parts[0])
	args := parts[1:]
	ints := func(n int) ([]int, error) {
		if len(args) < n {
			return nil, fmt.Errorf("matrix %q: need at least %d arguments", name, n)
		}
		out := make([]int, len(args))
		for i, a := range args {
			v, err := strconv.Atoi(a)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("matrix %q: bad argument %q", name, a)
			}
			out[i] = v
		}
		return out, nil
	}
	switch family {
	case "poisson1d":
		v, err := ints(1)
		if err != nil {
			return nil, 0, err
		}
		return func() (*sparse.CSR, error) { return sparse.Poisson1D(v[0]), nil }, v[0], nil
	case "poisson2d":
		v, err := ints(1)
		if err != nil {
			return nil, 0, err
		}
		nx, ny := v[0], v[0]
		if len(v) > 1 {
			ny = v[1]
		}
		return func() (*sparse.CSR, error) { return sparse.Poisson2D(nx, ny), nil }, satMul(nx, ny), nil
	case "poisson3d":
		v, err := ints(1)
		if err != nil {
			return nil, 0, err
		}
		nx, ny, nz := v[0], v[0], v[0]
		if len(v) > 2 {
			ny, nz = v[1], v[2]
		}
		return func() (*sparse.CSR, error) { return sparse.Poisson3D(nx, ny, nz), nil }, satMul(satMul(nx, ny), nz), nil
	case "varcoeff2d", "varcoeff3d":
		if len(args) < 2 {
			return nil, 0, fmt.Errorf("matrix %q: need NX:CONTRAST[:SEED]", name)
		}
		nx, err := strconv.Atoi(args[0])
		if err != nil || nx < 1 {
			return nil, 0, fmt.Errorf("matrix %q: bad size %q", name, args[0])
		}
		contrast, err := strconv.ParseFloat(args[1], 64)
		if err != nil || contrast < 0 {
			return nil, 0, fmt.Errorf("matrix %q: bad contrast %q", name, args[1])
		}
		seed := int64(1)
		if len(args) > 2 {
			s, err := strconv.ParseInt(args[2], 10, 64)
			if err != nil {
				return nil, 0, fmt.Errorf("matrix %q: bad seed %q", name, args[2])
			}
			seed = s
		}
		if family == "varcoeff2d" {
			return func() (*sparse.CSR, error) { return sparse.VarCoeff2D(nx, nx, contrast, seed), nil }, satMul(nx, nx), nil
		}
		return func() (*sparse.CSR, error) { return sparse.VarCoeff3D(nx, nx, nx, contrast, seed), nil }, satMul(satMul(nx, nx), nx), nil
	case "hubgraph":
		if len(args) < 1 {
			return nil, 0, fmt.Errorf("matrix %q: need N[:SEED]", name)
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 2 {
			return nil, 0, fmt.Errorf("matrix %q: bad size %q", name, args[0])
		}
		seed := int64(1)
		if len(args) > 1 {
			s, err := strconv.ParseInt(args[1], 10, 64)
			if err != nil {
				return nil, 0, fmt.Errorf("matrix %q: bad seed %q", name, args[1])
			}
			seed = s
		}
		return func() (*sparse.CSR, error) { return sparse.HubGraphLaplacian(n, 4, 192, 48, 0.5, seed), nil }, n, nil
	case "aniso2d":
		if len(args) < 2 {
			return nil, 0, fmt.Errorf("matrix %q: need NX:EPS", name)
		}
		nx, err := strconv.Atoi(args[0])
		if err != nil || nx < 1 {
			return nil, 0, fmt.Errorf("matrix %q: bad size %q", name, args[0])
		}
		eps, err := strconv.ParseFloat(args[1], 64)
		if err != nil || eps <= 0 {
			return nil, 0, fmt.Errorf("matrix %q: bad epsilon %q", name, args[1])
		}
		return func() (*sparse.CSR, error) { return sparse.Anisotropic2D(nx, nx, eps), nil }, satMul(nx, nx), nil
	default:
		return nil, 0, fmt.Errorf("unknown matrix %q (suite name or generator spec expected)", name)
	}
}

// satMul multiplies two positive dimensions, saturating instead of
// overflowing so absurd generator specs still compare > maxN.
func satMul(a, b int) int {
	const maxInt = int(^uint(0) >> 1)
	if a > 0 && b > maxInt/a {
		return maxInt
	}
	return a * b
}
