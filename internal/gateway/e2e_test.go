package gateway

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"spcg/internal/service"
)

// TestEndToEndRealBackends runs the gateway over two real in-process spcgd
// servers: repeat-matrix traffic keeps 100% affinity, solves converge, and
// resubmitting a request_id through the gateway returns the same backend job
// instead of running a second solve.
func TestEndToEndRealBackends(t *testing.T) {
	var svcs []*service.Server
	var urls []string
	for i := 0; i < 2; i++ {
		s := service.New(service.Config{Workers: 2, QueueDepth: 32, BatchMax: 1})
		svcs = append(svcs, s)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, s := range svcs {
			_ = s.Shutdown(ctx)
		}
	})
	g, err := New(Config{Backends: urls, ProbeInterval: time.Hour, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(g.Close)

	matrices := []string{"poisson2d:12", "poisson2d:16", "poisson1d:64"}
	type jobDoc struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Result *struct {
			Converged bool `json:"converged"`
		} `json:"result"`
	}
	solve := func(body string) (int, jobDoc) {
		rec := postSolveGW(t, g, body)
		var doc jobDoc
		_ = json.Unmarshal(rec.Body.Bytes(), &doc)
		return rec.Code, doc
	}
	for round := 0; round < 3; round++ {
		for _, m := range matrices {
			code, doc := solve(`{"matrix":"` + m + `","method":"pcg","precond":"jacobi"}`)
			if code != http.StatusOK || doc.Result == nil || !doc.Result.Converged {
				t.Fatalf("solve %s: HTTP %d, doc %+v", m, code, doc)
			}
		}
	}
	snap := g.snapshot()
	if snap.AffinityRate != 1.0 {
		t.Fatalf("affinity rate %.3f with real backends, want 1.0 (hits=%d misses=%d)",
			snap.AffinityRate, snap.AffinityHits, snap.AffinityMiss)
	}

	// Idempotent resubmission end to end: same request_id twice — the
	// backend answers with the same job both times.
	body := `{"matrix":"poisson2d:12","method":"pcg","request_id":"e2e-dup-1"}`
	code1, doc1 := solve(body)
	code2, doc2 := solve(body)
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("dup solves: HTTP %d then %d", code1, code2)
	}
	if doc1.ID == "" || doc1.ID != doc2.ID {
		t.Fatalf("request_id dedup failed: job ids %q vs %q", doc1.ID, doc2.ID)
	}

	// The gateway's /jobs route follows the remembered backend for the job.
	req := httptest.NewRequest(http.MethodGet, "/jobs/"+doc1.ID, nil)
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /jobs/%s via gateway: HTTP %d", doc1.ID, rec.Code)
	}
}
