package service

import (
	"fmt"
	"sync"

	"spcg/internal/dist"
	"spcg/internal/fault"
	"spcg/internal/solver"
	"spcg/internal/sparse"
)

// ChaosConfig enables service-level fault injection for chaos testing: the
// daemon attacks its own solves with injected panics, solver soft errors and
// modeled communication faults while the resilience layer (panic isolation,
// watchdog, circuit breakers) must keep every job terminal and the process
// alive. All streams are seeded, so a chaos run is reproducible.
type ChaosConfig struct {
	// Seed seeds the panic, soft-error and comm-fault streams (default 1).
	Seed uint64
	// PanicProb is the per-solo-job probability of an injected panic inside
	// the worker, exercising panic isolation (0 disables).
	PanicProb float64
	// Fault configures the solver-level soft-error injector installed into
	// every solo solve (the zero value injects nothing; see internal/fault).
	Fault fault.Config
	// DetectEvery turns on the solvers' corruption detection + rollback every
	// k (outer) iterations for chaos solves, so injected soft errors are
	// survivable rather than guaranteed breakdowns (default 10 when Fault
	// injects something; < 0 leaves detection off).
	DetectEvery int
	// CommFaultProb attaches a per-solve modeled-cluster tracker whose fault
	// model drops collectives and halo messages with this probability; the
	// charged retries surface as Stats.RetriedMessages and the
	// spcgd_comm_retries_total metric (0 disables).
	CommFaultProb float64
	// Nodes sizes the modeled cluster used for CommFaultProb (default 2
	// nodes × 4 ranks; matrices with fewer rows than ranks skip the tracker).
	Nodes int
}

// chaosState owns the server's fault-injection machinery. A nil *chaosState
// is inert: every method no-ops.
type chaosState struct {
	cfg ChaosConfig
	inj *fault.Injector

	mu       sync.Mutex
	rng      uint64
	panics   int64
	clusters map[uint64]*dist.Cluster // per-fingerprint; nil entry = unbuildable
}

func newChaosState(cfg ChaosConfig) *chaosState {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.DetectEvery == 0 {
		cfg.DetectEvery = 10
	}
	if cfg.Nodes < 1 {
		cfg.Nodes = 2
	}
	c := &chaosState{cfg: cfg, rng: cfg.Seed, clusters: map[uint64]*dist.Cluster{}}
	if cfg.Fault != (fault.Config{}) {
		c.inj = fault.New(cfg.Seed, cfg.Fault)
	}
	return c
}

// next is splitmix64 over the shared chaos stream.
func (c *chaosState) next() float64 {
	c.mu.Lock()
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	c.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// maybePanic injects a panic with the configured probability. Called from
// the worker goroutine inside the resilience.Safe guard, so an injected
// panic becomes a failed job, never a daemon crash.
func (c *chaosState) maybePanic(jobID string) {
	if c == nil || c.cfg.PanicProb <= 0 {
		return
	}
	if c.next() < c.cfg.PanicProb {
		c.mu.Lock()
		c.panics++
		c.mu.Unlock()
		panic(fmt.Sprintf("chaos: injected panic (%s)", jobID))
	}
}

// arm installs the solver-level injectors into one solve's options: the
// shared soft-error injector (concurrency-safe by construction) and a fresh
// per-solve comm-fault tracker (trackers are single-solve state).
func (c *chaosState) arm(opts *solver.Options, a *sparse.CSR, fp uint64) {
	if c == nil {
		return
	}
	if c.inj != nil {
		opts.Injector = c.inj
		if c.cfg.DetectEvery > 0 && opts.DetectEvery == 0 {
			opts.DetectEvery = c.cfg.DetectEvery
		}
	}
	if c.cfg.CommFaultProb > 0 {
		if cl := c.cluster(a, fp); cl != nil {
			opts.Tracker = dist.NewTracker(cl)
		}
	}
}

// cluster returns the cached modeled cluster for a matrix, building it on
// first use. Matrices too small for the rank count cache a nil entry.
func (c *chaosState) cluster(a *sparse.CSR, fp uint64) *dist.Cluster {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl, ok := c.clusters[fp]; ok {
		return cl
	}
	m := dist.DefaultMachine()
	m.RanksPerNode = 4 // small ranks so serving-scale matrices still partition
	m.Faults = dist.FaultModel{CommFailProb: c.cfg.CommFaultProb, Seed: c.cfg.Seed}
	cl, err := dist.NewCluster(m, c.cfg.Nodes, a)
	if err != nil {
		cl = nil
	}
	c.clusters[fp] = cl
	return cl
}

// injectedPanics reports how many panics the chaos layer has fired.
func (c *chaosState) injectedPanics() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return float64(c.panics)
}
