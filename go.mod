module spcg

go 1.22
