package spcg

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links/images: [text](target). Reference
// definitions and autolinks are out of scope — the repo's docs use inline
// links throughout.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsRelativeLinks walks every tracked markdown file and asserts that
// each relative link target exists on disk, so docs cross-references can't
// silently rot when files move. External URLs and pure anchors are skipped;
// a trailing #fragment is checked against the target file's existence only.
func TestDocsRelativeLinks(t *testing.T) {
	var files []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if strings.HasPrefix(name, ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
	if len(files) < 10 {
		t.Fatalf("found only %d markdown files — test is not running from the repo root", len(files))
	}
	for _, f := range files {
		body, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("read %s: %v", f, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(f), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", f, m[1], resolved)
			}
		}
	}
}
