package solver

import (
	"testing"

	"spcg/internal/dist"
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

func TestPipelinedPCGMatchesPCG(t *testing.T) {
	// Pipelined PCG is mathematically equivalent to PCG: iteration counts
	// must agree closely on a well-conditioned problem.
	a := sparse.Poisson2D(16, 16)
	b, xTrue := testProblem(a)
	m, _ := precond.NewJacobi(a)
	_, ps, err := PCG(a, m, b, Options{Tol: 1e-9, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	x, pp, err := PipelinedPCG(a, m, b, Options{Tol: 1e-9, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if !pp.Converged {
		t.Fatalf("did not converge: %v", pp.Breakdown)
	}
	if e := solutionError(x, xTrue); e > 1e-7 {
		t.Fatalf("solution error %v", e)
	}
	if d := pp.Iterations - ps.Iterations; d < -2 || d > 2 {
		t.Fatalf("pipelined %d iterations vs PCG %d", pp.Iterations, ps.Iterations)
	}
}

func TestPipelinedPCGCriteria(t *testing.T) {
	for _, crit := range []Criterion{TrueResidual2Norm, RecursiveResidual2Norm, RecursiveResidualMNorm} {
		a := sparse.Poisson1D(60)
		b, xTrue := testProblem(a)
		x, st, err := PipelinedPCG(a, nil, b, Options{Criterion: crit, Tol: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged {
			t.Fatalf("%v: did not converge", crit)
		}
		if e := solutionError(x, xTrue); e > 1e-6 {
			t.Fatalf("%v: error %v", crit, e)
		}
	}
}

func TestPipelinedPCGHidesCollectiveAtScale(t *testing.T) {
	// The point of pipelining: at high node counts the modeled time per
	// iteration must be lower than standard PCG's (the allreduce hides
	// behind the overlapped SpMV + preconditioner application), even though
	// pipelined PCG does MORE local work per iteration.
	a := sparse.Poisson3D(24, 24, 24)
	b, _ := testProblem(a)
	m, _ := precond.NewJacobi(a)
	machine := dist.DefaultMachine()
	cl, err := dist.NewCluster(machine, 16, a) // 2048 ranks: latency-bound PCG
	if err != nil {
		t.Fatal(err)
	}
	run := func(fn solverFunc) float64 {
		opts := Options{Tol: 1e-7, Criterion: RecursiveResidualMNorm, Tracker: dist.NewTracker(cl)}
		_, st, err := fn(a, m, b, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged {
			t.Fatalf("did not converge: %v", st.Breakdown)
		}
		return st.SimTime / float64(st.Iterations)
	}
	pcgPerIter := run(PCG)
	pipePerIter := run(PipelinedPCG)
	if pipePerIter >= pcgPerIter {
		t.Fatalf("pipelined per-iteration time %.3g not below PCG %.3g at 2048 ranks", pipePerIter, pcgPerIter)
	}
}

func TestPipelinedPCGOneCollectivePerIteration(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	b, _ := testProblem(a)
	machine := dist.DefaultMachine()
	machine.RanksPerNode = 8
	cl, err := dist.NewCluster(machine, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	tr := dist.NewTracker(cl)
	_, st, err := PipelinedPCG(a, nil, b, Options{Criterion: RecursiveResidualMNorm, Tracker: tr})
	if err != nil {
		t.Fatal(err)
	}
	// 1 initial γ + 1 fused (overlapped) collective per iteration.
	if st.Allreduces != 1+st.Iterations {
		t.Fatalf("allreduces = %d for %d iterations", st.Allreduces, st.Iterations)
	}
}

func TestPipelinedPCGValidation(t *testing.T) {
	a := sparse.Poisson1D(10)
	if _, _, err := PipelinedPCG(a, nil, make([]float64, 4), Options{}); err == nil {
		t.Fatal("bad b accepted")
	}
	if _, _, err := PipelinedPCG(a, nil, make([]float64, 10), Options{X0: make([]float64, 2)}); err == nil {
		t.Fatal("bad x0 accepted")
	}
}
