package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format builder used to assemble matrices entry by
// entry before conversion to CSR. Duplicate (i,j) entries are summed on
// conversion, matching finite-element assembly semantics.
type COO struct {
	N    int
	rows []int
	cols []int
	vals []float64
}

// NewCOO returns an empty n×n builder.
func NewCOO(n int) *COO {
	if n < 0 {
		panic("sparse: NewCOO negative dimension")
	}
	return &COO{N: n}
}

// Add appends entry (i,j,v). Zero values are kept (callers may rely on the
// sparsity pattern, e.g. IC(0)).
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.N || j < 0 || j >= c.N {
		panic(fmt.Sprintf("sparse: COO.Add index (%d,%d) out of range for n=%d", i, j, c.N))
	}
	c.rows = append(c.rows, i)
	c.cols = append(c.cols, j)
	c.vals = append(c.vals, v)
}

// AddSym appends (i,j,v) and, when i≠j, (j,i,v).
func (c *COO) AddSym(i, j int, v float64) {
	c.Add(i, j, v)
	if i != j {
		c.Add(j, i, v)
	}
}

// NNZ returns the number of accumulated (pre-dedup) entries.
func (c *COO) NNZ() int { return len(c.vals) }

// ToCSR converts to CSR, summing duplicates and sorting columns per row.
func (c *COO) ToCSR() *CSR {
	n := c.N
	order := make([]int, len(c.vals))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if c.rows[ia] != c.rows[ib] {
			return c.rows[ia] < c.rows[ib]
		}
		return c.cols[ia] < c.cols[ib]
	})
	rowPtr := make([]int, n+1)
	colIdx := make([]int, 0, len(c.vals))
	val := make([]float64, 0, len(c.vals))
	lastRow, lastCol := -1, -1
	for _, k := range order {
		r, cl, v := c.rows[k], c.cols[k], c.vals[k]
		if r == lastRow && cl == lastCol {
			val[len(val)-1] += v // merge duplicate
			continue
		}
		rowPtr[r+1]++
		colIdx = append(colIdx, cl)
		val = append(val, v)
		lastRow, lastCol = r, cl
	}
	for i := 0; i < n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	return &CSR{N: n, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}
