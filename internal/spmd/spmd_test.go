package spmd

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"spcg/internal/basis"
	"spcg/internal/eig"
	"spcg/internal/precond"
	"spcg/internal/solver"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

func TestWorldBarrierAndAllreduce(t *testing.T) {
	w := NewWorld(5)
	var counter int64
	w.Run(func(r *Rank) {
		atomic.AddInt64(&counter, 1)
		r.Barrier()
		// After the barrier every rank must observe all increments.
		if atomic.LoadInt64(&counter) != 5 {
			t.Errorf("rank %d saw counter %d before allreduce", r.ID, counter)
		}
		sum := r.Allreduce([]float64{float64(r.ID + 1), 1})
		if sum[0] != 15 || sum[1] != 5 {
			t.Errorf("rank %d allreduce = %v", r.ID, sum)
		}
		// Repeated reductions must not interfere.
		sum2 := r.Allreduce([]float64{2})
		if sum2[0] != 10 {
			t.Errorf("rank %d second allreduce = %v", r.ID, sum2)
		}
	})
}

func TestWorldSendRecv(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(r *Rank) {
		next := (r.ID + 1) % 4
		prev := (r.ID + 3) % 4
		r.Send(next, []float64{float64(r.ID)})
		got := r.Recv(prev)
		if got[0] != float64(prev) {
			t.Errorf("rank %d got %v from %d", r.ID, got, prev)
		}
	})
}

func TestDistributeRoundTripSpMV(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		name string
		a    *sparse.CSR
		p    int
	}{
		{"poisson1d p=3", sparse.Poisson1D(50), 3},
		{"poisson2d p=4", sparse.Poisson2D(13, 11), 4},
		{"poisson3d p=7", sparse.Poisson3D(6, 5, 4), 7},
		{"varcoeff p=5", sparse.VarCoeff2D(12, 12, 2, 3), 5},
		{"p=1", sparse.Poisson2D(8, 8), 1},
	} {
		a, p := tc.a, tc.p
		x := make([]float64, a.Dim())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, a.Dim())
		a.MulVec(want, x)

		locals, err := Distribute(a, p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := make([]float64, a.Dim())
		w := NewWorld(p)
		w.Run(func(rk *Rank) {
			lm := locals[rk.ID]
			dst := make([]float64, lm.NLocal())
			lm.SpMV(rk, dst, x[lm.Lo:lm.Hi])
			copy(got[lm.Lo:lm.Hi], dst)
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: distributed SpMV differs at row %d: %v vs %v", tc.name, i, got[i], want[i])
			}
		}
	}
}

func TestDistributeRepeatedExchanges(t *testing.T) {
	// Multiple rounds through the same protocol (as in a solver loop) must
	// stay consistent — this exercises mailbox reuse and the round barrier.
	a := sparse.Poisson2D(10, 10)
	p := 4
	locals, err := Distribute(a, p)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Dim())
	for i := range x {
		x[i] = float64(i)
	}
	// want = A³·x computed sequentially.
	want := append([]float64(nil), x...)
	tmp := make([]float64, a.Dim())
	for k := 0; k < 3; k++ {
		a.MulVec(tmp, want)
		want, tmp = tmp, want
	}
	got := make([]float64, a.Dim())
	w := NewWorld(p)
	w.Run(func(rk *Rank) {
		lm := locals[rk.ID]
		cur := append([]float64(nil), x[lm.Lo:lm.Hi]...)
		dst := make([]float64, lm.NLocal())
		for k := 0; k < 3; k++ {
			lm.SpMV(rk, dst, cur)
			copy(cur, dst)
		}
		copy(got[lm.Lo:lm.Hi], cur)
	})
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("A³x differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestDistributeValidation(t *testing.T) {
	a := sparse.Poisson1D(5)
	if _, err := Distribute(a, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := Distribute(a, 10); err == nil {
		t.Fatal("p > rows accepted")
	}
}

func TestPCGJacobiMatchesSequential(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	n := a.Dim()
	rng := rand.New(rand.NewSource(5))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	// Sequential reference through the solver package.
	m, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	xSeq, seqStats, err := solver.PCG(a, m, b, solver.Options{Tol: 1e-10, Criterion: solver.RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 5, 8} {
		res, err := PCGJacobi(a, b, p, 1e-10, 0)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !res.Converged {
			t.Fatalf("p=%d: did not converge", p)
		}
		// Same iteration count ±1 (reduction order differs slightly).
		if d := res.Iterations - seqStats.Iterations; d < -1 || d > 1 {
			t.Fatalf("p=%d: %d iterations vs sequential %d", p, res.Iterations, seqStats.Iterations)
		}
		// Same solution to tight tolerance.
		diff := make([]float64, n)
		vec.Sub(diff, res.X, xSeq)
		if rel := vec.Norm2(diff) / vec.Norm2(xSeq); rel > 1e-8 {
			t.Fatalf("p=%d: solutions differ by %v", p, rel)
		}
		// Communication pattern: 1 initial + 2 per iteration allreduces.
		if res.Allreduces != 1+2*res.Iterations {
			t.Fatalf("p=%d: %d allreduces for %d iterations", p, res.Allreduces, res.Iterations)
		}
	}
}

func TestPCGJacobiDeterministicAcrossRuns(t *testing.T) {
	// Rank-ordered reduction makes the parallel solve bitwise reproducible.
	a := sparse.VarCoeff2D(14, 14, 2, 9)
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	r1, err := PCGJacobi(a, b, 6, 1e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := PCGJacobi(a, b, 6, 1e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Iterations != r2.Iterations {
		t.Fatal("iteration counts differ across runs")
	}
	for i := range r1.X {
		if r1.X[i] != r2.X[i] {
			t.Fatalf("solutions differ bitwise at %d", i)
		}
	}
}

func TestPCGJacobiValidation(t *testing.T) {
	a := sparse.Poisson1D(10)
	if _, err := PCGJacobi(a, make([]float64, 3), 2, 1e-9, 0); err == nil {
		t.Fatal("bad rhs accepted")
	}
	coo := sparse.NewCOO(4)
	for i := 0; i < 4; i++ {
		coo.Add(i, i, -1)
		if i > 0 {
			coo.AddSym(i, i-1, 0.1)
		}
	}
	if _, err := PCGJacobi(coo.ToCSR(), make([]float64, 4), 2, 1e-9, 0); err == nil {
		t.Fatal("negative diagonal accepted")
	}
}

func TestSPCGJacobiMatchesSequentialSPCG(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	n := a.Dim()
	rng := rand.New(rand.NewSource(11))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	m, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	est, err := eig.RitzFromPCG(a, m.Apply, eig.Options{Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	s := 5
	params := basis.ChebyshevParams(s, est.LambdaMin, est.LambdaMax)
	xSeq, seqStats, err := solver.SPCG(a, m, b, solver.Options{
		S: s, BasisParams: params, Tol: 1e-9, Criterion: solver.RecursiveResidualMNorm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seqStats.Converged {
		t.Fatalf("sequential sPCG did not converge: %v", seqStats.Breakdown)
	}
	for _, p := range []int{1, 3, 6} {
		res, err := SPCGJacobi(a, b, p, s, params, 1e-9, 0)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !res.Converged {
			t.Fatalf("p=%d: did not converge", p)
		}
		if d := res.Iterations - seqStats.Iterations; d < -s || d > s {
			t.Fatalf("p=%d: %d iterations vs sequential %d", p, res.Iterations, seqStats.Iterations)
		}
		diff := make([]float64, n)
		vec.Sub(diff, res.X, xSeq)
		if rel := vec.Norm2(diff) / vec.Norm2(xSeq); rel > 1e-7 {
			t.Fatalf("p=%d: solutions differ by %v", p, rel)
		}
		// Communication: 2 collectives per outer iteration (rho + Gram) + 1
		// final boundary check.
		outer := res.Iterations / s
		if res.Allreduces != 2*outer+1 {
			t.Fatalf("p=%d: %d collectives for %d outer iterations", p, res.Allreduces, outer)
		}
	}
}

func TestSPCGJacobiValidation(t *testing.T) {
	a := sparse.Poisson1D(20)
	params := basis.MonomialParams(3)
	if _, err := SPCGJacobi(a, make([]float64, 5), 2, 3, params, 1e-9, 0); err == nil {
		t.Fatal("bad rhs accepted")
	}
	if _, err := SPCGJacobi(a, make([]float64, 20), 2, 0, params, 1e-9, 0); err == nil {
		t.Fatal("s=0 accepted")
	}
	if _, err := SPCGJacobi(a, make([]float64, 20), 2, 5, params, 1e-9, 0); err == nil {
		t.Fatal("degree < s accepted")
	}
	if _, err := SPCGJacobi(a, make([]float64, 20), 2, 3, nil, 1e-9, 0); err == nil {
		t.Fatal("nil params accepted")
	}
}

func TestCAPCGJacobiMatchesSequentialCAPCG(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	n := a.Dim()
	rng := rand.New(rand.NewSource(21))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	m, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	est, err := eig.RitzFromPCG(a, m.Apply, eig.Options{Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	s := 5
	params := basis.ChebyshevParams(s, est.LambdaMin, est.LambdaMax)
	xSeq, seqStats, err := solver.CAPCG(a, m, b, solver.Options{
		S: s, BasisParams: params, Tol: 1e-9, Criterion: solver.RecursiveResidualMNorm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seqStats.Converged {
		t.Fatalf("sequential CA-PCG did not converge: %v", seqStats.Breakdown)
	}
	for _, p := range []int{1, 4, 7} {
		res, err := CAPCGJacobi(a, b, p, s, params, 1e-9, 0)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !res.Converged {
			t.Fatalf("p=%d: did not converge", p)
		}
		if d := res.Iterations - seqStats.Iterations; d < -s || d > s {
			t.Fatalf("p=%d: %d iterations vs sequential %d", p, res.Iterations, seqStats.Iterations)
		}
		diff := make([]float64, n)
		vec.Sub(diff, res.X, xSeq)
		if rel := vec.Norm2(diff) / vec.Norm2(xSeq); rel > 1e-7 {
			t.Fatalf("p=%d: solutions differ by %v", p, rel)
		}
		outer := res.Iterations / s
		if res.Allreduces != 2*outer+1 {
			t.Fatalf("p=%d: %d collectives for %d outer iterations", p, res.Allreduces, outer)
		}
	}
}

func TestCAPCGJacobiValidation(t *testing.T) {
	a := sparse.Poisson1D(20)
	params := basis.MonomialParams(3)
	if _, err := CAPCGJacobi(a, make([]float64, 5), 2, 3, params, 1e-9, 0); err == nil {
		t.Fatal("bad rhs accepted")
	}
	if _, err := CAPCGJacobi(a, make([]float64, 20), 2, 5, params, 1e-9, 0); err == nil {
		t.Fatal("degree < s accepted")
	}
}
