package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked analysis unit: either a package together with
// its in-package _test.go files, or a package's external _test package. The
// split mirrors how the go tool compiles tests, so analyzers see exactly the
// code that ships plus exactly the code that tests it.
type Package struct {
	// Path is the unit's import path; external test units carry a "_test"
	// suffix ("spcg/internal/vec_test").
	Path string
	// Dir is the package directory relative to the module root.
	Dir string
	// Files are the parsed sources, with comments.
	Files []*ast.File
	// Types and Info hold the go/types results for the unit.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check problems without aborting the load;
	// a non-empty list means analyzer results for this unit may be
	// incomplete.
	TypeErrors []error

	fset *token.FileSet
}

// Filename returns the name of the file containing pos.
func (p *Package) Filename(pos token.Pos) string {
	return p.fset.Position(pos).Filename
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Package) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Filename(pos), "_test.go")
}

// Module is a fully loaded and type-checked Go module.
type Module struct {
	// Root is the absolute path of the module root (the go.mod directory).
	Root string
	// Path is the module path from go.mod.
	Path string
	// Fset positions every file in the module.
	Fset *token.FileSet
	// Packages are the analysis units in deterministic (sorted, dependency
	// respecting) order.
	Packages []*Package
}

// dirUnit is one package directory during loading.
type dirUnit struct {
	dir     string // relative to root
	path    string // import path
	pure    []*ast.File
	inTest  []*ast.File
	extTest []*ast.File
}

// LoadModule parses and type-checks every package of the module rooted at
// root (the directory containing go.mod). Dependencies outside the module —
// the standard library — are resolved from compiler export data located via
// `go list -export`, so the loader needs no source for them and no modules
// beyond the target. testdata, vendor, hidden directories and nested modules
// are skipped, exactly like `./...`.
func LoadModule(root string) (*Module, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(absRoot)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	units, err := parseTree(fset, absRoot, modPath)
	if err != nil {
		return nil, err
	}

	exports, err := exportData(absRoot)
	if err != nil {
		return nil, err
	}

	res := &resolver{
		exports:  exports,
		modPath:  modPath,
		internal: make(map[string]*types.Package),
		gc:       importer.ForCompiler(fset, "gc", lookupFunc(exports)),
	}

	order, err := topoOrder(units, modPath)
	if err != nil {
		return nil, err
	}

	m := &Module{Root: absRoot, Path: modPath, Fset: fset}

	// Pass 1: type-check the pure (non-test) files of every package in
	// dependency order; these become the import sources for everything else.
	pureChecked := make(map[string]*types.Package, len(order))
	for _, u := range order {
		if len(u.pure) == 0 {
			continue
		}
		pkg, _, _ := check(fset, u.path, u.pure, res)
		pureChecked[u.path] = pkg
		res.internal[u.path] = pkg
	}

	// Pass 2: build the analysis units. The augmented unit re-checks the
	// pure files together with the in-package test files (this is the unit
	// analyzers see); the external unit checks the foo_test package against
	// the augmented types so export_test.go-style helpers resolve.
	for _, u := range order {
		files := append(append([]*ast.File{}, u.pure...), u.inTest...)
		if len(files) > 0 {
			pkg, info, errs := check(fset, u.path, files, res)
			m.Packages = append(m.Packages, &Package{
				Path: u.path, Dir: u.dir, Files: files,
				Types: pkg, Info: info, TypeErrors: errs, fset: fset,
			})
			if len(u.extTest) > 0 {
				res.override = map[string]*types.Package{u.path: pkg}
			}
		}
		if len(u.extTest) > 0 {
			pkg, info, errs := check(fset, u.path+"_test", u.extTest, res)
			res.override = nil
			m.Packages = append(m.Packages, &Package{
				Path: u.path + "_test", Dir: u.dir, Files: u.extTest,
				Types: pkg, Info: info, TypeErrors: errs, fset: fset,
			})
		}
	}
	return m, nil
}

// modulePath reads the module directive from root/go.mod.
func modulePath(root string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: not a module root: %w", err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if p := strings.TrimSpace(rest); p != "" {
				return strings.Trim(p, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// parseTree walks the module tree and parses every package directory.
func parseTree(fset *token.FileSet, root, modPath string) ([]*dirUnit, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var units []*dirUnit
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		rel, _ := filepath.Rel(root, dir)
		u := &dirUnit{dir: rel, path: importPath(modPath, rel)}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(rel, name), err)
			}
			switch {
			case !strings.HasSuffix(name, "_test.go"):
				u.pure = append(u.pure, f)
			case strings.HasSuffix(f.Name.Name, "_test"):
				u.extTest = append(u.extTest, f)
			default:
				u.inTest = append(u.inTest, f)
			}
		}
		if len(u.pure)+len(u.inTest)+len(u.extTest) > 0 {
			units = append(units, u)
		}
	}
	return units, nil
}

func importPath(modPath, rel string) string {
	if rel == "." || rel == "" {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Export     string
}

// exportData locates compiler export data for every dependency of the module
// (including test-only dependencies) by running the go tool once. The result
// maps import paths to export-data files in the build cache.
func exportData(root string) (map[string]string, error) {
	cmd := exec.Command("go", "list", "-deps", "-export", "-test",
		"-json=ImportPath,Export", "./...")
	cmd.Dir = root
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list -export failed: %v\n%s", err, errb.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(&out)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

func lookupFunc(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// resolver implements types.Importer: module-internal packages come from the
// loader's own pass-1 results, everything else from compiler export data.
type resolver struct {
	exports  map[string]string
	modPath  string
	internal map[string]*types.Package
	override map[string]*types.Package
	gc       types.Importer
}

func (r *resolver) Import(path string) (*types.Package, error) {
	if p := r.override[path]; p != nil {
		return p, nil
	}
	if p := r.internal[path]; p != nil {
		return p, nil
	}
	if path == r.modPath || strings.HasPrefix(path, r.modPath+"/") {
		return nil, fmt.Errorf("lint: module package %q not loaded before its importer (cycle?)", path)
	}
	return r.gc.Import(path)
}

// check type-checks one file set as package path, collecting rather than
// aborting on errors.
func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, []error) {
	var errs []error
	cfg := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, _ := cfg.Check(path, fset, files, info)
	return pkg, info, errs
}

// topoOrder sorts units so every module-internal import of a unit's pure
// files precedes it.
func topoOrder(units []*dirUnit, modPath string) ([]*dirUnit, error) {
	byPath := make(map[string]*dirUnit, len(units))
	for _, u := range units {
		byPath[u.path] = u
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[string]int, len(units))
	var order []*dirUnit
	var visit func(u *dirUnit, chain []string) error
	visit = func(u *dirUnit, chain []string) error {
		switch state[u.path] {
		case gray:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(chain, u.path), " -> "))
		case black:
			return nil
		}
		state[u.path] = gray
		for _, imp := range pureImports(u, modPath) {
			if dep := byPath[imp]; dep != nil {
				if err := visit(dep, append(chain, u.path)); err != nil {
					return err
				}
			}
		}
		state[u.path] = black
		order = append(order, u)
		return nil
	}
	for _, u := range units {
		if err := visit(u, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// pureImports lists the module-internal import paths of a unit's non-test
// files, sorted and deduplicated.
func pureImports(u *dirUnit, modPath string) []string {
	seen := make(map[string]bool)
	for _, f := range u.pure {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == modPath || strings.HasPrefix(path, modPath+"/") {
				seen[path] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
