package solver

import (
	"math"
	"math/rand"
	"testing"

	"spcg/internal/basis"
	"spcg/internal/mpk"
	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

type rawOp struct{ a *sparse.CSR }

func (o rawOp) Dim() int                  { return o.a.Dim() }
func (o rawOp) MulVec(dst, src []float64) { o.a.MulVec(dst, src) }

// TestCAPCGChangeOfBasisMatchesOperators pins the paper's §2.3 contract at
// the matrix level: with Y = [Q|R̂] and Z = M⁻¹Y built by the MPK exactly as
// CAPCG builds them, A·Z·c must equal Y·B·c for every coefficient vector c
// supported by the inner iterations (zero in the last column of each block).
func TestCAPCGChangeOfBasisMatchesOperators(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := sparse.Poisson2D(9, 8)
	n := a.Dim()
	m, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	s := 4
	for _, bt := range []basis.Type{basis.Monomial, basis.Newton, basis.Chebyshev} {
		params, err := basis.New(bt, s, 0.2, 2.0, []float64{0.4, 1.0, 1.8})
		if err != nil {
			t.Fatal(err)
		}
		// Seed vectors q, r and their preconditioned companions.
		q := make([]float64, n)
		r := make([]float64, n)
		for i := range q {
			q[i] = rng.NormFloat64()
			r[i] = rng.NormFloat64()
		}
		p := make([]float64, n)
		u := make([]float64, n)
		m.Apply(p, q)
		m.Apply(u, r)

		qBlock := vec.NewBlock(n, s+1)
		pBlock := vec.NewBlock(n, s+1)
		rBlock := vec.NewBlock(n, s)
		uBlock := vec.NewBlock(n, s)
		if err := mpk.Compute(rawOp{a}, m, params, q, p, qBlock, pBlock); err != nil {
			t.Fatal(err)
		}
		if err := mpk.Compute(rawOp{a}, m, params, r, u, rBlock, uBlock); err != nil {
			t.Fatal(err)
		}
		y := &vec.Block{N: n, Cols: append(append([][]float64{}, qBlock.Cols...), rBlock.Cols...)}
		z := &vec.Block{N: n, Cols: append(append([][]float64{}, pBlock.Cols...), uBlock.Cols...)}
		bMat := params.CAPCGChangeOfBasis(s)

		dim := 2*s + 1
		for trial := 0; trial < 10; trial++ {
			// Coefficients supported by the inner loop: zero at positions s
			// and 2s (last columns of the Q and R blocks).
			c := make([]float64, dim)
			for i := range c {
				c[i] = rng.NormFloat64()
			}
			c[s] = 0
			c[2*s] = 0

			// lhs = A·(Z·c)
			zc := make([]float64, n)
			z.MulVec(zc, c)
			lhs := make([]float64, n)
			a.MulVec(lhs, zc)
			// rhs = Y·(B·c)
			bc := make([]float64, dim)
			for i := 0; i < dim; i++ {
				var sum float64
				for j := 0; j < dim; j++ {
					sum += bMat.At(i, j) * c[j]
				}
				bc[i] = sum
			}
			rhs := make([]float64, n)
			y.MulVec(rhs, bc)
			for i := 0; i < n; i++ {
				if math.Abs(lhs[i]-rhs[i]) > 1e-8*(1+math.Abs(lhs[i])) {
					t.Fatalf("%v trial %d: A·Z·c != Y·B·c at row %d (%v vs %v)", bt, trial, i, lhs[i], rhs[i])
				}
			}
		}
	}
}
