package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestRCMIsPermutation(t *testing.T) {
	for _, a := range []*CSR{Poisson2D(9, 7), RandomGraphLaplacian(80, 2, 0.1, 4), Poisson1D(20)} {
		perm := RCM(a)
		if len(perm) != a.Dim() {
			t.Fatalf("perm length %d != %d", len(perm), a.Dim())
		}
		seen := make([]bool, a.Dim())
		for _, v := range perm {
			if v < 0 || v >= a.Dim() || seen[v] {
				t.Fatalf("perm is not a permutation: %v", v)
			}
			seen[v] = true
		}
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A randomly permuted grid has large bandwidth; RCM must shrink it back
	// to grid-like levels.
	grid := Poisson2D(20, 20)
	rng := rand.New(rand.NewSource(3))
	shuffle := rng.Perm(grid.Dim())
	scrambled := Permute(grid, shuffle)
	before := Bandwidth(scrambled)
	perm := RCM(scrambled)
	after := Bandwidth(Permute(scrambled, perm))
	if after >= before/4 {
		t.Fatalf("RCM bandwidth %d not clearly below scrambled %d", after, before)
	}
	// Grid bandwidth is nx-ish; RCM should be in that ballpark (within 3×).
	if after > 3*20 {
		t.Fatalf("RCM bandwidth %d too large for a 20×20 grid", after)
	}
}

func TestPermuteSimilarityTransform(t *testing.T) {
	// P·A·Pᵀ must preserve SpMV results up to reindexing.
	a := VarCoeff2D(8, 9, 2, 6)
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(a.Dim())
	pa := Permute(a, perm)
	x := make([]float64, a.Dim())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// y = A·x computed directly.
	y := make([]float64, a.Dim())
	a.MulVec(y, x)
	// yp = (PAPᵀ)·(Px) must equal P·y.
	px := PermuteVec(x, perm)
	yp := make([]float64, a.Dim())
	pa.MulVec(yp, px)
	py := PermuteVec(y, perm)
	for i := range py {
		if math.Abs(yp[i]-py[i]) > 1e-12*(1+math.Abs(py[i])) {
			t.Fatalf("similarity transform violated at %d", i)
		}
	}
	// Round trip through UnpermuteVec.
	back := UnpermuteVec(px, perm)
	for i := range back {
		if back[i] != x[i] {
			t.Fatal("Unpermute does not invert Permute")
		}
	}
}

func TestRCMShrinksHaloOfScrambledGrid(t *testing.T) {
	// The practical payoff: fewer ghost entries per block after reordering.
	grid := Poisson2D(24, 24)
	rng := rand.New(rand.NewSource(8))
	scrambled := Permute(grid, rng.Perm(grid.Dim()))
	ghosts := func(a *CSR, p int) int {
		bounds := NNZBalancedRanges(a, p)
		total := 0
		for r := 0; r < p; r++ {
			lo, hi := bounds[r], bounds[r+1]
			seen := map[int]struct{}{}
			for i := lo; i < hi; i++ {
				for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
					if j := a.ColIdx[k]; j < lo || j >= hi {
						seen[j] = struct{}{}
					}
				}
			}
			total += len(seen)
		}
		return total
	}
	before := ghosts(scrambled, 8)
	after := ghosts(Permute(scrambled, RCM(scrambled)), 8)
	if after >= before/2 {
		t.Fatalf("RCM halo %d not clearly below scrambled %d", after, before)
	}
}

// TestRCMDisconnectedGraph: RCM must traverse every component (restarting
// BFS from an unvisited minimum-degree vertex), including isolated vertices
// with empty rows, and the result must still be a valid permutation whose
// similarity transform round-trips exactly.
func TestRCMDisconnectedGraph(t *testing.T) {
	// Two grid components of different sizes plus two isolated vertices, one
	// with a diagonal entry and one with a fully empty row.
	g1 := Poisson2D(8, 8)
	g2 := Poisson2D(5, 3)
	n1, n2 := g1.Dim(), g2.Dim()
	n := n1 + n2 + 2
	coo := NewCOO(n)
	addBlock := func(a *CSR, off int) {
		for i := 0; i < a.Dim(); i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				coo.Add(off+i, off+a.ColIdx[k], a.Val[k])
			}
		}
	}
	addBlock(g1, 0)
	addBlock(g2, n1)
	coo.Add(n1+n2, n1+n2, 1) // isolated, diagonal only
	// Row n1+n2+1 stays completely empty.
	a := coo.ToCSR()

	perm := RCM(a)
	if len(perm) != n {
		t.Fatalf("perm length %d != %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("not a permutation: %d", v)
		}
		seen[v] = true
	}

	pa := Permute(a, perm)
	if pa.NNZ() != a.NNZ() {
		t.Fatalf("Permute changed nnz: %d -> %d", a.NNZ(), pa.NNZ())
	}
	// Bandwidth of the block-diagonal system must not blow up: each
	// component is renumbered contiguously, so the result stays grid-like.
	if bw := Bandwidth(pa); bw > 3*8 {
		t.Fatalf("RCM bandwidth %d too large for disconnected grids", bw)
	}

	// Permute/Unpermute identity on vectors, exercised with the same perm
	// the solve path would use.
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(3*i%29) - 14
	}
	back := UnpermuteVec(PermuteVec(x, perm), perm)
	for i := range x {
		if back[i] != x[i] {
			t.Fatalf("Unpermute∘Permute not identity at %d", i)
		}
	}
	// And the similarity transform still holds with empty rows present.
	y := make([]float64, n)
	a.MulVec(y, x)
	yp := make([]float64, n)
	pa.MulVec(yp, PermuteVec(x, perm))
	py := PermuteVec(y, perm)
	for i := range py {
		if yp[i] != py[i] {
			t.Fatalf("similarity transform violated at %d: %v != %v", i, yp[i], py[i])
		}
	}
}

func TestPermuteValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Permute(Poisson1D(4), []int{0, 1})
}
