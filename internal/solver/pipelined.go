package solver

import (
	"fmt"
	"math"

	"spcg/internal/obs"
	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// PipelinedPCG solves A·x = b with the communication-hiding pipelined PCG of
// Ghysels & Vanroose (2014) — the state-of-the-art class the paper's
// introduction explicitly defers comparing against ("we leave the comparison
// of s-step methods and state-of-the-art pipelined methods for future
// work"). This implementation, together with experiments.RunPipeline,
// carries out that comparison on the modeled cluster.
//
// Pipelined PCG fuses both inner products of an iteration into a single
// non-blocking allreduce and overlaps its completion with the next
// preconditioner application and matrix-vector product. The extra recurrences
// (w = A·u, m = M⁻¹w, n = A·m, and the derived s, q, z updates) cost more
// local vector work than PCG and one extra SpMV+preconditioner pair per
// iteration is replaced by recurrences — but rounding error accumulates in
// the longer recurrence chains, which is why its residual can stagnate
// earlier than PCG's (Cools et al. 2019 propose corrected variants).
func PipelinedPCG(a *sparse.CSR, m precond.Interface, b []float64, opts Options) ([]float64, *Stats, error) {
	opts = opts.withDefaults()
	stats := &Stats{}
	c, err := newCtx(a, m, &opts, stats)
	if err != nil {
		return nil, nil, err
	}
	n := c.n
	if len(b) != n {
		return nil, nil, fmt.Errorf("%w: len(b)=%d, n=%d", ErrDimension, len(b), n)
	}
	x := make([]float64, n)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return nil, nil, fmt.Errorf("%w: len(x0)=%d, n=%d", ErrDimension, len(opts.X0), n)
		}
		copy(x, opts.X0)
	}

	r := make([]float64, n)
	u := make([]float64, n)
	w := make([]float64, n)
	mv := make([]float64, n) // m = M⁻¹w
	nv := make([]float64, n) // n = A·m
	z := make([]float64, n)
	q := make([]float64, n)
	s := make([]float64, n)
	p := make([]float64, n)
	scratch := make([]float64, n)

	c.spmv(r, x)
	vec.Sub(r, b, r)
	c.tr.VectorOp(float64(n), 24*float64(n))
	c.applyM(u, r)
	c.spmv(w, u)

	gamma := c.dot(r, u)
	if !finite(gamma) || gamma < 0 {
		stats.Breakdown = fmt.Errorf("%w: initial rᵀM⁻¹r = %v", ErrBreakdown, gamma)
		return finishRun(c, a, b, x, opts, stats), stats, nil
	}
	initial, err := initialCriterionValue(c, opts, b, x, r, gamma, scratch)
	if err != nil {
		stats.Breakdown = err
		return finishRun(c, a, b, x, opts, stats), stats, nil
	}
	ck := newChecker(opts, initial, stats)
	if ck.done(initial) {
		stats.Converged = true
		return finishRun(c, a, b, x, opts, stats), stats, nil
	}

	var alpha, gammaOld float64
	for i := 0; i < opts.MaxIterations; i++ {
		if c.cancelled() {
			return finishCancelled(c, a, b, x, opts, stats)
		}
		// Local dots for γ = (r,u), δ = (w,u) — and ‖r‖² when the 2-norm
		// criterion is active — then ONE non-blocking allreduce whose
		// completion hides behind the next M⁻¹w and A·m.
		gammaNew := c.localDot(r, u)
		delta := c.localDot(w, u)
		var rr float64
		values := 2
		if opts.Criterion == RecursiveResidual2Norm {
			rr = c.localDot(r, r)
			values = 3
		}
		c.tr.AllreduceOverlappedBySpMVPrec(values, c.m.Flops())
		c.obs.Count(obs.PhaseCollective, int64(values))
		stats.Allreduces++
		stats.AllreduceValues += values

		// Overlapped work: m = M⁻¹w, n = A·m.
		c.applyM(mv, w)
		c.spmv(nv, mv)

		if !finite(gammaNew, delta) || gammaNew < 0 {
			stats.Breakdown = fmt.Errorf("%w: γ=%v δ=%v at iteration %d", ErrBreakdown, gammaNew, delta, i)
			break
		}
		var beta float64
		if i > 0 {
			beta = gammaNew / gammaOld
			den := delta - beta*gammaNew/alpha
			if den == 0 || !finite(den) {
				stats.Breakdown = fmt.Errorf("%w: pipelined α denominator %v at iteration %d", ErrBreakdown, den, i)
				break
			}
			alpha = gammaNew / den
		} else {
			if delta <= 0 {
				stats.Breakdown = fmt.Errorf("%w: wᵀu = %v at iteration 0", ErrBreakdown, delta)
				break
			}
			alpha = gammaNew / delta
		}

		// Recurrence updates (8 fused BLAS1 updates).
		for j := 0; j < n; j++ {
			z[j] = nv[j] + beta*z[j]
			q[j] = mv[j] + beta*q[j]
			s[j] = w[j] + beta*s[j]
			p[j] = u[j] + beta*p[j]
			x[j] += alpha * p[j]
			r[j] -= alpha * s[j]
			u[j] -= alpha * q[j]
			w[j] -= alpha * z[j]
		}
		c.tr.VectorOp(16*float64(n), 10*8*float64(n))

		gammaOld = gammaNew
		stats.Iterations = i + 1
		stats.OuterIterations = i + 1

		var val float64
		switch opts.Criterion {
		case TrueResidual2Norm:
			val = c.trueResidualNorm(b, x, scratch)
		case RecursiveResidual2Norm:
			// One-iteration lag (pre-update ‖r‖), like PCG3.
			val = math.Sqrt(rr)
		case RecursiveResidualMNorm:
			val = math.Sqrt(gammaNew)
		}
		if ck.done(val) {
			stats.Converged = true
			break
		}
	}
	return finishRun(c, a, b, x, opts, stats), stats, nil
}
