package tune

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// StoreVersion is the on-disk schema version. A file with a different
// version is rejected at Open (the caller decides whether to start fresh).
const StoreVersion = 1

// FpString renders a matrix fingerprint the way the store keys it:
// zero-padded lowercase hex, stable across refactors (pinned by the
// fingerprint golden test in internal/sparse).
func FpString(fp uint64) string { return fmt.Sprintf("%016x", fp) }

// RankedCandidate is one surviving configuration with its final trial score.
type RankedCandidate struct {
	Candidate Candidate `json:"candidate"`
	// Score is milliseconds per decade of residual reduction at the last
	// round the candidate ran (lower is better).
	Score float64 `json:"score"`
}

// Decision is one tuned verdict for one matrix: the winner, the ranked
// fallback list (the serving layer walks it when a circuit breaker denies
// the winner), and the full trial history for auditability.
type Decision struct {
	// Fingerprint is FpString(sparse.CSR.Fingerprint()).
	Fingerprint string `json:"fingerprint"`
	// Matrix is the registry name the decision was tuned under (advisory;
	// the fingerprint is the key).
	Matrix string    `json:"matrix,omitempty"`
	Winner Candidate `json:"winner"`
	// Ranked lists surviving candidates best-first; Ranked[0] == Winner.
	Ranked []RankedCandidate `json:"ranked"`
	Trials []Trial           `json:"trials,omitempty"`
	// Cond is the κ estimate from the seeding probe.
	Cond float64 `json:"cond,omitempty"`
	// Source is how the decision was produced: "tuned" (trials ran) or
	// "seeded" (model-only guess while background trials run).
	Source      string `json:"source"`
	CreatedUnix int64  `json:"created_unix"`
	// LastUsedUnix drives LRU eviction; refreshed by Store.Get.
	LastUsedUnix int64 `json:"last_used_unix"`
}

// storeFile is the on-disk document.
type storeFile struct {
	Version int         `json:"version"`
	Entries []*Decision `json:"entries"`
}

// Store is the LRU-bounded, disk-backed decision store. A Store with an
// empty path is memory-only (used by tests and daemons run without
// -tune-store). All methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	path    string
	max     int
	entries map[string]*Decision
}

// OpenStore opens (or creates) the store at path, loading any existing
// decisions. max bounds retained entries (≥1; default 128 when ≤0). An
// empty path yields a memory-only store. A file with an unknown schema
// version or malformed JSON is an error — the caller chooses between
// deleting it and aborting; OpenStore never silently discards data.
func OpenStore(path string, max int) (*Store, error) {
	if max <= 0 {
		max = 128
	}
	s := &Store{path: path, max: max, entries: map[string]*Decision{}}
	if path == "" {
		return s, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tune: open store: %w", err)
	}
	var f storeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("tune: store %s is not valid JSON: %w", path, err)
	}
	if f.Version != StoreVersion {
		return nil, fmt.Errorf("tune: store %s has schema version %d, want %d", path, f.Version, StoreVersion)
	}
	for _, d := range f.Entries {
		if d != nil && d.Fingerprint != "" {
			s.entries[d.Fingerprint] = d
		}
	}
	return s, nil
}

// Get returns the decision for fp and refreshes its LRU recency. The
// recency update is persisted on the next Put/Flush, not per-Get.
func (s *Store) Get(fp uint64) (*Decision, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.entries[FpString(fp)]
	if ok {
		d.LastUsedUnix = time.Now().Unix()
	}
	return d, ok
}

// Put inserts (or replaces) a decision, evicts beyond the entry bound
// (least recently used first), and atomically rewrites the backing file.
func (s *Store) Put(d *Decision) error {
	if d == nil || d.Fingerprint == "" {
		return fmt.Errorf("tune: Put of decision without fingerprint")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d.LastUsedUnix == 0 {
		d.LastUsedUnix = time.Now().Unix()
	}
	s.entries[d.Fingerprint] = d
	for len(s.entries) > s.max {
		oldestKey, oldest := "", int64(0)
		for k, e := range s.entries {
			if oldestKey == "" || e.LastUsedUnix < oldest {
				oldestKey, oldest = k, e.LastUsedUnix
			}
		}
		delete(s.entries, oldestKey)
	}
	return s.flushLocked()
}

// Len reports the number of stored decisions.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Flush rewrites the backing file (a no-op for memory-only stores). Useful
// at daemon shutdown to persist Get-side recency updates.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

// flushLocked writes the whole store through a temp file + atomic rename so
// a crash mid-write can never leave a truncated store behind.
func (s *Store) flushLocked() error {
	if s.path == "" {
		return nil
	}
	f := storeFile{Version: StoreVersion, Entries: make([]*Decision, 0, len(s.entries))}
	for _, d := range s.entries {
		f.Entries = append(f.Entries, d)
	}
	// Deterministic order keeps the file diffable and tests stable.
	sort.Slice(f.Entries, func(i, j int) bool { return f.Entries[i].Fingerprint < f.Entries[j].Fingerprint })
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return fmt.Errorf("tune: encode store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(s.path), ".tunestore-*")
	if err != nil {
		return fmt.Errorf("tune: write store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("tune: write store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("tune: write store: %w", err)
	}
	if err := os.Rename(tmpName, s.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("tune: write store: %w", err)
	}
	return nil
}
