// Package detloop exercises the loop-only determinism mode: setup code at
// function level may consult maps and clocks, iteration bodies may not.
package detloop

import "time"

// Setup ranges a map and reads the clock at function level — allowed in a
// loop-only package.
func Setup(cfg map[string]int) (int, int64) {
	n := 0
	for _, v := range cfg {
		n += v
	}
	return n, time.Now().UnixNano()
}

// Iterate reads the clock inside its loop body — flagged.
func Iterate(n int) int64 {
	var last int64
	for i := 0; i < n; i++ {
		last = time.Now().UnixNano()
	}
	return last
}

// Drain ranges a map inside an iteration body — flagged.
func Drain(w map[string]int, rounds int) int {
	s := 0
	for r := 0; r < rounds; r++ {
		for _, v := range w {
			s += v
		}
	}
	return s
}
