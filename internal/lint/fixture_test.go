package lint

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The fixture module under testdata/src/fixmod holds one positive package
// (the analyzer must fire) and one negative package (it must stay silent)
// per analyzer, plus stub resilience/obs packages and fixture docs. Loading
// it exercises the full loader — parsing, topo order, stdlib export data —
// against a module other than the repo itself.
var fixtureOnce struct {
	sync.Once
	m   *Module
	err error
}

func fixtureModule(t *testing.T) *Module {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureOnce.m, fixtureOnce.err = LoadModule(filepath.Join("testdata", "src", "fixmod"))
	})
	if fixtureOnce.err != nil {
		t.Fatalf("LoadModule(fixmod): %v", fixtureOnce.err)
	}
	for _, pkg := range fixtureOnce.m.Packages {
		for _, e := range pkg.TypeErrors {
			t.Fatalf("fixture type error in %s: %v", pkg.Path, e)
		}
	}
	return fixtureOnce.m
}

// diagsByFile runs the analyzers (through Run, so directives apply) and
// groups the diagnostics by base filename.
func diagsByFile(m *Module, analyzers ...*Analyzer) map[string][]Diagnostic {
	byFile := make(map[string][]Diagnostic)
	for _, d := range Run(m, analyzers) {
		base := filepath.Base(d.Pos.Filename)
		byFile[base] = append(byFile[base], d)
	}
	return byFile
}

// wantCount asserts the number of diagnostics attributed to one file; on
// mismatch it lists what was reported.
func wantCount(t *testing.T, byFile map[string][]Diagnostic, file string, want int) []Diagnostic {
	t.Helper()
	got := byFile[file]
	if len(got) != want {
		t.Errorf("%s: got %d diagnostic(s), want %d:", file, len(got), want)
		for _, d := range got {
			t.Logf("  %v", d)
		}
	}
	return got
}

// wantMessage asserts some diagnostic in the list carries the substring.
func wantMessage(t *testing.T, diags []Diagnostic, sub string) {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d.Message, sub) {
			return
		}
	}
	t.Errorf("no diagnostic mentions %q in %v", sub, diags)
}

func TestDeterminismFixture(t *testing.T) {
	m := fixtureModule(t)
	byFile := diagsByFile(m, Determinism(DeterminismConfig{
		Packages:     []string{"fixmod/detbad", "fixmod/detgood"},
		LoopPackages: []string{"fixmod/detloop"},
	}))
	bad := wantCount(t, byFile, "detbad.go", 4)
	wantMessage(t, bad, "range over map")
	wantMessage(t, bad, "time.Now")
	wantMessage(t, bad, "rand.Float64")
	wantMessage(t, bad, "goroutine spawn")
	wantCount(t, byFile, "detgood.go", 0)
	loop := wantCount(t, byFile, "detloop.go", 2)
	wantMessage(t, loop, "time.Now")
	wantMessage(t, loop, "range over map")
}

func TestSafegoFixture(t *testing.T) {
	m := fixtureModule(t)
	byFile := diagsByFile(m, Safego(SafegoConfig{
		Packages: []string{"fixmod/sgbad", "fixmod/sggood"},
		SafePath: "fixmod/resilience",
		SafeFunc: "Safe",
	}))
	bad := wantCount(t, byFile, "sgbad.go", 3)
	wantMessage(t, bad, "direct call")
	wantMessage(t, bad, "first statement must call resilience.Safe")
	wantCount(t, byFile, "sggood.go", 0)
}

func TestCancelpollFixture(t *testing.T) {
	m := fixtureModule(t)
	cfg := func(pkg string) *Analyzer {
		return Cancelpoll(CancelpollConfig{
			Package:     pkg,
			RegistryVar: "methods",
			CheckCall:   "done",
			PollCalls:   []string{"cancelled"},
		})
	}
	byFile := diagsByFile(m, cfg("fixmod/cpbad"))
	bad := wantCount(t, byFile, "cpbad.go", 1)
	wantMessage(t, bad, "never polls cancelled()")

	byFile = diagsByFile(m, cfg("fixmod/cpgood"))
	wantCount(t, byFile, "cpgood.go", 0)
}

func TestFloatcmpFixture(t *testing.T) {
	m := fixtureModule(t)
	byFile := diagsByFile(m, Floatcmp(FloatcmpConfig{
		AllowFiles: []string{"fc/allowed.go"},
	}))
	bad := wantCount(t, byFile, "fc.go", 1)
	wantMessage(t, bad, "floating-point == comparison")
	wantCount(t, byFile, "allowed.go", 0)
}

func TestAllocfreeFixture(t *testing.T) {
	m := fixtureModule(t)
	byFile := diagsByFile(m, Allocfree(AllocfreeConfig{
		Packages:    []string{"fixmod/af"},
		FuncPattern: "Fused",
	}))
	bad := wantCount(t, byFile, "af.go", 2)
	wantMessage(t, bad, "make inside a loop of fused kernel AxpyFused")
	wantMessage(t, bad, "append inside a loop of fused kernel AxpyFused")
}

func TestMetricdocFixture(t *testing.T) {
	m := fixtureModule(t)
	byFile := diagsByFile(m, Metricdoc(MetricdocConfig{
		ObsPath:      "fixmod/obs",
		Constructors: []string{"Counter", "Gauge", "GaugeFunc"},
		MetricsDoc:   "docs/OBSERVABILITY.md",
		RoutesDoc:    "docs/API.md",
		RoutesVar:    "routes",
	}))
	bad := wantCount(t, byFile, "md.go", 3)
	wantMessage(t, bad, `"fix_missing_total" is not documented`)
	wantMessage(t, bad, "must be a string literal")
	wantMessage(t, bad, `route "GET /ghost" is not documented`)
	for _, d := range bad {
		if strings.Contains(d.Message, "fix_documented_total") || strings.Contains(d.Message, "POST /solve") {
			t.Errorf("documented name flagged: %v", d)
		}
	}
}

func TestDirectivesFixture(t *testing.T) {
	m := fixtureModule(t)
	byFile := diagsByFile(m, Floatcmp(FloatcmpConfig{}))
	// Suppressed() is covered by its directive; the two malformed directives
	// are reported under "spcglint" and do NOT suppress their comparisons.
	diags := wantCount(t, byFile, "dir.go", 4)
	var floatcmp, malformed int
	for _, d := range diags {
		switch d.Analyzer {
		case "floatcmp":
			floatcmp++
		case "spcglint":
			malformed++
		}
	}
	if floatcmp != 2 || malformed != 2 {
		t.Errorf("dir.go: got %d floatcmp + %d spcglint diagnostics, want 2 + 2", floatcmp, malformed)
	}
	wantMessage(t, diags, "gives no reason")
	wantMessage(t, diags, `unknown analyzer "nosuch"`)
}
