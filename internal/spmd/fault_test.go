package spmd

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spcg/internal/fault"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// fault.Injector must satisfy the runtime's hook interface structurally (the
// packages must not import each other).
var _ FaultHook = (*fault.Injector)(nil)

func TestRunEPanickingRankIsError(t *testing.T) {
	w := NewWorld(4)
	err := w.RunE(func(r *Rank) {
		if r.ID == 2 {
			panic("injected rank failure")
		}
		// The other ranks block collectively; the failure must wake them.
		r.Allreduce([]float64{1})
	})
	if err == nil {
		t.Fatal("panicking rank not reported")
	}
	if !strings.Contains(err.Error(), "rank 2") || !strings.Contains(err.Error(), "injected rank failure") {
		t.Fatalf("error does not identify the failure: %v", err)
	}
}

func TestRunEPanicUnblocksRecvAndSend(t *testing.T) {
	// Rank 1 waits forever on a message nobody sends; rank 0's crash must
	// unwind it instead of deadlocking the run.
	w := NewWorld(2)
	err := w.RunE(func(r *Rank) {
		if r.ID == 0 {
			panic("crash before send")
		}
		r.Recv(0)
	})
	if err == nil || !strings.Contains(err.Error(), "rank 0") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunENoErrorOnCleanRun(t *testing.T) {
	w := NewWorld(3)
	var sum int64
	if err := w.RunE(func(r *Rank) {
		atomic.AddInt64(&sum, int64(r.ID))
		r.Barrier()
	}); err != nil {
		t.Fatalf("clean run errored: %v", err)
	}
	if sum != 3 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestRunPanicsOnRankFailure(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run did not panic on rank failure")
		}
	}()
	NewWorld(2).Run(func(r *Rank) {
		if r.ID == 1 {
			panic("boom")
		}
		r.Barrier()
	})
}

func TestRecvTimeoutPoisonsWorld(t *testing.T) {
	w := NewWorld(2)
	w.RecvTimeout = 20 * time.Millisecond
	start := time.Now()
	err := w.RunE(func(r *Rank) {
		if r.ID == 0 {
			r.Recv(1) // rank 1 never sends
		}
		// Rank 1 exits immediately; only rank 0 hangs.
	})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout took far too long")
	}
}

// dropFirstN injects deterministic send drops / collective failures for the
// first N attempts of every operation.
type dropFirstN struct {
	n     int
	drawn atomic.Int64
}

func (d *dropFirstN) DropSend(from, to, attempt int) bool {
	d.drawn.Add(1)
	return attempt < d.n
}

func (d *dropFirstN) FailAllreduce(rank, attempt int) bool {
	d.drawn.Add(1)
	return attempt < d.n
}

func TestSendRetriesOnInjectedDrops(t *testing.T) {
	hook := &dropFirstN{n: 2}
	w := NewWorld(4)
	w.Fault = hook
	err := w.RunE(func(r *Rank) {
		next := (r.ID + 1) % 4
		prev := (r.ID + 3) % 4
		r.Send(next, []float64{float64(r.ID)})
		if got := r.Recv(prev); got[0] != float64(prev) {
			t.Errorf("rank %d got %v from %d", r.ID, got, prev)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 sends × 2 drops each.
	if got := w.RetriedMessages(); got != 8 {
		t.Fatalf("RetriedMessages = %d, want 8", got)
	}
}

func TestAllreduceRetriesDoNotChangeValues(t *testing.T) {
	clean := NewWorld(3)
	var want []float64
	if err := clean.RunE(func(r *Rank) {
		got := r.Allreduce([]float64{float64(r.ID + 1), 2})
		if r.ID == 0 {
			want = got
		}
	}); err != nil {
		t.Fatal(err)
	}
	faulty := NewWorld(3)
	faulty.Fault = &dropFirstN{n: 1}
	faulty.MaxRetries = 5
	if err := faulty.RunE(func(r *Rank) {
		got := r.Allreduce([]float64{float64(r.ID + 1), 2})
		if got[0] != want[0] || got[1] != want[1] {
			t.Errorf("rank %d: faulty allreduce = %v, want %v", r.ID, got, want)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if faulty.RetriedMessages() != 3 {
		t.Fatalf("RetriedMessages = %d, want 3", faulty.RetriedMessages())
	}
}

func TestRetryBudgetBoundsInjectedDrops(t *testing.T) {
	// A hook that always drops must not loop forever: the budget forces
	// delivery after MaxRetries attempts.
	hook := &dropFirstN{n: 1 << 30}
	w := NewWorld(2)
	w.Fault = hook
	w.MaxRetries = 4
	err := w.RunE(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, []float64{42})
		} else {
			if got := r.Recv(0); got[0] != 42 {
				t.Errorf("got %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.RetriedMessages(); got != 4 {
		t.Fatalf("RetriedMessages = %d, want MaxRetries=4", got)
	}
}

func TestDistributedSpMVSurvivesInjectedMessageLoss(t *testing.T) {
	// A real halo-exchange SpMV under a seeded lossy network must produce
	// exactly the sequential result — retries guarantee delivery.
	a := sparse.Poisson2D(12, 12)
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, a.Dim())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, a.Dim())
	a.MulVec(want, x)

	p := 5
	locals, err := Distribute(a, p)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(99, fault.Config{DropSendProb: 0.4})
	w := NewWorld(p)
	w.Fault = inj
	got := make([]float64, a.Dim())
	if err := w.RunE(func(rk *Rank) {
		lm := locals[rk.ID]
		dst := make([]float64, lm.NLocal())
		lm.SpMV(rk, dst, x[lm.Lo:lm.Hi])
		copy(got[lm.Lo:lm.Hi], dst)
	}); err != nil {
		t.Fatal(err)
	}
	diff := make([]float64, a.Dim())
	vec.Sub(diff, got, want)
	if vec.Norm2(diff) != 0 {
		t.Fatalf("lossy-network SpMV differs from sequential by %v", vec.Norm2(diff))
	}
	if w.RetriedMessages() == 0 {
		t.Fatal("no retries at 40% drop probability")
	}
	if inj.Counts().DroppedSends == 0 {
		t.Fatal("injector recorded no drops")
	}
}

func TestWorldFaultFieldsZeroValueUnchanged(t *testing.T) {
	// Zero-value fault fields must reproduce the fault-free protocol: same
	// allreduce results, no retries.
	w := NewWorld(4)
	if err := w.RunE(func(r *Rank) {
		got := r.Allreduce([]float64{1})
		if got[0] != 4 {
			t.Errorf("allreduce = %v", got)
		}
		r.Send((r.ID+1)%4, []float64{float64(r.ID)})
		r.Recv((r.ID + 3) % 4)
	}); err != nil {
		t.Fatal(err)
	}
	if w.RetriedMessages() != 0 {
		t.Fatalf("retries without a fault hook: %d", w.RetriedMessages())
	}
}
