package solver

import (
	"math"
	"testing"

	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

func TestSPCGMatchesPCGOnEasyProblem(t *testing.T) {
	// In exact arithmetic sPCG reproduces PCG's iterates; on a
	// well-conditioned problem with small s the iteration counts must agree
	// to within one block.
	a := sparse.Poisson2D(16, 16)
	b, xTrue := testProblem(a)
	m, _ := precond.NewJacobi(a)
	_, ps, err := PCG(a, m, b, Options{Tol: 1e-9, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	for _, bt := range []basis.Type{basis.Monomial, basis.Newton, basis.Chebyshev} {
		for _, s := range []int{2, 4} {
			x, ss, err := SPCG(a, m, b, Options{S: s, Basis: bt, Tol: 1e-9, Criterion: RecursiveResidualMNorm})
			if err != nil {
				t.Fatalf("%v s=%d: %v", bt, s, err)
			}
			if !ss.Converged {
				t.Fatalf("%v s=%d: did not converge (%+v)", bt, s, ss.Breakdown)
			}
			if e := solutionError(x, xTrue); e > 1e-6 {
				t.Fatalf("%v s=%d: solution error %v", bt, s, e)
			}
			// sPCG checks every s steps, so it may overshoot by < s.
			if ss.Iterations < ps.Iterations-s || ss.Iterations > ps.Iterations+2*s {
				t.Fatalf("%v s=%d: iterations %d vs PCG %d", bt, s, ss.Iterations, ps.Iterations)
			}
		}
	}
}

func TestSPCGMonMatchesPCG(t *testing.T) {
	a := sparse.Poisson2D(14, 14)
	b, xTrue := testProblem(a)
	m, _ := precond.NewJacobi(a)
	_, ps, err := PCG(a, m, b, Options{Tol: 1e-9, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{2, 3, 5} {
		x, ss, err := SPCGMon(a, m, b, Options{S: s, Tol: 1e-9, Criterion: RecursiveResidualMNorm})
		if err != nil {
			t.Fatal(err)
		}
		if !ss.Converged {
			t.Fatalf("s=%d: did not converge (%v)", s, ss.Breakdown)
		}
		if e := solutionError(x, xTrue); e > 1e-6 {
			t.Fatalf("s=%d: solution error %v", s, e)
		}
		if ss.Iterations > ps.Iterations+2*s {
			t.Fatalf("s=%d: iterations %d vs PCG %d", s, ss.Iterations, ps.Iterations)
		}
	}
}

func TestSPCGSingleReductionPerOuterIteration(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	b, _ := testProblem(a)
	m, _ := precond.NewJacobi(a)
	machine := dist.DefaultMachine()
	machine.RanksPerNode = 8
	cl, err := dist.NewCluster(machine, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	tr := dist.NewTracker(cl)
	s := 5
	_, ss, err := SPCG(a, m, b, Options{S: s, Basis: basis.Chebyshev, Criterion: RecursiveResidualMNorm, Tracker: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Converged {
		t.Fatalf("did not converge: %v", ss.Breakdown)
	}
	// One allreduce per completed outer iteration (the converged check's
	// outer iteration performs none).
	if ss.Allreduces != ss.OuterIterations {
		t.Fatalf("allreduces = %d, outer = %d", ss.Allreduces, ss.OuterIterations)
	}
	// s SpMVs per outer iteration + 1 initial.
	if ss.MVProducts != 1+s*ss.OuterIterations {
		t.Fatalf("MVs = %d, outer = %d", ss.MVProducts, ss.OuterIterations)
	}
	// s preconditioner applications per outer iteration + 1 for the final check.
	if ss.PrecApplies != s*ss.OuterIterations+1 {
		t.Fatalf("prec applies = %d, outer = %d", ss.PrecApplies, ss.OuterIterations)
	}
}

func TestSPCGMonomialFailsAtLargeS(t *testing.T) {
	// The paper's Table 2 story: with s = 10 the monomial basis collapses on
	// anything nontrivial, while the Chebyshev basis converges.
	// Tolerance 1e-8: sPCG's attainable-accuracy floor (documented in
	// DESIGN.md; the paper's Table 2 shows the same stagnation as "-"
	// entries) sits near 1e-9 on this problem even with the good basis.
	a := sparse.Anisotropic2D(40, 40, 1e-3)
	b, _ := testProblem(a)
	m, _ := precond.NewJacobi(a)
	_, mon, err := SPCG(a, m, b, Options{S: 10, Basis: basis.Monomial, Tol: 1e-8, MaxIterations: 4000, Criterion: TrueResidual2Norm})
	if err != nil {
		t.Fatal(err)
	}
	_, cheb, err := SPCG(a, m, b, Options{S: 10, Basis: basis.Chebyshev, Tol: 1e-8, MaxIterations: 4000, Criterion: TrueResidual2Norm})
	if err != nil {
		t.Fatal(err)
	}
	if !cheb.Converged {
		t.Fatalf("Chebyshev basis did not converge: %v (rel %v)", cheb.Breakdown, cheb.FinalRelative)
	}
	if mon.Converged && mon.Iterations <= cheb.Iterations {
		t.Fatalf("monomial basis unexpectedly as good as Chebyshev (%d vs %d iterations)", mon.Iterations, cheb.Iterations)
	}
}

func TestSPCGBreakdownReported(t *testing.T) {
	// A wildly wrong spectral interval makes the Chebyshev basis useless;
	// the solver must stop with a breakdown or simply fail to converge, not
	// panic or report success.
	a := sparse.Poisson2D(12, 12)
	b, _ := testProblem(a)
	params := basis.ChebyshevParams(6, 1e6, 2e6) // interval far from spectrum
	_, ss, err := SPCG(a, nil, b, Options{S: 6, BasisParams: params, MaxIterations: 300, Criterion: TrueResidual2Norm})
	if err != nil {
		t.Fatal(err)
	}
	if ss.Converged && ss.TrueRelResidual > 1e-9 {
		t.Fatal("reported convergence with a bad residual")
	}
}

func TestSPCGRespectsMaxIterations(t *testing.T) {
	a := sparse.Anisotropic2D(25, 25, 1e-4)
	b, _ := testProblem(a)
	_, ss, err := SPCG(a, nil, b, Options{S: 5, Basis: basis.Chebyshev, Tol: 1e-13, MaxIterations: 20, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if ss.Converged {
		t.Fatal("should not converge in 20 iterations")
	}
	if ss.Iterations > 20 {
		t.Fatalf("ran %d iterations past the cap", ss.Iterations)
	}
}

func TestSPCGResidualReplacement(t *testing.T) {
	a := sparse.VarCoeff2D(24, 24, 3, 5)
	b, _ := testProblem(a)
	m, _ := precond.NewJacobi(a)
	opts := Options{S: 8, Basis: basis.Chebyshev, Tol: 1e-11, MaxIterations: 6000, Criterion: RecursiveResidualMNorm}
	_, plain, err := SPCG(a, m, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.ResidualReplacement = true
	_, rr, err := SPCG(a, m, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rr.ResidualReplacements == 0 {
		t.Skip("no replacements fired on this problem")
	}
	// Replacement must not make the true residual worse.
	if rr.TrueRelResidual > plain.TrueRelResidual*10 {
		t.Fatalf("residual replacement degraded accuracy: %v vs %v", rr.TrueRelResidual, plain.TrueRelResidual)
	}
}

func TestSPCGDimensionValidation(t *testing.T) {
	a := sparse.Poisson1D(10)
	if _, _, err := SPCG(a, nil, make([]float64, 4), Options{S: 2}); err == nil {
		t.Fatal("bad b accepted")
	}
	if _, _, err := SPCG(a, nil, make([]float64, 10), Options{S: 2, X0: make([]float64, 2)}); err == nil {
		t.Fatal("bad x0 accepted")
	}
	bad := basis.MonomialParams(1) // degree < s
	if _, _, err := SPCG(a, nil, make([]float64, 10), Options{S: 3, BasisParams: bad}); err == nil {
		t.Fatal("short basis params accepted")
	}
}

func TestSPCGZeroRHS(t *testing.T) {
	a := sparse.Poisson1D(12)
	x, ss, err := SPCG(a, nil, make([]float64, 12), Options{S: 3, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Converged || ss.Iterations != 0 {
		t.Fatalf("zero rhs: %+v", ss)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("x must stay zero")
		}
	}
}

func TestSPCGvsSPCGMonFiniteDifference(t *testing.T) {
	// sPCG with the monomial basis and sPCGmon are mathematically equivalent
	// but numerically different (paper §3.2). Both must work on an easy
	// problem and produce similar iteration counts.
	a := sparse.Poisson2D(12, 12)
	b, xTrue := testProblem(a)
	_, s1, err := SPCG(a, nil, b, Options{S: 3, Basis: basis.Monomial, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	x2, s2, err := SPCGMon(a, nil, b, Options{S: 3, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Converged || !s2.Converged {
		t.Fatalf("convergence: sPCG=%v sPCGmon=%v", s1.Converged, s2.Converged)
	}
	if e := solutionError(x2, xTrue); e > 1e-6 {
		t.Fatalf("sPCGmon error %v", e)
	}
	if d := s1.Iterations - s2.Iterations; d < -6 || d > 6 {
		t.Fatalf("iteration counts diverge: %d vs %d", s1.Iterations, s2.Iterations)
	}
}

func TestSPCGTrueResidualCriterionMatchesReported(t *testing.T) {
	a := sparse.Poisson2D(15, 15)
	b, _ := testProblem(a)
	m, _ := precond.NewJacobi(a)
	_, ss, err := SPCG(a, m, b, Options{S: 4, Basis: basis.Chebyshev, Tol: 1e-9, Criterion: TrueResidual2Norm})
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Converged {
		t.Fatal("did not converge")
	}
	if ss.TrueRelResidual > 1e-9*1.01 {
		t.Fatalf("criterion said converged but true residual is %v", ss.TrueRelResidual)
	}
	if math.Abs(ss.FinalRelative-ss.TrueRelResidual) > 1e-9 {
		t.Fatalf("FinalRelative %v vs TrueRelResidual %v", ss.FinalRelative, ss.TrueRelResidual)
	}
}

func TestSPCGFloat32GramPrecisionFloor(t *testing.T) {
	// Mixed-precision ablation (paper ref. [5]): single-precision Gram
	// accumulation must still converge at a modest tolerance but cannot
	// reach 1e-9 — the Scalar Work inputs carry a ~1e-7 relative floor.
	a := sparse.Poisson2D(24, 24)
	b, _ := testProblem(a)
	m, _ := precond.NewJacobi(a)
	base := Options{S: 6, Basis: basis.Chebyshev, Criterion: TrueResidual2Norm, MaxIterations: 3000}

	loose := base
	loose.Tol = 1e-5
	loose.Float32Gram = true
	_, st, err := SPCG(a, m, b, loose)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("f32 Grams should still reach 1e-5: rel %v (%v)", st.FinalRelative, st.Breakdown)
	}

	tight := base
	tight.Tol = 1e-10
	tight.Float32Gram = true
	_, f32Tight, err := SPCG(a, m, b, tight)
	if err != nil {
		t.Fatal(err)
	}
	tight.Float32Gram = false
	_, f64Tight, err := SPCG(a, m, b, tight)
	if err != nil {
		t.Fatal(err)
	}
	if !f64Tight.Converged {
		t.Fatalf("f64 Grams should reach 1e-10: rel %v", f64Tight.FinalRelative)
	}
	if f32Tight.Converged && f32Tight.Iterations <= f64Tight.Iterations {
		t.Fatalf("f32 Grams unexpectedly as good as f64 at 1e-10 (%d vs %d iterations)",
			f32Tight.Iterations, f64Tight.Iterations)
	}
}
