package dist

// FaultModel configures system-level fault charging on the virtual cluster,
// substituting for what an MPI run would observe under ULFM-style fault
// tolerance: transient communication failures cost a detection timeout plus
// exponentially backed-off retries, and straggler ranks stretch the
// bulk-synchronous local phases. The zero value is a guaranteed no-op — all
// modeled times stay bit-identical to a fault-free machine.
//
// Failures are transient: an event that exhausts MaxRetries still completes
// (it has paid the full retry cost), so the model never deadlocks. The retry
// draws are seeded per tracker and recorded in the event stream, so ReplayOn
// re-prices the *same* retries on a different cluster — behaviour and cost
// stay separated exactly as for the fault-free events.
type FaultModel struct {
	// CommFailProb is the per-attempt probability that a collective or halo
	// message fails and must be retried.
	CommFailProb float64
	// MaxRetries caps the retry attempts charged per event (default 5 when
	// comm faults are enabled).
	MaxRetries int
	// Timeout is the time (s) to detect one failed attempt (default 50·α of
	// the machine being charged).
	Timeout float64
	// BackoffBase is the initial retry backoff (s); attempt i additionally
	// waits BackoffBase·2^i (default 10·α of the machine being charged).
	BackoffBase float64
	// StragglerFactor ≥ 1 multiplies the most-loaded-rank roofline time,
	// modeling a persistently slow rank that every bulk-synchronous step
	// waits for. 0 or 1 disables it.
	StragglerFactor float64
	// Seed seeds the per-tracker retry stream (default 1 when enabled).
	Seed uint64
}

// commEnabled reports whether communication-fault charging is active.
func (f FaultModel) commEnabled() bool { return f.CommFailProb > 0 }

// Enabled reports whether any part of the fault model is active.
func (f FaultModel) Enabled() bool { return f.commEnabled() || f.StragglerFactor > 1 }

// maxRetries returns the retry cap with its default applied.
func (f FaultModel) maxRetries() int {
	if f.MaxRetries > 0 {
		return f.MaxRetries
	}
	return 5
}

// timing returns the timeout and backoff base with defaults derived from the
// charged machine's latency, so replaying retry-bearing events on a cluster
// with an unset fault model still prices them deterministically.
func (f FaultModel) timing(alpha float64) (timeout, backoff float64) {
	timeout, backoff = f.Timeout, f.BackoffBase
	if timeout <= 0 {
		timeout = 50 * alpha
	}
	if backoff <= 0 {
		backoff = 10 * alpha
	}
	return
}

// retryCost prices `retries` failed attempts of one event on cluster c:
// each failed attempt costs the detection timeout plus exponential backoff.
func retryCost(c *Cluster, retries int) float64 {
	if retries <= 0 {
		return 0
	}
	timeout, backoff := c.M.Faults.timing(c.M.NetLatency)
	total := 0.0
	for i := 0; i < retries; i++ {
		total += timeout + backoff*float64(int(1)<<uint(i))
	}
	return total
}

// faultRNG is a splitmix64 stream for retry draws (zero value unused when
// the model is disabled).
type faultRNG struct{ state uint64 }

func (r *faultRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *faultRNG) unit() float64 { return float64(r.next()>>11) / (1 << 53) }

// initFaults seeds the tracker's retry stream from its cluster's machine.
func (t *Tracker) initFaults() {
	fm := t.C.M.Faults
	if !fm.commEnabled() {
		return
	}
	seed := fm.Seed
	if seed == 0 {
		seed = 1
	}
	t.rng = &faultRNG{state: seed}
}

// drawRetries draws the number of failed attempts for one communication
// event (0 when comm faults are disabled) and accounts them.
func (t *Tracker) drawRetries() int {
	if t.rng == nil {
		return 0
	}
	fm := t.C.M.Faults
	retries := 0
	for retries < fm.maxRetries() && t.rng.unit() < fm.CommFailProb {
		retries++
	}
	t.Counts.RetriedMessages += retries
	return retries
}
