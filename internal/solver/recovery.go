package solver

import (
	"fmt"
	"math"

	"spcg/internal/vec"
)

// guard implements the solvers' fault detection and recovery: a
// residual-replacement-style divergence test (the recursive residual is
// compared against an explicitly recomputed true residual b−Ax) combined
// with periodic checkpoints of the solver state and rollback-and-restart
// when corruption is detected. Checkpoints are taken only immediately after
// a detection probe has passed, so a restore never resurrects corrupted
// state. A nil *guard (detection disabled) is valid and does nothing.
//
// The detection cadence is Options.DetectEvery iterations for PCG and outer
// iterations for the s-step methods — for the latter, the probe rides the
// block boundary where the solver already touches r and x, mirroring where
// residual replacement fires (paper §1's stabilization reference).
type guard struct {
	c     *ctx
	b     []float64
	every int // detection cadence (iterations or outer iterations)
	ckGap int // checkpoints every ckGap passed probes' worth of steps
	// tolAbs is the absolute divergence threshold DetectTol·‖b‖₂.
	tolAbs       float64
	maxRollbacks int

	// Checkpointed state: x and r always; p and rho only for PCG.
	ckX, ckR, ckP []float64
	ckRho         float64
	haveCk        bool
	sinceCk       int // passed probes since the last checkpoint
}

// newGuard builds the detection/recovery state, or nil when detection is
// disabled. Charged: one fused dot for ‖b‖ (the threshold reference).
func newGuard(c *ctx, opts Options, b []float64) *guard {
	if opts.DetectEvery <= 0 {
		return nil
	}
	tol := opts.DetectTol
	if tol <= 0 {
		tol = 1e-8
	}
	ckEvery := opts.CheckpointEvery
	if ckEvery <= 0 {
		ckEvery = opts.DetectEvery
	}
	// Checkpoint cadence in units of detection probes, rounded up so a
	// coarser-than-detection checkpoint interval still checkpoints.
	ckGap := (ckEvery + opts.DetectEvery - 1) / opts.DetectEvery
	maxRb := opts.MaxRollbacks
	if maxRb <= 0 {
		maxRb = 100
	}
	normB := math.Sqrt(c.dot(b, b))
	if normB == 0 {
		normB = 1 // b = 0: fall back to an absolute threshold
	}
	return &guard{
		c: c, b: b, every: opts.DetectEvery, ckGap: ckGap,
		tolAbs: tol * normB, maxRollbacks: maxRb,
		ckX: make([]float64, c.n), ckR: make([]float64, c.n),
	}
}

// due reports whether a detection probe runs after `step` completed steps.
func (g *guard) due(step int) bool {
	return g != nil && step%g.every == 0
}

// corrupted runs one detection probe: recompute the true residual into
// scratch and flag divergence from the recursive residual r beyond the
// threshold. Charged: one SpMV, two vector ops' worth of traffic, one
// reduction. The probe itself runs through the injected SpMV path — a
// corrupted probe triggers a (conservative) rollback like any other fault.
func (g *guard) corrupted(x, r, scratch []float64) bool {
	c := g.c
	c.spmv(scratch, x)
	vec.Sub(scratch, g.b, scratch)
	c.tr.VectorOp(float64(c.n), 24*float64(c.n))
	var diff float64
	for i := range scratch {
		d := scratch[i] - r[i]
		diff += d * d
	}
	c.tr.ReduceLocal(2*float64(c.n), 24*float64(c.n))
	c.allreduce(1)
	if math.Sqrt(diff) > g.tolAbs {
		c.stats.DetectedFaults++
		return true
	}
	return false
}

// checkpoint snapshots (x, r) — and, when p is non-nil, the PCG coupling
// (p, rho) — if a checkpoint is due after a passed probe. The snapshot is a
// local memory copy: it costs no communication, matching in-memory
// checkpointing (the cost model charges only the streaming traffic).
func (g *guard) checkpoint(x, r, p []float64, rho float64) {
	g.sinceCk++
	if g.haveCk && g.sinceCk < g.ckGap {
		return
	}
	copy(g.ckX, x)
	copy(g.ckR, r)
	if p != nil {
		if g.ckP == nil {
			g.ckP = make([]float64, len(p))
		}
		copy(g.ckP, p)
		g.ckRho = rho
	}
	streams := 2
	if p != nil {
		streams = 3
	}
	g.c.tr.VectorOp(0, float64(8*streams*g.c.n))
	g.haveCk = true
	g.sinceCk = 0
}

// restore rolls the solver back to the last checkpoint, returning false when
// no checkpoint exists or the rollback budget is exhausted (the caller
// reports a breakdown). p/rho are restored only if they were checkpointed.
func (g *guard) restore(x, r, p []float64, rho *float64) bool {
	if g == nil || !g.haveCk || g.c.stats.Rollbacks >= g.maxRollbacks {
		return false
	}
	g.c.stats.Rollbacks++
	copy(x, g.ckX)
	copy(r, g.ckR)
	if p != nil && g.ckP != nil {
		copy(p, g.ckP)
		*rho = g.ckRho
	}
	streams := 2
	if p != nil {
		streams = 3
	}
	g.c.tr.VectorOp(0, float64(8*streams*g.c.n))
	g.sinceCk = 0
	return true
}

// errRollbackBudget reports the recovery giving up.
func errRollbackBudget(max int) error {
	return fmt.Errorf("%w: rollback budget (%d) exhausted — persistent corruption", ErrBreakdown, max)
}
