// Distributed: solve one system on real SPMD goroutine ranks with explicit
// halo exchanges and collectives — the executable counterpart of the cost
// model used for the paper's scalability figures — and verify both solvers
// agree with the sequential reference.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"spcg"
	"spcg/internal/basis"
)

func main() {
	a := spcg.Poisson3D(24, 24, 24)
	n := a.Dim()
	rng := rand.New(rand.NewSource(2))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	fmt.Printf("problem: n=%d nnz=%d\n\n", n, a.NNZ())

	// Sequential reference.
	m, err := spcg.NewJacobi(a)
	if err != nil {
		log.Fatal(err)
	}
	xRef, refStats, err := spcg.PCG(a, m, b, spcg.Options{Tol: 1e-9, Criterion: spcg.RecursiveResidualMNorm})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential PCG: %d iterations\n", refStats.Iterations)

	diff := func(x []float64) float64 {
		var d, nrm float64
		for i := range x {
			e := x[i] - xRef[i]
			d += e * e
			nrm += xRef[i] * xRef[i]
		}
		return math.Sqrt(d / nrm)
	}

	fmt.Println("\ndistributed PCG over real goroutine ranks:")
	for _, p := range []int{1, 2, 4, 8} {
		start := time.Now()
		res, err := spcg.DistributedPCG(a, b, p, 1e-9, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  p=%d: %d iterations, %d collectives, vs sequential %.1e, wall %v\n",
			p, res.Iterations, res.Allreduces, diff(res.X), time.Since(start).Round(time.Millisecond))
	}

	// Distributed sPCG: same answer, ~2s× fewer collectives.
	est, err := spcg.EstimateSpectrum(a, m.Apply, 20)
	if err != nil {
		log.Fatal(err)
	}
	s := 10
	params := basis.ChebyshevParams(s, est.LambdaMin, est.LambdaMax)
	fmt.Println("\ndistributed sPCG (s=10, Chebyshev basis):")
	for _, p := range []int{1, 4, 8} {
		res, err := spcg.DistributedSPCG(a, b, p, s, params, 1e-9, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  p=%d: %d iterations, %d collectives, vs sequential %.1e\n",
			p, res.Iterations, res.Allreduces, diff(res.X))
	}
	fmt.Println("\nIdentical solutions from every rank count; sPCG needs ~s× fewer")
	fmt.Println("collectives per iteration — the communication structure the paper's")
	fmt.Println("strong-scaling results rest on, here executed with real messages.")
}
