package dist

import (
	"math"
	"testing"

	"spcg/internal/sparse"
)

func testMachine() Machine {
	m := DefaultMachine()
	m.RanksPerNode = 4 // keep virtual clusters small in tests
	return m
}

func TestNewClusterPartition(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	c, err := NewCluster(testMachine(), 2, a)
	if err != nil {
		t.Fatal(err)
	}
	if c.P != 8 || c.Nodes != 2 {
		t.Fatalf("P=%d nodes=%d", c.P, c.Nodes)
	}
	if len(c.RowBounds) != 9 || c.RowBounds[0] != 0 || c.RowBounds[8] != a.Dim() {
		t.Fatalf("bounds = %v", c.RowBounds)
	}
	if c.MaxRows < a.Dim()/8 || c.MaxRows > a.Dim() {
		t.Fatalf("MaxRows = %d", c.MaxRows)
	}
	if c.MaxNNZ <= 0 || c.MaxNNZ > a.NNZ() {
		t.Fatalf("MaxNNZ = %d", c.MaxNNZ)
	}
}

func TestClusterValidation(t *testing.T) {
	a := sparse.Poisson1D(10)
	if _, err := NewCluster(testMachine(), 0, a); err == nil {
		t.Fatal("0 nodes accepted")
	}
	if _, err := NewCluster(testMachine(), 100, a); err == nil {
		t.Fatal("more ranks than rows accepted")
	}
	bad := testMachine()
	bad.FlopRate = 0
	if _, err := NewCluster(bad, 1, a); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

func TestHaloMeasurement1D(t *testing.T) {
	// Poisson1D with contiguous blocks: interior ranks have exactly 2 ghost
	// entries and 2 neighbours.
	a := sparse.Poisson1D(64)
	c, err := NewCluster(testMachine(), 2, a) // 8 ranks, 8 rows each
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxHaloRecv != 2 {
		t.Fatalf("MaxHaloRecv = %d, want 2", c.MaxHaloRecv)
	}
	if c.MaxNeighbors != 2 {
		t.Fatalf("MaxNeighbors = %d, want 2", c.MaxNeighbors)
	}
}

func TestHaloMeasurement2D(t *testing.T) {
	// 2D Poisson, block rows = strips of the grid: ghosts ≈ 2·nx.
	nx := 16
	a := sparse.Poisson2D(nx, 16)
	c, err := NewCluster(testMachine(), 1, a) // 4 ranks, 4 grid rows each
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxHaloRecv != 2*nx {
		t.Fatalf("MaxHaloRecv = %d, want %d", c.MaxHaloRecv, 2*nx)
	}
}

func TestOwnerOf(t *testing.T) {
	a := sparse.Poisson1D(40)
	c, err := NewCluster(testMachine(), 1, a)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < c.P; r++ {
		for j := c.RowBounds[r]; j < c.RowBounds[r+1]; j++ {
			if got := c.ownerOf(j); got != r {
				t.Fatalf("ownerOf(%d) = %d, want %d", j, got, r)
			}
		}
	}
}

func TestAllreduceScalesWithLogP(t *testing.T) {
	a := sparse.Poisson1D(1 << 12)
	m := testMachine()
	c1, _ := NewCluster(m, 1, a)   // 4 ranks
	c2, _ := NewCluster(m, 16, a)  // 64 ranks
	c3, _ := NewCluster(m, 256, a) // 1024 ranks
	t1, t2, t3 := c1.AllreduceTime(1), c2.AllreduceTime(1), c3.AllreduceTime(1)
	if !(t1 < t2 && t2 < t3) {
		t.Fatalf("allreduce times not increasing: %v %v %v", t1, t2, t3)
	}
	// log2 scaling: 1024 ranks = 10 steps vs 4 ranks = 2 steps.
	if math.Abs(t3/t1-5) > 0.01 {
		t.Fatalf("t3/t1 = %v, want 5 (log₂ scaling)", t3/t1)
	}
}

func TestRooflineRegimes(t *testing.T) {
	a := sparse.Poisson1D(100)
	c, _ := NewCluster(testMachine(), 1, a)
	// Pure compute: many flops, no bytes.
	if got := c.Roofline(2e9, 0); math.Abs(got-1/c.M.FlopRate*2e9) > 1e-12 {
		t.Fatalf("compute-bound roofline = %v", got)
	}
	// Pure streaming: time = bytes / per-rank bandwidth.
	want := 1e9 / c.M.RankMemBW()
	if got := c.Roofline(0, 1e9); math.Abs(got-want) > 1e-15 {
		t.Fatalf("memory-bound roofline = %v, want %v", got, want)
	}
}

func TestHaloTimeSingleRank(t *testing.T) {
	a := sparse.Poisson1D(10)
	m := testMachine()
	m.RanksPerNode = 1
	c, err := NewCluster(m, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	if c.HaloTime() != 0 {
		t.Fatal("single rank should have no halo cost")
	}
}

func TestTrackerAccumulates(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	c, err := NewCluster(testMachine(), 1, a)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(c)
	tr.SpMV()
	tr.PrecApply(float64(a.Dim()), 0)
	tr.VectorOp(2*float64(a.Dim()), 24*float64(a.Dim()))
	tr.ReduceLocal(2*float64(a.Dim()), 16*float64(a.Dim()))
	tr.Allreduce(1)
	tr.Halo()
	if tr.Time <= 0 {
		t.Fatal("no time accumulated")
	}
	cts := tr.Counts
	if cts.SpMVs != 1 || cts.PrecApplies != 1 || cts.Allreduces != 1 ||
		cts.AllreduceVals != 1 || cts.HaloExchanges != 2 {
		t.Fatalf("counts = %+v", cts)
	}
	if cts.LocalFlops <= 0 || cts.LocalReduceOps <= 0 {
		t.Fatalf("flops not counted: %+v", cts)
	}
	if tr.String() == "" {
		t.Fatal("empty String")
	}
}

func TestNilTrackerIsNoop(t *testing.T) {
	var tr *Tracker
	tr.SpMV()
	tr.PrecApply(10, 1)
	tr.VectorOp(1, 1)
	tr.ReduceLocal(1, 1)
	tr.Allreduce(5)
	tr.Halo()
	if tr.String() != "dist.Tracker(nil)" {
		t.Fatal("nil tracker String")
	}
}

func TestLatencyDominatesAtScale(t *testing.T) {
	// The core scalability fact the paper exploits: at high rank counts the
	// per-iteration allreduce cost exceeds the per-iteration local work, so
	// saving allreduces (s-step) wins. Verify the model reproduces the
	// crossover on a 3D Poisson problem.
	a := sparse.Poisson3D(64, 64, 64)
	m := DefaultMachine()
	mk := func(nodes int) (local, global float64) {
		c, err := NewCluster(m, nodes, a)
		if err != nil {
			t.Fatal(err)
		}
		// Local PCG iteration: SpMV + ~6n BLAS1 flops.
		local = c.Roofline(2*float64(c.MaxNNZ), 12*float64(c.MaxNNZ)+16*float64(c.MaxRows)) +
			c.Roofline(6*float64(c.MaxRows), 48*float64(c.MaxRows))
		global = 2 * c.AllreduceTime(1)
		return
	}
	l1, g1 := mk(1)
	if l1 < g1 {
		t.Fatalf("at 1 node local work %v should dominate allreduce %v", l1, g1)
	}
	l128, g128 := mk(128)
	if g128 < l128 {
		t.Fatalf("at 128 nodes allreduce %v should dominate local work %v", g128, l128)
	}
}

func TestReplayOnMatchesDirectCharge(t *testing.T) {
	a := sparse.Poisson2D(24, 24)
	m := testMachine()
	c1, _ := NewCluster(m, 1, a)
	c2, _ := NewCluster(m, 8, a)
	rec := NewRecordingTracker(c1)
	direct := NewTracker(c2)
	charge := func(tr *Tracker) {
		tr.SpMV()
		tr.PrecApply(1000, 2)
		tr.VectorOp(2000, 24000)
		tr.ReduceLocal(1152, 9216)
		tr.Allreduce(9)
		tr.Halo()
	}
	charge(rec)
	charge(direct)
	if got := rec.ReplayOn(c2); math.Abs(got-direct.Time) > 1e-15 {
		t.Fatalf("replay on c2 = %v, direct = %v", got, direct.Time)
	}
	if got := rec.ReplayOn(c1); math.Abs(got-rec.Time) > 1e-15 {
		t.Fatalf("replay on own cluster = %v, direct = %v", got, rec.Time)
	}
}

func TestReplayRequiresRecording(t *testing.T) {
	a := sparse.Poisson1D(32)
	c, _ := NewCluster(testMachine(), 1, a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTracker(c).ReplayOn(c)
}
