package sparse

import (
	"math/rand"
	"sync"
	"testing"

	"spcg/internal/vec"
)

// randIrregularCSR builds a random symmetric matrix with highly variable row
// lengths (including empty rows), the structure SELL's σ-window sorting and
// padding accounting must get right.
func randIrregularCSR(n int, rng *rand.Rand) *CSR {
	coo := NewCOO(n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4+rng.Float64())
		deg := rng.Intn(8)
		if rng.Intn(5) == 0 {
			deg = 0 // leave some diagonal-only rows
		}
		for k := 0; k < deg; k++ {
			j := rng.Intn(n)
			if j != i {
				coo.AddSym(i, j, -rng.Float64())
			}
		}
	}
	return coo.ToCSR()
}

// csrEqual reports exact structural and value equality.
func csrEqual(t *testing.T, a, b *CSR) {
	t.Helper()
	if a.Dim() != b.Dim() || a.NNZ() != b.NNZ() {
		t.Fatalf("shape mismatch: %dx%d nnz=%d vs %dx%d nnz=%d",
			a.Dim(), a.Dim(), a.NNZ(), b.Dim(), b.Dim(), b.NNZ())
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			t.Fatalf("RowPtr[%d]: %d != %d", i, a.RowPtr[i], b.RowPtr[i])
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] || a.Val[k] != b.Val[k] {
			t.Fatalf("entry %d: (%d,%v) != (%d,%v)", k, a.ColIdx[k], a.Val[k], b.ColIdx[k], b.Val[k])
		}
	}
}

// TestSELLRoundTrip: SELLFromCSR∘ToCSR is the identity, across slice
// heights, window sizes, non-multiple-of-C dimensions and empty rows.
func TestSELLRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mats := []*CSR{
		Poisson1D(1), Poisson1D(7), Poisson2D(13, 5),
		randIrregularCSR(97, rng), randIrregularCSR(256, rng),
		RandomGraphLaplacian(300, 6, 0.5, 2),
	}
	for mi, a := range mats {
		for _, cs := range [][2]int{{0, 0}, {1, 1}, {4, 4}, {8, 16}, {8, 100}, {3, 7}} {
			se := SELLFromCSR(a, cs[0], cs[1])
			if se.Dim() != a.Dim() || se.NNZ() != a.NNZ() {
				t.Fatalf("mat %d c=%d σ=%d: dim/nnz mismatch", mi, cs[0], cs[1])
			}
			if se.Sigma()%se.C() != 0 {
				t.Fatalf("σ=%d not a multiple of c=%d", se.Sigma(), se.C())
			}
			csrEqual(t, a, se.ToCSR())
		}
	}
}

// TestSELLPaddingAccounting: the built padding ratio matches the row-length
// estimate the format selector uses, and the stored layout never exceeds it.
func TestSELLPaddingAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, a := range []*CSR{Poisson2D(20, 20), randIrregularCSR(333, rng)} {
		se := SELLFromCSR(a, 0, 0)
		want := EstimatePaddingRatio(a, 0, 0)
		if got := se.PaddingRatio(); got != want {
			t.Fatalf("PaddingRatio %v != estimate %v", got, want)
		}
		if len(se.val) != len(se.col) {
			t.Fatalf("val/col length mismatch")
		}
		if len(se.val) < a.NNZ() {
			t.Fatalf("stored %d < nnz %d", len(se.val), a.NNZ())
		}
	}
}

// TestSELLMulVecBitwiseCSR: SELL stores each row's entries in CSR's
// ascending-column order and accumulates per-row sums sequentially, so the
// drop-in-operator contract is exact bitwise equality, not just tolerance.
func TestSELLMulVecBitwiseCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, a := range []*CSR{Poisson2D(31, 17), randIrregularCSR(500, rng), VarCoeff2D(24, 24, 3, 9)} {
		n := a.Dim()
		se := SELLFromCSR(a, 0, 0)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		got := make([]float64, n)
		a.MulVec(want, x)
		se.MulVec(got, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d: SELL %v != CSR %v", i, got[i], want[i])
			}
		}
	}
}

// TestSELLMulVecParMatchesMulVec: slice ranges write disjoint row sets, so
// the pool-dispatched kernel must be bitwise identical to the sequential one
// on a matrix large enough to take the parallel path.
func TestSELLMulVecParMatchesMulVec(t *testing.T) {
	a := VarCoeff2D(90, 90, 3, 11) // nnz ≈ 40k > parSpMVThreshold
	se := SELLFromCSR(a, 0, 0)
	n := a.Dim()
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	seq := make([]float64, n)
	par := make([]float64, n)
	se.MulVec(seq, x)
	se.MulVecPar(par, x)
	for i := range seq {
		if par[i] != seq[i] {
			t.Fatalf("row %d: MulVecPar %v != MulVec %v", i, par[i], seq[i])
		}
	}
}

// TestSELLMulBlockParColumnExact mirrors the CSR batched-SpMV contract on
// the sliced format: every column bitwise equals a sequential MulVec, for
// column counts below, at and above the worker count.
func TestSELLMulBlockParColumnExact(t *testing.T) {
	a := Poisson2D(96, 96)
	se := SELLFromCSR(a, 0, 0)
	n := a.Dim()
	rng := rand.New(rand.NewSource(5))
	for _, s := range []int{1, 2, 3, 8, 17} {
		x := vec.NewBlock(n, s)
		for j := 0; j < s; j++ {
			col := x.Col(j)
			for i := range col {
				col[i] = rng.NormFloat64()
			}
		}
		got := vec.NewBlock(n, s)
		se.MulBlockPar(got, x)
		want := make([]float64, n)
		for j := 0; j < s; j++ {
			a.MulVec(want, x.Col(j))
			for i := 0; i < n; i++ {
				if got.Col(j)[i] != want[i] {
					t.Fatalf("s=%d col %d row %d: %v != %v", s, j, i, got.Col(j)[i], want[i])
				}
			}
		}
	}
}

// TestSELLFusedBasisStepMatchesCSR: the fused MPK kernel applies the same
// per-row arithmetic order as CSR's, so both outputs agree bitwise — with
// and without the sPrev/uNext optional vectors.
func TestSELLFusedBasisStepMatchesCSR(t *testing.T) {
	a := VarCoeff2D(80, 80, 2, 7) // above parSpMVThreshold
	se := SELLFromCSR(a, 0, 0)
	n := a.Dim()
	rng := rand.New(rand.NewSource(6))
	u, sCur, sPrev, dinv := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	for i := 0; i < n; i++ {
		u[i], sCur[i], sPrev[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		dinv[i] = 1 / (1 + rng.Float64())
	}
	for _, withOpt := range []bool{true, false} {
		sp, un1, un2 := sPrev, make([]float64, n), make([]float64, n)
		if !withOpt {
			sp, un1, un2 = nil, nil, nil
		}
		want := make([]float64, n)
		got := make([]float64, n)
		a.FusedBasisStepPar(want, u, sCur, sp, 0.37, 0.21, 1.7, dinv, un1)
		se.FusedBasisStepPar(got, u, sCur, sp, 0.37, 0.21, 1.7, dinv, un2)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("opt=%v row %d: sNext %v != %v", withOpt, i, got[i], want[i])
			}
			if withOpt && un2[i] != un1[i] {
				t.Fatalf("row %d: uNext %v != %v", i, un2[i], un1[i])
			}
		}
	}
}

// TestSELLConcurrentKernelsSharedPool drives concurrent SpMVs on one shared
// SELL (and the shared default pool) so `go test -race` exercises the
// copy-on-write partition cache and the immutability contract.
func TestSELLConcurrentKernelsSharedPool(t *testing.T) {
	a := VarCoeff2D(90, 90, 3, 13)
	se := SELLFromCSR(a, 0, 0)
	n := a.Dim()
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%17) - 8
	}
	want := make([]float64, n)
	se.MulVec(want, x)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]float64, n)
			for it := 0; it < 5; it++ {
				se.MulVecPar(dst, x)
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Errorf("row %d: concurrent MulVecPar %v != %v", i, dst[i], want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// FuzzSELLRoundTrip fuzzes the conversion parameters and matrix shape:
// CSR→SELL→CSR must be the identity and MulVec bitwise-equal for every
// (n, c, σ, seed).
func FuzzSELLRoundTrip(f *testing.F) {
	f.Add(17, 4, 8, int64(1))
	f.Add(64, 8, 64, int64(2))
	f.Add(1, 1, 1, int64(3))
	f.Add(100, 7, 13, int64(4))
	f.Fuzz(func(t *testing.T, n, c, sigma int, seed int64) {
		if n < 0 {
			n = -n
		}
		n = 1 + n%400
		if c > 64 {
			c = c % 64
		}
		if sigma > 512 {
			sigma = sigma % 512
		}
		rng := rand.New(rand.NewSource(seed))
		a := randIrregularCSR(n, rng)
		se := SELLFromCSR(a, c, sigma)
		csrEqual(t, a, se.ToCSR())
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		got := make([]float64, n)
		a.MulVec(want, x)
		se.MulVec(got, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d: %v != %v", i, got[i], want[i])
			}
		}
	})
}
