// Package suite defines the synthetic counterpart of the paper's Table 2
// matrix collection: all 40 SPD SuiteSparse matrices (size 100k–2M) on which
// the paper compares the s-step solvers, each mapped to a generator that
// reproduces its size class, sparsity class, and difficulty class (proxied
// by the paper's standard-PCG iteration count). See DESIGN.md,
// "Substitutions", for why this preserves the experiments' meaning.
//
// Every problem also records the paper's measured iteration counts
// (monomial/Chebyshev per solver; 0 = the paper's "−", no convergence) so
// the experiment reports can print paper-vs-measured side by side.
package suite

import (
	"math"
	"sort"

	"spcg/internal/sparse"
)

// PaperIters holds the paper's Table 2 iteration counts for one matrix.
// Zero means the paper reports "−" (diverged/stagnated/over 12000).
type PaperIters struct {
	PCG                   int
	SPCGMon, SPCGCheb     int
	CAPCGMon, CAPCGCheb   int
	CAPCG3Mon, CAPCG3Cheb int
}

// Problem is one row of the suite.
type Problem struct {
	// Name is the SuiteSparse matrix name this problem stands in for.
	Name string
	// PaperRows and PaperNNZ are the original matrix's dimensions.
	PaperRows, PaperNNZ int
	// Paper holds the paper's Table 2 results.
	Paper PaperIters
	// Class names the generator family used for the stand-in.
	Class string
	// contrast is the difficulty dial passed to the generator.
	contrast float64
	// shift is added to the diagonal after generation: it emulates
	// mass-matrix-dominated problems (the thermomech class), whose paper
	// iteration counts are nearly size-independent.
	shift float64
	// seed makes the stand-in deterministic.
	seed int64
}

// Build generates the stand-in matrix at 1/scale of the paper size
// (scale 1 = full size). Row counts are rounded to the generator's grid.
func (p Problem) Build(scale int) *sparse.CSR {
	if scale < 1 {
		scale = 1
	}
	rows := p.PaperRows / scale
	if rows < 400 {
		rows = 400
	}
	a := p.build(rows)
	if p.shift > 0 {
		a.AddDiag(p.shift)
	}
	return a
}

func (p Problem) build(rows int) *sparse.CSR {
	switch p.Class {
	case "fem2d":
		nx := int(math.Round(math.Sqrt(float64(rows))))
		return sparse.VarCoeff2D(nx, nx, p.contrast, p.seed)
	case "fem3d":
		nx := int(math.Round(math.Cbrt(float64(rows))))
		return sparse.VarCoeff3D(nx, nx, nx, p.contrast, p.seed)
	case "fem3d27":
		nx := int(math.Round(math.Cbrt(float64(rows))))
		return scaleSym(sparse.Poisson3D27(nx, nx, nx), p.contrast, p.seed)
	case "poisson3d":
		nx := int(math.Round(math.Cbrt(float64(rows))))
		return scaleSym(sparse.Poisson3D(nx, nx, nx), p.contrast, p.seed)
	case "graph":
		// Circuit matrices are near-planar: grid Laplacian + shortcuts, not
		// an expander (expanders' spectral gap would make them trivially easy).
		nx := int(math.Round(math.Sqrt(float64(rows))))
		return sparse.CircuitLaplacian(nx, nx, rows/20, math.Pow(10, -p.contrast), p.seed)
	case "aniso":
		nx := int(math.Round(math.Sqrt(float64(rows))))
		return sparse.Anisotropic2D(nx, nx, math.Pow(10, -p.contrast))
	default:
		panic("suite: unknown class " + p.Class)
	}
}

// scaleSym returns D^½·A·D^½ with lognormal diagonal D of the given log10
// contrast: an SPD-preserving difficulty dial for stencil matrices, standing
// in for the coefficient jumps of the FEM originals. Deterministic in seed.
func scaleSym(a *sparse.CSR, contrast float64, seed int64) *sparse.CSR {
	if contrast == 0 {
		return a
	}
	n := a.Dim()
	d := make([]float64, n)
	state := uint64(seed)*0x9E3779B97F4A7C15 + 1
	for i := range d {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		u := float64(state>>11) / (1 << 53) // uniform [0,1)
		d[i] = math.Pow(10, (u-0.5)*contrast/2)
	}
	out := &sparse.CSR{
		N:      n,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: append([]int(nil), a.ColIdx...),
		Val:    append([]float64(nil), a.Val...),
	}
	for i := 0; i < n; i++ {
		for k := out.RowPtr[i]; k < out.RowPtr[i+1]; k++ {
			out.Val[k] *= d[i] * d[out.ColIdx[k]]
		}
	}
	return out
}

// All returns the 40 problems in the paper's Table 2 order.
func All() []Problem {
	return []Problem{
		{Name: "2cubes_sphere", PaperRows: 101492, PaperNNZ: 1647264, Class: "fem3d", contrast: 1.0, shift: 1.00, seed: 101, Paper: PaperIters{PCG: 22, SPCGMon: 0, SPCGCheb: 30, CAPCGMon: 30, CAPCGCheb: 30, CAPCG3Mon: 30, CAPCG3Cheb: 30}},
		{Name: "thermomech_TC", PaperRows: 102158, PaperNNZ: 711558, Class: "fem2d", contrast: 0.3, shift: 3.00, seed: 102, Paper: PaperIters{PCG: 11, SPCGMon: 30, SPCGCheb: 20, CAPCGMon: 30, CAPCGCheb: 20, CAPCG3Mon: 0, CAPCG3Cheb: 20}},
		{Name: "shipsec8", PaperRows: 114919, PaperNNZ: 3303553, Class: "fem3d27", contrast: 5.0, seed: 103, Paper: PaperIters{PCG: 1666, SPCGMon: 0, SPCGCheb: 0, CAPCGMon: 2150, CAPCGCheb: 1960, CAPCG3Mon: 0, CAPCG3Cheb: 0}},
		{Name: "ship_003", PaperRows: 121728, PaperNNZ: 3777036, Class: "fem3d27", contrast: 4.6, seed: 104, Paper: PaperIters{PCG: 1584, SPCGMon: 0, SPCGCheb: 1590, CAPCGMon: 4590, CAPCGCheb: 1590, CAPCG3Mon: 0, CAPCG3Cheb: 1590}},
		{Name: "cfd2", PaperRows: 123440, PaperNNZ: 3085406, Class: "fem2d", contrast: 4.6, seed: 105, Paper: PaperIters{PCG: 1731, SPCGMon: 0, SPCGCheb: 1750, CAPCGMon: 1770, CAPCGCheb: 1750, CAPCG3Mon: 0, CAPCG3Cheb: 1750}},
		{Name: "boneS01", PaperRows: 127224, PaperNNZ: 5516602, Class: "fem3d27", contrast: 4.0, seed: 106, Paper: PaperIters{PCG: 787, SPCGMon: 0, SPCGCheb: 790, CAPCGMon: 1750, CAPCGCheb: 790, CAPCG3Mon: 0, CAPCG3Cheb: 790}},
		{Name: "shipsec1", PaperRows: 140874, PaperNNZ: 3568176, Class: "fem3d27", contrast: 4.2, seed: 107, Paper: PaperIters{PCG: 909, SPCGMon: 0, SPCGCheb: 910, CAPCGMon: 910, CAPCGCheb: 910, CAPCG3Mon: 0, CAPCG3Cheb: 910}},
		{Name: "bmw7st_1", PaperRows: 141347, PaperNNZ: 7318399, Class: "fem3d27", contrast: 6.0, seed: 108, Paper: PaperIters{PCG: 7243, SPCGMon: 0, SPCGCheb: 0, CAPCGMon: 0, CAPCGCheb: 7260, CAPCG3Mon: 0, CAPCG3Cheb: 7280}},
		{Name: "Dubcova3", PaperRows: 146689, PaperNNZ: 3636643, Class: "fem2d", contrast: 1.0, shift: 0.20, seed: 109, Paper: PaperIters{PCG: 73, SPCGMon: 0, SPCGCheb: 80, CAPCGMon: 130, CAPCGCheb: 80, CAPCG3Mon: 170, CAPCG3Cheb: 80}},
		{Name: "bmwcra_1", PaperRows: 148770, PaperNNZ: 10641602, Class: "fem3d27", contrast: 5.6, seed: 110, Paper: PaperIters{PCG: 2183, SPCGMon: 0, SPCGCheb: 0, CAPCGMon: 0, CAPCGCheb: 7890, CAPCG3Mon: 0, CAPCG3Cheb: 0}},
		{Name: "G2_circuit", PaperRows: 150102, PaperNNZ: 726674, Class: "graph", contrast: 3.0, seed: 111, Paper: PaperIters{PCG: 506, SPCGMon: 0, SPCGCheb: 510, CAPCGMon: 0, CAPCGCheb: 510, CAPCG3Mon: 0, CAPCG3Cheb: 510}},
		{Name: "shipsec5", PaperRows: 179860, PaperNNZ: 4598604, Class: "fem3d27", contrast: 4.1, seed: 112, Paper: PaperIters{PCG: 751, SPCGMon: 0, SPCGCheb: 760, CAPCGMon: 750, CAPCGCheb: 760, CAPCG3Mon: 0, CAPCG3Cheb: 760}},
		{Name: "thermomech_dM", PaperRows: 204316, PaperNNZ: 1423116, Class: "fem2d", contrast: 0.3, shift: 3.00, seed: 113, Paper: PaperIters{PCG: 11, SPCGMon: 0, SPCGCheb: 20, CAPCGMon: 250, CAPCGCheb: 20, CAPCG3Mon: 0, CAPCG3Cheb: 20}},
		{Name: "pwtk", PaperRows: 217918, PaperNNZ: 11524432, Class: "fem3d27", contrast: 6.4, seed: 114, Paper: PaperIters{PCG: 7377}},
		{Name: "hood", PaperRows: 220542, PaperNNZ: 9895422, Class: "fem3d27", contrast: 4.7, seed: 115, Paper: PaperIters{PCG: 1515, SPCGMon: 0, SPCGCheb: 1520, CAPCGMon: 1840, CAPCGCheb: 1520, CAPCG3Mon: 0, CAPCG3Cheb: 1520}},
		{Name: "offshore", PaperRows: 259789, PaperNNZ: 4242673, Class: "fem3d", contrast: 2.0, shift: 0.05, seed: 116, Paper: PaperIters{PCG: 178, SPCGMon: 0, SPCGCheb: 180, CAPCGMon: 210, CAPCGCheb: 180, CAPCG3Mon: 0, CAPCG3Cheb: 180}},
		{Name: "af_0_k101", PaperRows: 503625, PaperNNZ: 17550675, Class: "fem3d27", contrast: 6.2, seed: 117, Paper: PaperIters{PCG: 8891, SPCGMon: 0, SPCGCheb: 0, CAPCGMon: 11190, CAPCGCheb: 8960, CAPCG3Mon: 0, CAPCG3Cheb: 8960}},
		{Name: "af_1_k101", PaperRows: 503625, PaperNNZ: 17550675, Class: "fem3d27", contrast: 6.1, seed: 118, Paper: PaperIters{PCG: 8359, SPCGMon: 0, SPCGCheb: 0, CAPCGMon: 0, CAPCGCheb: 8360, CAPCG3Mon: 0, CAPCG3Cheb: 8360}},
		{Name: "af_2_k101", PaperRows: 503625, PaperNNZ: 17550675, Class: "fem3d27", contrast: 6.3, seed: 119, Paper: PaperIters{PCG: 9956, SPCGMon: 0, SPCGCheb: 0, CAPCGMon: 0, CAPCGCheb: 10000}},
		{Name: "af_3_k101", PaperRows: 503625, PaperNNZ: 17550675, Class: "fem3d27", contrast: 6.05, seed: 120, Paper: PaperIters{PCG: 8076, SPCGMon: 0, SPCGCheb: 0, CAPCGMon: 0, CAPCGCheb: 8110}},
		{Name: "af_4_k101", PaperRows: 503625, PaperNNZ: 17550675, Class: "fem3d27", contrast: 6.25, seed: 121, Paper: PaperIters{PCG: 9881, SPCGMon: 0, SPCGCheb: 0, CAPCGMon: 11390, CAPCGCheb: 9890, CAPCG3Mon: 0, CAPCG3Cheb: 9890}},
		{Name: "af_5_k101", PaperRows: 503625, PaperNNZ: 17550675, Class: "fem3d27", contrast: 6.15, seed: 122, Paper: PaperIters{PCG: 9467, SPCGMon: 0, SPCGCheb: 0, CAPCGMon: 0, CAPCGCheb: 9470, CAPCG3Mon: 0, CAPCG3Cheb: 9470}},
		{Name: "af_shell3", PaperRows: 504855, PaperNNZ: 17562051, Class: "fem3d27", contrast: 4.3, seed: 123, Paper: PaperIters{PCG: 993, SPCGMon: 0, SPCGCheb: 0, CAPCGMon: 1440, CAPCGCheb: 1000}},
		{Name: "af_shell4", PaperRows: 504855, PaperNNZ: 17562051, Class: "fem3d27", contrast: 4.3, seed: 124, Paper: PaperIters{PCG: 993, SPCGMon: 0, SPCGCheb: 0, CAPCGMon: 1440, CAPCGCheb: 1000}},
		{Name: "af_shell7", PaperRows: 504855, PaperNNZ: 17579155, Class: "fem3d27", contrast: 4.3, seed: 125, Paper: PaperIters{PCG: 991, SPCGMon: 0, SPCGCheb: 0, CAPCGMon: 1650, CAPCGCheb: 1000}},
		{Name: "af_shell8", PaperRows: 504855, PaperNNZ: 17579155, Class: "fem3d27", contrast: 4.3, seed: 126, Paper: PaperIters{PCG: 991, SPCGMon: 0, SPCGCheb: 0, CAPCGMon: 1650, CAPCGCheb: 1000}},
		{Name: "parabolic_fem", PaperRows: 525825, PaperNNZ: 3674625, Class: "fem2d", contrast: 3.2, seed: 127, Paper: PaperIters{PCG: 540, SPCGMon: 0, SPCGCheb: 540, CAPCGMon: 660, CAPCGCheb: 540}},
		{Name: "Fault_639", PaperRows: 638802, PaperNNZ: 27245944, Class: "fem3d27", contrast: 6.6, seed: 128, Paper: PaperIters{PCG: 5414}},
		{Name: "apache2", PaperRows: 715176, PaperNNZ: 4817870, Class: "poisson3d", contrast: 4.6, seed: 129, Paper: PaperIters{PCG: 1554, SPCGMon: 0, SPCGCheb: 1560, CAPCGMon: 0, CAPCGCheb: 1560}},
		{Name: "Emilia_923", PaperRows: 923136, PaperNNZ: 40373538, Class: "fem3d27", contrast: 5.9, seed: 130, Paper: PaperIters{PCG: 4564, SPCGMon: 0, SPCGCheb: 0, CAPCGMon: 0, CAPCGCheb: 5200}},
		{Name: "audikw_1", PaperRows: 943695, PaperNNZ: 77651847, Class: "fem3d27", contrast: 5.3, seed: 131, Paper: PaperIters{PCG: 2520, SPCGMon: 0, SPCGCheb: 2520, CAPCGMon: 4040, CAPCGCheb: 2520, CAPCG3Mon: 0, CAPCG3Cheb: 2520}},
		{Name: "ldoor", PaperRows: 952203, PaperNNZ: 42493817, Class: "fem3d27", contrast: 5.4, seed: 132, Paper: PaperIters{PCG: 2764, SPCGMon: 0, SPCGCheb: 2770, CAPCGMon: 0, CAPCGCheb: 2770, CAPCG3Mon: 0, CAPCG3Cheb: 2770}},
		{Name: "bone010", PaperRows: 986703, PaperNNZ: 47851783, Class: "fem3d27", contrast: 6.5, seed: 133, Paper: PaperIters{PCG: 4308}},
		{Name: "ecology2", PaperRows: 999999, PaperNNZ: 4995991, Class: "fem2d", contrast: 4.4, seed: 134, Paper: PaperIters{PCG: 2345, SPCGMon: 0, SPCGCheb: 2350, CAPCGMon: 0, CAPCGCheb: 2350}},
		{Name: "thermal2", PaperRows: 1228045, PaperNNZ: 8580313, Class: "fem2d", contrast: 3.8, seed: 135, Paper: PaperIters{PCG: 1674, SPCGMon: 0, SPCGCheb: 0, CAPCGMon: 7960, CAPCGCheb: 1680}},
		{Name: "Serena", PaperRows: 1391349, PaperNNZ: 64131971, Class: "fem3d27", contrast: 6.7, seed: 136, Paper: PaperIters{PCG: 570}},
		{Name: "Geo_1438", PaperRows: 1437960, PaperNNZ: 60236322, Class: "fem3d27", contrast: 2.5, seed: 137, Paper: PaperIters{PCG: 545, SPCGMon: 0, SPCGCheb: 550, CAPCGMon: 790, CAPCGCheb: 550, CAPCG3Mon: 0, CAPCG3Cheb: 550}},
		{Name: "Hook_1498", PaperRows: 1498023, PaperNNZ: 59374451, Class: "fem3d27", contrast: 5.1, seed: 138, Paper: PaperIters{PCG: 1817, SPCGMon: 0, SPCGCheb: 0, CAPCGMon: 7410, CAPCGCheb: 2610}},
		{Name: "Flan_1565", PaperRows: 1564794, PaperNNZ: 114165372, Class: "fem3d27", contrast: 6.8, seed: 139, Paper: PaperIters{PCG: 4469}},
		{Name: "G3_circuit", PaperRows: 1585478, PaperNNZ: 7660826, Class: "graph", contrast: 3.2, seed: 140, Paper: PaperIters{PCG: 628, SPCGMon: 0, SPCGCheb: 630, CAPCGMon: 0, CAPCGCheb: 630, CAPCG3Mon: 0, CAPCG3Cheb: 630}},
	}
}

// ByName returns the named problem.
func ByName(name string) (Problem, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Problem{}, false
}

// Table3Names lists the seven matrices of the paper's Table 3: the largest
// Table 2 matrices for which at least two s-step methods converged with the
// Chebyshev basis.
func Table3Names() []string {
	return []string{"parabolic_fem", "apache2", "audikw_1", "ldoor", "ecology2", "Geo_1438", "G3_circuit"}
}

// Table3 returns those problems in paper order.
func Table3() []Problem {
	var out []Problem
	for _, name := range Table3Names() {
		p, ok := ByName(name)
		if !ok {
			panic("suite: Table 3 references unknown problem " + name)
		}
		out = append(out, p)
	}
	return out
}

// SortedBySize returns all problems ordered by paper size ascending
// (Table 2 is printed in this order).
func SortedBySize() []Problem {
	ps := All()
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].PaperRows < ps[j].PaperRows })
	return ps
}
