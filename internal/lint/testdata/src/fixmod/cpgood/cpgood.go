// Package cpgood is the compliant miniature solver: the registered method's
// convergence loop polls cancelled() alongside done(), and an unregistered
// helper shows that reachability — not mere presence — scopes the check.
package cpgood

// Method is a registered solver entry point.
type Method func(n int) int

// methods is the registry the analyzer roots reachability at.
var methods = map[string]Method{"solve": Solve}

// checker is the convergence criterion with a cancellation hook.
type checker struct{ cancel func() bool }

func (c *checker) done(v float64) bool { return v < 1e-8 }
func (c *checker) cancelled() bool     { return c.cancel != nil && c.cancel() }

// Solve polls cancellation on every iteration.
func Solve(n int) int {
	c := &checker{}
	i := 0
	for ; i < n; i++ {
		if c.cancelled() {
			break
		}
		if c.done(float64(n - i)) {
			break
		}
	}
	return i
}

// orphan has the offending loop shape but is not reachable from the
// registry, so it is out of the contract's scope.
func orphan(n int) int {
	c := &checker{}
	i := 0
	for ; i < n; i++ {
		if c.done(float64(n - i)) {
			break
		}
	}
	return i
}
