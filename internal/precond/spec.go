package precond

import (
	"fmt"
	"strconv"
	"strings"

	"spcg/internal/eig"
	"spcg/internal/sparse"
)

// Spec is a parsed, canonicalized preconditioner request string. The
// canonical form doubles as a cache key: "ssor" and "ssor:1.0" canonicalize
// identically and therefore share one setup-cache entry. Specs are plain
// values — parse once, build anywhere (the solve service, the autotuner and
// the experiment harness all construct preconditioners from the same Spec).
type Spec struct {
	// Kind is one of identity|jacobi|ssor|ic0|blockjacobi|chebyshev.
	Kind string
	// Omega is the SSOR relaxation factor.
	Omega float64
	// Blocks is the block-Jacobi block count.
	Blocks int
	// Degree is the Chebyshev polynomial degree.
	Degree int

	canonical string
}

// Canonical returns the canonical spelling of the spec ("ssor:1.2",
// "blockjacobi:16", "jacobi", ...), stable across equivalent inputs.
func (s Spec) Canonical() string { return s.canonical }

// Parse accepts "jacobi", "ssor:1.2", "blockjacobi:16", "chebyshev:3",
// "ic0", "identity"/"none", and "" (defaults to jacobi).
func Parse(spec string) (Spec, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "jacobi":
		return Spec{Kind: "jacobi", canonical: "jacobi"}, nil
	case "identity", "none":
		return Spec{Kind: "identity", canonical: "identity"}, nil
	case "ic0":
		return Spec{Kind: "ic0", canonical: "ic0"}, nil
	case "ssor":
		omega := 1.0
		if arg != "" {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil || !(v > 0 && v < 2) {
				return Spec{}, fmt.Errorf("bad ssor omega %q (need 0 < ω < 2)", arg)
			}
			omega = v
		}
		return Spec{Kind: "ssor", Omega: omega, canonical: fmt.Sprintf("ssor:%.4g", omega)}, nil
	case "blockjacobi":
		blocks := 16
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 {
				return Spec{}, fmt.Errorf("bad blockjacobi block count %q", arg)
			}
			blocks = v
		}
		return Spec{Kind: "blockjacobi", Blocks: blocks, canonical: fmt.Sprintf("blockjacobi:%d", blocks)}, nil
	case "chebyshev":
		degree := 3
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 {
				return Spec{}, fmt.Errorf("bad chebyshev degree %q", arg)
			}
			degree = v
		}
		return Spec{Kind: "chebyshev", Degree: degree, canonical: fmt.Sprintf("chebyshev:%d", degree)}, nil
	default:
		return Spec{}, fmt.Errorf("unknown preconditioner %q", spec)
	}
}

// Build constructs the preconditioner the spec describes for matrix a. The
// Chebyshev polynomial preconditioner estimates A's own spectrum with a few
// PCG iterations as part of construction (the paper's setup step, excluded
// from timings).
func (s Spec) Build(a *sparse.CSR) (Interface, error) {
	switch s.Kind {
	case "identity":
		return NewIdentity(a.Dim()), nil
	case "jacobi":
		return NewJacobi(a)
	case "ssor":
		return NewSSOR(a, s.Omega)
	case "ic0":
		return NewIC0(a)
	case "blockjacobi":
		return NewBlockJacobi(a, s.Blocks)
	case "chebyshev":
		est, err := eig.RitzFromPCG(a, nil, eig.Options{Iterations: 20})
		if err != nil {
			return nil, fmt.Errorf("chebyshev setup: %w", err)
		}
		return NewChebyshev(a, s.Degree, est.LambdaMin, est.LambdaMax)
	default:
		return nil, fmt.Errorf("unknown preconditioner kind %q", s.Kind)
	}
}
