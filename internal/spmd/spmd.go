// Package spmd is a real (not modeled) single-program-multiple-data runtime:
// P ranks run as goroutines, each owning a contiguous block of matrix rows,
// communicating only through explicit messages — point-to-point halo
// exchanges for SpMV ghost values and tree-free deterministic allreduces for
// inner products. It executes the same block-row distribution that
// internal/dist models, demonstrating that the partition/halo machinery
// computes exactly what the sequential kernels compute.
//
// The runtime is deliberately faithful to MPI programming style: a rank can
// only read values it owns or has received, reductions are collective, and
// forgetting an exchange produces wrong results, not panics.
//
// Resilience: RunE recovers per-rank panics and surfaces them as an error on
// the launching goroutine instead of crashing the binary — the first failure
// poisons the world, waking every rank blocked in a barrier, collective or
// Recv so the whole run unwinds cleanly. Transient message loss is injected
// through an optional FaultHook and retried with a bounded budget, and
// RecvTimeout turns protocol hangs into errors rather than deadlocks.
package spmd

import (
	"errors"
	"fmt"
	"spcg/internal/resilience"
	"sync"
	"sync/atomic"
	"time"
)

// FaultHook injects transient communication faults into the runtime. A
// fault.Injector satisfies it. All methods may be called concurrently.
type FaultHook interface {
	// DropSend reports whether the attempt-th transmission from rank `from`
	// to rank `to` is lost in transit (the sender retries).
	DropSend(from, to, attempt int) bool
	// FailAllreduce reports whether rank's attempt-th participation in a
	// collective fails transiently (the rank re-posts it).
	FailAllreduce(rank, attempt int) bool
}

// errPoisoned unwinds ranks blocked on a world that another rank has failed;
// RunE recognizes and swallows it, reporting only the root cause.
var errPoisoned = errors.New("spmd: world poisoned by another rank's failure")

// World coordinates P ranks. Create one per parallel region with NewWorld,
// then Run a rank function on every rank. The fault-tolerance fields may be
// set between NewWorld and Run; their zero values reproduce the fault-free
// behavior exactly.
type World struct {
	P int

	// Fault, when non-nil, injects transient communication faults into Send
	// and Allreduce; each injected failure costs one retry.
	Fault FaultHook
	// MaxRetries bounds the resend attempts per message before the runtime
	// forces delivery anyway (transient-fault model; default 3).
	MaxRetries int
	// RecvTimeout, when positive, poisons the world if a Recv waits longer —
	// turning protocol deadlocks (e.g. a crashed peer) into errors.
	RecvTimeout time.Duration

	barrier *barrier
	// reduceBuf[r] holds rank r's contribution to the current allreduce.
	reduceBuf [][]float64
	reduceRes []float64
	// mailboxes[to][from] passes halo payloads; buffered so sends never
	// block (each pair exchanges at most one message per round).
	mailboxes [][]chan []float64

	retried  atomic.Int64
	poisonMu sync.Mutex
	poisoned bool
	err      error
	done     chan struct{}
}

// NewWorld creates a world of p ranks.
func NewWorld(p int) *World {
	if p < 1 {
		panic(fmt.Sprintf("spmd: world size %d < 1", p))
	}
	w := &World{P: p, barrier: newBarrier(p), reduceBuf: make([][]float64, p), done: make(chan struct{})}
	w.mailboxes = make([][]chan []float64, p)
	for to := 0; to < p; to++ {
		w.mailboxes[to] = make([]chan []float64, p)
		for from := 0; from < p; from++ {
			w.mailboxes[to][from] = make(chan []float64, 1)
		}
	}
	return w
}

// poison records the first failure and wakes every blocked rank. Later
// failures (usually secondary victims) are dropped.
func (w *World) poison(err error) {
	w.poisonMu.Lock()
	if !w.poisoned {
		w.poisoned = true
		w.err = err
		close(w.done)
		w.barrier.abort()
	}
	w.poisonMu.Unlock()
}

// failure returns the recorded root-cause error, if any.
func (w *World) failure() error {
	w.poisonMu.Lock()
	defer w.poisonMu.Unlock()
	return w.err
}

// RetriedMessages returns the number of communication retries forced by the
// fault hook so far.
func (w *World) RetriedMessages() int { return int(w.retried.Load()) }

// maxRetries returns the retry budget with its default applied.
func (w *World) maxRetries() int {
	if w.MaxRetries > 0 {
		return w.MaxRetries
	}
	return 3
}

// RunE executes fn on every rank concurrently and waits for all to finish.
// A rank panic does not crash the process: the world is poisoned, all other
// ranks unwind, and the first panic is returned as an error (with the
// panicking rank's stack). A poisoned world must not be reused.
func (w *World) RunE(fn func(r *Rank)) error {
	var wg sync.WaitGroup
	for id := 0; id < w.P; id++ {
		wg.Add(1)
		go func(id int) {
			// resilience.Safe is the single panic boundary for the whole
			// fleet; it preserves error identity through ErrPanic, so the
			// errPoisoned sentinel thrown at secondary victims still matches
			// by errors.Is after wrapping. The stack is captured by Safe.
			if err := resilience.Safe(func() {
				defer wg.Done()
				fn(&Rank{ID: id, W: w})
			}); err != nil {
				if errors.Is(err, errPoisoned) {
					return // secondary victim of another rank's failure
				}
				w.poison(fmt.Errorf("spmd: rank %d panicked: %w", id, err))
			}
		}(id)
	}
	wg.Wait()
	return w.failure()
}

// Run executes fn on every rank concurrently and waits for all to finish,
// panicking if any rank failed. It is the thin compatibility wrapper around
// RunE for callers that treat rank failures as programming errors.
func (w *World) Run(fn func(r *Rank)) {
	if err := w.RunE(fn); err != nil {
		panic(err)
	}
}

// Rank is one SPMD process.
type Rank struct {
	ID int
	W  *World
}

// Barrier blocks until every rank has reached it.
func (r *Rank) Barrier() { r.W.barrier.wait() }

// Allreduce sums the ranks' local contributions elementwise and returns the
// global result on every rank. The summation is performed in rank order by
// rank 0, so the result is deterministic and identical on all ranks.
// All ranks must pass slices of the same length.
//
// With a FaultHook installed, each rank's participation may fail transiently
// and is re-posted (bounded by MaxRetries); retries change only the retry
// counter, never the reduced values, so SPMD control flow stays uniform.
func (r *Rank) Allreduce(local []float64) []float64 {
	w := r.W
	if h := w.Fault; h != nil {
		attempt := 0
		for attempt < w.maxRetries() && h.FailAllreduce(r.ID, attempt) {
			attempt++
		}
		if attempt > 0 {
			w.retried.Add(int64(attempt))
		}
	}
	w.reduceBuf[r.ID] = local
	r.Barrier()
	if r.ID == 0 {
		res := make([]float64, len(local))
		for rank := 0; rank < w.P; rank++ {
			contrib := w.reduceBuf[rank]
			if len(contrib) != len(res) {
				panic(fmt.Sprintf("spmd: allreduce length mismatch: rank %d sent %d values, rank 0 sent %d", rank, len(contrib), len(res)))
			}
			for i, v := range contrib {
				res[i] += v
			}
		}
		w.reduceRes = res
	}
	r.Barrier()
	out := w.reduceRes
	r.Barrier() // nobody reuses the buffers until all have read the result
	return out
}

// Send delivers payload to rank `to` (non-blocking; one in-flight message
// per (from,to) pair per communication round). With a FaultHook installed,
// transmissions may be dropped and are retried (bounded by MaxRetries)
// before the delivery finally goes through — the transient-fault model.
func (r *Rank) Send(to int, payload []float64) {
	w := r.W
	if h := w.Fault; h != nil {
		attempt := 0
		for attempt < w.maxRetries() && h.DropSend(r.ID, to, attempt) {
			attempt++
		}
		if attempt > 0 {
			w.retried.Add(int64(attempt))
		}
	}
	select {
	case w.mailboxes[to][r.ID] <- payload:
	case <-w.done:
		panic(errPoisoned)
	}
}

// Recv blocks until the message from rank `from` arrives, the world is
// poisoned, or RecvTimeout expires (which itself poisons the world).
func (r *Rank) Recv(from int) []float64 {
	w := r.W
	if w.RecvTimeout > 0 {
		timer := time.NewTimer(w.RecvTimeout)
		defer timer.Stop()
		select {
		case p := <-w.mailboxes[r.ID][from]:
			return p
		case <-w.done:
			panic(errPoisoned)
		case <-timer.C:
			w.poison(fmt.Errorf("spmd: rank %d: recv from rank %d timed out after %v", r.ID, from, w.RecvTimeout))
			panic(errPoisoned)
		}
	}
	select {
	case p := <-w.mailboxes[r.ID][from]:
		return p
	case <-w.done:
		panic(errPoisoned)
	}
}

// barrier is a reusable sense-reversing barrier that can be aborted: abort
// wakes all waiters, and every current or future wait unwinds with
// errPoisoned.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	phase   int
	aborted bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		panic(errPoisoned)
	}
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		for b.phase == phase && !b.aborted {
			b.cond.Wait()
		}
		if b.aborted {
			b.mu.Unlock()
			panic(errPoisoned)
		}
	}
	b.mu.Unlock()
}

func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
