package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunUnknownSubcommand(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"nosuchtable"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown subcommand: exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), `unknown subcommand "nosuchtable"`) {
		t.Errorf("stderr should name the bad subcommand, got: %s", errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "usage:") {
		t.Errorf("stderr should include usage, got: %s", errBuf.String())
	}
}

func TestRunNoArgs(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "usage:") {
		t.Errorf("stderr should include usage, got: %s", errBuf.String())
	}
}

func TestRunRejectsPositionalArgs(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"table1", "-s", "4", "stray"}, &out, &errBuf); code != 2 {
		t.Errorf("stray positional arg: exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "unexpected arguments") {
		t.Errorf("stderr should flag unexpected arguments, got: %s", errBuf.String())
	}
}

func TestRunBadFlagValue(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"table2", "-only", "nosuchmatrix"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown matrix: exit %d, want 2", code)
	}
}

func TestRunTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 run in -short mode")
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"table1", "-s", "4", "-dim", "8"}, &out, &errBuf); code != 0 {
		t.Fatalf("table1 smoke: exit %d, stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "validation:") {
		t.Errorf("table1 output missing validation line: %s", out.String())
	}
}
