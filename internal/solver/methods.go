package solver

import (
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

// Method is the shared signature of every top-level solver in this package:
// matrix, preconditioner, right-hand side, options → solution, stats, error.
type Method = func(*sparse.CSR, precond.Interface, []float64, Options) ([]float64, *Stats, error)

// methods is the canonical name → solver registry. The serving daemon, the
// autotuner and the experiment harness all resolve method strings here so a
// name means the same solver everywhere.
var methods = map[string]Method{
	"pcg":       PCG,
	"pcg3":      PCG3,
	"spcg":      SPCG,
	"spcgmon":   SPCGMon,
	"capcg":     CAPCG,
	"capcg3":    CAPCG3,
	"adaptive":  SPCGAdaptive,
	"pipelined": PipelinedPCG,
}

// needsSpectrum lists the methods whose non-monomial bases want λ estimates
// of M⁻¹A (the cacheable Lanczos setup step).
var needsSpectrum = map[string]bool{
	"spcg": true, "capcg": true, "capcg3": true, "adaptive": true,
}

// Methods returns a copy of the method registry, keyed by the lowercase wire
// names served by spcgd ("pcg", "spcg", "capcg3", ...).
func Methods() map[string]Method {
	out := make(map[string]Method, len(methods))
	for name, fn := range methods {
		out[name] = fn
	}
	return out
}

// ByName resolves one method name from the registry.
func ByName(name string) (Method, bool) {
	fn, ok := methods[name]
	return fn, ok
}

// NeedsSpectrum reports whether the named method benefits from a precomputed
// spectral estimate of the preconditioned operator when running a
// non-monomial basis.
func NeedsSpectrum(name string) bool { return needsSpectrum[name] }
