// Strong scaling: a runnable miniature of the paper's Figure 1. One solve
// per solver provides the event stream; the virtual-cluster cost model then
// prices it at every node count, showing where standard PCG stops scaling
// and the s-step methods keep going.
//
//	go run ./examples/strongscaling
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"spcg"
)

func main() {
	a := spcg.Poisson3D(32, 32, 32)
	n := a.Dim()
	rng := rand.New(rand.NewSource(1))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64() / math.Sqrt(float64(n))
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)
	m, err := spcg.NewJacobi(a)
	if err != nil {
		log.Fatal(err)
	}

	machine := spcg.DefaultMachine() // 128 ranks/node, like the paper's ASC nodes
	nodeCounts := []int{1, 2, 4, 8, 16, 32, 64}

	type variant struct {
		name string
		run  func(opts spcg.Options) (*spcg.Stats, error)
	}
	variants := []variant{
		{"PCG", func(o spcg.Options) (*spcg.Stats, error) { _, s, err := spcg.PCG(a, m, b, o); return s, err }},
		{"sPCG(s=10)", func(o spcg.Options) (*spcg.Stats, error) {
			o.S, o.Basis = 10, spcg.Chebyshev
			_, s, err := spcg.SPCG(a, m, b, o)
			return s, err
		}},
		{"CA-PCG(s=10)", func(o spcg.Options) (*spcg.Stats, error) {
			o.S, o.Basis = 10, spcg.Chebyshev
			_, s, err := spcg.CAPCG(a, m, b, o)
			return s, err
		}},
		{"CA-PCG3(s=10)", func(o spcg.Options) (*spcg.Stats, error) {
			o.S, o.Basis = 10, spcg.Chebyshev
			_, s, err := spcg.CAPCG3(a, m, b, o)
			return s, err
		}},
	}

	// Reference: PCG on one node.
	times := map[string][]float64{}
	for _, v := range variants {
		times[v.name] = make([]float64, len(nodeCounts))
		for i, nd := range nodeCounts {
			cl, err := spcg.NewCluster(machine, nd, a)
			if err != nil {
				log.Fatal(err)
			}
			stats, err := v.run(spcg.Options{Tol: 1e-9, Criterion: spcg.RecursiveResidualMNorm, Tracker: spcg.NewTracker(cl)})
			if err != nil {
				log.Fatal(err)
			}
			if !stats.Converged {
				times[v.name][i] = math.NaN()
				continue
			}
			times[v.name][i] = stats.SimTime
		}
	}

	ref := times["PCG"][0]
	fmt.Printf("7-pt 3D Poisson 32³, Jacobi preconditioner, Chebyshev basis\n")
	fmt.Printf("reference: PCG on 1 node (128 ranks) = %.4fs modeled\n\n", ref)
	fmt.Printf("%-8s", "nodes")
	for _, v := range variants {
		fmt.Printf("%14s", v.name)
	}
	fmt.Println("   (speedup over 1-node PCG)")
	for i, nd := range nodeCounts {
		fmt.Printf("%-8d", nd)
		for _, v := range variants {
			t := times[v.name][i]
			if math.IsNaN(t) {
				fmt.Printf("%14s", "-")
			} else {
				fmt.Printf("%13.2f×", ref/t)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nPCG flattens once the two allreduces per iteration dominate; the")
	fmt.Println("s-step methods amortize one allreduce over s iterations and keep scaling.")
}
