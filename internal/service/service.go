// Package service implements the spcgd solve daemon: a concurrent,
// stdlib-only JSON façade over the solver stack. It adds three serving-side
// capabilities on top of the numerical code:
//
//   - a bounded worker pool with admission control (queue full → immediate
//     rejection rather than unbounded buffering);
//   - a setup cache keyed by (matrix fingerprint, preconditioner spec) that
//     reuses preconditioner construction and Lanczos spectral estimates
//     across requests — the expensive "excluded from timings" setup work of
//     the paper, amortized across a serving workload;
//   - request coalescing: concurrent PCG requests for the same matrix and
//     tolerance arriving within a short window are solved together as one
//     multi-RHS block solve (solver.BatchPCG), sharing the SpMV sweeps.
//
// Cancellation is cooperative end to end: every job carries a context whose
// Done channel is plumbed into Options.Cancel, so deadlines and explicit
// /jobs/{id}/cancel calls stop the iteration loop and still return partial
// Stats.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"spcg/internal/basis"
	"spcg/internal/obs"
	"spcg/internal/precond"
	"spcg/internal/resilience"
	"spcg/internal/solver"
	"spcg/internal/sparse"
	"spcg/internal/tune"
	"spcg/internal/vec"
)

// Config sizes the server. The zero value gets sensible defaults.
type Config struct {
	// Workers is the solver pool size (default: NumCPU, max 8).
	Workers int
	// QueueDepth bounds admitted-but-unfinished jobs; submissions beyond it
	// are rejected with ErrQueueFull (default 64).
	QueueDepth int
	// BatchWindow is how long the first PCG request for a matrix waits for
	// same-matrix companions before solving (default 2ms).
	BatchWindow time.Duration
	// BatchMax flushes a pending batch immediately once it holds this many
	// requests (default 8; 1 disables coalescing).
	BatchMax int
	// CacheSize is the setup-cache capacity in (matrix, preconditioner)
	// entries (default 32).
	CacheSize int
	// DefaultTimeout bounds each job's wall time when the request does not
	// set timeout_ms (default 120s).
	DefaultTimeout time.Duration
	// Scale divides the suite problem sizes, as in `spcgbench -scale`
	// (default 100: small enough for interactive serving).
	Scale int
	// MaxMatrixDim rejects generator requests beyond this dimension
	// (default 1<<22).
	MaxMatrixDim int
	// MaxDoneJobs bounds retained finished jobs (default 512).
	MaxDoneJobs int
	// MaxRequestIters bounds SolveRequest.MaxIters (default 1e6): iteration
	// history and per-iteration work scale with it, so an unbounded value is
	// a memory/CPU exhaustion hole.
	MaxRequestIters int
	// MaxRequestS bounds SolveRequest.S (default 64): basis blocks allocate
	// (s+1) length-n vectors.
	MaxRequestS int
	// WatchdogInterval is how often the stagnation watchdog samples a running
	// solve's heartbeat (default 250ms).
	WatchdogInterval time.Duration
	// StagnationWindow kills a solve whose relative residual has not improved
	// by StagnationImprove for this long, reporting JobStagnated well before
	// the wall-clock deadline (default 15s; negative disables the watchdog).
	StagnationWindow time.Duration
	// StagnationImprove is the fractional residual improvement that counts as
	// progress for the watchdog (default 0.01).
	StagnationImprove float64
	// BreakerFailures is the consecutive-failure count that opens a
	// per-(matrix, method, s) circuit breaker, degrading the method ladder
	// sPCG(s) → SPCGAdaptive → PCG for subsequent requests (default 3;
	// negative disables the breaker).
	BreakerFailures int
	// BreakerCooldown is how long an open breaker waits before a half-open
	// probe re-tests the fast path (default 30s).
	BreakerCooldown time.Duration
	// Chaos, when non-nil, turns on service-level fault injection (injected
	// panics, solver soft errors, modeled comm faults) for chaos testing.
	Chaos *ChaosConfig
	// TunePath is where the autotuning decision store persists (JSON;
	// "" = memory-only, decisions die with the process).
	TunePath string
	// TuneEntries bounds retained tuning decisions, LRU-evicted (default 128).
	TuneEntries int
	// TuneProbeIters is the iteration cap of the first tuning trial round;
	// each successive-halving round quadruples it (default 40).
	TuneProbeIters int
	// TuneRounds is the number of successive-halving trial rounds (default 3).
	TuneRounds int
	// TuneStore overrides TunePath with a caller-opened store (lets cmd/spcgd
	// make store-open failures fatal instead of falling back to memory-only).
	TuneStore *tune.Store
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.NumCPU()
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMax < 1 {
		c.BatchMax = 8
	}
	if c.CacheSize < 1 {
		c.CacheSize = 32
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 120 * time.Second
	}
	if c.Scale < 1 {
		c.Scale = 100
	}
	if c.MaxMatrixDim < 1 {
		c.MaxMatrixDim = 1 << 22
	}
	if c.MaxDoneJobs < 1 {
		c.MaxDoneJobs = 512
	}
	if c.MaxRequestIters < 1 {
		c.MaxRequestIters = 1_000_000
	}
	if c.MaxRequestS < 1 {
		c.MaxRequestS = 64
	}
	if c.WatchdogInterval <= 0 {
		c.WatchdogInterval = 250 * time.Millisecond
	}
	if c.StagnationWindow == 0 {
		c.StagnationWindow = 15 * time.Second
	}
	if c.StagnationImprove <= 0 || c.StagnationImprove >= 1 {
		c.StagnationImprove = 0.01
	}
	if c.BreakerFailures == 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.TuneEntries < 1 {
		c.TuneEntries = 128
	}
	if c.TuneProbeIters < 1 {
		c.TuneProbeIters = 40
	}
	if c.TuneRounds < 1 {
		c.TuneRounds = 3
	}
	return c
}

// ErrQueueFull is returned by Submit when admission control rejects a job.
var ErrQueueFull = fmt.Errorf("service: queue full")

// ErrShuttingDown is returned by Submit after Shutdown has begun.
var ErrShuttingDown = fmt.Errorf("service: shutting down")

// ErrLimitExceeded is returned by Submit when a request exceeds the
// configured resource limits (MaxRequestIters, MaxRequestS, MaxMatrixDim);
// the HTTP layer maps it to 400.
var ErrLimitExceeded = fmt.Errorf("service: request exceeds configured limits")

// ErrBadBasis is returned by Submit when SolveRequest.Basis names an unknown
// polynomial basis; the HTTP layer maps it to 400.
var ErrBadBasis = fmt.Errorf("service: unknown basis")

// methodTable resolves the wire method names; the registry itself lives in
// the solver package (solver.Methods) so the autotuner and experiments share
// the same name → solver mapping.
func methodTable() map[string]solver.Method { return solver.Methods() }

// degradeNext is the circuit-breaker degradation ladder: when the breaker
// for (matrix, method, s) is open, the request falls through to the next
// rung. Every s-step method degrades to the adaptive s-halving cascade —
// the paper-faithful mitigation for basis/Gram ill-conditioning — and the
// cascade itself degrades to plain PCG, which is never breaker-gated (it is
// the floor of the ladder).
var degradeNext = map[string]string{
	"spcg":     "adaptive",
	"spcgmon":  "adaptive",
	"capcg":    "adaptive",
	"capcg3":   "adaptive",
	"adaptive": "pcg",
}

// batchKey groups coalescable requests: same matrix name, preconditioner and
// convergence configuration solve in lockstep as one block.
type batchKey struct {
	matrix   string
	prec     string
	tol      float64
	maxIters int
}

type pendingBatch struct {
	key     batchKey
	jobs    []*job
	timer   *time.Timer
	flushed bool
}

type workItem struct {
	jobs []*job // len > 1 ⇒ coalesced PCG batch
}

// Server is the solve service. Create with New, serve via Handler, stop with
// Shutdown.
type Server struct {
	cfg      Config
	reg      *registry
	cache    *setupCache
	formats  *formatCache
	jobs     *jobStore
	met      *metrics
	start    time.Time
	breakers *resilience.Breakers // nil when BreakerFailures < 0
	shed     *resilience.RateWindow
	chaos    *chaosState // nil unless Config.Chaos was set

	tuner *tuneState

	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue chan *workItem
	wg    sync.WaitGroup
	// bg tracks background tuning goroutines; Shutdown waits for them after
	// the worker pool drains.
	bg sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	admitted int
	pending  map[batchKey]*pendingBatch
}

// New starts a server's worker pool and returns it ready to accept jobs.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	cache := newSetupCache(cfg.CacheSize)
	s := &Server{
		cfg:        cfg,
		reg:        newRegistry(cfg.Scale, cfg.MaxMatrixDim),
		cache:      cache,
		jobs:       newJobStore(cfg.MaxDoneJobs),
		met:        newMetrics(start, cache),
		start:      start,
		shed:       resilience.NewRateWindow(30),
		baseCtx:    ctx,
		baseCancel: cancel,
		// Admission caps outstanding jobs at QueueDepth and a work item never
		// carries more jobs than exist, so sends below never block.
		queue:   make(chan *workItem, cfg.QueueDepth),
		pending: map[batchKey]*pendingBatch{},
	}
	if cfg.BreakerFailures > 0 {
		s.breakers = resilience.NewBreakers(resilience.BreakerConfig{
			Failures: cfg.BreakerFailures,
			Cooldown: cfg.BreakerCooldown,
		})
	}
	if cfg.Chaos != nil {
		s.chaos = newChaosState(*cfg.Chaos)
	}
	s.formats = newFormatCache(cfg.CacheSize, s.met)
	s.tuner = newTuneState(cfg, s.met)
	s.met.bindResilience(s)
	s.met.bindTune(s)
	s.met.bindFormats(s)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			// runGuarded already isolates per-solve panics; this outer guard
			// covers the queue loop itself so a bug there can never kill a
			// worker silently. worker's own defer releases the WaitGroup
			// during the unwind before Safe recovers.
			if err := resilience.Safe(s.worker); err != nil {
				s.met.panics.Inc()
			}
		}()
	}
	return s
}

// validate rejects malformed requests before admission so clients get a 400
// rather than a failed job.
func (s *Server) validate(req *SolveRequest) error {
	req.Method = strings.ToLower(strings.TrimSpace(req.Method))
	if req.Method == "" {
		req.Method = "pcg"
	}
	if _, ok := methodTable()[req.Method]; !ok && req.Method != "auto" {
		return fmt.Errorf("unknown method %q", req.Method)
	}
	if strings.TrimSpace(req.Matrix) == "" {
		return fmt.Errorf("missing matrix")
	}
	if _, err := precond.Parse(req.Precond); err != nil {
		return err
	}
	req.Basis = strings.ToLower(strings.TrimSpace(req.Basis))
	if req.Basis != "" {
		if _, err := basis.ParseType(req.Basis); err != nil {
			return fmt.Errorf("%w %q (want monomial, newton or chebyshev)", ErrBadBasis, req.Basis)
		}
	}
	if req.Tol < 0 || req.MaxIters < 0 || req.S < 0 || req.TimeoutMS < 0 {
		return fmt.Errorf("negative tol/max_iters/s/timeout_ms")
	}
	// Resource limits: a single hostile request must not be able to pin a
	// worker forever or allocate unbounded memory. Matrix dimensions are
	// bounded here too, before the generator would build anything.
	if req.MaxIters > s.cfg.MaxRequestIters {
		return fmt.Errorf("%w: max_iters %d > limit %d", ErrLimitExceeded, req.MaxIters, s.cfg.MaxRequestIters)
	}
	if req.S > s.cfg.MaxRequestS {
		return fmt.Errorf("%w: s %d > limit %d", ErrLimitExceeded, req.S, s.cfg.MaxRequestS)
	}
	if err := s.reg.sizeCheck(req.Matrix); err != nil {
		return err
	}
	if _, err := buildRHS(req.RHS, 1); err != nil {
		return err
	}
	return nil
}

// Submit validates and admits one request, returning the queued job. The
// caller decides whether to wait on job completion (sync) or return the id
// (async).
func (s *Server) Submit(req SolveRequest) (*job, error) {
	if err := s.validate(&req); err != nil {
		return nil, err
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.met.rejected.Inc()
		return nil, ErrShuttingDown
	}
	// Idempotent resubmission: a request_id that is already admitted (or
	// finished and still retained) returns its existing job instead of
	// running the solve twice. Checked before the queue-full gate so a
	// gateway retry of an accepted request is never shed.
	if req.RequestID != "" {
		if j := s.jobs.getByRequestID(req.RequestID); j != nil {
			s.mu.Unlock()
			s.met.dedupHits.Inc()
			return j, nil
		}
	}
	if s.admitted >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.met.rejected.Inc()
		s.shed.Add(1)
		return nil, ErrQueueFull
	}
	s.admitted++
	j := s.jobs.newJob(req, s.baseCtx, timeout)
	// Traced requests opt out of coalescing: a block solve would share one
	// phase breakdown across unrelated submitters.
	if req.Method == "pcg" && !req.NoBatch && !req.Trace && s.cfg.BatchMax > 1 {
		s.enqueueBatchedLocked(j)
	} else {
		s.queue <- &workItem{jobs: []*job{j}}
	}
	s.mu.Unlock()

	s.met.requests.Inc()
	s.met.queued.Add(1)
	return j, nil
}

// enqueueBatchedLocked adds j to the pending batch for its key, opening the
// coalescing window on first arrival and flushing early at BatchMax.
func (s *Server) enqueueBatchedLocked(j *job) {
	key := batchKey{
		matrix:   strings.TrimSpace(j.req.Matrix),
		tol:      j.req.Tol,
		maxIters: j.req.MaxIters,
	}
	spec, _ := precond.Parse(j.req.Precond) // validated in Submit
	key.prec = spec.Canonical()

	pb := s.pending[key]
	if pb == nil {
		pb = &pendingBatch{key: key}
		s.pending[key] = pb
		pb.timer = time.AfterFunc(s.cfg.BatchWindow, func() { s.flushBatch(pb) })
	}
	pb.jobs = append(pb.jobs, j)
	if len(pb.jobs) >= s.cfg.BatchMax {
		pb.timer.Stop()
		s.flushLocked(pb)
	}
}

func (s *Server) flushBatch(pb *pendingBatch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked(pb)
}

func (s *Server) flushLocked(pb *pendingBatch) {
	if pb.flushed {
		return
	}
	pb.flushed = true
	delete(s.pending, pb.key)
	s.queue <- &workItem{jobs: pb.jobs}
}

// Job returns the job with the given id, or nil.
func (s *Server) Job(id string) *job { return s.jobs.get(id) }

// Matrices lists the registered matrix names.
func (s *Server) Matrices() []string { return s.reg.names() }

// Metrics returns the current serving counters as the structured JSON view.
func (s *Server) Metrics() MetricsSnapshot { return s.met.snapshot(s.start, s.cache) }

// Registry exposes the server's metric registry (Prometheus exposition and
// the docs-coverage check read it).
func (s *Server) Registry() *obs.Registry { return s.met.reg }

// Draining reports whether Shutdown has begun (used by /healthz).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Health evaluates the serving state machine: draining once Shutdown has
// begun, degraded while any circuit breaker denies its fast path or
// admissions were shed within the rate window, healthy otherwise.
func (s *Server) Health() resilience.Health {
	if s.Draining() {
		return resilience.Draining
	}
	if s.breakers != nil && s.breakers.OpenCount() > 0 {
		return resilience.Degraded
	}
	if s.shed.Rate() > 0 {
		return resilience.Degraded
	}
	return resilience.Healthy
}

// HealthStatus is the JSON document served at /healthz.
type HealthStatus struct {
	Status string `json:"status"` // healthy | degraded | draining
	// OpenBreakers lists circuits currently denying their fast path, as
	// "method(s=K)@fingerprint state".
	OpenBreakers []string `json:"open_breakers,omitempty"`
	// ShedRate is admissions rejected per second over the last 30s.
	ShedRate float64 `json:"shed_rate"`
	// InFlight and QueueDepth mirror the admission gauges.
	InFlight   int64 `json:"in_flight"`
	QueueDepth int64 `json:"queue_depth"`
}

// HealthSnapshot assembles the /healthz payload.
func (s *Server) HealthSnapshot() HealthStatus {
	hs := HealthStatus{
		Status:   s.Health().String(),
		ShedRate: s.shed.Rate(),
		InFlight: int64(s.met.inFlight.Value()),
	}
	if d := s.met.queued.Load() - hs.InFlight; d > 0 {
		hs.QueueDepth = d
	}
	if s.breakers != nil {
		for _, ob := range s.breakers.Open() {
			hs.OpenBreakers = append(hs.OpenBreakers, ob.Key.String()+" "+ob.State.String())
		}
	}
	return hs
}

// Shutdown stops admission, flushes pending batches, drains the queue and
// waits for workers. If ctx expires first, in-flight solves are cancelled
// cooperatively and Shutdown still waits for them to unwind.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, pb := range s.pending {
		pb.timer.Stop()
		s.flushLocked(pb)
	}
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		if err := resilience.Safe(func() {
			defer close(done) // shutdown must never hang on a panicked waiter
			s.wg.Wait()
			s.bg.Wait() // background tuning probes observe baseCtx, so they unwind too
		}); err != nil {
			s.met.panics.Inc()
		}
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel() // cancel in-flight solves, then wait for the unwind
		<-done
	}
	s.baseCancel()
	// Persist Get-side recency updates so the LRU order survives restarts.
	if ferr := s.tuner.store.Flush(); ferr != nil {
		s.met.tuneStoreErrors.Inc()
	}
	return err
}

func (s *Server) worker() {
	defer s.wg.Done()
	for item := range s.queue {
		s.runGuarded(item)
	}
}

// runGuarded isolates panics: a panicking solve (kernel bug, injected chaos)
// becomes a set of failed jobs with a stack-tagged error — never a dead
// worker or a daemon crash. Deferred cleanups inside run (in-flight gauge,
// batch watchers) execute during the unwind as usual.
func (s *Server) runGuarded(item *workItem) {
	err := resilience.Safe(func() { s.run(item) })
	if err == nil {
		return
	}
	s.met.panics.Inc()
	for _, j := range item.jobs {
		// A panic mid-solve is a failure signal for any breaker-gated member.
		if key, ok := j.breakerKeyIfSet(); ok {
			s.breakerRecord(key, false)
		}
		s.finishJob(j, JobFailed, &SolveResult{Error: err.Error(), BatchSize: len(item.jobs)})
	}
}

// run executes one work item: resolve shared setup once, then solve solo or
// as a coalesced block.
func (s *Server) run(item *workItem) {
	now := time.Now()
	for _, j := range item.jobs {
		j.setRunning(now)
	}
	n := float64(len(item.jobs))
	s.met.inFlight.Add(n)
	defer s.met.inFlight.Add(-n)

	// Drop members whose deadline or cancel fired while queued.
	live := item.jobs[:0]
	for _, j := range item.jobs {
		if j.ctx.Err() != nil {
			s.finishJob(j, JobCancelled, &SolveResult{Error: "cancelled before start", BatchSize: 1})
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}

	lead := live[0]
	a, fp, err := s.reg.get(lead.req.Matrix)
	if err != nil {
		s.failAll(live, err)
		return
	}
	// method:"auto" resolves through the tuner once the fingerprint is known
	// and before setup, because the tuned configuration may pick a different
	// preconditioner than the request carried. Auto requests never coalesce
	// (Submit batches only literal "pcg"), so this is always the solo path.
	eff := lead.req
	var tuneSource string
	var tuned *tune.Candidate
	if eff.Method == "auto" {
		eff, tuneSource, tuned = s.resolveAuto(a, fp, eff)
	}
	// The format engine decides (once per fingerprint) which storage the hot
	// path reads — or honours a tuned candidate's pinned combo. Everything
	// downstream (preconditioner, spectrum, solve) runs in the plan's
	// ordering; solutions are un-permuted before any result leaves.
	wantFormat := ""
	if tuned != nil {
		wantFormat = tuned.Format
	}
	plan := s.formats.resolve(a, fp, wantFormat)
	spec, err := precond.Parse(eff.Precond)
	if err != nil {
		s.failAll(live, err)
		return
	}
	entry, _ := s.cache.get(setupKey{fp: fp, prec: spec.Canonical(), order: plan.order()})
	m, err := entry.preconditioner(plan.mat, spec)
	if err != nil {
		s.failAll(live, err)
		return
	}

	if len(live) > 1 {
		s.runBatch(live, plan, m)
		return
	}
	s.runSolo(lead, eff, tuneSource, tuned, plan, fp, m, entry, spec)
}

func (s *Server) failAll(jobs []*job, err error) {
	for _, j := range jobs {
		s.finishJob(j, JobFailed, &SolveResult{Error: err.Error(), BatchSize: 1})
	}
}

// applyBreaker walks the degradation ladder for breaker-gated methods: when
// the circuit for (fp, method, s) is open, the request falls to the next
// rung until an allowed method (or the ungated floor, plain PCG) is reached.
// gated reports whether the chosen method's outcome must be Recorded.
func (s *Server) applyBreaker(fp uint64, req SolveRequest) (method string, key resilience.Key, gated bool, degradedFrom string) {
	method = req.Method
	if s.breakers == nil {
		return method, resilience.Key{}, false, ""
	}
	if _, ok := degradeNext[method]; !ok {
		return method, resilience.Key{}, false, "" // pcg, pcg3, pipelined: never gated
	}
	sVal := req.S
	if sVal <= 0 {
		sVal = 10 // the solver's default block size; keys must match what runs
	}
	now := time.Now()
	for {
		key = resilience.Key{Fingerprint: fp, Method: method, S: sVal}
		if allowed, _ := s.breakers.Allow(key, now); allowed {
			if method != req.Method {
				degradedFrom = req.Method
			}
			return method, key, true, degradedFrom
		}
		method = degradeNext[method]
		if _, ok := degradeNext[method]; !ok {
			// Reached the PCG floor: always allowed, never gated.
			return method, resilience.Key{}, false, req.Method
		}
	}
}

// breakerRecord feeds one outcome into the circuit for key and mirrors the
// resulting transition into metrics.
func (s *Server) breakerRecord(key resilience.Key, success bool) {
	if s.breakers == nil {
		return
	}
	switch s.breakers.Record(key, success, time.Now()) {
	case resilience.Opened:
		s.met.breakerOpened.Inc()
	case resilience.Restored:
		s.met.breakerRestored.Inc()
	}
}

// watchStagnation starts the heartbeat watchdog for a solve covering the
// given jobs, wiring the heartbeat into opts.OnProgress. The watcher exits
// when stop closes; on stagnation it marks every job and cancels it.
func (s *Server) watchStagnation(opts *solver.Options, stop <-chan struct{}, jobs ...*job) {
	if s.cfg.StagnationWindow <= 0 {
		return
	}
	hb := resilience.NewHeartbeat(s.cfg.StagnationImprove)
	opts.OnProgress = hb.Record
	cfg := resilience.WatchdogConfig{Interval: s.cfg.WatchdogInterval, Window: s.cfg.StagnationWindow}
	go func() {
		if err := resilience.Safe(func() {
			resilience.Watch(stop, hb, cfg, func(snap resilience.HeartbeatSnapshot) {
				reason := fmt.Sprintf("no residual progress for %s (best relative %.3g, %d checks, iteration %d)",
					snap.SinceImprove.Round(time.Millisecond), snap.Best, snap.Beats, snap.Iterations)
				for _, j := range jobs {
					j.markStagnated(reason)
					j.cancel()
				}
			})
		}); err != nil {
			s.met.panics.Inc()
		}
	}()
}

// runSolo executes one job with the effective request's method — or, when
// the circuit breaker for its (matrix, method, s) tuple is open, the next
// rung of the degradation ladder. req is the request as resolved (it differs
// from j.req for method:"auto"). A stagnation watchdog samples the solve's
// heartbeat and kills it well before the wall-clock deadline when the
// residual stops improving.
func (s *Server) runSolo(j *job, req SolveRequest, tuneSource string, tuned *tune.Candidate, plan *formatPlan, fp uint64, m precond.Interface, entry *setupEntry, spec precond.Spec) {
	a := plan.mat
	method, key, gated, degradedFrom := s.applyBreaker(fp, req)
	if gated {
		j.setBreakerKey(key)
	}
	if degradedFrom != "" {
		s.met.degraded.Inc()
	}
	solve := methodTable()[method]
	opts := optsFromReq(req, j.ctx.Done())
	if req.Trace {
		opts.Trace = obs.New(0) // per-job tracer; Stats.Phases flows to the result
	}
	if solver.NeedsSpectrum(method) && opts.Basis != basis.Monomial {
		sVal := opts.S
		if sVal <= 0 {
			sVal = 10
		}
		if est, err := entry.spectrumFor(a, spec, sVal); err == nil {
			opts.Spectrum = est
		}
		// On estimate failure the solver falls back to computing its own.
	}
	opts.Operator = plan.op
	s.chaos.arm(&opts, a, fp)
	s.watchStagnation(&opts, j.ctx.Done(), j)
	b, err := buildRHS(req.RHS, a.Dim())
	if err != nil {
		s.finishJob(j, JobFailed, &SolveResult{Error: err.Error(), BatchSize: 1})
		return
	}
	if plan.perm != nil {
		b = sparse.PermuteVec(b, plan.perm)
	}
	s.chaos.maybePanic(j.id) // inside the worker's Safe guard

	t0 := time.Now()
	x, stats, err := solve(a, m, b, opts)
	elapsed := time.Since(t0)
	s.met.observe(method, elapsed)
	s.met.countServe(plan)
	if plan.perm != nil && x != nil {
		// The solve ran on P·A·Pᵀ; hand the caller the solution of A.
		x = sparse.UnpermuteVec(x, plan.perm)
	}

	res := statsToResult(stats, err, false, 1, elapsed, norm2(x))
	res.Method = method
	res.Format = plan.name
	res.DegradedFrom = degradedFrom
	res.TuneSource = tuneSource
	res.TunedConfig = tuned
	s.recordSolve(stats, true)
	stagnated, reason := j.stagnatedInfo()
	if gated {
		switch {
		case stagnated:
			s.breakerRecord(key, false)
		case isCancelled(err):
			// Client cancel or deadline: no numerical signal either way.
		default:
			s.breakerRecord(key, err == nil && stats != nil && stats.Converged)
		}
	}
	switch {
	case err == nil:
		s.finishJob(j, JobDone, res)
	case isCancelled(err) && stagnated:
		res.Error = "stagnated: " + reason
		s.met.stagnated.Inc()
		s.finishJob(j, JobStagnated, res)
	case isCancelled(err):
		s.finishJob(j, JobCancelled, res)
	default:
		s.finishJob(j, JobFailed, res)
	}
}

// runBatch executes k coalesced PCG jobs as one multi-RHS block solve. The
// block's Cancel channel closes only when every member's context is done, so
// one member's deadline never aborts its companions.
func (s *Server) runBatch(members []*job, plan *formatPlan, m precond.Interface) {
	a := plan.mat
	k := len(members)
	n := a.Dim()
	bs := vec.NewBlock(n, k)
	for i, j := range members {
		col, err := buildRHS(j.req.RHS, n)
		if err != nil {
			// Validation makes this unreachable, but stay defensive.
			s.finishJob(j, JobFailed, &SolveResult{Error: err.Error(), BatchSize: k})
			col = make([]float64, n)
		}
		if plan.perm != nil {
			col = sparse.PermuteVec(col, plan.perm)
		}
		copy(bs.Col(i), col)
	}

	allDone := make(chan struct{})
	go func() {
		if err := resilience.Safe(func() {
			defer close(allDone) // the watchdog below selects on allDone; never leak it
			for _, j := range members {
				<-j.ctx.Done() // finishJob cancels each ctx, so this always drains
			}
		}); err != nil {
			s.met.panics.Inc()
		}
	}()

	opts := optsFromReq(members[0].req, allDone)
	opts.Operator = plan.op
	// One watchdog covers the whole block: BatchPCG's heartbeat reports the
	// worst still-active column, so the block is only killed when even its
	// slowest member has stopped improving.
	s.watchStagnation(&opts, allDone, members...)
	t0 := time.Now()
	xs, statsList, err := solver.BatchPCG(a, m, bs, opts)
	elapsed := time.Since(t0)

	if err != nil && !isCancelled(err) {
		s.failAll(members, err)
		return
	}
	s.met.blockSolves.Inc()
	s.met.batchedRequests.Add(int64(k))
	s.met.maxBatch.SetMax(float64(k))
	for i, j := range members {
		if j.status().State != JobRunning {
			continue // already failed above on a bad RHS
		}
		var st *solver.Stats
		if statsList != nil {
			st = statsList[i]
		}
		var xnorm float64
		if xs != nil {
			xj := xs.Col(i)
			if plan.perm != nil {
				xj = sparse.UnpermuteVec(xj, plan.perm)
			}
			xnorm = norm2(xj)
		}
		s.met.observe(j.req.Method, elapsed)
		s.met.countServe(plan)
		s.recordSolve(st, false)
		res := statsToResult(st, nil, true, k, elapsed, xnorm)
		res.Method = j.req.Method
		res.Format = plan.name
		stagnated, reason := j.stagnatedInfo()
		switch {
		case stagnated:
			res.Error = "stagnated: " + reason
			s.met.stagnated.Inc()
			s.finishJob(j, JobStagnated, res)
		case j.ctx.Err() != nil || isCancelled(err):
			// The member's own cancel/deadline wins even if its column happened
			// to converge before the block wound down.
			res.Error = solver.ErrCancelled.Error()
			s.finishJob(j, JobCancelled, res)
		case st != nil && st.Converged:
			s.finishJob(j, JobDone, res)
		default:
			s.finishJob(j, JobDone, res) // ran to cap/breakdown: done, not converged
		}
	}
}

// recordSolve accumulates solver-side counters into the metrics.
func (s *Server) recordSolve(st *solver.Stats, solo bool) {
	if solo {
		s.met.soloSolves.Inc()
	}
	if st != nil {
		s.met.iterations.Add(int64(st.Iterations))
		s.met.mvProducts.Add(int64(st.MVProducts))
		s.met.precApplies.Add(int64(st.PrecApplies))
		s.met.commRetries.Add(int64(st.RetriedMessages))
	}
}

// finishJob finalizes a job exactly once and releases its admission slot.
func (s *Server) finishJob(j *job, state JobState, res *SolveResult) {
	if !j.finish(state, res, time.Now()) {
		return
	}
	s.jobs.markDone(j.id)
	s.mu.Lock()
	s.admitted--
	s.mu.Unlock()
	s.met.queued.Add(-1)
	switch state {
	case JobDone:
		s.met.completed.Inc()
	case JobFailed:
		s.met.failed.Inc()
	case JobCancelled, JobStagnated:
		// spcgd_stagnated_total counts watchdog kills separately at the call
		// site; both states release the job as a cancellation for accounting.
		s.met.cancelled.Inc()
	}
}

func isCancelled(err error) bool { return errors.Is(err, solver.ErrCancelled) }

// optsFromReq maps the wire request onto solver Options. The service always
// uses the paper's default criterion and leaves Tracker/Injector nil (they
// are not concurrency-safe to share; see TestConcurrentSolvesShareState).
func optsFromReq(req SolveRequest, cancel <-chan struct{}) solver.Options {
	opts := solver.Options{
		S:             req.S,
		Tol:           req.Tol,
		MaxIterations: req.MaxIters,
		Cancel:        cancel,
		Basis:         basis.Chebyshev,
	}
	if req.Basis != "" {
		if t, err := basis.ParseType(req.Basis); err == nil {
			opts.Basis = t
		}
	}
	return opts
}

// buildRHS constructs the right-hand side named by spec: "ones" (default),
// "sin", or "random[:seed]" (deterministic per seed).
func buildRHS(spec string, n int) ([]float64, error) {
	name, arg := strings.TrimSpace(strings.ToLower(spec)), ""
	if i := strings.IndexByte(name, ':'); i >= 0 {
		name, arg = name[:i], name[i+1:]
	}
	b := make([]float64, n)
	switch name {
	case "", "ones":
		for i := range b {
			b[i] = 1
		}
	case "sin":
		for i := range b {
			b[i] = math.Sin(float64(i + 1))
		}
	case "random":
		seed := int64(1)
		if arg != "" {
			if _, err := fmt.Sscanf(arg, "%d", &seed); err != nil {
				return nil, fmt.Errorf("bad rhs seed %q", arg)
			}
		}
		rng := rand.New(rand.NewSource(seed))
		for i := range b {
			b[i] = 2*rng.Float64() - 1
		}
	default:
		return nil, fmt.Errorf("unknown rhs %q (ones, sin, random[:seed])", spec)
	}
	return b, nil
}

func norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
