package sparse

import "testing"

func TestFingerprintDeterministic(t *testing.T) {
	a := Poisson2D(17, 13)
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not deterministic across calls")
	}
	b := Poisson2D(17, 13)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical matrices have different fingerprints")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Poisson2D(11, 11)
	fp := base.Fingerprint()

	val := Poisson2D(11, 11)
	val.Val[len(val.Val)/2] += 1e-13
	if val.Fingerprint() == fp {
		t.Error("value perturbation not reflected in fingerprint")
	}

	scaled := Poisson2D(11, 11)
	scaled.Scale(1 + 1e-15)
	if scaled.Fingerprint() == fp {
		t.Error("Scale not reflected in fingerprint")
	}

	shifted := Poisson2D(11, 11)
	shifted.AddDiag(1e-12)
	if shifted.Fingerprint() == fp {
		t.Error("AddDiag not reflected in fingerprint")
	}

	if Poisson2D(11, 12).Fingerprint() == fp {
		t.Error("different shape has equal fingerprint")
	}
	// Structure-only change: swapping a stored column index must change the
	// hash even though the multiset of bytes hashed stays similar.
	perm := Poisson2D(11, 11)
	k := perm.RowPtr[5]
	perm.ColIdx[k], perm.ColIdx[k+1] = perm.ColIdx[k+1], perm.ColIdx[k]
	if perm.Fingerprint() == fp {
		t.Error("column-index swap has equal fingerprint")
	}
}

// TestFingerprintGolden pins the hash of a hand-built matrix. The fingerprint
// is a persistence format, not just an in-process cache key: the tune store
// (internal/tune) keys decisions by its hex rendering across daemon restarts,
// so any change to the hashing scheme — field order, the dimension prefix,
// the FNV parameters — silently orphans every stored decision. Such a change
// must fail here and ship with a store schema-version bump.
func TestFingerprintGolden(t *testing.T) {
	a := &CSR{
		N:      3,
		RowPtr: []int{0, 2, 4, 6},
		ColIdx: []int{0, 1, 0, 1, 1, 2},
		Val:    []float64{4, -1, -1, 4, -1, 4},
	}
	const golden = uint64(0x7b3ee5795798a6c8)
	if fp := a.Fingerprint(); fp != golden {
		t.Errorf("fingerprint = %#016x, want pinned %#016x (hash scheme changed — bump tune.StoreVersion)", fp, golden)
	}
}

// TestFingerprintDimensionPrefix: the dimension is hashed before the array
// streams, so two matrices whose stored arrays are byte-identical but claim
// different dimensions must not collide (the prefix disambiguates field
// boundaries in the flat hash stream).
func TestFingerprintDimensionPrefix(t *testing.T) {
	rowPtr := []int{0, 2, 4, 6}
	colIdx := []int{0, 1, 0, 1, 1, 2}
	val := []float64{4, -1, -1, 4, -1, 4}
	a := &CSR{N: 3, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	b := &CSR{N: 4, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("dimension not reflected in fingerprint: identical arrays with different N collide")
	}
}

// TestFingerprintCollisionsAcrossGenerators is the collision sanity check on
// the generator families: matrices of different family, size or difficulty
// must all hash differently.
func TestFingerprintCollisionsAcrossGenerators(t *testing.T) {
	mats := []*CSR{
		Poisson1D(300),
		Poisson2D(16, 16),
		Poisson2D(16, 17),
		Poisson3D(7, 7, 7),
		Poisson3D27(7, 7, 7),
		VarCoeff2D(16, 16, 1.0, 1),
		VarCoeff2D(16, 16, 1.0, 2),
		VarCoeff2D(16, 16, 2.0, 1),
		VarCoeff3D(7, 7, 7, 1.0, 1),
		Anisotropic2D(16, 16, 0.01),
		CircuitLaplacian(16, 16, 12, 0.01, 3),
		CircuitLaplacian(16, 16, 12, 0.01, 4),
	}
	seen := map[uint64]int{}
	for i, m := range mats {
		fp := m.Fingerprint()
		if j, dup := seen[fp]; dup {
			t.Fatalf("matrices %d and %d collide on fingerprint %#x", i, j, fp)
		}
		seen[fp] = i
	}
}
