// Package perfmodel encodes the paper's Table 1: the closed-form
// computational cost per s steps of each algorithm — matrix-vector products
// plus preconditioner applications, local reduction FLOPs, and vector/matrix
// column FLOPs (per system matrix row) — and derives modeled per-iteration
// times from a dist.Cluster for speedup prediction.
package perfmodel

import (
	"fmt"

	"spcg/internal/dist"
)

// Algorithm enumerates the solvers of Table 1.
type Algorithm string

// The five algorithms compared in the paper's Table 1.
const (
	PCG     Algorithm = "PCG"
	SPCGMon Algorithm = "sPCGmon"
	SPCG    Algorithm = "sPCG"
	CAPCG   Algorithm = "CA-PCG"
	CAPCG3  Algorithm = "CA-PCG3"
)

// Algorithms lists Table 1's rows in paper order.
func Algorithms() []Algorithm { return []Algorithm{PCG, SPCGMon, SPCG, CAPCG, CAPCG3} }

// ByName maps a lowercase serving method name ("pcg", "spcg", "spcgmon",
// "capcg", "capcg3") to its Table 1 algorithm. Methods without a Table 1 row
// (adaptive, pipelined, pcg3) report ok=false.
func ByName(name string) (Algorithm, bool) {
	switch name {
	case "pcg":
		return PCG, true
	case "spcgmon":
		return SPCGMon, true
	case "spcg":
		return SPCG, true
	case "capcg":
		return CAPCG, true
	case "capcg3":
		return CAPCG3, true
	default:
		return "", false
	}
}

// Cost is one row of Table 1, all per s steps. FLOP columns are per system
// matrix row (i.e. total FLOPs divided by n). A value of −1 marks the
// paper's "−" (not applicable: PCG and sPCGmon support only the monomial
// column).
type Cost struct {
	Alg Algorithm
	S   int
	// MVAndPrec is the number of matrix-vector products (= preconditioner
	// applications) per s steps.
	MVAndPrec int
	// LocalReductions is the FLOPs/n spent producing reduction operands.
	LocalReductions float64
	// VectorOpsMonomial is the FLOPs/n of vector/matrix-column work with
	// the monomial basis.
	VectorOpsMonomial float64
	// VectorOpsArbitraryExtra is the additional FLOPs/n for an arbitrary
	// basis (−1 when the algorithm cannot use one).
	VectorOpsArbitraryExtra float64
	// TotalMonomial and TotalArbitrary are the "Total remaining FLOPs/n"
	// columns (−1 when not applicable).
	TotalMonomial  float64
	TotalArbitrary float64
}

// Table1 returns the paper's Table 1 row for the algorithm at block size s.
// PCG's row is normalized per s steps like the others.
func Table1(alg Algorithm, s int) (Cost, error) {
	if s < 1 {
		return Cost{}, fmt.Errorf("perfmodel: s must be ≥ 1, got %d", s)
	}
	fs := float64(s)
	c := Cost{Alg: alg, S: s}
	switch alg {
	case PCG:
		c.MVAndPrec = s
		c.LocalReductions = 2 * fs
		c.VectorOpsMonomial = 6 * fs
		c.VectorOpsArbitraryExtra = -1
		c.TotalMonomial = 8 * fs
		c.TotalArbitrary = -1
	case SPCGMon:
		c.MVAndPrec = s
		c.LocalReductions = 2 * fs
		c.VectorOpsMonomial = 4*fs*fs + 4*fs
		c.VectorOpsArbitraryExtra = -1
		c.TotalMonomial = 4*fs*fs + 6*fs
		c.TotalArbitrary = -1
	case SPCG:
		c.MVAndPrec = s
		c.LocalReductions = 2 * fs * (fs + 1)
		c.VectorOpsMonomial = 4*fs*fs + 4*fs
		c.VectorOpsArbitraryExtra = 10*fs - 4
		c.TotalMonomial = 6*fs*fs + 6*fs
		c.TotalArbitrary = 6*fs*fs + 16*fs - 4
	case CAPCG:
		c.MVAndPrec = 2*s - 1
		c.LocalReductions = (2*fs + 1) * (2*fs + 1)
		c.VectorOpsMonomial = 20*fs + 6
		c.VectorOpsArbitraryExtra = 10*fs - 9
		c.TotalMonomial = 4*fs*fs + 24*fs + 7
		c.TotalArbitrary = 4*fs*fs + 34*fs - 2
	case CAPCG3:
		c.MVAndPrec = s
		c.LocalReductions = (2*fs + 1) * (2*fs + 1)
		c.VectorOpsMonomial = 8*fs*fs + 17*fs
		c.VectorOpsArbitraryExtra = 5*fs - 2
		c.TotalMonomial = 12*fs*fs + 21*fs + 1
		c.TotalArbitrary = 12*fs*fs + 26*fs - 1
	default:
		return Cost{}, fmt.Errorf("perfmodel: unknown algorithm %q", alg)
	}
	return c, nil
}

// GlobalReductionsPerSSteps returns the number of global reduction
// operations each algorithm performs per s steps: the paper's headline
// 2s-to-1 ratio.
func GlobalReductionsPerSSteps(alg Algorithm, s int) int {
	if alg == PCG {
		return 2 * s
	}
	return 1
}

// ReductionPayload returns the number of float64 values in the algorithm's
// global reduction(s) per s steps.
func ReductionPayload(alg Algorithm, s int) int {
	switch alg {
	case PCG:
		return 2 * s
	case SPCGMon:
		return 2 * s
	case SPCG:
		return 2 * s * (s + 1)
	case CAPCG, CAPCG3:
		return (2*s + 1) * (2*s + 1)
	default:
		return 0
	}
}

// Prediction holds the modeled per-s-steps time split of one algorithm on
// one cluster.
type Prediction struct {
	Cost
	// MVTime, PrecTime, LocalTime, ReduceTime, HaloTime are modeled seconds
	// per s steps; Total is their sum.
	MVTime, PrecTime, LocalTime, ReduceTime float64
	Total                                   float64
}

// Predict models the per-s-steps time of an algorithm on a cluster, given
// the preconditioner's per-application global FLOPs and halo count, using
// Table 1's operation counts and the cluster's roofline/collective models.
// Arbitrary-basis vector costs are used when arbitrary is true and the
// algorithm supports it.
func Predict(alg Algorithm, s int, cl *dist.Cluster, precFlops float64, precHalos int, arbitrary bool) (Prediction, error) {
	c, err := Table1(alg, s)
	if err != nil {
		return Prediction{}, err
	}
	p := Prediction{Cost: c}
	nMV := float64(c.MVAndPrec)
	// SpMV: roofline on the most loaded rank + halo.
	spmv := cl.Roofline(2*float64(cl.MaxNNZ), 12*float64(cl.MaxNNZ)+16*float64(cl.MaxRows)) + cl.HaloTime()
	p.MVTime = nMV * spmv
	prec := cl.Roofline(precFlops*cl.MaxNNZShare(), 1.5*precFlops*cl.MaxNNZShare()) + float64(precHalos)*cl.HaloTime()
	p.PrecTime = nMV * prec

	vecFlops := c.VectorOpsMonomial
	if arbitrary && c.VectorOpsArbitraryExtra >= 0 {
		vecFlops += c.VectorOpsArbitraryExtra
	}
	n := float64(cl.N)
	share := cl.MaxRowShare()
	// BLAS1-dominated algorithms stream ~12 bytes per flop; blocked ones ~4.
	bytesPerFlop := 4.0
	if alg == PCG || alg == CAPCG3 {
		bytesPerFlop = 12
	}
	p.LocalTime = cl.Roofline(vecFlops*n*share, vecFlops*n*share*bytesPerFlop)
	p.LocalTime += cl.Roofline(c.LocalReductions*n*share, c.LocalReductions*n*share*8)

	reductions := GlobalReductionsPerSSteps(alg, s)
	payload := ReductionPayload(alg, s)
	p.ReduceTime = float64(reductions) * cl.AllreduceTime(payload/reductions)

	p.Total = p.MVTime + p.PrecTime + p.LocalTime + p.ReduceTime
	return p, nil
}
