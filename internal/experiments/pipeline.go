package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/solver"
	"spcg/internal/sparse"
)

// PipelineResult holds the s-step vs pipelined comparison that the paper
// defers to future work (§1: "we leave the comparison of s-step methods and
// state-of-the-art pipelined methods for future work").
type PipelineResult struct {
	GridDim    int
	NodeCounts []int
	// Speedup[solver][i] over 1-node PCG, in solver order below.
	Solvers []string
	Speedup [][]float64
	// Iterations per solver (node-count independent).
	Iterations []int
}

// RunPipeline runs the future-work experiment: standard PCG vs pipelined PCG
// (Ghysels–Vanroose) vs sPCG (s=10, Chebyshev basis) on the Figure 1 problem
// and machine model.
func RunPipeline(cfg Config, dim, maxNodes int) (*PipelineResult, error) {
	cfg = cfg.withDefaults()
	if dim <= 0 {
		dim = 64
	}
	if maxNodes <= 0 {
		maxNodes = 128
	}
	a := sparse.Poisson3D(dim, dim, dim)
	st, err := newSetupRandomRHS(a, 31337, "jacobi", cfg.PrecondDegree)
	if err != nil {
		return nil, err
	}
	var nodeCounts []int
	for nd := 1; nd <= maxNodes; nd *= 2 {
		if nd*cfg.Machine.RanksPerNode > a.Dim() {
			break
		}
		nodeCounts = append(nodeCounts, nd)
	}
	if len(nodeCounts) == 0 {
		return nil, fmt.Errorf("experiments: grid %d³ too small for one node of %d ranks", dim, cfg.Machine.RanksPerNode)
	}
	clusters := make([]*dist.Cluster, len(nodeCounts))
	for i, nd := range nodeCounts {
		cl, err := dist.NewCluster(cfg.Machine, nd, a)
		if err != nil {
			return nil, err
		}
		clusters[i] = cl
	}

	res := &PipelineResult{GridDim: dim, NodeCounts: nodeCounts,
		Solvers: []string{"PCG", "PipePCG", "sPCG(s=10)"}}
	runs := []solverFn{solver.PCG, solver.PipelinedPCG, solver.SPCG}
	var ref float64
	for si, run := range runs {
		opts := solver.Options{
			S: 10, Basis: basis.Chebyshev, Tol: cfg.Tol,
			MaxIterations: cfg.MaxIterations, Criterion: solver.RecursiveResidualMNorm,
			Spectrum: st.spectrum,
		}
		tr := dist.NewRecordingTracker(clusters[0])
		opts.Tracker = tr
		_, stats, err := run(st.a, st.m, st.b, opts)
		if err != nil {
			return nil, err
		}
		if !stats.Converged {
			return nil, fmt.Errorf("experiments: %s did not converge (%v)", res.Solvers[si], stats.Breakdown)
		}
		res.Iterations = append(res.Iterations, stats.Iterations)
		times := make([]float64, len(clusters))
		for i, cl := range clusters {
			times[i] = tr.ReplayOn(cl)
		}
		if si == 0 {
			ref = times[0]
		}
		speed := make([]float64, len(times))
		for i, t := range times {
			speed[i] = ref / t
		}
		res.Speedup = append(res.Speedup, speed)
	}
	return res, nil
}

// RenderPipeline writes the comparison table.
func RenderPipeline(w io.Writer, r *PipelineResult) {
	fmt.Fprintf(w, "Future-work comparison (paper §1): s-step vs pipelined PCG, 7-pt 3D Poisson %d³\n", r.GridDim)
	fmt.Fprint(w, "iterations:")
	for i, s := range r.Solvers {
		fmt.Fprintf(w, " %s=%d", s, r.Iterations[i])
	}
	fmt.Fprintln(w)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "nodes")
	for _, s := range r.Solvers {
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprintln(tw)
	for i, nd := range r.NodeCounts {
		fmt.Fprintf(tw, "%d", nd)
		for si := range r.Solvers {
			fmt.Fprintf(tw, "\t%.2f", r.Speedup[si][i])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "(speedup over 1-node PCG; pipelined PCG hides one collective per")
	fmt.Fprintln(w, " iteration behind overlapped work, sPCG amortizes one over s steps)")
}
