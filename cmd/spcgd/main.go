// Command spcgd serves the solver stack over HTTP (see internal/service):
//
//	spcgd [-addr :8097] [-workers N] [-queue 64] [-batch-window 2ms]
//	      [-batch-max 8] [-cache-size 32] [-scale 100] [-timeout 120s]
//	      [-pprof 127.0.0.1:6060]
//
// Endpoints: POST /solve, GET /jobs/{id}, POST /jobs/{id}/cancel,
// GET /matrices, GET /metrics (Prometheus text; ?format=json for the
// structured view), GET /healthz. SIGINT/SIGTERM drain the queue before
// exiting. -pprof serves net/http/pprof profiling endpoints on a separate
// listener (off by default; bind it to loopback).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux, served only when -pprof is set
	"os"
	"os/signal"
	"syscall"
	"time"

	"spcg/internal/service"
)

func main() {
	addr := flag.String("addr", ":8097", "listen address")
	workers := flag.Int("workers", 0, "solver pool size (0 = NumCPU, max 8)")
	queue := flag.Int("queue", 64, "max outstanding jobs before rejection")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "coalescing window for same-matrix PCG requests")
	batchMax := flag.Int("batch-max", 8, "flush a batch at this many requests (1 disables batching)")
	cacheSize := flag.Int("cache-size", 32, "setup-cache entries (matrix × preconditioner)")
	scale := flag.Int("scale", 100, "divide suite matrix sizes by this factor")
	timeout := flag.Duration("timeout", 120*time.Second, "default per-job deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for queued work at shutdown")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof on this address (empty = disabled)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "spcgd: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	srv := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		BatchWindow:    *batchWindow,
		BatchMax:       *batchMax,
		CacheSize:      *cacheSize,
		Scale:          *scale,
		DefaultTimeout: *timeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries only the pprof registrations (the
			// service handler has its own mux), so this exposes nothing else.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("spcgd: pprof listener: %v", err)
			}
		}()
		log.Printf("spcgd: pprof on http://%s/debug/pprof/", *pprofAddr)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("spcgd listening on %s (workers=%d queue=%d batch-window=%v)",
		*addr, *workers, *queue, *batchWindow)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("spcgd: %v: draining (up to %v)...", s, *drainTimeout)
	case err := <-errCh:
		log.Fatalf("spcgd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("spcgd: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("spcgd: http shutdown: %v", err)
	}
	log.Printf("spcgd: bye")
}
