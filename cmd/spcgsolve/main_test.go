package main

import (
	"os"
	"path/filepath"
	"testing"

	"spcg/internal/sparse"
)

func TestBuildMatrixGenerators(t *testing.T) {
	for _, gen := range []string{"poisson1d", "poisson2d", "poisson3d", "varcoeff2d", "varcoeff3d", "circuit"} {
		a, err := buildMatrix(gen, 6, 2, "")
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if a.Dim() < 6 {
			t.Fatalf("%s: dim %d", gen, a.Dim())
		}
		if !a.IsSymmetric(1e-10) {
			t.Fatalf("%s: not symmetric", gen)
		}
	}
	if _, err := buildMatrix("nope", 6, 2, ""); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

func TestBuildMatrixFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mtx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.WriteMatrixMarket(f, sparse.Poisson1D(8)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	a, err := buildMatrix("ignored", 0, 0, path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dim() != 8 {
		t.Fatalf("dim = %d", a.Dim())
	}
	if _, err := buildMatrix("", 0, 0, filepath.Join(dir, "missing.mtx")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBuildPrec(t *testing.T) {
	a := sparse.Poisson2D(8, 8)
	for _, name := range []string{"none", "", "jacobi", "chebyshev", "blockjacobi", "ssor", "ic0"} {
		p, err := buildPrec(a, name, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dst := make([]float64, a.Dim())
		src := make([]float64, a.Dim())
		src[0] = 1
		p.Apply(dst, src)
	}
	if _, err := buildPrec(a, "nope", 3); err == nil {
		t.Fatal("unknown preconditioner accepted")
	}
}
