package perfmodel

import (
	"testing"

	"spcg/internal/dist"
	"spcg/internal/sparse"
)

// TestTable1MatchesPaper pins every cell of the paper's Table 1 at s = 10.
func TestTable1MatchesPaper(t *testing.T) {
	want := map[Algorithm]Cost{
		PCG:     {MVAndPrec: 10, LocalReductions: 20, VectorOpsMonomial: 60, VectorOpsArbitraryExtra: -1, TotalMonomial: 80, TotalArbitrary: -1},
		SPCGMon: {MVAndPrec: 10, LocalReductions: 20, VectorOpsMonomial: 440, VectorOpsArbitraryExtra: -1, TotalMonomial: 460, TotalArbitrary: -1},
		SPCG:    {MVAndPrec: 10, LocalReductions: 220, VectorOpsMonomial: 440, VectorOpsArbitraryExtra: 96, TotalMonomial: 660, TotalArbitrary: 756},
		CAPCG:   {MVAndPrec: 19, LocalReductions: 441, VectorOpsMonomial: 206, VectorOpsArbitraryExtra: 91, TotalMonomial: 647, TotalArbitrary: 738},
		CAPCG3:  {MVAndPrec: 10, LocalReductions: 441, VectorOpsMonomial: 970, VectorOpsArbitraryExtra: 48, TotalMonomial: 1411, TotalArbitrary: 1459},
	}
	for alg, w := range want {
		got, err := Table1(alg, 10)
		if err != nil {
			t.Fatal(err)
		}
		if got.MVAndPrec != w.MVAndPrec {
			t.Errorf("%s MV: %d, want %d", alg, got.MVAndPrec, w.MVAndPrec)
		}
		if got.LocalReductions != w.LocalReductions {
			t.Errorf("%s reductions: %v, want %v", alg, got.LocalReductions, w.LocalReductions)
		}
		if got.VectorOpsMonomial != w.VectorOpsMonomial {
			t.Errorf("%s vec mon: %v, want %v", alg, got.VectorOpsMonomial, w.VectorOpsMonomial)
		}
		if got.VectorOpsArbitraryExtra != w.VectorOpsArbitraryExtra {
			t.Errorf("%s vec arb extra: %v, want %v", alg, got.VectorOpsArbitraryExtra, w.VectorOpsArbitraryExtra)
		}
		if got.TotalMonomial != w.TotalMonomial {
			t.Errorf("%s total mon: %v, want %v", alg, got.TotalMonomial, w.TotalMonomial)
		}
		if got.TotalArbitrary != w.TotalArbitrary {
			t.Errorf("%s total arb: %v, want %v", alg, got.TotalArbitrary, w.TotalArbitrary)
		}
	}
}

// TestTable1InternallyConsistent: the Total columns must equal
// reductions + vector ops for every algorithm and many s — the identity the
// paper's table rests on.
func TestTable1InternallyConsistent(t *testing.T) {
	for _, alg := range Algorithms() {
		for s := 1; s <= 32; s++ {
			c, err := Table1(alg, s)
			if err != nil {
				t.Fatal(err)
			}
			if got := c.LocalReductions + c.VectorOpsMonomial; got != c.TotalMonomial {
				t.Errorf("%s s=%d: reductions+vec = %v, total mon = %v", alg, s, got, c.TotalMonomial)
			}
			if c.TotalArbitrary >= 0 {
				if got := c.TotalMonomial + c.VectorOpsArbitraryExtra; got != c.TotalArbitrary {
					t.Errorf("%s s=%d: mon+extra = %v, total arb = %v", alg, s, got, c.TotalArbitrary)
				}
			}
		}
	}
}

// TestSPCGCheapestSStep verifies the paper's §4.3 claims: sPCG beats
// CA-PCG3 in local vector ops for all s, and CA-PCG has the fewest local
// vector ops for s ≥ 10 but the most MV products.
func TestSPCGCheapestSStep(t *testing.T) {
	for s := 2; s <= 32; s++ {
		spcg, _ := Table1(SPCG, s)
		ca3, _ := Table1(CAPCG3, s)
		ca, _ := Table1(CAPCG, s)
		if spcg.VectorOpsMonomial+spcg.VectorOpsArbitraryExtra >= ca3.VectorOpsMonomial+ca3.VectorOpsArbitraryExtra {
			t.Errorf("s=%d: sPCG vector ops not below CA-PCG3", s)
		}
		if ca.MVAndPrec <= spcg.MVAndPrec && s >= 2 {
			t.Errorf("s=%d: CA-PCG should need more MVs", s)
		}
		if s >= 10 {
			if ca.VectorOpsMonomial+ca.VectorOpsArbitraryExtra >= spcg.VectorOpsMonomial+spcg.VectorOpsArbitraryExtra {
				t.Errorf("s=%d: CA-PCG local vector ops should be cheapest for s ≥ 10", s)
			}
		}
	}
}

func TestGlobalReductions(t *testing.T) {
	if GlobalReductionsPerSSteps(PCG, 10) != 20 {
		t.Error("PCG should have 2s reductions")
	}
	for _, alg := range []Algorithm{SPCGMon, SPCG, CAPCG, CAPCG3} {
		if GlobalReductionsPerSSteps(alg, 10) != 1 {
			t.Errorf("%s should have 1 reduction per s steps", alg)
		}
	}
	if ReductionPayload(SPCG, 10) != 220 || ReductionPayload(CAPCG, 10) != 441 {
		t.Error("payload sizes wrong")
	}
	if ReductionPayload(Algorithm("x"), 10) != 0 {
		t.Error("unknown algorithm payload should be 0")
	}
}

func TestTable1Errors(t *testing.T) {
	if _, err := Table1(PCG, 0); err == nil {
		t.Error("s=0 accepted")
	}
	if _, err := Table1(Algorithm("nope"), 5); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestPredictShapes(t *testing.T) {
	a := sparse.Poisson3D(24, 24, 24)
	m := dist.DefaultMachine()
	m.RanksPerNode = 16

	// At high node counts, PCG's reduce time share must exceed its share at
	// low node counts — the scaling knee.
	cl1, err := dist.NewCluster(m, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	cl64, err := dist.NewCluster(m, 64, a)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Predict(PCG, 10, cl1, float64(a.Dim()), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	p64, err := Predict(PCG, 10, cl64, float64(a.Dim()), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if p1.ReduceTime/p1.Total >= p64.ReduceTime/p64.Total {
		t.Fatalf("PCG reduce share did not grow with scale: %v vs %v", p1.ReduceTime/p1.Total, p64.ReduceTime/p64.Total)
	}
	// At scale, sPCG must beat PCG; CA-PCG must pay for its extra MVs.
	sp, err := Predict(SPCG, 10, cl64, float64(a.Dim()), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := Predict(CAPCG, 10, cl64, float64(a.Dim()), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Total >= p64.Total {
		t.Fatalf("modeled sPCG (%v) not faster than PCG (%v) at 64 nodes", sp.Total, p64.Total)
	}
	if ca.MVTime <= sp.MVTime {
		t.Fatalf("CA-PCG MV time (%v) should exceed sPCG's (%v)", ca.MVTime, sp.MVTime)
	}
	if _, err := Predict(Algorithm("bad"), 10, cl1, 0, 0, false); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
