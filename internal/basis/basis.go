// Package basis defines the polynomial basis types used by the s-step
// solvers and the "change-of-basis" matrices of the paper's Eq. (9).
//
// A basis of dimension s+1 is a sequence of polynomials P₀,…,P_s with
// P₀(z) = 1 that satisfies the three-term recurrence
//
//	z·P_l(z) = γ_l·P_{l+1}(z) + θ_l·P_l(z) + μ_{l−1}·P_{l−1}(z)
//
// (Eq. (8) of the paper rearranged; our μ sign convention matches the B_i
// layout of Eq. (9) so that B_i can be read directly off the parameters).
// The basis matrices V = [P₀(AM⁻¹)w, …, P_s(AM⁻¹)w] of the Matrix Powers
// Kernel are generated column-by-column from these parameters, and
// AM⁻¹·V(:,0:s−1) = V·B_{s+1} with the tridiagonal-shaped B of Eq. (9).
//
// The paper evaluates three basis types: monomial (P_l(z) = zˡ; the only
// option for the original sPCG_mon, numerically fragile for s ≳ 5), Newton
// (shifted by Leja-ordered Ritz value estimates) and Chebyshev (scaled and
// shifted Chebyshev polynomials on an estimated spectral interval).
package basis

import (
	"fmt"
	"math"
	"sort"

	"spcg/internal/dense"
)

// Type enumerates the supported basis types.
type Type int

const (
	// Monomial is the power basis P_l(z) = zˡ.
	Monomial Type = iota
	// Newton is the (scaled) Newton basis with Leja-ordered shifts.
	Newton
	// Chebyshev is the shifted, scaled Chebyshev basis on [λmin, λmax].
	Chebyshev
)

// String returns the lower-case basis name used in CLI flags and reports.
func (t Type) String() string {
	switch t {
	case Monomial:
		return "monomial"
	case Newton:
		return "newton"
	case Chebyshev:
		return "chebyshev"
	default:
		return fmt.Sprintf("basis.Type(%d)", int(t))
	}
}

// ParseType parses a basis name as printed by String.
func ParseType(s string) (Type, error) {
	switch s {
	case "monomial":
		return Monomial, nil
	case "newton":
		return Newton, nil
	case "chebyshev":
		return Chebyshev, nil
	default:
		return 0, fmt.Errorf("basis: unknown basis type %q (want monomial, newton or chebyshev)", s)
	}
}

// Params holds the three-term recurrence parameters for generating a basis
// of length len(Theta)+1 polynomials: Theta[l], Gamma[l] for l = 0..s−1 and
// Mu[l−1] for l = 1..s−1 (Mu has length s−1; Mu[l−1] multiplies P_{l−1} in
// the recurrence for P_{l+1}).
type Params struct {
	Type  Type
	Theta []float64
	Gamma []float64
	Mu    []float64
}

// Degree returns the highest polynomial degree s the parameters support.
func (p *Params) Degree() int { return len(p.Theta) }

// Validate checks internal consistency (lengths, nonzero γ).
func (p *Params) Validate() error {
	s := len(p.Theta)
	if len(p.Gamma) != s {
		return fmt.Errorf("basis: len(Gamma)=%d, want %d", len(p.Gamma), s)
	}
	if s > 0 && len(p.Mu) != s-1 {
		return fmt.Errorf("basis: len(Mu)=%d, want %d", len(p.Mu), s-1)
	}
	for l, g := range p.Gamma {
		if g == 0 || math.IsNaN(g) || math.IsInf(g, 0) {
			return fmt.Errorf("basis: Gamma[%d]=%v is not a usable scale", l, g)
		}
	}
	return nil
}

// MonomialParams returns parameters for the monomial basis of degree s:
// θ = μ = 0, γ = 1, giving P_{l+1}(z) = z·P_l(z).
func MonomialParams(s int) *Params {
	if s < 1 {
		panic("basis: degree must be ≥ 1")
	}
	return &Params{
		Type:  Monomial,
		Theta: make([]float64, s),
		Gamma: ones(s),
		Mu:    make([]float64, max(0, s-1)),
	}
}

// NewtonParams returns parameters for the Newton basis of degree s with the
// given shifts (typically Ritz values): P_{l+1}(z) = (z − shift_l)·P_l(z)/γ_l.
// Shifts are Leja-ordered for stability and repeated cyclically if fewer than
// s are supplied. The scale γ_l = max(|λmax−shift_l|, tiny)... the classical
// choice is γ_l chosen so columns have comparable norms; we use the capacity
// estimate (λmax−λmin)/4 uniformly, which keeps the recurrence well scaled
// without per-column norm communication.
func NewtonParams(s int, shifts []float64, lambdaMin, lambdaMax float64) *Params {
	if s < 1 {
		panic("basis: degree must be ≥ 1")
	}
	if len(shifts) == 0 {
		panic("basis: NewtonParams needs at least one shift")
	}
	ordered := LejaOrder(shifts)
	theta := make([]float64, s)
	for l := range theta {
		theta[l] = ordered[l%len(ordered)]
	}
	scale := (lambdaMax - lambdaMin) / 4
	if scale <= 0 {
		scale = 1
	}
	return &Params{
		Type:  Newton,
		Theta: theta,
		Gamma: fill(s, scale),
		Mu:    make([]float64, max(0, s-1)),
	}
}

// ChebyshevParams returns parameters for the shifted, scaled Chebyshev basis
// on [lambdaMin, lambdaMax]: with c = (λmax+λmin)/2 and e = (λmax−λmin)/2,
//
//	z·P₀ = e·P₁ + c·P₀          (γ₀ = e, θ₀ = c)
//	z·P_l = (e/2)·P_{l+1} + c·P_l + (e/2)·P_{l−1}   for l ≥ 1,
//
// which are exactly the entries displayed in the paper's Eq. (9).
func ChebyshevParams(s int, lambdaMin, lambdaMax float64) *Params {
	if s < 1 {
		panic("basis: degree must be ≥ 1")
	}
	if !(lambdaMax > lambdaMin) {
		panic(fmt.Sprintf("basis: invalid Chebyshev interval [%v, %v]", lambdaMin, lambdaMax))
	}
	c := (lambdaMax + lambdaMin) / 2
	e := (lambdaMax - lambdaMin) / 2
	theta := fill(s, c)
	gamma := fill(s, e/2)
	gamma[0] = e
	mu := fill(max(0, s-1), e/2)
	return &Params{Type: Chebyshev, Theta: theta, Gamma: gamma, Mu: mu}
}

// New builds parameters of the given type and degree from a spectral
// estimate. For Newton, shifts are the provided Ritz values (falling back to
// Chebyshev points on the interval when none are available).
func New(t Type, s int, lambdaMin, lambdaMax float64, ritz []float64) (*Params, error) {
	switch t {
	case Monomial:
		return MonomialParams(s), nil
	case Newton:
		shifts := ritz
		if len(shifts) == 0 {
			shifts = ChebyshevPoints(s, lambdaMin, lambdaMax)
		}
		return NewtonParams(s, shifts, lambdaMin, lambdaMax), nil
	case Chebyshev:
		if !(lambdaMax > lambdaMin) {
			return nil, fmt.Errorf("basis: Chebyshev needs λmax > λmin, got [%v, %v]", lambdaMin, lambdaMax)
		}
		return ChebyshevParams(s, lambdaMin, lambdaMax), nil
	default:
		return nil, fmt.Errorf("basis: unknown type %v", t)
	}
}

// ChebyshevPoints returns the s Chebyshev points of the interval [lo, hi]
// (zeros of T_s mapped to the interval), a good default shift set.
func ChebyshevPoints(s int, lo, hi float64) []float64 {
	c, e := (hi+lo)/2, (hi-lo)/2
	pts := make([]float64, s)
	for k := 0; k < s; k++ {
		pts[k] = c + e*math.Cos(math.Pi*(float64(k)+0.5)/float64(s))
	}
	return pts
}

// LejaOrder returns the input points reordered by the Leja criterion: the
// first point has maximal magnitude; each subsequent point maximizes the
// product of distances to the already chosen ones. Leja ordering keeps the
// Newton basis condition number growth polynomial instead of exponential.
// The input is not modified.
func LejaOrder(pts []float64) []float64 {
	n := len(pts)
	out := make([]float64, 0, n)
	remaining := append([]float64(nil), pts...)
	sort.Float64s(remaining)
	// Start from the largest magnitude point.
	best := 0
	for i, p := range remaining {
		if math.Abs(p) > math.Abs(remaining[best]) {
			best = i
		}
	}
	out = append(out, remaining[best])
	remaining = append(remaining[:best], remaining[best+1:]...)
	for len(remaining) > 0 {
		best = 0
		bestVal := math.Inf(-1)
		for i, cand := range remaining {
			// log-product of distances for numerical robustness.
			v := 0.0
			for _, chosen := range out {
				d := math.Abs(cand - chosen)
				if d == 0 {
					v = math.Inf(-1)
					break
				}
				v += math.Log(d)
			}
			if v > bestVal {
				bestVal, best = v, i
			}
		}
		out = append(out, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return out
}

// ChangeOfBasis returns the (i)×(i−1) matrix B_i of the paper's Eq. (9):
// column l holds [μ_{l−1}; θ_l; γ_l] on rows l−1, l, l+1, so that
// AM⁻¹·V(:,0:i−2) = V·B_i for a basis matrix V with i columns.
func (p *Params) ChangeOfBasis(i int) *dense.Mat {
	if i < 2 || i-1 > p.Degree() {
		panic(fmt.Sprintf("basis: ChangeOfBasis size %d out of range for degree %d", i, p.Degree()))
	}
	b := dense.NewMat(i, i-1)
	for l := 0; l < i-1; l++ {
		if l > 0 {
			b.Set(l-1, l, p.Mu[l-1])
		}
		b.Set(l, l, p.Theta[l])
		b.Set(l+1, l, p.Gamma[l])
	}
	return b
}

// CAPCGChangeOfBasis returns the (2s+1)×(2s+1) block matrix B used by
// CA-PCG (Section 2.3): diag-like placement of B_{s+1} (acting on the
// (s+1)-column Q/P block) and B_s (acting on the s-column R/U block), with
// zero columns for the last column of each block:
//
//	B = [ B_{s+1}  0_{s+1,1}  0_{s+1,s−1}  0_{s+1,1} ]
//	    [ 0_{s,s}  0_{s,1}    B_s          0_{s,1}   ]
func (p *Params) CAPCGChangeOfBasis(s int) *dense.Mat {
	if s < 1 || s > p.Degree() {
		panic(fmt.Sprintf("basis: CAPCGChangeOfBasis s=%d out of range for degree %d", s, p.Degree()))
	}
	n := 2*s + 1
	b := dense.NewMat(n, n)
	// Top-left: B_{s+1} (s+1 rows × s cols) at rows 0..s, cols 0..s−1.
	bs1 := p.ChangeOfBasis(s + 1)
	for i := 0; i <= s; i++ {
		for j := 0; j < s; j++ {
			b.Set(i, j, bs1.At(i, j))
		}
	}
	// Column s is zero (last column of the Q block).
	if s >= 2 {
		// Bottom-right: B_s (s rows × s−1 cols) at rows s+1..2s, cols s+1..2s−1.
		bs := p.ChangeOfBasis(s)
		for i := 0; i < s; i++ {
			for j := 0; j < s-1; j++ {
				b.Set(s+1+i, s+1+j, bs.At(i, j))
			}
		}
	}
	// Column 2s is zero (last column of the R block).
	return b
}

// Eval evaluates the basis polynomials P₀..P_s at a scalar z (test and
// diagnostics helper; the solvers evaluate at matrices via the MPK).
func (p *Params) Eval(z float64, s int) []float64 {
	if s > p.Degree() {
		panic("basis: Eval degree exceeds parameters")
	}
	vals := make([]float64, s+1)
	vals[0] = 1
	if s == 0 {
		return vals
	}
	vals[1] = (z - p.Theta[0]) / p.Gamma[0]
	for l := 1; l < s; l++ {
		vals[l+1] = ((z-p.Theta[l])*vals[l] - p.Mu[l-1]*vals[l-1]) / p.Gamma[l]
	}
	return vals
}

func ones(n int) []float64 { return fill(n, 1) }

func fill(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}
