package spmd

import (
	"fmt"
	"math"

	"spcg/internal/basis"
	"spcg/internal/dense"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// SPCGJacobi solves A·x = b with the paper's sPCG executed by p real SPMD
// ranks: the matrix powers kernel runs with one halo exchange per basis
// column, the fused Gram matrices UᵀS and PᵀS are reduced in a single
// collective per outer iteration (the paper's headline property), and the
// s×s Scalar Work runs redundantly on every rank — exactly the distributed
// execution the paper's runtime analysis assumes.
//
// The Jacobi preconditioner is used (rank-local); params supplies the basis
// (degree ≥ s). The M-norm criterion matches the paper's Figure 1.
func SPCGJacobi(a *sparse.CSR, b []float64, p, s int, params *basis.Params, tol float64, maxIters int) (*Result, error) {
	n := a.Dim()
	if len(b) != n {
		return nil, fmt.Errorf("spmd: rhs length %d != %d", len(b), n)
	}
	if s < 1 {
		return nil, fmt.Errorf("spmd: s = %d < 1", s)
	}
	if params == nil || params.Degree() < s {
		return nil, fmt.Errorf("spmd: basis params missing or degree < s")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIters <= 0 {
		maxIters = 10 * n
	}
	locals, err := Distribute(a, p)
	if err != nil {
		return nil, err
	}
	for _, lm := range locals {
		for i, d := range lm.DiagLocal() {
			if d <= 0 {
				return nil, fmt.Errorf("spmd: non-positive diagonal at row %d", lm.Lo+i)
			}
		}
	}
	bMat := params.ChangeOfBasis(s + 1) // (s+1)×s

	res := &Result{X: make([]float64, n)}
	iters := make([]int, p)
	conv := make([]bool, p)
	reduces := make([]int, p)
	errs := make([]error, p)

	w := NewWorld(p)
	runErr := w.RunE(func(rk *Rank) {
		lm := locals[rk.ID]
		nl := lm.NLocal()
		invD := lm.DiagLocal()
		for i := range invD {
			invD[i] = 1 / invD[i]
		}
		applyM := func(dst, src []float64) {
			for i := range dst {
				dst[i] = invD[i] * src[i]
			}
		}

		x := make([]float64, nl)
		r := append([]float64(nil), b[lm.Lo:lm.Hi]...)
		u := make([]float64, nl)
		S := vec.NewBlock(nl, s+1)
		U := vec.NewBlock(nl, s)
		P := vec.NewBlock(nl, s)
		AP := vec.NewBlock(nl, s)
		pNew := vec.NewBlock(nl, s)
		apNew := vec.NewBlock(nl, s)
		sb := vec.NewBlock(nl, s)
		var wPrev *dense.Mat
		haveHistory := false
		rho0 := -1.0
		maxOuter := (maxIters + s - 1) / s

		for k := 0; k <= maxOuter; k++ {
			applyM(u, r)
			// Fused collective #1 of the boundary: rho (tiny; in a real run
			// it is fused with the Gram reduction of the PREVIOUS iteration;
			// here it stands alone to keep the loop readable).
			var localRho float64
			for i := range r {
				localRho += r[i] * u[i]
			}
			reduces[rk.ID]++
			rho := rk.Allreduce([]float64{localRho})[0]
			if rho < 0 || math.IsNaN(rho) {
				errs[rk.ID] = fmt.Errorf("spmd: rᵀM⁻¹r = %v", rho)
				return
			}
			if rho0 < 0 {
				rho0 = rho
			}
			if math.Sqrt(rho/rho0) <= tol {
				conv[rk.ID] = true
				break
			}
			if k == maxOuter {
				break
			}

			// Matrix powers kernel: one halo exchange per new column.
			vec.Copy(S.Col(0), r)
			vec.Copy(U.Col(0), u)
			for l := 0; l < s; l++ {
				z := make([]float64, nl)
				lm.SpMV(rk, z, U.Col(l))
				var prev []float64
				var mu float64
				if l > 0 {
					prev = S.Col(l - 1)
					mu = params.Mu[l-1]
				}
				vec.Threeterm(S.Col(l+1), z, params.Theta[l], S.Col(l), mu, prev, params.Gamma[l])
				if l+1 < s {
					applyM(U.Col(l+1), S.Col(l+1))
				}
			}

			// Fused Gram reduction: UᵀS (+ PᵀS when history exists) in ONE
			// collective — the s-step methods' single synchronization point.
			g1Local := vec.Gram(U, S)
			payload := g1Local
			if haveHistory {
				payload = append(append([]float64{}, g1Local...), vec.Gram(P, S)...)
			}
			reduces[rk.ID]++
			global := rk.Allreduce(payload)
			g1 := dense.FromRowMajor(s, s+1, global[:s*(s+1)])
			var g2 *dense.Mat
			if haveHistory {
				g2 = dense.FromRowMajor(s, s+1, global[s*(s+1):])
			}

			// Scalar Work (redundant on every rank; deterministic because
			// the reduced Grams are identical everywhere).
			mVec := make([]float64, s)
			for j := 0; j < s; j++ {
				mVec[j] = g1.At(0, j)
			}
			wMat := dense.MatMul(g1, bMat)
			var bk *dense.Mat
			if haveHistory {
				cMat := dense.MatMul(g2, bMat)
				rhs := cMat.Clone()
				rhs.Scale(-1)
				f, ferr := dense.LUFactor(wPrev)
				if ferr != nil {
					errs[rk.ID] = ferr
					return
				}
				if serr := f.SolveMat(rhs); serr != nil {
					errs[rk.ID] = serr
					return
				}
				bk = rhs
				wMat.AddMat(1, dense.MatMul(bk.T(), cMat))
			}
			wMat.Symmetrize()
			aVec, aerr := dense.SolveSPD(wMat, mVec)
			if aerr != nil {
				errs[rk.ID] = aerr
				return
			}

			// Local block updates (BLAS3-style, no communication).
			if !haveHistory {
				P.CopyFrom(U)
				vec.Mul(AP, S, bMat.Data)
			} else {
				vec.AddMul(pNew, U, P, bk.Data)
				P, pNew = pNew, P
				vec.Mul(sb, S, bMat.Data)
				vec.AddMul(apNew, sb, AP, bk.Data)
				AP, apNew = apNew, AP
			}
			P.MulVecAdd(x, aVec)
			AP.MulVecSub(r, aVec)
			wPrev = wMat
			haveHistory = true
			iters[rk.ID] = (k + 1) * s
		}
		copy(res.X[lm.Lo:lm.Hi], x)
	})
	if runErr != nil {
		return nil, runErr
	}

	for r := 0; r < p; r++ {
		if errs[r] != nil {
			return nil, fmt.Errorf("spmd: rank %d: %w", r, errs[r])
		}
	}
	res.Iterations = iters[0]
	res.Converged = conv[0]
	res.Allreduces = reduces[0]
	for r := 1; r < p; r++ {
		if iters[r] != iters[0] || conv[r] != conv[0] {
			return nil, fmt.Errorf("spmd: ranks diverged in control flow")
		}
	}
	return res, nil
}
