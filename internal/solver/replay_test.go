package solver

import (
	"testing"

	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

// TestReplayOnSameClusterReproducesTime is the replay property: for every
// solver family, a recording tracker replayed on its own cluster must
// reproduce the charged time bit-for-bit — the event stream carries the full
// behavior, the cluster only prices it. Checked both fault-free and with a
// fault-model machine (retries are recorded per event and re-priced, so the
// property must survive them).
func TestReplayOnSameClusterReproducesTime(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	b, _ := testProblem(a)
	m, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	families := []struct {
		name string
		run  solverFunc
	}{
		{"pcg", PCG}, {"pcg3", PCG3}, {"pipelined", PipelinedPCG},
		{"spcg", SPCG}, {"spcgmon", SPCGMon},
		{"capcg", CAPCG}, {"capcg3", CAPCG3},
		{"adaptive", SPCGAdaptive},
	}
	machines := []struct {
		name string
		m    dist.Machine
	}{
		{"fault-free", dist.DefaultMachine()},
		{"faulty", func() dist.Machine {
			mm := dist.DefaultMachine()
			mm.Faults = dist.FaultModel{CommFailProb: 0.15, StragglerFactor: 1.3, Seed: 5}
			return mm
		}()},
	}
	for _, mc := range machines {
		cl, err := dist.NewCluster(mc.m, 1, a)
		if err != nil {
			t.Fatal(err)
		}
		for _, fam := range families {
			tr := dist.NewRecordingTracker(cl)
			opts := Options{
				S: 4, Basis: basis.Chebyshev, Tol: 1e-8,
				Criterion: RecursiveResidualMNorm, Tracker: tr,
			}
			_, stats, err := fam.run(a, m, b, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", mc.name, fam.name, err)
			}
			if !stats.Converged {
				t.Fatalf("%s/%s did not converge: %+v", mc.name, fam.name, stats.Breakdown)
			}
			if tr.Time <= 0 {
				t.Fatalf("%s/%s charged no time", mc.name, fam.name)
			}
			if replayed := tr.ReplayOn(cl); replayed != tr.Time {
				t.Fatalf("%s/%s: ReplayOn(same cluster) = %v, Tracker.Time = %v (diff %v)",
					mc.name, fam.name, replayed, tr.Time, replayed-tr.Time)
			}
			if mc.name == "faulty" && tr.Counts.RetriedMessages == 0 {
				t.Fatalf("%s/%s: fault machine drew no retries", mc.name, fam.name)
			}
		}
	}
}
