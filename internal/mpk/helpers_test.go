package mpk

import "spcg/internal/dense"

func matFromSlice(n int, data []float64) *dense.Mat {
	return dense.FromRowMajor(n, n, data)
}

func condSPD(m *dense.Mat) float64 {
	return dense.Cond2SPD(m)
}
