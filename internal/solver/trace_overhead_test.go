package solver

import (
	"testing"

	"spcg/internal/sparse"
	"spcg/internal/vec"
)

var overheadSink float64

// TestDisabledTracerOverhead guards the pay-for-use contract on the hot
// path: with Options.Trace nil, the instrumented ctx dot/axpy at n = 2²⁰
// must cost essentially the raw kernel — the nil checks in obs.Begin/End
// (and the nil tracker) may not add more than noise. The 1.5× bound is
// deliberately loose for shared CI machines; a forgotten always-on
// time.Now() pair costs far more than that on a memory-bound kernel.
func TestDisabledTracerOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	n := 1 << 20
	a := sparse.Poisson1D(n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) + 0.5
		y[i] = float64(i%5) - 1.5
	}
	opts := Options{}
	c, err := newCtx(a, nil, &opts, &Stats{})
	if err != nil {
		t.Fatal(err)
	}
	if c.obs != nil {
		t.Fatal("ctx has a tracer without Options.Trace")
	}

	rawDot := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			overheadSink = vec.ParDot(x, y)
		}
	})
	instrDot := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			overheadSink = c.localDot(x, y)
		}
	})
	rawAxpy := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vec.Axpy(1e-9, x, y)
		}
	})
	instrAxpy := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.axpy(1e-9, x, y)
		}
	})

	check := func(name string, raw, instr testing.BenchmarkResult) {
		r, in := raw.NsPerOp(), instr.NsPerOp()
		t.Logf("%s: raw %d ns/op, instrumented (nil tracer) %d ns/op", name, r, in)
		if in > r+r/2 {
			t.Errorf("%s: nil-tracer path %d ns/op vs raw %d ns/op (> 1.5×)", name, in, r)
		}
	}
	check("dot n=2^20", rawDot, instrDot)
	check("axpy n=2^20", rawAxpy, instrAxpy)
}
