package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spcg/internal/vec"
)

func denseMulVec(d []float64, n int, x []float64) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += d[i*n+j] * x[j]
		}
		y[i] = s
	}
	return y
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestPoisson1DStructure(t *testing.T) {
	a := Poisson1D(5)
	if a.N != 5 || a.NNZ() != 13 {
		t.Fatalf("n=%d nnz=%d", a.N, a.NNZ())
	}
	if a.At(0, 0) != 2 || a.At(0, 1) != -1 || a.At(0, 2) != 0 || a.At(2, 1) != -1 {
		t.Fatal("wrong entries")
	}
	if !a.IsSymmetric(0) {
		t.Fatal("not symmetric")
	}
}

func TestPoisson1DEigenBounds(t *testing.T) {
	a := Poisson1D(50)
	lo, hi := a.Gershgorin()
	if lo > 0 || hi < 4 {
		t.Fatalf("Gershgorin [%v,%v], want [≤0, ≥4]", lo, hi)
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, a := range []*CSR{Poisson1D(17), Poisson2D(5, 7), Poisson3D(3, 4, 5), Anisotropic2D(6, 6, 0.01), Poisson3D27(3, 3, 3)} {
		d := a.Dense()
		x := randVec(rng, a.N)
		want := denseMulVec(d, a.N, x)
		got := make([]float64, a.N)
		a.MulVec(got, x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d row %d: %v vs %v", a.N, i, got[i], want[i])
			}
		}
	}
}

func TestMulVecRowsMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Poisson2D(8, 9)
	x := randVec(rng, a.N)
	full := make([]float64, a.N)
	a.MulVec(full, x)
	part := make([]float64, a.N)
	a.MulVecRows(part, x, 10, 30)
	for i := 10; i < 30; i++ {
		if part[i] != full[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestMulVecParMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Poisson3D(20, 20, 20) // nnz ≈ 54k > threshold
	x := randVec(rng, a.N)
	want := make([]float64, a.N)
	a.MulVec(want, x)
	got := make([]float64, a.N)
	a.MulVecPar(got, x)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: par %v vs seq %v", i, got[i], want[i])
		}
	}
}

func TestNNZBalancedRanges(t *testing.T) {
	a := Poisson2D(30, 30)
	for _, p := range []int{1, 2, 7, 16} {
		b := NNZBalancedRanges(a, p)
		if len(b) != p+1 || b[0] != 0 || b[p] != a.N {
			t.Fatalf("p=%d bounds=%v", p, b)
		}
		for w := 0; w < p; w++ {
			if b[w] > b[w+1] {
				t.Fatalf("p=%d non-monotone bounds %v", p, b)
			}
		}
		// Balance: each range within 2× of average nnz (for this regular matrix).
		avg := float64(a.NNZ()) / float64(p)
		for w := 0; w < p; w++ {
			nnz := a.RowPtr[b[w+1]] - a.RowPtr[b[w]]
			if float64(nnz) > 2*avg+float64(a.MaxRowNNZ()) {
				t.Fatalf("p=%d range %d holds %d nnz, avg %v", p, w, nnz, avg)
			}
		}
	}
}

func TestDiag(t *testing.T) {
	a := Poisson2D(4, 4)
	d := a.Diag()
	for i, v := range d {
		if v != 4 {
			t.Fatalf("diag[%d] = %v", i, v)
		}
	}
}

func TestAddDiagScale(t *testing.T) {
	a := Poisson1D(4)
	a.AddDiag(1)
	if a.At(0, 0) != 3 {
		t.Fatal("AddDiag")
	}
	a.Scale(2)
	if a.At(0, 0) != 6 || a.At(0, 1) != -2 {
		t.Fatal("Scale")
	}
}

func TestMulBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Poisson2D(5, 5)
	x := vec.NewBlock(a.N, 3)
	for j := 0; j < 3; j++ {
		copy(x.Col(j), randVec(rng, a.N))
	}
	dst := vec.NewBlock(a.N, 3)
	a.MulBlock(dst, x)
	for j := 0; j < 3; j++ {
		want := make([]float64, a.N)
		a.MulVec(want, x.Col(j))
		for i := range want {
			if dst.Col(j)[i] != want[i] {
				t.Fatalf("col %d row %d", j, i)
			}
		}
	}
}

func TestCOOBuildsSortedDedupedCSR(t *testing.T) {
	coo := NewCOO(3)
	coo.Add(2, 1, 5)
	coo.Add(0, 0, 1)
	coo.Add(2, 1, 5) // duplicate: summed
	coo.Add(2, 0, 3)
	coo.AddSym(0, 2, 7)
	a := coo.ToCSR()
	if a.At(2, 1) != 10 {
		t.Fatalf("duplicate not summed: %v", a.At(2, 1))
	}
	if a.At(0, 2) != 7 || a.At(2, 0) != 10 { // 3 + 7 from AddSym
		t.Fatalf("AddSym wrong: %v %v", a.At(0, 2), a.At(2, 0))
	}
	// Columns sorted per row.
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i] + 1; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k-1] >= a.ColIdx[k] {
				t.Fatal("columns not sorted")
			}
		}
	}
}

func TestGeneratorsSymmetricSPDish(t *testing.T) {
	gens := map[string]*CSR{
		"poisson2d":  Poisson2D(7, 6),
		"poisson3d":  Poisson3D(4, 3, 5),
		"poisson27":  Poisson3D27(4, 4, 4),
		"aniso":      Anisotropic2D(8, 8, 1e-2),
		"varcoeff":   VarCoeff2D(8, 8, 3, 42),
		"graphlap":   RandomGraphLaplacian(100, 3, 0.1, 7),
		"randomspec": SPDWithSpectrum(GeometricSpectrum(40, 1e-3, 1e5), 120, 11),
	}
	for name, a := range gens {
		if !a.IsSymmetric(1e-12) {
			t.Errorf("%s: not symmetric", name)
		}
		lo, _ := a.Gershgorin()
		if name != "randomspec" && lo < -1e-12 {
			t.Errorf("%s: Gershgorin lower bound %v < 0 (not diagonally dominant)", name, lo)
		}
		// All rows must have a stored diagonal.
		d := a.Diag()
		for i, v := range d {
			if v <= 0 {
				t.Errorf("%s: diag[%d] = %v ≤ 0", name, i, v)
				break
			}
		}
	}
}

func TestSPDWithSpectrumPreservesEigenvalues(t *testing.T) {
	// Trace and Frobenius norm are rotation invariants.
	spec := GeometricSpectrum(30, 0.5, 1e4)
	a := SPDWithSpectrum(spec, 90, 3)
	var trace, wantTrace, fro2, wantFro2 float64
	for _, v := range spec {
		wantTrace += v
		wantFro2 += v * v
	}
	for i := 0; i < a.N; i++ {
		trace += a.At(i, i)
	}
	for _, v := range a.Val {
		fro2 += v * v
	}
	if math.Abs(trace-wantTrace) > 1e-8*wantTrace {
		t.Fatalf("trace %v, want %v", trace, wantTrace)
	}
	if math.Abs(fro2-wantFro2) > 1e-8*wantFro2 {
		t.Fatalf("fro² %v, want %v", fro2, wantFro2)
	}
}

func TestGeometricSpectrum(t *testing.T) {
	s := GeometricSpectrum(5, 2, 16)
	if s[0] != 2 || math.Abs(s[4]-32) > 1e-12 {
		t.Fatalf("spectrum = %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatal("not increasing")
		}
	}
}

func TestVarCoeffDeterministic(t *testing.T) {
	a := VarCoeff2D(6, 6, 4, 99)
	b := VarCoeff2D(6, 6, 4, 99)
	if a.NNZ() != b.NNZ() {
		t.Fatal("nondeterministic structure")
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			t.Fatal("nondeterministic values")
		}
	}
	c := VarCoeff2D(6, 6, 4, 100)
	same := true
	for i := range a.Val {
		if a.Val[i] != c.Val[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed has no effect")
	}
}

// Property: SpMV is linear: A(x+αy) == Ax + αAy.
func TestMulVecLinearityQuick(t *testing.T) {
	a := Poisson2D(6, 5)
	f := func(seed int64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		x, y := randVec(rng, a.N), randVec(rng, a.N)
		xy := make([]float64, a.N)
		vec.XpayInto(xy, x, alpha, y)
		lhs := make([]float64, a.N)
		a.MulVec(lhs, xy)
		ax := make([]float64, a.N)
		ay := make([]float64, a.N)
		a.MulVec(ax, x)
		a.MulVec(ay, y)
		for i := range lhs {
			want := ax[i] + alpha*ay[i]
			if math.Abs(lhs[i]-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: symmetry of generated matrices implies xᵀAy == yᵀAx.
func TestSymmetryBilinearQuick(t *testing.T) {
	a := VarCoeff2D(7, 7, 2, 5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, y := randVec(rng, a.N), randVec(rng, a.N)
		ax := make([]float64, a.N)
		ay := make([]float64, a.N)
		a.MulVec(ax, x)
		a.MulVec(ay, y)
		l, r := vec.Dot(y, ax), vec.Dot(x, ay)
		return math.Abs(l-r) < 1e-9*(1+math.Abs(l))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
