package gateway

import (
	"sync"
	"time"

	"spcg/internal/obs"
)

// latency bucket bounds in seconds; gateway hops add to spcgd solve times,
// so the grid matches the daemon's.
var histBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// metrics is the gateway's typed metric surface (spcggw_*), on the same
// obs.Registry machinery as the daemon so one scrape format serves the whole
// fleet. Per-backend families are labeled with the backend's stable name.
type metrics struct {
	reg *obs.Registry

	requests   *obs.Counter
	affinity   *obs.Counter
	misses     *obs.Counter
	spills     *obs.Counter
	failovers  *obs.Counter
	retries    *obs.Counter
	shed       *obs.Counter
	unroutable *obs.Counter
	dedupIDs   *obs.Counter

	probeFailures *obs.Counter
	panics        *obs.Counter

	alive     *obs.Gauge
	dead      *obs.Gauge
	ringSize  *obs.Gauge
	jobRoutes *obs.Gauge

	mu         sync.Mutex
	backendReq map[string]*obs.Counter
	backendErr map[string]*obs.Counter
	backendLat map[string]*obs.Histogram
	ringShare  map[string]*obs.Gauge
}

func newMetrics(start time.Time) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:        reg,
		backendReq: map[string]*obs.Counter{},
		backendErr: map[string]*obs.Counter{},
		backendLat: map[string]*obs.Histogram{},
		ringShare:  map[string]*obs.Gauge{},
	}
	m.requests = reg.Counter("spcggw_requests_total", "Client requests accepted for routing (all proxied routes).")
	m.affinity = reg.Counter("spcggw_affinity_hits_total", "Solve-path requests served by their ring-primary (affinity) backend.")
	m.misses = reg.Counter("spcggw_affinity_misses_total", "Solve-path requests served by a non-primary backend (spill or failover).")
	m.spills = reg.Counter("spcggw_spills_total", "Requests moved to the next ring replica because the primary was saturated (429).")
	m.failovers = reg.Counter("spcggw_failovers_total", "Requests retried on a different backend after a transport failure or retryable 5xx.")
	m.retries = reg.Counter("spcggw_retries_total", "Extra backend attempts beyond each request's first (spills + failovers + backoff retries).")
	m.shed = reg.Counter("spcggw_shed_total", "429 responses propagated to clients after the spill budget was exhausted.")
	m.unroutable = reg.Counter("spcggw_unroutable_total", "Requests refused with 503 because no routable backend existed.")
	m.dedupIDs = reg.Counter("spcggw_request_ids_assigned_total", "Solve requests that arrived without a request_id and were assigned one for idempotent retry.")
	m.probeFailures = reg.Counter("spcggw_probe_failures_total", "Health probes that failed (transport error or unexpected status).")
	m.panics = reg.Counter("spcggw_panics_total", "Panics recovered in gateway background goroutines (probe loop, probe fan-out).")
	m.alive = reg.Gauge("spcggw_backends_alive", "Backends currently routable (alive or degraded).")
	m.dead = reg.Gauge("spcggw_backends_dead", "Backends currently off the ring (dead or draining).")
	m.ringSize = reg.Gauge("spcggw_ring_backends", "Backends currently holding arcs on the hash ring.")
	m.jobRoutes = reg.Gauge("spcggw_job_routes", "Async job-id routes currently remembered for /jobs polling.")
	reg.GaugeFunc("spcggw_uptime_seconds", "Seconds since the gateway started.",
		func() float64 { return time.Since(start).Seconds() })
	return m
}

// forBackend returns the labeled per-backend instruments, creating them on
// first use.
func (m *metrics) forBackend(name string) (*obs.Counter, *obs.Counter, *obs.Histogram) {
	m.mu.Lock()
	defer m.mu.Unlock()
	req := m.backendReq[name]
	if req == nil {
		l := obs.L("backend", name)
		req = m.reg.Counter("spcggw_backend_requests_total", "Requests forwarded, by backend.", l)
		m.backendReq[name] = req
		m.backendErr[name] = m.reg.Counter("spcggw_backend_errors_total", "Transport failures and 5xx responses, by backend.", l)
		m.backendLat[name] = m.reg.Histogram("spcggw_backend_latency_seconds", "Backend round-trip latency, by backend.", histBounds, l)
	}
	return req, m.backendErr[name], m.backendLat[name]
}

// refreshMembership recomputes the membership gauges and per-backend ring
// shares after any state or ring change.
func (m *metrics) refreshMembership(g *Gateway) {
	var alive, dead float64
	for _, b := range g.backends {
		if b.getState().routable() {
			alive++
		} else {
			dead++
		}
	}
	m.alive.Set(alive)
	m.dead.Set(dead)
	m.ringSize.Set(float64(g.ring.members()))
	shares := g.ring.shares()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, b := range g.backends {
		gauge := m.ringShare[b.name]
		if gauge == nil {
			gauge = m.reg.Gauge("spcggw_ring_share", "Fraction of the hash circle owned, by backend (0 while off the ring).", obs.L("backend", b.name))
			m.ringShare[b.name] = gauge
		}
		gauge.Set(shares[b.name])
	}
}

// BackendSnapshot is the per-backend block of the JSON metrics view.
type BackendSnapshot struct {
	State     string  `json:"state"`
	Requests  int64   `json:"requests_total"`
	Errors    int64   `json:"errors_total"`
	RingShare float64 `json:"ring_share"`
	MeanMS    float64 `json:"mean_ms"`
	P95MS     float64 `json:"p95_ms"`
}

// Snapshot is the structured JSON document served at /metrics?format=json.
type Snapshot struct {
	UptimeS       float64 `json:"uptime_s"`
	Requests      int64   `json:"requests_total"`
	AffinityHits  int64   `json:"affinity_hits_total"`
	AffinityMiss  int64   `json:"affinity_misses_total"`
	Spills        int64   `json:"spills_total"`
	Failovers     int64   `json:"failovers_total"`
	Retries       int64   `json:"retries_total"`
	Shed          int64   `json:"shed_total"`
	Unroutable    int64   `json:"unroutable_total"`
	ProbeFailures int64   `json:"probe_failures_total"`
	BackendsAlive int     `json:"backends_alive"`
	BackendsDead  int     `json:"backends_dead"`

	// AffinityRate is hits/(hits+misses); 0 before any solve-path request.
	AffinityRate float64 `json:"affinity_rate"`

	Backends map[string]BackendSnapshot `json:"backends"`
}

func (g *Gateway) snapshot() Snapshot {
	m := g.met
	s := Snapshot{
		UptimeS:       time.Since(g.start).Seconds(),
		Requests:      m.requests.Value(),
		AffinityHits:  m.affinity.Value(),
		AffinityMiss:  m.misses.Value(),
		Spills:        m.spills.Value(),
		Failovers:     m.failovers.Value(),
		Retries:       m.retries.Value(),
		Shed:          m.shed.Value(),
		Unroutable:    m.unroutable.Value(),
		ProbeFailures: m.probeFailures.Value(),
		BackendsAlive: int(m.alive.Value()),
		BackendsDead:  int(m.dead.Value()),
		Backends:      map[string]BackendSnapshot{},
	}
	if tot := s.AffinityHits + s.AffinityMiss; tot > 0 {
		s.AffinityRate = float64(s.AffinityHits) / float64(tot)
	}
	shares := g.ring.shares()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, b := range g.backends {
		bs := BackendSnapshot{State: b.getState().String(), RingShare: shares[b.name]}
		if c := m.backendReq[b.name]; c != nil {
			bs.Requests = c.Value()
		}
		if c := m.backendErr[b.name]; c != nil {
			bs.Errors = c.Value()
		}
		if h := m.backendLat[b.name]; h != nil {
			hs := h.Snapshot()
			if hs.Count > 0 {
				bs.MeanMS = 1000 * hs.Sum / float64(hs.Count)
				bs.P95MS = 1000 * hs.Quantile(0.95)
			}
		}
		s.Backends[b.name] = bs
	}
	return s
}
