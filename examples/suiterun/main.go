// Suite run: solve a few members of the synthetic Table 2 suite with every
// solver and print the iteration comparison, paper numbers alongside.
//
//	go run ./examples/suiterun [-scale 256] [-names cfd2,G2_circuit]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"spcg/internal/dist"
	"spcg/internal/experiments"
	"spcg/internal/suite"
)

func main() {
	scale := flag.Int("scale", 256, "divide paper matrix sizes by this factor")
	names := flag.String("names", "thermomech_TC,Dubcova3,cfd2,G2_circuit", "comma-separated suite matrices")
	flag.Parse()

	var problems []suite.Problem
	for _, name := range strings.Split(*names, ",") {
		p, ok := suite.ByName(strings.TrimSpace(name))
		if !ok {
			log.Fatalf("unknown matrix %q; known: run with -names '' to list", name)
		}
		problems = append(problems, p)
	}
	if len(problems) == 0 {
		for _, p := range suite.All() {
			fmt.Println(p.Name)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, S: 10, Machine: dist.DefaultMachine()}
	rows, err := experiments.RunTable2(cfg, problems)
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderTable2(os.Stdout, rows, cfg.S)
	fmt.Println("\nEntries are 'monomial/Chebyshev' iterations; '-' marks stagnation or")
	fmt.Println("divergence, the paper's Table 2 convention. Paper columns list the")
	fmt.Println("original SuiteSparse results for the matrices these stand in for.")
}
