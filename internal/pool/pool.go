// Package pool is the shared-memory kernel execution engine: a persistent
// pool of worker goroutines that the vec and sparse kernels dispatch
// row-range and task-grid work onto.
//
// The engine exists because the s-step methods' whole shared-memory argument
// (paper §2.3, Table 1) is that they trade synchronization for larger local
// BLAS kernels — an advantage that evaporates if every kernel invocation pays
// goroutine spawn + join overhead. A Pool's workers are created once and
// parked on per-worker wake channels; a dispatch costs one channel send per
// woken worker and one atomic countdown, with no per-call goroutine creation,
// no per-call channel or sync.WaitGroup allocation, and the caller itself
// executing part 0 so the common small-fanout case never blocks on the
// scheduler.
//
// Determinism contract: work is split into parts by *fixed* arithmetic on
// (n, parts) — never by work stealing or atomic grabbing — and parts are
// assigned to workers by a fixed stride. Reduction-style kernels (fused Gram,
// pool dots) keep one accumulator per part and combine them in part order.
// Consequently every kernel result is bitwise reproducible for a fixed
// worker count, including when a dispatch degrades to inline execution
// (a closed pool or a single-worker pool runs the same parts in the same
// order sequentially).
//
// Concurrency contract: a Pool serializes dispatches internally (one mutex),
// so any number of solver goroutines may share one Pool; concurrent
// dispatches queue rather than interleave. Resizing via SetDefaultWorkers
// swaps the shared default pool atomically — in-flight dispatches on the old
// pool complete before its workers exit, and later dispatches that still hold
// the old pointer fall back to inline execution (same results, no panic).
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"

	"spcg/internal/obs"
)

// Pool is a fixed-size set of persistent worker goroutines.
type Pool struct {
	nw   int
	wake []chan struct{} // wake[w] for workers 1..nw-1 (worker 0 is the caller)
	done chan struct{}   // persistent completion channel, buffered 1

	mu     sync.Mutex // serializes dispatches; fields below are dispatch state
	closed bool
	fn     func(part int)
	parts  int
	active int
	pend   atomic.Int32
}

// New creates a pool with the given worker count (minimum 1). A pool with one
// worker runs everything inline on the caller.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		nw:   workers,
		wake: make([]chan struct{}, workers),
		done: make(chan struct{}, 1),
	}
	for w := 1; w < workers; w++ {
		p.wake[w] = make(chan struct{}, 1)
		go p.workerLoop(w)
	}
	return p
}

// Workers returns the pool's worker count (including the dispatching caller).
func (p *Pool) Workers() int { return p.nw }

func (p *Pool) workerLoop(w int) {
	for range p.wake[w] {
		p.runParts(w)
		if p.pend.Add(-1) == 0 {
			p.done <- struct{}{}
		}
	}
}

// runParts executes the strided part set of worker w in increasing part
// order (fixed assignment: part t goes to worker t mod active).
func (p *Pool) runParts(w int) {
	for t := w; t < p.parts; t += p.active {
		p.fn(t)
	}
}

// Dispatch runs fn(part) for every part in [0, parts), spread over the
// workers. Parts may exceed the worker count; assignment is strided and
// fixed. Dispatch returns when every part has finished. fn must only touch
// data disjoint per part (or its own per-part accumulator slot).
func (p *Pool) Dispatch(parts int, fn func(part int)) {
	if parts <= 0 {
		return
	}
	if t := obsTracer.Load(); t != nil {
		t.Count(obs.PhaseDispatch, int64(parts))
	}
	if parts == 1 || p.nw == 1 {
		countInline.Add(1)
		for t := 0; t < parts; t++ {
			fn(t)
		}
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		countInline.Add(1)
		for t := 0; t < parts; t++ {
			fn(t)
		}
		return
	}
	countDispatch.Add(1)
	active := p.nw
	if active > parts {
		active = parts
	}
	p.fn = fn
	p.parts = parts
	p.active = active
	p.pend.Store(int32(active - 1))
	for w := 1; w < active; w++ {
		p.wake[w] <- struct{}{}
	}
	p.runParts(0) // the caller is worker 0
	if active > 1 {
		<-p.done
	}
	p.fn = nil
}

// Run splits [0, n) into one fixed contiguous chunk per worker and runs
// body(part, lo, hi) for each non-empty chunk. Chunk boundaries depend only
// on (n, workers): chunk = ceil(n/workers). Sub-threshold n should be handled
// by the caller (Run always dispatches).
func (p *Pool) Run(n int, body func(part, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := p.nw
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	parts := (n + chunk - 1) / chunk
	p.Dispatch(parts, func(t int) {
		lo := t * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		body(t, lo, hi)
	})
}

// NumParts returns the number of parts Run(n, …) will dispatch for this
// pool's size — reduction kernels size their per-part accumulator arrays
// with it so partials line up with Run's fixed chunking.
func (p *Pool) NumParts(n int) int {
	if n <= 0 {
		return 0
	}
	w := p.nw
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	return (n + chunk - 1) / chunk
}

// RunBounds runs body(part, bounds[part], bounds[part+1]) for each of the
// len(bounds)-1 precomputed ranges (e.g. nnz-balanced row ranges). Empty
// ranges still occupy a part slot so accumulator indexing stays stable.
func (p *Pool) RunBounds(bounds []int, body func(part, lo, hi int)) {
	parts := len(bounds) - 1
	if parts <= 0 {
		return
	}
	p.Dispatch(parts, func(t int) {
		if bounds[t] < bounds[t+1] {
			body(t, bounds[t], bounds[t+1])
		}
	})
}

// Close stops the workers. Dispatches in flight complete first; later
// dispatches run inline. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for w := 1; w < p.nw; w++ {
		close(p.wake[w])
	}
}

// defaultPool is the shared engine used by the vec and sparse kernels,
// created lazily at GOMAXPROCS size and replaced atomically by
// SetDefaultWorkers.
var defaultPool atomic.Pointer[Pool]

// Default returns the shared pool, creating it on first use.
func Default() *Pool {
	if p := defaultPool.Load(); p != nil {
		return p
	}
	p := New(runtime.GOMAXPROCS(0))
	if defaultPool.CompareAndSwap(nil, p) {
		return p
	}
	p.Close()
	return defaultPool.Load()
}

// SetDefaultWorkers replaces the shared pool with one of the given size
// (w <= 0 restores GOMAXPROCS) and returns the previous size. The swap is
// atomic: concurrent kernels either use the old pool (whose in-flight
// dispatches finish before its workers exit, falling back to inline execution
// afterwards) or the new one. Intended for benchmarks sweeping shared-memory
// parallelism; servers should size the pool once at startup.
func SetDefaultWorkers(w int) int {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	np := New(w)
	old := defaultPool.Swap(np)
	prev := runtime.GOMAXPROCS(0)
	if old != nil {
		prev = old.nw
		old.Close()
	}
	return prev
}

// DefaultWorkers returns the shared pool's current size without creating it.
func DefaultWorkers() int {
	if p := defaultPool.Load(); p != nil {
		return p.nw
	}
	return runtime.GOMAXPROCS(0)
}

// obsTracer is the optional process-wide phase tracer: when attached, every
// kernel dispatch (pooled or inline) emits one counting span carrying the
// part count. Counting — not timing — because dispatch wall time is already
// inside the dispatching kernel's own phase span.
var obsTracer atomic.Pointer[obs.Tracer]

// SetTracer attaches (or, with nil, detaches) the engine's dispatch tracer.
// The pool is process-global, so this is a process-wide observability knob:
// benchmarks and the trace subcommand attach a tracer around one solve;
// servers leave it off.
func SetTracer(t *obs.Tracer) { obsTracer.Store(t) }

// Global kernel counters (atomic, monotone). They make the serving-path wins
// observable: the solve service snapshots them into /metrics.
var (
	countDispatch   atomic.Uint64 // pool dispatches (parallel fan-outs)
	countInline     atomic.Uint64 // dispatches degraded to inline execution
	countFusedGram  atomic.Uint64 // fused cache-blocked Gram calls
	countFusedComb  atomic.Uint64 // fused block-combine calls (AddMul/Mul/MulVec*)
	countFusedBasis atomic.Uint64 // fused SpMV+three-term+diag basis steps
	countSpMV       atomic.Uint64 // pool-dispatched SpMV kernels
)

// CountFusedGram records one fused Gram invocation (called by vec).
func CountFusedGram() { countFusedGram.Add(1) }

// CountFusedCombine records one fused block-combine invocation.
func CountFusedCombine() { countFusedComb.Add(1) }

// CountFusedBasisStep records one fused MPK basis step (called by sparse).
func CountFusedBasisStep() { countFusedBasis.Add(1) }

// CountSpMV records one pool-dispatched SpMV (called by sparse).
func CountSpMV() { countSpMV.Add(1) }

// Stats is a snapshot of the engine's global counters.
type Stats struct {
	Workers         int    `json:"workers"`
	Dispatches      uint64 `json:"dispatches"`
	InlineRuns      uint64 `json:"inline_runs"`
	FusedGramCalls  uint64 `json:"fused_gram_calls"`
	FusedCombines   uint64 `json:"fused_combine_calls"`
	FusedBasisSteps uint64 `json:"fused_basis_steps"`
	SpMVDispatches  uint64 `json:"spmv_dispatches"`
}

// ReadStats snapshots the global counters and the default pool size.
func ReadStats() Stats {
	return Stats{
		Workers:         DefaultWorkers(),
		Dispatches:      countDispatch.Load(),
		InlineRuns:      countInline.Load(),
		FusedGramCalls:  countFusedGram.Load(),
		FusedCombines:   countFusedComb.Load(),
		FusedBasisSteps: countFusedBasis.Load(),
		SpMVDispatches:  countSpMV.Load(),
	}
}
