package lint

import (
	"go/ast"
	"go/types"
)

// CancelpollConfig targets the cancelpoll analyzer.
type CancelpollConfig struct {
	// Package is the solver package's import path.
	Package string
	// RegistryVar names the package-level name → function map registering
	// the served solvers ("methods").
	RegistryVar string
	// CheckCall is the method name whose call marks a convergence check
	// ("done" — the checker method that also fires the progress heartbeat).
	CheckCall string
	// PollCalls are the accepted cancellation polls ("cancelled").
	PollCalls []string
}

// Cancelpoll enforces the serving layer's cooperative-cancellation contract:
// in every solver reachable from the method registry, a loop that evaluates
// the convergence criterion (and thereby fires the heartbeat) must also poll
// Options.Cancel. A convergence loop that cannot be cancelled would pin a
// worker until MaxIterations even after its request's deadline fired, and the
// stagnation watchdog's kill would not take effect — the service's timeout
// and watchdog semantics silently rely on this per-loop poll.
func Cancelpoll(cfg CancelpollConfig) *Analyzer {
	polls := stringSet(cfg.PollCalls)
	a := &Analyzer{
		Name: "cancelpoll",
		Doc:  "convergence loops in registered solvers must poll cancellation",
	}
	a.Run = func(p *Pass) {
		if p.Pkg.Types.Path() != cfg.Package {
			return
		}
		// Registered solver entry points, by function object.
		roots := registryFuncs(p, cfg.RegistryVar)
		if len(roots) == 0 {
			return
		}
		decls, calls := packageCallGraph(p)
		// Transitive closure of package-local callees.
		reach := make(map[*types.Func]bool)
		var visit func(fn *types.Func)
		visit = func(fn *types.Func) {
			if fn == nil || reach[fn] {
				return
			}
			reach[fn] = true
			for _, callee := range calls[fn] {
				visit(callee)
			}
		}
		for _, fn := range roots {
			visit(fn)
		}

		isLocalCall := func(names map[string]bool, c *ast.CallExpr) bool {
			var id *ast.Ident
			switch fun := c.Fun.(type) {
			case *ast.SelectorExpr:
				id = fun.Sel
			case *ast.Ident:
				id = fun
			default:
				return false
			}
			if !names[id.Name] {
				return false
			}
			fn, ok := p.Pkg.Info.Uses[id].(*types.Func)
			return ok && fn.Pkg() == p.Pkg.Types
		}
		check := map[string]bool{cfg.CheckCall: true}

		for fn, decl := range decls {
			if !reach[fn] {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				var body ast.Node
				switch n := n.(type) {
				case *ast.ForStmt:
					body = n.Body
				case *ast.RangeStmt:
					body = n.Body
				default:
					return true
				}
				hasCheck := containsCall(body, func(c *ast.CallExpr) bool { return isLocalCall(check, c) })
				if !hasCheck {
					return true
				}
				hasPoll := containsCall(body, func(c *ast.CallExpr) bool { return isLocalCall(polls, c) })
				if !hasPoll {
					p.Reportf(n.Pos(), "convergence loop (calls %s) never polls %s — the solve cannot be cancelled or watchdog-killed", cfg.CheckCall, pollNames(cfg.PollCalls))
				}
				return true
			})
		}
	}
	return a
}

// registryFuncs resolves the function objects named as values of the
// package-level registry map literal (var methods = map[string]Method{...}).
func registryFuncs(p *Pass, varName string) []*types.Func {
	var out []*types.Func
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != varName || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if id, ok := kv.Value.(*ast.Ident); ok {
							if fn, ok := p.Pkg.Info.Uses[id].(*types.Func); ok {
								out = append(out, fn)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// packageCallGraph maps every function/method declared in the unit to its
// declaration and its package-local callees.
func packageCallGraph(p *Pass) (map[*types.Func]*ast.FuncDecl, map[*types.Func][]*types.Func) {
	decls := make(map[*types.Func]*ast.FuncDecl)
	calls := make(map[*types.Func][]*types.Func)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			ast.Inspect(fd, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var id *ast.Ident
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					id = fun
				case *ast.SelectorExpr:
					id = fun.Sel
				default:
					return true
				}
				if callee, ok := p.Pkg.Info.Uses[id].(*types.Func); ok && callee.Pkg() == p.Pkg.Types {
					calls[fn] = append(calls[fn], callee)
				}
				return true
			})
		}
	}
	return decls, calls
}

func pollNames(names []string) string {
	switch len(names) {
	case 0:
		return "a cancellation hook"
	case 1:
		return names[0] + "()"
	default:
		out := names[0] + "()"
		for _, n := range names[1:] {
			out += " or " + n + "()"
		}
		return out
	}
}
