// Package detbad violates every determinism rule once; the fixture test
// asserts one diagnostic per construct.
package detbad

import (
	"math/rand"
	"time"
)

// SumWeights ranges a map, so the summation order differs run to run.
func SumWeights(w map[string]float64) float64 {
	var s float64
	for _, v := range w {
		s += v
	}
	return s
}

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }

// Draw uses the unseeded global rand source.
func Draw() float64 { return rand.Float64() }

// Spawn starts an ad-hoc goroutine.
func Spawn(done chan struct{}) {
	go func() { close(done) }()
}
