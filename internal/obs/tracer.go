// Package obs is the solver stack's zero-dependency observability layer:
// a low-overhead phase tracer (ring-buffered spans, pay-for-use) and a typed
// metrics registry with Prometheus text exposition.
//
// The paper's entire argument is about where time goes — collective counts
// per iteration (Table 1), per-phase runtime (Table 3), the strong-scaling
// breakdown (Figure 1) — so the tracer's unit of record is the *solver
// phase*: basis construction, Gram/local reductions, block updates,
// preconditioner applications, collectives, halo exchanges. Solvers emit
// spans through an optional *Tracer; a nil Tracer is valid everywhere and
// reduces every emission site to a single predictable branch, keeping the
// Dot/Axpy hot path at its uninstrumented cost.
//
// Concurrency: all Tracer methods are safe for concurrent use (one mutex per
// emission). A Tracer is cheap enough to create per solve, which is how the
// solve service attributes phases per request.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Phase identifies one stage of the solve pipeline. The set mirrors the cost
// components of the paper's Tables 1 and 3: matrix-vector products,
// preconditioner applications, basis construction, local reductions (Gram
// matrices and fused dots), block vector updates, BLAS1 vector work, global
// collectives and halo exchanges.
type Phase uint8

const (
	// PhaseSpMV covers sparse matrix–vector products outside the fused
	// basis kernel.
	PhaseSpMV Phase = iota
	// PhasePrec covers preconditioner applications M⁻¹·v.
	PhasePrec
	// PhaseBasis covers matrix-powers-kernel basis construction: the
	// three-term recurrence combines and the fused SpMV+recurrence+apply
	// steps (which subsume their SpMV and preconditioner work).
	PhaseBasis
	// PhaseGram covers local reduction work: fused Gram matrices, moment
	// dots and the local halves of globally reduced inner products
	// (Table 1's "local reductions" column).
	PhaseGram
	// PhaseBlockUpdate covers the BLAS3-style tall-skinny block updates
	// (P/AP recurrences, x += P·a, r −= AP·a).
	PhaseBlockUpdate
	// PhaseVector covers BLAS1 vector operations (axpy, xpay, three-term
	// vector updates, residual assembly).
	PhaseVector
	// PhaseCollective counts global reductions. Spans carry the reduced
	// payload (float64 values) in Payload; in shared memory the duration is
	// the bookkeeping cost only, the *count* is the scalability signal.
	PhaseCollective
	// PhaseHalo counts modeled halo exchanges (emitted by dist.Tracker;
	// shared-memory runs have no real halo traffic).
	PhaseHalo
	// PhaseScalarWork covers the small s×s dense factorizations and solves
	// (the "Scalar Work" of Algorithm 6).
	PhaseScalarWork
	// PhaseDispatch counts kernel-engine pool dispatches (emitted by
	// internal/pool when a tracer is attached). Its spans carry the part
	// count in Payload and zero duration: dispatch time is already inside
	// the kernel's own phase, so counting avoids double-charging.
	PhaseDispatch
	// NumPhases is the number of defined phases.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"spmv", "prec", "basis", "gram", "block_update", "vector",
	"collective", "halo", "scalar_work", "dispatch",
}

// String returns the phase's stable snake_case name (used in JSON exports,
// the breakdown table and docs/OBSERVABILITY.md).
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Span is one recorded phase interval. Start is nanoseconds since the
// tracer's creation; counting-only events (collectives, halos, dispatches)
// have Dur == 0 and carry their magnitude in Payload.
type Span struct {
	Phase   Phase `json:"-"`
	Start   int64 `json:"start_ns"`
	Dur     int64 `json:"dur_ns"`
	Payload int64 `json:"payload,omitempty"`
}

// spanJSON is Span with the phase name spelled out for export.
type spanJSON struct {
	Phase string `json:"phase"`
	Span
}

// agg accumulates one phase's totals; kept alongside the ring so breakdowns
// remain exact even after the ring wraps.
type agg struct {
	count   int64
	nanos   int64
	payload int64
}

// Tracer records phase spans into a fixed-capacity ring buffer and exact
// per-phase aggregates. The zero capacity passed to New defaults to 4096
// spans; when the ring wraps, the oldest spans are dropped (and counted in
// Dropped) while the aggregates keep every event.
//
// A nil *Tracer is valid: every method no-ops, and Begin returns the zero
// time so emission sites pay only the nil check.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	ring    []Span
	next    uint64 // total spans emitted (ring index = next % cap)
	agg     [NumPhases]agg
	dropped uint64
}

// DefaultRingCapacity is the span ring size used when New is given cap <= 0.
const DefaultRingCapacity = 4096

// New creates a Tracer whose ring holds capacity spans (<= 0 selects
// DefaultRingCapacity).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Tracer{epoch: time.Now(), ring: make([]Span, 0, capacity)}
}

// Begin returns the start timestamp for a span about to be emitted with End.
// On a nil tracer it returns the zero time without reading the clock, so a
// disabled emission site costs one branch.
func (t *Tracer) Begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// End records a span of the given phase that began at start (a value from
// Begin). No-op on a nil tracer.
func (t *Tracer) End(p Phase, start time.Time) {
	if t == nil {
		return
	}
	t.emit(p, start, 0)
}

// EndN records a span carrying a payload (e.g. bytes or element counts) in
// addition to its duration. No-op on a nil tracer.
func (t *Tracer) EndN(p Phase, start time.Time, payload int64) {
	if t == nil {
		return
	}
	t.emit(p, start, payload)
}

// Count records a zero-duration counting event of the given phase — the form
// collectives, halo exchanges and pool dispatches take, where the count and
// payload are the signal and wall time is charged elsewhere. No-op on a nil
// tracer.
func (t *Tracer) Count(p Phase, payload int64) {
	if t == nil {
		return
	}
	now := time.Now()
	t.append(Span{Phase: p, Start: now.Sub(t.epoch).Nanoseconds(), Payload: payload})
}

func (t *Tracer) emit(p Phase, start time.Time, payload int64) {
	dur := time.Since(start).Nanoseconds()
	t.append(Span{Phase: p, Start: start.Sub(t.epoch).Nanoseconds(), Dur: dur, Payload: payload})
}

func (t *Tracer) append(sp Span) {
	t.mu.Lock()
	if cap(t.ring) == 0 { // zero-value Tracer: aggregate only
		t.aggregateLocked(sp)
		t.mu.Unlock()
		return
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.next%uint64(cap(t.ring))] = sp
		t.dropped++
	}
	t.next++
	t.aggregateLocked(sp)
	t.mu.Unlock()
}

func (t *Tracer) aggregateLocked(sp Span) {
	if sp.Phase >= NumPhases {
		return
	}
	a := &t.agg[sp.Phase]
	a.count++
	a.nanos += sp.Dur
	a.payload += sp.Payload
}

// Spans returns the retained spans in emission order, oldest first. When the
// ring has wrapped, only the most recent capacity spans remain.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	out := make([]Span, 0, n)
	if t.next <= uint64(n) { // not wrapped
		return append(out, t.ring...)
	}
	head := int(t.next % uint64(cap(t.ring)))
	out = append(out, t.ring[head:]...)
	out = append(out, t.ring[:head]...)
	return out
}

// Dropped returns how many spans the ring has overwritten. The per-phase
// aggregates in Breakdown are unaffected by drops.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset clears the ring, the aggregates and the drop counter, and restarts
// the epoch. No-op on a nil tracer.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.next = 0
	t.dropped = 0
	t.agg = [NumPhases]agg{}
	t.epoch = time.Now()
	t.mu.Unlock()
}

// WriteJSON writes the trace as one JSON document: the per-phase breakdown
// followed by the retained raw spans (schema in docs/OBSERVABILITY.md).
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := struct {
		Breakdown Breakdown  `json:"breakdown"`
		Spans     []spanJSON `json:"spans"`
	}{Breakdown: t.Breakdown()}
	for _, sp := range t.Spans() {
		doc.Spans = append(doc.Spans, spanJSON{Phase: sp.Phase.String(), Span: sp})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
