package sparse

import (
	"runtime"
	"sync"

	"spcg/internal/vec"
)

// parSpMVThreshold is the nnz count below which MulVecPar stays sequential.
const parSpMVThreshold = 1 << 15

// MulVecPar computes dst = A·x with row ranges fanned out over goroutines.
// Rows are split by approximately equal nnz (not equal row counts) so that
// matrices with irregular rows stay balanced, mirroring the nnz-balanced
// block-row distribution the paper uses across MPI ranks.
func (a *CSR) MulVecPar(dst, x []float64) {
	if a.NNZ() < parSpMVThreshold {
		a.MulVec(dst, x)
		return
	}
	if len(x) != a.N || len(dst) != a.N {
		panic("sparse: MulVecPar dim mismatch")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.N {
		workers = a.N
	}
	bounds := NNZBalancedRanges(a, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			a.MulVecRows(dst, x, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MulBlockPar computes one SpMV per column, dst_j = A·x_j, with each column
// going through the row-parallel kernel. It is the batched counterpart of
// MulVecPar used by the solve service's coalesced multi-RHS solves.
func (a *CSR) MulBlockPar(dst, x *vec.Block) {
	if dst.S() != x.S() {
		panic("sparse: MulBlockPar column-count mismatch")
	}
	for j := 0; j < x.S(); j++ {
		a.MulVecPar(dst.Col(j), x.Col(j))
	}
}

// NNZBalancedRanges splits the rows of a into p contiguous ranges with
// approximately equal nnz, returning p+1 row boundaries. This is the same
// partition the virtual cluster uses, so measured shared-memory speedups and
// modeled distributed balance agree.
func NNZBalancedRanges(a *CSR, p int) []int {
	if p < 1 {
		panic("sparse: NNZBalancedRanges needs p ≥ 1")
	}
	bounds := make([]int, p+1)
	total := a.NNZ()
	row := 0
	for w := 1; w < p; w++ {
		target := total * w / p
		for row < a.N && a.RowPtr[row] < target {
			row++
		}
		bounds[w] = row
	}
	bounds[p] = a.N
	return bounds
}
