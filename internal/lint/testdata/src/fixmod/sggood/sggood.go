// Package sggood spawns in the accepted shape: a func literal whose first
// statement branches on resilience.Safe, with cleanup deferred inside the
// guarded function.
package sggood

import (
	"sync"

	"fixmod/resilience"
)

// Spawn is the canonical guarded goroutine.
func Spawn(wg *sync.WaitGroup, fn func(), onPanic func(error)) {
	wg.Add(1)
	go func() {
		if err := resilience.Safe(func() {
			defer wg.Done()
			fn()
		}); err != nil {
			onPanic(err)
		}
	}()
}
