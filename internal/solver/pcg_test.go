package solver

import (
	"math"
	"math/rand"
	"testing"

	"spcg/internal/dist"
	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// testProblem builds A, b with a known solution x* = 1/√n (the paper's
// right-hand-side construction, §5.1).
func testProblem(a *sparse.CSR) (b, xTrue []float64) {
	n := a.Dim()
	xTrue = make([]float64, n)
	vec.Fill(xTrue, 1/math.Sqrt(float64(n)))
	b = make([]float64, n)
	a.MulVec(b, xTrue)
	return b, xTrue
}

func solutionError(x, xTrue []float64) float64 {
	d := make([]float64, len(x))
	vec.Sub(d, x, xTrue)
	return vec.Norm2(d) / vec.Norm2(xTrue)
}

func TestPCGSolvesPoisson(t *testing.T) {
	for _, crit := range []Criterion{TrueResidual2Norm, RecursiveResidual2Norm, RecursiveResidualMNorm} {
		a := sparse.Poisson2D(20, 20)
		b, xTrue := testProblem(a)
		m, err := precond.NewJacobi(a)
		if err != nil {
			t.Fatal(err)
		}
		x, stats, err := PCG(a, m, b, Options{Tol: 1e-10, Criterion: crit})
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Converged {
			t.Fatalf("%v: did not converge: %+v", crit, stats)
		}
		if e := solutionError(x, xTrue); e > 1e-8 {
			t.Fatalf("%v: solution error %v", crit, e)
		}
		if stats.TrueRelResidual > 1e-8 {
			t.Fatalf("%v: true residual %v", crit, stats.TrueRelResidual)
		}
		if stats.Iterations <= 0 || stats.Iterations > 200 {
			t.Fatalf("%v: iterations = %d", crit, stats.Iterations)
		}
		if len(stats.History) == 0 {
			t.Fatalf("%v: no history", crit)
		}
	}
}

func TestPCGCommunicationPattern(t *testing.T) {
	// Standard PCG performs exactly 2 single-value allreduces per iteration
	// (M-norm criterion adds nothing) — the bottleneck the paper attacks.
	a := sparse.Poisson2D(24, 24)
	b, _ := testProblem(a)
	m, _ := precond.NewJacobi(a)
	machine := dist.DefaultMachine()
	machine.RanksPerNode = 8
	cl, err := dist.NewCluster(machine, 2, a)
	if err != nil {
		t.Fatal(err)
	}
	tr := dist.NewTracker(cl)
	_, stats, err := PCG(a, m, b, Options{Tol: 1e-9, Criterion: RecursiveResidualMNorm, Tracker: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatal("did not converge")
	}
	// 1 initial rho allreduce + 2 per iteration.
	want := 1 + 2*stats.Iterations
	if stats.Allreduces != want {
		t.Fatalf("allreduces = %d, want %d (iters=%d)", stats.Allreduces, want, stats.Iterations)
	}
	// 1 initial SpMV + 1 per iteration.
	if stats.MVProducts != 1+stats.Iterations {
		t.Fatalf("MVs = %d, want %d", stats.MVProducts, 1+stats.Iterations)
	}
	if stats.SimTime <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestPCGZeroRHS(t *testing.T) {
	a := sparse.Poisson1D(10)
	b := make([]float64, 10)
	x, stats, err := PCG(a, nil, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged || stats.Iterations != 0 {
		t.Fatalf("zero rhs: %+v", stats)
	}
	if vec.Norm2(x) != 0 {
		t.Fatal("x should stay zero")
	}
}

func TestPCGWithX0(t *testing.T) {
	a := sparse.Poisson1D(30)
	b, xTrue := testProblem(a)
	x0 := append([]float64(nil), xTrue...) // start at the solution
	_, stats, err := PCG(a, nil, b, Options{X0: x0, Criterion: TrueResidual2Norm})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged || stats.Iterations != 0 {
		t.Fatalf("exact x0 should converge immediately: %+v", stats)
	}
}

func TestPCGDimensionErrors(t *testing.T) {
	a := sparse.Poisson1D(10)
	if _, _, err := PCG(a, nil, make([]float64, 5), Options{}); err == nil {
		t.Fatal("bad b accepted")
	}
	if _, _, err := PCG(a, nil, make([]float64, 10), Options{X0: make([]float64, 3)}); err == nil {
		t.Fatal("bad x0 accepted")
	}
	if _, _, err := PCG(nil, nil, nil, Options{}); err == nil {
		t.Fatal("nil matrix accepted")
	}
	m, _ := precond.NewJacobi(sparse.Poisson1D(5))
	if _, _, err := PCG(a, m, make([]float64, 10), Options{}); err == nil {
		t.Fatal("mismatched preconditioner accepted")
	}
}

func TestPCGMaxIterationsCap(t *testing.T) {
	a := sparse.Anisotropic2D(30, 30, 1e-4)
	b, _ := testProblem(a)
	_, stats, err := PCG(a, nil, b, Options{Tol: 1e-14, MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Converged {
		t.Fatal("should not converge in 3 iterations")
	}
	if stats.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", stats.Iterations)
	}
}

func TestPCG3MatchesPCGIterates(t *testing.T) {
	// In exact arithmetic PCG3 produces the same iterates as PCG; on a
	// well-conditioned problem the iteration counts must agree closely.
	a := sparse.Poisson2D(16, 16)
	b, xTrue := testProblem(a)
	m, _ := precond.NewJacobi(a)
	_, s1, err := PCG(a, m, b, Options{Tol: 1e-9, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	x3, s3, err := PCG3(a, m, b, Options{Tol: 1e-9, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if !s3.Converged {
		t.Fatal("PCG3 did not converge")
	}
	if e := solutionError(x3, xTrue); e > 1e-7 {
		t.Fatalf("PCG3 solution error %v", e)
	}
	if diff := s3.Iterations - s1.Iterations; diff < -2 || diff > 2 {
		t.Fatalf("PCG3 iterations %d far from PCG %d", s3.Iterations, s1.Iterations)
	}
}

func TestPCG3SingleReductionPerIteration(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	b, _ := testProblem(a)
	machine := dist.DefaultMachine()
	machine.RanksPerNode = 4
	cl, err := dist.NewCluster(machine, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	tr := dist.NewTracker(cl)
	_, stats, err := PCG3(a, nil, b, Options{Criterion: RecursiveResidualMNorm, Tracker: tr})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + stats.Iterations // initial rho + one fused allreduce per iter
	if stats.Allreduces != want {
		t.Fatalf("allreduces = %d, want %d", stats.Allreduces, want)
	}
}

func TestPCG3Criteria(t *testing.T) {
	for _, crit := range []Criterion{TrueResidual2Norm, RecursiveResidual2Norm, RecursiveResidualMNorm} {
		a := sparse.Poisson1D(50)
		b, xTrue := testProblem(a)
		x, stats, err := PCG3(a, nil, b, Options{Criterion: crit, Tol: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Converged {
			t.Fatalf("%v: did not converge", crit)
		}
		if e := solutionError(x, xTrue); e > 1e-7 {
			t.Fatalf("%v: error %v", crit, e)
		}
	}
}

func TestRandomSpectrumHardProblem(t *testing.T) {
	// A spread spectrum slows CG down per theory: κ=1e4 needs ≈ √κ·ln(2/ε)/2
	// iterations; sanity-check the iteration count scale.
	spec := sparse.GeometricSpectrum(200, 1e-2, 1e4)
	a := sparse.SPDWithSpectrum(spec, 600, 17)
	b, xTrue := testProblem(a)
	x, stats, err := PCG(a, nil, b, Options{Tol: 1e-8, MaxIterations: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatalf("did not converge: %+v", stats.FinalRelative)
	}
	if e := solutionError(x, xTrue); e > 1e-5 {
		t.Fatalf("solution error %v", e)
	}
	if stats.Iterations < 20 {
		t.Fatalf("suspiciously few iterations (%d) for κ=1e4", stats.Iterations)
	}
}

func TestPCGHistoryEvery(t *testing.T) {
	a := sparse.Poisson2D(12, 12)
	b, _ := testProblem(a)
	_, s1, _ := PCG(a, nil, b, Options{HistoryEvery: 1})
	_, s5, _ := PCG(a, nil, b, Options{HistoryEvery: 5})
	if len(s5.History) >= len(s1.History) {
		t.Fatalf("HistoryEvery=5 gave %d ≥ %d entries", len(s5.History), len(s1.History))
	}
}

func randSPDVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestPCGRandomRHSQuickish(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := sparse.VarCoeff2D(12, 12, 2, 3)
	m, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		b := randSPDVec(rng, a.Dim())
		x, stats, err := PCG(a, m, b, Options{Tol: 1e-10, MaxIterations: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
		// Verify A·x ≈ b directly.
		ax := make([]float64, a.Dim())
		a.MulVec(ax, x)
		diff := make([]float64, a.Dim())
		vec.Sub(diff, ax, b)
		if rel := vec.Norm2(diff) / vec.Norm2(b); rel > 1e-8 {
			t.Fatalf("trial %d residual %v", trial, rel)
		}
	}
}
