package gateway

import (
	"os"
	"strings"
	"testing"
)

// TestGatewayRoutesDocumented pins the gateway's HTTP surface to
// docs/API.md ("Gateway endpoints"): every route the mux serves must
// appear there — a line carrying the method and the backticked path.
func TestGatewayRoutesDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("read docs/API.md: %v", err)
	}
	lines := strings.Split(string(doc), "\n")
	for _, r := range Routes() {
		method, path, ok := strings.Cut(r, " ")
		if !ok {
			t.Fatalf("route %q has no method", r)
		}
		found := false
		want := "`" + path + "`"
		for _, ln := range lines {
			if strings.Contains(ln, want) && strings.Contains(ln, method) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("gateway route %q is not documented in docs/API.md (want a line with %s and `%s`)", r, method, path)
		}
	}
}
