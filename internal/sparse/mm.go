package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes a in MatrixMarket coordinate format
// ("%%MatrixMarket matrix coordinate real general", 1-based indices).
func WriteMatrixMarket(w io.Writer, a *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n", a.N, a.N, a.NNZ()); err != nil {
		return err
	}
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, a.ColIdx[k]+1, a.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file. Supported
// qualifiers: real/integer/pattern × general/symmetric. Symmetric files are
// expanded to full storage. Pattern entries get value 1.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket header %q", sc.Text())
	}
	valType := header[3]
	symmetric := false
	if len(header) >= 5 {
		switch header[4] {
		case "general":
		case "symmetric":
			symmetric = true
		default:
			return nil, fmt.Errorf("sparse: unsupported symmetry %q", header[4])
		}
	}
	switch valType {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported value type %q", valType)
	}
	// Skip comments, read size line.
	var n, m, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d %d", &n, &m, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %w", line, err)
		}
		break
	}
	if n != m {
		return nil, fmt.Errorf("sparse: matrix is %d×%d, need square", n, m)
	}
	coo := NewCOO(n)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %w", fields[0], err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col index %q: %w", fields[1], err)
		}
		v := 1.0
		if valType != "pattern" {
			if len(fields) < 3 {
				return nil, fmt.Errorf("sparse: missing value in %q", line)
			}
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %w", fields[2], err)
			}
		}
		if i < 1 || i > n || j < 1 || j > n {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of range for n=%d", i, j, n)
		}
		if symmetric && i != j {
			coo.AddSym(i-1, j-1, v)
		} else {
			coo.Add(i-1, j-1, v)
		}
		read++
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: expected %d entries, got %d", nnz, read)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return coo.ToCSR(), nil
}
