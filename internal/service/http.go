package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"spcg/internal/obs"
)

// Handler returns the service's HTTP mux:
//
//	POST /solve            — submit a solve; sync by default, async with
//	                         "async": true (202 + job id)
//	GET  /jobs/{id}        — poll a job
//	POST /jobs/{id}/cancel — cooperative cancellation
//	GET  /matrices         — registered matrix names
//	POST /tune             — force a synchronous tuning run for a matrix
//	GET  /tune/{matrix}    — the stored tuning decision for a matrix
//	GET  /metrics          — serving counters: Prometheus text by default,
//	                         the structured JSON view with ?format=json
//	GET  /healthz          — liveness; 503 while draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobGet)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleJobCancel)
	mux.HandleFunc("GET /matrices", s.handleMatrices)
	mux.HandleFunc("POST /tune", s.handleTune)
	mux.HandleFunc("GET /tune/{matrix}", s.handleTuneGet)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			// Load shedding: tell well-behaved clients when to come back.
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		case errors.Is(err, ErrShuttingDown):
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		}
		return
	}
	if req.Async {
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}
	// Sync path: wait for the job, but stop waiting if the client goes away
	// (the job itself keeps its own deadline).
	select {
	case <-j.done:
	case <-r.Context().Done():
		writeJSON(w, http.StatusRequestTimeout, j.status())
		return
	}
	st := j.status()
	switch st.State {
	case JobDone:
		writeJSON(w, http.StatusOK, st)
	case JobCancelled, JobStagnated:
		writeJSON(w, http.StatusGatewayTimeout, st)
	default:
		writeJSON(w, http.StatusInternalServerError, st)
	}
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleMatrices(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"matrices": s.Matrices()})
}

// handleTune forces a full synchronous tuning run: seed, trials, persist,
// return the decision. The run blocks the request (trial probes are capped,
// so this is seconds, not a full solve campaign).
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Matrix string `json:"matrix"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Matrix == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing matrix"})
		return
	}
	d, err := s.TuneNow(req.Matrix)
	switch {
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case err != nil && d == nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	case err != nil:
		// Tuned but not persisted: the decision is still usable this process.
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusOK, d)
	}
}

// handleTuneGet serves the stored decision for a matrix, 404 when untuned.
func (s *Server) handleTuneGet(w http.ResponseWriter, r *http.Request) {
	d, err := s.TuneDecision(r.PathValue("matrix"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if d == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "matrix not tuned"})
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.Metrics())
		return
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	s.Registry().WritePrometheus(w)
}

// handleHealthz serves the health state machine: 200 while healthy or
// degraded (degraded still serves traffic — clients read the body to learn
// about open breakers and shedding), 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	hs := s.HealthSnapshot()
	code := http.StatusOK
	if hs.Status == "draining" {
		w.Header().Set("Retry-After", "1")
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, hs)
}
