package solver

import (
	"fmt"
	"math"

	"spcg/internal/dense"
	"spcg/internal/mpk"
	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// CAPCG solves A·x = b with Toledo's communication-avoiding PCG (paper
// Algorithm 3). Each outer iteration builds the two-space basis
//
//	Y = [Q | R̂]   span(Q) = K_{s+1}(AM⁻¹, q),  span(R̂) = K_s(AM⁻¹, r)
//	Z = M⁻¹·Y = [P | U]
//
// computes the (2s+1)² Gram matrix G = ZᵀY with a single global reduction,
// and runs s exact PCG steps on (2s+1)-vectors in the changed basis, using
// the block change-of-basis matrix B to apply A without communication. The
// full vectors are recovered at the end of the outer iteration.
//
// CA-PCG is the most robust s-step method in the paper's Table 2, but it
// needs 2s−1 matrix-vector products and preconditioner applications per s
// steps (vs. s for PCG/sPCG/CA-PCG3), which Table 3 and Figure 1 show makes
// it slower than standard PCG even with a cheap Jacobi preconditioner.
func CAPCG(a *sparse.CSR, m precond.Interface, b []float64, opts Options) ([]float64, *Stats, error) {
	opts = opts.withDefaults()
	stats := &Stats{}
	c, err := newCtx(a, m, &opts, stats)
	if err != nil {
		return nil, nil, err
	}
	n := c.n
	if len(b) != n {
		return nil, nil, fmt.Errorf("%w: len(b)=%d, n=%d", ErrDimension, len(b), n)
	}
	s := opts.S
	params, err := resolveBasis(a, c.m, &opts)
	if err != nil {
		return nil, nil, err
	}
	x := make([]float64, n)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return nil, nil, fmt.Errorf("%w: len(x0)=%d, n=%d", ErrDimension, len(opts.X0), n)
		}
		copy(x, opts.X0)
	}

	dim := 2*s + 1
	r := make([]float64, n)
	u := make([]float64, n)
	q := make([]float64, n)
	p := make([]float64, n)
	scratch := make([]float64, n)

	// Basis blocks: Y = [Q | R̂], Z = [Pz | Uz] (full-width preconditioned).
	qBlock := vec.NewBlock(n, s+1)
	pBlock := vec.NewBlock(n, s+1)
	rBlock := vec.NewBlock(n, s)
	uBlock := vec.NewBlock(n, s)
	y := &vec.Block{N: n, Cols: append(append([][]float64{}, qBlock.Cols...), rBlock.Cols...)}
	z := &vec.Block{N: n, Cols: append(append([][]float64{}, pBlock.Cols...), uBlock.Cols...)}

	// Change-of-basis matrix for the inner iterations: A·Z̲ = Y·B.
	bMat := params.CAPCGChangeOfBasis(s)

	// r⁰ = b − A·x⁰, u⁰ = M⁻¹r⁰, q⁰ = r⁰, p⁰ = u⁰.
	c.spmv(r, x)
	vec.Sub(r, b, r)
	c.tr.VectorOp(float64(n), 24*float64(n))
	c.applyM(u, r)
	copy(q, r)
	copy(p, u)

	// Small coefficient vectors in the changed basis.
	pc := make([]float64, dim)
	rc := make([]float64, dim)
	xc := make([]float64, dim)
	bp := make([]float64, dim)
	gv := make([]float64, dim)

	var ck *checker
	maxOuter := (opts.MaxIterations + s - 1) / s

	for k := 0; k <= maxOuter; k++ {
		if c.cancelled() {
			return finishCancelled(c, a, b, x, opts, stats)
		}
		// Convergence check at the block boundary.
		rho := c.localDot(r, u)
		if !finite(rho) || rho < 0 {
			stats.Breakdown = fmt.Errorf("%w: rᵀM⁻¹r = %v at outer iteration %d", ErrBreakdown, rho, k)
			break
		}
		var critVal float64
		switch opts.Criterion {
		case TrueResidual2Norm:
			critVal = c.trueResidualNorm(b, x, scratch)
		case RecursiveResidual2Norm:
			critVal = math.Sqrt(c.localDot(r, r))
		case RecursiveResidualMNorm:
			critVal = math.Sqrt(rho)
		}
		if ck == nil {
			ck = newChecker(opts, critVal, stats)
		}
		if ck.done(critVal) {
			stats.Converged = true
			break
		}
		if k == maxOuter || k*s >= opts.MaxIterations {
			break
		}

		// Basis generation: Q from q (degree s, s MVs + s precs since p⁰ is
		// known), R̂ from r (degree s−1, s−1 MVs + s−1 precs since u⁰ is
		// known). Total 2s−1 of each, matching Table 1.
		if err := mpk.Compute(mpkOp{c}, mpkPrec{c}, params, q, p, qBlock, pBlock); err != nil {
			stats.Breakdown = fmt.Errorf("%w: Q-block MPK: %v", ErrBreakdown, err)
			break
		}
		if s >= 2 {
			if err := mpk.Compute(mpkOp{c}, mpkPrec{c}, params, r, u, rBlock, uBlock); err != nil {
				stats.Breakdown = fmt.Errorf("%w: R-block MPK: %v", ErrBreakdown, err)
				break
			}
		} else {
			vec.Copy(rBlock.Col(0), r)
			vec.Copy(uBlock.Col(0), u)
		}

		// Gram matrix G = ZᵀY: the single global reduction of the outer
		// iteration (payload (2s+1)², +1 when the 2-norm criterion is fused).
		g := dense.FromRowMajor(dim, dim, c.gramLocal(z, y))
		payload := dim * dim
		if opts.Criterion == RecursiveResidual2Norm {
			payload++
		}
		c.allreduce(payload)

		// Inner loop on (2s+1)-vectors: exact PCG arithmetic in the basis.
		for i := range pc {
			pc[i], rc[i], xc[i] = 0, 0, 0
		}
		pc[0] = 1
		rc[s+1] = 1
		rGr := quadForm(g, rc, gv) // r'ᵀGr'
		broke := false
		for j := 0; j < s; j++ {
			matVec(bMat, pc, bp) // B·p'
			den := bilinear(g, pc, bp, gv)
			if !finite(den, rGr) || den <= 0 {
				stats.Breakdown = fmt.Errorf("%w: p'ᵀGBp' = %v at iteration %d", ErrBreakdown, den, k*s+j)
				broke = true
				break
			}
			alpha := rGr / den
			for i := range xc {
				xc[i] += alpha * pc[i]
				rc[i] -= alpha * bp[i]
			}
			rGrNew := quadForm(g, rc, gv)
			if !finite(rGrNew) || rGrNew < 0 {
				stats.Breakdown = fmt.Errorf("%w: r'ᵀGr' = %v at iteration %d", ErrBreakdown, rGrNew, k*s+j)
				broke = true
				break
			}
			beta := rGrNew / rGr
			rGr = rGrNew
			for i := range pc {
				pc[i] = rc[i] + beta*pc[i]
			}
		}
		// O(s³) scalar work per outer iteration, negligible next to O(sn):
		// charged as one lump.
		c.tr.VectorOp(float64(8*s*dim*dim), float64(8*s*dim*dim))

		// Recovery: q = Y·p', r = Y·r', p = Z·p', u = Z·r', x += Z·x'
		// (the O(sn) cost the paper credits CA-PCG's local work advantage to).
		c.blockMulVec(q, y, pc)
		c.blockMulVec(r, y, rc)
		c.blockMulVec(p, z, pc)
		c.blockMulVec(u, z, rc)
		c.blockMulVecAdd(x, z, xc)

		stats.OuterIterations = k + 1
		stats.Iterations = (k + 1) * s
		if broke || !finite(r[0]) {
			if stats.Breakdown == nil {
				stats.Breakdown = fmt.Errorf("%w: residual diverged at outer iteration %d", ErrBreakdown, k)
			}
			break
		}
	}
	return finishRun(c, a, b, x, opts, stats), stats, nil
}

// matVec computes dst = M·v for a small dense matrix.
func matVec(m *dense.Mat, v, dst []float64) {
	for i := 0; i < m.R; i++ {
		var sum float64
		row := m.Data[i*m.C : (i+1)*m.C]
		for j, vj := range v {
			sum += row[j] * vj
		}
		dst[i] = sum
	}
}

// quadForm computes vᵀGv using tmp as scratch.
func quadForm(g *dense.Mat, v, tmp []float64) float64 {
	matVec(g, v, tmp)
	var sum float64
	for i, vi := range v {
		sum += vi * tmp[i]
	}
	return sum
}

// bilinear computes aᵀGb using tmp as scratch.
func bilinear(g *dense.Mat, a, b, tmp []float64) float64 {
	matVec(g, b, tmp)
	var sum float64
	for i, ai := range a {
		sum += ai * tmp[i]
	}
	return sum
}
