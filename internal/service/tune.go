package service

import (
	"fmt"
	"sync"
	"time"

	"spcg/internal/basis"
	"spcg/internal/precond"
	"spcg/internal/resilience"
	"spcg/internal/solver"
	"spcg/internal/sparse"
	"spcg/internal/tune"
)

// tuneState is the server's autotuning layer: the persistent decision store
// plus in-flight background-tune deduplication.
type tuneState struct {
	store *tune.Store
	cfg   tune.Config

	mu       sync.Mutex
	inflight map[uint64]bool
}

// newTuneState wires the store from Config. A store that fails to open falls
// back to memory-only so the daemon still serves (the error is surfaced via
// spcgd_tune_store_errors_total); operators who want open failures to be
// fatal open the store themselves and pass Config.TuneStore.
func newTuneState(cfg Config, met *metrics) *tuneState {
	t := &tuneState{
		store:    cfg.TuneStore,
		inflight: map[uint64]bool{},
		cfg: tune.Config{
			ProbeIters: cfg.TuneProbeIters,
			Rounds:     cfg.TuneRounds,
		},
	}
	if t.store == nil {
		st, err := tune.OpenStore(cfg.TunePath, cfg.TuneEntries)
		if err != nil {
			met.tuneStoreErrors.Inc()
			st, _ = tune.OpenStore("", cfg.TuneEntries)
		}
		t.store = st
	}
	return t
}

// resolveAuto maps a method:"auto" request onto a concrete configuration.
// Warm path: the stored winner (or the best-ranked fallback whose circuit
// breaker currently admits requests). Cold path: the static seeder's best
// model-ranked guess serves this request immediately while trials run in the
// background; the tuned decision lands in the store for every later request.
func (s *Server) resolveAuto(a *sparse.CSR, fp uint64, req SolveRequest) (SolveRequest, string, *tune.Candidate) {
	s.met.tuneRequests.Inc()
	if d, ok := s.tuner.store.Get(fp); ok {
		s.met.tuneStoreHits.Inc()
		cands := make([]tune.Candidate, 0, len(d.Ranked))
		for _, rc := range d.Ranked {
			cands = append(cands, rc.Candidate)
		}
		c := s.pickAllowed(fp, cands)
		return applyCandidate(req, c), "store", &c
	}
	s.met.tuneStoreMisses.Inc()
	plan, err := tune.Seed(a, s.tuner.cfg)
	if err != nil {
		// Spectral probe failed (e.g. the operator is barely SPD): serve the
		// paper's safe floor rather than failing the request.
		c := tune.Candidate{Method: "pcg", Precond: "jacobi"}
		return applyCandidate(req, c), "fallback", &c
	}
	c := s.pickAllowed(fp, plan.Candidates)
	s.startBackgroundTune(a, fp, req.Matrix, plan)
	return applyCandidate(req, c), "seed", &c
}

// applyCandidate overwrites the request's solver configuration with the
// tuner's choice; everything else (tol, deadline, rhs, trace) stays the
// caller's.
func applyCandidate(req SolveRequest, c tune.Candidate) SolveRequest {
	req.Method = c.Method
	req.S = c.S
	req.Basis = c.Basis
	req.Precond = c.Precond
	return req
}

// pickAllowed returns the first candidate whose circuit breaker currently
// admits requests, using the non-mutating Peek so that ranking candidates
// never consumes a half-open probe slot. When every candidate is denied the
// ungated PCG floor is served.
func (s *Server) pickAllowed(fp uint64, cands []tune.Candidate) tune.Candidate {
	now := time.Now()
	for _, c := range cands {
		if s.breakers == nil {
			return c
		}
		if _, gated := degradeNext[c.Method]; !gated {
			return c // pcg, pcg3, pipelined: never breaker-gated
		}
		sVal := c.S
		if sVal <= 0 {
			sVal = 10
		}
		if s.breakers.Peek(resilience.Key{Fingerprint: fp, Method: c.Method, S: sVal}, now) {
			return c
		}
	}
	return tune.Candidate{Method: "pcg", Precond: "jacobi"}
}

// startBackgroundTune launches the trial schedule for fp unless one is
// already running or the server is draining. The goroutine is tracked by
// s.bg so Shutdown waits for it; probes observe the base context and unwind
// promptly on a forced shutdown.
func (s *Server) startBackgroundTune(a *sparse.CSR, fp uint64, matrix string, plan *tune.Plan) {
	s.tuner.mu.Lock()
	if s.tuner.inflight[fp] {
		s.tuner.mu.Unlock()
		return
	}
	s.tuner.inflight[fp] = true
	s.tuner.mu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.clearInflight(fp)
		return
	}
	s.bg.Add(1)
	s.mu.Unlock()

	go func() {
		// Safe is the goroutine's first statement so the guard covers the
		// cleanup defers too; they run during the unwind before recover.
		if err := resilience.Safe(func() {
			defer s.bg.Done()
			defer s.clearInflight(fp)
			s.runTrials(a, fp, matrix, plan)
		}); err != nil {
			s.met.panics.Inc()
		}
	}()
}

func (s *Server) clearInflight(fp uint64) {
	s.tuner.mu.Lock()
	delete(s.tuner.inflight, fp)
	s.tuner.mu.Unlock()
}

// runTrials executes the successive-halving schedule and persists the
// decision.
func (s *Server) runTrials(a *sparse.CSR, fp uint64, matrix string, plan *tune.Plan) {
	d, err := tune.Run(plan, &cacheRunner{s: s, a: a, fp: fp}, s.tuner.cfg)
	if err != nil {
		return // all candidates eliminated or shutdown mid-trials; nothing to store
	}
	d.Matrix = matrix
	s.stampFormat(a, fp, d)
	s.met.tuneRuns.Inc()
	if err := s.tuner.store.Put(d); err != nil {
		s.met.tuneStoreErrors.Inc()
	}
}

// stampFormat records the storage combo the trials actually ran on into the
// decision's candidates (they carried Format "" → the selector's pick), so
// a stored winner replays on exactly the storage it was measured with, even
// if the format cache has since evicted the entry and a re-probe on a noisy
// machine would decide differently.
func (s *Server) stampFormat(a *sparse.CSR, fp uint64, d *tune.Decision) {
	name := s.formats.resolve(a, fp, "").name
	if d.Winner.Format == "" {
		d.Winner.Format = name
	}
	for i := range d.Ranked {
		if d.Ranked[i].Candidate.Format == "" {
			d.Ranked[i].Candidate.Format = name
		}
	}
}

// TuneNow forces a full synchronous tuning run for a registered matrix (the
// POST /tune path) and returns the persisted decision.
func (s *Server) TuneNow(matrix string) (*tune.Decision, error) {
	if s.Draining() {
		return nil, ErrShuttingDown
	}
	if err := s.reg.sizeCheck(matrix); err != nil {
		return nil, err
	}
	a, fp, err := s.reg.get(matrix)
	if err != nil {
		return nil, err
	}
	plan, err := tune.Seed(a, s.tuner.cfg)
	if err != nil {
		return nil, err
	}
	d, err := tune.Run(plan, &cacheRunner{s: s, a: a, fp: fp}, s.tuner.cfg)
	if err != nil {
		return nil, err
	}
	d.Matrix = matrix
	s.stampFormat(a, fp, d)
	s.met.tuneRuns.Inc()
	if err := s.tuner.store.Put(d); err != nil {
		s.met.tuneStoreErrors.Inc()
		return d, fmt.Errorf("tuned, but persisting failed: %w", err)
	}
	return d, nil
}

// TuneDecision returns the stored decision for a registered matrix, if any.
func (s *Server) TuneDecision(matrix string) (*tune.Decision, error) {
	if err := s.reg.sizeCheck(matrix); err != nil {
		return nil, err
	}
	_, fp, err := s.reg.get(matrix)
	if err != nil {
		return nil, err
	}
	d, ok := s.tuner.store.Get(fp)
	if !ok {
		return nil, nil
	}
	return d, nil
}

// cacheRunner is the service's tune.Runner: probes share the daemon's setup
// cache, so trial solves reuse (and warm) the same preconditioners and
// spectral estimates production requests hit.
type cacheRunner struct {
	s  *Server
	a  *sparse.CSR
	fp uint64
}

func (r *cacheRunner) Probe(c tune.Candidate, maxIters int, tol float64) tune.Outcome {
	r.s.met.tuneTrials.Inc()
	solve, ok := solver.ByName(c.Method)
	if !ok {
		return tune.Outcome{Err: fmt.Sprintf("unknown method %q", c.Method)}
	}
	spec, err := precond.Parse(c.Precond)
	if err != nil {
		return tune.Outcome{Err: err.Error()}
	}
	// Probes run through the format engine so trial timings measure the
	// exact storage the served path will use; a candidate with a pinned
	// Format probes that combo instead of the selector's pick.
	plan := r.s.formats.resolve(r.a, r.fp, c.Format)
	a := plan.mat
	entry, _ := r.s.cache.get(setupKey{fp: r.fp, prec: spec.Canonical(), order: plan.order()})
	m, err := entry.preconditioner(a, spec)
	if err != nil {
		return tune.Outcome{Err: err.Error()}
	}
	opts := solver.Options{
		S:             c.S,
		Tol:           tol,
		MaxIterations: maxIters,
		Cancel:        r.s.baseCtx.Done(),
		Basis:         basis.Chebyshev,
		Operator:      plan.op,
	}
	if c.Basis != "" {
		t, err := basis.ParseType(c.Basis)
		if err != nil {
			return tune.Outcome{Err: err.Error()}
		}
		opts.Basis = t
	}
	if solver.NeedsSpectrum(c.Method) && opts.Basis != basis.Monomial {
		sVal := c.S
		if sVal <= 0 {
			sVal = 10
		}
		if est, err := entry.spectrumFor(a, spec, sVal); err == nil {
			opts.Spectrum = est
		}
	}
	b, err := buildRHS("", a.Dim())
	if err != nil {
		return tune.Outcome{Err: err.Error()}
	}
	if plan.perm != nil {
		b = sparse.PermuteVec(b, plan.perm)
	}
	t0 := time.Now()
	_, stats, err := solve(a, m, b, opts)
	o := tune.ProbeOutcome(stats, err, time.Since(t0))
	if o.Breakdown != "" {
		r.s.met.tuneBreakdowns.Inc()
	}
	return o
}
