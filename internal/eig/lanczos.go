package eig

import (
	"errors"
	"fmt"
	"math"

	"spcg/internal/dense"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// RitzPairs holds approximate eigenpairs of (M⁻¹)A from a Lanczos process.
type RitzPairs struct {
	// Values are the Ritz values, ascending.
	Values []float64
	// Vectors holds the corresponding Ritz vectors as columns.
	Vectors *vec.Block
	// Residuals[i] estimates ‖A·v_i − λ_i·v_i‖ via the standard Lanczos
	// bottom-entry bound β_m·|y_m,i|.
	Residuals []float64
}

// Lanczos runs m iterations of the symmetric Lanczos process on A (plain,
// un-preconditioned) with full reorthogonalization and returns the k extreme
// Ritz pairs from the requested end of the spectrum (smallest if lowest is
// true). Full reorthogonalization costs O(m²n) but keeps the basis
// numerically orthonormal, so the Ritz vectors are usable for deflation
// (solver.DeflatedPCG) — the use case of paper ref. [4].
func Lanczos(a *sparse.CSR, m, k int, lowest bool, seed int64) (*RitzPairs, error) {
	n := a.Dim()
	if m < 1 || m > n {
		return nil, fmt.Errorf("eig: Lanczos steps %d out of range 1..%d", m, n)
	}
	if k < 1 || k > m {
		return nil, fmt.Errorf("eig: Lanczos wants %d pairs from %d steps", k, m)
	}
	// Deterministic pseudo-random start vector.
	v := make([]float64, n)
	state := uint64(seed)*2862933555777941757 + 3037000493
	for i := range v {
		state = state*2862933555777941757 + 3037000493
		v[i] = float64(int64(state>>11))/(1<<52) - 1
	}
	nrm := vec.Norm2(v)
	if nrm == 0 {
		return nil, errors.New("eig: zero start vector")
	}
	vec.Scale(1/nrm, v)

	basisV := vec.NewBlock(n, m)
	alpha := make([]float64, 0, m)
	beta := make([]float64, 0, m)
	w := make([]float64, n)

	copy(basisV.Col(0), v)
	steps := 0
	finalBeta := 0.0 // ‖w‖ after the last executed step: the restart residual
	for j := 0; j < m; j++ {
		a.MulVec(w, basisV.Col(j))
		if j > 0 {
			vec.Axpy(-beta[j-1], basisV.Col(j-1), w)
		}
		al := vec.Dot(w, basisV.Col(j))
		alpha = append(alpha, al)
		vec.Axpy(-al, basisV.Col(j), w)
		// Full reorthogonalization (twice is enough).
		for pass := 0; pass < 2; pass++ {
			for i := 0; i <= j; i++ {
				c := vec.Dot(w, basisV.Col(i))
				vec.Axpy(-c, basisV.Col(i), w)
			}
		}
		steps = j + 1
		bnorm := vec.Norm2(w)
		finalBeta = bnorm
		if j+1 < m {
			if bnorm < 1e-14 {
				break // invariant subspace found
			}
			beta = append(beta, bnorm)
			vec.ScaleInto(basisV.Col(j+1), 1/bnorm, w)
		}
	}

	// Solve the tridiagonal eigenproblem with vectors.
	tm := dense.NewMat(steps, steps)
	for i := 0; i < steps; i++ {
		tm.Set(i, i, alpha[i])
		if i+1 < steps {
			tm.Set(i, i+1, beta[i])
			tm.Set(i+1, i, beta[i])
		}
	}
	vals, y, err := dense.SymEigenVec(tm)
	if err != nil {
		return nil, err
	}
	if k > steps {
		k = steps
	}
	// Pick indices from the requested end (vals ascending).
	idx := make([]int, k)
	for i := 0; i < k; i++ {
		if lowest {
			idx[i] = i
		} else {
			idx[i] = steps - k + i
		}
	}
	out := &RitzPairs{
		Values:    make([]float64, k),
		Vectors:   vec.NewBlock(n, k),
		Residuals: make([]float64, k),
	}
	coef := make([]float64, steps)
	for c, id := range idx {
		out.Values[c] = vals[id]
		for i := 0; i < steps; i++ {
			coef[i] = y.At(i, id)
		}
		basisV.View(0, steps).MulVec(out.Vectors.Col(c), coef)
		out.Residuals[c] = math.Abs(finalBeta * y.At(steps-1, id))
	}
	return out, nil
}
