// Package fault is the seeded fault-injection substrate for the resilience
// layer: it produces the three system-level failure modes that the paper's
// s-step methods are most exposed to on large machines (see PAPERS.md,
// arXiv:2501.03743) — soft errors (silent data corruption of SpMV outputs or
// vectors), transient communication failures (dropped halo messages, failed
// allreduce attempts), and straggler ranks — all reproducible from a single
// seed. It substitutes for the fault-tolerance machinery an MPI run would get
// from ULFM/checkpoint libraries (see DESIGN.md, "Substitutions").
//
// A nil *Injector is valid and injects nothing, so fault injection is
// strictly opt-in: every consumer guards with the nil receiver, and the
// zero-cost disabled path is byte-identical to a build without this package.
//
// The Injector is safe for concurrent use (the spmd runtime draws from all
// ranks at once); determinism of the *stream* is guaranteed only for
// deterministic call orders, which sequential solvers have and the spmd
// collectives enforce per rank.
package fault

import (
	"fmt"
	"math"
	"sync"
)

// Config selects which faults the Injector produces and how severe they are.
// The zero value injects nothing.
type Config struct {
	// SpMVCorruptProb is the per-SpMV probability that one output element is
	// silently corrupted (a soft error striking the multiply).
	SpMVCorruptProb float64
	// VectorCorruptProb is the per-call probability used by CorruptVector for
	// faults injected into solver state vectors directly.
	VectorCorruptProb float64
	// CorruptMagnitude scales additive perturbations: the victim element v
	// becomes v ± CorruptMagnitude·(1+|v|). Default 1e4 — large enough to be
	// detectable, small enough not to overflow. Ignored when BitFlip is set.
	CorruptMagnitude float64
	// BitFlip, when true, flips bit Bit of the victim element's IEEE-754
	// representation instead of perturbing additively — the classic silent
	// data corruption model.
	BitFlip bool
	// Bit is the bit index flipped by BitFlip (0 = mantissa LSB, 52–62 =
	// exponent). Default 54: multiplies the value by 2^±4.
	Bit int
	// DropSendProb is the per-attempt probability that a point-to-point
	// message is lost in transit and must be resent (spmd.FaultHook).
	DropSendProb float64
	// AllreduceFailProb is the per-attempt probability that a rank's
	// collective participation fails transiently (spmd.FaultHook).
	AllreduceFailProb float64
}

func (c Config) withDefaults() Config {
	if c.CorruptMagnitude <= 0 {
		c.CorruptMagnitude = 1e4
	}
	if c.Bit <= 0 || c.Bit > 62 {
		c.Bit = 54
	}
	return c
}

// Counts reports what an Injector actually injected.
type Counts struct {
	// SpMVCorruptions and VectorCorruptions count injected soft errors.
	SpMVCorruptions, VectorCorruptions int
	// DroppedSends and FailedAllreduces count transient communication
	// failures (each forces one retry at the runtime layer).
	DroppedSends, FailedAllreduces int
}

// Total returns the total number of injected faults of all kinds.
func (c Counts) Total() int {
	return c.SpMVCorruptions + c.VectorCorruptions + c.DroppedSends + c.FailedAllreduces
}

// Injector draws faults from a seeded splitmix64 stream. Create with New;
// nil is valid and injects nothing.
type Injector struct {
	mu     sync.Mutex
	cfg    Config
	state  uint64
	counts Counts
}

// New returns an Injector whose entire fault stream is determined by seed.
func New(seed uint64, cfg Config) *Injector {
	return &Injector{cfg: cfg.withDefaults(), state: seed}
}

// next advances the splitmix64 state.
func (in *Injector) next() uint64 {
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit returns the next draw in [0, 1).
func (in *Injector) unit() float64 { return float64(in.next()>>11) / (1 << 53) }

// corrupt applies one soft error to v (assumed non-empty): either a bit flip
// or an additive perturbation at a pseudo-random index.
func (in *Injector) corrupt(v []float64) {
	idx := int(in.next() % uint64(len(v)))
	if in.cfg.BitFlip {
		bits := math.Float64bits(v[idx]) ^ (1 << uint(in.cfg.Bit))
		v[idx] = math.Float64frombits(bits)
		return
	}
	mag := in.cfg.CorruptMagnitude * (1 + math.Abs(v[idx]))
	if in.next()&1 == 0 {
		mag = -mag
	}
	v[idx] += mag
}

// CorruptSpMV possibly injects one soft error into an SpMV output vector and
// reports whether it did. Nil-safe.
func (in *Injector) CorruptSpMV(v []float64) bool {
	if in == nil || len(v) == 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.SpMVCorruptProb <= 0 || in.unit() >= in.cfg.SpMVCorruptProb {
		return false
	}
	in.corrupt(v)
	in.counts.SpMVCorruptions++
	return true
}

// CorruptVector possibly injects one soft error into a solver state vector
// and reports whether it did. Nil-safe.
func (in *Injector) CorruptVector(v []float64) bool {
	if in == nil || len(v) == 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.VectorCorruptProb <= 0 || in.unit() >= in.cfg.VectorCorruptProb {
		return false
	}
	in.corrupt(v)
	in.counts.VectorCorruptions++
	return true
}

// DropSend reports whether the attempt-th transmission of a message from
// rank `from` to rank `to` is lost in transit. Implements spmd.FaultHook.
// Nil-safe.
func (in *Injector) DropSend(from, to, attempt int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.DropSendProb <= 0 || in.unit() >= in.cfg.DropSendProb {
		return false
	}
	in.counts.DroppedSends++
	return true
}

// FailAllreduce reports whether rank's attempt-th participation in a
// collective fails transiently. Implements spmd.FaultHook. Nil-safe.
func (in *Injector) FailAllreduce(rank, attempt int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.AllreduceFailProb <= 0 || in.unit() >= in.cfg.AllreduceFailProb {
		return false
	}
	in.counts.FailedAllreduces++
	return true
}

// Counts returns a snapshot of everything injected so far. Nil-safe.
func (in *Injector) Counts() Counts {
	if in == nil {
		return Counts{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// String summarizes the injected faults.
func (in *Injector) String() string {
	c := in.Counts()
	return fmt.Sprintf("fault.Injector(spmv=%d vector=%d drops=%d collectives=%d)",
		c.SpMVCorruptions, c.VectorCorruptions, c.DroppedSends, c.FailedAllreduces)
}
