package vec

import (
	"runtime"
	"sync"
)

// parallelThreshold is the minimum slice length at which the parallel kernel
// variants fan out to goroutines; below it the sequential kernels win because
// of spawn/synchronization overhead.
const parallelThreshold = 1 << 15

// maxWorkers bounds goroutine fan-out for the parallel kernels.
var maxWorkers = runtime.GOMAXPROCS(0)

// SetMaxWorkers overrides the worker count used by the Par* kernels
// (0 restores the GOMAXPROCS default). It returns the previous value.
// Intended for benchmarks that sweep shared-memory parallelism.
func SetMaxWorkers(w int) int {
	prev := maxWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	maxWorkers = w
	return prev
}

// parallelFor splits [0,n) into at most maxWorkers contiguous chunks and runs
// body(lo,hi) on each concurrently. body must only touch indexes in [lo,hi).
func parallelFor(n int, body func(lo, hi int)) {
	workers := maxWorkers
	if n < parallelThreshold || workers <= 1 {
		body(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParDot is Dot with goroutine parallelism for large vectors. The partial
// sums are combined in chunk order so the result is deterministic for a fixed
// worker count.
func ParDot(a, b []float64) float64 {
	n := len(a)
	if len(b) != n {
		panic("vec: ParDot length mismatch")
	}
	if n < parallelThreshold || maxWorkers <= 1 {
		return Dot(a, b)
	}
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	partials := make([]float64, (n+chunk-1)/chunk)
	var wg sync.WaitGroup
	for k, lo := 0, 0; lo < n; k, lo = k+1, lo+chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			partials[k] = Dot(a[lo:hi], b[lo:hi])
		}(k, lo, hi)
	}
	wg.Wait()
	var s float64
	for _, p := range partials {
		s += p
	}
	return s
}

// ParAxpy is Axpy with goroutine parallelism for large vectors.
func ParAxpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("vec: ParAxpy length mismatch")
	}
	parallelFor(len(x), func(lo, hi int) {
		Axpy(alpha, x[lo:hi], y[lo:hi])
	})
}

// ParAddMul is AddMul with row-range goroutine parallelism.
func ParAddMul(dst, y, x *Block, c []float64) {
	sx, sd := x.S(), dst.S()
	if y.S() != sd || len(c) != sx*sd || y.N != x.N || dst.N != x.N {
		panic("vec: ParAddMul shape mismatch")
	}
	parallelFor(x.N, func(lo, hi int) {
		for j := 0; j < sd; j++ {
			d, yc := dst.Cols[j][lo:hi], y.Cols[j][lo:hi]
			if &d[0] != &yc[0] {
				copy(d, yc)
			}
			for i := 0; i < sx; i++ {
				Axpy(c[i*sd+j], x.Cols[i][lo:hi], d)
			}
		}
	})
}
