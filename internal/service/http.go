package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"spcg/internal/obs"
)

// route is one served pattern. Handler registers exactly this table, and the
// docs-coverage test asserts every pattern is documented in docs/API.md, so
// the two cannot drift.
type route struct {
	pattern string
	handler func(*Server) http.HandlerFunc
}

var routes = []route{
	{"POST /solve", func(s *Server) http.HandlerFunc { return s.handleSolve }},
	{"GET /jobs/{id}", func(s *Server) http.HandlerFunc { return s.handleJobGet }},
	{"POST /jobs/{id}/cancel", func(s *Server) http.HandlerFunc { return s.handleJobCancel }},
	{"GET /matrices", func(s *Server) http.HandlerFunc { return s.handleMatrices }},
	{"POST /tune", func(s *Server) http.HandlerFunc { return s.handleTune }},
	{"GET /tune/{matrix}", func(s *Server) http.HandlerFunc { return s.handleTuneGet }},
	{"GET /affinity/{matrix}", func(s *Server) http.HandlerFunc { return s.handleAffinity }},
	{"GET /metrics", func(s *Server) http.HandlerFunc { return s.handleMetrics }},
	{"GET /healthz", func(s *Server) http.HandlerFunc { return s.handleHealthz }},
}

// Routes lists the served "METHOD /path" patterns (docs-coverage test).
func Routes() []string {
	out := make([]string, len(routes))
	for i, r := range routes {
		out[i] = r.pattern
	}
	return out
}

// Handler returns the service's HTTP mux; see docs/API.md for the surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range routes {
		mux.HandleFunc(r.pattern, r.handler(s))
	}
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			// Load shedding: tell well-behaved clients when to come back.
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		case errors.Is(err, ErrShuttingDown):
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		}
		return
	}
	if req.Async {
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}
	// Sync path: wait for the job, but stop waiting if the client goes away
	// (the job itself keeps its own deadline).
	select {
	case <-j.done:
	case <-r.Context().Done():
		writeJSON(w, http.StatusRequestTimeout, j.status())
		return
	}
	st := j.status()
	switch st.State {
	case JobDone:
		writeJSON(w, http.StatusOK, st)
	case JobCancelled, JobStagnated:
		writeJSON(w, http.StatusGatewayTimeout, st)
	default:
		writeJSON(w, http.StatusInternalServerError, st)
	}
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleMatrices(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"matrices": s.Matrices()})
}

// handleTune forces a full synchronous tuning run: seed, trials, persist,
// return the decision. The run blocks the request (trial probes are capped,
// so this is seconds, not a full solve campaign).
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Matrix string `json:"matrix"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Matrix == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing matrix"})
		return
	}
	d, err := s.TuneNow(req.Matrix)
	switch {
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case err != nil && d == nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	case err != nil:
		// Tuned but not persisted: the decision is still usable this process.
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusOK, d)
	}
}

// handleTuneGet serves the stored decision for a matrix, 404 when untuned.
func (s *Server) handleTuneGet(w http.ResponseWriter, r *http.Request) {
	d, err := s.TuneDecision(r.PathValue("matrix"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if d == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "matrix not tuned"})
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// handleAffinity resolves a matrix name to its content fingerprint — the
// routing key the spcggw gateway consistent-hashes. The first call for a
// matrix builds it (warming the registry entry); repeats are a map lookup.
// The fingerprint is serialized as a decimal string: it is a full uint64,
// which JSON numbers cannot carry exactly.
func (s *Server) handleAffinity(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("matrix")
	a, fp, err := s.reg.get(name)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"matrix":      name,
		"fingerprint": strconv.FormatUint(fp, 10),
		"n":           a.N,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.Metrics())
		return
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	s.Registry().WritePrometheus(w)
}

// handleHealthz serves the health state machine: 200 while healthy or
// degraded (degraded still serves traffic — clients read the body to learn
// about open breakers and shedding), 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	hs := s.HealthSnapshot()
	code := http.StatusOK
	if hs.Status == "draining" {
		w.Header().Set("Retry-After", "1")
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, hs)
}
