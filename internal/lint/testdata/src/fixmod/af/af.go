// Package af exercises allocfree: AxpyFused allocates inside its loop and is
// flagged; ScaleFused hoists scratch before the loop; assemble is not a
// fused kernel, so its loop allocations are out of scope.
package af

// AxpyFused allocates per iteration — flagged on the make and the append.
func AxpyFused(x []float64, rounds int) []float64 {
	var out []float64
	for r := 0; r < rounds; r++ {
		tmp := make([]float64, len(x))
		copy(tmp, x)
		out = append(out, tmp...)
	}
	return out
}

// ScaleFused sizes its scratch before the loop — clean.
func ScaleFused(x []float64, a float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = a * v
	}
	return out
}

// assemble allocates in a loop but is not a fused kernel.
func assemble(n int) [][]float64 {
	var rows [][]float64
	for i := 0; i < n; i++ {
		rows = append(rows, make([]float64, n))
	}
	return rows
}
