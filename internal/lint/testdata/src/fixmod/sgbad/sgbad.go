// Package sgbad spawns goroutines in all three rejected shapes: a direct
// call, an unguarded literal, and a literal whose guard is not first.
package sgbad

import "fixmod/resilience"

// SpawnDirect goes a direct call — nothing can guard its body.
func SpawnDirect(fn func()) {
	go fn()
}

// SpawnUnguarded never installs the guard.
func SpawnUnguarded(fn func()) {
	go func() {
		fn()
	}()
}

// SpawnLate guards, but only after an unguarded first statement.
func SpawnLate(fn func()) {
	go func() {
		work := fn
		_ = resilience.Safe(work)
	}()
}
