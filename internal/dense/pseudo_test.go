package dense

import (
	"math"
	"math/rand"
	"testing"
)

func TestSymEigenVecReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 5, 9} {
		a := randSPD(rng, n)
		vals, v, err := SymEigenVec(a)
		if err != nil {
			t.Fatal(err)
		}
		// A·v_j == λ_j·v_j for every eigenpair.
		for j := 0; j < n; j++ {
			col := make([]float64, n)
			for i := 0; i < n; i++ {
				col[i] = v.At(i, j)
			}
			av := a.MulVec(col)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-vals[j]*col[i]) > 1e-8*(1+math.Abs(vals[j])) {
					t.Fatalf("n=%d eigenpair %d violated at row %d", n, j, i)
				}
			}
		}
		// Eigenvectors orthonormal: VᵀV == I.
		vtv := MatMul(v.T(), v)
		if d := MaxAbsDiff(vtv, Eye(n)); d > 1e-10 {
			t.Fatalf("n=%d VᵀV differs from I by %v", n, d)
		}
		// Ascending order.
		for j := 1; j < n; j++ {
			if vals[j] < vals[j-1] {
				t.Fatal("eigenvalues not ascending")
			}
		}
	}
}

func TestSymEigenVecRejectsNonSquare(t *testing.T) {
	if _, _, err := SymEigenVec(NewMat(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestPseudoSolveSymExactOnSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randSPD(rng, 7)
	xTrue := make([]float64, 7)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	rhs := a.MulVec(xTrue)
	x, err := PseudoSolveSym(a, rhs, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("entry %d: %v vs %v", i, x[i], xTrue[i])
		}
	}
}

func TestPseudoSolveSymTruncatesNullspace(t *testing.T) {
	// Singular matrix diag(1, 0): the rhs component on the null direction
	// must be dropped, not amplified.
	a := NewMat(2, 2)
	a.Set(0, 0, 1)
	x, err := PseudoSolveSym(a, []float64{3, 5}, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || x[1] != 0 {
		t.Fatalf("x = %v, want [3 0]", x)
	}
}

func TestPseudoSolveSymMatMatchesVector(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randSPD(rng, 5)
	b := randMat(rng, 5, 3)
	x, err := PseudoSolveSymMat(a, b, 0) // 0 → default rcond
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		col := make([]float64, 5)
		for i := 0; i < 5; i++ {
			col[i] = b.At(i, c)
		}
		want, err := PseudoSolveSym(a, col, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if math.Abs(x.At(i, c)-want[i]) > 1e-12 {
				t.Fatalf("col %d row %d: %v vs %v", c, i, x.At(i, c), want[i])
			}
		}
	}
}

func TestPseudoSolveShapeErrors(t *testing.T) {
	a := NewMat(2, 2)
	if _, err := PseudoSolveSym(a, []float64{1}, 0); err == nil {
		t.Fatal("bad rhs length accepted")
	}
	if _, err := PseudoSolveSymMat(a, NewMat(3, 2), 0); err == nil {
		t.Fatal("bad rhs rows accepted")
	}
}

func TestSolveSPDUsesCholeskyForSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randSPD(rng, 6)
	xTrue := make([]float64, 6)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	rhs := a.MulVec(xTrue)
	x, err := SolveSPD(a, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatal("SolveSPD wrong")
		}
	}
	// Singular input fails through both paths.
	if _, err := SolveSPD(FromRowMajor(2, 2, []float64{1, 1, 1, 1}), []float64{1, 1}); err == nil {
		t.Fatal("singular accepted")
	}
}
