// This file is on the fixture's exact-parity allowlist: bitwise comparison
// is its purpose, so floatcmp must stay silent here.
package fc

// BitDiffers asserts bitwise inequality, as a parity test would.
func BitDiffers(a, b float64) bool { return a != b }
