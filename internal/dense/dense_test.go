package dense

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, r, c int) *Mat {
	m := NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// randSPD returns BᵀB + n·I, guaranteed SPD.
func randSPD(rng *rand.Rand, n int) *Mat {
	b := randMat(rng, n, n)
	a := MatMul(b.T(), b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At")
	}
	m.Add(1, 2, 1)
	if m.At(1, 2) != 6 {
		t.Fatal("Add")
	}
	tt := m.T()
	if tt.R != 3 || tt.C != 2 || tt.At(2, 1) != 6 {
		t.Fatal("T")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone shares storage")
	}
	id := Eye(3)
	if id.At(0, 0) != 1 || id.At(0, 1) != 0 {
		t.Fatal("Eye")
	}
}

func TestFromRowMajorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRowMajor(2, 2, []float64{1, 2, 3})
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 4, 5)
	if d := MaxAbsDiff(MatMul(Eye(4), a), a); d > 1e-15 {
		t.Fatalf("I·A != A, diff %v", d)
	}
	if d := MaxAbsDiff(MatMul(a, Eye(5)), a); d > 1e-15 {
		t.Fatalf("A·I != A, diff %v", d)
	}
}

func TestMatMulAssociativityQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a, b, c := randMat(r, n, n), randMat(r, n, n), randMat(r, n, n)
		lhs := MatMul(MatMul(a, b), c)
		rhs := MatMul(a, MatMul(b, c))
		return MaxAbsDiff(lhs, rhs) < 1e-9
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRowMajor(2, 2, []float64{1, 2, 3, 4})
	y := a.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestScaleAddMat(t *testing.T) {
	a := FromRowMajor(1, 2, []float64{1, 2})
	a.Scale(2)
	if a.At(0, 0) != 2 || a.At(0, 1) != 4 {
		t.Fatal("Scale")
	}
	a.AddMat(3, FromRowMajor(1, 2, []float64{1, 1}))
	if a.At(0, 0) != 5 || a.At(0, 1) != 7 {
		t.Fatal("AddMat")
	}
}

func TestSymmetrizeIsSymmetric(t *testing.T) {
	a := FromRowMajor(2, 2, []float64{1, 2, 4, 3})
	if a.IsSymmetric(1e-12) {
		t.Fatal("should not be symmetric")
	}
	a.Symmetrize()
	if !a.IsSymmetric(0) {
		t.Fatal("Symmetrize failed")
	}
	if a.At(0, 1) != 3 {
		t.Fatalf("Symmetrize value = %v", a.At(0, 1))
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 12, 25} {
		a := randSPD(rng, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		c, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d Cholesky: %v", n, err)
		}
		if err := c.Solve(b); err != nil {
			t.Fatal(err)
		}
		for i := range b {
			if math.Abs(b[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("n=%d Cholesky solve error at %d: %v vs %v", n, i, b[i], xTrue[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRowMajor(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
	if _, err := Cholesky(FromRowMajor(2, 3, make([]float64, 6))); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestCholeskySolveMat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randSPD(rng, 6)
	x := randMat(rng, 6, 3)
	b := MatMul(a, x)
	c, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SolveMat(b); err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(b, x); d > 1e-8 {
		t.Fatalf("SolveMat diff = %v", d)
	}
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 7, 15} {
		a := randMat(rng, n, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-7 {
				t.Fatalf("n=%d LU solve error at %d", n, i)
			}
		}
	}
}

func TestLUPivotingNeeded(t *testing.T) {
	// Zero in the (0,0) position requires a row swap.
	a := FromRowMajor(2, 2, []float64{0, 1, 1, 0})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("x = %v", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRowMajor(2, 2, []float64{1, 2, 2, 4})
	if _, err := LUFactor(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if _, err := LUFactor(NewMat(2, 2)); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero matrix err = %v, want ErrSingular", err)
	}
}

func TestLUDetInverse(t *testing.T) {
	a := FromRowMajor(2, 2, []float64{4, 7, 2, 6})
	f, err := LUFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-10) > 1e-12 {
		t.Fatalf("Det = %v, want 10", d)
	}
	inv := f.Inverse()
	if d := MaxAbsDiff(MatMul(a, inv), Eye(2)); d > 1e-12 {
		t.Fatalf("A·A⁻¹ diff = %v", d)
	}
}

func TestSolveSPDFallsBackToLU(t *testing.T) {
	// Symmetric indefinite: Cholesky fails, LU succeeds.
	a := FromRowMajor(2, 2, []float64{1, 2, 2, 1})
	x, err := SolveSPD(a, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestCond1(t *testing.T) {
	if c := Cond1(Eye(4)); math.Abs(c-1) > 1e-12 {
		t.Fatalf("Cond1(I) = %v", c)
	}
	sing := FromRowMajor(2, 2, []float64{1, 1, 1, 1})
	if c := Cond1(sing); !math.IsInf(c, 1) {
		t.Fatalf("Cond1(singular) = %v", c)
	}
}

func TestTridiagEigenKnown(t *testing.T) {
	// T = tridiag(-1, 2, -1) of size n has eigenvalues 2−2cos(kπ/(n+1)).
	n := 10
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = -1
	}
	vals, err := TridiagEigen(d, e)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(vals[k-1]-want) > 1e-10 {
			t.Fatalf("eigenvalue %d = %v, want %v", k, vals[k-1], want)
		}
	}
	// Inputs must be unmodified.
	if d[0] != 2 || e[0] != -1 {
		t.Fatal("TridiagEigen modified inputs")
	}
}

func TestTridiagEigenEdge(t *testing.T) {
	vals, err := TridiagEigen([]float64{7}, nil)
	if err != nil || len(vals) != 1 || vals[0] != 7 {
		t.Fatalf("1×1 = %v, %v", vals, err)
	}
	vals, err = TridiagEigen(nil, nil)
	if err != nil || vals != nil {
		t.Fatalf("empty = %v, %v", vals, err)
	}
	if _, err := TridiagEigen([]float64{1, 2}, nil); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestSymEigenMatchesTridiag(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 8
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = rng.NormFloat64() * 3
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	a := NewMat(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, d[i])
		if i < n-1 {
			a.Set(i, i+1, e[i])
			a.Set(i+1, i, e[i])
		}
	}
	want, err := TridiagEigen(d, e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("eigenvalue %d: Jacobi %v vs QL %v", i, got[i], want[i])
		}
	}
}

func TestSymEigenTraceDetInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := randSPD(rng, n)
		vals, err := SymEigen(a)
		if err != nil {
			return false
		}
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += vals[i]
		}
		return math.Abs(trace-sum) < 1e-8*(1+math.Abs(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCond2SPD(t *testing.T) {
	a := NewMat(2, 2)
	a.Set(0, 0, 100)
	a.Set(1, 1, 1)
	if c := Cond2SPD(a); math.Abs(c-100) > 1e-9 {
		t.Fatalf("Cond2SPD = %v, want 100", c)
	}
	ind := FromRowMajor(2, 2, []float64{1, 2, 2, 1})
	if c := Cond2SPD(ind); !math.IsInf(c, 1) {
		t.Fatalf("Cond2SPD(indefinite) = %v", c)
	}
}

// Property: Cholesky L·Lᵀ reconstructs A.
func TestCholeskyReconstructQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randSPD(rng, n)
		c, err := Cholesky(a)
		if err != nil {
			return false
		}
		l := FromRowMajor(n, n, c.l)
		recon := MatMul(l, l.T())
		return MaxAbsDiff(recon, a) < 1e-8*(1+a.NormFro())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
