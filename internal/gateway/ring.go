package gateway

import (
	"hash/fnv"
	"sort"
	"sync"
)

// ring is a consistent-hash ring over backend names. Each member owns
// vnodes points on a 64-bit circle; a key is served by the first point at or
// after its hash (the "primary"), with the following distinct members as
// failover/spill replicas. The consistent-hashing property the gateway's
// cache-affinity design rests on: when one member leaves, only the keys whose
// replica walk crossed that member's points move — everything else keeps its
// backend, so its setup/format/tune caches stay warm.
type ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	owners map[string]struct{}
}

type ringPoint struct {
	hash  uint64
	owner string
}

func newRing(vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 64
	}
	return &ring{vnodes: vnodes, owners: map[string]struct{}{}}
}

// add inserts a member's vnodes (no-op if already present).
func (r *ring) add(owner string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.owners[owner]; ok {
		return
	}
	r.owners[owner] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(owner, i), owner: owner})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// remove deletes a member's vnodes (no-op if absent).
func (r *ring) remove(owner string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.owners[owner]; !ok {
		return
	}
	delete(r.owners, owner)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.owner != owner {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// members returns the current member count.
func (r *ring) members() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.owners)
}

// lookup returns up to max distinct members for key, primary first, walking
// the circle clockwise. An empty ring returns nil.
func (r *ring) lookup(key uint64, max int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || max < 1 {
		return nil
	}
	if max > len(r.owners) {
		max = len(r.owners)
	}
	h := mix64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, max)
	seen := map[string]struct{}{}
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := seen[p.owner]; ok {
			continue
		}
		seen[p.owner] = struct{}{}
		out = append(out, p.owner)
	}
	return out
}

// shares returns each member's fraction of the circle's arc length — the
// ring-occupancy view exposed at /backends and as spcggw_ring_share.
func (r *ring) shares() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := map[string]float64{}
	n := len(r.points)
	if n == 0 {
		return out
	}
	const scale = 1 / float64(1<<63) / 2 // 1 / 2^64 without overflow
	for i, p := range r.points {
		// The arc owned by point i ends at point i and starts at point i-1
		// (wrapping); its length is the hash gap.
		prev := r.points[(i+n-1)%n].hash
		gap := p.hash - prev // wraps correctly in uint64 arithmetic
		out[p.owner] += float64(gap) * scale
	}
	return out
}

// vnodeHash places one virtual node: FNV-1a over "owner#i", finalized with
// splitmix64. The finalizer matters: FNV's high bits are poorly avalanched
// on short inputs, and point placement sorts on the full 64-bit value, so
// unmixed hashes cluster and skew arc shares badly.
func vnodeHash(owner string, i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(owner))
	h.Write([]byte{'#', byte(i), byte(i >> 8)})
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: matrix fingerprints are already hashes,
// but mixing decorrelates them from the FNV vnode placement.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
