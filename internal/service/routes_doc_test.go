package service

import (
	"os"
	"strings"
	"testing"
)

// TestServiceRoutesDocumented pins the HTTP surface to docs/API.md: every
// route the mux serves must appear there — a line carrying the method and
// the backticked path. Adding a route without documenting it fails CI.
func TestServiceRoutesDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("read docs/API.md: %v", err)
	}
	lines := strings.Split(string(doc), "\n")
	for _, r := range Routes() {
		method, path, ok := strings.Cut(r, " ")
		if !ok {
			t.Fatalf("route %q has no method", r)
		}
		if !routeDocumented(lines, method, path) {
			t.Errorf("route %q is not documented in docs/API.md (want a line with %s and `%s`)", r, method, path)
		}
	}
}

func routeDocumented(lines []string, method, path string) bool {
	want := "`" + path + "`"
	for _, ln := range lines {
		if strings.Contains(ln, want) && strings.Contains(ln, method) {
			return true
		}
	}
	return false
}
