package precond

import (
	"fmt"
	"math"
	"sync"

	"spcg/internal/sparse"
)

// SSOR is the symmetric successive over-relaxation preconditioner
// M = (2−ω)⁻¹ · (D/ω + L) · (D/ω)⁻¹ · (D/ω + U), which is SPD for SPD A and
// 0 < ω < 2. Applied via one forward and one backward triangular sweep.
// The sweeps are inherently sequential across rows; in a distributed setting
// this corresponds to the processor-local (block) SSOR commonly used with
// CG, so HaloExchanges is 0.
type SSOR struct {
	a       *sparse.CSR
	omega   float64
	invDiag []float64
	scratch sync.Pool // per-caller sweep vectors: Apply is concurrency-safe
}

// NewSSOR builds an SSOR preconditioner with relaxation factor omega.
func NewSSOR(a *sparse.CSR, omega float64) (*SSOR, error) {
	if !(omega > 0 && omega < 2) {
		return nil, fmt.Errorf("precond: SSOR needs 0 < ω < 2, got %v", omega)
	}
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v <= 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("%w: row %d has diagonal %v", ErrZeroDiagonal, i, v)
		}
		inv[i] = 1 / v
	}
	p := &SSOR{a: a, omega: omega, invDiag: inv}
	n := a.Dim()
	p.scratch.New = func() any { return make([]float64, n) }
	return p, nil
}

// Apply computes dst = M⁻¹·src by forward solve, diagonal scale, backward
// solve.
func (p *SSOR) Apply(dst, src []float64) {
	n := p.a.Dim()
	if len(dst) != n || len(src) != n {
		panic("precond: SSOR Apply dim mismatch")
	}
	w := p.omega
	y := p.scratch.Get().([]float64)
	defer p.scratch.Put(y)
	// Forward: (D/ω + L)·y = src.
	for i := 0; i < n; i++ {
		s := src[i]
		for k := p.a.RowPtr[i]; k < p.a.RowPtr[i+1]; k++ {
			j := p.a.ColIdx[k]
			if j >= i {
				break // columns sorted; remaining are diagonal/upper
			}
			s -= p.a.Val[k] * y[j]
		}
		y[i] = s * w * p.invDiag[i]
	}
	// Scale: y ← (D/ω)·y · (2−ω) — combined into the backward sweep input.
	scale := (2 - w) / w
	for i := 0; i < n; i++ {
		y[i] = y[i] * scale / p.invDiag[i]
	}
	// Backward: (D/ω + U)·dst = y.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := p.a.RowPtr[i+1] - 1; k >= p.a.RowPtr[i]; k-- {
			j := p.a.ColIdx[k]
			if j <= i {
				break
			}
			s -= p.a.Val[k] * dst[j]
		}
		dst[i] = s * w * p.invDiag[i]
	}
}

// Dim returns n.
func (p *SSOR) Dim() int { return p.a.Dim() }

// Name returns "ssor(ω)".
func (p *SSOR) Name() string { return fmt.Sprintf("ssor(%.2g)", p.omega) }

// Flops counts both triangular sweeps plus scaling.
func (p *SSOR) Flops() float64 { return 2*float64(p.a.NNZ()) + 4*float64(p.a.Dim()) }

// HaloExchanges returns 0 (local sweeps).
func (p *SSOR) HaloExchanges() int { return 0 }
