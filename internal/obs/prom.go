package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format version this package writes.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (# HELP / # TYPE headers, one sample line per series;
// histograms expand to cumulative _bucket series plus _sum and _count).
// Families are emitted in sorted name order and series in sorted label order,
// so the output is deterministic — the golden test relies on that.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		sigs := append([]string(nil), f.order...)
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := f.series[sig]
			if f.kind == KindHistogram {
				writeHistogram(&b, f.name, sig, s)
				continue
			}
			v := math.Float64frombits(s.bits.Load())
			if s.read != nil {
				v = s.read()
			}
			fmt.Fprintf(&b, "%s %s\n", sampleName(f.name, sig, ""), formatValue(v))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram expands one histogram series into cumulative buckets plus
// the _sum and _count samples.
func writeHistogram(b *strings.Builder, name, sig string, s *series) {
	st := s.hist
	if st == nil {
		return
	}
	snap := (&Histogram{s}).Snapshot()
	var cum int64
	for i, c := range snap.Counts {
		cum += c
		le := "+Inf"
		if i < len(snap.Bounds) {
			le = formatValue(snap.Bounds[i])
		}
		fmt.Fprintf(b, "%s %d\n", sampleName(name+"_bucket", sig, `le="`+le+`"`), cum)
	}
	fmt.Fprintf(b, "%s %s\n", sampleName(name+"_sum", sig, ""), formatValue(snap.Sum))
	fmt.Fprintf(b, "%s %d\n", sampleName(name+"_count", sig, ""), snap.Count)
}

// sampleName joins a metric name with its label signature and an optional
// extra label (the histogram le).
func sampleName(name, sig, extra string) string {
	switch {
	case sig == "" && extra == "":
		return name
	case sig == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + sig + "}"
	default:
		return name + "{" + sig + "," + extra + "}"
	}
}

// formatValue renders a float64 the way Prometheus clients expect: integral
// values without an exponent or trailing zeros, everything else in %g.
func formatValue(v float64) string {
	//spcglint:ignore floatcmp integrality test: Trunc(v)==v is exact by construction, not a rounding comparison
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
