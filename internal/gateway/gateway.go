// Package gateway implements spcggw, the horizontal scale-out tier in front
// of a pool of spcgd backends. It consistent-hash routes solve-path requests
// by matrix fingerprint so each matrix's expensive per-backend state — setup
// cache (preconditioner + Ritz spectrum), format cache (SELL conversions,
// RCM permutations, selector probes) and autotune decisions — stays warm on
// one backend instead of being rebuilt across the whole fleet. This is the
// serving-side analogue of the paper's scaling argument: remove the global
// synchronization (here, redundant per-matrix setup everywhere) and let each
// shard do local work.
//
// Routing semantics:
//
//   - affinity: a request for matrix M goes to the ring-primary backend for
//     M's content fingerprint (resolved once per matrix via the backends'
//     GET /affinity/{matrix} and cached);
//   - bounded spill: when the primary sheds load (429), the request moves to
//     the next replica on the ring, at most SpillDepth hops; past that the
//     429 and its Retry-After propagate to the client — backpressure is
//     forwarded, never amplified into a retry storm;
//   - failover: transport failures and retryable 5xx (502/503) move the
//     request to the next replica with budgeted backoff; solve requests are
//     idempotent (the gateway stamps a request_id, and backends dedup on
//     it), so a retry can never double-run a job on one backend;
//   - membership: a periodic /healthz probe drives each backend through
//     alive/degraded/draining/dead; only alive and degraded backends hold
//     ring arcs, and consistent hashing moves ~1/N of keys when one of N
//     backends drops — every other matrix keeps its warm backend.
package gateway

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spcg/internal/obs"
	"spcg/internal/resilience"
)

// Config sizes the gateway. Zero values get sensible defaults; Backends is
// required.
type Config struct {
	// Backends are the spcgd base URLs fronted by this gateway.
	Backends []string
	// VNodes is the number of hash-ring points per backend (default 64).
	VNodes int
	// ProbeInterval is the health-probe period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe (default 2s).
	ProbeTimeout time.Duration
	// DeadAfter is the consecutive probe-failure count that marks a backend
	// dead (default 2). Data-path connection failures kill immediately.
	DeadAfter int
	// Retries is the failover budget: extra backends tried after a transport
	// failure or retryable 5xx (default 2).
	Retries int
	// SpillDepth is the saturation budget: replicas tried after a 429 before
	// the backpressure propagates to the client (default 1).
	SpillDepth int
	// RetryBackoff is the base delay between failover attempts, doubled per
	// attempt (default 50ms).
	RetryBackoff time.Duration
	// AttemptTimeout bounds one backend round trip, including a synchronous
	// solve (default 5m).
	AttemptTimeout time.Duration
	// JobRoutes bounds the job-id → backend map for /jobs polling
	// (default 4096, LRU).
	JobRoutes int
	// AffinityEntries bounds the matrix → fingerprint resolution cache
	// (default 4096, LRU).
	AffinityEntries int
	// Client overrides the backend HTTP client (tests).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.VNodes < 1 {
		c.VNodes = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.DeadAfter < 1 {
		c.DeadAfter = 2
	}
	if c.Retries < 0 {
		c.Retries = 2
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.SpillDepth < 1 {
		c.SpillDepth = 1
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 5 * time.Minute
	}
	if c.JobRoutes < 1 {
		c.JobRoutes = 4096
	}
	if c.AffinityEntries < 1 {
		c.AffinityEntries = 4096
	}
	return c
}

// Gateway is the routing tier. Create with New, serve via Handler, stop with
// Close.
type Gateway struct {
	cfg      Config
	client   *http.Client
	ring     *ring
	backends []*backend
	byName   map[string]*backend
	met      *metrics
	start    time.Time

	affinity *lruMap // matrix name -> fingerprint (stored as uint64 in string form)
	jobs     *lruMap // job id -> backend name

	reqSeq atomic.Uint64
	rr     atomic.Uint64 // round-robin cursor for non-affinity routes

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New builds the gateway, runs one synchronous membership probe so the ring
// is populated before the first request, and starts the probe loop.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	g := &Gateway{
		cfg:      cfg,
		ring:     newRing(cfg.VNodes),
		byName:   map[string]*backend{},
		met:      newMetrics(time.Now()),
		start:    time.Now(),
		affinity: newLRUMap(cfg.AffinityEntries),
		jobs:     newLRUMap(cfg.JobRoutes),
		stop:     make(chan struct{}),
	}
	g.client = cfg.Client
	if g.client == nil {
		g.client = &http.Client{}
	}
	for _, raw := range cfg.Backends {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		if _, err := url.Parse(u); err != nil {
			return nil, fmt.Errorf("gateway: bad backend URL %q: %v", raw, err)
		}
		name := strings.TrimPrefix(strings.TrimPrefix(u, "http://"), "https://")
		if _, dup := g.byName[name]; dup {
			return nil, fmt.Errorf("gateway: duplicate backend %q", name)
		}
		b := &backend{name: name, url: u, state: Alive}
		g.backends = append(g.backends, b)
		g.byName[name] = b
		g.ring.add(name)
	}
	if len(g.backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	g.probeOnce()
	g.wg.Add(1)
	go func() {
		// probeLoop's own defer releases g.wg during the unwind, so Close
		// never hangs even if the loop dies; the counter records that the
		// gateway lost health probing.
		if err := resilience.Safe(g.probeLoop); err != nil {
			g.met.panics.Inc()
		}
	}()
	return g, nil
}

// Close stops the probe loop. In-flight proxied requests complete normally.
func (g *Gateway) Close() {
	g.once.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// Registry exposes the gateway's metric registry (Prometheus exposition and
// the docs-coverage check read it).
func (g *Gateway) Registry() *obs.Registry { return g.met.reg }

// Snapshot returns the structured JSON metrics view.
func (g *Gateway) Snapshot() Snapshot { return g.snapshot() }

// route is one served pattern; Handler registers exactly this table, and the
// docs-coverage test asserts every pattern appears in docs/API.md.
type route struct {
	pattern string
	handler func(*Gateway) http.HandlerFunc
}

var routes = []route{
	{"POST /solve", func(g *Gateway) http.HandlerFunc { return g.handleSolve }},
	{"GET /jobs/{id}", func(g *Gateway) http.HandlerFunc { return g.handleJob }},
	{"POST /jobs/{id}/cancel", func(g *Gateway) http.HandlerFunc { return g.handleJob }},
	{"GET /matrices", func(g *Gateway) http.HandlerFunc { return g.handleAnyBackend }},
	{"POST /tune", func(g *Gateway) http.HandlerFunc { return g.handleTune }},
	{"GET /tune/{matrix}", func(g *Gateway) http.HandlerFunc { return g.handleTuneGet }},
	{"GET /affinity/{matrix}", func(g *Gateway) http.HandlerFunc { return g.handleAffinity }},
	{"GET /backends", func(g *Gateway) http.HandlerFunc { return g.handleBackends }},
	{"GET /metrics", func(g *Gateway) http.HandlerFunc { return g.handleMetrics }},
	{"GET /healthz", func(g *Gateway) http.HandlerFunc { return g.handleHealthz }},
}

// Routes lists the served "METHOD /path" patterns (docs-coverage test).
func Routes() []string {
	out := make([]string, len(routes))
	for i, r := range routes {
		out[i] = r.pattern
	}
	return out
}

// Handler returns the gateway's HTTP mux; see Routes for the surface.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range routes {
		mux.HandleFunc(r.pattern, r.handler(g))
	}
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleSolve routes POST /solve by matrix affinity, stamping a request_id
// when the client did not provide one so retries and failovers stay
// idempotent on each backend.
func (g *Gateway) handleSolve(w http.ResponseWriter, r *http.Request) {
	g.met.requests.Inc()
	var body map[string]any
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	matrix, _ := body["matrix"].(string)
	if strings.TrimSpace(matrix) == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing matrix"})
		return
	}
	if id, _ := body["request_id"].(string); id == "" {
		body["request_id"] = g.newRequestID()
		g.met.dedupIDs.Inc()
	}
	payload, err := json.Marshal(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	g.routeByMatrix(w, r, http.MethodPost, "/solve", matrix, payload)
}

// handleTune routes POST /tune to the matrix's affinity backend, so the
// tuning run (and the stored decision) lands where the matrix's solves go.
func (g *Gateway) handleTune(w http.ResponseWriter, r *http.Request) {
	g.met.requests.Inc()
	var body struct {
		Matrix string `json:"matrix"`
	}
	raw, err := readAll(r.Body, 1<<20)
	if err != nil || json.Unmarshal(raw, &body) != nil || strings.TrimSpace(body.Matrix) == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: need {\"matrix\": ...}"})
		return
	}
	g.routeByMatrix(w, r, http.MethodPost, "/tune", body.Matrix, raw)
}

// handleTuneGet routes GET /tune/{matrix} to the affinity backend.
func (g *Gateway) handleTuneGet(w http.ResponseWriter, r *http.Request) {
	g.met.requests.Inc()
	matrix := r.PathValue("matrix")
	g.routeByMatrix(w, r, http.MethodGet, "/tune/"+url.PathEscape(matrix), matrix, nil)
}

// handleAffinity reports the gateway's routing decision for a matrix: the
// fingerprint and the replica walk. It answers from local state (resolving
// the fingerprint through a backend only on first sight of the matrix).
func (g *Gateway) handleAffinity(w http.ResponseWriter, r *http.Request) {
	g.met.requests.Inc()
	matrix := r.PathValue("matrix")
	fp, rerr := g.fingerprint(r.Context(), matrix)
	if rerr != nil {
		rerr.write(w)
		return
	}
	replicas := g.ring.lookup(fp, 1+g.cfg.Retries)
	resp := map[string]any{
		"matrix":      matrix,
		"fingerprint": strconv.FormatUint(fp, 10),
		"replicas":    replicas,
	}
	if len(replicas) > 0 {
		resp["backend"] = replicas[0]
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleJob forwards job polling/cancel to the backend that ran the solve,
// using the job-id route learned from that solve's response.
func (g *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	g.met.requests.Inc()
	id := r.PathValue("id")
	name, ok := g.jobs.get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job (not routed through this gateway, or its route was evicted)"})
		return
	}
	b := g.byName[name]
	path := "/jobs/" + url.PathEscape(id)
	if strings.HasSuffix(r.URL.Path, "/cancel") {
		path += "/cancel"
	}
	resp, err := g.attempt(r.Context(), b, r.Method, path, nil)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorBody{Error: fmt.Sprintf("backend %s: %v", b.name, err)})
		return
	}
	g.forward(w, resp)
}

// handleAnyBackend forwards a read-only route to any routable backend,
// round-robin.
func (g *Gateway) handleAnyBackend(w http.ResponseWriter, r *http.Request) {
	g.met.requests.Inc()
	tried := 0
	n := len(g.backends)
	for i := 0; i < n && tried <= g.cfg.Retries; i++ {
		b := g.backends[(int(g.rr.Add(1))+i)%n]
		if !b.getState().routable() {
			continue
		}
		tried++
		resp, err := g.attempt(r.Context(), b, r.Method, r.URL.Path, nil)
		if err != nil {
			continue
		}
		g.forward(w, resp)
		return
	}
	g.met.unroutable.Inc()
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no routable backend"})
}

// handleBackends serves the membership view.
func (g *Gateway) handleBackends(w http.ResponseWriter, _ *http.Request) {
	g.met.requests.Inc()
	shares := g.ring.shares()
	out := make([]BackendStatus, 0, len(g.backends))
	for _, b := range g.backends {
		b.mu.Lock()
		st := BackendStatus{
			Name:      b.name,
			URL:       b.url,
			State:     b.state.String(),
			RingShare: shares[b.name],
			LastError: b.lastErr,
		}
		b.mu.Unlock()
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, map[string]any{"backends": out, "ring_members": g.ring.members()})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, g.snapshot())
		return
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	g.met.reg.WritePrometheus(w)
}

// handleHealthz reports gateway liveness: 200 while at least one backend is
// routable, 503 + Retry-After otherwise (all backends dead or draining).
func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	alive := 0
	for _, b := range g.backends {
		if b.getState().routable() {
			alive++
		}
	}
	body := map[string]any{"status": "ok", "backends_alive": alive, "backends": len(g.backends)}
	if alive == 0 {
		body["status"] = "unroutable"
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// routeError is a routing failure ready to be written to the client.
type routeError struct {
	code       int
	msg        string
	retryAfter string
}

func (e *routeError) write(w http.ResponseWriter) {
	if e.retryAfter != "" {
		w.Header().Set("Retry-After", e.retryAfter)
	}
	writeJSON(w, e.code, errorBody{Error: e.msg})
}

// fingerprint resolves a matrix name to its content fingerprint, caching the
// answer. First sight asks a backend's GET /affinity/{matrix} (chosen by
// name hash, so the one-time matrix build lands on a backend the name would
// route to anyway); after that, routing is purely local arithmetic.
func (g *Gateway) fingerprint(ctx context.Context, matrix string) (uint64, *routeError) {
	name := strings.TrimSpace(matrix)
	if name == "" {
		return 0, &routeError{code: http.StatusBadRequest, msg: "missing matrix"}
	}
	if v, ok := g.affinity.get(name); ok {
		fp, _ := strconv.ParseUint(v, 10, 64)
		return fp, nil
	}
	candidates := g.ring.lookup(nameHash(name), 1+g.cfg.Retries)
	if len(candidates) == 0 {
		g.met.unroutable.Inc()
		return 0, &routeError{code: http.StatusServiceUnavailable, msg: "no routable backend", retryAfter: "1"}
	}
	var lastErr string
	for _, cand := range candidates {
		b := g.byName[cand]
		resp, err := g.attempt(ctx, b, http.MethodGet, "/affinity/"+url.PathEscape(name), nil)
		if err != nil {
			lastErr = err.Error()
			continue
		}
		switch {
		case resp.code == http.StatusOK:
			var body struct {
				Fingerprint string `json:"fingerprint"`
			}
			if err := json.Unmarshal(resp.body, &body); err != nil {
				lastErr = err.Error()
				continue
			}
			fp, err := strconv.ParseUint(body.Fingerprint, 10, 64)
			if err != nil {
				lastErr = "bad fingerprint " + body.Fingerprint
				continue
			}
			g.affinity.put(name, body.Fingerprint)
			return fp, nil
		case resp.code >= 400 && resp.code < 500:
			// The backend rejected the matrix itself (unknown name, over the
			// dimension limit): a client error, not a routing failure.
			return 0, &routeError{code: resp.code, msg: string(resp.body)}
		default:
			lastErr = fmt.Sprintf("backend %s: HTTP %d", b.name, resp.code)
		}
	}
	return 0, &routeError{code: http.StatusBadGateway, msg: "affinity resolution failed: " + lastErr}
}

// routeByMatrix is the affinity data path: resolve the fingerprint, walk the
// replica list with spill/failover budgets, forward the winning response.
func (g *Gateway) routeByMatrix(w http.ResponseWriter, r *http.Request, method, path, matrix string, body []byte) {
	fp, rerr := g.fingerprint(r.Context(), matrix)
	if rerr != nil {
		rerr.write(w)
		return
	}
	// The walk may need primary + failover budget + spill budget backends.
	replicas := g.ring.lookup(fp, 1+g.cfg.Retries+g.cfg.SpillDepth)
	if len(replicas) == 0 {
		g.met.unroutable.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no routable backend"})
		return
	}
	var (
		spills    int
		failovers int
		last429   *backendResponse
		lastErr   string
	)
	for i, name := range replicas {
		if spills > g.cfg.SpillDepth || failovers > g.cfg.Retries {
			break
		}
		b := g.byName[name]
		if i > 0 {
			g.met.retries.Inc()
			// Budgeted backoff before touching the next replica: doubles per
			// extra attempt, and aborts if the client went away meanwhile.
			if !sleepCtx(r.Context(), g.cfg.RetryBackoff<<uint(i-1)) {
				writeJSON(w, http.StatusRequestTimeout, errorBody{Error: "client gone during failover"})
				return
			}
		}
		resp, err := g.attempt(r.Context(), b, method, path, body)
		if err != nil {
			if r.Context().Err() != nil {
				writeJSON(w, http.StatusRequestTimeout, errorBody{Error: "client gone: " + err.Error()})
				return
			}
			g.met.failovers.Inc()
			failovers++
			lastErr = fmt.Sprintf("backend %s: %v", b.name, err)
			continue
		}
		switch {
		case resp.code == http.StatusTooManyRequests:
			g.met.spills.Inc()
			spills++
			last429 = resp
			continue
		case resp.code == http.StatusBadGateway || resp.code == http.StatusServiceUnavailable:
			// Draining or proxy-level failure: the job never ran; move on.
			g.met.failovers.Inc()
			failovers++
			lastErr = fmt.Sprintf("backend %s: HTTP %d", b.name, resp.code)
			continue
		default:
			// A served response (including 400/404/500/504: those are answers
			// about the request, not about the backend).
			if i == 0 {
				g.met.affinity.Inc()
			} else {
				g.met.misses.Inc()
			}
			if path == "/solve" {
				g.rememberJob(resp, b)
			}
			g.forward(w, resp)
			return
		}
	}
	if last429 != nil {
		// Every replica in the spill budget shed: propagate the backpressure
		// with the backend's own Retry-After so clients slow down.
		g.met.shed.Inc()
		g.forward(w, last429)
		return
	}
	g.met.unroutable.Inc()
	if lastErr == "" {
		lastErr = "no routable backend"
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: lastErr})
}

// backendResponse is one buffered backend reply. Buffering (responses are
// small JSON documents) is what makes failover safe: nothing is forwarded to
// the client until an attempt has fully succeeded.
type backendResponse struct {
	code       int
	body       []byte
	retryAfter string
}

// attempt performs one backend round trip, recording per-backend metrics. A
// transport failure that is not the client's own cancellation marks the
// backend dead immediately — the prober resurrects it when /healthz answers
// again.
func (g *Gateway) attempt(ctx context.Context, b *backend, method, path string, body []byte) (*backendResponse, error) {
	actx, cancel := context.WithTimeout(ctx, g.cfg.AttemptTimeout)
	defer cancel()
	var rd *strings.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequestWithContext(actx, method, b.url+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	reqs, errsC, lat := g.met.forBackend(b.name)
	reqs.Inc()
	t0 := time.Now()
	resp, err := g.client.Do(req)
	lat.Observe(time.Since(t0).Seconds())
	if err != nil {
		errsC.Inc()
		if ctx.Err() == nil && actx.Err() == nil {
			// A genuine transport failure (refused, reset, mid-response EOF) —
			// not our own timeout or the client hanging up.
			g.markDeadNow(b, err.Error())
		}
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := readAll(resp.Body, 16<<20)
	if err != nil {
		errsC.Inc()
		if ctx.Err() == nil && actx.Err() == nil {
			g.markDeadNow(b, err.Error())
		}
		return nil, err
	}
	if resp.StatusCode >= 500 {
		errsC.Inc()
	}
	return &backendResponse{
		code:       resp.StatusCode,
		body:       buf,
		retryAfter: resp.Header.Get("Retry-After"),
	}, nil
}

// forward writes a buffered backend response to the client.
func (g *Gateway) forward(w http.ResponseWriter, resp *backendResponse) {
	if resp.retryAfter != "" {
		w.Header().Set("Retry-After", resp.retryAfter)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.code)
	_, _ = w.Write(resp.body)
}

// rememberJob records the job-id → backend route from a solve response so
// /jobs polling and cancellation reach the right pool member.
func (g *Gateway) rememberJob(resp *backendResponse, b *backend) {
	var doc struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(resp.body, &doc) == nil && doc.ID != "" {
		g.jobs.put(doc.ID, b.name)
		g.met.jobRoutes.Set(float64(g.jobs.len()))
	}
}

// newRequestID mints a process-unique idempotency key for a solve request
// that arrived without one.
func (g *Gateway) newRequestID() string {
	return "gw-" + strconv.FormatInt(g.start.UnixNano(), 36) + "-" + strconv.FormatUint(g.reqSeq.Add(1), 36)
}

// nameHash routes first-sight affinity resolution by matrix name (the
// fingerprint is not known yet).
func nameHash(name string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// sleepCtx sleeps d or until ctx is done; reports whether the sleep ran out.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// readAll reads up to max bytes, erroring beyond it (a backend response that
// large indicates a bug, not a solve result).
func readAll(r io.Reader, max int64) ([]byte, error) {
	out, err := io.ReadAll(io.LimitReader(r, max+1))
	if err != nil {
		return out, err
	}
	if int64(len(out)) > max {
		return nil, fmt.Errorf("response exceeds %d bytes", max)
	}
	return out, nil
}

// lruMap is a small bounded string→string map with LRU eviction (affinity
// resolutions and job routes).
type lruMap struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct{ k, v string }

func newLRUMap(max int) *lruMap {
	return &lruMap{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

func (m *lruMap) get(k string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[k]
	if !ok {
		return "", false
	}
	m.ll.MoveToFront(el)
	return el.Value.(*lruEntry).v, true
}

func (m *lruMap) put(k, v string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[k]; ok {
		el.Value.(*lruEntry).v = v
		m.ll.MoveToFront(el)
		return
	}
	m.items[k] = m.ll.PushFront(&lruEntry{k: k, v: v})
	for m.ll.Len() > m.max {
		oldest := m.ll.Back()
		m.ll.Remove(oldest)
		delete(m.items, oldest.Value.(*lruEntry).k)
	}
}

func (m *lruMap) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}
