package dense

import (
	"fmt"
	"math"
)

// Chol holds the lower-triangular Cholesky factor L with A = L·Lᵀ.
type Chol struct {
	n int
	l []float64 // row-major lower triangle (full storage)
}

// Cholesky factors the symmetric positive-definite matrix a. It returns
// ErrNotSPD if a pivot is non-positive, which the s-step solvers treat as
// basis breakdown.
func Cholesky(a *Mat) (*Chol, error) {
	if a.R != a.C {
		return nil, fmt.Errorf("dense: Cholesky on non-square %d×%d matrix", a.R, a.C)
	}
	n := a.R
	l := append([]float64(nil), a.Data...)
	for j := 0; j < n; j++ {
		d := l[j*n+j]
		for k := 0; k < j; k++ {
			d -= l[j*n+k] * l[j*n+k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		d = math.Sqrt(d)
		l[j*n+j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := l[i*n+j]
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			l[i*n+j] = s * inv
		}
	}
	// Zero the (unused) upper triangle for cleanliness.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l[i*n+j] = 0
		}
	}
	return &Chol{n: n, l: l}, nil
}

// Solve solves A·x = b in place over b.
func (c *Chol) Solve(b []float64) error {
	n := c.n
	if len(b) != n {
		return fmt.Errorf("dense: Chol.Solve rhs length %d != %d", len(b), n)
	}
	// Forward L·y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l[i*n+k] * b[k]
		}
		b[i] = s / c.l[i*n+i]
	}
	// Backward Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= c.l[k*n+i] * b[k]
		}
		b[i] = s / c.l[i*n+i]
	}
	return nil
}

// SolveMat solves A·X = B column-wise where B is n×m; B is overwritten.
func (c *Chol) SolveMat(b *Mat) error {
	if b.R != c.n {
		return fmt.Errorf("dense: Chol.SolveMat rhs rows %d != %d", b.R, c.n)
	}
	col := make([]float64, c.n)
	for j := 0; j < b.C; j++ {
		for i := 0; i < b.R; i++ {
			col[i] = b.At(i, j)
		}
		if err := c.Solve(col); err != nil {
			return err
		}
		for i := 0; i < b.R; i++ {
			b.Set(i, j, col[i])
		}
	}
	return nil
}

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// LUFactor factors a square matrix with partial pivoting. Returns
// ErrSingular when a pivot underflows relative to the matrix scale.
func LUFactor(a *Mat) (*LU, error) {
	if a.R != a.C {
		return nil, fmt.Errorf("dense: LUFactor on non-square %d×%d matrix", a.R, a.C)
	}
	n := a.R
	lu := append([]float64(nil), a.Data...)
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	var scale float64
	for _, v := range lu {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	if scale == 0 {
		return nil, ErrSingular
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Pivot search.
		p, pm := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if av := math.Abs(lu[i*n+k]); av > pm {
				p, pm = i, av
			}
		}
		if pm <= 1e-300 || pm < 1e-14*scale {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[k*n+j], lu[p*n+j] = lu[p*n+j], lu[k*n+j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		inv := 1 / lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] * inv
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= m * lu[k*n+j]
			}
		}
	}
	return &LU{n: n, lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·x = b; b is replaced by x.
func (f *LU) Solve(b []float64) error {
	n := f.n
	if len(b) != n {
		return fmt.Errorf("dense: LU.Solve rhs length %d != %d", len(b), n)
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitute (unit lower).
	for i := 1; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= f.lu[i*n+k] * x[k]
		}
		x[i] = s
	}
	// Back substitute.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= f.lu[i*n+k] * x[k]
		}
		x[i] = s / f.lu[i*n+i]
	}
	copy(b, x)
	return nil
}

// SolveMat solves A·X = B column-wise; B is overwritten with X.
func (f *LU) SolveMat(b *Mat) error {
	if b.R != f.n {
		return fmt.Errorf("dense: LU.SolveMat rhs rows %d != %d", b.R, f.n)
	}
	col := make([]float64, f.n)
	for j := 0; j < b.C; j++ {
		for i := 0; i < b.R; i++ {
			col[i] = b.At(i, j)
		}
		if err := f.Solve(col); err != nil {
			return err
		}
		for i := 0; i < b.R; i++ {
			b.Set(i, j, col[i])
		}
	}
	return nil
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// Inverse returns A⁻¹ (for condition-number diagnostics on O(s) matrices).
func (f *LU) Inverse() *Mat {
	inv := Eye(f.n)
	if err := f.SolveMat(inv); err != nil {
		panic("dense: LU.Inverse: " + err.Error()) // cannot happen: shapes match
	}
	return inv
}

// Solve solves a·x = b with LU partial pivoting, returning a fresh slice.
func Solve(a *Mat, b []float64) ([]float64, error) {
	f, err := LUFactor(a)
	if err != nil {
		return nil, err
	}
	x := append([]float64(nil), b...)
	if err := f.Solve(x); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveSPD solves a·x = b by Cholesky, falling back to LU if a is not
// numerically SPD (Gram matrices lose definiteness exactly when the s-step
// basis degenerates; the LU fallback lets the solver limp to its divergence
// detector instead of stopping on a sharp error).
func SolveSPD(a *Mat, b []float64) ([]float64, error) {
	if c, err := Cholesky(a); err == nil {
		x := append([]float64(nil), b...)
		if err := c.Solve(x); err != nil {
			return nil, err
		}
		return x, nil
	}
	return Solve(a, b)
}

// Cond1 estimates the 1-norm condition number κ₁(a) = ‖a‖₁·‖a⁻¹‖₁ exactly via
// the explicit inverse (fine for O(s) sizes). Returns +Inf for singular a.
func Cond1(a *Mat) float64 {
	f, err := LUFactor(a)
	if err != nil {
		return math.Inf(1)
	}
	return norm1(a) * norm1(f.Inverse())
}

func norm1(a *Mat) float64 {
	var m float64
	for j := 0; j < a.C; j++ {
		var s float64
		for i := 0; i < a.R; i++ {
			s += math.Abs(a.At(i, j))
		}
		if s > m {
			m = s
		}
	}
	return m
}
