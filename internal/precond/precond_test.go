package precond

import (
	"math"
	"math/rand"
	"testing"

	"spcg/internal/dense"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// applySymmetryCheck verifies xᵀM⁻¹y == yᵀM⁻¹x, required for PCG.
func applySymmetryCheck(t *testing.T, p Interface, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := p.Dim()
	x, y := randVec(rng, n), randVec(rng, n)
	mx, my := make([]float64, n), make([]float64, n)
	p.Apply(mx, x)
	p.Apply(my, y)
	l, r := vec.Dot(y, mx), vec.Dot(x, my)
	if math.Abs(l-r) > 1e-9*(1+math.Abs(l)) {
		t.Fatalf("%s: M⁻¹ not symmetric: %v vs %v", p.Name(), l, r)
	}
}

func TestIdentity(t *testing.T) {
	p := NewIdentity(3)
	src := []float64{1, 2, 3}
	dst := make([]float64, 3)
	p.Apply(dst, src)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatal("identity changed the vector")
		}
	}
	if p.Name() != "identity" || p.Flops() != 0 || p.HaloExchanges() != 0 || p.Dim() != 3 {
		t.Fatal("identity metadata")
	}
}

func TestJacobi(t *testing.T) {
	a := sparse.Poisson2D(5, 5) // diagonal = 4
	p, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]float64, a.Dim())
	vec.Fill(src, 8)
	dst := make([]float64, a.Dim())
	p.Apply(dst, src)
	for _, v := range dst {
		if v != 2 {
			t.Fatalf("Jacobi apply = %v, want 2", v)
		}
	}
	applySymmetryCheck(t, p, 1)
	if p.HaloExchanges() != 0 {
		t.Fatal("Jacobi should need no communication")
	}
}

func TestJacobiRejectsBadDiagonal(t *testing.T) {
	coo := sparse.NewCOO(2)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, -1)
	if _, err := NewJacobi(coo.ToCSR()); err == nil {
		t.Fatal("expected error for negative diagonal")
	}
}

// chebT evaluates the Chebyshev polynomial T_d(x) (|x| may exceed 1).
func chebT(d int, x float64) float64 {
	switch {
	case x >= 1:
		return math.Cosh(float64(d) * math.Acosh(x))
	case x <= -1:
		s := 1.0
		if d%2 == 1 {
			s = -1
		}
		return s * math.Cosh(float64(d)*math.Acosh(-x))
	default:
		return math.Cos(float64(d) * math.Acos(x))
	}
}

func TestChebyshevMatchesAnalyticPolynomial(t *testing.T) {
	// Poisson1D has known eigenpairs v_k(i) = sin(kπ(i+1)/(n+1)),
	// λ_k = 2−2cos(kπ/(n+1)). Degree-d Chebyshev iteration from a zero guess
	// has residual polynomial σ_d(λ) = T_d((θ−λ)/δ)/T_d(θ/δ), so the applied
	// operator is (1−σ_d(λ))/λ on each eigencomponent. Check Apply against
	// that closed form.
	n := 20
	a := sparse.Poisson1D(n)
	lambda := func(k int) float64 { return 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1)) }
	lo, hi := lambda(1), lambda(n)
	rng := rand.New(rand.NewSource(2))
	r := randVec(rng, n)
	theta, del := (hi+lo)/2, (hi-lo)/2
	for _, deg := range []int{1, 2, 3, 5, 8} {
		p, err := NewChebyshev(a, deg, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		z := make([]float64, n)
		p.Apply(z, r)
		want := make([]float64, n)
		for k := 1; k <= n; k++ {
			lam := lambda(k)
			sigma := chebT(deg, (theta-lam)/del) / chebT(deg, theta/del)
			// Eigenvector (normalized): sqrt(2/(n+1))·sin(kπ(i+1)/(n+1)).
			var proj float64
			for i := 0; i < n; i++ {
				proj += math.Sin(float64(k)*math.Pi*float64(i+1)/float64(n+1)) * r[i]
			}
			proj *= 2 / float64(n+1)
			coeff := (1 - sigma) / lam * proj
			for i := 0; i < n; i++ {
				want[i] += coeff * math.Sin(float64(k)*math.Pi*float64(i+1)/float64(n+1))
			}
		}
		for i := range want {
			if math.Abs(z[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("degree %d entry %d: Apply %v vs analytic %v", deg, i, z[i], want[i])
			}
		}
	}
}

func TestChebyshevApproximatesInverse(t *testing.T) {
	n := 20
	a := sparse.Poisson1D(n)
	lo := 2 - 2*math.Cos(math.Pi/float64(n+1))
	hi := 2 - 2*math.Cos(float64(n)*math.Pi/float64(n+1))
	rng := rand.New(rand.NewSource(2))
	r := randVec(rng, n)
	// Exact solve via dense Cholesky.
	d := dense.FromRowMajor(n, n, a.Dense())
	chol, err := dense.Cholesky(d)
	if err != nil {
		t.Fatal(err)
	}
	exact := append([]float64(nil), r...)
	if err := chol.Solve(exact); err != nil {
		t.Fatal(err)
	}
	kappa := hi / lo
	rate := (math.Sqrt(kappa) - 1) / (math.Sqrt(kappa) + 1)
	for _, deg := range []int{5, 15, 40} {
		p, err := NewChebyshev(a, deg, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		z := make([]float64, n)
		p.Apply(z, r)
		diff := make([]float64, n)
		vec.Sub(diff, z, exact)
		e := vec.Norm2(diff) / vec.Norm2(exact)
		// 2-norm error is bounded by √κ times the A-norm bound 2·rate^deg.
		bound := 2 * math.Sqrt(kappa) * math.Pow(rate, float64(deg))
		if e > bound {
			t.Fatalf("degree %d error %v exceeds Chebyshev bound %v", deg, e, bound)
		}
	}
}

func TestChebyshevIsLinearAndSymmetric(t *testing.T) {
	a := sparse.Poisson2D(6, 6)
	p, err := NewChebyshev(a, 3, 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	applySymmetryCheck(t, p, 3)
	rng := rand.New(rand.NewSource(4))
	n := a.Dim()
	x, y := randVec(rng, n), randVec(rng, n)
	alpha := 0.7
	xy := make([]float64, n)
	vec.XpayInto(xy, x, alpha, y)
	mxy := make([]float64, n)
	p.Apply(mxy, xy)
	mx, my := make([]float64, n), make([]float64, n)
	p.Apply(mx, x)
	p.Apply(my, y)
	for i := range mxy {
		want := mx[i] + alpha*my[i]
		if math.Abs(mxy[i]-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatal("Chebyshev preconditioner is not a fixed linear operator")
		}
	}
	if p.Name() != "chebyshev(3)" || p.Degree() != 3 || p.HaloExchanges() != 2 {
		t.Fatalf("metadata: %s %d %d", p.Name(), p.Degree(), p.HaloExchanges())
	}
}

func TestChebyshevParamValidation(t *testing.T) {
	a := sparse.Poisson1D(5)
	if _, err := NewChebyshev(a, 0, 1, 2); err == nil {
		t.Fatal("degree 0 accepted")
	}
	if _, err := NewChebyshev(a, 2, 2, 1); err == nil {
		t.Fatal("inverted interval accepted")
	}
	if _, err := NewChebyshev(a, 2, -1, 1); err == nil {
		t.Fatal("non-positive λmin accepted")
	}
}

func TestBlockJacobiOneBlockIsExact(t *testing.T) {
	a := sparse.Poisson1D(30)
	p, err := NewBlockJacobi(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	r := randVec(rng, a.Dim())
	z := make([]float64, a.Dim())
	p.Apply(z, r)
	// A·z should equal r.
	az := make([]float64, a.Dim())
	a.MulVec(az, z)
	for i := range az {
		if math.Abs(az[i]-r[i]) > 1e-8 {
			t.Fatalf("one-block BlockJacobi is not the exact inverse at %d", i)
		}
	}
}

func TestBlockJacobiManyBlocksIsJacobiLike(t *testing.T) {
	// With n blocks of size 1 BlockJacobi degenerates to Jacobi.
	a := sparse.Poisson1D(16)
	bj, err := NewBlockJacobi(a, 16)
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	r := randVec(rng, 16)
	z1, z2 := make([]float64, 16), make([]float64, 16)
	bj.Apply(z1, r)
	j.Apply(z2, r)
	for i := range z1 {
		if math.Abs(z1[i]-z2[i]) > 1e-12 {
			t.Fatalf("n-block BlockJacobi != Jacobi at %d", i)
		}
	}
	applySymmetryCheck(t, bj, 7)
}

func TestBlockJacobiErrors(t *testing.T) {
	a := sparse.Poisson1D(10)
	if _, err := NewBlockJacobi(a, 0); err == nil {
		t.Fatal("0 blocks accepted")
	}
	big := sparse.Poisson1D(5000)
	if _, err := NewBlockJacobi(big, 1); err == nil {
		t.Fatal("oversized block accepted")
	}
}

func TestSSORMatchesDenseDefinition(t *testing.T) {
	a := sparse.Poisson2D(4, 4)
	n := a.Dim()
	omega := 1.3
	p, err := NewSSOR(a, omega)
	if err != nil {
		t.Fatal(err)
	}
	// Dense M = (2−ω)⁻¹·(D/ω + L)·(D/ω)⁻¹·(D/ω + U).
	ad := a.Dense()
	dm := dense.NewMat(n, n)
	lm := dense.NewMat(n, n)
	um := dense.NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := ad[i*n+j]
			switch {
			case i == j:
				dm.Set(i, j, v/omega)
			case i > j:
				lm.Set(i, j, v)
			default:
				um.Set(i, j, v)
			}
		}
	}
	dl := dm.Clone()
	dl.AddMat(1, lm)
	du := dm.Clone()
	du.AddMat(1, um)
	dinv := dense.NewMat(n, n)
	for i := 0; i < n; i++ {
		dinv.Set(i, i, 1/dm.At(i, i))
	}
	m := dense.MatMul(dense.MatMul(dl, dinv), du)
	m.Scale(1 / (2 - omega))
	rng := rand.New(rand.NewSource(8))
	r := randVec(rng, n)
	z := make([]float64, n)
	p.Apply(z, r)
	// M·z must equal r.
	mz := m.MulVec(z)
	for i := range mz {
		if math.Abs(mz[i]-r[i]) > 1e-9*(1+math.Abs(r[i])) {
			t.Fatalf("SSOR apply disagrees with dense definition at %d: %v vs %v", i, mz[i], r[i])
		}
	}
	applySymmetryCheck(t, p, 9)
}

func TestSSORValidation(t *testing.T) {
	a := sparse.Poisson1D(5)
	for _, w := range []float64{0, 2, -1} {
		if _, err := NewSSOR(a, w); err == nil {
			t.Fatalf("omega %v accepted", w)
		}
	}
}

func TestIC0ExactOnTridiagonal(t *testing.T) {
	// IC(0) of a tridiagonal matrix has no dropped fill: exact Cholesky.
	a := sparse.Poisson1D(25)
	p, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	r := randVec(rng, a.Dim())
	z := make([]float64, a.Dim())
	p.Apply(z, r)
	az := make([]float64, a.Dim())
	a.MulVec(az, z)
	for i := range az {
		if math.Abs(az[i]-r[i]) > 1e-8 {
			t.Fatalf("IC0 on tridiagonal is not exact at %d", i)
		}
	}
}

func TestIC0OnGridIsSymmetricAndUseful(t *testing.T) {
	a := sparse.Poisson2D(7, 7)
	p, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	applySymmetryCheck(t, p, 11)
	// The preconditioned operator must reduce the condition number.
	n := a.Dim()
	ma := dense.NewMat(n, n)
	col := make([]float64, n)
	e := make([]float64, n)
	zcol := make([]float64, n)
	for j := 0; j < n; j++ {
		vec.Zero(e)
		e[j] = 1
		a.MulVec(col, e)
		p.Apply(zcol, col)
		for i := 0; i < n; i++ {
			ma.Set(i, j, zcol[i])
		}
	}
	// Spectrum of M⁻¹A (similar to SPD (L⁻¹)A(L⁻ᵀ)) must be tighter than A's.
	vals, err := dense.SymEigen(symmetrizePart(ma))
	if err != nil {
		t.Fatal(err)
	}
	condPrec := vals[len(vals)-1] / vals[0]
	avals, err := dense.SymEigen(dense.FromRowMajor(n, n, a.Dense()))
	if err != nil {
		t.Fatal(err)
	}
	condA := avals[len(avals)-1] / avals[0]
	if condPrec > condA/2 {
		t.Fatalf("IC0 barely helps: κ(M⁻¹A)=%v vs κ(A)=%v", condPrec, condA)
	}
}

func symmetrizePart(m *dense.Mat) *dense.Mat {
	s := m.Clone()
	s.Symmetrize()
	return s
}

func TestIC0Errors(t *testing.T) {
	coo := sparse.NewCOO(2)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	if _, err := NewIC0(coo.ToCSR()); err == nil {
		t.Fatal("missing diagonal accepted")
	}
}
