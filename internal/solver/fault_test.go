package solver

import (
	"errors"
	"math/rand"
	"testing"

	"spcg/internal/dist"
	"spcg/internal/fault"
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

func faultTestSystem(t *testing.T, seed int64) (*sparse.CSR, precond.Interface, []float64) {
	t.Helper()
	a := sparse.Poisson2D(20, 20)
	m, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return a, m, b
}

func TestPCGSoftErrorsDetectedAndRecovered(t *testing.T) {
	a, m, b := faultTestSystem(t, 1)
	tol := 1e-8
	base := Options{Tol: tol, Criterion: RecursiveResidualMNorm}

	// Unprotected run under silent SpMV corruption: the recursive residual
	// keeps shrinking while x drifts — the classic silent-data-corruption
	// failure, visible only in the true residual.
	unprot := base
	unprot.Injector = fault.New(42, fault.Config{SpMVCorruptProb: 0.05})
	_, unprotStats, err := PCG(a, m, b, unprot)
	if err != nil {
		t.Fatal(err)
	}
	if unprot.Injector.Counts().Total() == 0 {
		t.Fatal("seed injected no corruptions; test is vacuous")
	}
	if unprotStats.TrueRelResidual <= tol {
		t.Fatalf("unprotected run reached true accuracy %v despite corruption — increase the rate", unprotStats.TrueRelResidual)
	}

	// Protected run with the same fault stream: detection + rollback must
	// recover true convergence.
	prot := base
	prot.Injector = fault.New(42, fault.Config{SpMVCorruptProb: 0.05})
	prot.DetectEvery = 1
	_, protStats, err := PCG(a, m, b, prot)
	if err != nil {
		t.Fatal(err)
	}
	if !protStats.Converged || protStats.TrueRelResidual > 10*tol {
		t.Fatalf("protected run failed: converged=%v trueRel=%v", protStats.Converged, protStats.TrueRelResidual)
	}
	if protStats.DetectedFaults == 0 || protStats.Rollbacks == 0 {
		t.Fatalf("protection never fired: detected=%d rollbacks=%d", protStats.DetectedFaults, protStats.Rollbacks)
	}
}

func TestSPCGSoftErrorsDetectedAndRecovered(t *testing.T) {
	a, m, b := faultTestSystem(t, 2)
	tol := 1e-8
	base := Options{S: 4, Tol: tol, Criterion: RecursiveResidualMNorm}

	unprot := base
	unprot.Injector = fault.New(7, fault.Config{SpMVCorruptProb: 0.02})
	_, unprotStats, err := SPCG(a, m, b, unprot)
	if err != nil {
		t.Fatal(err)
	}
	if unprotStats.TrueRelResidual <= tol && unprotStats.Breakdown == nil {
		t.Fatalf("unprotected sPCG unaffected by corruption (trueRel=%v)", unprotStats.TrueRelResidual)
	}

	prot := base
	prot.Injector = fault.New(7, fault.Config{SpMVCorruptProb: 0.02})
	prot.DetectEvery = 1 // probe every outer iteration (every s steps)
	_, protStats, err := SPCG(a, m, b, prot)
	if err != nil {
		t.Fatal(err)
	}
	if !protStats.Converged || protStats.TrueRelResidual > 10*tol {
		t.Fatalf("protected sPCG failed: converged=%v trueRel=%v breakdown=%v",
			protStats.Converged, protStats.TrueRelResidual, protStats.Breakdown)
	}
	if protStats.DetectedFaults == 0 || protStats.Rollbacks == 0 {
		t.Fatalf("protection never fired: detected=%d rollbacks=%d", protStats.DetectedFaults, protStats.Rollbacks)
	}
}

func TestDetectionWithoutFaultsIsTransparent(t *testing.T) {
	// Detection enabled on a clean run: zero false positives and bit-identical
	// iterates (probes read but never write solver state).
	a, m, b := faultTestSystem(t, 3)
	opts := Options{Tol: 1e-9, Criterion: RecursiveResidualMNorm}
	xPlain, sPlain, err := PCG(a, m, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DetectEvery = 5
	xGuard, sGuard, err := PCG(a, m, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sGuard.DetectedFaults != 0 || sGuard.Rollbacks != 0 {
		t.Fatalf("false positives on a clean run: detected=%d rollbacks=%d", sGuard.DetectedFaults, sGuard.Rollbacks)
	}
	if sGuard.Iterations != sPlain.Iterations {
		t.Fatalf("detection changed iteration count: %d vs %d", sGuard.Iterations, sPlain.Iterations)
	}
	for i := range xPlain {
		if xPlain[i] != xGuard[i] {
			t.Fatalf("detection changed iterates at %d: %v vs %v", i, xPlain[i], xGuard[i])
		}
	}
}

func TestNilInjectorZeroOptionsBitIdentical(t *testing.T) {
	// The whole fault subsystem disabled must be a strict no-op: same x, same
	// stats, zero fault counters.
	a, m, b := faultTestSystem(t, 4)
	x1, s1, err := PCG(a, m, b, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	x2, s2, err := PCG(a, m, b, Options{Tol: 1e-9, Injector: nil, DetectEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("iterates differ at %d", i)
		}
	}
	if s1.Iterations != s2.Iterations || s1.FinalRelative != s2.FinalRelative || s1.Allreduces != s2.Allreduces {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	if s1.DetectedFaults != 0 || s1.Rollbacks != 0 || s1.RetriedMessages != 0 {
		t.Fatalf("fault counters nonzero on clean run: %+v", s1)
	}
}

func TestCommFaultsVisibleInSolverStats(t *testing.T) {
	// A fault-model machine charges retries into SimTime and RetriedMessages
	// without perturbing the numerics.
	a, m, b := faultTestSystem(t, 5)
	clean, err := dist.NewCluster(dist.DefaultMachine(), 1, a)
	if err != nil {
		t.Fatal(err)
	}
	mf := dist.DefaultMachine()
	mf.Faults = dist.FaultModel{CommFailProb: 0.1, Seed: 13}
	faulty, err := dist.NewCluster(mf, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	optsClean := Options{Tol: 1e-9, Tracker: dist.NewTracker(clean)}
	optsFaulty := Options{Tol: 1e-9, Tracker: dist.NewTracker(faulty)}
	xc, sc, err := PCG(a, m, b, optsClean)
	if err != nil {
		t.Fatal(err)
	}
	xf, sf, err := PCG(a, m, b, optsFaulty)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xc {
		if xc[i] != xf[i] {
			t.Fatalf("comm fault model changed iterates at %d", i)
		}
	}
	if sf.RetriedMessages == 0 {
		t.Fatal("no retries recorded at 10% failure probability")
	}
	if sf.SimTime <= sc.SimTime {
		t.Fatalf("retries not charged: faulty %v <= clean %v", sf.SimTime, sc.SimTime)
	}
	if sf.Iterations != sc.Iterations {
		t.Fatal("fault model changed iteration count")
	}
}

func TestRollbackBudgetExhaustionIsBreakdown(t *testing.T) {
	// Persistent corruption (every SpMV) can never pass a probe: recovery
	// must give up after MaxRollbacks and report a breakdown, not loop.
	a, m, b := faultTestSystem(t, 6)
	opts := Options{
		Tol:          1e-9,
		Injector:     fault.New(1, fault.Config{SpMVCorruptProb: 1}),
		DetectEvery:  1,
		MaxRollbacks: 3,
	}
	_, stats, err := PCG(a, m, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Breakdown == nil || !errors.Is(stats.Breakdown, ErrBreakdown) {
		t.Fatalf("breakdown not reported: %v", stats.Breakdown)
	}
	if stats.Rollbacks != 3 {
		t.Fatalf("Rollbacks = %d, want MaxRollbacks=3", stats.Rollbacks)
	}
	if stats.Converged {
		t.Fatal("persistently corrupted run reported converged")
	}
}

func TestAdaptiveCascadeCarriesProtection(t *testing.T) {
	// SPCGAdaptive forwards Options to its SPCG/PCG stages, so detection and
	// recovery protect the whole cascade.
	a, m, b := faultTestSystem(t, 8)
	tol := 1e-8
	opts := Options{
		S:           6,
		Tol:         tol,
		Criterion:   RecursiveResidualMNorm,
		Injector:    fault.New(21, fault.Config{SpMVCorruptProb: 0.015}),
		DetectEvery: 1,
	}
	_, stats, err := SPCGAdaptive(a, m, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged || stats.TrueRelResidual > 10*tol {
		t.Fatalf("protected cascade failed: converged=%v trueRel=%v", stats.Converged, stats.TrueRelResidual)
	}
	if opts.Injector.Counts().Total() > 0 && stats.DetectedFaults == 0 {
		t.Fatal("corruptions injected but never detected")
	}
}
