// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure (at reduced scale so `go test -bench=.` completes in minutes;
// use cmd/spcgbench for the full-scale runs) plus microbenchmarks of the
// kernels whose BLAS levels drive the paper's Table 1 analysis.
package spcg_test

import (
	"math"
	"testing"

	"spcg"
	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/experiments"
	"spcg/internal/solver"
	"spcg/internal/sparse"
	"spcg/internal/suite"
	"spcg/internal/vec"
)

func benchConfig() experiments.Config {
	m := dist.DefaultMachine()
	return experiments.Config{Scale: 128, S: 10, Machine: m}
}

// BenchmarkTable1CostModel regenerates Table 1 (cost formulas + instrumented
// validation run).
func BenchmarkTable1CostModel(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(cfg, 16)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.ValidateTable1(rows, cfg.S); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Stability regenerates Table 2 on a representative subset of
// the 40-matrix suite (full sweep: `spcgbench table2`).
func BenchmarkTable2Stability(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 256
	names := []string{"thermomech_TC", "Dubcova3", "cfd2", "G2_circuit", "parabolic_fem"}
	var problems []suite.Problem
	for _, n := range names {
		p, ok := suite.ByName(n)
		if !ok {
			b.Fatal("unknown problem " + n)
		}
		problems = append(problems, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable2(cfg, problems)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(names) {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkTable3Runtime regenerates Table 3 (seven matrices, two
// preconditioners, modeled 4-node runtimes).
func BenchmarkTable3Runtime(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 256
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable3(cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig1StrongScaling regenerates Figure 1 (strong scaling of all
// solvers over node counts; reduced grid — paper uses 256³, `spcgbench fig1
// -dim 256` reproduces it in full).
func BenchmarkFig1StrongScaling(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(cfg, 24, 32, []int{5, 10, 15})
		if err != nil {
			b.Fatal(err)
		}
		if res.PCG1Node <= 0 {
			b.Fatal("no reference time")
		}
	}
}

// BenchmarkAblationBasis regenerates the basis-type/s ablation.
func BenchmarkAblationBasis(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Solver benchmarks: wall-clock per solve on a fixed problem. ---

func benchProblem() (*sparse.CSR, []float64, spcg.Preconditioner) {
	a := sparse.Poisson3D(24, 24, 24)
	n := a.Dim()
	xT := make([]float64, n)
	for i := range xT {
		xT[i] = 1 / math.Sqrt(float64(n))
	}
	b := make([]float64, n)
	a.MulVec(b, xT)
	m, err := spcg.NewJacobi(a)
	if err != nil {
		panic(err)
	}
	return a, b, m
}

func benchSolver(b *testing.B, run func(*sparse.CSR, spcg.Preconditioner, []float64, solver.Options) ([]float64, *solver.Stats, error), opts solver.Options) {
	a, rhs, m := benchProblem()
	opts.Tol = 1e-6
	opts.Criterion = solver.RecursiveResidualMNorm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := run(a, m, rhs, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !stats.Converged {
			b.Fatalf("did not converge: %+v", stats.Breakdown)
		}
	}
}

func BenchmarkSolvePCG(b *testing.B)  { benchSolver(b, solver.PCG, solver.Options{}) }
func BenchmarkSolvePCG3(b *testing.B) { benchSolver(b, solver.PCG3, solver.Options{}) }
func BenchmarkSolveSPCG(b *testing.B) {
	benchSolver(b, solver.SPCG, solver.Options{S: 10, Basis: basis.Chebyshev})
}
func BenchmarkSolveSPCGMon(b *testing.B) {
	benchSolver(b, solver.SPCGMon, solver.Options{S: 4})
}
func BenchmarkSolveCAPCG(b *testing.B) {
	benchSolver(b, solver.CAPCG, solver.Options{S: 10, Basis: basis.Chebyshev})
}
func BenchmarkSolveCAPCG3(b *testing.B) {
	benchSolver(b, solver.CAPCG3, solver.Options{S: 10, Basis: basis.Chebyshev})
}

// --- Kernel microbenchmarks (the BLAS1 vs BLAS3 story of Table 1). ---

func BenchmarkKernelSpMV(b *testing.B) {
	a := sparse.Poisson3D(32, 32, 32)
	x := make([]float64, a.Dim())
	y := make([]float64, a.Dim())
	vec.Fill(x, 1)
	b.SetBytes(int64(12*a.NNZ() + 16*a.Dim()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(y, x)
	}
}

func BenchmarkKernelSpMVParallel(b *testing.B) {
	a := sparse.Poisson3D(32, 32, 32)
	x := make([]float64, a.Dim())
	y := make([]float64, a.Dim())
	vec.Fill(x, 1)
	b.SetBytes(int64(12*a.NNZ() + 16*a.Dim()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVecPar(y, x)
	}
}

func BenchmarkKernelDot(b *testing.B) {
	n := 1 << 18
	x := make([]float64, n)
	y := make([]float64, n)
	vec.Fill(x, 1)
	vec.Fill(y, 2)
	b.SetBytes(int64(16 * n))
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += vec.Dot(x, y)
	}
	_ = sink
}

func BenchmarkKernelAxpy(b *testing.B) {
	n := 1 << 18
	x := make([]float64, n)
	y := make([]float64, n)
	vec.Fill(x, 1)
	b.SetBytes(int64(24 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec.Axpy(0.5, x, y)
	}
}

// BenchmarkKernelBlockAddMul measures the BLAS3-style P = U + P·B update
// that gives sPCG its local-computation advantage (paper §4.1).
func BenchmarkKernelBlockAddMul(b *testing.B) {
	n, s := 1<<16, 10
	u := vec.NewBlock(n, s)
	p := vec.NewBlock(n, s)
	dst := vec.NewBlock(n, s)
	coef := make([]float64, s*s)
	for i := range coef {
		coef[i] = 0.01
	}
	b.SetBytes(int64(8 * n * 3 * s))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec.AddMul(dst, u, p, coef)
	}
}

// BenchmarkKernelGram measures the fused local reduction UᵀS feeding the
// single global collective of the s-step methods.
func BenchmarkKernelGram(b *testing.B) {
	n, s := 1<<16, 10
	u := vec.NewBlock(n, s)
	sblk := vec.NewBlock(n, s+1)
	b.SetBytes(int64(8 * n * (2*s + 1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vec.Gram(u, sblk)
	}
}
