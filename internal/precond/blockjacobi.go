package precond

import (
	"fmt"

	"spcg/internal/dense"
	"spcg/internal/sparse"
)

// BlockJacobi is the block-diagonal preconditioner: the matrix is split into
// contiguous row blocks, each diagonal block is extracted densely and
// Cholesky-factored, and Apply solves block-local systems. With one block
// per virtual rank it is communication-free, like Jacobi.
type BlockJacobi struct {
	n       int
	bounds  []int
	factors []*dense.Chol
	flops   float64
}

// NewBlockJacobi builds a block-Jacobi preconditioner with nblocks
// contiguous, nnz-balanced row blocks. Block sizes must stay small (the
// factorization is dense per block); an error is returned when a block
// exceeds maxBlockDim (4096).
func NewBlockJacobi(a *sparse.CSR, nblocks int) (*BlockJacobi, error) {
	const maxBlockDim = 4096
	if nblocks < 1 {
		return nil, fmt.Errorf("precond: BlockJacobi needs ≥ 1 block, got %d", nblocks)
	}
	bounds := sparse.NNZBalancedRanges(a, nblocks)
	p := &BlockJacobi{n: a.Dim(), bounds: bounds}
	for b := 0; b < nblocks; b++ {
		lo, hi := bounds[b], bounds[b+1]
		dim := hi - lo
		if dim == 0 {
			p.factors = append(p.factors, nil)
			continue
		}
		if dim > maxBlockDim {
			return nil, fmt.Errorf("precond: BlockJacobi block %d has %d rows > %d; use more blocks", b, dim, maxBlockDim)
		}
		blk := dense.NewMat(dim, dim)
		for i := lo; i < hi; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.ColIdx[k]
				if j >= lo && j < hi {
					blk.Set(i-lo, j-lo, a.Val[k])
				}
			}
		}
		f, err := dense.Cholesky(blk)
		if err != nil {
			return nil, fmt.Errorf("precond: BlockJacobi block %d (%d rows): %w", b, dim, err)
		}
		p.factors = append(p.factors, f)
		p.flops += 2 * float64(dim) * float64(dim) // two triangular solves
	}
	return p, nil
}

// Apply solves each diagonal block system.
func (p *BlockJacobi) Apply(dst, src []float64) {
	if len(dst) != p.n || len(src) != p.n {
		panic("precond: BlockJacobi Apply dim mismatch")
	}
	for b, f := range p.factors {
		if f == nil {
			continue
		}
		lo, hi := p.bounds[b], p.bounds[b+1]
		copy(dst[lo:hi], src[lo:hi])
		if err := f.Solve(dst[lo:hi]); err != nil {
			panic("precond: BlockJacobi solve: " + err.Error()) // cannot happen: sizes fixed at build
		}
	}
}

// Dim returns n.
func (p *BlockJacobi) Dim() int { return p.n }

// Name returns "blockjacobi(k)".
func (p *BlockJacobi) Name() string { return fmt.Sprintf("blockjacobi(%d)", len(p.factors)) }

// Flops returns the dense triangular-solve cost summed over blocks.
func (p *BlockJacobi) Flops() float64 { return p.flops }

// HaloExchanges returns 0: blocks are rank-local.
func (p *BlockJacobi) HaloExchanges() int { return 0 }
