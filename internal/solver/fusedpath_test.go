package solver

import (
	"testing"

	"spcg/internal/fault"
	"spcg/internal/pool"
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

// TestSPCGTakesFusedBasisPath: with a Jacobi (diagonal) preconditioner and no
// fault injector, the matrix powers kernel must run through the fused
// SpMV + three-term + diag-apply fast path — and still converge to the same
// accuracy as the Table 2 checks require.
func TestSPCGTakesFusedBasisPath(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	b, xTrue := testProblem(a)
	m, _ := precond.NewJacobi(a)

	before := pool.ReadStats().FusedBasisSteps
	x, st, err := SPCG(a, m, b, Options{S: 4, Tol: 1e-9, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("did not converge: %v", st.Breakdown)
	}
	if e := solutionError(x, xTrue); e > 1e-6 {
		t.Fatalf("solution error %v with fused basis path", e)
	}
	after := pool.ReadStats().FusedBasisSteps
	if after <= before {
		t.Fatal("fused basis-step counter did not advance: fast path not taken")
	}
	// The fused path must charge the same operation counts the paper's
	// Table 1 validates: s SpMVs per outer iteration (+1 initial residual).
	wantMV := st.OuterIterations*4 + 1
	if st.MVProducts != wantMV {
		t.Fatalf("MVProducts = %d, want %d (fused path must charge like the unfused one)",
			st.MVProducts, wantMV)
	}
}

// TestFusedBasisPathDisabledByInjector: an installed fault injector must see
// every raw SpMV output, so the fused path has to stand down.
func TestFusedBasisPathDisabledByInjector(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	b, _ := testProblem(a)
	m, _ := precond.NewJacobi(a)
	inj := fault.New(1, fault.Config{}) // inert but installed
	before := pool.ReadStats().FusedBasisSteps
	_, _, err := SPCG(a, m, b, Options{S: 3, Tol: 1e-8, Injector: inj, Criterion: RecursiveResidualMNorm})
	if err != nil {
		t.Fatal(err)
	}
	if after := pool.ReadStats().FusedBasisSteps; after != before {
		t.Fatal("fused basis path ran despite an installed fault injector")
	}
}
