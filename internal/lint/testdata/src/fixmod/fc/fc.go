// Package fc exercises the floatcmp carve-outs: the exact comparison in
// Equal is flagged; the zero guard and the constant fold are not.
package fc

// Equal compares floats exactly — rounding-fragile, flagged.
func Equal(a, b float64) bool { return a == b }

// Guard is the idiomatic breakdown check against an exact zero — allowed.
func Guard(den float64) bool { return den == 0 }

// eps participates in a comparison decided at compile time — allowed.
const eps = 1e-9

// ConstCheck compares two constants.
func ConstCheck() bool { return eps == 1e-9 }
