package sparse

import (
	"math/rand"
	"testing"
)

func TestFormatByNameRoundTrip(t *testing.T) {
	for _, name := range []string{"csr", "sell", "csr+rcm", "sell+rcm"} {
		format, reorder, ok := FormatByName(name)
		if !ok {
			t.Fatalf("FormatByName(%q) not ok", name)
		}
		c := FormatChoice{Format: format, Reorder: reorder}
		if c.Name() != name {
			t.Fatalf("round trip %q -> %q", name, c.Name())
		}
	}
	// Empty input is the zero choice (pre-format-dimension store entries).
	if f, r, ok := FormatByName(""); !ok || f != "csr" || r {
		t.Fatalf("FormatByName(\"\") = %q %v %v", f, r, ok)
	}
	if _, _, ok := FormatByName("ellpack"); ok {
		t.Fatal("unknown name must not parse")
	}
}

// TestChooseFormatSmallKeepsCSR: matrices below the probe threshold skip all
// measurement and keep plain CSR deterministically.
func TestChooseFormatSmallKeepsCSR(t *testing.T) {
	a := Poisson2D(12, 12) // nnz ≪ formatProbeMinNNZ
	choice, perm := ChooseFormat(a)
	if choice.Name() != "csr" || perm != nil {
		t.Fatalf("small matrix: got %q perm=%v, want csr/nil", choice.Name(), perm)
	}
	if choice.ProbeCSRNs != 0 {
		t.Fatalf("small matrix must not probe, got %dns", choice.ProbeCSRNs)
	}
}

// TestChooseFormatConsistency: the returned perm is non-nil exactly when
// Reorder is set, is a valid permutation, and the recorded statistics are
// coherent. Probed on a scrambled grid large enough to take the full path.
func TestChooseFormatConsistency(t *testing.T) {
	grid := VarCoeff2D(90, 90, 3, 5) // nnz ≈ 40k ≥ formatProbeMinNNZ
	rng := rand.New(rand.NewSource(9))
	a := Permute(grid, rng.Perm(grid.Dim()))
	choice, perm := ChooseFormat(a)
	if (perm != nil) != choice.Reorder {
		t.Fatalf("perm nil-ness %v disagrees with Reorder %v", perm != nil, choice.Reorder)
	}
	if choice.Reorder {
		seen := make([]bool, a.Dim())
		for _, v := range perm {
			if v < 0 || v >= a.Dim() || seen[v] {
				t.Fatalf("invalid permutation entry %d", v)
			}
			seen[v] = true
		}
		if choice.BandwidthAfter > choice.BandwidthBefore {
			t.Fatalf("RCM chosen but bandwidth grew: %d -> %d", choice.BandwidthBefore, choice.BandwidthAfter)
		}
	}
	if _, _, ok := FormatByName(choice.Name()); !ok {
		t.Fatalf("selector produced unknown combo %q", choice.Name())
	}
	if choice.ProbeCSRNs <= 0 || choice.ProbeChosenNs <= 0 {
		t.Fatalf("probe times not recorded: csr=%d chosen=%d", choice.ProbeCSRNs, choice.ProbeChosenNs)
	}
	if choice.Format == "sell" && choice.C <= 0 {
		t.Fatalf("sell choice without slice height: %+v", choice)
	}
}

// TestRowLengthCV pins the statistic on hand-computable structures: a
// constant-row-length matrix has zero variation, a hub row raises it.
func TestRowLengthCV(t *testing.T) {
	if cv := RowLengthCV(Poisson1D(1)); cv != 0 {
		t.Fatalf("single row: cv = %v", cv)
	}
	coo := NewCOO(10)
	for i := 0; i < 10; i++ {
		coo.Add(i, i, 1)
	}
	uniform := coo.ToCSR()
	if cv := RowLengthCV(uniform); cv != 0 {
		t.Fatalf("uniform rows: cv = %v, want 0", cv)
	}
	for j := 1; j < 10; j++ {
		coo.AddSym(0, j, -0.1) // row 0 becomes a hub
	}
	if cv := RowLengthCV(coo.ToCSR()); cv <= 0.5 {
		t.Fatalf("hub matrix: cv = %v, want > 0.5", cv)
	}
}

// TestEstimatePaddingRatioMatchesBuild cross-checks the estimator against
// the real conversion for several (c, σ) pairs.
func TestEstimatePaddingRatioMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randIrregularCSR(211, rng)
	for _, cs := range [][2]int{{0, 0}, {4, 4}, {8, 32}, {3, 10}} {
		est := EstimatePaddingRatio(a, cs[0], cs[1])
		got := SELLFromCSR(a, cs[0], cs[1]).PaddingRatio()
		if est != got {
			t.Fatalf("c=%d σ=%d: estimate %v != built %v", cs[0], cs[1], est, got)
		}
	}
}
