package lint

import (
	"go/ast"
)

// SafegoConfig targets the safego analyzer.
type SafegoConfig struct {
	// Packages are the import paths whose goroutines must be panic-guarded.
	Packages []string
	// SafePath is the import path of the package providing the guard
	// (the repo's internal/resilience).
	SafePath string
	// SafeFunc is the guard function's name (Safe).
	SafeFunc string
}

// Safego enforces the daemon's panic-isolation contract: every goroutine
// spawned in the service, gateway and spmd layers must run its body under
// resilience.Safe, so a panicking solve, probe or rank can only fail its own
// unit of work — never crash the process. The accepted shape is a `go` of a
// function literal whose first statement calls (or branches on) the guard:
//
//	go func() {
//	    if err := resilience.Safe(func() { ... work ... }); err != nil { ... }
//	}()
//
// Putting the guard first keeps the unguarded window empty; cleanup that must
// survive a panic (WaitGroup.Done, inflight bookkeeping) belongs in defers
// inside the guarded function, where it runs during unwinding and the panic
// is still converted to an error.
func Safego(cfg SafegoConfig) *Analyzer {
	pkgs := stringSet(cfg.Packages)
	a := &Analyzer{
		Name: "safego",
		Doc:  "service-layer goroutines must run their body under resilience.Safe",
	}
	isGuard := func(p *Pass, call *ast.CallExpr) bool {
		pkgPath, name, ok := pkgFuncOf(p, call)
		return ok && pkgPath == cfg.SafePath && name == cfg.SafeFunc
	}
	a.Run = func(p *Pass) {
		if !pkgs[p.Pkg.Types.Path()] {
			return
		}
		for _, f := range p.Pkg.Files {
			if p.Pkg.IsTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok {
					p.Reportf(g.Pos(), "go statement must spawn a func literal whose first statement runs the body under %s.%s (got a direct call)", pkgName(cfg.SafePath), cfg.SafeFunc)
					return true
				}
				if len(lit.Body.List) == 0 ||
					!containsCall(lit.Body.List[0], func(c *ast.CallExpr) bool { return isGuard(p, c) }) {
					p.Reportf(g.Pos(), "goroutine body is not panic-guarded: first statement must call %s.%s", pkgName(cfg.SafePath), cfg.SafeFunc)
				}
				return true
			})
		}
	}
	return a
}

// pkgName returns the last element of an import path for message text.
func pkgName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
