package sparse

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	a := VarCoeff2D(6, 7, 3, 21)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != a.N || b.NNZ() != a.NNZ() {
		t.Fatalf("shape %d/%d vs %d/%d", b.N, b.NNZ(), a.N, a.NNZ())
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] || a.ColIdx[i] != b.ColIdx[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% lower triangle only
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 3 2.0
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != -1 || a.At(1, 0) != -1 {
		t.Fatalf("symmetric expansion failed: %v %v", a.At(0, 1), a.At(1, 0))
	}
	if a.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5", a.NNZ())
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 || a.At(1, 1) != 1 {
		t.Fatal("pattern values should be 1")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "%%MatrixMarket matrix array real general\n2 2 1\n1 1 1\n",
		"bad symmetry": "%%MatrixMarket matrix coordinate real hermitian\n2 2 1\n1 1 1\n",
		"bad type":     "%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 1 1 1\n",
		"rectangular":  "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1\n",
		"short":        "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n",
		"out of range": "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1\n",
		"bad value":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 xyz\n",
		"bad row":      "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1\n",
		"missing val":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
