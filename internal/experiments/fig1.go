package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/solver"
	"spcg/internal/sparse"
)

// Fig1Series is the speedup-over-1-node-PCG series of one solver variant.
type Fig1Series struct {
	Solver  string // "PCG", "sPCG", "CA-PCG", "CA-PCG3"
	S       int    // 0 for PCG
	Speedup []float64
}

// Fig1Result holds the strong-scaling experiment of the paper's Figure 1.
type Fig1Result struct {
	GridDim     int
	NodeCounts  []int
	PCG1Node    float64 // reference time (the paper's 9.34126 s)
	Series      []Fig1Series
	PCGKneeNode int // node count past which PCG stops improving
}

// RunFig1 reproduces the strong-scaling experiment: a 7-point 3D Poisson
// matrix of size dim³ (paper: 256³), Jacobi preconditioner, Chebyshev basis,
// s ∈ sValues (paper: 5, 10, 15), node counts 1..maxNodes in powers of two,
// M-norm criterion with a 1e9 residual reduction.
//
// Each solver variant runs its numerics once (with a recording tracker) and
// is re-costed on every node count, which is exact: the event stream does
// not depend on the partition.
func RunFig1(cfg Config, dim, maxNodes int, sValues []int) (*Fig1Result, error) {
	cfg = cfg.withDefaults()
	if dim <= 0 {
		dim = 64
	}
	if maxNodes <= 0 {
		maxNodes = 128
	}
	if len(sValues) == 0 {
		sValues = []int{5, 10, 15}
	}
	a := sparse.Poisson3D(dim, dim, dim)
	// Random RHS (documented substitution: the paper's constant-solution
	// RHS puts the 1e9 reduction below sPCG's attainable-accuracy floor in
	// double precision; see DESIGN.md).
	st, err := newSetupRandomRHS(a, 20250705, "jacobi", cfg.PrecondDegree)
	if err != nil {
		return nil, err
	}

	var nodeCounts []int
	for nd := 1; nd <= maxNodes; nd *= 2 {
		if nd*cfg.Machine.RanksPerNode > a.Dim() {
			break
		}
		nodeCounts = append(nodeCounts, nd)
	}
	if len(nodeCounts) == 0 {
		return nil, fmt.Errorf("experiments: grid %d³ too small for even one node of %d ranks", dim, cfg.Machine.RanksPerNode)
	}
	clusters := make([]*dist.Cluster, len(nodeCounts))
	for i, nd := range nodeCounts {
		cl, err := dist.NewCluster(cfg.Machine, nd, a)
		if err != nil {
			return nil, err
		}
		clusters[i] = cl
	}

	res := &Fig1Result{GridDim: dim, NodeCounts: nodeCounts}

	// Reference: PCG numerics once, replayed on all node counts.
	runReplay := func(run solverFn, s int) ([]float64, bool) {
		opts := solver.Options{
			S: s, Basis: basis.Chebyshev, Tol: cfg.Tol,
			MaxIterations: cfg.MaxIterations, Criterion: solver.RecursiveResidualMNorm,
			Spectrum: st.spectrum,
		}
		tr := dist.NewRecordingTracker(clusters[0])
		opts.Tracker = tr
		_, stats, err := run(st.a, st.m, st.b, opts)
		if err != nil || !stats.Converged {
			return nil, false
		}
		times := make([]float64, len(clusters))
		for i, cl := range clusters {
			times[i] = tr.ReplayOn(cl)
		}
		return times, true
	}

	pcgTimes, ok := runReplay(solver.PCG, 1)
	if !ok {
		return nil, fmt.Errorf("experiments: reference PCG did not converge")
	}
	res.PCG1Node = pcgTimes[0]
	pcgSeries := Fig1Series{Solver: "PCG", Speedup: make([]float64, len(nodeCounts))}
	best := 0.0
	for i, t := range pcgTimes {
		pcgSeries.Speedup[i] = res.PCG1Node / t
		if pcgSeries.Speedup[i] > best {
			best = pcgSeries.Speedup[i]
			res.PCGKneeNode = nodeCounts[i]
		}
	}
	res.Series = append(res.Series, pcgSeries)

	for _, s := range sValues {
		for _, ss := range sStepSolvers() {
			times, ok := runReplay(ss.Run, s)
			series := Fig1Series{Solver: ss.Name, S: s, Speedup: make([]float64, len(nodeCounts))}
			if ok {
				for i, t := range times {
					series.Speedup[i] = res.PCG1Node / t
				}
			}
			res.Series = append(res.Series, series)
		}
	}
	return res, nil
}

// RenderFig1 writes the speedup series as a table (one row per node count,
// matching the bar groups of the paper's figure).
func RenderFig1(w io.Writer, r *Fig1Result) {
	fmt.Fprintf(w, "Strong scaling, 7-pt 3D Poisson %d³ (Jacobi preconditioner, Chebyshev basis)\n", r.GridDim)
	fmt.Fprintf(w, "Reference: PCG on 1 node = %.6fs; PCG stops scaling at %d nodes\n", r.PCG1Node, r.PCGKneeNode)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "nodes")
	for _, s := range r.Series {
		if s.S == 0 {
			fmt.Fprintf(tw, "\t%s", s.Solver)
		} else {
			fmt.Fprintf(tw, "\t%s(s=%d)", s.Solver, s.S)
		}
	}
	fmt.Fprintln(tw)
	for i, nd := range r.NodeCounts {
		fmt.Fprintf(tw, "%d", nd)
		for _, s := range r.Series {
			if s.Speedup == nil || s.Speedup[i] == 0 {
				fmt.Fprint(tw, "\t-")
			} else {
				fmt.Fprintf(tw, "\t%.2f", s.Speedup[i])
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
