package sparse

import (
	"math"
	"math/rand"
	"testing"

	"spcg/internal/vec"
)

// TestMulBlockParColumnExact pins the batched SpMV contract the solve
// service's coalesced solves rely on: every column of MulBlockPar must be
// bitwise identical to a per-column sequential MulVec, for column counts
// below, at and above the pool's worker count (exercising the 2-D
// columns × row-blocks grid) and on a matrix large enough to take the
// parallel path.
func TestMulBlockParColumnExact(t *testing.T) {
	a := Poisson2D(96, 96) // nnz ≈ 45k > parSpMVThreshold
	n := a.Dim()
	rng := rand.New(rand.NewSource(42))
	for _, s := range []int{1, 2, 3, 8, 17} {
		x := vec.NewBlock(n, s)
		for j := 0; j < s; j++ {
			col := x.Col(j)
			for i := range col {
				col[i] = rng.NormFloat64()
			}
		}
		got := vec.NewBlock(n, s)
		a.MulBlockPar(got, x)
		want := make([]float64, n)
		for j := 0; j < s; j++ {
			a.MulVec(want, x.Col(j))
			for i := 0; i < n; i++ {
				if got.Col(j)[i] != want[i] {
					t.Fatalf("s=%d: column %d row %d: MulBlockPar %v != MulVec %v",
						s, j, i, got.Col(j)[i], want[i])
				}
			}
		}
	}
}

// TestMulVecParMatchesMulVec: the pool-dispatched SpMV partitions rows only,
// so it must be bitwise identical to the sequential kernel.
func TestMulVecParMatchesMulVec(t *testing.T) {
	a := VarCoeff2D(90, 90, 3, 11)
	n := a.Dim()
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(3*i + 1))
	}
	seq := make([]float64, n)
	par := make([]float64, n)
	a.MulVec(seq, x)
	a.MulVecPar(par, x)
	for i := range seq {
		if par[i] != seq[i] {
			t.Fatalf("row %d: MulVecPar %v != MulVec %v", i, par[i], seq[i])
		}
	}
}

// TestFusedBasisStepParMatchesUnfused checks the fused
// SpMV + three-term + diagonal-apply kernel against the three separate
// sweeps it replaces.
func TestFusedBasisStepParMatchesUnfused(t *testing.T) {
	a := Poisson2D(80, 80)
	n := a.Dim()
	rng := rand.New(rand.NewSource(5))
	u := make([]float64, n)
	sCur := make([]float64, n)
	sPrev := make([]float64, n)
	dinv := make([]float64, n)
	for i := 0; i < n; i++ {
		u[i] = rng.NormFloat64()
		sCur[i] = rng.NormFloat64()
		sPrev[i] = rng.NormFloat64()
		dinv[i] = 0.1 + rng.Float64()
	}
	theta, mu, gamma := 1.7, -0.4, 2.3

	z := make([]float64, n)
	wantS := make([]float64, n)
	wantU := make([]float64, n)
	a.MulVec(z, u)
	vec.Threeterm(wantS, z, theta, sCur, mu, sPrev, gamma)
	vec.HadamardInto(wantU, dinv, wantS)

	gotS := make([]float64, n)
	gotU := make([]float64, n)
	a.FusedBasisStepPar(gotS, u, sCur, sPrev, theta, mu, gamma, dinv, gotU)
	for i := 0; i < n; i++ {
		if d := math.Abs(gotS[i] - wantS[i]); d > 1e-14*(1+math.Abs(wantS[i])) {
			t.Fatalf("sNext[%d]: fused %v vs unfused %v", i, gotS[i], wantS[i])
		}
		if d := math.Abs(gotU[i] - wantU[i]); d > 1e-14*(1+math.Abs(wantU[i])) {
			t.Fatalf("uNext[%d]: fused %v vs unfused %v", i, gotU[i], wantU[i])
		}
	}

	// First-step form: sPrev nil, no uNext.
	vec.Threeterm(wantS, z, theta, sCur, 0, nil, gamma)
	a.FusedBasisStepPar(gotS, u, sCur, nil, theta, 0, gamma, dinv, nil)
	for i := 0; i < n; i++ {
		if d := math.Abs(gotS[i] - wantS[i]); d > 1e-14*(1+math.Abs(wantS[i])) {
			t.Fatalf("first-step sNext[%d]: fused %v vs unfused %v", i, gotS[i], wantS[i])
		}
	}
}

// TestBalancedRangesCached: repeated pool kernels on one matrix must reuse
// the cached partition rather than recomputing the O(n) split per call.
func TestBalancedRangesCached(t *testing.T) {
	a := Poisson2D(64, 64)
	b1 := a.balancedRanges(4)
	b2 := a.balancedRanges(4)
	if &b1[0] != &b2[0] {
		t.Fatal("partition not cached for repeated worker count")
	}
	b3 := a.balancedRanges(7)
	if len(b3) != 8 {
		t.Fatalf("unexpected bounds length %d", len(b3))
	}
	if again := a.balancedRanges(4); &again[0] != &b1[0] {
		t.Fatal("cache evicted an entry while under capacity")
	}
}
