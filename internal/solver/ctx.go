package solver

import (
	"fmt"
	"math"

	"spcg/internal/dist"
	"spcg/internal/fault"
	"spcg/internal/obs"
	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// ctx is the shared instrumented execution context: it performs the actual
// numerics and simultaneously counts events and charges the distributed cost
// model. All solvers go through it so their measured costs are comparable.
type ctx struct {
	a       *sparse.CSR
	op      sparse.Matrix // hot-path kernels; a unless Options.Operator overrides
	m       precond.Interface
	tr      *dist.Tracker
	obs     *obs.Tracer     // nil-safe: phase spans when tracing is enabled
	inj     *fault.Injector // nil-safe: corrupts SpMV outputs when configured
	n       int
	stats   *Stats
	f32Gram bool
	cancel  <-chan struct{} // Options.Cancel; nil means never cancelled
}

func newCtx(a *sparse.CSR, m precond.Interface, opts *Options, stats *Stats) (*ctx, error) {
	if a == nil {
		return nil, fmt.Errorf("%w: nil matrix", ErrDimension)
	}
	n := a.Dim()
	if m == nil {
		m = precond.NewIdentity(n)
	}
	if m.Dim() != n {
		return nil, fmt.Errorf("%w: matrix n=%d, preconditioner n=%d", ErrDimension, n, m.Dim())
	}
	var op sparse.Matrix = a
	if opts.Operator != nil {
		if opts.Operator.Dim() != n {
			return nil, fmt.Errorf("%w: matrix n=%d, operator n=%d", ErrDimension, n, opts.Operator.Dim())
		}
		op = opts.Operator
	}
	// Mirror the tracker's halo-exchange events into the trace so the
	// breakdown covers the modeled communication structure too.
	if opts.Tracker != nil && opts.Trace != nil {
		opts.Tracker.Obs = opts.Trace
	}
	return &ctx{a: a, op: op, m: m, tr: opts.Tracker, obs: opts.Trace, inj: opts.Injector, n: n, stats: stats, f32Gram: opts.Float32Gram, cancel: opts.Cancel}, nil
}

// cancelled polls Options.Cancel without blocking. Solvers call it once per
// (outer) iteration, so cancellation latency is one iteration's work.
func (c *ctx) cancelled() bool {
	if c.cancel == nil {
		return false
	}
	select {
	case <-c.cancel:
		return true
	default:
		return false
	}
}

// spmv computes dst = A·src, charging one distributed SpMV. An installed
// fault injector may silently corrupt the output — the soft-error model the
// detection/recovery machinery defends against.
func (c *ctx) spmv(dst, src []float64) {
	t0 := c.obs.Begin()
	c.op.MulVecPar(dst, src)
	c.obs.End(obs.PhaseSpMV, t0)
	c.inj.CorruptSpMV(dst)
	c.tr.SpMV()
	c.stats.MVProducts++
}

// applyM computes dst = M⁻¹·src, charging one preconditioner application.
func (c *ctx) applyM(dst, src []float64) {
	t0 := c.obs.Begin()
	c.m.Apply(dst, src)
	c.obs.End(obs.PhasePrec, t0)
	c.tr.PrecApply(c.m.Flops(), c.m.HaloExchanges())
	c.stats.PrecApplies++
}

// Dim implements mpk.Operator for instrumented wrappers below.

// mpkOp adapts the context to mpk.Operator (and mpk.BasisStepper: the fused
// SpMV + three-term + diagonal-preconditioner fast path).
type mpkOp struct{ c *ctx }

func (o mpkOp) Dim() int                  { return o.c.n }
func (o mpkOp) MulVec(dst, src []float64) { o.c.spmv(dst, src) }

// ObsTracer exposes the solve's phase tracer to the matrix powers kernel
// (mpk.TracerOf) so the three-term recurrence combines are attributed to the
// basis phase. Nil when tracing is disabled.
func (o mpkOp) ObsTracer() *obs.Tracer { return o.c.obs }

// invDiagger is the preconditioner capability the fused MPK path needs.
type invDiagger interface{ InvDiag() []float64 }

// FusedBasisStep implements mpk.BasisStepper: when the preconditioner is
// diagonal and no fault injector needs to observe the raw SpMV output, the
// basis column advances in one pass over the matrix rows. The charged costs
// (one SpMV, one preconditioner application when uNext is requested) are
// identical to the unfused path, so Table 1's measured counts and the
// distributed cost model are unchanged.
func (o mpkOp) FusedBasisStep(sNext, u, sCur, sPrev []float64, theta, mu, gamma float64, uNext []float64) bool {
	c := o.c
	if c.inj != nil {
		return false // the soft-error model corrupts SpMV outputs; keep them visible
	}
	jd, ok := c.m.(invDiagger)
	if !ok {
		return false
	}
	t0 := c.obs.Begin()
	c.op.FusedBasisStepPar(sNext, u, sCur, sPrev, theta, mu, gamma, jd.InvDiag(), uNext)
	c.obs.End(obs.PhaseBasis, t0)
	c.tr.SpMV()
	c.stats.MVProducts++
	if uNext != nil {
		c.tr.PrecApply(c.m.Flops(), c.m.HaloExchanges())
		c.stats.PrecApplies++
	}
	return true
}

// mpkPrec adapts the context to mpk.Preconditioner.
type mpkPrec struct{ c *ctx }

func (p mpkPrec) Apply(dst, src []float64) { p.c.applyM(dst, src) }

// allreduce charges one global reduction of the given payload (the values
// themselves were already computed locally by gram/dot helpers).
func (c *ctx) allreduce(values int) {
	c.tr.Allreduce(values)
	c.obs.Count(obs.PhaseCollective, int64(values))
	c.stats.Allreduces++
	c.stats.AllreduceValues += values
}

// dot computes one globally reduced inner product (PCG-style: its own
// allreduce). The local part runs on the worker pool for large n.
func (c *ctx) dot(a, b []float64) float64 {
	t0 := c.obs.Begin()
	v := vec.ParDot(a, b)
	c.obs.End(obs.PhaseGram, t0)
	c.tr.ReduceLocal(2*float64(c.n), 16*float64(c.n))
	c.allreduce(1)
	return v
}

// fusedDots computes k inner products whose locals are fused into a single
// allreduce of k values (the 3-term and s-step solvers' pattern).
func (c *ctx) fusedDots(pairs ...[2][]float64) []float64 {
	t0 := c.obs.Begin()
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = vec.ParDot(p[0], p[1])
		c.tr.ReduceLocal(2*float64(c.n), 16*float64(c.n))
	}
	c.obs.End(obs.PhaseGram, t0)
	c.allreduce(len(pairs))
	return out
}

// localDot computes an inner product counted as local reduction work but
// NOT allreduced — callers fuse it into a larger collective themselves.
func (c *ctx) localDot(a, b []float64) float64 {
	c.tr.ReduceLocal(2*float64(c.n), 16*float64(c.n))
	t0 := c.obs.Begin()
	v := vec.ParDot(a, b)
	c.obs.End(obs.PhaseGram, t0)
	return v
}

// gramLocal computes Xᵀ·Y locally with the fused cache-blocked kernel,
// charging BLAS3-style reduction work.
func (c *ctx) gramLocal(x, y *vec.Block) []float64 {
	sa, sb := x.S(), y.S()
	flops := 2 * float64(sa) * float64(sb) * float64(c.n)
	bytes := 8 * float64(c.n) * float64(sa+sb) // blocked: stream each operand once
	t0 := c.obs.Begin()
	if c.f32Gram {
		c.tr.ReduceLocal(flops, bytes/2)
		g := vec.GramF32(x, y)
		c.obs.End(obs.PhaseGram, t0)
		return g
	}
	c.tr.ReduceLocal(flops, bytes)
	g := vec.GramFused(x, y)
	c.obs.End(obs.PhaseGram, t0)
	return g
}

// gramVecLocal computes Xᵀ·v locally.
func (c *ctx) gramVecLocal(x *vec.Block, v []float64) []float64 {
	s := x.S()
	c.tr.ReduceLocal(2*float64(s)*float64(c.n), 8*float64(c.n)*float64(s+1))
	t0 := c.obs.Begin()
	g := vec.GramVecFused(x, v)
	c.obs.End(obs.PhaseGram, t0)
	return g
}

// axpy charges y += α·x.
func (c *ctx) axpy(alpha float64, x, y []float64) {
	t0 := c.obs.Begin()
	vec.Axpy(alpha, x, y)
	c.obs.End(obs.PhaseVector, t0)
	c.tr.VectorOp(2*float64(c.n), 24*float64(c.n))
}

// xpay charges dst = x + α·y.
func (c *ctx) xpay(dst, x []float64, alpha float64, y []float64) {
	t0 := c.obs.Begin()
	vec.XpayInto(dst, x, alpha, y)
	c.obs.End(obs.PhaseVector, t0)
	c.tr.VectorOp(2*float64(c.n), 24*float64(c.n))
}

// threeTermUpdate charges dst = ρ(x − γ·y) + (1−ρ)·w, the BLAS1 pattern of
// PCG3/CA-PCG3 (4 flops per row, 4 streams).
func (c *ctx) threeTermUpdate(dst []float64, rho float64, x []float64, gamma float64, y, w []float64) {
	t0 := c.obs.Begin()
	for i := range dst {
		dst[i] = rho*(x[i]-gamma*y[i]) + (1-rho)*w[i]
	}
	c.obs.End(obs.PhaseVector, t0)
	c.tr.VectorOp(4*float64(c.n), 32*float64(c.n))
}

// blockMulVec charges dst = X·coef (one fused destination sweep).
func (c *ctx) blockMulVec(dst []float64, x *vec.Block, coef []float64) {
	t0 := c.obs.Begin()
	x.CombineFused(dst, coef)
	c.obs.End(obs.PhaseBlockUpdate, t0)
	s := float64(x.S())
	c.tr.VectorOp(2*s*float64(c.n), 8*float64(c.n)*(s+1))
}

// blockMulVecAdd charges dst += X·coef.
func (c *ctx) blockMulVecAdd(dst []float64, x *vec.Block, coef []float64) {
	t0 := c.obs.Begin()
	x.AddScaledFused(dst, 1, coef)
	c.obs.End(obs.PhaseBlockUpdate, t0)
	s := float64(x.S())
	c.tr.VectorOp(2*s*float64(c.n), 8*float64(c.n)*(s+1))
}

// blockMulVecSub charges dst -= X·coef.
func (c *ctx) blockMulVecSub(dst []float64, x *vec.Block, coef []float64) {
	t0 := c.obs.Begin()
	x.AddScaledFused(dst, -1, coef)
	c.obs.End(obs.PhaseBlockUpdate, t0)
	s := float64(x.S())
	c.tr.VectorOp(2*s*float64(c.n), 8*float64(c.n)*(s+1))
}

// blockAddMul charges dst = Y + X·C (the BLAS3 search-direction update).
func (c *ctx) blockAddMul(dst, y, x *vec.Block, coef []float64) {
	t0 := c.obs.Begin()
	vec.AddMulFused(dst, y, x, coef)
	c.obs.End(obs.PhaseBlockUpdate, t0)
	sx, sd := float64(x.S()), float64(dst.S())
	flops := 2 * sx * sd * float64(c.n)
	bytes := 8 * float64(c.n) * (sx + 2*sd)
	c.tr.VectorOp(flops, bytes)
}

// blockMul charges dst = X·C.
func (c *ctx) blockMul(dst, x *vec.Block, coef []float64) {
	t0 := c.obs.Begin()
	vec.MulFused(dst, x, coef)
	c.obs.End(obs.PhaseBlockUpdate, t0)
	sx, sd := float64(x.S()), float64(dst.S())
	c.tr.VectorOp(2*sx*sd*float64(c.n), 8*float64(c.n)*(sx+sd))
}

// trueResidualNorm computes ‖b−Ax‖₂ explicitly (charged: SpMV + local dot +
// allreduce).
func (c *ctx) trueResidualNorm(b, x, scratch []float64) float64 {
	c.spmv(scratch, x)
	vec.Sub(scratch, b, scratch)
	c.tr.VectorOp(float64(c.n), 24*float64(c.n))
	v := c.localDot(scratch, scratch)
	c.allreduce(1)
	return math.Sqrt(v)
}

// finite reports whether all values are finite.
func finite(vals ...float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
