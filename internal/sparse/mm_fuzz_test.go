package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket hardens the only parser of external input: arbitrary
// bytes must produce either a structurally valid CSR or an error — never a
// panic, and never an inconsistent matrix.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.5\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 2.0\n2 1 -1\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n% comment\n\n2 2 1\n1 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		a, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return
		}
		// Structural invariants of any successfully parsed matrix.
		if a.N < 0 || len(a.RowPtr) != a.N+1 || a.RowPtr[0] != 0 {
			t.Fatalf("bad row pointer structure: n=%d len=%d", a.N, len(a.RowPtr))
		}
		if a.RowPtr[a.N] != len(a.Val) || len(a.ColIdx) != len(a.Val) {
			t.Fatal("rowptr/val/colidx inconsistent")
		}
		for i := 0; i < a.N; i++ {
			if a.RowPtr[i] > a.RowPtr[i+1] {
				t.Fatal("rowptr not monotone")
			}
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if a.ColIdx[k] < 0 || a.ColIdx[k] >= a.N {
					t.Fatalf("column %d out of range", a.ColIdx[k])
				}
				if k > a.RowPtr[i] && a.ColIdx[k-1] >= a.ColIdx[k] {
					t.Fatal("columns not strictly sorted within a row")
				}
			}
		}
		// A parsed matrix must survive a write/read round trip.
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, a); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if _, err := ReadMatrixMarket(&buf); err != nil {
			t.Fatalf("re-parse: %v", err)
		}
	})
}
