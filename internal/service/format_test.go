package service

import (
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"spcg/internal/precond"
	"spcg/internal/solver"
	"spcg/internal/sparse"
	"spcg/internal/tune"
)

// TestReorderedPlanSolvesUnpermuted pins the invariant the daemon's solve
// paths rely on: a plan with an RCM permutation solves the permuted system
// (permuted RHS, permuted operator) and UnpermuteVec maps the solution back
// so it agrees component-wise with a natural-order solve. The norm-based
// wire fields cannot see a missing unpermute (norms are permutation
// invariant), so this is checked on the vectors themselves.
func TestReorderedPlanSolvesUnpermuted(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdownServer(t, s)

	// A scrambled grid: large bandwidth, so the RCM combo is structurally
	// meaningful; the explicit want pin keeps the test deterministic.
	grid := sparse.VarCoeff2D(60, 60, 3, 5)
	rng := rand.New(rand.NewSource(11))
	a := sparse.Permute(grid, rng.Perm(grid.Dim()))
	n := a.Dim()
	fp := a.Fingerprint()

	plan := s.formats.resolve(a, fp, "sell+rcm")
	if plan.name != "sell+rcm" || plan.perm == nil || plan.op == nil {
		t.Fatalf("resolve(sell+rcm) = %q perm=%v op=%T", plan.name, plan.perm != nil, plan.op)
	}
	if plan.order() != "rcm" {
		t.Fatalf("order() = %q, want rcm", plan.order())
	}

	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + 0.25*math.Sin(float64(i)*0.11)
	}
	opts := solver.Options{Tol: 1e-10, MaxIterations: 5000}

	mNat, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	xNat, stNat, err := solver.PCG(a, mNat, b, opts)
	if err != nil || !stNat.Converged {
		t.Fatalf("natural solve: %v (converged=%v)", err, stNat != nil && stNat.Converged)
	}

	// The exact sequence runSolo/runBatch perform for a reordered plan.
	mP, err := precond.NewJacobi(plan.mat)
	if err != nil {
		t.Fatal(err)
	}
	optsP := opts
	optsP.Operator = plan.operator()
	xP, stP, err := solver.PCG(plan.mat, mP, sparse.PermuteVec(b, plan.perm), optsP)
	if err != nil || !stP.Converged {
		t.Fatalf("reordered solve: %v (converged=%v)", err, stP != nil && stP.Converged)
	}
	x := sparse.UnpermuteVec(xP, plan.perm)

	for i := range x {
		if d := math.Abs(x[i] - xNat[i]); d > 1e-6*(1+math.Abs(xNat[i])) {
			t.Fatalf("solution differs at %d: reordered %v vs natural %v", i, x[i], xNat[i])
		}
	}

	// The two RCM combos share one permuted CSR (built once).
	if pc := s.formats.resolve(a, fp, "csr+rcm"); pc.mat != plan.mat {
		t.Fatal("csr+rcm and sell+rcm must share the permuted CSR")
	}
	// An unknown pin must fall back to the selector, not fail.
	if pu := s.formats.resolve(a, fp, "bogus"); pu == nil {
		t.Fatal("unknown format pin must resolve")
	}
}

// TestTunedFormatPinServedEndToEnd seeds the tune store with a decision that
// pins "sell+rcm" and drives a method:"auto" request through the HTTP
// surface: the solve must run on the pinned combo (visible in the result's
// Format field and the spcgd_format_* metrics) and return the same solution
// norm as a plain natural-order solve — solutions of reordered combos leave
// the daemon un-permuted.
func TestTunedFormatPinServedEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2, BatchWindow: time.Millisecond})
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const name = "poisson2d:64"
	_, fp, err := s.reg.get(name)
	if err != nil {
		t.Fatal(err)
	}
	c := tune.Candidate{Method: "pcg", Precond: "jacobi", Format: "sell+rcm"}
	if err := s.tuner.store.Put(&tune.Decision{
		Fingerprint: tune.FpString(fp),
		Winner:      c,
		Ranked:      []tune.RankedCandidate{{Candidate: c}},
		Source:      "tuned",
	}); err != nil {
		t.Fatal(err)
	}

	code, st := postSolve(t, ts.URL, SolveRequest{Matrix: name, Method: "auto"})
	if code != http.StatusOK || st.Result == nil || !st.Result.Converged {
		t.Fatalf("auto solve: HTTP %d result=%+v", code, st.Result)
	}
	if st.Result.Format != "sell+rcm" {
		t.Fatalf("Format = %q, want sell+rcm", st.Result.Format)
	}

	code, stNat := postSolve(t, ts.URL, SolveRequest{Matrix: name, Method: "pcg", Precond: "jacobi"})
	if code != http.StatusOK || stNat.Result == nil || !stNat.Result.Converged {
		t.Fatalf("natural solve: HTTP %d result=%+v", code, stNat.Result)
	}
	if stNat.Result.Format != "csr" {
		t.Fatalf("natural Format = %q, want csr (below probe threshold)", stNat.Result.Format)
	}
	if d := math.Abs(st.Result.XNorm - stNat.Result.XNorm); d > 1e-6*(1+stNat.Result.XNorm) {
		t.Fatalf("XNorm %v (reordered) vs %v (natural): solution left the daemon permuted?",
			st.Result.XNorm, stNat.Result.XNorm)
	}

	m := getMetrics(t, ts.URL)
	if m.Formats.SellSolves < 1 || m.Formats.RCMSolves < 1 {
		t.Fatalf("format metrics: %+v, want ≥1 sell and ≥1 rcm solve", m.Formats)
	}
	if m.Formats.Conversions < 1 {
		t.Fatalf("format metrics: %+v, want ≥1 conversion", m.Formats)
	}
	if m.Formats.CSRSolves < 1 {
		t.Fatalf("format metrics: %+v, want ≥1 csr solve", m.Formats)
	}
	if m.Formats.CacheEntries < 1 {
		t.Fatalf("format cache entries = %d, want ≥1", m.Formats.CacheEntries)
	}
}
