package solver

import (
	"math"
	"testing"

	"spcg/internal/basis"
	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

type beat struct {
	iter int
	rel  float64
}

func TestPCGProgressHeartbeat(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	b, _ := testProblem(a)
	m, _ := precond.NewJacobi(a)
	var beats []beat
	_, st, err := PCG(a, m, b, Options{
		Tol: 1e-8, Criterion: RecursiveResidualMNorm,
		OnProgress: func(it int, rel float64) { beats = append(beats, beat{it, rel}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("did not converge")
	}
	if len(beats) == 0 {
		t.Fatal("no heartbeats fired")
	}
	if st.Heartbeats != len(beats) {
		t.Fatalf("Stats.Heartbeats = %d, hook fired %d times", st.Heartbeats, len(beats))
	}
	// Iterations reported to the hook are monotone nondecreasing and the
	// final beat matches the final stats.
	for i := 1; i < len(beats); i++ {
		if beats[i].iter < beats[i-1].iter {
			t.Fatalf("iteration stream not monotone: %v then %v", beats[i-1], beats[i])
		}
	}
	last := beats[len(beats)-1]
	if last.iter != st.Iterations || last.rel != st.FinalRelative {
		t.Fatalf("final beat %+v != stats (%d, %v)", last, st.Iterations, st.FinalRelative)
	}
	if st.BestRelative > st.FinalRelative {
		t.Fatalf("BestRelative %v > FinalRelative %v", st.BestRelative, st.FinalRelative)
	}
	if math.IsInf(st.BestRelative, 1) {
		t.Fatal("BestRelative never updated")
	}
}

func TestSPCGProgressHeartbeat(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	b, _ := testProblem(a)
	m, _ := precond.NewJacobi(a)
	var beats []beat
	_, st, err := SPCG(a, m, b, Options{
		S: 5, Basis: basis.Chebyshev, Tol: 1e-8, Criterion: RecursiveResidualMNorm,
		OnProgress: func(it int, rel float64) { beats = append(beats, beat{it, rel}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || len(beats) == 0 {
		t.Fatalf("converged=%v beats=%d", st.Converged, len(beats))
	}
	if st.Heartbeats != len(beats) {
		t.Fatalf("Heartbeats = %d, hook fired %d times", st.Heartbeats, len(beats))
	}
}

// TestAdaptiveHeartbeatAcrossCascade is the regression test for carrying the
// stagnation/heartbeat fields across SPCGAdaptive's phases: the degenerate
// basis forces the full 4 → 2 → 1 cascade, and the external observer must see
// one monotone iteration stream with cascade-wide aggregates.
func TestAdaptiveHeartbeatAcrossCascade(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	b, _ := testProblem(a)
	m, _ := precond.NewJacobi(a)
	var beats []beat
	_, st, err := SPCGAdaptive(a, m, b, Options{
		S: 4, BasisParams: degenerateNewtonParams(4), Tol: 1e-9,
		Criterion:  RecursiveResidualMNorm,
		OnProgress: func(it int, rel float64) { beats = append(beats, beat{it, rel}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("cascade did not converge: %+v", st.Breakdown)
	}
	if st.Restarts != 2 {
		t.Fatalf("Restarts = %d, want 2 (4→2→1)", st.Restarts)
	}
	if len(beats) == 0 {
		t.Fatal("no heartbeats across the cascade")
	}
	if st.Heartbeats != len(beats) {
		t.Fatalf("aggregate Heartbeats = %d, hook fired %d times", st.Heartbeats, len(beats))
	}
	// The rebased iteration stream must never restart from zero at a phase
	// boundary: each beat's count is >= its predecessor's.
	for i := 1; i < len(beats); i++ {
		if beats[i].iter < beats[i-1].iter {
			t.Fatalf("cascade iteration stream went backwards at beat %d: %v then %v",
				i, beats[i-1], beats[i])
		}
	}
	// BestRelative is the minimum over every beat of every phase.
	min := math.Inf(1)
	for _, bt := range beats {
		if bt.rel < min {
			min = bt.rel
		}
	}
	if st.BestRelative != min {
		t.Fatalf("BestRelative = %v, min over beats = %v", st.BestRelative, min)
	}
}

func TestBatchPCGProgressHeartbeat(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	n := a.Dim()
	k := 3
	bs := vec.NewBlock(n, k)
	for j := 0; j < k; j++ {
		col := bs.Col(j)
		for i := range col {
			col[i] = float64((i+j)%7) - 3
		}
	}
	m, _ := precond.NewJacobi(a)
	var beats []beat
	_, stats, err := BatchPCG(a, m, bs, Options{
		Tol: 1e-9, Criterion: RecursiveResidualMNorm,
		OnProgress: func(it int, rel float64) { beats = append(beats, beat{it, rel}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(beats) == 0 {
		t.Fatal("no block heartbeats")
	}
	for i := 1; i < len(beats); i++ {
		if beats[i].iter != beats[i-1].iter+1 {
			t.Fatalf("block heartbeat skipped: %v then %v", beats[i-1], beats[i])
		}
	}
	for j, st := range stats {
		if !st.Converged {
			t.Fatalf("column %d did not converge", j)
		}
		if st.Heartbeats == 0 || math.IsInf(st.BestRelative, 1) {
			t.Fatalf("column %d heartbeat fields not tracked: %+v", j, st)
		}
		if st.BestRelative > st.FinalRelative {
			t.Fatalf("column %d BestRelative %v > FinalRelative %v", j, st.BestRelative, st.FinalRelative)
		}
	}
}
