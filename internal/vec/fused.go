// Fused, cache-blocked block-vector kernels dispatched on the shared worker
// pool (internal/pool). These are the shared-memory realization of the
// paper's s-step argument: instead of s (or s²) separate n-length BLAS1
// sweeps, each kernel makes one pass over its operands with row tiles sized
// to stay cache-resident and 4-way column-grouped inner loops.
//
// Determinism: every kernel partitions rows by the pool's fixed chunking and
// combines per-part accumulators in part order, so results are bitwise
// reproducible for a fixed worker count (and identical whether a dispatch
// runs parallel or inline).
package vec

import (
	"fmt"

	"spcg/internal/pool"
)

// gramTileBytes bounds the working set of one Gram tile: tile rows are chosen
// so that one tile of X plus one tile of Y (~(sa+sb)·tile·8 bytes) fits
// comfortably in L2, making the s×s accumulation a single memory pass.
const gramTileBytes = 1 << 19

// combineTileRows is the row-tile length for the fused combine kernels: the
// destination tile (32 KB) stays L1/L2-resident across column groups, so dst
// is streamed from memory once regardless of the column count.
const combineTileRows = 1 << 12

// gramTile returns the row-tile length for an sa×sb Gram accumulation.
func gramTile(sa, sb int) int {
	t := gramTileBytes / (8 * (sa + sb))
	if t < 512 {
		t = 512
	}
	if t > 1<<13 {
		t = 1 << 13
	}
	return t
}

// GramFused computes the sᵃ×sᵇ matrix Xᵀ·Y (row-major, like Gram) in one
// cache-blocked pass over X and Y, instead of Gram's sᵃ·sᵇ independent
// n-length Dot streams. Rows are tiled so both operand tiles stay in L2;
// each pool worker accumulates a private sᵃ×sᵇ block over its fixed row
// chunk and the partials are reduced in part order.
func GramFused(x, y *Block) []float64 {
	if x.N != y.N {
		panic("vec: GramFused row-count mismatch")
	}
	sa, sb := x.S(), y.S()
	out := make([]float64, sa*sb)
	if sa == 0 || sb == 0 || x.N == 0 {
		return out
	}
	pool.CountFusedGram()
	p := pool.Default()
	n := x.N
	if n*sa*sb < parallelThreshold || p.Workers() == 1 {
		gramAccum(out, x, y, 0, n)
		return out
	}
	parts := p.NumParts(n)
	partials := make([]float64, parts*sa*sb)
	p.Run(n, func(part, lo, hi int) {
		gramAccum(partials[part*sa*sb:(part+1)*sa*sb], x, y, lo, hi)
	})
	for t := 0; t < parts; t++ {
		acc := partials[t*sa*sb : (t+1)*sa*sb]
		for i, v := range acc {
			out[i] += v
		}
	}
	return out
}

// gramAccum adds Xᵀ·Y over rows [lo,hi) into acc, tile by tile.
func gramAccum(acc []float64, x, y *Block, lo, hi int) {
	sa, sb := x.S(), y.S()
	tile := gramTile(sa, sb)
	for t := lo; t < hi; t += tile {
		te := t + tile
		if te > hi {
			te = hi
		}
		for i := 0; i < sa; i++ {
			xi := x.Cols[i][t:te]
			row := acc[i*sb : (i+1)*sb]
			for j := 0; j < sb; j++ {
				row[j] += Dot(xi, y.Cols[j][t:te])
			}
		}
	}
}

// GramVecFused computes Xᵀ·v with v's tiles kept cache-resident across the
// block's columns (one memory pass over X and v).
func GramVecFused(x *Block, v []float64) []float64 {
	if len(v) != x.N {
		panic("vec: GramVecFused length mismatch")
	}
	s := x.S()
	out := make([]float64, s)
	if s == 0 || x.N == 0 {
		return out
	}
	pool.CountFusedGram()
	p := pool.Default()
	n := x.N
	if n*s < parallelThreshold || p.Workers() == 1 {
		gramVecAccum(out, x, v, 0, n)
		return out
	}
	parts := p.NumParts(n)
	partials := make([]float64, parts*s)
	p.Run(n, func(part, lo, hi int) {
		gramVecAccum(partials[part*s:(part+1)*s], x, v, lo, hi)
	})
	for t := 0; t < parts; t++ {
		for i, pv := range partials[t*s : (t+1)*s] {
			out[i] += pv
		}
	}
	return out
}

func gramVecAccum(acc []float64, x *Block, v []float64, lo, hi int) {
	tile := gramTile(x.S(), 1)
	for t := lo; t < hi; t += tile {
		te := t + tile
		if te > hi {
			te = hi
		}
		vt := v[t:te]
		for i, col := range x.Cols {
			acc[i] += Dot(col[t:te], vt)
		}
	}
}

// combineSpan computes, over the span d (rows [off, off+len(d)) of the
// block), one destination sweep of a multi-column update:
//
//	base == nil: d (+)= Σ_i coef[i]·cols[i]   ("+=" when accumulate)
//	base != nil: d  = base + Σ_i coef[i]·cols[i]
//
// Columns are processed in groups of four so the inner loop carries four
// independent FMA streams while d stays register/cache resident.
func combineSpan(d []float64, cols [][]float64, coef []float64, off int, base []float64, accumulate bool) {
	n := len(d)
	i := 0
	if !accumulate {
		switch {
		case len(cols) == 0:
			if base != nil {
				copy(d, base)
			} else {
				Zero(d)
			}
			return
		case base != nil:
			x0 := cols[0][off : off+n]
			c0 := coef[0]
			for r := 0; r < n; r++ {
				d[r] = base[r] + c0*x0[r]
			}
			i = 1
		case len(cols) >= 2:
			x0, x1 := cols[0][off:off+n], cols[1][off:off+n]
			c0, c1 := coef[0], coef[1]
			for r := 0; r < n; r++ {
				d[r] = c0*x0[r] + c1*x1[r]
			}
			i = 2
		default:
			x0 := cols[0][off : off+n]
			c0 := coef[0]
			for r := 0; r < n; r++ {
				d[r] = c0 * x0[r]
			}
			i = 1
		}
	}
	for ; i+4 <= len(cols); i += 4 {
		x0, x1 := cols[i][off:off+n], cols[i+1][off:off+n]
		x2, x3 := cols[i+2][off:off+n], cols[i+3][off:off+n]
		c0, c1, c2, c3 := coef[i], coef[i+1], coef[i+2], coef[i+3]
		for r := 0; r < n; r++ {
			d[r] += c0*x0[r] + c1*x1[r] + c2*x2[r] + c3*x3[r]
		}
	}
	switch len(cols) - i {
	case 3:
		x0, x1, x2 := cols[i][off:off+n], cols[i+1][off:off+n], cols[i+2][off:off+n]
		c0, c1, c2 := coef[i], coef[i+1], coef[i+2]
		for r := 0; r < n; r++ {
			d[r] += c0*x0[r] + c1*x1[r] + c2*x2[r]
		}
	case 2:
		x0, x1 := cols[i][off:off+n], cols[i+1][off:off+n]
		c0, c1 := coef[i], coef[i+1]
		for r := 0; r < n; r++ {
			d[r] += c0*x0[r] + c1*x1[r]
		}
	case 1:
		x0 := cols[i][off : off+n]
		c0 := coef[i]
		for r := 0; r < n; r++ {
			d[r] += c0 * x0[r]
		}
	}
}

// CombineFused computes dst = X·c (the tall-skinny GEMV of Block.MulVec) in
// one destination sweep instead of s Axpy passes. dst must not alias a
// column of the block.
func (b *Block) CombineFused(dst []float64, c []float64) {
	if len(c) != b.S() {
		panic(fmt.Sprintf("vec: CombineFused coefficient length %d != %d columns", len(c), b.S()))
	}
	if len(dst) != b.N {
		panic("vec: CombineFused dst length mismatch")
	}
	pool.CountFusedCombine()
	p := pool.Default()
	if b.N*(b.S()+1) < parallelThreshold || p.Workers() == 1 {
		combineSpan(dst, b.Cols, c, 0, nil, false)
		return
	}
	p.Run(b.N, func(part, lo, hi int) {
		combineSpan(dst[lo:hi], b.Cols, c, lo, nil, false)
	})
}

// AddScaledFused computes dst += alpha·(X·c) in one destination sweep
// instead of s Axpy passes (alpha = ±1 covers the solvers' x += P·a and
// r −= AP·a updates).
func (b *Block) AddScaledFused(dst []float64, alpha float64, c []float64) {
	if len(c) != b.S() {
		panic("vec: AddScaledFused coefficient length mismatch")
	}
	if len(dst) != b.N {
		panic("vec: AddScaledFused dst length mismatch")
	}
	coef := c
	//spcglint:ignore floatcmp exact literal-1 fast path: skips the scale pass without changing results
	if alpha != 1 {
		coef = make([]float64, len(c))
		for i, v := range c {
			coef[i] = alpha * v
		}
	}
	pool.CountFusedCombine()
	p := pool.Default()
	if b.N*(b.S()+1) < parallelThreshold || p.Workers() == 1 {
		combineSpan(dst, b.Cols, coef, 0, nil, true)
		return
	}
	p.Run(b.N, func(part, lo, hi int) {
		combineSpan(dst[lo:hi], b.Cols, coef, lo, nil, true)
	})
}

// transposeCoef gathers C's column j (strided in the row-major sx×sd layout)
// into contiguous per-destination coefficient rows: ct[j*sx+i] = c[i*sd+j].
func transposeCoef(c []float64, sx, sd int) []float64 {
	ct := make([]float64, len(c))
	for j := 0; j < sd; j++ {
		for i := 0; i < sx; i++ {
			ct[j*sx+i] = c[i*sd+j]
		}
	}
	return ct
}

// AddMulFused computes dst = Y + X·C (the BLAS3 search-direction update of
// AddMul) with one destination sweep per column: rows are tiled so each dst
// tile is written once while the column groups accumulate into it. dst must
// not share columns with x; dst may equal y.
func AddMulFused(dst, y, x *Block, c []float64) {
	sx, sd := x.S(), dst.S()
	if y.S() != sd || len(c) != sx*sd || y.N != x.N || dst.N != x.N {
		panic("vec: AddMulFused shape mismatch")
	}
	if sd == 0 || dst.N == 0 {
		return
	}
	pool.CountFusedCombine()
	ct := transposeCoef(c, sx, sd)
	p := pool.Default()
	if dst.N*(sx+1) < parallelThreshold || p.Workers() == 1 {
		addMulRange(dst, y, x, ct, 0, dst.N)
		return
	}
	p.Run(dst.N, func(part, lo, hi int) {
		addMulRange(dst, y, x, ct, lo, hi)
	})
}

// addMulRange applies the fused update to rows [lo,hi), tile by tile.
func addMulRange(dst, y, x *Block, ct []float64, lo, hi int) {
	sx, sd := x.S(), dst.S()
	for t := lo; t < hi; t += combineTileRows {
		te := t + combineTileRows
		if te > hi {
			te = hi
		}
		for j := 0; j < sd; j++ {
			d, yc := dst.Cols[j][t:te], y.Cols[j]
			base := yc[t:te]
			if &d[0] == &base[0] {
				// dst aliases y: accumulate in place.
				combineSpan(d, x.Cols, ct[j*sx:(j+1)*sx], t, nil, true)
			} else {
				combineSpan(d, x.Cols, ct[j*sx:(j+1)*sx], t, base, false)
			}
		}
	}
}

// MulFused computes dst = X·C (AddMulFused with Y = 0): one destination
// sweep per column instead of sx Axpy passes.
func MulFused(dst, x *Block, c []float64) {
	sx, sd := x.S(), dst.S()
	if len(c) != sx*sd || dst.N != x.N {
		panic("vec: MulFused shape mismatch")
	}
	if sd == 0 || dst.N == 0 {
		return
	}
	pool.CountFusedCombine()
	ct := transposeCoef(c, sx, sd)
	p := pool.Default()
	if dst.N*(sx+1) < parallelThreshold || p.Workers() == 1 {
		mulRange(dst, x, ct, 0, dst.N)
		return
	}
	p.Run(dst.N, func(part, lo, hi int) {
		mulRange(dst, x, ct, lo, hi)
	})
}

func mulRange(dst, x *Block, ct []float64, lo, hi int) {
	sx, sd := x.S(), dst.S()
	for t := lo; t < hi; t += combineTileRows {
		te := t + combineTileRows
		if te > hi {
			te = hi
		}
		for j := 0; j < sd; j++ {
			combineSpan(dst.Cols[j][t:te], x.Cols, ct[j*sx:(j+1)*sx], t, nil, false)
		}
	}
}
