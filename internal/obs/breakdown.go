package obs

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// PhaseStat is one phase's aggregate over a trace: how many spans, their
// total wall time, and the summed payload (collective values, dispatch
// parts). The aggregates are exact even when the span ring has wrapped.
type PhaseStat struct {
	// Phase is the stable snake_case phase name (Phase.String).
	Phase string `json:"phase"`
	// Count is the number of spans recorded for the phase.
	Count int64 `json:"count"`
	// Seconds is the summed span duration. Counting-only phases
	// (collective, halo, dispatch) report 0 — their time is charged inside
	// other phases or exists only in the distributed cost model.
	Seconds float64 `json:"seconds"`
	// Payload is the summed span payload: reduced float64 values for
	// collectives, pool parts for dispatches, 0 elsewhere.
	Payload int64 `json:"payload,omitempty"`
}

// Breakdown is the per-solve phase summary — the repo's analogue of the
// paper's Table 3 row: where the wall time went and how many collectives the
// run needed.
type Breakdown struct {
	// TotalSeconds sums the timed phases' wall time (excludes
	// counting-only phases by construction, since they carry no duration).
	TotalSeconds float64 `json:"total_seconds"`
	// Collectives and CollectiveValues total the global reductions and
	// their reduced float64 payload (the Table 1 scalability columns).
	Collectives      int64 `json:"collectives"`
	CollectiveValues int64 `json:"collective_values"`
	// Phases lists every phase with at least one span, in Phase order.
	Phases []PhaseStat `json:"phases"`
	// SpansRetained and SpansDropped describe the ring's state: retained
	// raw spans available from Spans, and spans overwritten after wrap.
	SpansRetained int    `json:"spans_retained"`
	SpansDropped  uint64 `json:"spans_dropped"`
}

// Breakdown aggregates the trace into per-phase stats. Safe on a nil tracer
// (returns the zero Breakdown).
func (t *Tracer) Breakdown() Breakdown {
	var b Breakdown
	if t == nil {
		return b
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for p := Phase(0); p < NumPhases; p++ {
		a := t.agg[p]
		if a.count == 0 {
			continue
		}
		st := PhaseStat{
			Phase:   p.String(),
			Count:   a.count,
			Seconds: float64(a.nanos) / 1e9,
			Payload: a.payload,
		}
		b.Phases = append(b.Phases, st)
		b.TotalSeconds += st.Seconds
		if p == PhaseCollective {
			b.Collectives = a.count
			b.CollectiveValues = a.payload
		}
	}
	b.SpansRetained = len(t.ring)
	b.SpansDropped = t.dropped
	return b
}

// Render writes the breakdown as an aligned table mirroring the paper's
// Table 3 decomposition: one row per phase with count, time, share of timed
// work, and payload where meaningful.
func (b Breakdown) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tcount\ttime\tshare\tpayload")
	for _, st := range b.Phases {
		share := "-"
		if st.Seconds > 0 && b.TotalSeconds > 0 {
			share = fmt.Sprintf("%.1f%%", 100*st.Seconds/b.TotalSeconds)
		}
		payload := "-"
		if st.Payload != 0 {
			payload = fmt.Sprintf("%d", st.Payload)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\n", st.Phase, st.Count, fmtSeconds(st.Seconds), share, payload)
	}
	fmt.Fprintf(tw, "total\t\t%s\t\t%d collectives (%d values)\n",
		fmtSeconds(b.TotalSeconds), b.Collectives, b.CollectiveValues)
	tw.Flush()
}

// fmtSeconds renders a duration with a unit fitted to its magnitude.
func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-6:
		return fmt.Sprintf("%.0fns", s*1e9)
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}
