// Package dir exercises the //spcglint:ignore directive machinery: a valid
// suppression, a directive with no reason, and one naming an unknown
// analyzer. The malformed ones are reported and do not suppress.
package dir

// Suppressed's comparison is covered by a well-formed directive.
//
//spcglint:ignore floatcmp fixture exercises the suppression mechanism
func Suppressed(a, b float64) bool { return a == b }

// NoReason's directive omits the mandatory reason.
//
//spcglint:ignore floatcmp
func NoReason(a, b float64) bool { return a == b }

// Unknown's directive names a nonexistent analyzer.
//
//spcglint:ignore nosuch because the analyzer does not exist
func Unknown(a, b float64) bool { return a == b }
