// Command spcggw is the fingerprint-affinity gateway in front of a pool of
// spcgd backends (see internal/gateway and docs/SCALING.md):
//
//	spcggw -backends http://h1:8097,http://h2:8097 [-addr :8096]
//	       [-vnodes 64] [-probe-interval 1s] [-probe-timeout 2s]
//	       [-dead-after 2] [-retries 2] [-spill 1] [-retry-backoff 50ms]
//	       [-attempt-timeout 5m]
//
// Endpoints mirror the daemon's solve surface (POST /solve, GET /jobs/{id},
// POST /jobs/{id}/cancel, GET /matrices, POST /tune, GET /tune/{matrix})
// plus the gateway's own: GET /affinity/{matrix} (the routing decision),
// GET /backends (pool membership and ring shares), GET /metrics (spcggw_*),
// GET /healthz (503 once no backend is routable). SIGINT/SIGTERM stop the
// prober and close the listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spcg/internal/gateway"
)

func main() {
	addr := flag.String("addr", ":8096", "listen address")
	backends := flag.String("backends", "", "comma-separated spcgd base URLs (required)")
	vnodes := flag.Int("vnodes", 64, "hash-ring virtual nodes per backend")
	probeInterval := flag.Duration("probe-interval", time.Second, "health-probe period")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
	deadAfter := flag.Int("dead-after", 2, "consecutive probe failures before a backend is dead")
	retries := flag.Int("retries", 2, "failover budget: extra backends tried after transport failure or retryable 5xx")
	spill := flag.Int("spill", 1, "spill budget: replicas tried after a 429 before propagating backpressure")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond, "base backoff between failover attempts (doubles per attempt)")
	attemptTimeout := flag.Duration("attempt-timeout", 5*time.Minute, "per-backend-attempt timeout (covers a sync solve)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "spcggw: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "spcggw: -backends is required (comma-separated spcgd base URLs)")
		os.Exit(2)
	}

	gw, err := gateway.New(gateway.Config{
		Backends:       urls,
		VNodes:         *vnodes,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		DeadAfter:      *deadAfter,
		Retries:        *retries,
		SpillDepth:     *spill,
		RetryBackoff:   *retryBackoff,
		AttemptTimeout: *attemptTimeout,
	})
	if err != nil {
		log.Fatalf("spcggw: %v", err)
	}

	// WriteTimeout covers a proxied sync solve plus the full failover walk.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *attemptTimeout*time.Duration(1+*retries+*spill) + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("spcggw listening on %s (backends=%d vnodes=%d retries=%d spill=%d)",
		*addr, len(urls), *vnodes, *retries, *spill)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("spcggw: %v: shutting down...", s)
	case err := <-errCh:
		log.Fatalf("spcggw: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("spcggw: http shutdown: %v", err)
	}
	gw.Close()
	log.Printf("spcggw: bye")
}
