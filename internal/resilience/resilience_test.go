package resilience

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHeartbeatImprovementThreshold(t *testing.T) {
	h := NewHeartbeat(0.01)
	h.Record(1, 1.0)
	s := h.Snapshot()
	if s.Best != 1.0 || s.Beats != 1 || s.Iterations != 1 {
		t.Fatalf("after first beat: %+v", s)
	}
	// A 0.5% improvement does not move the improvement clock or best.
	h.Record(2, 0.995)
	if s = h.Snapshot(); s.Best != 1.0 {
		t.Fatalf("sub-threshold improvement moved best: %+v", s)
	}
	if s.Relative != 0.995 || s.Iterations != 2 {
		t.Fatalf("last-seen values not tracked: %+v", s)
	}
	// A 50% improvement does.
	h.Record(3, 0.5)
	if s = h.Snapshot(); s.Best != 0.5 {
		t.Fatalf("qualifying improvement ignored: %+v", s)
	}
}

func TestHeartbeatStartsWithInfBest(t *testing.T) {
	h := NewHeartbeat(0)
	if s := h.Snapshot(); !math.IsInf(s.Best, 1) || s.Beats != 0 {
		t.Fatalf("fresh heartbeat: %+v", s)
	}
}

func TestWatchStagnates(t *testing.T) {
	h := NewHeartbeat(0.01)
	h.Record(1, 1.0)
	stop := make(chan struct{})
	defer close(stop)
	got := make(chan HeartbeatSnapshot, 1)
	go Watch(stop, h, WatchdogConfig{Interval: 5 * time.Millisecond, Window: 40 * time.Millisecond}, func(s HeartbeatSnapshot) {
		got <- s
	})
	// Keep beating without improving: still stagnation.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case s := <-got:
			if s.SinceImprove < 40*time.Millisecond {
				t.Fatalf("fired early: %+v", s)
			}
			return
		case <-deadline:
			t.Fatal("watchdog never fired on a non-improving heartbeat")
		default:
			h.Record(2, 1.0)
			time.Sleep(time.Millisecond)
		}
	}
}

func TestWatchStopsQuietlyOnProgress(t *testing.T) {
	h := NewHeartbeat(0.01)
	stop := make(chan struct{})
	fired := make(chan struct{}, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		Watch(stop, h, WatchdogConfig{Interval: 5 * time.Millisecond, Window: time.Second}, func(HeartbeatSnapshot) {
			fired <- struct{}{}
		})
	}()
	// Improve steadily, then stop the watch as a completed solve would.
	rel := 1.0
	for i := 0; i < 20; i++ {
		h.Record(i+1, rel)
		rel *= 0.5
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case <-fired:
		t.Fatal("watchdog fired on an improving solve")
	default:
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreakers(BreakerConfig{Failures: 2, Cooldown: time.Hour})
	key := Key{Fingerprint: 7, Method: "spcg", S: 8}
	now := time.Now()

	if ok, _ := b.Allow(key, now); !ok {
		t.Fatal("fresh key not allowed")
	}
	if tr := b.Record(key, false, now); tr != NoTransition {
		t.Fatalf("first failure: %v", tr)
	}
	if tr := b.Record(key, false, now); tr != Opened {
		t.Fatalf("second failure should open: %v", tr)
	}
	if b.OpenCount() != 1 {
		t.Fatalf("OpenCount = %d", b.OpenCount())
	}
	if ok, _ := b.Allow(key, now.Add(time.Minute)); ok {
		t.Fatal("open circuit inside cooldown allowed a request")
	}
	// Cooldown elapses: exactly one probe gets through.
	later := now.Add(2 * time.Hour)
	ok, probe := b.Allow(key, later)
	if !ok || !probe {
		t.Fatalf("expected half-open probe, got ok=%v probe=%v", ok, probe)
	}
	if ok, _ := b.Allow(key, later); ok {
		t.Fatal("second caller admitted while probe in flight")
	}
	// Failed probe re-opens for another full cooldown.
	if tr := b.Record(key, false, later); tr != Opened {
		t.Fatalf("failed probe: %v", tr)
	}
	if ok, _ := b.Allow(key, later.Add(time.Minute)); ok {
		t.Fatal("re-opened circuit admitted a request inside cooldown")
	}
	// Successful probe closes.
	evenLater := later.Add(2 * time.Hour)
	if ok, probe := b.Allow(key, evenLater); !ok || !probe {
		t.Fatal("no probe after second cooldown")
	}
	if tr := b.Record(key, true, evenLater); tr != Restored {
		t.Fatalf("successful probe: %v", tr)
	}
	if b.OpenCount() != 0 {
		t.Fatalf("OpenCount after restore = %d", b.OpenCount())
	}
	if ok, probe := b.Allow(key, evenLater); !ok || probe {
		t.Fatalf("closed circuit: ok=%v probe=%v", ok, probe)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreakers(BreakerConfig{Failures: 3, Cooldown: time.Hour})
	key := Key{Fingerprint: 1, Method: "capcg", S: 4}
	now := time.Now()
	b.Record(key, false, now)
	b.Record(key, false, now)
	b.Record(key, true, now) // streak broken
	b.Record(key, false, now)
	b.Record(key, false, now)
	if b.OpenCount() != 0 {
		t.Fatal("non-consecutive failures opened the circuit")
	}
	if tr := b.Record(key, false, now); tr != Opened {
		t.Fatalf("third consecutive failure: %v", tr)
	}
	open := b.Open()
	if len(open) != 1 || open[0].Key != key || open[0].State != BreakerOpen {
		t.Fatalf("Open() = %+v", open)
	}
}

func TestBreakerKeysAreIndependent(t *testing.T) {
	b := NewBreakers(BreakerConfig{Failures: 1, Cooldown: time.Hour})
	now := time.Now()
	k1 := Key{Fingerprint: 1, Method: "spcg", S: 8}
	k2 := Key{Fingerprint: 1, Method: "spcg", S: 4}
	b.Record(k1, false, now)
	if ok, _ := b.Allow(k1, now); ok {
		t.Fatal("k1 should be open")
	}
	if ok, _ := b.Allow(k2, now); !ok {
		t.Fatal("k2 tripped by k1's failures")
	}
}

func TestSafeCapturesPanic(t *testing.T) {
	err := Safe(func() { panic("kaboom") })
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic value lost: %v", err)
	}
	if !strings.Contains(err.Error(), "goroutine") {
		t.Fatalf("stack missing: %v", err)
	}
	if len(err.Error()) > maxStackBytes+256 {
		t.Fatalf("stack not truncated: %d bytes", len(err.Error()))
	}
	if err := Safe(func() {}); err != nil {
		t.Fatalf("clean run returned %v", err)
	}
}

func TestRateWindow(t *testing.T) {
	w := NewRateWindow(10)
	if w.Rate() != 0 {
		t.Fatal("fresh window has nonzero rate")
	}
	w.Add(5)
	w.Add(5)
	if r := w.Rate(); r != 1.0 {
		t.Fatalf("rate = %v, want 10 events / 10 s = 1", r)
	}
}

func TestHealthStrings(t *testing.T) {
	for h, want := range map[Health]string{Healthy: "healthy", Degraded: "degraded", Draining: "draining"} {
		if h.String() != want {
			t.Fatalf("%d.String() = %q", h, h.String())
		}
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[BreakerState]string{BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open"} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}
