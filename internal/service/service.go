// Package service implements the spcgd solve daemon: a concurrent,
// stdlib-only JSON façade over the solver stack. It adds three serving-side
// capabilities on top of the numerical code:
//
//   - a bounded worker pool with admission control (queue full → immediate
//     rejection rather than unbounded buffering);
//   - a setup cache keyed by (matrix fingerprint, preconditioner spec) that
//     reuses preconditioner construction and Lanczos spectral estimates
//     across requests — the expensive "excluded from timings" setup work of
//     the paper, amortized across a serving workload;
//   - request coalescing: concurrent PCG requests for the same matrix and
//     tolerance arriving within a short window are solved together as one
//     multi-RHS block solve (solver.BatchPCG), sharing the SpMV sweeps.
//
// Cancellation is cooperative end to end: every job carries a context whose
// Done channel is plumbed into Options.Cancel, so deadlines and explicit
// /jobs/{id}/cancel calls stop the iteration loop and still return partial
// Stats.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"spcg/internal/basis"
	"spcg/internal/obs"
	"spcg/internal/precond"
	"spcg/internal/solver"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// Config sizes the server. The zero value gets sensible defaults.
type Config struct {
	// Workers is the solver pool size (default: NumCPU, max 8).
	Workers int
	// QueueDepth bounds admitted-but-unfinished jobs; submissions beyond it
	// are rejected with ErrQueueFull (default 64).
	QueueDepth int
	// BatchWindow is how long the first PCG request for a matrix waits for
	// same-matrix companions before solving (default 2ms).
	BatchWindow time.Duration
	// BatchMax flushes a pending batch immediately once it holds this many
	// requests (default 8; 1 disables coalescing).
	BatchMax int
	// CacheSize is the setup-cache capacity in (matrix, preconditioner)
	// entries (default 32).
	CacheSize int
	// DefaultTimeout bounds each job's wall time when the request does not
	// set timeout_ms (default 120s).
	DefaultTimeout time.Duration
	// Scale divides the suite problem sizes, as in `spcgbench -scale`
	// (default 100: small enough for interactive serving).
	Scale int
	// MaxMatrixDim rejects generator requests beyond this dimension
	// (default 1<<22).
	MaxMatrixDim int
	// MaxDoneJobs bounds retained finished jobs (default 512).
	MaxDoneJobs int
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.NumCPU()
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMax < 1 {
		c.BatchMax = 8
	}
	if c.CacheSize < 1 {
		c.CacheSize = 32
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 120 * time.Second
	}
	if c.Scale < 1 {
		c.Scale = 100
	}
	if c.MaxMatrixDim < 1 {
		c.MaxMatrixDim = 1 << 22
	}
	if c.MaxDoneJobs < 1 {
		c.MaxDoneJobs = 512
	}
	return c
}

// ErrQueueFull is returned by Submit when admission control rejects a job.
var ErrQueueFull = fmt.Errorf("service: queue full")

// ErrShuttingDown is returned by Submit after Shutdown has begun.
var ErrShuttingDown = fmt.Errorf("service: shutting down")

// solverFn is the shared solver signature served by the method table.
type solverFn = func(*sparse.CSR, precond.Interface, []float64, solver.Options) ([]float64, *solver.Stats, error)

func methodTable() map[string]solverFn {
	return map[string]solverFn{
		"pcg":       solver.PCG,
		"pcg3":      solver.PCG3,
		"spcg":      solver.SPCG,
		"spcgmon":   solver.SPCGMon,
		"capcg":     solver.CAPCG,
		"capcg3":    solver.CAPCG3,
		"adaptive":  solver.SPCGAdaptive,
		"pipelined": solver.PipelinedPCG,
	}
}

// needsSpectrum lists the methods whose non-monomial bases want λ estimates
// of M⁻¹A (the cacheable Lanczos setup step).
var needsSpectrum = map[string]bool{
	"spcg": true, "capcg": true, "capcg3": true, "adaptive": true,
}

// batchKey groups coalescable requests: same matrix name, preconditioner and
// convergence configuration solve in lockstep as one block.
type batchKey struct {
	matrix   string
	prec     string
	tol      float64
	maxIters int
}

type pendingBatch struct {
	key     batchKey
	jobs    []*job
	timer   *time.Timer
	flushed bool
}

type workItem struct {
	jobs []*job // len > 1 ⇒ coalesced PCG batch
}

// Server is the solve service. Create with New, serve via Handler, stop with
// Shutdown.
type Server struct {
	cfg   Config
	reg   *registry
	cache *setupCache
	jobs  *jobStore
	met   *metrics
	start time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue chan *workItem
	wg    sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	admitted int
	pending  map[batchKey]*pendingBatch
}

// New starts a server's worker pool and returns it ready to accept jobs.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	cache := newSetupCache(cfg.CacheSize)
	s := &Server{
		cfg:        cfg,
		reg:        newRegistry(cfg.Scale, cfg.MaxMatrixDim),
		cache:      cache,
		jobs:       newJobStore(cfg.MaxDoneJobs),
		met:        newMetrics(start, cache),
		start:      start,
		baseCtx:    ctx,
		baseCancel: cancel,
		// Admission caps outstanding jobs at QueueDepth and a work item never
		// carries more jobs than exist, so sends below never block.
		queue:   make(chan *workItem, cfg.QueueDepth),
		pending: map[batchKey]*pendingBatch{},
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// validate rejects malformed requests before admission so clients get a 400
// rather than a failed job.
func (s *Server) validate(req *SolveRequest) error {
	req.Method = strings.ToLower(strings.TrimSpace(req.Method))
	if req.Method == "" {
		req.Method = "pcg"
	}
	if _, ok := methodTable()[req.Method]; !ok {
		return fmt.Errorf("unknown method %q", req.Method)
	}
	if strings.TrimSpace(req.Matrix) == "" {
		return fmt.Errorf("missing matrix")
	}
	if _, err := parsePrecond(req.Precond); err != nil {
		return err
	}
	if req.Basis != "" {
		if _, err := basis.ParseType(req.Basis); err != nil {
			return err
		}
	}
	if req.Tol < 0 || req.MaxIters < 0 || req.S < 0 || req.TimeoutMS < 0 {
		return fmt.Errorf("negative tol/max_iters/s/timeout_ms")
	}
	if _, err := buildRHS(req.RHS, 1); err != nil {
		return err
	}
	return nil
}

// Submit validates and admits one request, returning the queued job. The
// caller decides whether to wait on job completion (sync) or return the id
// (async).
func (s *Server) Submit(req SolveRequest) (*job, error) {
	if err := s.validate(&req); err != nil {
		return nil, err
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.met.rejected.Inc()
		return nil, ErrShuttingDown
	}
	if s.admitted >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.met.rejected.Inc()
		return nil, ErrQueueFull
	}
	s.admitted++
	j := s.jobs.newJob(req, s.baseCtx, timeout)
	// Traced requests opt out of coalescing: a block solve would share one
	// phase breakdown across unrelated submitters.
	if req.Method == "pcg" && !req.NoBatch && !req.Trace && s.cfg.BatchMax > 1 {
		s.enqueueBatchedLocked(j)
	} else {
		s.queue <- &workItem{jobs: []*job{j}}
	}
	s.mu.Unlock()

	s.met.requests.Inc()
	s.met.queued.Add(1)
	return j, nil
}

// enqueueBatchedLocked adds j to the pending batch for its key, opening the
// coalescing window on first arrival and flushing early at BatchMax.
func (s *Server) enqueueBatchedLocked(j *job) {
	key := batchKey{
		matrix:   strings.TrimSpace(j.req.Matrix),
		tol:      j.req.Tol,
		maxIters: j.req.MaxIters,
	}
	spec, _ := parsePrecond(j.req.Precond) // validated in Submit
	key.prec = spec.canonical

	pb := s.pending[key]
	if pb == nil {
		pb = &pendingBatch{key: key}
		s.pending[key] = pb
		pb.timer = time.AfterFunc(s.cfg.BatchWindow, func() { s.flushBatch(pb) })
	}
	pb.jobs = append(pb.jobs, j)
	if len(pb.jobs) >= s.cfg.BatchMax {
		pb.timer.Stop()
		s.flushLocked(pb)
	}
}

func (s *Server) flushBatch(pb *pendingBatch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked(pb)
}

func (s *Server) flushLocked(pb *pendingBatch) {
	if pb.flushed {
		return
	}
	pb.flushed = true
	delete(s.pending, pb.key)
	s.queue <- &workItem{jobs: pb.jobs}
}

// Job returns the job with the given id, or nil.
func (s *Server) Job(id string) *job { return s.jobs.get(id) }

// Matrices lists the registered matrix names.
func (s *Server) Matrices() []string { return s.reg.names() }

// Metrics returns the current serving counters as the structured JSON view.
func (s *Server) Metrics() MetricsSnapshot { return s.met.snapshot(s.start, s.cache) }

// Registry exposes the server's metric registry (Prometheus exposition and
// the docs-coverage check read it).
func (s *Server) Registry() *obs.Registry { return s.met.reg }

// Draining reports whether Shutdown has begun (used by /healthz).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Shutdown stops admission, flushes pending batches, drains the queue and
// waits for workers. If ctx expires first, in-flight solves are cancelled
// cooperatively and Shutdown still waits for them to unwind.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, pb := range s.pending {
		pb.timer.Stop()
		s.flushLocked(pb)
	}
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel() // cancel in-flight solves, then wait for the unwind
		<-done
	}
	s.baseCancel()
	return err
}

func (s *Server) worker() {
	defer s.wg.Done()
	for item := range s.queue {
		s.run(item)
	}
}

// run executes one work item: resolve shared setup once, then solve solo or
// as a coalesced block.
func (s *Server) run(item *workItem) {
	now := time.Now()
	for _, j := range item.jobs {
		j.setRunning(now)
	}
	n := float64(len(item.jobs))
	s.met.inFlight.Add(n)
	defer s.met.inFlight.Add(-n)

	// Drop members whose deadline or cancel fired while queued.
	live := item.jobs[:0]
	for _, j := range item.jobs {
		if j.ctx.Err() != nil {
			s.finishJob(j, JobCancelled, &SolveResult{Error: "cancelled before start", BatchSize: 1})
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}

	lead := live[0]
	a, fp, err := s.reg.get(lead.req.Matrix)
	if err != nil {
		s.failAll(live, err)
		return
	}
	spec, err := parsePrecond(lead.req.Precond)
	if err != nil {
		s.failAll(live, err)
		return
	}
	entry, _ := s.cache.get(setupKey{fp: fp, prec: spec.canonical})
	m, err := entry.preconditioner(a, spec)
	if err != nil {
		s.failAll(live, err)
		return
	}

	if len(live) > 1 {
		s.runBatch(live, a, m)
		return
	}
	s.runSolo(lead, a, m, entry, spec)
}

func (s *Server) failAll(jobs []*job, err error) {
	for _, j := range jobs {
		s.finishJob(j, JobFailed, &SolveResult{Error: err.Error(), BatchSize: 1})
	}
}

// runSolo executes one job with the requested method.
func (s *Server) runSolo(j *job, a *sparse.CSR, m precond.Interface, entry *setupEntry, spec precondSpec) {
	req := j.req
	solve := methodTable()[req.Method]
	opts := optsFromReq(req, j.ctx.Done())
	if req.Trace {
		opts.Trace = obs.New(0) // per-job tracer; Stats.Phases flows to the result
	}
	if needsSpectrum[req.Method] && opts.Basis != basis.Monomial {
		sVal := opts.S
		if sVal <= 0 {
			sVal = 10
		}
		if est, err := entry.spectrumFor(a, spec, sVal); err == nil {
			opts.Spectrum = est
		}
		// On estimate failure the solver falls back to computing its own.
	}
	b, err := buildRHS(req.RHS, a.Dim())
	if err != nil {
		s.finishJob(j, JobFailed, &SolveResult{Error: err.Error(), BatchSize: 1})
		return
	}

	t0 := time.Now()
	x, stats, err := solve(a, m, b, opts)
	elapsed := time.Since(t0)
	s.met.observe(req.Method, elapsed)

	res := statsToResult(stats, err, false, 1, elapsed, norm2(x))
	s.recordSolve(stats, true)
	switch {
	case err == nil:
		s.finishJob(j, JobDone, res)
	case isCancelled(err):
		s.finishJob(j, JobCancelled, res)
	default:
		s.finishJob(j, JobFailed, res)
	}
}

// runBatch executes k coalesced PCG jobs as one multi-RHS block solve. The
// block's Cancel channel closes only when every member's context is done, so
// one member's deadline never aborts its companions.
func (s *Server) runBatch(members []*job, a *sparse.CSR, m precond.Interface) {
	k := len(members)
	n := a.Dim()
	bs := vec.NewBlock(n, k)
	for i, j := range members {
		col, err := buildRHS(j.req.RHS, n)
		if err != nil {
			// Validation makes this unreachable, but stay defensive.
			s.finishJob(j, JobFailed, &SolveResult{Error: err.Error(), BatchSize: k})
			col = make([]float64, n)
		}
		copy(bs.Col(i), col)
	}

	allDone := make(chan struct{})
	go func() {
		for _, j := range members {
			<-j.ctx.Done() // finishJob cancels each ctx, so this always drains
		}
		close(allDone)
	}()

	opts := optsFromReq(members[0].req, allDone)
	t0 := time.Now()
	xs, statsList, err := solver.BatchPCG(a, m, bs, opts)
	elapsed := time.Since(t0)

	if err != nil && !isCancelled(err) {
		s.failAll(members, err)
		return
	}
	s.met.blockSolves.Inc()
	s.met.batchedRequests.Add(int64(k))
	s.met.maxBatch.SetMax(float64(k))
	for i, j := range members {
		if j.status().State != JobRunning {
			continue // already failed above on a bad RHS
		}
		var st *solver.Stats
		if statsList != nil {
			st = statsList[i]
		}
		var xnorm float64
		if xs != nil {
			xnorm = norm2(xs.Col(i))
		}
		s.met.observe(j.req.Method, elapsed)
		s.recordSolve(st, false)
		res := statsToResult(st, nil, true, k, elapsed, xnorm)
		switch {
		case st != nil && st.Converged:
			s.finishJob(j, JobDone, res)
		case j.ctx.Err() != nil || isCancelled(err):
			res.Error = solver.ErrCancelled.Error()
			s.finishJob(j, JobCancelled, res)
		default:
			s.finishJob(j, JobDone, res) // ran to cap/breakdown: done, not converged
		}
	}
}

// recordSolve accumulates solver-side counters into the metrics.
func (s *Server) recordSolve(st *solver.Stats, solo bool) {
	if solo {
		s.met.soloSolves.Inc()
	}
	if st != nil {
		s.met.iterations.Add(int64(st.Iterations))
		s.met.mvProducts.Add(int64(st.MVProducts))
		s.met.precApplies.Add(int64(st.PrecApplies))
	}
}

// finishJob finalizes a job exactly once and releases its admission slot.
func (s *Server) finishJob(j *job, state JobState, res *SolveResult) {
	if !j.finish(state, res, time.Now()) {
		return
	}
	s.jobs.markDone(j.id)
	s.mu.Lock()
	s.admitted--
	s.mu.Unlock()
	s.met.queued.Add(-1)
	switch state {
	case JobDone:
		s.met.completed.Inc()
	case JobFailed:
		s.met.failed.Inc()
	case JobCancelled:
		s.met.cancelled.Inc()
	}
}

func isCancelled(err error) bool { return errors.Is(err, solver.ErrCancelled) }

// optsFromReq maps the wire request onto solver Options. The service always
// uses the paper's default criterion and leaves Tracker/Injector nil (they
// are not concurrency-safe to share; see TestConcurrentSolvesShareState).
func optsFromReq(req SolveRequest, cancel <-chan struct{}) solver.Options {
	opts := solver.Options{
		S:             req.S,
		Tol:           req.Tol,
		MaxIterations: req.MaxIters,
		Cancel:        cancel,
		Basis:         basis.Chebyshev,
	}
	if req.Basis != "" {
		if t, err := basis.ParseType(req.Basis); err == nil {
			opts.Basis = t
		}
	}
	return opts
}

// buildRHS constructs the right-hand side named by spec: "ones" (default),
// "sin", or "random[:seed]" (deterministic per seed).
func buildRHS(spec string, n int) ([]float64, error) {
	name, arg := strings.TrimSpace(strings.ToLower(spec)), ""
	if i := strings.IndexByte(name, ':'); i >= 0 {
		name, arg = name[:i], name[i+1:]
	}
	b := make([]float64, n)
	switch name {
	case "", "ones":
		for i := range b {
			b[i] = 1
		}
	case "sin":
		for i := range b {
			b[i] = math.Sin(float64(i + 1))
		}
	case "random":
		seed := int64(1)
		if arg != "" {
			if _, err := fmt.Sscanf(arg, "%d", &seed); err != nil {
				return nil, fmt.Errorf("bad rhs seed %q", arg)
			}
		}
		rng := rand.New(rand.NewSource(seed))
		for i := range b {
			b[i] = 2*rng.Float64() - 1
		}
	default:
		return nil, fmt.Errorf("unknown rhs %q (ones, sin, random[:seed])", spec)
	}
	return b, nil
}

func norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
