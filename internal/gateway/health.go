package gateway

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"spcg/internal/resilience"
)

// BackendState is the gateway's view of one backend's availability.
type BackendState int

// Backend availability states. Alive and Degraded backends stay on the ring
// (a degraded spcgd still serves traffic — it is reporting open breakers or
// shedding, not refusal); Draining and Dead backends are removed, so new
// requests route around them until a probe sees them healthy again.
const (
	Alive BackendState = iota
	Degraded
	Draining
	Dead
)

// String returns the lowercase state name.
func (s BackendState) String() string {
	switch s {
	case Alive:
		return "alive"
	case Degraded:
		return "degraded"
	case Draining:
		return "draining"
	case Dead:
		return "dead"
	}
	return "unknown"
}

// routable reports whether new work may be sent to a backend in this state.
func (s BackendState) routable() bool { return s == Alive || s == Degraded }

// backend is one pool member.
type backend struct {
	name string // stable short name ("b0", "b1", ...) used on the ring and in metrics
	url  string // base URL, no trailing slash

	mu       sync.Mutex
	state    BackendState
	failures int // consecutive probe/transport failures
	lastErr  string
}

func (b *backend) getState() BackendState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BackendStatus is the JSON document for one backend at GET /backends.
type BackendStatus struct {
	Name      string  `json:"name"`
	URL       string  `json:"url"`
	State     string  `json:"state"`
	RingShare float64 `json:"ring_share"` // fraction of the hash circle owned; 0 when off the ring
	LastError string  `json:"last_error,omitempty"`
}

// probeLoop drives periodic health probes until stop closes.
func (g *Gateway) probeLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.probeOnce()
		}
	}
}

// probeOnce probes every backend's /healthz concurrently and applies state
// transitions. Exported behavior is reachable through New (which runs a first
// synchronous probe) and the loop; tests call it directly to advance time.
func (g *Gateway) probeOnce() {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			// Safe first so a panicking probe still releases the WaitGroup
			// (the deferred Done runs during the unwind) instead of wedging
			// probeOnce — and with it the whole probe loop — forever.
			if err := resilience.Safe(func() {
				defer wg.Done()
				g.probe(b)
			}); err != nil {
				g.met.panics.Inc()
			}
		}(b)
	}
	wg.Wait()
	g.met.refreshMembership(g)
}

// probe evaluates one backend: 200 ⇒ alive (or degraded, read from the
// body's health state machine), 503 ⇒ draining, transport failure ⇒ dead
// after DeadAfter consecutive misses. Recovery is immediate on the first
// healthy probe — a restarted backend rejoins the ring with cold caches and
// the ring hands it exactly its old arc back.
func (g *Gateway) probe(b *backend) {
	ctx, cancel := contextWithTimeout(g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		g.markFailure(b, err.Error())
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.markFailure(b, err.Error())
		return
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	switch {
	case resp.StatusCode == http.StatusOK && body.Status == "degraded":
		g.setState(b, Degraded, "")
	case resp.StatusCode == http.StatusOK:
		g.setState(b, Alive, "")
	case resp.StatusCode == http.StatusServiceUnavailable:
		g.setState(b, Draining, "backend draining")
	default:
		g.markFailure(b, resp.Status)
	}
}

// markFailure records one probe/transport failure, killing the backend once
// DeadAfter consecutive failures accumulate.
func (g *Gateway) markFailure(b *backend, cause string) {
	g.met.probeFailures.Inc()
	b.mu.Lock()
	b.failures++
	b.lastErr = cause
	dead := b.failures >= g.cfg.DeadAfter
	b.mu.Unlock()
	if dead {
		g.setState(b, Dead, cause)
	}
}

// markDeadNow kills a backend immediately (the data path saw a transport
// error, e.g. connection refused after a crash — no reason to wait for the
// prober to accumulate misses).
func (g *Gateway) markDeadNow(b *backend, cause string) {
	g.setState(b, Dead, cause)
}

// setState applies a state transition and keeps the ring in sync with
// routability. Recovery resets the failure count.
func (g *Gateway) setState(b *backend, next BackendState, cause string) {
	b.mu.Lock()
	prev := b.state
	b.state = next
	if next.routable() {
		b.failures = 0
		b.lastErr = ""
	} else if cause != "" {
		b.lastErr = cause
	}
	b.mu.Unlock()
	if prev.routable() == next.routable() {
		return
	}
	if next.routable() {
		g.ring.add(b.name)
	} else {
		g.ring.remove(b.name)
	}
	g.met.refreshMembership(g)
}
