package solver

import (
	"fmt"
	"math"

	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// PCG solves A·x = b with the standard Preconditioned Conjugate Gradient
// method (paper Algorithm 1). It performs two global reductions per
// iteration — the scalability bottleneck the s-step variants remove.
func PCG(a *sparse.CSR, m precond.Interface, b []float64, opts Options) ([]float64, *Stats, error) {
	opts = opts.withDefaults()
	stats := &Stats{}
	c, err := newCtx(a, m, &opts, stats)
	if err != nil {
		return nil, nil, err
	}
	n := c.n
	if len(b) != n {
		return nil, nil, fmt.Errorf("%w: len(b)=%d, n=%d", ErrDimension, len(b), n)
	}
	x := make([]float64, n)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return nil, nil, fmt.Errorf("%w: len(x0)=%d, n=%d", ErrDimension, len(opts.X0), n)
		}
		copy(x, opts.X0)
	}

	r := make([]float64, n)
	u := make([]float64, n)
	p := make([]float64, n)
	s := make([]float64, n)
	scratch := make([]float64, n)

	// r⁰ = b − A·x⁰, u⁰ = M⁻¹r⁰, p⁰ = u⁰.
	c.spmv(r, x)
	vec.Sub(r, b, r)
	c.tr.VectorOp(float64(n), 24*float64(n))
	c.applyM(u, r)

	rho := c.dot(r, u)
	if !finite(rho) || rho < 0 {
		stats.Breakdown = fmt.Errorf("%w: initial rᵀM⁻¹r = %v (preconditioner not SPD?)", ErrBreakdown, rho)
		return finishRun(c, a, b, x, opts, stats), stats, nil
	}
	copy(p, u)

	initial, err := initialCriterionValue(c, opts, b, x, r, rho, scratch)
	if err != nil {
		stats.Breakdown = err
		return finishRun(c, a, b, x, opts, stats), stats, nil
	}
	ck := newChecker(opts, initial, stats)
	// Check the initial state (x⁰ may already solve the system).
	if ck.done(initial) {
		stats.Converged = true
		return finishRun(c, a, b, x, opts, stats), stats, nil
	}
	// Fault detection/recovery (opt-in): verified initial state is the first
	// checkpoint, so a rollback is always possible.
	g := newGuard(c, opts, b)
	if g != nil {
		g.checkpoint(x, r, p, rho)
	}

	for i := 0; i < opts.MaxIterations; i++ {
		if c.cancelled() {
			return finishCancelled(c, a, b, x, opts, stats)
		}
		c.spmv(s, p)
		den := c.dot(p, s) // global reduction 1
		if !finite(den) || den <= 0 {
			// A corrupted iterate can masquerade as a breakdown; with
			// recovery enabled, roll back and resume before giving up.
			if g.restore(x, r, p, &rho) {
				continue
			}
			stats.Breakdown = fmt.Errorf("%w: pᵀAp = %v at iteration %d", ErrBreakdown, den, i)
			break
		}
		alpha := rho / den
		c.axpy(alpha, p, x)
		c.axpy(-alpha, s, r)
		c.inj.CorruptVector(r)
		c.applyM(u, r)

		// Global reduction 2: rᵀu (and ‖r‖² fused when the criterion needs it).
		var rhoNew, rr float64
		if opts.Criterion == RecursiveResidual2Norm {
			rhoNew = c.localDot(r, u)
			rr = c.localDot(r, r)
			c.allreduce(2)
		} else {
			rhoNew = c.localDot(r, u)
			c.allreduce(1)
		}
		if !finite(rhoNew) || rhoNew < 0 {
			if g.restore(x, r, p, &rho) {
				continue
			}
			stats.Breakdown = fmt.Errorf("%w: rᵀM⁻¹r = %v at iteration %d", ErrBreakdown, rhoNew, i)
			break
		}
		beta := rhoNew / rho
		rho = rhoNew
		c.xpay(p, u, beta, p)

		stats.Iterations = i + 1
		stats.OuterIterations = i + 1
		if g.due(i + 1) {
			if g.corrupted(x, r, scratch) {
				if !g.restore(x, r, p, &rho) {
					stats.Breakdown = errRollbackBudget(g.maxRollbacks)
					break
				}
				continue
			}
			g.checkpoint(x, r, p, rho)
		}
		var val float64
		switch opts.Criterion {
		case TrueResidual2Norm:
			val = c.trueResidualNorm(b, x, scratch)
		case RecursiveResidual2Norm:
			val = math.Sqrt(rr)
		case RecursiveResidualMNorm:
			val = math.Sqrt(rho)
		}
		if ck.done(val) {
			stats.Converged = true
			break
		}
	}
	return finishRun(c, a, b, x, opts, stats), stats, nil
}

// initialCriterionValue computes the criterion's reference value for the
// initial state.
func initialCriterionValue(c *ctx, opts Options, b, x, r []float64, rho float64, scratch []float64) (float64, error) {
	switch opts.Criterion {
	case TrueResidual2Norm, RecursiveResidual2Norm:
		// ‖r⁰‖₂: the true and recursive residuals coincide initially.
		v := c.localDot(r, r)
		c.allreduce(1)
		if !finite(v) {
			return 0, fmt.Errorf("%w: initial ‖r‖² = %v", ErrBreakdown, v)
		}
		return math.Sqrt(v), nil
	case RecursiveResidualMNorm:
		return math.Sqrt(math.Max(rho, 0)), nil
	default:
		return 0, fmt.Errorf("solver: unknown criterion %v", opts.Criterion)
	}
}

// finishRun fills the end-of-run stats shared by all solvers. A run that
// broke down *after* actually reaching the requested accuracy (common when a
// block method converges mid-block and the next Gram matrix is numerically
// singular) is reported as converged — the paper's tables count accuracy
// reached, not the internal stopping path.
func finishRun(c *ctx, a *sparse.CSR, b, x []float64, opts Options, stats *Stats) []float64 {
	stats.TrueRelResidual = rawTrueRelResidual(a, b, x, opts.X0)
	if !stats.Converged && stats.TrueRelResidual <= opts.Tol {
		stats.Converged = true
	}
	if c.tr != nil {
		stats.SimTime = c.tr.Time
		stats.RetriedMessages = c.tr.Counts.RetriedMessages
	}
	if c.obs != nil {
		stats.Phases = c.obs.Breakdown().Phases
	}
	return x
}

// finishCancelled finalizes a run whose Options.Cancel fired: the partial
// iterate and stats are returned like any other early stop, with ErrCancelled
// as the error — unless the iterate already meets the tolerance, in which
// case the run simply reports convergence.
func finishCancelled(c *ctx, a *sparse.CSR, b, x []float64, opts Options, stats *Stats) ([]float64, *Stats, error) {
	x = finishRun(c, a, b, x, opts, stats)
	if stats.Converged {
		return x, stats, nil
	}
	return x, stats, ErrCancelled
}
