// Package eig estimates eigenvalues of the (preconditioned) operator M⁻¹A.
// The paper's experimental setup computes the spectral estimates needed for
// the Chebyshev basis, the Newton shifts and the Chebyshev preconditioner
// "with a few iterations of standard PCG" (§5.1); this package implements
// exactly that: it runs k steps of PCG, assembles the Lanczos tridiagonal
// from the CG coefficients and returns its Ritz values, whose extremes
// estimate λmin/λmax of M⁻¹A.
package eig

import (
	"errors"
	"fmt"
	"math"

	"spcg/internal/dense"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// Estimate holds a spectral estimate of a (preconditioned) operator.
type Estimate struct {
	// Ritz are the Ritz values in ascending order (Newton shift candidates).
	Ritz []float64
	// LambdaMin and LambdaMax bound the spectrum estimate. They are the
	// extreme Ritz values widened by a safety factor so that Chebyshev
	// intervals cover the true spectrum with high probability.
	LambdaMin, LambdaMax float64
	// Iterations is the number of CG steps actually run.
	Iterations int
}

// ErrBreakdown is returned when the estimation CG breaks down before
// producing any usable coefficients (e.g. b = 0 or an indefinite operator).
var ErrBreakdown = errors.New("eig: Lanczos/CG breakdown before any Ritz values")

// Options configures RitzFromPCG.
type Options struct {
	// Iterations is the number of CG steps (default 2s is the paper's
	// suggestion for s-step bases; we default to 20).
	Iterations int
	// SafetyFactor widens λmax multiplicatively (default 1.05).
	SafetyFactor float64
	// LowerSafetyFactor divides the smallest Ritz value to obtain λmin
	// (default 10). Lanczos converges to the largest eigenvalue quickly but
	// overestimates the smallest one badly on clustered spectra; an interval
	// whose lower end sits above true λmin amplifies the uncovered
	// eigencomponents in every Chebyshev-basis block, which stalls s-step
	// convergence — widening downward is cheap insurance (it only slightly
	// worsens basis conditioning).
	LowerSafetyFactor float64
	// Seed selects the deterministic pseudo-random start vector.
	Seed int64
}

// RitzFromPCG runs k iterations of PCG on A with preconditioner M (apply
// function) and right-hand side a deterministic random vector, building the
// Lanczos tridiagonal from the α/β coefficients:
//
//	T[j,j]   = 1/α_j + β_j/α_{j−1}   (β₀/α₋₁ := 0)
//	T[j,j+1] = T[j+1,j] = √β_{j+1} / α_j
//
// Its eigenvalues are the Ritz values of M⁻¹A.
func RitzFromPCG(a *sparse.CSR, applyM func(dst, src []float64), opts Options) (*Estimate, error) {
	n := a.Dim()
	k := opts.Iterations
	if k <= 0 {
		k = 20
	}
	if k > n {
		k = n
	}
	safety := opts.SafetyFactor
	if safety <= 0 {
		safety = 1.05
	}
	safetyLow := opts.LowerSafetyFactor
	if safetyLow <= 0 {
		safetyLow = 10
	}
	if applyM == nil {
		applyM = func(dst, src []float64) { copy(dst, src) }
	}

	// Deterministic pseudo-random b, full-spectrum with high probability.
	b := make([]float64, n)
	state := uint64(opts.Seed)*2862933555777941757 + 3037000493
	for i := range b {
		state = state*2862933555777941757 + 3037000493
		b[i] = float64(int64(state>>11))/(1<<52) - 1
	}

	r := append([]float64(nil), b...)
	u := make([]float64, n)
	applyM(u, r)
	p := append([]float64(nil), u...)
	ap := make([]float64, n)

	var alphas, betas []float64
	rho := vec.Dot(r, u)
	if rho <= 0 || math.IsNaN(rho) {
		return nil, fmt.Errorf("%w: initial rᵀM⁻¹r = %v", ErrBreakdown, rho)
	}
	for j := 0; j < k; j++ {
		a.MulVec(ap, p)
		den := vec.Dot(p, ap)
		if den <= 0 || math.IsNaN(den) {
			break // operator numerically indefinite along p: stop with what we have
		}
		alpha := rho / den
		alphas = append(alphas, alpha)
		vec.Axpy(-alpha, ap, r)
		applyM(u, r)
		rhoNew := vec.Dot(r, u)
		if rhoNew <= 0 || math.IsNaN(rhoNew) || rhoNew < 1e-30*rho {
			break // converged or broke down: tridiagonal stays as is
		}
		beta := rhoNew / rho
		betas = append(betas, beta)
		rho = rhoNew
		vec.XpayInto(p, u, beta, p)
	}
	m := len(alphas)
	if m == 0 {
		return nil, ErrBreakdown
	}
	diag := make([]float64, m)
	off := make([]float64, m-1)
	for j := 0; j < m; j++ {
		diag[j] = 1 / alphas[j]
		if j > 0 {
			diag[j] += betas[j-1] / alphas[j-1]
		}
		if j < m-1 {
			off[j] = math.Sqrt(betas[j]) / alphas[j]
		}
	}
	ritz, err := dense.TridiagEigen(diag, off)
	if err != nil {
		return nil, fmt.Errorf("eig: tridiagonal eigensolve: %w", err)
	}
	lo, hi := ritz[0], ritz[m-1]
	hi *= safety
	lo /= safetyLow
	if lo <= 0 || lo < hi*1e-10 {
		lo = hi * 1e-10
	}
	return &Estimate{Ritz: ritz, LambdaMin: lo, LambdaMax: hi, Iterations: m}, nil
}

// PowerIteration estimates the largest eigenvalue of A by k power steps from
// a deterministic start vector; a cheap cross-check for Gershgorin and Ritz
// bounds.
func PowerIteration(a *sparse.CSR, k int) float64 {
	n := a.Dim()
	if k < 1 {
		k = 10
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	y := make([]float64, n)
	var lambda float64
	for it := 0; it < k; it++ {
		a.MulVec(y, x)
		lambda = vec.Dot(x, y)
		nrm := vec.Norm2(y)
		if nrm == 0 {
			return 0
		}
		vec.ScaleInto(x, 1/nrm, y)
	}
	return lambda
}
