// Command spcgd serves the solver stack over HTTP (see internal/service):
//
//	spcgd [-addr :8097] [-workers N] [-queue 64] [-batch-window 2ms]
//	      [-batch-max 8] [-cache-size 32] [-scale 100] [-timeout 120s]
//	      [-pprof 127.0.0.1:6060]
//	      [-stagnation-window 15s] [-watchdog-interval 250ms]
//	      [-breaker-failures 3] [-breaker-cooldown 30s]
//	      [-tune-store PATH] [-tune-entries 128] [-tune-probe-iters 40]
//	      [-chaos-panic P] [-chaos-spmv P] [-chaos-comm P] [-chaos-seed N]
//
// Endpoints: POST /solve, GET /jobs/{id}, POST /jobs/{id}/cancel,
// GET /matrices, POST /tune, GET /tune/{matrix}, GET /metrics (Prometheus
// text; ?format=json for the structured view), GET /healthz. SIGINT/SIGTERM
// drain the queue before exiting. -pprof serves net/http/pprof profiling
// endpoints on a separate listener (off by default; bind it to loopback).
//
// -tune-store persists method:"auto" tuning decisions across restarts
// (docs/TUNING.md); without it the autotuner still runs, memory-only.
//
// The resilience flags tune the stagnation watchdog and circuit breakers
// (docs/RESILIENCE.md); the -chaos-* flags turn the daemon against itself
// for chaos testing — injected worker panics, solver soft errors and modeled
// communication faults — and are meant to be driven by `spcgload -chaos`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux, served only when -pprof is set
	"os"
	"os/signal"
	"syscall"
	"time"

	"spcg/internal/fault"
	"spcg/internal/service"
	"spcg/internal/tune"
)

func main() {
	addr := flag.String("addr", ":8097", "listen address")
	workers := flag.Int("workers", 0, "solver pool size (0 = NumCPU, max 8)")
	queue := flag.Int("queue", 64, "max outstanding jobs before rejection")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "coalescing window for same-matrix PCG requests")
	batchMax := flag.Int("batch-max", 8, "flush a batch at this many requests (1 disables batching)")
	cacheSize := flag.Int("cache-size", 32, "setup-cache entries (matrix × preconditioner)")
	scale := flag.Int("scale", 100, "divide suite matrix sizes by this factor")
	timeout := flag.Duration("timeout", 120*time.Second, "default per-job deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for queued work at shutdown")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof on this address (empty = disabled)")
	stagWindow := flag.Duration("stagnation-window", 15*time.Second, "kill a solve whose residual stalls this long (negative disables the watchdog)")
	watchdogInterval := flag.Duration("watchdog-interval", 250*time.Millisecond, "stagnation watchdog sampling interval")
	breakerFailures := flag.Int("breaker-failures", 3, "consecutive failures that open a circuit breaker (negative disables breakers)")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second, "open-breaker wait before a half-open probe")
	tuneStore := flag.String("tune-store", "", "persist autotuning decisions to this JSON file (empty = memory-only)")
	tuneEntries := flag.Int("tune-entries", 128, "max tuning decisions retained (LRU)")
	tuneProbeIters := flag.Int("tune-probe-iters", 40, "first-round iteration cap for tuning probe solves")
	chaosPanic := flag.Float64("chaos-panic", 0, "chaos: per-solo-solve injected panic probability")
	chaosSpMV := flag.Float64("chaos-spmv", 0, "chaos: per-SpMV soft-error corruption probability")
	chaosComm := flag.Float64("chaos-comm", 0, "chaos: modeled comm-fault probability per message")
	chaosSeed := flag.Uint64("chaos-seed", 1, "chaos: seed for all injection streams")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "spcgd: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	cfg := service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		BatchWindow:      *batchWindow,
		BatchMax:         *batchMax,
		CacheSize:        *cacheSize,
		Scale:            *scale,
		DefaultTimeout:   *timeout,
		StagnationWindow: *stagWindow,
		WatchdogInterval: *watchdogInterval,
		BreakerFailures:  *breakerFailures,
		BreakerCooldown:  *breakerCooldown,
		TuneEntries:      *tuneEntries,
		TuneProbeIters:   *tuneProbeIters,
	}
	if *tuneStore != "" {
		// Open the store here so a corrupt or unreadable file is fatal at
		// startup instead of a silently memory-only daemon.
		st, err := tune.OpenStore(*tuneStore, *tuneEntries)
		if err != nil {
			log.Fatalf("spcgd: %v", err)
		}
		cfg.TuneStore = st
		log.Printf("spcgd: tune store %s (%d decisions)", *tuneStore, st.Len())
	}
	if *chaosPanic > 0 || *chaosSpMV > 0 || *chaosComm > 0 {
		cfg.Chaos = &service.ChaosConfig{
			Seed:          *chaosSeed,
			PanicProb:     *chaosPanic,
			Fault:         fault.Config{SpMVCorruptProb: *chaosSpMV},
			CommFaultProb: *chaosComm,
		}
		log.Printf("spcgd: CHAOS MODE — panic=%.3g spmv=%.3g comm=%.3g seed=%d",
			*chaosPanic, *chaosSpMV, *chaosComm, *chaosSeed)
	}
	srv := service.New(cfg)
	// Slow-client protection: bound every phase of a connection's lifetime.
	// WriteTimeout must cover a sync solve that legitimately holds the
	// response for a full job deadline, so it is the job timeout plus margin.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *timeout + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	if *pprofAddr != "" {
		// DefaultServeMux carries only the pprof registrations (the service
		// handler has its own mux), so this exposes nothing else. The write
		// timeout stays generous: profile captures stream for ?seconds=N.
		pprofSrv := &http.Server{
			Addr:              *pprofAddr,
			Handler:           nil,
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       30 * time.Second,
			WriteTimeout:      2 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil {
				log.Printf("spcgd: pprof listener: %v", err)
			}
		}()
		log.Printf("spcgd: pprof on http://%s/debug/pprof/", *pprofAddr)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("spcgd listening on %s (workers=%d queue=%d batch-window=%v)",
		*addr, *workers, *queue, *batchWindow)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("spcgd: %v: draining (up to %v)...", s, *drainTimeout)
	case err := <-errCh:
		log.Fatalf("spcgd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("spcgd: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("spcgd: http shutdown: %v", err)
	}
	log.Printf("spcgd: bye")
}
