package gateway

import (
	"fmt"
	"testing"
)

// TestRingChurnStability verifies the property the whole affinity design
// rests on: when one of N backends drops, only the keys it owned move —
// every other key keeps its primary, so its caches stay warm.
func TestRingChurnStability(t *testing.T) {
	const members = 4
	const keys = 10000
	r := newRing(64)
	names := make([]string, members)
	for i := range names {
		names[i] = fmt.Sprintf("backend-%d", i)
		r.add(names[i])
	}
	before := make([]string, keys)
	for k := 0; k < keys; k++ {
		owners := r.lookup(uint64(k)*0x9e3779b9, 1)
		if len(owners) != 1 {
			t.Fatalf("lookup(%d) returned %v", k, owners)
		}
		before[k] = owners[0]
	}

	victim := names[1]
	r.remove(victim)
	moved := 0
	for k := 0; k < keys; k++ {
		after := r.lookup(uint64(k)*0x9e3779b9, 1)[0]
		if before[k] == victim {
			moved++
			continue
		}
		// The strict consistent-hashing guarantee: a key not owned by the
		// removed member must not move at all.
		if after != before[k] {
			t.Fatalf("key %d moved %s→%s although %s was removed", k, before[k], after, victim)
		}
	}
	// The victim's share is ~1/N up to vnode placement variance.
	frac := float64(moved) / keys
	if frac > 1.5/members {
		t.Fatalf("%.1f%% of keys moved, want ≈1/%d (≤%.1f%%)", 100*frac, members, 150.0/members)
	}
	if moved == 0 {
		t.Fatalf("no keys moved when a member dropped — victim held no arc?")
	}

	// Re-adding the member restores exactly the original ownership (vnode
	// placement is deterministic).
	r.add(victim)
	for k := 0; k < keys; k++ {
		if got := r.lookup(uint64(k)*0x9e3779b9, 1)[0]; got != before[k] {
			t.Fatalf("key %d owner %s after re-add, want %s", k, got, before[k])
		}
	}
}

// TestRingLookupReplicas checks the replica walk returns distinct members in
// deterministic order and degrades gracefully on small rings.
func TestRingLookupReplicas(t *testing.T) {
	r := newRing(32)
	for i := 0; i < 3; i++ {
		r.add(fmt.Sprintf("b%d", i))
	}
	got := r.lookup(42, 5)
	if len(got) != 3 {
		t.Fatalf("lookup(42,5) = %v, want all 3 distinct members", got)
	}
	seen := map[string]bool{}
	for _, o := range got {
		if seen[o] {
			t.Fatalf("duplicate owner %s in %v", o, got)
		}
		seen[o] = true
	}
	if again := r.lookup(42, 5); fmt.Sprint(again) != fmt.Sprint(got) {
		t.Fatalf("lookup not deterministic: %v then %v", got, again)
	}
	if r.lookup(42, 1)[0] != got[0] {
		t.Fatalf("primary changes with max")
	}
	empty := newRing(8)
	if out := empty.lookup(1, 2); out != nil {
		t.Fatalf("empty ring lookup = %v, want nil", out)
	}
}

// TestRingShares checks arc shares sum to 1 and are roughly balanced.
func TestRingShares(t *testing.T) {
	r := newRing(64)
	const members = 4
	for i := 0; i < members; i++ {
		r.add(fmt.Sprintf("b%d", i))
	}
	shares := r.shares()
	total := 0.0
	for name, s := range shares {
		total += s
		if s < 0.10 || s > 0.45 {
			t.Errorf("share[%s] = %.3f, want roughly 1/%d with 64 vnodes", name, s, members)
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %.6f, want 1", total)
	}
}
