package sparse

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Poisson1D returns the n×n tridiagonal matrix tridiag(−1, 2, −1): the
// 1D Laplacian with Dirichlet boundaries. Eigenvalues are known in closed
// form, which the tests exploit.
func Poisson1D(n int) *CSR {
	if n < 1 {
		panic("sparse: Poisson1D needs n ≥ 1")
	}
	nnz := 3*n - 2
	a := &CSR{N: n, RowPtr: make([]int, n+1), ColIdx: make([]int, 0, nnz), Val: make([]float64, 0, nnz)}
	for i := 0; i < n; i++ {
		if i > 0 {
			a.ColIdx = append(a.ColIdx, i-1)
			a.Val = append(a.Val, -1)
		}
		a.ColIdx = append(a.ColIdx, i)
		a.Val = append(a.Val, 2)
		if i < n-1 {
			a.ColIdx = append(a.ColIdx, i+1)
			a.Val = append(a.Val, -1)
		}
		a.RowPtr[i+1] = len(a.Val)
	}
	return a
}

// Poisson2D returns the 5-point finite-difference Laplacian on an nx×ny grid
// with Dirichlet boundaries (row-major grid numbering).
func Poisson2D(nx, ny int) *CSR {
	if nx < 1 || ny < 1 {
		panic("sparse: Poisson2D needs positive grid dims")
	}
	n := nx * ny
	a := &CSR{N: n, RowPtr: make([]int, n+1), ColIdx: make([]int, 0, 5*n), Val: make([]float64, 0, 5*n)}
	idx := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			if y > 0 {
				a.ColIdx = append(a.ColIdx, idx(x, y-1))
				a.Val = append(a.Val, -1)
			}
			if x > 0 {
				a.ColIdx = append(a.ColIdx, idx(x-1, y))
				a.Val = append(a.Val, -1)
			}
			a.ColIdx = append(a.ColIdx, i)
			a.Val = append(a.Val, 4)
			if x < nx-1 {
				a.ColIdx = append(a.ColIdx, idx(x+1, y))
				a.Val = append(a.Val, -1)
			}
			if y < ny-1 {
				a.ColIdx = append(a.ColIdx, idx(x, y+1))
				a.Val = append(a.Val, -1)
			}
			a.RowPtr[i+1] = len(a.Val)
		}
	}
	return a
}

// Poisson3D returns the 7-point Laplacian on an nx×ny×nz grid with Dirichlet
// boundaries — the synthetic strong-scaling problem of the paper's Figure 1
// (there with nx = ny = nz = 256).
func Poisson3D(nx, ny, nz int) *CSR {
	if nx < 1 || ny < 1 || nz < 1 {
		panic("sparse: Poisson3D needs positive grid dims")
	}
	n := nx * ny * nz
	a := &CSR{N: n, RowPtr: make([]int, n+1), ColIdx: make([]int, 0, 7*n), Val: make([]float64, 0, 7*n)}
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := idx(x, y, z)
				if z > 0 {
					a.ColIdx = append(a.ColIdx, idx(x, y, z-1))
					a.Val = append(a.Val, -1)
				}
				if y > 0 {
					a.ColIdx = append(a.ColIdx, idx(x, y-1, z))
					a.Val = append(a.Val, -1)
				}
				if x > 0 {
					a.ColIdx = append(a.ColIdx, idx(x-1, y, z))
					a.Val = append(a.Val, -1)
				}
				a.ColIdx = append(a.ColIdx, i)
				a.Val = append(a.Val, 6)
				if x < nx-1 {
					a.ColIdx = append(a.ColIdx, idx(x+1, y, z))
					a.Val = append(a.Val, -1)
				}
				if y < ny-1 {
					a.ColIdx = append(a.ColIdx, idx(x, y+1, z))
					a.Val = append(a.Val, -1)
				}
				if z < nz-1 {
					a.ColIdx = append(a.ColIdx, idx(x, y, z+1))
					a.Val = append(a.Val, -1)
				}
				a.RowPtr[i+1] = len(a.Val)
			}
		}
	}
	return a
}

// Poisson3D27 returns a 27-point 3D stencil (FEM-style trilinear elements on
// a brick mesh): a denser stencil emulating structural/shell matrices with
// tens of entries per row.
func Poisson3D27(nx, ny, nz int) *CSR {
	if nx < 1 || ny < 1 || nz < 1 {
		panic("sparse: Poisson3D27 needs positive grid dims")
	}
	n := nx * ny * nz
	a := &CSR{N: n, RowPtr: make([]int, n+1), ColIdx: make([]int, 0, 27*n), Val: make([]float64, 0, 27*n)}
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	// Trilinear FEM stencil weights by Chebyshev distance: center 26/3,
	// faces −4/9... use the standard 27-point Laplacian weights: center 88/26
	// variants abound; we use w = −1 for faces, −1/2 for edges, −1/4 for
	// corners and the row-sum-zero diagonal + 1 shift-free (Dirichlet
	// truncation makes boundary rows diagonally dominant).
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := idx(x, y, z)
				var diag float64
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							if dx == 0 && dy == 0 && dz == 0 {
								continue
							}
							nxp, nyp, nzp := x+dx, y+dy, z+dz
							dist := abs(dx) + abs(dy) + abs(dz)
							var w float64
							switch dist {
							case 1:
								w = -1
							case 2:
								w = -0.5
							default:
								w = -0.25
							}
							diag -= w // row-sum zero for interior
							if nxp < 0 || nxp >= nx || nyp < 0 || nyp >= ny || nzp < 0 || nzp >= nz {
								continue
							}
							a.ColIdx = append(a.ColIdx, idx(nxp, nyp, nzp))
							a.Val = append(a.Val, w)
						}
					}
				}
				a.ColIdx = append(a.ColIdx, i)
				a.Val = append(a.Val, diag)
				a.RowPtr[i+1] = len(a.Val)
			}
		}
	}
	// Sort columns within each row (appended in z,y,x sweep order, and the
	// diagonal last, so rows are not sorted).
	sortRows(a)
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// sortRows sorts column indices (and values) within each row.
func sortRows(a *CSR) {
	for i := 0; i < a.N; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		cols, vals := a.ColIdx[lo:hi], a.Val[lo:hi]
		// Insertion sort: rows are short and nearly sorted.
		for p := 1; p < len(cols); p++ {
			c, v := cols[p], vals[p]
			q := p - 1
			for q >= 0 && cols[q] > c {
				cols[q+1], vals[q+1] = cols[q], vals[q]
				q--
			}
			cols[q+1], vals[q+1] = c, v
		}
	}
}

// Anisotropic2D returns a 5-point stencil for −(ε·u_xx + u_yy) on an nx×ny
// grid: small ε stretches the spectrum and slows unpreconditioned CG, a
// standard hard test case.
func Anisotropic2D(nx, ny int, eps float64) *CSR {
	if eps <= 0 {
		panic("sparse: Anisotropic2D needs eps > 0")
	}
	n := nx * ny
	a := &CSR{N: n, RowPtr: make([]int, n+1), ColIdx: make([]int, 0, 5*n), Val: make([]float64, 0, 5*n)}
	idx := func(x, y int) int { return y*nx + x }
	d := 2*eps + 2
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			if y > 0 {
				a.ColIdx = append(a.ColIdx, idx(x, y-1))
				a.Val = append(a.Val, -1)
			}
			if x > 0 {
				a.ColIdx = append(a.ColIdx, idx(x-1, y))
				a.Val = append(a.Val, -eps)
			}
			a.ColIdx = append(a.ColIdx, i)
			a.Val = append(a.Val, d)
			if x < nx-1 {
				a.ColIdx = append(a.ColIdx, idx(x+1, y))
				a.Val = append(a.Val, -eps)
			}
			if y < ny-1 {
				a.ColIdx = append(a.ColIdx, idx(x, y+1))
				a.Val = append(a.Val, -1)
			}
			a.RowPtr[i+1] = len(a.Val)
		}
	}
	return a
}

// VarCoeff2D returns a 5-point variable-coefficient diffusion operator
// −∇·(k∇u) on an nx×ny grid where log10(k) is i.i.d. uniform in
// [−contrast/2, contrast/2] per cell and face coefficients are harmonic
// means. contrast controls the conditioning: contrast≈0 reproduces Poisson,
// contrast 4–6 emulates the hard SuiteSparse FEM matrices. Deterministic in
// seed.
func VarCoeff2D(nx, ny int, contrast float64, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	k := make([]float64, nx*ny)
	for i := range k {
		k[i] = math.Pow(10, (rng.Float64()-0.5)*contrast)
	}
	idx := func(x, y int) int { return y*nx + x }
	face := func(i, j int) float64 { // harmonic mean
		return 2 * k[i] * k[j] / (k[i] + k[j])
	}
	n := nx * ny
	a := &CSR{N: n, RowPtr: make([]int, n+1), ColIdx: make([]int, 0, 5*n), Val: make([]float64, 0, 5*n)}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			var diag float64
			var cols []int
			var vals []float64
			if y > 0 {
				w := face(i, idx(x, y-1))
				cols = append(cols, idx(x, y-1))
				vals = append(vals, -w)
				diag += w
			} else {
				diag += k[i] // Dirichlet face
			}
			if x > 0 {
				w := face(i, idx(x-1, y))
				cols = append(cols, idx(x-1, y))
				vals = append(vals, -w)
				diag += w
			} else {
				diag += k[i]
			}
			if x < nx-1 {
				w := face(i, idx(x+1, y))
				cols = append(cols, idx(x+1, y))
				vals = append(vals, -w)
				diag += w
			} else {
				diag += k[i]
			}
			if y < ny-1 {
				w := face(i, idx(x, y+1))
				cols = append(cols, idx(x, y+1))
				vals = append(vals, -w)
				diag += w
			} else {
				diag += k[i]
			}
			// Insert diagonal in sorted position.
			inserted := false
			for p, c := range cols {
				if c > i && !inserted {
					cols = append(cols[:p], append([]int{i}, cols[p:]...)...)
					vals = append(vals[:p], append([]float64{diag}, vals[p:]...)...)
					inserted = true
					break
				}
			}
			if !inserted {
				cols = append(cols, i)
				vals = append(vals, diag)
			}
			a.ColIdx = append(a.ColIdx, cols...)
			a.Val = append(a.Val, vals...)
			a.RowPtr[i+1] = len(a.Val)
		}
	}
	return a
}

// RandomGraphLaplacian returns L + shift·I for the Laplacian of a random
// graph where every vertex gets `degree` random out-edges (symmetrized):
// emulates circuit matrices (G2_circuit/G3_circuit class). Deterministic in
// seed.
func RandomGraphLaplacian(n, degree int, shift float64, seed int64) *CSR {
	if degree < 1 || n < 2 {
		panic("sparse: RandomGraphLaplacian needs n ≥ 2, degree ≥ 1")
	}
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(n)
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		for e := 0; e < degree; e++ {
			j := rng.Intn(n)
			if j == i {
				j = (j + 1) % n
			}
			w := 0.5 + rng.Float64()
			coo.AddSym(i, j, -w)
			deg[i] += w
			deg[j] += w
		}
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, deg[i]+shift)
	}
	return coo.ToCSR()
}

// HubGraphLaplacian is RandomGraphLaplacian with a skewed degree
// distribution: every vertex gets baseDeg random out-edges, and every
// hubEvery-th vertex is a hub with hubDeg extra out-edges. The resulting row-length
// variance (hub rows are an order of magnitude longer than the rest) is the
// structure that stresses SELL-C-σ's σ-window sorting and padding
// accounting and exercises the format selector's irregular branch — the
// load generator's default mix includes one so serving soak runs cover the
// sliced format. SPD via the diagonal shift; deterministic in seed.
func HubGraphLaplacian(n, baseDeg, hubEvery, hubDeg int, shift float64, seed int64) *CSR {
	if baseDeg < 1 || hubEvery < 1 || hubDeg < 0 || n < 2 {
		panic("sparse: HubGraphLaplacian needs n ≥ 2, baseDeg ≥ 1, hubEvery ≥ 1, hubDeg ≥ 0")
	}
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(n)
	deg := make([]float64, n)
	addEdges := func(i, count int) {
		for e := 0; e < count; e++ {
			j := rng.Intn(n)
			if j == i {
				j = (j + 1) % n
			}
			w := 0.5 + rng.Float64()
			coo.AddSym(i, j, -w)
			deg[i] += w
			deg[j] += w
		}
	}
	for i := 0; i < n; i++ {
		addEdges(i, baseDeg)
		if i%hubEvery == 0 {
			addEdges(i, hubDeg)
		}
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, deg[i]+shift)
	}
	return coo.ToCSR()
}

// SPDWithSpectrum returns a sparse SPD matrix with exactly the given
// eigenvalues: diag(spectrum) conjugated by `rotations` random Givens
// rotations. Rotations introduce off-diagonal fill, so keep rotations ≲ 3n
// to preserve sparsity. Deterministic in seed.
func SPDWithSpectrum(spectrum []float64, rotations int, seed int64) *CSR {
	n := len(spectrum)
	if n < 2 {
		panic("sparse: SPDWithSpectrum needs at least 2 eigenvalues")
	}
	for _, v := range spectrum {
		if v <= 0 {
			panic(fmt.Sprintf("sparse: SPDWithSpectrum needs positive eigenvalues, got %v", v))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	// Row-map representation during rotation application.
	rows := make([]map[int]float64, n)
	for i := range rows {
		rows[i] = map[int]float64{i: spectrum[i]}
	}
	get := func(i, j int) float64 { return rows[i][j] }
	set := func(i, j int, v float64) {
		if v == 0 {
			delete(rows[i], j)
		} else {
			rows[i][j] = v
		}
	}
	for r := 0; r < rotations; r++ {
		p := rng.Intn(n)
		q := rng.Intn(n)
		if p == q {
			continue
		}
		theta := rng.Float64() * math.Pi
		c, s := math.Cos(theta), math.Sin(theta)
		// A ← GᵀAG with G the Givens rotation in plane (p,q). Because A is
		// symmetric before the rotation, the nonzero rows of columns p,q are
		// exactly the nonzero columns of rows p,q — capture them before the
		// row update mutates those rows. The touched set is iterated in
		// sorted order so the assembled matrix is identical run to run.
		cols := append(sortedCols(rows[p]), sortedCols(rows[q])...)
		cols = append(cols, p, q)
		sort.Ints(cols)
		touched := cols[:1]
		for _, j := range cols[1:] {
			if j != touched[len(touched)-1] {
				touched = append(touched, j)
			}
		}
		// Row update: rows p,q mix.
		for _, j := range touched {
			ap, aq := get(p, j), get(q, j)
			set(p, j, c*ap-s*aq)
			set(q, j, s*ap+c*aq)
		}
		// Column update: columns p,q mix.
		for _, i := range touched {
			aip, aiq := get(i, p), get(i, q)
			set(i, p, c*aip-s*aiq)
			set(i, q, s*aip+c*aiq)
		}
	}
	coo := NewCOO(n)
	for i, row := range rows {
		for _, j := range sortedCols(row) {
			coo.Add(i, j, row[j])
		}
	}
	a := coo.ToCSR()
	// Enforce exact symmetry (rotation roundoff breaks it at ~1e-16).
	return symmetrizeCSR(a)
}

// sortedCols returns the keys of a sparse-row map in ascending order. Map
// iteration order is randomized per run; every walk over a row map goes
// through this helper so generated matrices are bitwise-identical in seed.
func sortedCols(m map[int]float64) []int {
	cols := make([]int, 0, len(m))
	for j := range m { //spcglint:ignore determinism key collection is order-insensitive; sorted below
		cols = append(cols, j)
	}
	sort.Ints(cols)
	return cols
}

// symmetrizeCSR returns (A + Aᵀ)/2.
func symmetrizeCSR(a *CSR) *CSR {
	coo := NewCOO(a.N)
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			coo.Add(i, j, a.Val[k]/2)
			coo.Add(j, i, a.Val[k]/2)
		}
	}
	return coo.ToCSR()
}

// GeometricSpectrum returns n eigenvalues geometrically spaced in
// [lo, lo·cond]: the canonical difficulty dial for CG convergence tests.
func GeometricSpectrum(n int, lo, cond float64) []float64 {
	if n < 2 || lo <= 0 || cond < 1 {
		panic("sparse: GeometricSpectrum needs n ≥ 2, lo > 0, cond ≥ 1")
	}
	s := make([]float64, n)
	for i := range s {
		s[i] = lo * math.Pow(cond, float64(i)/float64(n-1))
	}
	return s
}

// VarCoeff3D returns a 7-point variable-coefficient diffusion operator on an
// nx×ny×nz grid, the 3D analogue of VarCoeff2D: per-cell log-uniform
// coefficients with the given contrast, harmonic-mean face weights, Dirichlet
// boundaries. Deterministic in seed.
func VarCoeff3D(nx, ny, nz int, contrast float64, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	n := nx * ny * nz
	k := make([]float64, n)
	for i := range k {
		k[i] = math.Pow(10, (rng.Float64()-0.5)*contrast)
	}
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	face := func(i, j int) float64 { return 2 * k[i] * k[j] / (k[i] + k[j]) }
	a := &CSR{N: n, RowPtr: make([]int, n+1), ColIdx: make([]int, 0, 7*n), Val: make([]float64, 0, 7*n)}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := idx(x, y, z)
				var diag float64
				type entry struct {
					col int
					val float64
				}
				var entries []entry
				add := func(ok bool, j int) {
					if ok {
						w := face(i, j)
						entries = append(entries, entry{j, -w})
						diag += w
					} else {
						diag += k[i] // Dirichlet face
					}
				}
				add(z > 0, idx(x, y, z-1))
				add(y > 0, idx(x, y-1, z))
				add(x > 0, idx(x-1, y, z))
				add(x < nx-1, idx(x+1, y, z))
				add(y < ny-1, idx(x, y+1, z))
				add(z < nz-1, idx(x, y, z+1))
				entries = append(entries, entry{i, diag})
				sort.Slice(entries, func(a, b int) bool { return entries[a].col < entries[b].col })
				for _, e := range entries {
					a.ColIdx = append(a.ColIdx, e.col)
					a.Val = append(a.Val, e.val)
				}
				a.RowPtr[i+1] = len(a.Val)
			}
		}
	}
	return a
}

// CircuitLaplacian emulates circuit-simulation matrices (the G2/G3_circuit
// class): a 2D grid graph Laplacian — circuits are near-planar, so their
// spectra behave like grids, not expanders — plus a sprinkling of random
// long-range "component" edges and a diagonal shift (ground conductances).
// Deterministic in seed.
func CircuitLaplacian(nx, ny, shortcuts int, shift float64, seed int64) *CSR {
	if nx < 2 || ny < 2 || shift <= 0 {
		panic("sparse: CircuitLaplacian needs nx,ny ≥ 2 and shift > 0")
	}
	rng := rand.New(rand.NewSource(seed))
	n := nx * ny
	coo := NewCOO(n)
	deg := make([]float64, n)
	idx := func(x, y int) int { return y*nx + x }
	edge := func(i, j int, w float64) {
		coo.AddSym(i, j, -w)
		deg[i] += w
		deg[j] += w
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			if x < nx-1 {
				edge(i, idx(x+1, y), 0.5+rng.Float64())
			}
			if y < ny-1 {
				edge(i, idx(x, y+1), 0.5+rng.Float64())
			}
		}
	}
	for e := 0; e < shortcuts; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		edge(i, j, 0.1+0.4*rng.Float64())
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, deg[i]+shift)
	}
	return coo.ToCSR()
}
