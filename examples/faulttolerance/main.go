// Fault tolerance: attack a solve with seeded silent data corruption and
// show that (a) an unprotected run "converges" by its recursive residual
// while the true residual is garbage, (b) the detection + rollback guard
// recovers true convergence from the same fault stream, and (c) transient
// communication failures are charged as retry time in the cost model without
// touching the numerics.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"spcg"
)

func main() {
	// 2D Poisson problem, Jacobi preconditioner, ones right-hand side.
	a := spcg.Poisson2D(48, 48)
	b := make([]float64, a.Dim())
	for i := range b {
		b[i] = 1
	}
	m, err := spcg.NewJacobi(a)
	if err != nil {
		log.Fatal(err)
	}
	const (
		tol  = 1e-8
		seed = 1
		rate = 0.05 // per-SpMV probability of one corrupted output element
	)
	fmt.Printf("problem: n=%d, nnz=%d, corruption rate %g/SpMV, seed %d\n\n",
		a.Dim(), a.NNZ(), rate, seed)

	// Unprotected sPCG under corruption: depending on where the faults land
	// the run either breaks down outright or "converges" by its recursive
	// residual while the true residual is garbage.
	unprot := spcg.Options{S: 6, Basis: spcg.Chebyshev, Tol: tol}
	unprot.Injector = spcg.NewFaultInjector(seed, spcg.FaultConfig{SpMVCorruptProb: rate})
	_, us, err := spcg.SPCG(a, m, b, unprot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unprotected sPCG: %d iterations, TRUE rel residual %.1e\n",
		us.Iterations, us.TrueRelResidual)
	if us.Breakdown != nil {
		fmt.Printf("  failed: %v\n", us.Breakdown)
	} else if us.TrueRelResidual > tol {
		fmt.Printf("  silently wrong: recursive rel %.1e looks converged\n", us.FinalRelative)
	}
	fmt.Printf("  injector: %v\n\n", unprot.Injector)

	// Protected run, same fault stream: probe the true residual every outer
	// iteration, roll back to the last verified checkpoint on divergence.
	prot := spcg.Options{S: 6, Basis: spcg.Chebyshev, Tol: tol}
	prot.Injector = spcg.NewFaultInjector(seed, spcg.FaultConfig{SpMVCorruptProb: rate})
	prot.DetectEvery = 1
	x, ps, err := spcg.SPCG(a, m, b, prot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protected sPCG:   converged=%v in %d iterations, TRUE rel %.1e\n",
		ps.Converged, ps.Iterations, ps.TrueRelResidual)
	fmt.Printf("  detected %d corruptions, rolled back %d times\n\n",
		ps.DetectedFaults, ps.Rollbacks)
	_ = x

	// Transient communication failures: a faulty modeled machine charges
	// timeout + exponential-backoff retries into SimTime. The numerics (and
	// iteration count) are untouched.
	clean, err := spcg.NewCluster(spcg.DefaultMachine(), 4, a)
	if err != nil {
		log.Fatal(err)
	}
	mach := spcg.DefaultMachine()
	mach.Faults = spcg.FaultModel{CommFailProb: 0.1, Seed: seed}
	faulty, err := spcg.NewCluster(mach, 4, a)
	if err != nil {
		log.Fatal(err)
	}
	optsClean := spcg.Options{S: 6, Basis: spcg.Chebyshev, Tol: tol, Tracker: spcg.NewTracker(clean)}
	_, cs, err := spcg.SPCG(a, m, b, optsClean)
	if err != nil {
		log.Fatal(err)
	}
	optsFaulty := spcg.Options{S: 6, Basis: spcg.Chebyshev, Tol: tol, Tracker: spcg.NewTracker(faulty)}
	_, fs, err := spcg.SPCG(a, m, b, optsFaulty)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("comm faults (p=0.1): %d messages retried, modeled time %.4gs -> %.4gs (%.2fx)\n",
		fs.RetriedMessages, cs.SimTime, fs.SimTime, fs.SimTime/cs.SimTime)
	fmt.Printf("iteration counts identical: %v (faults charge time, not values)\n",
		cs.Iterations == fs.Iterations)
}
