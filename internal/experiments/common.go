// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): Table 1 (cost model), Table 2 (numerical stability across
// the 40-matrix suite), Table 3 (runtime/speedup on the seven largest
// converging matrices), Figure 1 (strong scaling on 3D Poisson), plus the
// ablations DESIGN.md calls out.
package experiments

import (
	"fmt"
	"io"
	"math"

	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/eig"
	"spcg/internal/precond"
	"spcg/internal/solver"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// Config holds the experiment-wide knobs. The zero value is completed by
// withDefaults to the paper's settings at 1/32 problem scale.
type Config struct {
	// Scale divides the paper's matrix sizes (1 = full size; default 32,
	// which keeps the full Table 2 sweep tractable on a laptop).
	Scale int
	// S is the block size (paper: 10 for Tables 2–3).
	S int
	// Tol is the relative residual reduction (paper: 1e−9).
	Tol float64
	// MaxIterations caps each solve (paper: 12000).
	MaxIterations int
	// Machine is the modeled hardware (paper: 128 ranks/node ASC nodes).
	Machine dist.Machine
	// PrecondDegree is the Chebyshev preconditioner degree (paper: 3).
	PrecondDegree int
	// Progress, when non-nil, receives one line per completed work item in
	// the long-running sweeps (Table 2/Table 3).
	Progress io.Writer
}

// progressf writes a progress line when a Progress writer is configured.
func (c Config) progressf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 32
	}
	if c.S <= 0 {
		c.S = 10
	}
	if c.Tol <= 0 {
		c.Tol = 1e-9
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 12000
	}
	if c.Machine.RanksPerNode == 0 {
		c.Machine = dist.DefaultMachine()
	}
	if c.PrecondDegree <= 0 {
		c.PrecondDegree = 3
	}
	return c
}

// problemSetup bundles everything needed to run one suite problem: the
// matrix, the right-hand side with known solution 1/√n (paper §5.1), the
// preconditioner, and the spectral estimates for basis generation.
type problemSetup struct {
	a        *sparse.CSR
	b        []float64
	m        precond.Interface
	spectrum *eig.Estimate // of M⁻¹A, for the s-step bases
}

// newSetup builds the problem with the requested preconditioner kind
// ("jacobi" or "chebyshev") and the paper's right-hand side (solution
// entries 1/√n, §5.1).
func newSetup(a *sparse.CSR, precKind string, degree int) (*problemSetup, error) {
	n := a.Dim()
	xTrue := make([]float64, n)
	vec.Fill(xTrue, 1/math.Sqrt(float64(n)))
	b := make([]float64, n)
	a.MulVecPar(b, xTrue)
	return newSetupRHS(a, b, precKind, degree)
}

// newSetupRandomRHS is newSetup with a deterministic pseudo-random
// right-hand side. The scaling experiments (Table 3, Figure 1) use it
// because the paper's constant-solution RHS produces spectrally degenerate
// residuals on which our double-precision sPCG hits its attainable-accuracy
// floor above the 1e9 reduction target (see DESIGN.md); a random RHS keeps
// the paper's criterion while preserving the per-iteration communication
// and computation structure those experiments measure.
func newSetupRandomRHS(a *sparse.CSR, seed uint64, precKind string, degree int) (*problemSetup, error) {
	n := a.Dim()
	b := make([]float64, n)
	state := seed*2862933555777941757 + 3037000493
	for i := range b {
		state = state*2862933555777941757 + 3037000493
		b[i] = float64(int64(state>>11))/(1<<52) - 1
	}
	return newSetupRHS(a, b, precKind, degree)
}

func newSetupRHS(a *sparse.CSR, b []float64, precKind string, degree int) (*problemSetup, error) {
	n := a.Dim()

	var m precond.Interface
	switch precKind {
	case "jacobi":
		j, err := precond.NewJacobi(a)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		m = j
	case "chebyshev":
		// The preconditioner needs the spectrum of A itself (paper §5.1:
		// estimated with a few PCG iterations, not charged to runtimes).
		estA, err := eig.RitzFromPCG(a, nil, eig.Options{Iterations: 20})
		if err != nil {
			return nil, fmt.Errorf("experiments: spectral estimate: %w", err)
		}
		ch, err := precond.NewChebyshev(a, degree, estA.LambdaMin, estA.LambdaMax)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		m = ch
	case "identity", "":
		m = precond.NewIdentity(n)
	default:
		return nil, fmt.Errorf("experiments: unknown preconditioner %q", precKind)
	}

	// Basis spectrum: of the preconditioned operator M⁻¹A.
	est, err := eig.RitzFromPCG(a, m.Apply, eig.Options{Iterations: 24})
	if err != nil {
		return nil, fmt.Errorf("experiments: preconditioned spectral estimate: %w", err)
	}
	return &problemSetup{a: a, b: b, m: m, spectrum: est}, nil
}

// solverFn is the common signature of all solver entry points.
type solverFn func(*sparse.CSR, precond.Interface, []float64, solver.Options) ([]float64, *solver.Stats, error)

// sStepSolvers returns the three s-step methods in the paper's column order.
func sStepSolvers() []struct {
	Name string
	Run  solverFn
} {
	return []struct {
		Name string
		Run  solverFn
	}{
		{"sPCG", solver.SPCG},
		{"CA-PCG", solver.CAPCG},
		{"CA-PCG3", solver.CAPCG3},
	}
}

// runOne executes one solver configuration and reports (iterations,
// converged). Breakdowns and iteration-cap hits count as not converged, like
// the paper's "−" entries.
func runOne(run solverFn, st *problemSetup, opts solver.Options) (int, bool, *solver.Stats) {
	opts.Spectrum = st.spectrum
	_, stats, err := run(st.a, st.m, st.b, opts)
	if err != nil {
		return 0, false, stats
	}
	return stats.Iterations, stats.Converged, stats
}

// basisOpts builds solver options for a given basis type.
func basisOpts(cfg Config, bt basis.Type, crit solver.Criterion) solver.Options {
	return solver.Options{
		S:             cfg.S,
		Basis:         bt,
		Tol:           cfg.Tol,
		MaxIterations: cfg.MaxIterations,
		Criterion:     crit,
	}
}

// hyph formats an iteration count the way the paper's tables do.
func hyph(iters int, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%d", iters)
}
