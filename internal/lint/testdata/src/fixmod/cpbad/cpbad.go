// Package cpbad is a miniature solver package whose registered method's
// convergence loop evaluates done() without ever polling cancelled().
package cpbad

// Method is a registered solver entry point.
type Method func(n int) int

// methods is the registry the analyzer roots reachability at.
var methods = map[string]Method{"solve": Solve}

// checker is the convergence criterion with a cancellation hook.
type checker struct{ cancel func() bool }

func (c *checker) done(v float64) bool { return v < 1e-8 }
func (c *checker) cancelled() bool     { return c.cancel != nil && c.cancel() }

// Solve iterates to convergence but can never be cancelled.
func Solve(n int) int {
	c := &checker{}
	i := 0
	for ; i < n; i++ {
		if c.done(float64(n - i)) {
			break
		}
	}
	return i
}
