package solver

import (
	"testing"

	"spcg/internal/basis"
	"spcg/internal/dist"
	"spcg/internal/obs"
	"spcg/internal/precond"
	"spcg/internal/sparse"
	"spcg/internal/vec"
)

// phaseMap indexes a Stats.Phases slice by phase name.
func phaseMap(phases []obs.PhaseStat) map[string]obs.PhaseStat {
	m := map[string]obs.PhaseStat{}
	for _, p := range phases {
		m[p.Phase] = p
	}
	return m
}

// TestTracePCGPhases: a traced PCG run attributes time to the expected
// phases, counts one collective per allreduce (with payload = reduced
// values), and mirrors halo exchanges from the tracker.
func TestTracePCGPhases(t *testing.T) {
	a := sparse.Poisson2D(20, 20)
	b, _ := testProblem(a)
	m, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	machine := dist.DefaultMachine()
	machine.RanksPerNode = 8
	cl, err := dist.NewCluster(machine, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(0)
	opts := Options{Tol: 1e-10, Trace: tr, Tracker: dist.NewTracker(cl)}
	_, stats, err := PCG(a, m, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatalf("did not converge: %+v", stats)
	}
	if len(stats.Phases) == 0 {
		t.Fatal("Stats.Phases empty with Trace set")
	}
	ph := phaseMap(stats.Phases)
	for _, want := range []string{"spmv", "prec", "gram", "vector", "collective", "halo"} {
		if ph[want].Count == 0 {
			t.Errorf("phase %q has no spans: %+v", want, stats.Phases)
		}
	}
	for _, timed := range []string{"spmv", "prec", "gram", "vector"} {
		if ph[timed].Seconds <= 0 {
			t.Errorf("timed phase %q recorded zero duration", timed)
		}
	}
	// One collective span per allreduce, payload = total reduced values.
	if got, want := ph["collective"].Count, int64(stats.Allreduces); got != want {
		t.Errorf("collective spans = %d, stats.Allreduces = %d", got, want)
	}
	if got, want := ph["collective"].Payload, int64(stats.AllreduceValues); got != want {
		t.Errorf("collective payload = %d, stats.AllreduceValues = %d", got, want)
	}
	// Halos come from the tracker; PCG does one exchange per SpMV.
	if got, want := ph["halo"].Count, int64(stats.MVProducts); got != want {
		t.Errorf("halo spans = %d, MVProducts = %d", got, want)
	}
	bd := tr.Breakdown()
	if bd.Collectives != int64(stats.Allreduces) || bd.TotalSeconds <= 0 {
		t.Errorf("breakdown inconsistent: %+v", bd)
	}
}

// TestTraceSPCGPhases: sPCG's trace shows the s-step structure — basis and
// block-update phases present, roughly one collective per outer iteration —
// and scalar work from Algorithm 6.
func TestTraceSPCGPhases(t *testing.T) {
	a := sparse.Poisson2D(24, 24)
	b, _ := testProblem(a)
	m, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(0)
	opts := Options{S: 6, Basis: basis.Chebyshev, Tol: 1e-9, Trace: tr}
	_, stats, err := SPCG(a, m, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatalf("did not converge: %+v", stats)
	}
	ph := phaseMap(stats.Phases)
	for _, want := range []string{"basis", "gram", "block_update", "collective", "scalar_work"} {
		if ph[want].Count == 0 {
			t.Errorf("phase %q has no spans: %+v", want, stats.Phases)
		}
	}
	if got, want := ph["collective"].Count, int64(stats.Allreduces); got != want {
		t.Errorf("collective spans = %d, stats.Allreduces = %d", got, want)
	}
	// The single-reduction property: collectives ≈ outer iterations, far
	// below 2·iterations (PCG's rate).
	if stats.OuterIterations > 0 && stats.Allreduces > 2*stats.OuterIterations+2 {
		t.Errorf("sPCG made %d collectives over %d outer iterations", stats.Allreduces, stats.OuterIterations)
	}
}

// TestTraceNilUnchanged: running without a tracer yields the same solution
// and stats as a traced run (instrumentation must not perturb numerics), and
// leaves Stats.Phases nil.
func TestTraceNilUnchanged(t *testing.T) {
	a := sparse.Poisson2D(16, 16)
	b, _ := testProblem(a)
	m, err := precond.NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	xPlain, stPlain, err := SPCG(a, m, b, Options{S: 4, Basis: basis.Chebyshev, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	xTraced, stTraced, err := SPCG(a, m, b, Options{S: 4, Basis: basis.Chebyshev, Tol: 1e-9, Trace: obs.New(64)})
	if err != nil {
		t.Fatal(err)
	}
	if stPlain.Phases != nil {
		t.Errorf("untraced run has Phases: %+v", stPlain.Phases)
	}
	if len(stTraced.Phases) == 0 {
		t.Error("traced run has no Phases")
	}
	if stPlain.Iterations != stTraced.Iterations || stPlain.Allreduces != stTraced.Allreduces {
		t.Errorf("tracing changed the run: %+v vs %+v", stPlain, stTraced)
	}
	d := make([]float64, len(xPlain))
	vec.Sub(d, xPlain, xTraced)
	if vec.Norm2(d) != 0 {
		t.Errorf("tracing changed the solution by %g", vec.Norm2(d))
	}
}
