package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestDotBasic(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, -5, 6}
	if got := Dot(a, b); got != 12 {
		t.Fatalf("Dot = %v, want 12", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEq(got, 5, eps) {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
	// Scaling must avoid overflow.
	big := 1e300
	if got := Norm2([]float64{big, big}); math.IsInf(got, 1) {
		t.Fatal("Norm2 overflowed where scaled computation should not")
	} else if !almostEq(got, big*math.Sqrt2, 1e-12) {
		t.Fatalf("Norm2 big = %v", got)
	}
	// And underflow.
	tiny := 1e-300
	if got := Norm2([]float64{tiny, tiny}); got == 0 {
		t.Fatal("Norm2 underflowed")
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{-7, 2, 6.5}); got != 7 {
		t.Fatalf("NormInf = %v, want 7", got)
	}
}

func TestAxpyAxpby(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	Axpby(1, []float64{1, 1, 1}, -1, y)
	want = []float64{-2, -4, -6}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpby[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestXpayInto(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{10, 20}
	dst := make([]float64, 2)
	XpayInto(dst, x, 0.5, y)
	if dst[0] != 6 || dst[1] != 12 {
		t.Fatalf("XpayInto = %v", dst)
	}
	// Aliasing dst = x.
	XpayInto(x, x, 1, y)
	if x[0] != 11 || x[1] != 22 {
		t.Fatalf("aliased XpayInto = %v", x)
	}
}

func TestScaleSubAddHadamardFill(t *testing.T) {
	x := []float64{2, 4}
	Scale(0.5, x)
	if x[0] != 1 || x[1] != 2 {
		t.Fatalf("Scale = %v", x)
	}
	dst := make([]float64, 2)
	ScaleInto(dst, 3, x)
	if dst[0] != 3 || dst[1] != 6 {
		t.Fatalf("ScaleInto = %v", dst)
	}
	Sub(dst, []float64{5, 5}, []float64{1, 2})
	if dst[0] != 4 || dst[1] != 3 {
		t.Fatalf("Sub = %v", dst)
	}
	Add(dst, []float64{5, 5}, []float64{1, 2})
	if dst[0] != 6 || dst[1] != 7 {
		t.Fatalf("Add = %v", dst)
	}
	HadamardInto(dst, []float64{2, 3}, []float64{4, 5})
	if dst[0] != 8 || dst[1] != 15 {
		t.Fatalf("Hadamard = %v", dst)
	}
	Fill(dst, 9)
	if dst[0] != 9 || dst[1] != 9 {
		t.Fatalf("Fill = %v", dst)
	}
	Zero(dst)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("Zero = %v", dst)
	}
}

func TestCopyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Copy(make([]float64, 2), make([]float64, 3))
}

func TestDotMany(t *testing.T) {
	x := []float64{1, 2}
	got := DotMany(x, []float64{1, 0}, []float64{0, 1}, []float64{1, 1})
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("DotMany = %v", got)
	}
}

func TestThreeterm(t *testing.T) {
	z := []float64{10, 20}
	y := []float64{1, 2}
	w := []float64{100, 200}
	dst := make([]float64, 2)
	Threeterm(dst, z, 2, y, 0.01, w, 2)
	// (10 - 2*1 - 0.01*100)/2 = 3.5 ; (20 - 4 - 2)/2 = 7
	if !almostEq(dst[0], 3.5, eps) || !almostEq(dst[1], 7, eps) {
		t.Fatalf("Threeterm = %v", dst)
	}
	Threeterm(dst, z, 2, y, 0, nil, 4)
	if !almostEq(dst[0], 2, eps) || !almostEq(dst[1], 4, eps) {
		t.Fatalf("Threeterm nil-w = %v", dst)
	}
}

func TestThreetermZeroGammaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Threeterm(make([]float64, 1), []float64{1}, 0, []float64{1}, 0, nil, 0)
}

// Property: Dot is symmetric and bilinear.
func TestDotPropertiesQuick(t *testing.T) {
	f := func(raw []float64, alpha float64) bool {
		if len(raw) < 2 {
			return true
		}
		if math.Abs(alpha) > 1e6 {
			alpha = math.Mod(alpha, 1e6)
		}
		n := len(raw) / 2
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
				return true
			}
		}
		a, b := raw[:n], raw[n:2*n]
		if !almostEq(Dot(a, b), Dot(b, a), 1e-9) {
			return false
		}
		ac := make([]float64, n)
		ScaleInto(ac, alpha, a)
		return almostEq(Dot(ac, b), alpha*Dot(a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Norm2(x)² == Dot(x,x) within tolerance.
func TestNorm2MatchesDotQuick(t *testing.T) {
	f := func(raw []float64) bool {
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		n2 := Norm2(raw)
		return almostEq(n2*n2, Dot(raw, raw), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParDotMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 100, parallelThreshold - 1, parallelThreshold, parallelThreshold*3 + 17} {
		a, b := randVec(rng, n), randVec(rng, n)
		if got, want := ParDot(a, b), Dot(a, b); !almostEq(got, want, 1e-9) {
			t.Fatalf("n=%d ParDot = %v, Dot = %v", n, got, want)
		}
	}
}

func TestParAxpyMatchesAxpy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := parallelThreshold * 2
	x := randVec(rng, n)
	y1 := randVec(rng, n)
	y2 := append([]float64(nil), y1...)
	Axpy(1.5, x, y1)
	ParAxpy(1.5, x, y2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("ParAxpy[%d] = %v, want %v", i, y2[i], y1[i])
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	a := randVec(rand.New(rand.NewSource(3)), parallelThreshold*2)
	if got, want := ParDot(a, a), Dot(a, a); !almostEq(got, want, 1e-9) {
		t.Fatalf("single-worker ParDot = %v, want %v", got, want)
	}
	if back := SetMaxWorkers(0); back != 1 {
		t.Fatalf("SetMaxWorkers returned %d, want 1", back)
	}
}
