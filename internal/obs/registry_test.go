package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden locks the text exposition format byte-for-byte: a
// counter, a labeled counter pair, a gauge, a func-backed gauge and a
// labeled histogram, in deterministic family/series order.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("spcg_requests_total", "Accepted solve submissions.").Add(42)
	r.Counter("spcg_jobs_total", "Finished jobs by state.", L("state", "done")).Add(7)
	r.Counter("spcg_jobs_total", "Finished jobs by state.", L("state", "failed")).Add(1)
	r.Gauge("spcg_in_flight", "Jobs currently executing.").Set(3)
	r.GaugeFunc("spcg_queue_depth", "Jobs admitted but not yet running.", func() float64 { return 5 })
	h := r.Histogram("spcg_solve_duration_seconds", "Solve wall time.", []float64{0.1, 1}, L("method", "pcg"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP spcg_in_flight Jobs currently executing.
# TYPE spcg_in_flight gauge
spcg_in_flight 3
# HELP spcg_jobs_total Finished jobs by state.
# TYPE spcg_jobs_total counter
spcg_jobs_total{state="done"} 7
spcg_jobs_total{state="failed"} 1
# HELP spcg_queue_depth Jobs admitted but not yet running.
# TYPE spcg_queue_depth gauge
spcg_queue_depth 5
# HELP spcg_requests_total Accepted solve submissions.
# TYPE spcg_requests_total counter
spcg_requests_total 42
# HELP spcg_solve_duration_seconds Solve wall time.
# TYPE spcg_solve_duration_seconds histogram
spcg_solve_duration_seconds_bucket{method="pcg",le="0.1"} 1
spcg_solve_duration_seconds_bucket{method="pcg",le="1"} 2
spcg_solve_duration_seconds_bucket{method="pcg",le="+Inf"} 3
spcg_solve_duration_seconds_sum{method="pcg"} 3.05
spcg_solve_duration_seconds_count{method="pcg"} 3
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCounterGaugeSemantics covers get-or-create identity, Add/Inc/SetMax
// and the kind-mismatch panic.
func TestCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "h")
	c2 := r.Counter("x_total", "h")
	c1.Inc()
	c2.Add(2)
	if c1.Value() != 3 {
		t.Fatalf("shared counter value = %d, want 3", c1.Value())
	}
	g := r.Gauge("g", "h")
	g.Set(4)
	g.Add(-1.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
	g.SetMax(2)
	if g.Value() != 2.5 {
		t.Fatalf("SetMax lowered the gauge to %v", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("SetMax = %v, want 9", g.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "h")
}

// TestHistogramSnapshotQuantile checks bucket assignment, sum/max tracking
// and the interpolated quantile estimate.
func TestHistogramSnapshotQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 8} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Max != 8 {
		t.Fatalf("count=%d max=%v", s.Count, s.Max)
	}
	if want := []int64{1, 2, 1, 1}; len(s.Counts) != 4 ||
		s.Counts[0] != want[0] || s.Counts[1] != want[1] || s.Counts[2] != want[2] || s.Counts[3] != want[3] {
		t.Fatalf("bucket counts = %v, want %v", s.Counts, want)
	}
	if math.Abs(s.Sum-14.5) > 1e-12 {
		t.Fatalf("sum = %v, want 14.5", s.Sum)
	}
	q50 := s.Quantile(0.5)
	if q50 < 1 || q50 > 2 {
		t.Fatalf("p50 = %v, want within its bucket (1, 2]", q50)
	}
	q99 := s.Quantile(0.99)
	if q99 < 4 || q99 > 8 {
		t.Fatalf("p99 = %v, want within the overflow bucket (4, 8]", q99)
	}
	if empty := r.Histogram("lat2", "h", []float64{1}).Snapshot(); empty.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", empty.Quantile(0.5))
	}
}

// TestConcurrentRegistry exercises concurrent metric updates and scrapes
// under -race.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "h")
	h := r.Histogram("dur", "h", []float64{0.001, 0.01})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Inc()
				h.Observe(0.002)
				var buf bytes.Buffer
				if i%50 == 0 {
					_ = r.WritePrometheus(&buf)
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 1600 {
		t.Fatalf("counter = %d, want 1600", c.Value())
	}
	if s := h.Snapshot(); s.Count != 1600 {
		t.Fatalf("histogram count = %d, want 1600", s.Count)
	}
}

// TestLabelEscaping: label values with quotes, backslashes and newlines are
// escaped per the exposition format.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", L("k", "a\"b\\c\nd")).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `esc_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", buf.String())
	}
}

// TestNames returns sorted family names for the docs-coverage check.
func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Gauge("b", "h")
	r.Counter("a_total", "h")
	names := r.Names()
	if len(names) != 2 || names[0] != "a_total" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}
