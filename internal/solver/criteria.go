package solver

import (
	"fmt"
	"math"

	"spcg/internal/basis"
	"spcg/internal/eig"
	"spcg/internal/precond"
	"spcg/internal/sparse"
)

// checker evaluates the convergence criterion against its initial value,
// records history, and mirrors every check to Options.OnProgress as a
// progress heartbeat.
type checker struct {
	crit       Criterion
	tol        float64
	initial    float64 // initial norm-like value (‖r⁰‖ or √(r⁰ᵀu⁰))
	every      int
	nchecks    int
	stats      *Stats
	onProgress func(iterations int, relative float64)
}

func newChecker(opts Options, initial float64, stats *Stats) *checker {
	every := opts.HistoryEvery
	if every <= 0 {
		every = 1
	}
	stats.BestRelative = math.Inf(1)
	return &checker{
		crit:       opts.Criterion,
		tol:        opts.Tol,
		initial:    initial,
		every:      every,
		stats:      stats,
		onProgress: opts.OnProgress,
	}
}

// done evaluates the criterion for the given norm-like value, records
// history and heartbeat stats, fires the progress hook, and reports
// convergence. A zero initial value converges immediately (x⁰ already solves
// the system). Callers set stats.Iterations before calling done, so the hook
// sees the iteration the value belongs to.
func (ck *checker) done(value float64) bool {
	rel := 0.0
	if ck.initial > 0 {
		rel = value / ck.initial
	}
	ck.stats.FinalRelative = rel
	if rel < ck.stats.BestRelative {
		ck.stats.BestRelative = rel
	}
	ck.stats.Heartbeats++
	if ck.nchecks%ck.every == 0 {
		ck.stats.History = append(ck.stats.History, rel)
	}
	ck.nchecks++
	if ck.onProgress != nil {
		ck.onProgress(ck.stats.Iterations, rel)
	}
	return rel <= ck.tol
}

// resolveBasis produces the basis parameters for an s-step solver run:
// explicit override, else generated from the (estimated) spectrum of M⁻¹A.
// The spectral estimate runs 2s iterations of standard PCG (paper §5.1) and
// is NOT charged to the tracker, matching the paper's exclusion of the
// estimation cost from runtimes.
func resolveBasis(a *sparse.CSR, m precond.Interface, opts *Options) (*basis.Params, error) {
	if opts.BasisParams != nil {
		if err := opts.BasisParams.Validate(); err != nil {
			return nil, err
		}
		if opts.BasisParams.Degree() < opts.S {
			return nil, fmt.Errorf("%w: basis degree %d < s = %d", ErrDimension, opts.BasisParams.Degree(), opts.S)
		}
		return opts.BasisParams, nil
	}
	if opts.Basis == basis.Monomial {
		return basis.MonomialParams(opts.S), nil
	}
	est := opts.Spectrum
	if est == nil {
		var applyM func(dst, src []float64)
		if m != nil {
			applyM = m.Apply
		}
		var err error
		est, err = eig.RitzFromPCG(a, applyM, eig.Options{Iterations: 2 * opts.S})
		if err != nil {
			return nil, err
		}
		opts.Spectrum = est // cache for reuse across solvers in experiments
	}
	return basis.New(opts.Basis, opts.S, est.LambdaMin, est.LambdaMax, est.Ritz)
}

// rawTrueRelResidual computes ‖b−Ax‖₂/‖b−Ax⁰‖₂ outside the cost model for
// final reporting.
func rawTrueRelResidual(a *sparse.CSR, b, x, x0 []float64) float64 {
	n := a.Dim()
	tmp := make([]float64, n)
	a.MulVec(tmp, x)
	var num float64
	for i := range tmp {
		d := b[i] - tmp[i]
		num += d * d
	}
	if x0 == nil {
		var den float64
		for _, v := range b {
			den += v * v
		}
		return relOrZero(math.Sqrt(num), math.Sqrt(den))
	}
	a.MulVec(tmp, x0)
	var den float64
	for i := range tmp {
		d := b[i] - tmp[i]
		den += d * d
	}
	return relOrZero(math.Sqrt(num), math.Sqrt(den))
}

func relOrZero(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
